package sogre

import (
	"repro/internal/distributed"
	"repro/internal/graph"
)

// The distributed API mirrors the paper's Section 5.2 pipeline for
// graphs too large for one device: neighbor-sampled subgraphs are
// reordered offline and executed on a pool of workers.

// SamplerConfig controls neighbor sampling (PyG NeighborSampler
// analog).
type SamplerConfig = distributed.SamplerConfig

// PipelineConfig controls the distributed run (worker count, sample
// count, feature width, sampler).
type PipelineConfig = distributed.PipelineConfig

// PipelineResult aggregates a distributed run: per-layer and
// end-to-end speedups of the SPTC path over the CSR baseline.
type PipelineResult = distributed.Result

// RunDistributed executes the sample -> reorder -> multi-worker SGC
// pipeline on the graph and reports aggregate speedups (a Table-6
// column).
func RunDistributed(name string, g *Graph, cfg PipelineConfig) (*PipelineResult, error) {
	return distributed.Run(name, g, cfg)
}

// TrainSampledConfig controls sampled (mini-batch) SGC training.
type TrainSampledConfig = distributed.TrainSampledConfig

// TrainSampledResult reports a sampled training run.
type TrainSampledResult = distributed.TrainSampledResult

// TrainSampledSGC trains a shared SGC classifier over neighbor-sampled
// subgraphs of a large graph, with each sample's aggregation running
// on the configured engine (SOGRE-reordered SPTC or CSR baseline);
// both engines converge to the same classifier.
func TrainSampledSGC(g *Graph, x *Dense, labels []int, classes int, test []int, cfg TrainSampledConfig) (*TrainSampledResult, error) {
	return distributed.TrainSampledSGC(g, x, labels, classes, test, cfg)
}

// PartitionedSpMM computes C = A x B for a graph too large for one
// device by the paper's Section 4.4 recipe: partition, reorder each
// piece independently, run the SPTC kernel per piece, reorder partial
// results back, and accumulate cross-partition contributions. The
// result equals the direct global SpMM exactly.
func PartitionedSpMM(g *Graph, b *Dense, maxN int, p Pattern, opt ReorderOptions) (*Dense, []*ReorderResult, error) {
	return distributed.PartitionedSpMM(g, b, maxN, p, opt)
}

// Generators re-exported for examples and downstream experimentation.

// GenerateBanded returns a banded graph (PDE/mesh-like structure).
func GenerateBanded(n, band int, p float64, seed int64) *Graph {
	return graph.Banded(n, band, p, seed)
}

// GenerateErdosRenyi returns a uniform random graph G(n, p).
func GenerateErdosRenyi(n int, p float64, seed int64) *Graph {
	return graph.ErdosRenyi(n, p, seed)
}

// GenerateBarabasiAlbert returns a heavy-tailed preferential-attachment
// graph.
func GenerateBarabasiAlbert(n, m int, seed int64) *Graph {
	return graph.BarabasiAlbert(n, m, seed)
}

// GenerateSBM returns a planted-partition community graph and its
// community labels.
func GenerateSBM(sizes []int, pIn, pOut float64, seed int64) (*Graph, []int) {
	return graph.SBM(sizes, pIn, pOut, seed)
}

// GenerateGrid returns a rows x cols grid graph.
func GenerateGrid(rows, cols int) *Graph { return graph.Grid2D(rows, cols) }

// GenerateUltraSparse returns a scattered ultra-sparse graph (the
// regime where SPTC execution can lose to CSR).
func GenerateUltraSparse(n int, frac float64, seed int64) *Graph {
	return graph.UltraSparse(n, frac, seed)
}
