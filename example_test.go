package sogre_test

import (
	"fmt"

	sogre "repro"
)

// Example demonstrates the core flow: reorder a graph toward 2:4
// sparsity, then verify the transformation is lossless.
func Example() {
	g := sogre.GenerateBanded(256, 3, 1.0, 1) // deterministic band graph
	p := sogre.NM(2, 4)

	res, err := sogre.Reorder(g, p, sogre.ReorderOptions{})
	if err != nil {
		panic(err)
	}
	reordered, err := sogre.ApplyReordering(g, res)
	if err != nil {
		panic(err)
	}
	fmt.Println("conforming:", sogre.Conforms(reordered, p))
	fmt.Println("same graph:", sogre.VerifyIsomorphism(g, reordered, res.Perm) == nil)
	fmt.Println("edges kept:", reordered.NumUndirectedEdges() == g.NumUndirectedEdges())
	// Output:
	// conforming: true
	// same graph: true
	// edges kept: true
}

// ExampleNM shows the pattern notation.
func ExampleNM() {
	fmt.Println(sogre.NM(2, 4))
	fmt.Println(sogre.VNM(16, 2, 16))
	// Output:
	// 2:4
	// 16:2:16
}

// ExampleConformity inspects a graph's violations before and after
// reordering.
func ExampleConformity() {
	g := sogre.GenerateBanded(128, 3, 1.0, 7)
	p := sogre.NM(2, 4)
	before, _ := sogre.Conformity(g, p)
	res, _ := sogre.Reorder(g, p, sogre.ReorderOptions{})
	fmt.Println("violations before > 0:", before > 0)
	fmt.Println("violations after:", res.FinalPScore)
	// Output:
	// violations before > 0: true
	// violations after: 0
}

// ExampleCompress shows lossless compression and SpMM equivalence.
func ExampleCompress() {
	g := sogre.GenerateBanded(64, 1, 1.0, 3) // path graph: conforms as-is
	p := sogre.NM(2, 4)
	a := sogre.CSRFromGraph(g)
	comp, err := sogre.Compress(a, p)
	if err != nil {
		panic(err)
	}
	b := sogre.NewDense(64, 8)
	b.Randomize(1, 5)
	c1 := sogre.SpMMCSR(a, b)
	c2 := sogre.SpMMCompressed(comp, b)
	maxDiff := float32(0)
	for i := range c1.Data {
		d := c1.Data[i] - c2.Data[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Println("kernels agree:", maxDiff < 1e-4)
	// Output:
	// kernels agree: true
}

// ExampleImprovementRate shows the paper's effectiveness metric.
func ExampleImprovementRate() {
	fmt.Printf("%.2f\n", sogre.ImprovementRate(510, 1))
	// Output:
	// 1.00
}
