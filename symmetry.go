package sogre

import (
	"repro/internal/graphalgs"
)

// Symmetry-dependent graph algorithms (the paper's motivation for
// *graph* reordering over matrix reordering: the adjacency matrix must
// stay symmetric for these to keep working on the reordered form).

// MSTEdge is one edge of a minimum spanning forest.
type MSTEdge = graphalgs.MSTEdge

// Kruskal computes a minimum spanning forest with the given edge
// weight function (nil = unit weights). Runs identically on a
// SOGRE-reordered graph.
func Kruskal(g *Graph, weight func(u, v int) float64) ([]MSTEdge, float64) {
	return graphalgs.Kruskal(g, weight)
}

// SpectralBisection 2-way partitions the graph via the Fiedler vector
// of its (symmetric) Laplacian.
func SpectralBisection(g *Graph, iters int, seed int64) []int {
	return graphalgs.SpectralBisection(g, iters, seed)
}

// CutSize counts edges crossing a 2-way partition.
func CutSize(g *Graph, side []int) int { return graphalgs.CutSize(g, side) }

// VerifyIsomorphism certifies that perm is a graph isomorphism from g
// to h — the guarantee every SOGRE reordering carries by construction.
func VerifyIsomorphism(g, h *Graph, perm []int) error {
	return graphalgs.VerifyIsomorphism(g, h, perm)
}

// GraphFingerprint returns a Weisfeiler–Lehman hash invariant under
// vertex renumbering: reordered graphs always fingerprint identically.
func GraphFingerprint(g *Graph) uint64 {
	return graphalgs.WeisfeilerLehmanHash(g, 3)
}
