package sogre

import "testing"

// TestSelfCheck runs the embedded equivalence oracle end to end — the
// facade-level guarantee that the public pipeline (reorder, compress,
// SpMM) is self-consistent.
func TestSelfCheck(t *testing.T) {
	if err := SelfCheck(3, 11); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFacades(t *testing.T) {
	g, err := NewGraph(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reorder(g, NM(2, 4), ReorderOptions{MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReordering(g, res); err != nil {
		t.Errorf("VerifyReordering: %v", err)
	}
	a := CSRFromGraph(g)
	b := NewDense(6, 4)
	b.Randomize(1, 3)
	if err := VerifyKernelEquivalence(a, b, NM(2, 4), DefaultTolerance()); err != nil {
		t.Errorf("VerifyKernelEquivalence: %v", err)
	}
	if err := VerifyCompression(a, NM(2, 4)); err != nil {
		t.Errorf("VerifyCompression: %v", err)
	}
	if err := VerifyCostModel(DefaultCostModel()); err != nil {
		t.Errorf("VerifyCostModel: %v", err)
	}
}
