// Package sogre is the public API of the SOGRE library — the
// N:M-sparsity-oriented graph reordering system of "Accelerating GNNs
// on GPU Sparse Tensor Cores through N:M Sparsity-Oriented Graph
// Reordering" (PPoPP 2025) — together with the substrates its
// evaluation runs on: V:N:M compressed sparse formats, a
// sparse-tensor-core execution model, SpMM kernels, and a small GNN
// framework.
//
// The core entry points are:
//
//   - Reorder / AutoReorder: find a lossless vertex renumbering that
//     makes a graph's adjacency matrix conform to an N:M or V:N:M
//     sparse pattern (the paper's contribution).
//   - Compress / SpMM: execute sparse-matrix times dense-matrix
//     products over the compressed form on the modeled sparse tensor
//     cores, against the CSR baseline.
//   - NewEngine (gnn.go): run GCN/GraphSAGE/ChebNet/SGC forward passes
//     under the paper's four evaluation settings.
//   - SelfCheck / Verify* (verify.go): the differential equivalence
//     oracle certifying that reordering and compression never change
//     SpMM results.
//
// Everything is pure Go with no dependencies outside the standard
// library.
package sogre

import (
	"io"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// Graph is an undirected graph with 0-based vertex ids; its adjacency
// matrix is symmetric by construction.
type Graph = graph.Graph

// NewGraph builds a graph from an undirected edge list.
func NewGraph(n int, edges [][2]int) (*Graph, error) {
	return graph.NewFromEdges(n, edges)
}

// ReadMatrixMarket parses a MatrixMarket coordinate file (the
// SuiteSparse interchange format) into a Graph.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	return graph.ReadMatrixMarket(r)
}

// WriteMatrixMarket writes a graph in MatrixMarket coordinate pattern
// symmetric format.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	return graph.WriteMatrixMarket(w, g)
}

// ReadEdgeList parses plain "u v" edge lines ('#'/'%' comments
// allowed) into a Graph.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return graph.ReadEdgeList(r)
}

// WriteEdgeList writes one "u v" line per undirected edge.
func WriteEdgeList(w io.Writer, g *Graph) error {
	return graph.WriteEdgeList(w, g)
}

// Pattern is a V:N:M sparse pattern (N:M when V is 1): every M-element
// segment vector holds at most N nonzeros, and every V-by-M meta-block
// uses at most K (default 4) distinct nonzero columns.
type Pattern = pattern.VNM

// NM returns the basic N:M pattern natively supported by SPTC hardware
// (2:4 by default on Ampere GPUs).
func NM(n, m int) Pattern { return pattern.NM(n, m) }

// VNM returns the generalized V:N:M pattern of the VENOM line of work.
func VNM(v, n, m int) Pattern { return pattern.New(v, n, m) }

// ReorderOptions configures the dual-level reordering algorithm; the
// zero value selects the paper's defaults (max 10 iterations per
// level). Workers sizes the parallel engine the row-parallel phases
// run on (0 = GOMAXPROCS, 1 = serial); every setting returns the same
// permutation bit for bit (DESIGN.md §8).
type ReorderOptions = core.Options

// ReorderResult reports a completed reordering: the vertex renumbering
// (Perm maps new position to original vertex), the violation counts
// before and after, and timing.
type ReorderResult = core.Result

// Reorder runs the SOGRE dual-level algorithm on the graph's adjacency
// matrix for the given pattern. The transformation is lossless: only
// vertex numbering changes and the adjacency matrix stays symmetric.
func Reorder(g *Graph, p Pattern, opt ReorderOptions) (*ReorderResult, error) {
	return core.Reorder(g.ToBitMatrix(), p, opt)
}

// AutoResult is the outcome of the best-format search.
type AutoResult = core.AutoResult

// AutoOptions configures the best-format search.
type AutoOptions = core.AutoOptions

// AutoReorder finds the best V:N:M format for a graph using the
// paper's procedure: double M from 4 while the graph still conforms
// after reordering, then grow V. See core.AutoReorder.
func AutoReorder(g *Graph, opt AutoOptions) (*AutoResult, error) {
	return core.AutoReorder(g.ToBitMatrix(), opt)
}

// ApplyReordering renumbers the graph by the result's permutation,
// returning the graph whose adjacency matrix conforms to the pattern
// the reordering targeted.
func ApplyReordering(g *Graph, r *ReorderResult) (*Graph, error) {
	return g.ApplyPermutation(r.Perm)
}

// Conformity reports how a graph's adjacency matrix stands against a
// pattern: the number of segment vectors violating the horizontal
// constraint (PScore) and meta-blocks violating the vertical one
// (MBScore).
func Conformity(g *Graph, p Pattern) (pscore, mbscore int) {
	m := g.ToBitMatrix()
	return pattern.PScore(m, p), pattern.MBScore(m, p)
}

// Conforms reports whether the adjacency matrix fully satisfies the
// pattern.
func Conforms(g *Graph, p Pattern) bool {
	return pattern.Conforms(g.ToBitMatrix(), p)
}

// ImprovementRate is the paper's reordering-effectiveness metric: the
// fractional reduction of violating segment vectors.
func ImprovementRate(initial, final int) float64 {
	return pattern.ImprovementRate(initial, final)
}

// adjacency is re-exported for advanced users building custom
// pipelines on the bit-matrix representation.
type BitMatrix = bitmat.Matrix

// AdjacencyBits returns the dense bit-matrix view of the adjacency
// structure used by the reordering engine.
func AdjacencyBits(g *Graph) *BitMatrix { return g.ToBitMatrix() }
