package sogre

import (
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/framework"
	"repro/internal/gnn"
)

// The GNN-level API mirrors the paper's evaluation harness: prepare a
// dataset once (offline reordering + pruning), then run any of the four
// models under any of the four settings.

// ModelKind names the four paper models: GCN, SAGE, Cheb, SGC.
type ModelKind = gnn.ModelKind

// The four GNN models of the paper's evaluation.
const (
	GCN  = gnn.KindGCN
	SAGE = gnn.KindSAGE
	Cheb = gnn.KindCheb
	SGC  = gnn.KindSGC
)

// Setting is one of the paper's four evaluation configurations.
type Setting = framework.Setting

// The four settings of Section 5.1.
const (
	DefaultOriginal  = framework.DefaultOriginal
	DefaultReordered = framework.DefaultReordered
	RevisedPruned    = framework.RevisedPruned
	RevisedReordered = framework.RevisedReordered
)

// Flavor selects the framework baseline being modeled (PYG or DGL).
type Flavor = framework.Flavor

// Framework flavors.
const (
	PYG = framework.PYG
	DGL = framework.DGL
)

// Dataset is a node-classification dataset (graph, features, labels,
// split).
type Dataset = datasets.Dataset

// GenerateDataset synthesizes the named Table-2 dataset analog
// ("Cora", "Citeseer", ...) at the given scale.
func GenerateDataset(name string, scale float64, seed int64) (*Dataset, error) {
	return datasets.ByName(name, datasets.GenOptions{Scale: scale, Seed: seed, MaxClasses: 12})
}

// DatasetNames lists the available Table-2 dataset analogs.
func DatasetNames() []string {
	out := make([]string, len(datasets.GNNDatasetMetas))
	for i, m := range datasets.GNNDatasetMetas {
		out[i] = m.Name
	}
	return out
}

// Engine is the prepared per-dataset evaluation harness.
type Engine = framework.Prep

// EngineReport is a timed run's outcome.
type EngineReport = framework.Report

// RunConfig controls a timed inference run.
type RunConfig = framework.RunConfig

// NewEngine prepares a dataset for evaluation: it auto-selects the
// best V:N:M format via SOGRE reordering (offline) and builds the
// reordered and pruned dataset variants.
func NewEngine(ds *Dataset, opt core.AutoOptions) (*Engine, error) {
	return framework.Prepare(ds, opt)
}

// Speedup compares a run against a baseline run: LYR is the
// aggregation (per-layer) speedup, ALL the end-to-end speedup, both on
// modeled cycles.
func Speedup(baseline, run *EngineReport) (lyr, all float64) {
	return framework.Speedup(baseline, run)
}

// TrainConfig controls GNN training.
type TrainConfig = gnn.TrainConfig
