package sogre

import (
	"testing"

	"repro/internal/graph"
)

func TestReorderLargeFacade(t *testing.T) {
	g := GenerateBanded(600, 2, 0.9, 4)
	res, err := ReorderLarge(g, LargeOptions{MaxN: 200, Pattern: NM(2, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Perm) != g.N() {
		t.Fatalf("perm length %d", len(res.Perm))
	}
	pg, err := g.ApplyPermutation(res.Perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIsomorphism(g, pg, res.Perm); err != nil {
		t.Errorf("large reorder not an isomorphism: %v", err)
	}
}

func TestFormatPredictorFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("training in short mode")
	}
	var graphs []*Graph
	for i := int64(0); i < 8; i++ {
		graphs = append(graphs, GenerateBanded(128+int(i)*16, 2, 0.8, i))
		graphs = append(graphs, GenerateUltraSparse(256, 0.05, i))
	}
	m, err := TrainFormatPredictor(graphs, AutoOptions{MaxM: 8, MaxV: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := PredictFormat(m, GenerateBanded(160, 2, 0.8, 99))
	if err := p.Validate(); err != nil {
		t.Errorf("predicted invalid pattern: %v", err)
	}
}

func TestSymmetryFacade(t *testing.T) {
	g := GenerateGrid(8, 8)
	mst, total := Kruskal(g, nil)
	if len(mst) != 63 { // spanning tree of connected 64-vertex graph
		t.Errorf("MST edges = %d, want 63", len(mst))
	}
	if total != 63 {
		t.Errorf("unit-weight MST total = %v", total)
	}
	side := SpectralBisection(g, 200, 1)
	if CutSize(g, side) <= 0 {
		t.Error("degenerate bisection")
	}
	if GraphFingerprint(g) == 0 {
		t.Error("fingerprint degenerate")
	}
}

func TestBitMatrixFacade(t *testing.T) {
	g := GenerateErdosRenyi(32, 0.2, 3)
	bm := AdjacencyBits(g)
	if bm.N() != 32 || !bm.IsSymmetric() {
		t.Error("AdjacencyBits wrong")
	}
	if bm.NNZ() != g.NumEdges() {
		t.Errorf("NNZ %d != arcs %d", bm.NNZ(), g.NumEdges())
	}
}

func TestPruneToConformFacade(t *testing.T) {
	g := graph.BarabasiAlbert(64, 4, 1)
	a := CSRFromGraph(g)
	pruned, stats, err := PruneToConform(a, NM(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compress(pruned, NM(2, 4)); err != nil {
		t.Errorf("pruned matrix not compressible: %v", err)
	}
	if stats.TotalNNZ != a.NNZ() {
		t.Error("stats total wrong")
	}
}

func TestRunDistributedFacade(t *testing.T) {
	g := GenerateBanded(1200, 2, 0.9, 6)
	res, err := RunDistributed("facade", g, PipelineConfig{
		Workers: 2, Samples: 2, Features: 16, Classes: 4,
		Sampler: SamplerConfig{Seeds: 20, Fanout: []int{4}, Seed: 1},
		AutoOpt: AutoOptions{MaxM: 4, MaxV: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LYRSpeedup <= 0 {
		t.Error("no speedup recorded")
	}
}
