// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5) from the synthetic substrates: each
// ExperimentFunc returns a Table whose rows mirror the paper's layout,
// so EXPERIMENTS.md can record paper-vs-measured side by side. The
// drivers are shared by cmd/sogre-suite and the root benchmark file.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // e.g. "table7", "figure4"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a trailing note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	b.WriteByte('\n')
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "*%s*\n\n", n)
	}
	return b.String()
}

// JSON renders the table as a machine-readable object.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes}, "", "  ")
}

// geomean returns the geometric mean of positive values (zero entries
// are skipped; empty input yields 0).
func geomean(vals []float64) float64 {
	var sum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// mean returns the arithmetic mean (0 for empty input).
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// median returns the median of a copy of vals (0 for empty).
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	c := append([]float64(nil), vals...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j-1] > c[j]; j-- {
			c[j-1], c[j] = c[j], c[j-1]
		}
	}
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
