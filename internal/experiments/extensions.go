package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/predictor"
)

// PredictorExperiment evaluates the V:N:M format predictor (the
// paper's Section 5.3 future-work suggestion, implemented in
// internal/predictor): train on one synthetic collection, evaluate
// top-1 agreement with the exhaustive search and the fraction of
// predictions that reach conformity on a held-out collection, and
// compare prediction time against the full search.
func PredictorExperiment(cfg Config) (*Table, error) {
	trainSpec := cfg.Collection
	testSpec := cfg.Collection
	testSpec.Seed += 1000003
	trainGraphs := collectGraphs(datasets.SuiteSparseCollection(trainSpec))
	testGraphs := collectGraphs(datasets.SuiteSparseCollection(testSpec))

	labelStart := time.Now()
	examples, err := predictor.BuildExamples(trainGraphs, cfg.AutoOpt)
	if err != nil {
		return nil, err
	}
	labelTime := time.Since(labelStart)
	model, err := predictor.Train(examples, predictor.TrainConfig{Epochs: 300, LR: 0.1, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	top1, works, err := predictor.Evaluate(model, testGraphs, cfg.AutoOpt)
	if err != nil {
		return nil, err
	}
	// Timing: predictor vs exhaustive search on the test set.
	predStart := time.Now()
	for _, g := range testGraphs {
		model.PredictGraph(g)
	}
	predTime := time.Since(predStart)
	searchStart := time.Now()
	for _, g := range testGraphs {
		if _, err := core.AutoReorder(g.ToBitMatrix(), cfg.AutoOpt); err != nil {
			return nil, err
		}
	}
	searchTime := time.Since(searchStart)

	t := &Table{
		ID:     "predictor",
		Title:  "V:N:M format predictor (paper Section 5.3 extension)",
		Header: []string{"Metric", "Value"},
	}
	t.AddRow("training graphs", fmt.Sprintf("%d", len(trainGraphs)))
	t.AddRow("distinct formats seen", fmt.Sprintf("%d", len(model.Formats)))
	t.AddRow("held-out graphs", fmt.Sprintf("%d", len(testGraphs)))
	t.AddRow("top-1 format agreement", pct(top1))
	t.AddRow("prediction conforms", pct(works))
	t.AddRow("labeling (offline) time", labelTime.Round(time.Millisecond).String())
	t.AddRow("predict time (test set)", predTime.Round(time.Microsecond).String())
	t.AddRow("exhaustive search time", searchTime.Round(time.Millisecond).String())
	t.AddNote("the paper suggests such a predictor instead of trying every format; features are O(V+E)")
	return t, nil
}

// LargeGraphExperiment exercises the Section 4.4 partitioned path: a
// graph beyond the per-partition limit is split, reordered piecewise,
// and the composed permutation's quality is compared against the
// direct path on each piece.
func LargeGraphExperiment(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "large",
		Title:  "Partitioned reordering of large graphs (Section 4.4)",
		Header: []string{"Graph", "#V", "Partitions", "Init #inv", "Finl #inv", "Imprv", "Time"},
	}
	sizes := make([]int, 32)
	for i := range sizes {
		sizes[i] = 256
	}
	community, _ := graph.SBM(sizes, 0.03, 0.0005, cfg.Seed)
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"banded-8k", graph.Banded(8192, 3, 0.8, cfg.Seed)},
		{"community-8k", community},
		{"powerlaw-8k", graph.BarabasiAlbert(8192, 3, cfg.Seed)},
	}
	for _, c := range cases {
		res, err := core.ReorderLarge(c.g, core.LargeOptions{
			MaxN:    2048,
			Pattern: pattern.NM(2, 4),
			Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name,
			fmt.Sprintf("%d", c.g.N()),
			fmt.Sprintf("%d", len(res.Partitions)),
			fmt.Sprintf("%d", res.InitialPScore),
			fmt.Sprintf("%d", res.FinalPScore),
			pct(res.ImprovementRate()),
			res.Elapsed.Round(time.Millisecond).String())
	}
	t.AddNote("mirrors the paper's note that SPTC libraries cap operands near 45Kx45K; each partition is reordered independently")
	return t, nil
}

func collectGraphs(col []datasets.CollectionEntry) []*graph.Graph {
	out := make([]*graph.Graph, len(col))
	for i, e := range col {
		out[i] = e.G
	}
	return out
}
