package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/datasets"
	"repro/internal/venom"
)

// MemoryExperiment quantifies the storage argument of the paper's
// Related Work section: dense-format tensor-core approaches (TC-GNN,
// DTC-SpMM) pay "tens to hundreds of times more space", while the
// V:N:M compressed form stays within a small factor of CSR. Reports
// per-class average bytes for dense, CSR and compressed storage of the
// reordered matrices.
func MemoryExperiment(cfg Config) (*Table, error) {
	col := datasets.SuiteSparseCollection(cfg.Collection)
	t := &Table{
		ID:     "memory",
		Title:  "Storage footprint: dense vs CSR vs V:N:M compressed",
		Header: []string{"Class", "Avg dense MB", "Avg CSR MB", "Avg VNM MB", "dense/VNM", "VNM/CSR"},
	}
	for _, class := range []datasets.SizeClass{datasets.Small, datasets.Medium, datasets.Large} {
		var denseB, csrB, vnmB []float64
		for _, e := range col {
			if e.Class != class {
				continue
			}
			auto, err := core.AutoReorder(e.G.ToBitMatrix(), cfg.AutoOpt)
			if err != nil {
				return nil, err
			}
			a := csr.FromBitMatrix(auto.Best.Matrix)
			comp, resid, err := venom.SplitToConform(a, auto.Best.Pattern)
			if err != nil {
				return nil, err
			}
			n := float64(e.G.N())
			denseB = append(denseB, n*n*4)
			csrB = append(csrB, float64(a.NNZ())*8+float64(a.N+1)*4)
			vb := float64(comp.CompressedBytes())
			if resid.NNZ() > 0 {
				vb += float64(resid.NNZ())*8 + float64(resid.N+1)*4
			}
			vnmB = append(vnmB, vb)
		}
		if len(denseB) == 0 {
			continue
		}
		mb := func(v float64) string { return fmt.Sprintf("%.3f", v/1e6) }
		t.AddRow(class.String(),
			mb(mean(denseB)), mb(mean(csrB)), mb(mean(vnmB)),
			f2(mean(denseB)/mean(vnmB)), f2(mean(vnmB)/mean(csrB)))
	}
	t.AddNote("paper Related Work: dense-format TC methods add tens to hundreds of times more space; V:N:M stays CSR-scale")
	return t, nil
}
