package experiments

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:     "test",
		Title:  "A test table",
		Header: []string{"Col1", "LongColumn2"},
	}
	tb.AddRow("a", "b")
	tb.AddRow("longer-cell", "c")
	tb.AddNote("note with %d args", 2)
	s := tb.String()
	if !strings.Contains(s, "== test: A test table ==") {
		t.Error("title missing")
	}
	if !strings.Contains(s, "longer-cell") || !strings.Contains(s, "note with 2 args") {
		t.Error("content missing")
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| Col1 | LongColumn2 |") || !strings.Contains(md, "| --- | --- |") {
		t.Errorf("markdown header wrong:\n%s", md)
	}
	if !strings.Contains(md, "| a | b |") {
		t.Error("markdown row missing")
	}
}

func TestStatHelpers(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean = %v, want 4", g)
	}
	if geomean(nil) != 0 || geomean([]float64{0, -1}) != 0 {
		t.Error("geomean degenerate cases")
	}
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if mean(nil) != 0 {
		t.Error("mean of empty")
	}
	if md := median([]float64{5, 1, 3}); md != 3 {
		t.Errorf("median odd = %v", md)
	}
	if md := median([]float64{4, 1, 3, 2}); md != 2.5 {
		t.Errorf("median even = %v", md)
	}
	if median(nil) != 0 {
		t.Error("median of empty")
	}
	if pct(0.5) != "50.00%" || f2(1.234) != "1.23" || f3(1.2345) != "1.234" {
		t.Error("formatting helpers wrong")
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("bogus", Quick()); err == nil {
		t.Error("want error for unknown id")
	}
}

func TestFastExperimentsByID(t *testing.T) {
	// Run the cheap experiments end-to-end at Quick scale; the heavy
	// ones (table3..6) are covered by the root benches and the suite
	// CLI.
	cfg := Quick()
	for _, id := range []string{"table1", "table2", "table7", "figure4", "baseline"} {
		tb, err := ByID(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		if tb.ID != id {
			t.Errorf("%s: table id %q", id, tb.ID)
		}
	}
}

func TestConfigs(t *testing.T) {
	d := Default()
	q := Quick()
	if q.Collection.Scale >= d.Collection.Scale {
		t.Error("Quick should be smaller than Default")
	}
	if len(d.HSweep) == 0 || d.Hidden == 0 || d.Workers == 0 {
		t.Error("Default config incomplete")
	}
}

func TestIDsAllResolve(t *testing.T) {
	// Every listed id must be routable (errors about content are fine,
	// unknown-id errors are not). Only check routing for the heavy
	// ones by using a tiny config where needed — here we just verify
	// the switch statement covers IDs via a known-cheap subset and the
	// error text for unknown ids.
	for _, id := range IDs {
		switch id {
		case "table3", "table4", "table5", "table6", "predictor", "large", "memory", "training", "vsweep", "table8", "ablation":
			continue // heavy; covered elsewhere
		}
		if _, err := ByID(id, Quick()); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestHeavyExperimentsSmoke(t *testing.T) {
	// End-to-end smoke of the heavy drivers at a minimal scale; the
	// full-scale runs live in cmd/sogre-suite and the root benches.
	if testing.Short() {
		t.Skip("heavy experiments in short mode")
	}
	cfg := Quick()
	cfg.GNNOpt.Scale = 0.02
	cfg.TrainCfg.Epochs = 10
	cfg.OGBNScale = 0.002
	cfg.HSweep = []int{64}
	for _, id := range []string{"table3", "table4", "table6", "memory", "training", "large"} {
		tb, err := ByID(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
	}
}

func TestTable1Deterministic(t *testing.T) {
	cfg := Quick()
	a := Table1(cfg)
	b := Table1(cfg)
	if a.String() != b.String() {
		t.Error("Table1 not deterministic across runs")
	}
}
