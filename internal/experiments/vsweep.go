package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/sptc"
	"repro/internal/venom"
)

// VSweepExperiment quantifies the paper's Table-8 discussion point that
// "patterns with larger V values often yield more remarkable
// speedups": on a banded graph that conforms at every V when M = 4, it
// measures the modeled SpMM speedup as V grows with M fixed. Larger V
// packs more rows per meta-block, sharing column metadata and staged B
// rows; past the 16-row mma granularity (V = 32) blocks split across
// hardware fragments and the gain recedes.
func VSweepExperiment(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "vsweep",
		Title:  "SpMM speedup vs V (fixed M=4, banded graph)",
		Header: []string{"Pattern", "Conforming", "Blocks", "Instr groups", "Speedup H=128", "Speedup H=512"},
	}
	// A narrow banded graph conforms at V all the way to 32 when M = 4:
	// any 32-row band touches at most K = 4 distinct columns per
	// 4-column window (this is exactly the structure behind the
	// 32:2:4 best formats Table 3 reports for Computers/CS).
	g := graph.Banded(2048, 2, 1.0, cfg.Seed)
	orig := csr.FromGraph(g)
	for _, v := range []int{1, 2, 4, 8, 16, 32} {
		p := pattern.New(v, 2, 4)
		res, err := core.Reorder(g.ToBitMatrix(), p, core.Options{})
		if err != nil {
			return nil, err
		}
		a := csr.FromBitMatrix(res.Matrix)
		comp, resid, err := venom.SplitToConform(a, p)
		if err != nil {
			return nil, err
		}
		stats := sptc.Stats(comp, cfg.Cost)
		row := []string{p.String(), fmt.Sprintf("%v", res.Conforming()),
			fmt.Sprintf("%d", comp.NumBlocks()), fmt.Sprintf("%d", stats.Fragments)}
		for _, h := range []int{128, 512} {
			baseCycles := cfg.Cost.CSRSpMMCycles(orig.NNZ(), orig.N, h)
			rev := cfg.Cost.VNMSpMMCycles(stats, h)
			if resid.NNZ() > 0 {
				rev += cfg.Cost.CSRSpMMCycles(resid.NNZ(), resid.N, h)
			}
			row = append(row, f2(baseCycles/rev))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper Section 5.3: larger-V formats, when reachable, yield more remarkable speedups")
	return t, nil
}
