package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gnn"
	"repro/internal/sptc"
)

// Config sizes an experiment run. Default() is minutes-scale; raise
// Scale values toward 1.0 to approach the paper's full workload.
type Config struct {
	Collection datasets.CollectionSpec
	GNNOpt     datasets.GenOptions
	AutoOpt    core.AutoOptions
	Hidden     int
	HSweep     []int // Figure 4 dense widths
	TrainCfg   gnn.TrainConfig
	Cost       sptc.CostModel
	OGBNScale  float64
	Workers    int
	Seed       int64
}

// Default returns the configuration the test suite and the default CLI
// run use: a scaled-down but structurally faithful workload.
func Default() Config {
	return Config{
		Collection: datasets.CollectionSpec{Scale: 0.02, Seed: 20250705, MaxN: 2048},
		GNNOpt:     datasets.GenOptions{Scale: 0.08, Seed: 7, MaxClasses: 8},
		AutoOpt:    core.AutoOptions{MaxM: 32, MaxV: 32},
		Hidden:     64,
		HSweep:     []int{64, 128, 256, 512},
		TrainCfg:   gnn.TrainConfig{Epochs: 80, LR: 0.02, WD: 5e-4},
		Cost:       sptc.DefaultCostModel(),
		OGBNScale:  0.01,
		Workers:    4,
		Seed:       20250705,
	}
}

// Validate checks a configuration is runnable before any experiment
// spends time on it: positive scales and widths, a nonempty H sweep,
// and a trainable learning schedule.
func (c Config) Validate() error {
	switch {
	case c.Collection.Scale <= 0:
		return fmt.Errorf("experiments: Collection.Scale %g must be > 0", c.Collection.Scale)
	case c.Collection.MaxN <= 0:
		return fmt.Errorf("experiments: Collection.MaxN %d must be > 0", c.Collection.MaxN)
	case c.GNNOpt.Scale <= 0:
		return fmt.Errorf("experiments: GNNOpt.Scale %g must be > 0", c.GNNOpt.Scale)
	case c.Hidden <= 0:
		return fmt.Errorf("experiments: Hidden %d must be > 0", c.Hidden)
	case len(c.HSweep) == 0:
		return fmt.Errorf("experiments: HSweep must be nonempty")
	case c.TrainCfg.Epochs <= 0:
		return fmt.Errorf("experiments: TrainCfg.Epochs %d must be > 0", c.TrainCfg.Epochs)
	case c.TrainCfg.LR <= 0:
		return fmt.Errorf("experiments: TrainCfg.LR %g must be > 0", c.TrainCfg.LR)
	case c.OGBNScale <= 0:
		return fmt.Errorf("experiments: OGBNScale %g must be > 0", c.OGBNScale)
	case c.Workers < 0:
		return fmt.Errorf("experiments: Workers %d must be >= 0", c.Workers)
	}
	for _, h := range c.HSweep {
		if h <= 0 {
			return fmt.Errorf("experiments: HSweep entry %d must be > 0", h)
		}
	}
	return nil
}

// Quick returns a seconds-scale configuration for unit tests and
// benchmarks.
func Quick() Config {
	c := Default()
	c.Collection = datasets.CollectionSpec{Scale: 0.008, Seed: 3, MaxN: 768}
	c.GNNOpt = datasets.GenOptions{Scale: 0.04, Seed: 7, MaxClasses: 5}
	c.AutoOpt = core.AutoOptions{MaxM: 8, MaxV: 8}
	c.HSweep = []int{64, 128}
	c.TrainCfg = gnn.TrainConfig{Epochs: 30, LR: 0.02}
	c.OGBNScale = 0.004
	return c
}
