package experiments

import (
	"fmt"
	"io"
	"time"
)

// RunAll executes every experiment and writes the rendered tables to w.
// Returns the tables for further processing (e.g. EXPERIMENTS.md).
func RunAll(cfg Config, w io.Writer) ([]*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	type step struct {
		name string
		run  func() (*Table, error)
	}
	steps := []step{
		{"table1", func() (*Table, error) { return Table1(cfg), nil }},
		{"table2", func() (*Table, error) { return Table2(cfg), nil }},
		{"table3", func() (*Table, error) { return Table3(cfg) }},
		{"table4", func() (*Table, error) { return Table4(cfg) }},
		{"table5", func() (*Table, error) { return Table5(cfg) }},
		{"table6", func() (*Table, error) { return Table6(cfg) }},
		{"table7", func() (*Table, error) { return Table7(cfg), nil }},
		{"table8", func() (*Table, error) { return Table8(cfg), nil }},
		{"figure4", func() (*Table, error) { return Figure4(cfg), nil }},
		{"ablation", func() (*Table, error) { return Ablations(cfg), nil }},
		{"baseline", func() (*Table, error) { return BaselineComparison(cfg), nil }},
		{"predictor", func() (*Table, error) { return PredictorExperiment(cfg) }},
		{"large", func() (*Table, error) { return LargeGraphExperiment(cfg) }},
		{"memory", func() (*Table, error) { return MemoryExperiment(cfg) }},
		{"training", func() (*Table, error) { return TrainingThroughputExperiment(cfg) }},
		{"vsweep", func() (*Table, error) { return VSweepExperiment(cfg) }},
	}
	var tables []*Table
	for _, s := range steps {
		start := time.Now()
		t, err := s.run()
		if err != nil {
			return tables, fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		tables = append(tables, t)
		if w != nil {
			fmt.Fprintf(w, "%s(completed in %v)\n\n", t.String(), time.Since(start).Round(time.Millisecond))
		}
	}
	return tables, nil
}

// ByID runs a single experiment by its id ("table1".."table8",
// "figure4", "ablation", "baseline").
func ByID(id string, cfg Config) (*Table, error) {
	switch id {
	case "table1":
		return Table1(cfg), nil
	case "table2":
		return Table2(cfg), nil
	case "table3":
		return Table3(cfg)
	case "table4":
		return Table4(cfg)
	case "table5":
		return Table5(cfg)
	case "table6":
		return Table6(cfg)
	case "table7":
		return Table7(cfg), nil
	case "table8":
		return Table8(cfg), nil
	case "figure4":
		return Figure4(cfg), nil
	case "ablation":
		return Ablations(cfg), nil
	case "baseline":
		return BaselineComparison(cfg), nil
	case "predictor":
		return PredictorExperiment(cfg)
	case "large":
		return LargeGraphExperiment(cfg)
	case "memory":
		return MemoryExperiment(cfg)
	case "training":
		return TrainingThroughputExperiment(cfg)
	case "vsweep":
		return VSweepExperiment(cfg)
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists every experiment id.
var IDs = []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "figure4", "ablation", "baseline", "predictor", "large", "memory", "training", "vsweep"}
