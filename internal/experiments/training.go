package experiments

import (
	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/framework"
	"repro/internal/gnn"
	"repro/internal/sched"
)

// TrainingThroughputExperiment extends the paper's forward-pass
// evaluation to training: one full epoch (forward + masked
// cross-entropy + backward) per setting, with the aggregation and its
// transpose both running through the selected engine. The paper only
// times inference; this records how much of the forward-pass advantage
// survives when gradients flow through Aᵀ as well.
func TrainingThroughputExperiment(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "training",
		Title:  "Training-epoch speedup of revised-reordered over default-original (extension)",
		Header: []string{"Dataset", "Model", "Fwd LYR", "Epoch LYR", "Epoch ALL"},
	}
	// A representative subset keeps this extension affordable.
	subset := []string{"Cora", "Facebook", "Amazon-ratings"}
	for _, name := range subset {
		ds, err := datasets.ByName(name, cfg.GNNOpt)
		if err != nil {
			return nil, err
		}
		prep, err := framework.Prepare(ds, cfg.AutoOpt)
		if err != nil {
			return nil, err
		}
		for _, kind := range []gnn.ModelKind{gnn.KindGCN, gnn.KindSAGE} {
			fwdBase, err := prep.Run(kind, framework.DefaultOriginal, framework.PYG, framework.RunConfig{Hidden: cfg.Hidden, Forwards: 1, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			fwdRev, err := prep.Run(kind, framework.RevisedReordered, framework.PYG, framework.RunConfig{Hidden: cfg.Hidden, Forwards: 1, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			fwdLYR, _ := framework.Speedup(fwdBase, fwdRev)

			baseAgg, baseTot, err := epochCost(prep, kind, framework.DefaultOriginal, cfg)
			if err != nil {
				return nil, err
			}
			revAgg, revTot, err := epochCost(prep, kind, framework.RevisedReordered, cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(ds.Name, string(kind), f2(fwdLYR), f2(baseAgg/revAgg), f2(baseTot/revTot))
		}
	}
	t.AddNote("epoch = forward + cross-entropy + backward; gradients route through the engine's transpose operator")
	return t, nil
}

// epochCost runs one training epoch under a setting and returns the
// (aggregation, total) modeled cycles.
func epochCost(prep *framework.Prep, kind gnn.ModelKind, setting framework.Setting, cfg Config) (agg, total float64, err error) {
	ds, engine := prep.SettingData(setting)
	ledger := &gnn.Ledger{}
	factory := &gnn.Factory{Kind: engine, Pattern: prep.Pattern, Cost: cfg.Cost, Ledger: ledger, Pool: sched.New(cfg.Workers)}
	model, err := framework.BuildModel(kind, ds, factory, framework.RunConfig{Hidden: cfg.Hidden, Seed: cfg.Seed})
	if err != nil {
		return 0, 0, err
	}
	logits := model.Forward(ds.X)
	probs := logits.Clone()
	dense.SoftmaxRows(probs)
	_, grad := dense.CrossEntropy(probs, ds.Labels, ds.Split.Train)
	model.Backward(grad)
	return ledger.AggCycles, ledger.Total(), nil
}
