package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/pattern"
)

// Ablations evaluates the design choices DESIGN.md §4 calls out by
// re-running the collection reorder with each knob flipped and
// comparing improvement rates and work done.
func Ablations(cfg Config) *Table {
	col := datasets.SuiteSparseCollection(cfg.Collection)
	// 8:2:8 keeps both constraints active: with V = 1 patterns the
	// vertical constraint is vacuous (K = 4 >= N), Stage-1 never runs,
	// and its knobs (negation, Hamming vs plain sort) cannot bind.
	p := pattern.New(8, 2, 8)
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"full (paper)", core.Options{}},
		{"no negation", core.Options{DisableNegation: true}},
		{"plain bit sort", core.Options{PlainBitSort: true}},
		{"immediate swaps", core.Options{ImmediateSwaps: true}},
		{"positive gain only", core.Options{RequirePositiveGain: true}},
		{"no sparsest fallback", core.Options{DisableSparsestFallback: true}},
		{"stage-1 only", core.Options{Stage1Only: true}},
		{"stage-2 only", core.Options{Stage2Only: true}},
	}
	t := &Table{
		ID:     "ablation",
		Title:  "Design-choice ablations (8:2:8 over the collection)",
		Header: []string{"Variant", "Mean imprv", "Conform rate", "Mean MB left", "Mean iters", "Mean swaps"},
	}
	for _, v := range variants {
		outcomes := reorderCollection(col, p, v.opt)
		var impr, iters, swaps, mbLeft []float64
		conform := 0
		for _, o := range outcomes {
			impr = append(impr, o.res.ImprovementRate())
			iters = append(iters, float64(o.res.Iterations))
			swaps = append(swaps, float64(o.res.Swaps))
			mbLeft = append(mbLeft, float64(o.res.FinalMBScore))
			if o.res.Conforming() {
				conform++
			}
		}
		t.AddRow(v.name, pct(mean(impr)),
			pct(float64(conform)/float64(len(outcomes))),
			f2(mean(mbLeft)), f2(mean(iters)), f2(mean(swaps)))
	}
	return t
}

// BaselineComparison contrasts SOGRE with the Jigsaw-style column
// reorder (Section 6): conformity achieved and whether symmetry — the
// property every symmetric-matrix graph algorithm needs — survives.
func BaselineComparison(cfg Config) *Table {
	col := datasets.SuiteSparseCollection(cfg.Collection)
	p := pattern.NM(2, 4)
	t := &Table{
		ID:     "baseline",
		Title:  "SOGRE (graph reorder) vs Jigsaw-style (matrix column reorder), 2:4",
		Header: []string{"Method", "Mean imprv", "Symmetric outputs", "#Graphs"},
	}
	var sogreImpr, jigImpr []float64
	sogreSym, jigSym := 0, 0
	count := 0
	for _, e := range col {
		m := e.G.ToBitMatrix()
		res, err := core.Reorder(m, p, core.Options{})
		if err != nil {
			continue
		}
		sogreImpr = append(sogreImpr, res.ImprovementRate())
		if res.Matrix.IsSymmetric() {
			sogreSym++
		}
		jig := baselines.Jigsaw(m, p)
		jigImpr = append(jigImpr, pattern.ImprovementRate(jig.InitialPScore, jig.FinalPScore))
		if jig.Symmetric {
			jigSym++
		}
		count++
	}
	t.AddRow("SOGRE", pct(mean(sogreImpr)), fmt.Sprintf("%d/%d", sogreSym, count), fmt.Sprintf("%d", count))
	t.AddRow("Jigsaw-style", pct(mean(jigImpr)), fmt.Sprintf("%d/%d", jigSym, count), fmt.Sprintf("%d", count))
	t.AddNote("the paper's key qualitative difference: Jigsaw's matrix reordering forfeits adjacency symmetry")
	return t
}
