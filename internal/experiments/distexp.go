package experiments

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/distributed"
)

// Table6 reproduces the distributed-GNN evaluation on OGBN large
// graphs: neighbor-sampled subgraphs, SOGRE reordering per sample, SGC
// forward on a pool of simulated GPUs (the paper uses four A100s);
// reports LYR and ALL speedups per dataset.
func Table6(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table6",
		Title:  "Distributed GNN on OGBN-like large graphs (SGC, 4 workers)",
		Header: []string{"Dataset", "Graph #V", "Avg sample", "LYR", "ALL", "Conformed", "Fallbacks", "Reorder time"},
	}
	for _, meta := range datasets.OGBNMetas {
		g := datasets.OGBNGraph(meta, cfg.OGBNScale, cfg.Seed)
		// Scale the sampler so sampled subgraphs track the paper's
		// average sample sizes, shrunk by the same scale.
		target := int(float64(meta.AvgSample) * cfg.OGBNScale * 10)
		if target < 200 {
			target = 200
		}
		seeds := target / 8
		if seeds < 16 {
			seeds = 16
		}
		res, err := distributed.Run(meta.Name, g, distributed.PipelineConfig{
			Workers:   cfg.Workers,
			Samples:   cfg.Workers * 2,
			Features:  meta.F,
			Classes:   meta.Classes,
			Sampler:   distributed.SamplerConfig{Seeds: seeds, Fanout: []int{6, 4}, Seed: cfg.Seed},
			AutoOpt:   cfg.AutoOpt,
			CostModel: cfg.Cost,
		})
		if err != nil {
			return nil, fmt.Errorf("table6 %s: %w", meta.Name, err)
		}
		t.AddRow(meta.Name,
			fmt.Sprintf("%d", g.N()),
			f2(res.AvgSampleSize),
			f2(res.LYRSpeedup), f2(res.ALLSpeedup),
			fmt.Sprintf("%d/%d", res.ConformedCount, res.Samples),
			fmt.Sprintf("%d", res.FallbackCount),
			res.ReorderTime.Round(1e6).String())
	}
	t.AddNote("paper Table 6: LYR 1.14-6.49x, ALL 1.16-3.23x on 4 A100s; reordering is offline and uncounted")
	return t, nil
}
