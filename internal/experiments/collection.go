package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/sptc"
	"repro/internal/venom"
)

// Table1 reproduces the SuiteSparse collection statistics (paper
// Table 1): per size class, average and median vertex count, edge
// count, degrees and diameter.
func Table1(cfg Config) *Table {
	col := datasets.SuiteSparseCollection(cfg.Collection)
	t := &Table{
		ID:     "table1",
		Title:  "Synthetic SuiteSparse collection statistics",
		Header: []string{"Class", "Stat", "#V", "#E", "AvgDeg", "MaxDeg", "Diameter", "#Graphs"},
	}
	for _, class := range []datasets.SizeClass{datasets.Small, datasets.Medium, datasets.Large} {
		var vs, es, avgD, maxD, diam []float64
		count := 0
		for _, e := range col {
			if e.Class != class {
				continue
			}
			st := graph.ComputeStats(e.G, cfg.Seed)
			vs = append(vs, float64(st.Vertices))
			es = append(es, float64(st.Edges))
			avgD = append(avgD, st.AvgDegree)
			maxD = append(maxD, float64(st.MaxDegree))
			diam = append(diam, float64(st.Diameter))
			count++
		}
		t.AddRow(class.String(), "avg",
			f2(mean(vs)), f2(mean(es)), f2(mean(avgD)), f2(mean(maxD)), f2(mean(diam)),
			fmt.Sprintf("%d", count))
		t.AddRow(class.String(), "med",
			f2(median(vs)), f2(median(es)), f2(median(avgD)), f2(median(maxD)), f2(median(diam)), "")
	}
	t.AddNote("paper Table 1: small avg #V 426 / deg 12.5, medium 3.6k / 22.5, large 22.6k / 36.1; counts 444/724/188 (scaled here by %.3f)", cfg.Collection.Scale)
	return t
}

// reorderOutcome is a per-graph record shared by Tables 7/8 and
// Figure 4.
type reorderOutcome struct {
	entry datasets.CollectionEntry
	res   *core.Result
}

// reorderCollection reorders every collection graph to the given
// pattern, graphs in parallel (each reorder is itself row-parallel,
// but collection sweeps are embarrassingly parallel on top).
func reorderCollection(col []datasets.CollectionEntry, p pattern.VNM, opt core.Options) []reorderOutcome {
	results := make([]*core.Result, len(col))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range col {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := core.Reorder(col[i].G.ToBitMatrix(), p, opt)
			if err == nil {
				results[i] = res
			}
		}(i)
	}
	wg.Wait()
	out := make([]reorderOutcome, 0, len(col))
	for i, res := range results {
		if res != nil {
			out = append(out, reorderOutcome{entry: col[i], res: res})
		}
	}
	return out
}

// Table7 reproduces the 1:2:4 reordering-quality table: initial and
// final invalid-segment-vector counts, improvement rate, iteration
// count and reordering time, aggregated per size class.
func Table7(cfg Config) *Table {
	col := datasets.SuiteSparseCollection(cfg.Collection)
	// The sweep is already graph-parallel; run each graph's reorder
	// serially (Workers: 1) so the two levels don't oversubscribe.
	outcomes := reorderCollection(col, pattern.NM(2, 4), core.Options{Workers: 1})
	t := &Table{
		ID:     "table7",
		Title:  "1:2:4 reordering quality on the synthetic collection",
		Header: []string{"Class", "Stat", "Init #inv", "Finl #inv", "Imprv rate", "Iter", "Time (ms)"},
	}
	for _, class := range []datasets.SizeClass{datasets.Small, datasets.Medium, datasets.Large} {
		var init, finl, impr, iter, secs []float64
		for _, o := range outcomes {
			if o.entry.Class != class {
				continue
			}
			init = append(init, float64(o.res.InitialPScore))
			finl = append(finl, float64(o.res.FinalPScore))
			impr = append(impr, o.res.ImprovementRate())
			iter = append(iter, float64(o.res.Iterations))
			secs = append(secs, float64(o.res.Elapsed.Microseconds())/1000)
		}
		t.AddRow(class.String(), "avg", f2(mean(init)), f2(mean(finl)), pct(mean(impr)), f2(mean(iter)), f3(mean(secs)))
		t.AddRow(class.String(), "med", f2(median(init)), f2(median(finl)), pct(median(impr)), f2(median(iter)), f3(median(secs)))
	}
	t.AddNote("paper Table 7: improvement rates 98.9-100%%; times 0.01-30.55s on GPU")
	return t
}

// Table8 reproduces the reordering success rate (fraction of graphs
// reordered to full conformity) for V:2:8 and V:2:16 with V in
// {1,4,8,16,32}, per size class.
func Table8(cfg Config) *Table {
	col := datasets.SuiteSparseCollection(cfg.Collection)
	t := &Table{
		ID:     "table8",
		Title:  "Reordering success rate by V:N:M format",
		Header: []string{"V", "small V:2:8", "small V:2:16", "medium V:2:8", "medium V:2:16", "large V:2:8", "large V:2:16"},
	}
	vvals := []int{1, 4, 8, 16, 32}
	type key struct {
		class datasets.SizeClass
		m     int
	}
	rates := map[key]map[int]float64{}
	for _, class := range []datasets.SizeClass{datasets.Small, datasets.Medium, datasets.Large} {
		for _, m := range []int{8, 16} {
			rates[key{class, m}] = map[int]float64{}
		}
	}
	for _, m := range []int{8, 16} {
		for _, v := range vvals {
			p := pattern.New(v, 2, m)
			outcomes := reorderCollection(col, p, core.Options{Workers: 1})
			byClass := map[datasets.SizeClass][2]int{} // conforming, total
			for _, o := range outcomes {
				c := byClass[o.entry.Class]
				c[1]++
				if o.res.Conforming() {
					c[0]++
				}
				byClass[o.entry.Class] = c
			}
			for class, c := range byClass {
				if c[1] > 0 {
					rates[key{class, m}][v] = float64(c[0]) / float64(c[1])
				}
			}
		}
	}
	for _, v := range vvals {
		t.AddRow(fmt.Sprintf("V=%d", v),
			pct(rates[key{datasets.Small, 8}][v]), pct(rates[key{datasets.Small, 16}][v]),
			pct(rates[key{datasets.Medium, 8}][v]), pct(rates[key{datasets.Medium, 16}][v]),
			pct(rates[key{datasets.Large, 8}][v]), pct(rates[key{datasets.Large, 16}][v]))
	}
	t.AddNote("paper Table 8: success falls as V grows (e.g. small V:2:8 69.1%% at V=1 down to 2.2%% at V=32)")
	return t
}

// Figure4 reproduces the SpMM speedup sweep over the collection:
// each graph reordered to its best format, SPTC cycles vs cuSPARSE-CSR
// cycles for H in cfg.HSweep; reports geomean/max/min and the slowdown
// fraction per size class and H.
func Figure4(cfg Config) *Table {
	col := datasets.SuiteSparseCollection(cfg.Collection)
	t := &Table{
		ID:     "figure4",
		Title:  "SpMM speedup over cuSPARSE-CSR after best-format reordering",
		Header: []string{"Class", "H", "Geomean", "Max", "Min", "Slowdown frac", "#Graphs"},
	}
	type rec struct {
		class    datasets.SizeClass
		speedups map[int]float64
	}
	var recs []rec
	start := time.Now()
	for _, e := range col {
		bm := e.G.ToBitMatrix()
		auto, err := core.AutoReorder(bm, cfg.AutoOpt)
		if err != nil {
			continue
		}
		a := csr.FromBitMatrix(auto.Best.Matrix)
		comp, resid, err := venom.SplitToConform(a, auto.Best.Pattern)
		if err != nil {
			continue
		}
		stats := sptc.Stats(comp, cfg.Cost)
		r := rec{class: e.Class, speedups: map[int]float64{}}
		orig := csr.FromGraph(e.G)
		for _, h := range cfg.HSweep {
			base := cfg.Cost.CSRSpMMCycles(orig.NNZ(), orig.N, h)
			rev := cfg.Cost.VNMSpMMCycles(stats, h)
			if resid.NNZ() > 0 {
				rev += cfg.Cost.CSRSpMMCycles(resid.NNZ(), resid.N, h)
			}
			r.speedups[h] = base / rev
		}
		recs = append(recs, r)
	}
	for _, class := range []datasets.SizeClass{datasets.Small, datasets.Medium, datasets.Large} {
		for _, h := range cfg.HSweep {
			var sp []float64
			slow := 0
			for _, r := range recs {
				if r.class != class {
					continue
				}
				sp = append(sp, r.speedups[h])
				if r.speedups[h] < 1 {
					slow++
				}
			}
			if len(sp) == 0 {
				continue
			}
			maxV, minV := sp[0], sp[0]
			for _, v := range sp {
				if v > maxV {
					maxV = v
				}
				if v < minV {
					minV = v
				}
			}
			t.AddRow(class.String(), fmt.Sprintf("%d", h),
				f2(geomean(sp)), f2(maxV), f2(minV),
				pct(float64(slow)/float64(len(sp))), fmt.Sprintf("%d", len(sp)))
		}
	}
	t.AddNote("paper Figure 4: geomean 2.3-7.5x, max 43x, 3.9%% of matrices slow down; sweep took %v", time.Since(start).Round(time.Millisecond))
	return t
}
