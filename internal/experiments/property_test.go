package experiments

import (
	"strings"
	"testing"
)

// TestConfigValidate is the table-driven contract of Config.Validate:
// the shipped configurations pass, and each class of broken field is
// rejected with a message naming it.
func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
	if err := Quick().Validate(); err != nil {
		t.Fatalf("Quick() invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero-collection-scale", func(c *Config) { c.Collection.Scale = 0 }, "Collection.Scale"},
		{"negative-collection-scale", func(c *Config) { c.Collection.Scale = -1 }, "Collection.Scale"},
		{"zero-maxn", func(c *Config) { c.Collection.MaxN = 0 }, "MaxN"},
		{"zero-gnn-scale", func(c *Config) { c.GNNOpt.Scale = 0 }, "GNNOpt.Scale"},
		{"zero-hidden", func(c *Config) { c.Hidden = 0 }, "Hidden"},
		{"empty-hsweep", func(c *Config) { c.HSweep = nil }, "HSweep"},
		{"bad-hsweep-entry", func(c *Config) { c.HSweep = []int{64, 0} }, "HSweep"},
		{"zero-epochs", func(c *Config) { c.TrainCfg.Epochs = 0 }, "Epochs"},
		{"zero-lr", func(c *Config) { c.TrainCfg.LR = 0 }, "LR"},
		{"zero-ogbn", func(c *Config) { c.OGBNScale = 0 }, "OGBNScale"},
		{"negative-workers", func(c *Config) { c.Workers = -1 }, "Workers"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name field %q", err, tc.want)
			}
		})
	}
}

func TestRunAllRejectsInvalidConfig(t *testing.T) {
	cfg := Quick()
	cfg.Hidden = -3
	if _, err := RunAll(cfg, nil); err == nil {
		t.Fatal("RunAll accepted an invalid configuration")
	}
}

func sampleTable() *Table {
	tb := &Table{ID: "tableX", Title: "determinism probe", Header: []string{"name", "speedup", "note"}}
	tb.AddRow("alpha", f2(1.2345), "short")
	tb.AddRow("a-much-longer-name", f3(0.5), "wide cell to stretch a column")
	tb.AddRow("beta", pct(0.42), "x")
	tb.AddNote("geomean %s", f2(geomean([]float64{1.2, 2.4})))
	return tb
}

// TestTableFormattingDeterminism: rendering is a pure function of the
// table content — identical tables render byte-identically in every
// format, repeatedly.
func TestTableFormattingDeterminism(t *testing.T) {
	a, b := sampleTable(), sampleTable()
	for i := 0; i < 3; i++ {
		if a.String() != b.String() {
			t.Fatal("String() differs across identical tables")
		}
		if a.Markdown() != b.Markdown() {
			t.Fatal("Markdown() differs across identical tables")
		}
		aj, err := a.JSON()
		if err != nil {
			t.Fatal(err)
		}
		bj, err := b.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(aj) != string(bj) {
			t.Fatal("JSON() differs across identical tables")
		}
	}
}

// TestTableColumnsAligned: every rendered row of the plain format has
// its columns at the same byte offsets (the alignment contract the CLI
// output relies on).
func TestTableColumnsAligned(t *testing.T) {
	lines := strings.Split(strings.TrimRight(sampleTable().String(), "\n"), "\n")
	// lines[0] is the banner; lines[1] the header; lines[2] the rule.
	if len(lines) < 6 {
		t.Fatalf("unexpected render: %q", lines)
	}
	rule := lines[2]
	gap := strings.Index(rule, "  ")
	if gap < 0 {
		t.Fatalf("no column gap in rule %q", rule)
	}
	for _, ln := range lines[1:6] {
		if len(ln) <= gap+2 {
			t.Fatalf("line %q shorter than first column width", ln)
		}
		if ln[gap] != ' ' || ln[gap+1] != ' ' {
			t.Errorf("line %q misaligned at offset %d", ln, gap)
		}
	}
}

// TestStatHelpersDeterministic covers the aggregation helpers the
// tables are built from.
func TestStatHelpersDeterministic(t *testing.T) {
	vals := []float64{1.5, 2.5, 4.0, 8.0}
	if geomean(vals) != geomean(append([]float64(nil), vals...)) {
		t.Error("geomean not deterministic")
	}
	if mean(vals) != 4.0 {
		t.Errorf("mean = %g, want 4", mean(vals))
	}
	if median(vals) != 3.25 {
		t.Errorf("median = %g, want 3.25", median(vals))
	}
	if g := geomean([]float64{0, 0}); g != 0 {
		t.Errorf("geomean of zeros = %g, want 0", g)
	}
}
