package experiments

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/framework"
	"repro/internal/gnn"
	"repro/internal/graph"
)

// Table2 reports the GNN dataset statistics (paper Table 2) alongside
// the synthesized stand-in sizes.
func Table2(cfg Config) *Table {
	t := &Table{
		ID:     "table2",
		Title:  "GNN datasets (paper sizes vs synthesized stand-ins)",
		Header: []string{"Dataset", "paper #V", "paper #E", "paper #F", "gen #V", "gen #E", "gen #F", "#Classes"},
	}
	for _, ds := range datasets.GNNDatasets(cfg.GNNOpt) {
		st := graph.ComputeStats(ds.G, cfg.Seed)
		t.AddRow(ds.Name,
			fmt.Sprintf("%d", ds.PaperN), fmt.Sprintf("%d", ds.PaperE), fmt.Sprintf("%d", ds.PaperF),
			fmt.Sprintf("%d", st.Vertices), fmt.Sprintf("%d", st.Edges), fmt.Sprintf("%d", ds.X.Cols),
			fmt.Sprintf("%d", ds.Classes))
	}
	t.AddNote("stand-ins are planted-partition graphs scaled by %.2f with class-correlated features (DESIGN.md §1)", cfg.GNNOpt.Scale)
	return t
}

// prepAll prepares every GNN dataset (offline reordering + pruning).
func prepAll(cfg Config) ([]*framework.Prep, error) {
	var preps []*framework.Prep
	for _, ds := range datasets.GNNDatasets(cfg.GNNOpt) {
		p, err := framework.Prepare(ds, cfg.AutoOpt)
		if err != nil {
			return nil, fmt.Errorf("prepare %s: %w", ds.Name, err)
		}
		preps = append(preps, p)
	}
	return preps, nil
}

// speedupTable builds a Table 3/4-shaped result for the given setting
// relative to default-original: per dataset, per framework flavor, per
// model, LYR and ALL.
func speedupTable(cfg Config, preps []*framework.Prep, setting framework.Setting, id, title string) (*Table, error) {
	t := &Table{ID: id, Title: title}
	t.Header = []string{"Dataset", "Best V:N:M"}
	for _, fl := range []framework.Flavor{framework.PYG, framework.DGL} {
		for _, m := range gnn.AllModelKinds {
			t.Header = append(t.Header,
				fmt.Sprintf("%s %s LYR", fl, m), fmt.Sprintf("%s %s ALL", fl, m))
		}
	}
	run := framework.RunConfig{Hidden: cfg.Hidden, Forwards: 2, Seed: cfg.Seed}
	for _, prep := range preps {
		row := []string{prep.DS.Name, prep.Pattern.String()}
		for _, fl := range []framework.Flavor{framework.PYG, framework.DGL} {
			for _, m := range gnn.AllModelKinds {
				base, err := prep.Run(m, framework.DefaultOriginal, fl, run)
				if err != nil {
					return nil, err
				}
				rep, err := prep.Run(m, setting, fl, run)
				if err != nil {
					return nil, err
				}
				lyr, all := framework.Speedup(base, rep)
				row = append(row, f2(lyr), f2(all))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table3 reproduces the headline GNN speedups: revised-reordered over
// default-original for PYG and DGL across the four models.
func Table3(cfg Config) (*Table, error) {
	preps, err := prepAll(cfg)
	if err != nil {
		return nil, err
	}
	t, err := speedupTable(cfg, preps, framework.RevisedReordered,
		"table3", "Speedup of revised-reordered over default-original")
	if err != nil {
		return nil, err
	}
	t.AddNote("paper Table 3: GCN LYR 1.4-3.3x, SGC up to 8.6x; SAGE/Cheb in between; end-to-end 1.1-6.4x")
	return t, nil
}

// Table4 reproduces the control: default-reordered over
// default-original (expected ~1.0 everywhere — CUDA cores are
// oblivious to V:N:M patterns).
func Table4(cfg Config) (*Table, error) {
	preps, err := prepAll(cfg)
	if err != nil {
		return nil, err
	}
	t, err := speedupTable(cfg, preps, framework.DefaultReordered,
		"table4", "Speedup of default-reordered over default-original (control)")
	if err != nil {
		return nil, err
	}
	t.AddNote("paper Table 4: all entries 0.94-1.08 (no effect)")
	return t, nil
}

// Table5 reproduces the accuracy comparison: lossless reordering vs
// lossy magnitude pruning, per dataset and model.
func Table5(cfg Config) (*Table, error) {
	preps, err := prepAll(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table5",
		Title:  "Accuracy: reorder (lossless) vs revised-pruned (lossy)",
		Header: []string{"Dataset", "Prune ratio"},
	}
	for _, m := range gnn.AllModelKinds {
		t.Header = append(t.Header, fmt.Sprintf("%s reorder", m), fmt.Sprintf("%s prune", m), fmt.Sprintf("%s drop", m))
	}
	for _, prep := range preps {
		row := []string{prep.DS.Name, pct(prep.PruneStat.Ratio())}
		for _, m := range gnn.AllModelKinds {
			res, err := prep.TrainAccuracy(m, cfg.TrainCfg, cfg.Hidden, cfg.Seed)
			if err != nil {
				return nil, err
			}
			drop := res.ReorderAcc - res.PruneAcc
			row = append(row, f3(res.ReorderAcc), f3(res.PruneAcc), f3(drop))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper Table 5: reordering is lossless; pruning drops accuracy by 0.5-13.4%% depending on dataset/model")
	return t, nil
}
