package resil

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// CrashError is the payload a crash event panics with. The tile engine
// (internal/sched) recovers it into a TileError; higher layers convert
// it into a retryable error via Protect.
type CrashError struct {
	Site       string
	Occurrence int64
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("resil: injected crash at %s (occurrence %d)", e.Site, e.Occurrence)
}

// TransientError is the retryable error a transient event returns —
// the injected stand-in for an ECC-corrected load or a failed kernel
// launch that succeeds when reissued.
type TransientError struct {
	Site       string
	Occurrence int64
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("resil: injected transient error at %s (occurrence %d)", e.Site, e.Occurrence)
}

// siteState is one site's armed events, keyed by the exact hit count
// each fires on. The events map is immutable after construction, so
// Fire needs no lock — only the atomic hit counter.
type siteState struct {
	hits   atomic.Int64
	events map[int64]*Event
}

// Injector arms a fault plan: each call to Fire (directly or through
// the helpers) advances the named site's hit counter, and an event
// scheduled for exactly that occurrence fires once. All methods are
// safe for concurrent use and no-ops on a nil receiver, so a nil
// Injector is the disabled path at one pointer-test cost.
type Injector struct {
	seed  int64
	obs   *obs.Registry
	sites map[string]*siteState
}

// NewInjector arms plan, charging injected-fault counters
// (resil/injected/<kind>) to r when set. A nil plan yields a nil
// injector — injection disabled.
func NewInjector(plan *Plan, r *obs.Registry) *Injector {
	if plan == nil {
		return nil
	}
	in := &Injector{seed: plan.Seed, obs: r, sites: map[string]*siteState{}}
	for i := range plan.Events {
		e := plan.Events[i]
		st := in.sites[e.Site]
		if st == nil {
			st = &siteState{events: map[int64]*Event{}}
			in.sites[e.Site] = st
		}
		st.events[e.Occurrence] = &e
	}
	return in
}

// Fire advances site's hit counter and returns the event scheduled for
// this occurrence, or nil. Each event fires exactly once: the counter
// only grows, and occurrences match exactly. Sites not named by the
// plan cost one map lookup.
func (in *Injector) Fire(site string) *Event {
	if in == nil {
		return nil
	}
	st, ok := in.sites[site]
	if !ok {
		return nil
	}
	hit := st.hits.Add(1)
	e, ok := st.events[hit]
	if !ok {
		return nil
	}
	in.obs.Counter("resil/injected/" + e.Kind.String()).Inc()
	return e
}

// Exec fires site and applies execution-site semantics: a straggler
// event sleeps its delay; crash and transient events panic with a
// *CrashError / *TransientError (the tile engine recovers either into
// a TileError). Corrupt events are ignored — corruption applies to
// result buffers (Corrupt), not execution sites.
func (in *Injector) Exec(site string) {
	e := in.Fire(site)
	if e == nil {
		return
	}
	switch e.Kind {
	case KindStraggler:
		time.Sleep(e.Delay)
	case KindCrash:
		panic(&CrashError{Site: e.Site, Occurrence: e.Occurrence})
	case KindTransient:
		panic(&TransientError{Site: e.Site, Occurrence: e.Occurrence})
	}
}

// Begin fires site at the start of a protected attempt: a straggler
// event sleeps, a crash event panics with *CrashError (captured by the
// surrounding Protect), and a transient event returns a
// *TransientError for the retry loop. Corrupt events are ignored here.
func (in *Injector) Begin(site string) error {
	e := in.Fire(site)
	if e == nil {
		return nil
	}
	switch e.Kind {
	case KindStraggler:
		time.Sleep(e.Delay)
	case KindCrash:
		panic(&CrashError{Site: e.Site, Occurrence: e.Occurrence})
	case KindTransient:
		return &TransientError{Site: e.Site, Occurrence: e.Occurrence}
	}
	return nil
}

// Corrupt fires site and, if a corrupt event is scheduled for this
// occurrence, flips one deterministically-chosen bit of data in place
// (modeling a corrupted transfer of a partial result) and reports
// true. The flipped position is a pure function of (plan seed, site,
// occurrence), so a replayed plan corrupts identically. Other event
// kinds at the site are ignored.
func (in *Injector) Corrupt(site string, data []float32) bool {
	e := in.Fire(site)
	if e == nil || e.Kind != KindCorrupt || len(data) == 0 {
		return false
	}
	h := splitmix(uint64(in.seed) ^ hashString(e.Site) ^ uint64(e.Occurrence))
	i := int(h % uint64(len(data)))
	// XOR a mantissa bit: guaranteed to change the bit pattern, so the
	// receiver's checksum verification always detects it.
	data[i] = math.Float32frombits(math.Float32bits(data[i]) ^ 0x00400000)
	return true
}

// Obs returns the registry the injector charges (nil when none or on a
// nil injector).
func (in *Injector) Obs() *obs.Registry {
	if in == nil {
		return nil
	}
	return in.obs
}

// splitmix is the splitmix64 finalizer — a cheap, well-mixed hash for
// deterministic corruption positions.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a over the string bytes.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
