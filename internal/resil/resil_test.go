package resil

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParsePlanRoundTrip(t *testing.T) {
	cases := []string{
		"crash@sample:2",
		"seed=42;crash@tile:3;straggler@partition/1:1:5ms;corrupt@sample/xfer:2;transient@sample:1",
		"straggler@p:4:150us",
		"seed=-7;corrupt@a.b-c_d/e:9",
	}
	for _, in := range cases {
		p, err := ParsePlan(in)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", in, err)
		}
		s := p.String()
		p2, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", s, err)
		}
		if p2.String() != s {
			t.Errorf("round trip unstable: %q -> %q", s, p2.String())
		}
		if len(p2.Events) != len(p.Events) || p2.Seed != p.Seed {
			t.Errorf("round trip lost content for %q", in)
		}
	}
}

func TestParsePlanEmptyAndBad(t *testing.T) {
	for _, in := range []string{"", "  ", ";;", "\n,\n"} {
		p, err := ParsePlan(in)
		if err != nil || p != nil {
			t.Errorf("ParsePlan(%q) = %v, %v; want nil, nil", in, p, err)
		}
	}
	bad := []string{
		"boom@site:1",          // unknown kind
		"crash@:1",             // empty site
		"crash@site:0",         // occurrence < 1
		"crash@site:x",         // non-numeric occurrence
		"crash@site:1:5ms",     // delay on non-straggler
		"straggler@site:1:bad", // unparseable delay
		"straggler@site:1:-5s", // negative delay
		"crash@site:1:2:3",     // too many fields
		"crashsite",            // no @
		"seed=zz",              // bad seed
		"crash@sp ace:1",       // site charset
		"crash@s:1;crash@s:1",  // duplicate (site, occurrence)
	}
	for _, in := range bad {
		if _, err := ParsePlan(in); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", in)
		}
	}
}

func TestParsePlanDefaults(t *testing.T) {
	p, err := ParsePlan("straggler@s")
	if err != nil {
		t.Fatal(err)
	}
	e := p.Events[0]
	if e.Occurrence != 1 || e.Delay != DefaultStragglerDelay {
		t.Errorf("defaults not applied: %+v", e)
	}
	if got := p.Sites(); len(got) != 1 || got[0] != "s" {
		t.Errorf("Sites() = %v", got)
	}
}

func TestInjectorFiresExactlyOnce(t *testing.T) {
	p, err := ParsePlan("transient@s:3")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	in := NewInjector(p, reg)
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Fire("s") != nil {
			fired++
			if i != 2 {
				t.Errorf("event fired on hit %d, want hit 3", i+1)
			}
		}
		if in.Fire("other") != nil {
			t.Error("unscheduled site fired")
		}
	}
	if fired != 1 {
		t.Errorf("event fired %d times, want exactly once", fired)
	}
	if got := reg.Snapshot().Counters["resil/injected/transient"]; got != 1 {
		t.Errorf("injected counter = %d, want 1", got)
	}
}

func TestInjectorConcurrentExactlyOnce(t *testing.T) {
	p, _ := ParsePlan("corrupt@s:500")
	in := NewInjector(p, nil)
	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if in.Fire("s") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("event fired %d times under concurrency, want exactly once", fired)
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Fire("s") != nil {
		t.Error("nil injector fired")
	}
	in.Exec("s")
	if err := in.Begin("s"); err != nil {
		t.Error(err)
	}
	if in.Corrupt("s", []float32{1}) {
		t.Error("nil injector corrupted")
	}
	if in.Obs() != nil {
		t.Error("nil injector has obs")
	}
	if NewInjector(nil, nil) != nil {
		t.Error("NewInjector(nil) != nil")
	}
}

func TestBeginSemantics(t *testing.T) {
	p, _ := ParsePlan("crash@c:1;transient@t:1;straggler@s:1:1ms;corrupt@x:1")
	in := NewInjector(p, nil)

	err := Protect(func() error { in.Begin("c"); return nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("crash did not panic: %v", err)
	}
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Site != "c" {
		t.Fatalf("PanicError does not unwrap to CrashError: %v", err)
	}

	var te *TransientError
	if err := in.Begin("t"); !errors.As(err, &te) {
		t.Fatalf("transient Begin = %v", err)
	}
	start := time.Now()
	if err := in.Begin("s"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("straggler did not delay")
	}
	if err := in.Begin("x"); err != nil {
		t.Errorf("corrupt event at Begin should be ignored: %v", err)
	}
}

func TestCorruptDetectedByChecksum(t *testing.T) {
	p, _ := ParsePlan("seed=99;corrupt@xfer:1")
	in := NewInjector(p, nil)
	data := make([]float32, 64)
	for i := range data {
		data[i] = float32(i) * 0.5
	}
	sum := Checksum(data)
	if !in.Corrupt("xfer", data) {
		t.Fatal("corrupt event did not fire")
	}
	if Checksum(data) == sum {
		t.Fatal("corruption did not change the checksum")
	}
	// Replay: the same plan corrupts the same position.
	in2 := NewInjector(p, nil)
	data2 := make([]float32, 64)
	for i := range data2 {
		data2[i] = float32(i) * 0.5
	}
	in2.Corrupt("xfer", data2)
	if Checksum(data2) != Checksum(data) {
		t.Fatal("replayed plan corrupted differently")
	}
}

func TestCorruptEmptySliceNoop(t *testing.T) {
	p, _ := ParsePlan("corrupt@x:1")
	in := NewInjector(p, nil)
	if in.Corrupt("x", nil) {
		t.Error("corrupting an empty slice reported true")
	}
}

func TestRetrySucceedsAfterTransients(t *testing.T) {
	reg := obs.NewRegistry()
	calls := 0
	err := Retry(RetryPolicy{Max: 4, Backoff: -1}, reg, "site", func(attempt int) error {
		calls++
		if attempt < 2 {
			return &TransientError{Site: "site"}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if got := reg.Snapshot().Counters["resil/retries/site"]; got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
}

func TestRetryExhausts(t *testing.T) {
	sentinel := errors.New("always")
	err := Retry(RetryPolicy{Max: 2, Backoff: -1}, nil, "s", func(int) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("exhausted retry should wrap the last error: %v", err)
	}
}

func TestRetryBudget(t *testing.T) {
	err := Retry(RetryPolicy{Max: 100, Backoff: 2 * time.Millisecond, Budget: time.Millisecond}, nil, "s",
		func(int) error {
			time.Sleep(2 * time.Millisecond)
			return errors.New("slow failure")
		})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want BudgetError, got %v", err)
	}
	if be.Attempts >= 100 {
		t.Errorf("budget did not bound attempts: %d", be.Attempts)
	}
}

func TestProtectPassthrough(t *testing.T) {
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("plain")
	if err := Protect(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Protect altered a plain error: %v", err)
	}
	err := Protect(func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Recovered != "boom" {
		t.Fatalf("Protect(panic) = %v", err)
	}
	if !strings.Contains(string(pe.Stack), "resil") {
		t.Error("PanicError carries no stack")
	}
}

func TestIsInjected(t *testing.T) {
	if !IsInjected(&CrashError{}) || !IsInjected(&TransientError{}) || !IsInjected(&ChecksumError{}) {
		t.Error("injected error kinds not recognized")
	}
	if !IsInjected(&PanicError{Recovered: &CrashError{}}) {
		t.Error("wrapped crash not recognized")
	}
	if IsInjected(errors.New("genuine")) {
		t.Error("genuine error misclassified as injected")
	}
}

func TestSpeculateFastPath(t *testing.T) {
	v, err := Speculate(0, nil, func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("v=%v err=%v", v, err)
	}
}

func TestSpeculateRedispatch(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	redispatched := 0
	v, err := Speculate(2*time.Millisecond, func() { redispatched++ }, func() (any, error) {
		mu.Lock()
		first := calls == 0
		calls++
		mu.Unlock()
		if first {
			time.Sleep(200 * time.Millisecond) // straggler
		}
		return 11, nil
	})
	if err != nil || v.(int) != 11 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if redispatched != 1 {
		t.Errorf("redispatched=%d, want 1", redispatched)
	}
}

func TestSpeculateCapturesPanic(t *testing.T) {
	_, err := Speculate(time.Hour, nil, func() (any, error) { panic("dead worker") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
}

func TestChecksumSensitivity(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{1, 2, 3, 4}
	if Checksum(a) != Checksum(b) {
		t.Fatal("equal data, different checksums")
	}
	b[2] = 3.0000002
	if Checksum(a) == Checksum(b) {
		t.Fatal("one-ULP change not detected")
	}
	// Bit patterns matter, not values: -0 differs from +0.
	if Checksum([]float32{0}) == Checksum([]float32{float32(math.Copysign(0, -1))}) {
		t.Fatal("signed zero not distinguished")
	}
}
