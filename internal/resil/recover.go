package resil

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"time"

	"repro/internal/obs"
)

// PanicError wraps a panic recovered by Protect: the degraded-but-valid
// form of a crash, carrying the recovered value and the stack at the
// panic site.
type PanicError struct {
	Recovered any
	Stack     []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("resil: recovered panic: %v", e.Recovered)
}

// Unwrap exposes a recovered error value (a *CrashError, a
// sched.TileError, ...) to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Recovered.(error); ok {
		return err
	}
	return nil
}

// Protect runs fn and converts any panic — an injected crash, a tile
// panic re-raised by a kernel wrapper, a genuine bug — into a
// *PanicError, so callers can retry or degrade instead of dying.
func Protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Recovered: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// RetryPolicy bounds a recovery loop: at most Max attempts, separated
// by deterministic exponential backoff (Backoff, doubling per retry),
// all inside an optional wall-clock Budget.
type RetryPolicy struct {
	Max     int           // attempts in total; <= 0 means DefaultRetryMax
	Backoff time.Duration // first retry backoff, doubled per retry; < 0 disables sleeping, 0 means DefaultRetryBackoff
	Budget  time.Duration // wall-clock deadline across all attempts; 0 = unbounded
}

// DefaultRetryMax and DefaultRetryBackoff are the policy defaults the
// distributed layer applies when a zero RetryPolicy is given.
const (
	DefaultRetryMax     = 3
	DefaultRetryBackoff = time.Millisecond
)

// WithDefaults fills zero fields with the defaults.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.Max <= 0 {
		p.Max = DefaultRetryMax
	}
	if p.Backoff == 0 {
		p.Backoff = DefaultRetryBackoff
	}
	return p
}

// BudgetError reports a retry loop abandoned because its deadline
// budget was spent before an attempt succeeded.
type BudgetError struct {
	Site     string
	Attempts int
	Budget   time.Duration
	Last     error
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("resil: %s: deadline budget %v spent after %d attempts: %v",
		e.Site, e.Budget, e.Attempts, e.Last)
}

// Unwrap exposes the last attempt's error.
func (e *BudgetError) Unwrap() error { return e.Last }

// Retry runs op until it succeeds or the policy is exhausted: up to
// p.Max attempts with deterministic exponential backoff between them,
// abandoning early (with a *BudgetError) once the budget deadline
// passes. Retries are charged to r as the deterministic counter
// "resil/retries/<site>" — under a fixed fault plan the retry count is
// a pure function of the plan.
func Retry(p RetryPolicy, r *obs.Registry, site string, op func(attempt int) error) error {
	p = p.WithDefaults()
	var deadline time.Time
	if p.Budget > 0 {
		deadline = time.Now().Add(p.Budget)
	}
	var err error
	for attempt := 0; attempt < p.Max; attempt++ {
		if attempt > 0 {
			r.Counter("resil/retries/" + site).Inc()
			if p.Backoff > 0 {
				time.Sleep(p.Backoff << (attempt - 1))
			}
		}
		if err = op(attempt); err == nil {
			return nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return &BudgetError{Site: site, Attempts: attempt + 1, Budget: p.Budget, Last: err}
		}
	}
	return fmt.Errorf("resil: %s: %d attempts exhausted: %w", site, p.Max, err)
}

// Checksum returns an FNV-1a hash over the bit patterns of data — the
// integrity tag a worker computes over its partial result before
// transfer, and the receiver verifies after.
func Checksum(data []float32) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range data {
		b := math.Float32bits(v)
		h = (h ^ uint64(b&0xff)) * 1099511628211
		h = (h ^ uint64((b>>8)&0xff)) * 1099511628211
		h = (h ^ uint64((b>>16)&0xff)) * 1099511628211
		h = (h ^ uint64(b>>24)) * 1099511628211
	}
	return h
}

// ChecksumError reports a partial result whose post-transfer checksum
// did not match the one computed at the source.
type ChecksumError struct {
	Site string
	Want uint64
	Got  uint64
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("resil: %s: partial-result checksum mismatch: got %016x want %016x", e.Site, e.Got, e.Want)
}

// IsInjected reports whether err traces back to an injected fault (as
// opposed to a genuine failure) — crash, transient, or a checksum
// mismatch from injected corruption.
func IsInjected(err error) bool {
	var ce *CrashError
	var te *TransientError
	var se *ChecksumError
	return errors.As(err, &ce) || errors.As(err, &te) || errors.As(err, &se)
}

// Speculate runs compute and, if it has not returned within after,
// dispatches a second identical copy (the classic straggler mitigation
// of speculative execution): the first result to arrive wins and the
// loser is discarded. compute must be pure — under the execution
// engine's determinism contract both copies produce bit-identical
// results, so the race is benign. onRedispatch (may be nil) is called
// when the backup launches; charge it to a volatile counter, since
// whether a soft deadline fires depends on wall-clock scheduling.
// after <= 0 disables speculation. Panics in either copy are captured
// as *PanicError.
func Speculate(after time.Duration, onRedispatch func(), compute func() (any, error)) (any, error) {
	type outcome struct {
		v   any
		err error
	}
	run := func() outcome {
		var o outcome
		o.err = Protect(func() error {
			v, err := compute()
			o.v = v
			return err
		})
		return o
	}
	if after <= 0 {
		o := run()
		return o.v, o.err
	}
	ch := make(chan outcome, 2)
	go func() { ch <- run() }()
	timer := time.NewTimer(after)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-timer.C:
		if onRedispatch != nil {
			onRedispatch()
		}
		go func() { ch <- run() }()
		o := <-ch
		return o.v, o.err
	}
}
