// Package resil is the deterministic fault-injection and recovery
// layer: a seeded injector that fires scheduled faults (worker crash,
// straggler delay, corrupted partial result, transient kernel error) at
// named sites threaded through the execution stack, plus the recovery
// primitives — panic capture, bounded retry with deterministic backoff,
// result checksums, speculative re-dispatch — the distributed training
// pipeline uses to survive them.
//
// Determinism contract (DESIGN.md §10): a fault plan is a set of
// (site, occurrence) events. Every site maintains a hit counter; an
// event fires on the exact occurrence it names and never again, so
// replaying a plan against the same workload injects byte-identical
// faults, and the recovery machinery (which recomputes pure functions
// whose parallel execution is already bit-deterministic, DESIGN.md §7)
// restores results bit-identical to the fault-free run. A nil *Plan or
// nil *Injector disables injection entirely at the cost of one pointer
// test per site — the same contract internal/obs keeps for disabled
// instrumentation.
package resil

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the fault taxonomy.
type Kind uint8

const (
	// KindCrash panics at the site — the process-killing failure mode
	// (a worker segfault, an OOM kill) the tile engine converts into a
	// typed, recoverable error.
	KindCrash Kind = iota
	// KindStraggler delays the site by the event's Delay — the slow
	// worker the dispatcher mitigates by speculative re-dispatch.
	KindStraggler
	// KindCorrupt flips bits in the partial result transferred from the
	// site — detected by the receiver's checksum verification.
	KindCorrupt
	// KindTransient returns a retryable error from the site — the
	// ECC-correctable / launch-failure class that succeeds on retry.
	KindTransient
)

func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindStraggler:
		return "straggler"
	case KindCorrupt:
		return "corrupt"
	case KindTransient:
		return "transient"
	}
	return "unknown"
}

// DefaultStragglerDelay is the delay a straggler event applies when the
// plan names none.
const DefaultStragglerDelay = 10 * time.Millisecond

// Event is one scheduled fault: the Kind to inject when site Site is
// hit for the Occurrence-th time (1-based).
type Event struct {
	Kind       Kind
	Site       string
	Occurrence int64
	Delay      time.Duration // stragglers only
}

func (e Event) String() string {
	s := fmt.Sprintf("%s@%s:%d", e.Kind, e.Site, e.Occurrence)
	if e.Kind == KindStraggler {
		s += ":" + e.Delay.String()
	}
	return s
}

// Plan is a parsed fault plan: a seed (feeding the deterministic
// corruption patterns) and the scheduled events.
type Plan struct {
	Seed   int64
	Events []Event
}

// String renders the plan in the canonical form ParsePlan accepts:
// ParsePlan(p.String()) reproduces p exactly.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, 0, len(p.Events)+1)
	if p.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(p.Seed, 10))
	}
	for _, e := range p.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ";")
}

// siteOK reports whether every rune of a site name is in the allowed
// charset (letters, digits, '/', '_', '-', '.').
func siteOK(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '/' || r == '_' || r == '-' || r == '.':
		default:
			return false
		}
	}
	return true
}

// ParsePlan parses the textual fault-plan format the CLIs' -faults flag
// accepts: clauses separated by ';', ',' or newlines, each either
//
//	seed=<int>                          corruption seed (default 0)
//	<kind>@<site>[:<occurrence>]        crash | corrupt | transient
//	straggler@<site>[:<occurrence>][:<delay>]
//
// Occurrence is the 1-based hit count of the site the event fires on
// (default 1); delay is a Go duration (default 10ms). Sites are
// restricted to [A-Za-z0-9/_.-]. An empty plan string yields a nil
// Plan (injection disabled).
func ParsePlan(s string) (*Plan, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ';' || r == ',' || r == '\n'
	})
	p := &Plan{}
	for _, raw := range fields {
		clause := strings.TrimSpace(raw)
		if clause == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("resil: bad seed %q: %v", rest, err)
			}
			p.Seed = seed
			continue
		}
		kindStr, rest, ok := strings.Cut(clause, "@")
		if !ok {
			return nil, fmt.Errorf("resil: clause %q has no '@'", clause)
		}
		var kind Kind
		switch kindStr {
		case "crash":
			kind = KindCrash
		case "straggler":
			kind = KindStraggler
		case "corrupt":
			kind = KindCorrupt
		case "transient":
			kind = KindTransient
		default:
			return nil, fmt.Errorf("resil: unknown fault kind %q", kindStr)
		}
		ev := Event{Kind: kind, Occurrence: 1}
		if kind == KindStraggler {
			ev.Delay = DefaultStragglerDelay
		}
		parts := strings.Split(rest, ":")
		ev.Site = parts[0]
		if !siteOK(ev.Site) {
			return nil, fmt.Errorf("resil: bad site %q", ev.Site)
		}
		args := parts[1:]
		if len(args) > 0 && args[0] != "" {
			occ, err := strconv.ParseInt(args[0], 10, 64)
			if err != nil || occ < 1 {
				return nil, fmt.Errorf("resil: bad occurrence %q in %q", args[0], clause)
			}
			ev.Occurrence = occ
		}
		if len(args) > 1 {
			if kind != KindStraggler {
				return nil, fmt.Errorf("resil: delay only valid for straggler events: %q", clause)
			}
			d, err := time.ParseDuration(args[1])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("resil: bad delay %q in %q", args[1], clause)
			}
			ev.Delay = d
		}
		if len(args) > 2 {
			return nil, fmt.Errorf("resil: too many fields in %q", clause)
		}
		for _, prev := range p.Events {
			if prev.Site == ev.Site && prev.Occurrence == ev.Occurrence {
				return nil, fmt.Errorf("resil: duplicate event for (%s, %d)", ev.Site, ev.Occurrence)
			}
		}
		p.Events = append(p.Events, ev)
	}
	if p.Seed == 0 && len(p.Events) == 0 {
		return nil, nil
	}
	return p, nil
}

// Sites returns the distinct sites the plan schedules events at, in
// sorted order.
func (p *Plan) Sites() []string {
	if p == nil {
		return nil
	}
	set := map[string]bool{}
	for _, e := range p.Events {
		set[e.Site] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
