// Package dyn maintains a V:N:M-reordered adjacency matrix under a
// stream of edge inserts and deletes — ROADMAP item 2 (dynamic-graph
// support). A Mutable wraps the output of a full reorder
// (core.Result) and, per mutation, performs *localized* repair instead
// of re-running the whole dual-level algorithm:
//
//   - PScore/MBScore are tracked by exact deltas: an edge flip at
//     positions (i, j) can only change the segment vectors (i, seg(j))
//     and (j, seg(i)) and the meta-blocks (band(i), seg(j)) and
//     (band(j), seg(i)), so those partial scores (pattern.RowPScore
//     and friends) are recomputed before and after and the running
//     totals adjusted — never a full rescan.
//   - When an insert breaks conformity, repair re-derives Stage-1 row
//     encodings only for the touched rows (hamming position codes of
//     their segment bits) and re-evaluates only the meta-blocks and
//     stripes the candidate swap touches; every candidate swap is
//     exactly evaluated apply→score→revert and kept only if total
//     violations strictly decrease, so the incremental bookkeeping
//     stays equal to ground truth (check.IncrementalEquivalence).
//   - Conformity drift since the last full reorder is priced with the
//     internal/predictor/cycle cost model; when the modeled drift
//     cycles exceed a configurable fraction (the staleness budget) of
//     the per-epoch cycle savings the reorder bought, the Mutable
//     triggers a full re-reorder and composes the permutations.
//
// All state transitions are deterministic and worker-count-invariant:
// scoring reductions are exact integer sums (pool-size invariant),
// core.Reorder is bit-identical across worker counts, and repair is a
// serial deterministic scan.
package dyn

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/hamming"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/sptc"
	"repro/internal/venom"
)

// dynError is a typed constant error: the package keeps sentinel
// errors as consts (not package-level vars) to satisfy the kernel
// purity lint in scripts/ci.sh.
type dynError string

func (e dynError) Error() string { return string(e) }

const (
	// ErrNoResult is returned by New when the wrapped reorder result
	// (or its matrix) is nil.
	ErrNoResult = dynError("dyn: nil reorder result")
	// ErrBudget is returned by New when the staleness budget is zero,
	// negative, or NaN: a Mutable always needs an explicit positive
	// budget (DefaultStalenessBudget is the facade's choice).
	ErrBudget = dynError("dyn: staleness budget must be positive")
	// ErrEmptyGraph is returned for any mutation against a 0-vertex
	// graph.
	ErrEmptyGraph = dynError("dyn: mutation on empty graph")
	// ErrVertexRange is returned when a mutation names a vertex
	// outside [0, n).
	ErrVertexRange = dynError("dyn: vertex out of range")
	// ErrEdgeExists is returned for an insert of an edge already
	// present (duplicate insert).
	ErrEdgeExists = dynError("dyn: edge already present")
	// ErrEdgeMissing is returned for a delete of an edge not present.
	ErrEdgeMissing = dynError("dyn: edge not present")
	// ErrUnknownOp is returned for a Mutation with an invalid Op.
	ErrUnknownOp = dynError("dyn: unknown mutation op")
)

const (
	// DefaultStalenessBudget is the facade default: a rebuild triggers
	// when modeled drift cycles exceed half the per-epoch savings the
	// last reorder bought.
	DefaultStalenessBudget = 0.5
	// DefaultH is the dense width the drift pricing assumes when
	// Options.H is zero (the common GNN hidden width in BENCH_spmm).
	DefaultH = 32
	// DefaultMaxRepairCandidates bounds the exactly-evaluated swap
	// candidates per violated cell when Options.MaxRepairCandidates is
	// zero.
	DefaultMaxRepairCandidates = 16
)

// Options configures a Mutable.
type Options struct {
	// StalenessBudget is the rebuild trigger, as a fraction of the
	// modeled per-epoch cycle savings of the last full reorder: when
	// the priced conformity drift exceeds budget × savings, the next
	// mutation triggers a full re-reorder. Must be > 0 (New returns
	// ErrBudget otherwise); if the last reorder bought no savings,
	// staleness costs nothing and no rebuild ever triggers.
	StalenessBudget float64
	// H is the dense width used to price drift and savings with the
	// cycle model. Zero means DefaultH.
	H int
	// MaxRepairCandidates bounds how many candidate swaps repair
	// exactly evaluates per violated cell. Zero means
	// DefaultMaxRepairCandidates; negative disables repair (like
	// DisableRepair).
	MaxRepairCandidates int
	// DisableRepair turns off localized repair: mutations only
	// maintain scores (useful for the metamorphic no-op theorems).
	DisableRepair bool
	// Workers sizes the pool for the full-scan scoring passes at
	// construction and rebuild; every setting is bit-identical
	// (DESIGN.md §8).
	Workers int
	// Reorder configures the full re-reorder a staleness rebuild runs.
	// Its Workers/Obs fields default to this struct's when unset.
	Reorder core.Options
	// Obs, when set, charges dyn/* counters and spans.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.H == 0 {
		o.H = DefaultH
	}
	if o.MaxRepairCandidates == 0 {
		o.MaxRepairCandidates = DefaultMaxRepairCandidates
	}
	if o.MaxRepairCandidates < 0 {
		o.DisableRepair = true
	}
	return o
}

// Outcome reports what one applied mutation did to the maintained
// state.
type Outcome struct {
	Mutation Mutation
	// DeltaPScore/DeltaMBScore are the net score changes of the
	// mutation including any repair swaps (before any rebuild).
	DeltaPScore  int
	DeltaMBScore int
	// RepairSwaps counts accepted localized repair swaps.
	RepairSwaps int
	// Rebuilt reports that the staleness budget was exceeded and a
	// full re-reorder ran.
	Rebuilt bool
}

// Stats summarizes the lifetime of a Mutable.
type Stats struct {
	Mutations   int `json:"mutations"`
	Inserts     int `json:"inserts"`
	Deletes     int `json:"deletes"`
	Repairs     int `json:"repairs"`      // repair invocations
	RepairSwaps int `json:"repair_swaps"` // accepted swaps
	Rebuilds    int `json:"rebuilds"`

	PScore      int `json:"pscore"`       // current horizontal violations
	MBScore     int `json:"mbscore"`      // current vertical violations
	BasePScore  int `json:"base_pscore"`  // right after the last full reorder
	BaseMBScore int `json:"base_mbscore"` //

	DriftCycles         float64 `json:"drift_cycles"`  // priced drift vs base
	BudgetCycles        float64 `json:"budget_cycles"` // rebuild threshold
	SavedCyclesPerEpoch float64 `json:"saved_cycles_per_epoch"`
}

// Mutable is a reordered adjacency matrix that stays live under edge
// mutations. Mutations are expressed in ORIGINAL vertex ids (the
// numbering the wrapped reorder started from); the Mutable maps them
// through its maintained permutation, so a stream keeps meaning the
// same graph change across repairs and rebuilds.
type Mutable struct {
	opt Options
	pat pattern.VNM
	cm  sptc.CostModel

	m    *bitmat.Matrix
	perm []int // position -> original vertex
	inv  []int // original vertex -> position

	pscore, mbscore int // exact running violation counts
	baseP, baseMB   int // conformity right after the last full reorder
	saved           float64
	drift           float64

	stats Stats
}

// New wraps a completed reorder in a Mutable. The result's matrix is
// cloned, so the caller's Result stays valid. Returns ErrNoResult for
// a nil result/matrix and ErrBudget for a non-positive staleness
// budget.
func New(res *core.Result, opt Options) (*Mutable, error) {
	if res == nil || res.Matrix == nil {
		return nil, ErrNoResult
	}
	if !(opt.StalenessBudget > 0) { // also rejects NaN
		return nil, ErrBudget
	}
	opt = opt.withDefaults()
	n := res.Matrix.N()
	d := &Mutable{
		opt:  opt,
		pat:  res.Pattern,
		cm:   sptc.DefaultCostModel(),
		m:    res.Matrix.Clone(),
		perm: append([]int(nil), res.Perm...),
		inv:  make([]int, n),
	}
	if len(d.perm) != n {
		return nil, fmt.Errorf("dyn: perm length %d != n %d", len(d.perm), n)
	}
	for pos, orig := range d.perm {
		d.inv[orig] = pos
	}
	pool := sched.New(opt.Workers)
	d.pscore = pattern.PScoreOn(pool, d.m, d.pat)
	d.mbscore = pattern.MBScoreOn(pool, d.m, d.pat)
	d.reprice()
	return d, nil
}

// N returns the vertex count.
func (d *Mutable) N() int { return d.m.N() }

// Pattern returns the maintained V:N:M pattern.
func (d *Mutable) Pattern() pattern.VNM { return d.pat }

// Matrix returns the maintained reordered adjacency matrix. It aliases
// internal state — callers must treat it as read-only.
func (d *Mutable) Matrix() *bitmat.Matrix { return d.m }

// Perm returns a copy of the maintained permutation (position ->
// original vertex id).
func (d *Mutable) Perm() []int { return append([]int(nil), d.perm...) }

// Violations returns the exactly-maintained conformity scores.
func (d *Mutable) Violations() pattern.Violations {
	return pattern.Violations{Pattern: d.pat, PScore: d.pscore, MBScore: d.mbscore}
}

// Stats returns lifetime counters and the current drift pricing.
func (d *Mutable) Stats() Stats {
	s := d.stats
	s.PScore, s.MBScore = d.pscore, d.mbscore
	s.BasePScore, s.BaseMBScore = d.baseP, d.baseMB
	s.DriftCycles = d.drift
	s.BudgetCycles = d.opt.StalenessBudget * d.saved
	s.SavedCyclesPerEpoch = d.saved
	return s
}

// Insert applies an edge insert in original ids.
func (d *Mutable) Insert(u, v int) (Outcome, error) {
	return d.Apply(Mutation{Op: OpInsert, U: u, V: v})
}

// Delete applies an edge delete in original ids.
func (d *Mutable) Delete(u, v int) (Outcome, error) {
	return d.Apply(Mutation{Op: OpDelete, U: u, V: v})
}

// Apply applies one mutation. A rejected mutation (typed error) leaves
// the Mutable bit-identical to before the call.
func (d *Mutable) Apply(mut Mutation) (Outcome, error) {
	out := Outcome{Mutation: mut}
	n := d.m.N()
	if n == 0 {
		return out, ErrEmptyGraph
	}
	if mut.Op != OpInsert && mut.Op != OpDelete {
		return out, ErrUnknownOp
	}
	if mut.U < 0 || mut.U >= n || mut.V < 0 || mut.V >= n {
		return out, ErrVertexRange
	}
	i, j := d.inv[mut.U], d.inv[mut.V]
	present := d.m.Get(i, j)
	if mut.Op == OpInsert && present {
		return out, ErrEdgeExists
	}
	if mut.Op == OpDelete && !present {
		return out, ErrEdgeMissing
	}
	ob := d.opt.Obs
	ob.Counter("dyn/mutations").Inc()

	// Exact delta: only the two touched segment vectors and the two
	// touched meta-blocks can change.
	cells, blocks := d.edgeRegion(i, j)
	beforeP, beforeMB := d.regionScores(cells, blocks)
	if mut.Op == OpInsert {
		ob.Counter("dyn/inserts").Inc()
		d.stats.Inserts++
		d.m.Set(i, j)
		d.m.Set(j, i)
	} else {
		ob.Counter("dyn/deletes").Inc()
		d.stats.Deletes++
		d.m.Clear(i, j)
		d.m.Clear(j, i)
	}
	d.stats.Mutations++
	afterP, afterMB := d.regionScores(cells, blocks)
	d.pscore += afterP - beforeP
	d.mbscore += afterMB - beforeMB
	out.DeltaPScore = afterP - beforeP
	out.DeltaMBScore = afterMB - beforeMB

	if !d.opt.DisableRepair && out.DeltaPScore+out.DeltaMBScore > 0 {
		sp := ob.Span("dyn/repair")
		p0, mb0 := d.pscore, d.mbscore
		out.RepairSwaps = d.repair(i, j)
		sp.End()
		d.stats.Repairs++
		d.stats.RepairSwaps += out.RepairSwaps
		ob.Counter("dyn/repairs").Inc()
		ob.Counter("dyn/repair_swaps").Add(int64(out.RepairSwaps))
		out.DeltaPScore += d.pscore - p0
		out.DeltaMBScore += d.mbscore - mb0
	}

	rebuilt, err := d.maybeRebuild()
	if err != nil {
		return out, err
	}
	out.Rebuilt = rebuilt
	return out, nil
}

// ApplyStream applies every mutation of a stream in order, stopping at
// the first error. A nil stream is a no-op.
func (d *Mutable) ApplyStream(st *Stream) ([]Outcome, error) {
	if st == nil {
		return nil, nil
	}
	outs := make([]Outcome, 0, len(st.Ops))
	for k, mut := range st.Ops {
		out, err := d.Apply(mut)
		if err != nil {
			return outs, fmt.Errorf("dyn: op %d (%s): %w", k, mut, err)
		}
		outs = append(outs, out)
	}
	return outs, nil
}

// edgeRegion returns the deduplicated segment-vector cells and
// meta-blocks an edge flip at positions (i, j) can affect.
func (d *Mutable) edgeRegion(i, j int) (cells, blocks [][2]int) {
	si, sj := i/d.pat.M, j/d.pat.M
	bi, bj := i/d.pat.V, j/d.pat.V
	cells = append(cells, [2]int{i, sj})
	if i != j || si != sj {
		if c := ([2]int{j, si}); c != cells[0] {
			cells = append(cells, c)
		}
	}
	blocks = append(blocks, [2]int{bi, sj})
	if b := ([2]int{bj, si}); b != blocks[0] {
		blocks = append(blocks, b)
	}
	return cells, blocks
}

// regionScores counts the violations inside an explicit cell/block
// region.
func (d *Mutable) regionScores(cells, blocks [][2]int) (p, mb int) {
	for _, c := range cells {
		if d.m.SegmentPop(c[0], c[1], d.pat.M) > d.pat.N {
			p++
		}
	}
	for _, b := range blocks {
		if !pattern.MetaBlockVerticalValid(d.m, d.pat, b[0]*d.pat.V, b[1]) {
			mb++
		}
	}
	return p, mb
}

// swapRegionScores counts the violations inside the closed region a
// SwapSym(u, v) can affect: rows {u, v} across every stripe, plus
// stripes {seg(u), seg(v)} across every other row (P level), and bands
// {band(u), band(v)} across every stripe plus stripes {seg(u), seg(v)}
// across every other band (MB level). The region is identical before
// and after the swap, so before/after differences are exact deltas.
func (d *Mutable) swapRegionScores(u, v int) (p, mb int) {
	pat := d.pat
	n := d.m.N()
	su, sv := u/pat.M, v/pat.M
	bu, bv := u/pat.V, v/pat.V
	nb := pattern.NumBlockRows(d.m, pat)

	p = pattern.RowPScore(d.m, pat, u)
	if v != u {
		p += pattern.RowPScore(d.m, pat, v)
	}
	for _, s := range uniq2(su, sv) {
		for r := 0; r < n; r++ {
			if r == u || r == v {
				continue
			}
			if d.m.SegmentPop(r, s, pat.M) > pat.N {
				p++
			}
		}
	}

	mb = pattern.BlockRowMBScore(d.m, pat, bu)
	if bv != bu {
		mb += pattern.BlockRowMBScore(d.m, pat, bv)
	}
	for _, s := range uniq2(su, sv) {
		for b := 0; b < nb; b++ {
			if b == bu || b == bv {
				continue
			}
			if !pattern.MetaBlockVerticalValid(d.m, pat, b*pat.V, s) {
				mb++
			}
		}
	}
	return p, mb
}

// trySwap exactly evaluates SwapSym(u, v): apply, rescore the closed
// region, and keep the swap only if total violations strictly
// decrease; otherwise revert. Accepting updates the running scores and
// the permutation.
func (d *Mutable) trySwap(u, v int) bool {
	if u == v {
		return false
	}
	beforeP, beforeMB := d.swapRegionScores(u, v)
	d.m.SwapSym(u, v)
	afterP, afterMB := d.swapRegionScores(u, v)
	dP, dMB := afterP-beforeP, afterMB-beforeMB
	if dP+dMB < 0 {
		d.pscore += dP
		d.mbscore += dMB
		ou, ov := d.perm[u], d.perm[v]
		d.perm[u], d.perm[v] = ov, ou
		d.inv[ou], d.inv[ov] = v, u
		return true
	}
	d.m.SwapSym(u, v) // revert
	return false
}

// repair runs the localized greedy repair after an insert at positions
// (i, j) increased violations. Horizontal violations relocate the
// offending endpoint's column into a spare-capacity stripe
// (sparsest-first, mirroring Stage-2's detail (ii)); vertical
// violations re-derive the touched row's Stage-1 encoding (hamming
// position codes of its segment bits) and look for a mask-compatible
// partner row outside the band. Every candidate is exactly evaluated
// by trySwap, so accepted swaps strictly decrease total violations.
// Returns the number of accepted swaps.
func (d *Mutable) repair(i, j int) int {
	swaps := 0
	maxCand := d.opt.MaxRepairCandidates
	cells, blocks := d.edgeRegion(i, j)
	for _, c := range cells {
		r, s := c[0], c[1]
		if d.m.SegmentPop(r, s, d.pat.M) <= d.pat.N {
			continue
		}
		// The relocatable endpoint whose column sits in stripe s.
		t := j
		if r == j && i/d.pat.M == s {
			t = i
		}
		if d.repairHorizontal(r, s, t, maxCand) {
			swaps++
		}
	}
	for _, blk := range blocks {
		b, s := blk[0], blk[1]
		if pattern.MetaBlockVerticalValid(d.m, d.pat, b*d.pat.V, s) {
			continue
		}
		t := i
		if j/d.pat.V == b {
			t = j
		}
		if d.repairVertical(b, s, t, maxCand) {
			swaps++
		}
	}
	return swaps
}

// repairHorizontal fixes an over-full segment vector (r, s) by
// swapping the offending column t into a stripe where row r has spare
// horizontal capacity, trying the sparsest stripes first.
func (d *Mutable) repairHorizontal(r, s, t, maxCand int) bool {
	pat := d.pat
	n := d.m.N()
	segs := d.m.NumSegments(pat.M)
	// Stripes with spare capacity in row r, sparsest first (ties by
	// stripe index: deterministic).
	type stripe struct{ pop, s int }
	var cand []stripe
	for s2 := 0; s2 < segs; s2++ {
		if s2 == s {
			continue
		}
		if pop := d.m.SegmentPop(r, s2, pat.M); pop < pat.N {
			cand = append(cand, stripe{pop, s2})
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if cand[a].pop != cand[b].pop {
			return cand[a].pop < cand[b].pop
		}
		return cand[a].s < cand[b].s
	})
	tried := 0
	for _, st := range cand {
		lo, hi := st.s*pat.M, (st.s+1)*pat.M
		if hi > n {
			hi = n
		}
		for c := lo; c < hi && tried < maxCand; c++ {
			if c == r || c == t || d.m.Get(r, c) {
				continue
			}
			tried++
			if d.trySwap(t, c) {
				return true
			}
		}
		if tried >= maxCand {
			break
		}
	}
	return false
}

// repairVertical fixes an over-wide meta-block (band b, stripe s) by
// swapping the touched row t out of the band for a partner row whose
// segment bits fit the band's remaining column set. Candidates are
// ranked by the resulting distinct-column count, then by hamming
// distance between the partner's Stage-1 position code and the
// touched row's (recomputed here, only for the touched row), then by
// row index — a deterministic, bounded shortlist that the exact
// trySwap evaluation then filters.
func (d *Mutable) repairVertical(b, s, t, maxCand int) bool {
	pat := d.pat
	n := d.m.N()
	lo, hi := b*pat.V, (b+1)*pat.V
	if hi > n {
		hi = n
	}
	var bandRest uint64
	for r := lo; r < hi; r++ {
		if r != t {
			bandRest |= d.m.Segment(r, s, pat.M)
		}
	}
	tCode := hamming.PositionCode(d.m.Segment(t, s, pat.M))
	type cand struct {
		cols, dist, r int
	}
	shortlist := make([]cand, 0, maxCand+1)
	for r := 0; r < n; r++ {
		if r >= lo && r < hi {
			continue
		}
		seg := d.m.Segment(r, s, pat.M)
		c := cand{
			cols: bits.OnesCount64(bandRest | seg),
			dist: hamming.Distance(hamming.PositionCode(seg), tCode),
			r:    r,
		}
		if c.cols > pat.EffK() {
			continue // would still violate: not worth exact evaluation
		}
		pos := len(shortlist)
		for pos > 0 && less(c, shortlist[pos-1]) {
			pos--
		}
		if pos < maxCand {
			shortlist = append(shortlist, cand{})
			copy(shortlist[pos+1:], shortlist[pos:])
			shortlist[pos] = c
			if len(shortlist) > maxCand {
				shortlist = shortlist[:maxCand]
			}
		}
	}
	for _, c := range shortlist {
		if d.trySwap(t, c.r) {
			return true
		}
	}
	return false
}

func less(a, b struct{ cols, dist, r int }) bool {
	if a.cols != b.cols {
		return a.cols < b.cols
	}
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.r < b.r
}

// reprice refreshes the staleness baseline: the conformity scores
// right after a full reorder and the modeled per-epoch cycle savings
// that reorder bought (CSR on the graph vs the V:N:M hybrid split of
// the reordered matrix).
func (d *Mutable) reprice() {
	d.baseP, d.baseMB = d.pscore, d.mbscore
	d.drift = 0
	a := csr.FromBitMatrix(d.m)
	csrCycles := d.cm.CSRSpMMCycles(a.NNZ(), a.N, d.opt.H)
	comp, resid, err := venom.SplitToConform(a, d.pat)
	if err != nil {
		d.saved = 0
		return
	}
	hybrid := d.cm.VNMSpMMCycles(sptc.Stats(comp, d.cm), d.opt.H)
	if resid.NNZ() > 0 {
		hybrid += d.cm.CSRSpMMCycles(resid.NNZ(), resid.N, d.opt.H)
	}
	d.saved = csrCycles - hybrid
	if d.saved < 0 {
		d.saved = 0
	}
}

// maybeRebuild prices the conformity drift since the last full reorder
// and triggers one when it exceeds the staleness budget. Drift is an
// upper bound on the extra residual nonzeros the violations force out
// of the compressed format — each extra violating segment vector
// strands at most M nonzeros, each extra violating meta-block at most
// V×M — priced at the CSR per-element cost of the cycle model. If the
// last reorder bought no savings, staleness costs nothing and no
// rebuild triggers.
func (d *Mutable) maybeRebuild() (bool, error) {
	driftP := d.pscore - d.baseP
	if driftP < 0 {
		driftP = 0
	}
	driftMB := d.mbscore - d.baseMB
	if driftMB < 0 {
		driftMB = 0
	}
	driftNNZ := driftP*d.pat.M + driftMB*d.pat.V*d.pat.M
	d.drift = d.cm.CSRSpMMCycles(driftNNZ, 0, d.opt.H)
	if d.saved <= 0 || d.drift <= d.opt.StalenessBudget*d.saved {
		return false, nil
	}
	ob := d.opt.Obs
	sp := ob.Span("dyn/rebuild")
	defer sp.End()
	ropt := d.opt.Reorder
	if ropt.Workers == 0 {
		ropt.Workers = d.opt.Workers
	}
	if ropt.Obs == nil {
		ropt.Obs = d.opt.Obs
	}
	res, err := core.Reorder(d.m, d.pat, ropt)
	if err != nil {
		return false, fmt.Errorf("dyn: rebuild: %w", err)
	}
	// res.Perm maps new position -> position in the old numbering;
	// compose with the maintained position -> original mapping.
	newPerm := make([]int, len(d.perm))
	for pos, oldPos := range res.Perm {
		newPerm[pos] = d.perm[oldPos]
	}
	d.perm = newPerm
	for pos, orig := range d.perm {
		d.inv[orig] = pos
	}
	d.m = res.Matrix
	d.pscore, d.mbscore = res.FinalPScore, res.FinalMBScore
	d.reprice()
	d.stats.Rebuilds++
	ob.Counter("dyn/rebuilds").Inc()
	return true, nil
}

func uniq2(a, b int) []int {
	if a == b {
		return []int{a}
	}
	return []int{a, b}
}
