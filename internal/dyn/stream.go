package dyn

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Op enumerates the two edge mutations a dynamic graph stream carries.
type Op uint8

const (
	// OpInsert adds an undirected edge (a self-loop when U == V).
	OpInsert Op = iota
	// OpDelete removes an existing undirected edge.
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "add"
	case OpDelete:
		return "del"
	}
	return "unknown"
}

// Mutation is one edge insert or delete, in ORIGINAL vertex ids (the
// numbering of the graph that was reordered — Mutable maps through the
// maintained permutation internally, so streams are stable across
// rebuilds).
type Mutation struct {
	Op   Op
	U, V int
}

func (m Mutation) String() string {
	return fmt.Sprintf("%s@%d-%d", m.Op, m.U, m.V)
}

// Stream is a parsed mutation stream: an optional seed recording the
// generator provenance (GenerateStream) and the ordered mutations.
type Stream struct {
	Seed int64
	Ops  []Mutation
}

// String renders the stream in the canonical form ParseMutations
// accepts: ParseMutations(s.String()) reproduces s exactly (the same
// parse-String fixed point resil.Plan keeps for fault plans).
func (s *Stream) String() string {
	if s == nil {
		return ""
	}
	parts := make([]string, 0, len(s.Ops)+1)
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	for _, m := range s.Ops {
		parts = append(parts, m.String())
	}
	return strings.Join(parts, "; ")
}

// ParseMutations parses the textual mutation-stream format the CLIs'
// -mutate flag accepts: clauses separated by ';', ',' or newlines, each
// either
//
//	seed=<int>          generator seed the stream was drawn with
//	add@<u>-<v>         insert undirected edge {u, v} (u == v: self-loop)
//	del@<u>-<v>         delete undirected edge {u, v}
//
// Vertex ids are nonnegative integers in the ORIGINAL numbering.
// Duplicate clauses are allowed — applying them simply fails with the
// typed edge errors at apply time. An empty stream string yields a nil
// Stream (no mutations).
func ParseMutations(s string) (*Stream, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ';' || r == ',' || r == '\n'
	})
	st := &Stream{}
	for _, raw := range fields {
		clause := strings.TrimSpace(raw)
		if clause == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dyn: bad seed %q: %v", rest, err)
			}
			st.Seed = seed
			continue
		}
		opStr, rest, ok := strings.Cut(clause, "@")
		if !ok {
			return nil, fmt.Errorf("dyn: clause %q has no '@'", clause)
		}
		var op Op
		switch opStr {
		case "add":
			op = OpInsert
		case "del":
			op = OpDelete
		default:
			return nil, fmt.Errorf("dyn: unknown op %q in %q", opStr, clause)
		}
		uStr, vStr, ok := strings.Cut(rest, "-")
		if !ok {
			return nil, fmt.Errorf("dyn: clause %q has no '-' edge separator", clause)
		}
		u, err := parseVertex(uStr, clause)
		if err != nil {
			return nil, err
		}
		v, err := parseVertex(vStr, clause)
		if err != nil {
			return nil, err
		}
		st.Ops = append(st.Ops, Mutation{Op: op, U: u, V: v})
	}
	if st.Seed == 0 && len(st.Ops) == 0 {
		return nil, nil
	}
	return st, nil
}

func parseVertex(s, clause string) (int, error) {
	// Reject forms strconv accepts but the canonical renderer never
	// emits (signs, leading zeros) so parse-String is a fixed point.
	if s == "" || (len(s) > 1 && s[0] == '0') {
		return 0, fmt.Errorf("dyn: bad vertex %q in %q", s, clause)
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("dyn: bad vertex %q in %q", s, clause)
	}
	return v, nil
}

// GenerateStream draws a seeded random mutation stream that is valid
// against g: every insert names an edge absent at that point of the
// stream and every delete an edge present, so applying the stream in
// order never hits the typed edge errors. Roughly half the mutations
// are inserts. The returned stream records the seed.
func GenerateStream(g *graph.Graph, nOps int, seed int64) *Stream {
	n := g.N()
	rng := rand.New(rand.NewSource(seed))
	st := &Stream{Seed: seed}
	if n == 0 || nOps <= 0 {
		return st
	}
	// Live edge set: membership map plus a slice for uniform deletion
	// picks. Keys are u*n+v with u <= v.
	key := func(u, v int) int {
		if u > v {
			u, v = v, u
		}
		return u*n + v
	}
	present := make(map[int]int) // key -> index in edges
	var edges [][2]int
	addEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		present[key(u, v)] = len(edges)
		edges = append(edges, [2]int{u, v})
	}
	delEdge := func(u, v int) {
		k := key(u, v)
		i := present[k]
		last := edges[len(edges)-1]
		edges[i] = last
		present[key(last[0], last[1])] = i
		edges = edges[:len(edges)-1]
		delete(present, k)
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) >= u {
				addEdge(u, int(v))
			}
		}
	}
	for len(st.Ops) < nOps {
		insert := rng.Intn(2) == 0
		if len(edges) == 0 {
			insert = true
		}
		if insert {
			// Sample absent pairs; bail to deletion if the graph is near
			// complete and sampling keeps missing.
			found := false
			for try := 0; try < 64; try++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if _, ok := present[key(u, v)]; ok {
					continue
				}
				st.Ops = append(st.Ops, Mutation{Op: OpInsert, U: u, V: v})
				addEdge(u, v)
				found = true
				break
			}
			if found || len(edges) == 0 {
				continue
			}
			insert = false
		}
		if !insert {
			e := edges[rng.Intn(len(edges))]
			st.Ops = append(st.Ops, Mutation{Op: OpDelete, U: e[0], V: e[1]})
			delEdge(e[0], e[1])
		}
	}
	return st
}
