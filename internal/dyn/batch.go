package dyn

import "sort"

// Batch mutation application (ROADMAP item 2 follow-up): where
// ApplyStream rescoring pays the edge-region scan per mutation,
// ApplyBatch validates the whole batch first, applies the net edge
// flips at once, and rescores each touched segment vector and
// meta-block exactly once — the amortization BENCH_dynamic's batch
// rows measure. Repair and the staleness rebuild run once at the end
// instead of per mutation.
//
// Semantics differ from ApplyStream in one deliberate way: a batch
// skips-and-counts invalid mutations (duplicate insert, missing
// delete, vertex out of range) instead of stopping at the first error,
// because the serving layer's mutation endpoint wants per-op outcomes,
// not an all-or-nothing transaction. Validation is sequential against
// a pending-flip overlay, so "duplicate" means duplicate *at that
// point of the batch* — an insert followed by a delete of the same
// edge is two accepted ops and a net no-op, exactly as ApplyStream
// would see them.

// BatchReject records one skipped mutation and why.
type BatchReject struct {
	// Index is the mutation's position in the submitted batch.
	Index    int
	Mutation Mutation
	Err      error
}

// BatchOutcome reports what one applied batch did.
type BatchOutcome struct {
	// Applied counts accepted mutations (== len(Accepted)).
	Applied int
	// Accepted lists the accepted mutations in submission order.
	Accepted []Mutation
	// Rejected lists the skipped mutations with their typed errors.
	Rejected []BatchReject
	// DeltaPScore/DeltaMBScore are the net score changes of the whole
	// batch including repair swaps (before any rebuild).
	DeltaPScore  int
	DeltaMBScore int
	// Repairs counts repair invocations; RepairSwaps accepted swaps.
	Repairs     int
	RepairSwaps int
	// Rebuilt reports that the staleness budget was exceeded after the
	// batch and a full re-reorder ran.
	Rebuilt bool
}

// ApplyBatch applies a batch of mutations with one rescore per touched
// region. Invalid mutations are skipped and reported in
// Outcome.Rejected; the valid remainder applies. With repair disabled,
// the resulting matrix and scores are bit-identical to applying the
// accepted mutations sequentially (TestApplyBatchBitIdentity) — the
// edge-region deltas telescope, since cells outside the touched union
// never change. An empty or fully-rejected batch leaves the Mutable
// bit-identical to before the call.
func (d *Mutable) ApplyBatch(muts []Mutation) (BatchOutcome, error) {
	var out BatchOutcome
	n := d.m.N()

	// Phase 1 — validate sequentially against a pending-flip overlay:
	// an edge is "present" at op k if the matrix bit XOR the overlay
	// says so, which is exactly the state sequential application would
	// observe (no repair has run yet, so positions are stable).
	flipped := make(map[[2]int]bool)
	ckey := func(i, j int) [2]int {
		if i > j {
			i, j = j, i
		}
		return [2]int{i, j}
	}
	for k, mut := range muts {
		var err error
		switch {
		case n == 0:
			err = ErrEmptyGraph
		case mut.Op != OpInsert && mut.Op != OpDelete:
			err = ErrUnknownOp
		case mut.U < 0 || mut.U >= n || mut.V < 0 || mut.V >= n:
			err = ErrVertexRange
		default:
			i, j := d.inv[mut.U], d.inv[mut.V]
			key := ckey(i, j)
			present := d.m.Get(i, j) != flipped[key]
			if mut.Op == OpInsert && present {
				err = ErrEdgeExists
			} else if mut.Op == OpDelete && !present {
				err = ErrEdgeMissing
			} else {
				flipped[key] = !flipped[key]
				out.Accepted = append(out.Accepted, mut)
			}
		}
		if err != nil {
			out.Rejected = append(out.Rejected, BatchReject{Index: k, Mutation: mut, Err: err})
		}
	}
	out.Applied = len(out.Accepted)
	if out.Applied == 0 {
		return out, nil
	}

	ob := d.opt.Obs
	for _, mut := range out.Accepted {
		ob.Counter("dyn/mutations").Inc()
		d.stats.Mutations++
		if mut.Op == OpInsert {
			ob.Counter("dyn/inserts").Inc()
			d.stats.Inserts++
		} else {
			ob.Counter("dyn/deletes").Inc()
			d.stats.Deletes++
		}
	}

	// Phase 2 — the batch's net effect is the set of odd-flip edges.
	// Collect their touched regions, dedup, score the union once,
	// flip, score again: the per-region before/after differences sum
	// to the exact batch delta because any cell outside the union is
	// untouched.
	var flips [][2]int
	for key, odd := range flipped {
		if odd {
			flips = append(flips, key)
		}
	}
	// Map iteration is randomized; sort so region collection scans in a
	// deterministic order (results are order-independent sums, but the
	// deterministic-scan discipline is cheap to keep).
	sort.Slice(flips, func(a, b int) bool {
		if flips[a][0] != flips[b][0] {
			return flips[a][0] < flips[b][0]
		}
		return flips[a][1] < flips[b][1]
	})
	cellSet := make(map[[2]int]bool)
	blockSet := make(map[[2]int]bool)
	var cells, blocks [][2]int
	for _, e := range flips {
		ec, eb := d.edgeRegion(e[0], e[1])
		for _, c := range ec {
			if !cellSet[c] {
				cellSet[c] = true
				cells = append(cells, c)
			}
		}
		for _, b := range eb {
			if !blockSet[b] {
				blockSet[b] = true
				blocks = append(blocks, b)
			}
		}
	}
	beforeP, beforeMB := d.regionScores(cells, blocks)
	for _, e := range flips {
		i, j := e[0], e[1]
		if d.m.Get(i, j) {
			d.m.Clear(i, j)
			d.m.Clear(j, i)
		} else {
			d.m.Set(i, j)
			d.m.Set(j, i)
		}
	}
	afterP, afterMB := d.regionScores(cells, blocks)
	d.pscore += afterP - beforeP
	d.mbscore += afterMB - beforeMB
	out.DeltaPScore = afterP - beforeP
	out.DeltaMBScore = afterMB - beforeMB

	// Phase 3 — repair each net-inserted edge whose region still
	// violates, in submission order. Positions are re-derived through
	// inv per repair because an accepted swap can move them. Deletes
	// never repair (removing a nonzero cannot create a violation).
	if !d.opt.DisableRepair {
		for _, mut := range out.Accepted {
			if mut.Op != OpInsert {
				continue
			}
			i, j := d.inv[mut.U], d.inv[mut.V]
			if !d.m.Get(i, j) {
				continue // net-cancelled within the batch
			}
			rc, rb := d.edgeRegion(i, j)
			if p, mb := d.regionScores(rc, rb); p+mb == 0 {
				continue
			}
			sp := ob.Span("dyn/repair")
			p0, mb0 := d.pscore, d.mbscore
			swaps := d.repair(i, j)
			sp.End()
			d.stats.Repairs++
			d.stats.RepairSwaps += swaps
			ob.Counter("dyn/repairs").Inc()
			ob.Counter("dyn/repair_swaps").Add(int64(swaps))
			out.Repairs++
			out.RepairSwaps += swaps
			out.DeltaPScore += d.pscore - p0
			out.DeltaMBScore += d.mbscore - mb0
		}
	}

	rebuilt, err := d.maybeRebuild()
	if err != nil {
		return out, err
	}
	out.Rebuilt = rebuilt
	return out, nil
}

// RestoreBaseline overwrites the staleness baseline with values saved
// by an engine snapshot (serve's durable-mutation path). A restored
// Mutable must price drift against the baseline of the run it is
// resuming, not against its own construction state — otherwise a
// replayed mutation stream makes different rebuild decisions than the
// uninterrupted run it must stay bit-identical to
// (check.RecoveryEquivalence).
func (d *Mutable) RestoreBaseline(baseP, baseMB int, saved float64) {
	d.baseP, d.baseMB = baseP, baseMB
	d.saved = saved
	driftP := d.pscore - d.baseP
	if driftP < 0 {
		driftP = 0
	}
	driftMB := d.mbscore - d.baseMB
	if driftMB < 0 {
		driftMB = 0
	}
	d.drift = d.cm.CSRSpMMCycles(driftP*d.pat.M+driftMB*d.pat.V*d.pat.M, 0, d.opt.H)
}
