package dyn

import (
	"testing"

	"repro/internal/graph"
)

func TestParseMutationsRoundTrip(t *testing.T) {
	cases := []struct {
		in    string
		canon string // expected canonical rendering
	}{
		{"", ""},
		{"seed=42", "seed=42"},
		{"seed=-3", "seed=-3"},
		{"add@0-1", "add@0-1"},
		{"del@5-5", "del@5-5"},
		{" add@3-4 ;del@4-3 ", "add@3-4; del@4-3"},
		{"seed=7\nadd@1-2,del@2-1", "seed=7; add@1-2; del@2-1"},
		{";;,\n", ""},
		{"seed=9; add@10-20; del@20-10; add@0-0", "seed=9; add@10-20; del@20-10; add@0-0"},
	}
	for _, tc := range cases {
		st, err := ParseMutations(tc.in)
		if err != nil {
			t.Fatalf("ParseMutations(%q): %v", tc.in, err)
		}
		if got := st.String(); got != tc.canon {
			t.Fatalf("ParseMutations(%q).String() = %q, want %q", tc.in, got, tc.canon)
		}
		// Exact fixed point: re-parsing the canonical form reproduces it.
		st2, err := ParseMutations(tc.canon)
		if err != nil {
			t.Fatalf("re-parse of canonical %q: %v", tc.canon, err)
		}
		if got := st2.String(); got != tc.canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", tc.canon, got)
		}
	}
}

func TestParseMutationsErrors(t *testing.T) {
	bad := []string{
		"seed=x",      // non-integer seed
		"add@1",       // no edge separator
		"add@1-",      // empty vertex
		"add@-1-2",    // sign (canonical renderer never emits)
		"add@01-2",    // leading zero
		"grow@1-2",    // unknown op
		"add1-2",      // missing '@'
		"add@1-2-3",   // vertex "2-3" is not an integer
		"add@1.5-2",   // non-integer vertex
		"seed=1 typo", // trailing junk inside a clause
	}
	for _, s := range bad {
		if st, err := ParseMutations(s); err == nil {
			t.Fatalf("ParseMutations(%q) accepted: %+v", s, st)
		}
	}
}

func TestParseMutationsEmptyIsNil(t *testing.T) {
	st, err := ParseMutations("  \n ; , ")
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("blank stream parsed non-nil: %+v", st)
	}
	if got := st.String(); got != "" {
		t.Fatalf("nil stream renders %q, want empty", got)
	}
}

// TestGenerateStreamValid asserts the generator's contract: the stream
// is deterministic per seed, records its seed, and applies cleanly (no
// typed edge errors) against the generating graph.
func TestGenerateStreamValid(t *testing.T) {
	g, err := graph.NewFromEdges(24, [][2]int{{0, 1}, {1, 2}, {2, 3}, {10, 11}, {5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	st := GenerateStream(g, 40, 99)
	if st.Seed != 99 {
		t.Fatalf("stream seed %d, want 99", st.Seed)
	}
	if len(st.Ops) != 40 {
		t.Fatalf("generated %d ops, want 40", len(st.Ops))
	}
	if st2 := GenerateStream(g, 40, 99); st2.String() != st.String() {
		t.Fatalf("same seed generated different streams:\n%s\n%s", st, st2)
	}
	if st3 := GenerateStream(g, 40, 100); st3.String() == st.String() {
		t.Fatal("different seeds generated identical streams")
	}
	// Validity: replay against an edge-set model of the graph.
	have := map[[2]int]bool{}
	norm := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			have[norm(u, int(v))] = true
		}
	}
	for k, m := range st.Ops {
		e := norm(m.U, m.V)
		switch m.Op {
		case OpInsert:
			if have[e] {
				t.Fatalf("op %d (%s) inserts a present edge", k, m)
			}
			have[e] = true
		case OpDelete:
			if !have[e] {
				t.Fatalf("op %d (%s) deletes a missing edge", k, m)
			}
			delete(have, e)
		}
	}
	// Round trip through the canonical text format.
	st4, err := ParseMutations(st.String())
	if err != nil {
		t.Fatalf("generated stream does not re-parse: %v", err)
	}
	if st4.String() != st.String() {
		t.Fatal("generated stream round trip changed the stream")
	}
}

func TestGenerateStreamDegenerate(t *testing.T) {
	empty, _ := graph.NewFromEdges(0, nil)
	if st := GenerateStream(empty, 5, 1); len(st.Ops) != 0 {
		t.Fatalf("empty graph generated %d ops", len(st.Ops))
	}
	g, _ := graph.NewFromEdges(3, nil)
	if st := GenerateStream(g, 0, 1); len(st.Ops) != 0 {
		t.Fatalf("nOps=0 generated %d ops", len(st.Ops))
	}
	// A 1-vertex graph can only toggle its self-loop.
	one, _ := graph.NewFromEdges(1, nil)
	st := GenerateStream(one, 6, 2)
	if len(st.Ops) != 6 {
		t.Fatalf("1-vertex graph generated %d ops, want 6", len(st.Ops))
	}
	for k, m := range st.Ops {
		if m.U != 0 || m.V != 0 {
			t.Fatalf("op %d (%s) names a vertex beyond the single one", k, m)
		}
	}
}
