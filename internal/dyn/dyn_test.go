package dyn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
)

func mustGraph(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustReorder(t *testing.T, g *graph.Graph, p pattern.VNM) *core.Result {
	t.Helper()
	res, err := core.Reorder(g.ToBitMatrix(), p, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustMutable(t *testing.T, g *graph.Graph, p pattern.VNM, opt Options) *Mutable {
	t.Helper()
	d, err := New(mustReorder(t, g, p), opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// checkExact cross-checks the incrementally-maintained scores against
// a from-scratch recount of the maintained matrix.
func checkExact(t *testing.T, d *Mutable) {
	t.Helper()
	v := d.Violations()
	if want := pattern.PScore(d.Matrix(), d.Pattern()); v.PScore != want {
		t.Fatalf("incremental PScore %d != recount %d", v.PScore, want)
	}
	if want := pattern.MBScore(d.Matrix(), d.Pattern()); v.MBScore != want {
		t.Fatalf("incremental MBScore %d != recount %d", v.MBScore, want)
	}
}

func TestNewValidation(t *testing.T) {
	g := mustGraph(t, 8, [][2]int{{0, 1}, {2, 3}})
	res := mustReorder(t, g, pattern.NM(2, 4))
	if _, err := New(nil, Options{StalenessBudget: 1}); !errors.Is(err, ErrNoResult) {
		t.Fatalf("nil result: got %v, want ErrNoResult", err)
	}
	if _, err := New(&core.Result{}, Options{StalenessBudget: 1}); !errors.Is(err, ErrNoResult) {
		t.Fatalf("nil matrix: got %v, want ErrNoResult", err)
	}
	for _, budget := range []float64{0, -0.5, math.NaN()} {
		if _, err := New(res, Options{StalenessBudget: budget}); !errors.Is(err, ErrBudget) {
			t.Fatalf("budget %v: got %v, want ErrBudget", budget, err)
		}
	}
	if _, err := New(res, Options{StalenessBudget: DefaultStalenessBudget}); err != nil {
		t.Fatalf("valid construction failed: %v", err)
	}
}

// TestDegenerateMutations pins the typed-error contract of satellite 4:
// delete of a nonexistent edge, duplicate insert, mutation on an empty
// graph, out-of-range vertices and unknown ops — typed errors, no
// panics, and a rejected mutation leaves the state bit-identical.
func TestDegenerateMutations(t *testing.T) {
	p := pattern.NM(2, 4)
	g := mustGraph(t, 8, [][2]int{{0, 1}, {1, 2}})
	d := mustMutable(t, g, p, Options{StalenessBudget: 1})
	before := d.Matrix().Clone()
	beforePerm := d.Perm()
	cases := []struct {
		name string
		mut  Mutation
		want error
	}{
		{"duplicate insert", Mutation{Op: OpInsert, U: 0, V: 1}, ErrEdgeExists},
		{"delete missing", Mutation{Op: OpDelete, U: 0, V: 7}, ErrEdgeMissing},
		{"delete missing self-loop", Mutation{Op: OpDelete, U: 3, V: 3}, ErrEdgeMissing},
		{"negative vertex", Mutation{Op: OpInsert, U: -1, V: 2}, ErrVertexRange},
		{"vertex too large", Mutation{Op: OpInsert, U: 0, V: 8}, ErrVertexRange},
		{"unknown op", Mutation{Op: Op(9), U: 0, V: 1}, ErrUnknownOp},
	}
	for _, tc := range cases {
		if _, err := d.Apply(tc.mut); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		if !d.Matrix().Equal(before) {
			t.Fatalf("%s: rejected mutation changed the matrix", tc.name)
		}
		for i, v := range d.Perm() {
			if v != beforePerm[i] {
				t.Fatalf("%s: rejected mutation changed the permutation", tc.name)
			}
		}
	}
	if s := d.Stats(); s.Mutations != 0 {
		t.Fatalf("rejected mutations were counted: %+v", s)
	}

	empty := mustGraph(t, 0, nil)
	de := mustMutable(t, empty, p, Options{StalenessBudget: 1})
	if _, err := de.Apply(Mutation{Op: OpInsert, U: 0, V: 0}); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("empty graph: got %v, want ErrEmptyGraph", err)
	}
}

// TestApplyMaintainsExactScores walks a generated stream on a mid-size
// graph and recounts after every op.
func TestApplyMaintainsExactScores(t *testing.T) {
	for _, p := range []pattern.VNM{pattern.NM(2, 4), pattern.New(4, 2, 8)} {
		g, err := datasets.Family("er", 48, 6, 5)
		if err != nil {
			t.Fatal(err)
		}
		d := mustMutable(t, g, p, Options{StalenessBudget: DefaultStalenessBudget})
		st := GenerateStream(g, 30, 5)
		for k, m := range st.Ops {
			if _, err := d.Apply(m); err != nil {
				t.Fatalf("pattern %v op %d (%s): %v", p, k, m, err)
			}
			checkExact(t, d)
		}
		s := d.Stats()
		if s.Mutations != 30 || s.Inserts+s.Deletes != 30 {
			t.Fatalf("pattern %v: stats %+v do not account for 30 ops", p, s)
		}
	}
}

// TestInsertDeleteIsConformityNoOp is the first metamorphic theorem:
// with repair disabled, inserting an edge and deleting it again
// restores matrix, permutation and scores exactly.
func TestInsertDeleteIsConformityNoOp(t *testing.T) {
	p := pattern.NM(2, 4)
	g, err := datasets.Family("community", 40, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := mustMutable(t, g, p, Options{StalenessBudget: 1e9, DisableRepair: true})
	before := d.Matrix().Clone()
	beforeViol := d.Violations()
	pairs := [][2]int{{0, 9}, {3, 3}, {17, 22}}
	for _, e := range pairs {
		if d.Matrix().Get(e[0], e[1]) {
			continue
		}
		if _, err := d.Insert(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Delete(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		if !d.Matrix().Equal(before) {
			t.Fatalf("insert+delete of (%d,%d) changed the matrix", e[0], e[1])
		}
		if v := d.Violations(); v != beforeViol {
			t.Fatalf("insert+delete of (%d,%d) changed scores: %+v -> %+v", e[0], e[1], beforeViol, v)
		}
	}
}

// TestMutationOrderPermutation is the second metamorphic theorem:
// reordering mutations that touch independent meta-blocks yields the
// identical final state. Two flavours: any ops with repair disabled
// (mutations commute outright), and delete-only streams with repair
// enabled (deletes never trigger repair).
func TestMutationOrderPermutation(t *testing.T) {
	p := pattern.New(4, 2, 8)
	g, err := datasets.Family("banded", 64, 6, 11)
	if err != nil {
		t.Fatal(err)
	}

	run := func(opt Options, ops []Mutation) *Mutable {
		d := mustMutable(t, g, p, opt)
		for k, m := range ops {
			if _, err := d.Apply(m); err != nil {
				t.Fatalf("op %d (%s): %v", k, m, err)
			}
		}
		return d
	}
	sameState := func(a, b *Mutable, label string) {
		t.Helper()
		if !a.Matrix().Equal(b.Matrix()) {
			t.Fatalf("%s: permuted order changed the matrix", label)
		}
		if va, vb := a.Violations(), b.Violations(); va != vb {
			t.Fatalf("%s: permuted order changed scores: %+v vs %+v", label, va, vb)
		}
	}

	norepair := Options{StalenessBudget: 1e9, DisableRepair: true}
	base := mustMutable(t, g, p, norepair)
	var ins []Mutation
	// Three inserts in well-separated position ranges (independent
	// bands and stripes of the reordered matrix map back to distinct
	// original vertices via the perm).
	perm := base.Perm()
	for _, pos := range [][2]int{{0, 1}, {24, 25}, {48, 49}} {
		u, v := perm[pos[0]], perm[pos[1]]
		if !base.Matrix().Get(pos[0], pos[1]) {
			ins = append(ins, Mutation{Op: OpInsert, U: u, V: v})
		}
	}
	if len(ins) < 2 {
		t.Fatal("test setup: fewer than 2 independent absent edges")
	}
	rev := make([]Mutation, len(ins))
	for i, m := range ins {
		rev[len(ins)-1-i] = m
	}
	sameState(run(norepair, ins), run(norepair, rev), "repair-off inserts")

	// Delete-only permutation with repair ENABLED: deletes never
	// increase violations, so no repair fires and order is immaterial.
	repair := Options{StalenessBudget: 1e9}
	var dels []Mutation
	for u := 0; u < g.N() && len(dels) < 4; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				dels = append(dels, Mutation{Op: OpDelete, U: u, V: int(v)})
				break
			}
		}
	}
	if len(dels) < 2 {
		t.Fatal("test setup: fewer than 2 deletable edges")
	}
	revd := make([]Mutation, len(dels))
	for i, m := range dels {
		revd[len(dels)-1-i] = m
	}
	a, b := run(repair, dels), run(repair, revd)
	sameState(a, b, "repair-on deletes")
	if s := a.Stats(); s.Repairs != 0 {
		t.Fatalf("deletes triggered repair: %+v", s)
	}
}

// TestRelabelInvariance is the third metamorphic theorem: two Mutables
// wrapping the identical reordered matrix whose original labelings
// differ by a relabeling make identical repair decisions — the
// maintained matrices stay bit-equal and the permutations stay related
// by the relabeling, for the whole stream.
func TestRelabelInvariance(t *testing.T) {
	p := pattern.NM(2, 4)
	g, err := datasets.Family("er", 40, 6, 17)
	if err != nil {
		t.Fatal(err)
	}
	res := mustReorder(t, g, p)
	n := g.N()
	// relabel[old original id] = new original id (a fixed derangement-ish
	// rotation keeps it simple and deterministic).
	relabel := make([]int, n)
	for i := range relabel {
		relabel[i] = (i + 7) % n
	}
	res2 := &core.Result{
		Pattern: res.Pattern,
		Matrix:  res.Matrix.Clone(),
		Perm:    make([]int, n),
	}
	for pos, orig := range res.Perm {
		res2.Perm[pos] = relabel[orig]
	}
	opt := Options{StalenessBudget: DefaultStalenessBudget}
	d1, err := New(res, opt)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := New(res2, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := GenerateStream(g, 20, 17)
	for k, m := range st.Ops {
		o1, err1 := d1.Apply(m)
		o2, err2 := d2.Apply(Mutation{Op: m.Op, U: relabel[m.U], V: relabel[m.V]})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("op %d (%s): relabeled apply diverges: %v vs %v", k, m, err1, err2)
		}
		if o1.RepairSwaps != o2.RepairSwaps || o1.Rebuilt != o2.Rebuilt ||
			o1.DeltaPScore != o2.DeltaPScore || o1.DeltaMBScore != o2.DeltaMBScore {
			t.Fatalf("op %d (%s): repair decisions diverge under relabeling: %+v vs %+v", k, m, o1, o2)
		}
		if !d1.Matrix().Equal(d2.Matrix()) {
			t.Fatalf("op %d (%s): matrices diverge under relabeling", k, m)
		}
		p1, p2 := d1.Perm(), d2.Perm()
		for pos := range p1 {
			if relabel[p1[pos]] != p2[pos] {
				t.Fatalf("op %d (%s): perms no longer related by the relabeling at pos %d", k, m, pos)
			}
		}
	}
}

// TestRepairReducesDamage asserts the repair path actually fires and
// strictly helps: adversarial inserts aimed at already-full segment
// vectors must end with fewer violations than the same inserts with
// repair disabled, while both stay exact.
func TestRepairReducesDamage(t *testing.T) {
	p := pattern.NM(2, 4)
	g, err := datasets.Family("banded", 96, 6, 23)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{StalenessBudget: 1e9} // no rebuilds: isolate repair
	withRepair := mustMutable(t, g, p, opt)
	noRepair := mustMutable(t, g, p, Options{StalenessBudget: 1e9, DisableRepair: true})
	// Build adversarial inserts from the shared base state: for rows
	// whose stripe already holds exactly N nonzeros, insert one more
	// edge into that stripe — each insert breaks the horizontal
	// constraint of its segment vector.
	base, perm := withRepair.Matrix(), withRepair.Perm()
	var adv []Mutation
	usedRow := make(map[int]bool)
	for r := 0; r < base.N() && len(adv) < 12; r++ {
		if usedRow[r] {
			continue
		}
		for s := 0; s < base.NumSegments(p.M); s++ {
			if base.SegmentPop(r, s, p.M) != p.N {
				continue
			}
			lo, hi := s*p.M, (s+1)*p.M
			if hi > base.N() {
				hi = base.N()
			}
			found := false
			for c := lo; c < hi; c++ {
				if c != r && !base.Get(r, c) && !usedRow[c] {
					adv = append(adv, Mutation{Op: OpInsert, U: perm[r], V: perm[c]})
					usedRow[r], usedRow[c] = true, true
					found = true
					break
				}
			}
			if found {
				break
			}
		}
	}
	if len(adv) < 4 {
		t.Fatalf("test setup: only %d adversarial inserts found", len(adv))
	}
	for _, m := range adv {
		if _, err := withRepair.Apply(m); err != nil {
			t.Fatal(err)
		}
		if _, err := noRepair.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	checkExact(t, withRepair)
	checkExact(t, noRepair)
	vr, vn := withRepair.Violations(), noRepair.Violations()
	if vr.PScore+vr.MBScore > vn.PScore+vn.MBScore {
		t.Fatalf("repair made things worse: %+v vs unrepaired %+v", vr, vn)
	}
	if withRepair.Stats().Repairs == 0 {
		t.Fatalf("repair never fired on %d adversarial inserts: %+v (unrepaired end state %+v)", len(adv), withRepair.Stats(), vn)
	}
	if vr.PScore+vr.MBScore >= vn.PScore+vn.MBScore {
		t.Fatalf("repair bought nothing on adversarial inserts: %+v vs unrepaired %+v", vr, vn)
	}
	if withRepair.Stats().RepairSwaps > 0 && vr.PScore+vr.MBScore == vn.PScore+vn.MBScore {
		t.Fatalf("accepted repair swaps did not reduce violations: %+v vs %+v", vr, vn)
	}
}

// TestStalenessRebuild drives a Mutable over its staleness budget and
// asserts the full re-reorder fires, restores near-baseline conformity
// and keeps the composed permutation lossless.
func TestStalenessRebuild(t *testing.T) {
	p := pattern.NM(2, 4)
	g, err := datasets.Family("banded", 96, 6, 31)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny budget makes any conformity drift exceed the threshold as
	// long as the reorder bought modeled savings.
	d := mustMutable(t, g, p, Options{StalenessBudget: 1e-9, DisableRepair: true})
	if d.Stats().SavedCyclesPerEpoch <= 0 {
		t.Skipf("reorder bought no modeled savings on this graph: %+v", d.Stats())
	}
	orig := g.ToBitMatrix()
	st := GenerateStream(g, 25, 31)
	rebuilt := false
	for k, m := range st.Ops {
		out, err := d.Apply(m)
		if err != nil {
			t.Fatalf("op %d (%s): %v", k, m, err)
		}
		if m.Op == OpInsert {
			orig.Set(m.U, m.V)
			orig.Set(m.V, m.U)
		} else {
			orig.Clear(m.U, m.V)
			orig.Clear(m.V, m.U)
		}
		checkExact(t, d)
		if out.Rebuilt {
			rebuilt = true
			// After a rebuild the drift baseline resets.
			s := d.Stats()
			if s.DriftCycles != 0 {
				t.Fatalf("op %d: rebuild left nonzero drift: %+v", k, s)
			}
			// Losslessness across the composed permutation.
			if !orig.Permute(d.Perm()).Equal(d.Matrix()) {
				t.Fatalf("op %d: rebuild broke the perm composition", k)
			}
		}
	}
	if !rebuilt {
		t.Fatalf("no rebuild fired under a 1e-9 budget: %+v", d.Stats())
	}
	if d.Stats().Rebuilds == 0 {
		t.Fatalf("stats did not count rebuilds: %+v", d.Stats())
	}
}

// TestObsCounters wires a registry through a short stream and checks
// the dyn/* counters line up with the Stats the Mutable reports.
func TestObsCounters(t *testing.T) {
	p := pattern.NM(2, 4)
	g, err := datasets.Family("er", 32, 5, 41)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	d := mustMutable(t, g, p, Options{StalenessBudget: DefaultStalenessBudget, Obs: reg})
	st := GenerateStream(g, 15, 41)
	if _, err := d.ApplyStream(st); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	for name, want := range map[string]int64{
		"dyn/mutations":    int64(s.Mutations),
		"dyn/inserts":      int64(s.Inserts),
		"dyn/deletes":      int64(s.Deletes),
		"dyn/repairs":      int64(s.Repairs),
		"dyn/repair_swaps": int64(s.RepairSwaps),
		"dyn/rebuilds":     int64(s.Rebuilds),
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Fatalf("%s = %d, want %d (stats %+v)", name, got, want, s)
		}
	}
}

// TestApplyStreamStopsAtError pins ApplyStream's error contract: the
// outcomes of the successful prefix are returned alongside a wrapped
// typed error.
func TestApplyStreamStopsAtError(t *testing.T) {
	p := pattern.NM(2, 4)
	g := mustGraph(t, 8, [][2]int{{0, 1}})
	d := mustMutable(t, g, p, Options{StalenessBudget: 1})
	st := &Stream{Ops: []Mutation{
		{Op: OpInsert, U: 2, V: 3},
		{Op: OpInsert, U: 0, V: 1}, // duplicate -> stops here
		{Op: OpInsert, U: 4, V: 5},
	}}
	outs, err := d.ApplyStream(st)
	if !errors.Is(err, ErrEdgeExists) {
		t.Fatalf("got %v, want wrapped ErrEdgeExists", err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outcomes before the error, want 1", len(outs))
	}
	if outs2, err := d.ApplyStream(nil); err != nil || outs2 != nil {
		t.Fatalf("nil stream: got %v, %v", outs2, err)
	}
}

// TestNegativeMaxCandidatesDisablesRepair covers the option
// normalization edge.
func TestNegativeMaxCandidatesDisablesRepair(t *testing.T) {
	p := pattern.NM(2, 4)
	g, err := datasets.Family("banded", 48, 6, 53)
	if err != nil {
		t.Fatal(err)
	}
	d := mustMutable(t, g, p, Options{StalenessBudget: 1e9, MaxRepairCandidates: -1})
	st := GenerateStream(g, 20, 53)
	if _, err := d.ApplyStream(st); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Repairs != 0 || s.RepairSwaps != 0 {
		t.Fatalf("negative MaxRepairCandidates still repaired: %+v", s)
	}
	checkExact(t, d)
}
