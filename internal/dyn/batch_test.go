package dyn

import (
	"errors"
	"testing"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// twinMutables builds two Mutables from the same reorder result so a
// batch application and a sequential one start bit-identical.
func twinMutables(t *testing.T, opt Options) (*Mutable, *Mutable) {
	t.Helper()
	g, err := datasets.Family("er", 48, 6, 31)
	if err != nil {
		t.Fatal(err)
	}
	res := mustReorder(t, g, pattern.NM(2, 8))
	a, err := New(res, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(res, opt)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func assertTwinsEqual(t *testing.T, batch, seq *Mutable) {
	t.Helper()
	if !batch.Matrix().Equal(seq.Matrix()) {
		t.Fatal("batch and sequential matrices differ")
	}
	bp, sp := batch.Perm(), seq.Perm()
	for k := range bp {
		if bp[k] != sp[k] {
			t.Fatalf("perm[%d]: batch %d, sequential %d", k, bp[k], sp[k])
		}
	}
	bv, sv := batch.Violations(), seq.Violations()
	if bv.PScore != sv.PScore || bv.MBScore != sv.MBScore {
		t.Fatalf("scores: batch (%d,%d), sequential (%d,%d)",
			bv.PScore, bv.MBScore, sv.PScore, sv.MBScore)
	}
}

// TestApplyBatchBitIdentity: with repair disabled, applying a batch is
// bit-identical (matrix, perm, scores) to applying the same mutations
// sequentially — the one-rescore-per-region amortization changes only
// the work, not the result.
func TestApplyBatchBitIdentity(t *testing.T) {
	batchM, seqM := twinMutables(t, Options{StalenessBudget: 1e18, DisableRepair: true})
	st := GenerateStream(graphOf(t, batchM), 64, 5)
	out, err := batchM.ApplyBatch(st.Ops)
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != len(st.Ops) || len(out.Rejected) != 0 {
		t.Fatalf("valid stream: applied %d/%d, rejected %d",
			out.Applied, len(st.Ops), len(out.Rejected))
	}
	if _, err := seqM.ApplyStream(st); err != nil {
		t.Fatal(err)
	}
	assertTwinsEqual(t, batchM, seqM)
	checkExact(t, batchM)
}

// graphOf reconstructs the ORIGINAL-numbering graph the twin fixtures
// were built from (er 48/6/31) — a helper so streams are generated
// against the same graph the Mutables wrap.
func graphOf(t *testing.T, d *Mutable) *graph.Graph {
	t.Helper()
	g, err := datasets.Family("er", 48, 6, 31)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != d.N() {
		t.Fatalf("fixture mismatch: graph n %d, mutable n %d", g.N(), d.N())
	}
	return g
}

// TestApplyBatchDeltas pins the exactness of the batch delta: the
// reported DeltaPScore/DeltaMBScore equal final minus initial scores
// when repair is disabled.
func TestApplyBatchDeltas(t *testing.T) {
	batchM, _ := twinMutables(t, Options{StalenessBudget: 1e18, DisableRepair: true})
	v0 := batchM.Violations()
	st := GenerateStream(graphOf(t, batchM), 48, 11)
	out, err := batchM.ApplyBatch(st.Ops)
	if err != nil {
		t.Fatal(err)
	}
	v1 := batchM.Violations()
	if out.DeltaPScore != v1.PScore-v0.PScore || out.DeltaMBScore != v1.MBScore-v0.MBScore {
		t.Fatalf("deltas (%d,%d) != score changes (%d,%d)",
			out.DeltaPScore, out.DeltaMBScore, v1.PScore-v0.PScore, v1.MBScore-v0.MBScore)
	}
}

// TestApplyBatchDeleteOnlyBitIdentity: deletes never trigger repair
// (removing a nonzero cannot create a violation), so delete-only
// batches are bit-identical to sequential application even with repair
// enabled.
func TestApplyBatchDeleteOnlyBitIdentity(t *testing.T) {
	batchM, seqM := twinMutables(t, Options{StalenessBudget: 1e18})
	g := graphOf(t, batchM)
	var dels []Mutation
	for u := 0; u < g.N() && len(dels) < 20; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				dels = append(dels, Mutation{Op: OpDelete, U: u, V: int(v)})
				break
			}
		}
	}
	if len(dels) < 8 {
		t.Fatalf("fixture too sparse: %d deletable edges", len(dels))
	}
	out, err := batchM.ApplyBatch(dels)
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != len(dels) || out.RepairSwaps != 0 || out.Repairs != 0 {
		t.Fatalf("delete-only batch: applied %d, repairs %d/%d",
			out.Applied, out.Repairs, out.RepairSwaps)
	}
	for _, m := range dels {
		if _, err := seqM.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	assertTwinsEqual(t, batchM, seqM)
	checkExact(t, batchM)
}

// TestApplyBatchRepairExact: with repair enabled the batch path is not
// promised bit-identical to sequential (repairs run once at the end),
// but the maintained scores must still exactly equal a from-scratch
// recount, the matrix must stay symmetric, and the result must be
// deterministic across repeated runs from the same start state.
func TestApplyBatchRepairExact(t *testing.T) {
	run := func() *Mutable {
		d, _ := twinMutables(t, Options{StalenessBudget: 1e18})
		st := GenerateStream(graphOf(t, d), 64, 17)
		if _, err := d.ApplyBatch(st.Ops); err != nil {
			t.Fatal(err)
		}
		return d
	}
	a := run()
	checkExact(t, a)
	if !a.Matrix().IsSymmetric() {
		t.Fatal("batch left an asymmetric matrix")
	}
	b := run()
	assertTwinsEqual(t, a, b)
}

// TestApplyBatchRejections pins skip-and-count semantics: invalid
// mutations are reported with their typed errors and batch index, the
// valid remainder applies, and a fully-rejected batch is a no-op.
func TestApplyBatchRejections(t *testing.T) {
	d, ref := twinMutables(t, Options{StalenessBudget: 1e18, DisableRepair: true})
	g := graphOf(t, d)
	// Find one present and one absent edge.
	var present, absent Mutation
	present = Mutation{Op: OpDelete, U: 0, V: int(g.Neighbors(0)[0])}
	absent = Mutation{Op: OpInsert, U: 0, V: 0}
	for v := 0; v < g.N(); v++ {
		found := false
		for _, w := range g.Neighbors(0) {
			if int(w) == v {
				found = true
				break
			}
		}
		if !found && v != 0 {
			absent = Mutation{Op: OpInsert, U: 0, V: v}
			break
		}
	}
	batch := []Mutation{
		absent,                                   // 0: ok
		absent,                                   // 1: duplicate insert (pending overlay)
		{Op: OpDelete, U: absent.U, V: absent.V}, // 2: ok — deletes the batch's own insert
		{Op: OpDelete, U: absent.U, V: absent.V}, // 3: now missing
		{Op: OpInsert, U: -1, V: 2},              // 4: out of range
		{Op: Op(9), U: 0, V: 1},                  // 5: unknown op
		present,                                  // 6: ok
	}
	out, err := d.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != 3 {
		t.Fatalf("applied %d, want 3", out.Applied)
	}
	wantRej := []struct {
		idx  int
		werr error
	}{{1, ErrEdgeExists}, {3, ErrEdgeMissing}, {4, ErrVertexRange}, {5, ErrUnknownOp}}
	if len(out.Rejected) != len(wantRej) {
		t.Fatalf("rejected %d, want %d: %+v", len(out.Rejected), len(wantRej), out.Rejected)
	}
	for k, w := range wantRej {
		r := out.Rejected[k]
		if r.Index != w.idx || !errors.Is(r.Err, w.werr) {
			t.Fatalf("rejection %d: index %d err %v, want index %d err %v",
				k, r.Index, r.Err, w.idx, w.werr)
		}
	}
	// Net effect: insert+delete of `absent` cancels; only `present` is
	// gone. Sequential reference sees the same.
	if _, err := ref.Apply(present); err != nil {
		t.Fatal(err)
	}
	assertTwinsEqual(t, d, ref)
	checkExact(t, d)

	// Fully-rejected batch: bit-identical no-op.
	v0 := d.Violations()
	m0 := d.Matrix().Clone()
	out, err = d.ApplyBatch([]Mutation{{Op: OpInsert, U: 99999, V: 0}, {Op: Op(7)}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != 0 || len(out.Rejected) != 2 {
		t.Fatalf("all-invalid batch: %+v", out)
	}
	if !d.Matrix().Equal(m0) || d.Violations() != v0 {
		t.Fatal("all-invalid batch mutated state")
	}
}

// TestApplyBatchEmpty: nil and empty batches are no-ops.
func TestApplyBatchEmpty(t *testing.T) {
	d, _ := twinMutables(t, Options{StalenessBudget: 1e18})
	v0 := d.Violations()
	for _, muts := range [][]Mutation{nil, {}} {
		out, err := d.ApplyBatch(muts)
		if err != nil {
			t.Fatal(err)
		}
		if out.Applied != 0 || len(out.Rejected) != 0 {
			t.Fatalf("empty batch outcome: %+v", out)
		}
	}
	if d.Violations() != v0 {
		t.Fatal("empty batch changed scores")
	}
}

// TestApplyBatchRebuild: a tight budget triggers exactly one rebuild at
// the end of the batch, and the maintained scores stay a recount fixed
// point afterwards.
func TestApplyBatchRebuild(t *testing.T) {
	g, err := datasets.Family("community", 40, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := mustReorder(t, g, pattern.NM(2, 8))
	d, err := New(res, Options{StalenessBudget: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	st := GenerateStream(g, 48, 23)
	out, err := d.ApplyBatch(st.Ops)
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, d)
	stats := d.Stats()
	if out.Rebuilt && stats.Rebuilds != 1 {
		t.Fatalf("Rebuilt set but stats.Rebuilds = %d", stats.Rebuilds)
	}
	if !out.Rebuilt && stats.Rebuilds != 0 {
		t.Fatalf("Rebuilt unset but stats.Rebuilds = %d", stats.Rebuilds)
	}
}

// TestRestoreBaseline: restoring a saved baseline reproduces the drift
// pricing of the run that saved it.
func TestRestoreBaseline(t *testing.T) {
	a, b := twinMutables(t, Options{StalenessBudget: 1e18, DisableRepair: true})
	st := GenerateStream(graphOf(t, a), 24, 29)
	if _, err := a.ApplyBatch(st.Ops); err != nil {
		t.Fatal(err)
	}
	sa := a.Stats()
	// b replays the same stream, then adopts a's (identical) baseline —
	// drift pricing must match exactly.
	if _, err := b.ApplyBatch(st.Ops); err != nil {
		t.Fatal(err)
	}
	b.RestoreBaseline(sa.BasePScore, sa.BaseMBScore, sa.SavedCyclesPerEpoch)
	sb := b.Stats()
	if sb.BasePScore != sa.BasePScore || sb.BaseMBScore != sa.BaseMBScore {
		t.Fatalf("baseline: got (%d,%d), want (%d,%d)",
			sb.BasePScore, sb.BaseMBScore, sa.BasePScore, sa.BaseMBScore)
	}
	if sb.DriftCycles != sa.DriftCycles || sb.SavedCyclesPerEpoch != sa.SavedCyclesPerEpoch {
		t.Fatalf("drift pricing: got (%g,%g), want (%g,%g)",
			sb.DriftCycles, sb.SavedCyclesPerEpoch, sa.DriftCycles, sa.SavedCyclesPerEpoch)
	}
}
