package sched

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestNewSizesByGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("New(3).Workers() = %d, want 3", got)
	}
	if got := Serial().Workers(); got != 1 {
		t.Fatalf("Serial().Workers() = %d, want 1", got)
	}
}

// TestRunCoversEveryIndexOnce: across worker counts and job sizes,
// every index runs exactly once.
func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 16, 97, 1000} {
			p := New(workers)
			counts := make([]int32, n)
			p.Run(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestRunStealsUnbalancedWork: one span holds all the slow work; the
// job still completes with every index executed once (stealing or not,
// correctness holds — this exercises the steal path under -race).
func TestRunStealsUnbalancedWork(t *testing.T) {
	const n = 64
	p := New(4)
	var ran int32
	p.Run(n, func(i int) {
		if i < 8 {
			// Busy the first span's owner so others must steal.
			for j := 0; j < 1000; j++ {
				_ = j * j
			}
		}
		atomic.AddInt32(&ran, 1)
	})
	if ran != n {
		t.Fatalf("ran %d of %d indices", ran, n)
	}
}

func TestChunks(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		want [][2]int
	}{
		{0, 4, nil},
		{5, 0, nil},
		{3, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{10, 3, [][2]int{{0, 4}, {4, 8}, {8, 10}}},
	} {
		if got := Chunks(tc.n, tc.k); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("Chunks(%d, %d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
	// Chunks cover [0, n) in order, non-empty, for a sweep of shapes.
	for n := 1; n < 40; n++ {
		for k := 1; k < 10; k++ {
			pos := 0
			for _, c := range Chunks(n, k) {
				if c[0] != pos || c[1] <= c[0] {
					t.Fatalf("Chunks(%d, %d): bad chunk %v at pos %d", n, k, c, pos)
				}
				pos = c[1]
			}
			if pos != n {
				t.Fatalf("Chunks(%d, %d) covers up to %d", n, k, pos)
			}
		}
	}
}

func TestReduceInt(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		got := p.ReduceInt(100, func(lo, hi int) int {
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			return s
		})
		if got != 4950 {
			t.Fatalf("workers=%d: ReduceInt = %d, want 4950", workers, got)
		}
		if p.ReduceInt(0, func(lo, hi int) int { return 1 }) != 0 {
			t.Fatalf("workers=%d: ReduceInt over empty range != 0", workers)
		}
	}
}

// uniformCost is the degenerate all-rows-equal cost function.
func uniformCost(c int64) func(int) int64 { return func(int) int64 { return c } }

// checkTilePartition asserts tiles exactly cover rows x cols with no
// overlap.
func checkTilePartition(t *testing.T, tiles []Tile, rows, cols int) {
	t.Helper()
	covered := make([]bool, rows*cols)
	for _, tl := range tiles {
		if tl.RowLo < 0 || tl.RowHi > rows || tl.RowLo >= tl.RowHi ||
			tl.ColLo < 0 || tl.ColHi > cols || tl.ColLo >= tl.ColHi {
			t.Fatalf("malformed tile %+v for %dx%d", tl, rows, cols)
		}
		for r := tl.RowLo; r < tl.RowHi; r++ {
			for c := tl.ColLo; c < tl.ColHi; c++ {
				if covered[r*cols+c] {
					t.Fatalf("output element (%d,%d) covered twice", r, c)
				}
				covered[r*cols+c] = true
			}
		}
	}
	for i, ok := range covered {
		if !ok {
			t.Fatalf("output element (%d,%d) not covered", i/cols, i%cols)
		}
	}
}

func TestTilesPartitionInvariant(t *testing.T) {
	costs := []int64{0, 5, 0, 0, 100, 1, 1, 1, 1, 400, 0, 2}
	rowCost := func(r int) int64 { return costs[r] }
	for _, target := range []int64{1, 8, 64, 1000} {
		for _, maxCols := range []int{0, 3} {
			tiles := Tiles(len(costs), 16, rowCost, TileOptions{TargetCost: target, MaxCols: maxCols})
			checkTilePartition(t, tiles, len(costs), 16)
		}
	}
	checkTilePartition(t, Tiles(1, 1, uniformCost(9), TileOptions{TargetCost: 2}), 1, 1)
	if Tiles(0, 8, uniformCost(1), TileOptions{}) != nil {
		t.Fatal("Tiles with zero rows should be nil")
	}
	if Tiles(8, 0, uniformCost(1), TileOptions{}) != nil {
		t.Fatal("Tiles with zero cols should be nil")
	}
}

// TestTilesSplitsHeavyRows: a row dominating the total cost is split
// along the column dimension into multiple tiles, while runs of light
// rows are batched into single tiles.
func TestTilesSplitsHeavyRows(t *testing.T) {
	costs := []int64{1, 1, 1, 1000, 1, 1}
	tiles := Tiles(len(costs), 32, func(r int) int64 { return costs[r] }, TileOptions{TargetCost: 100})
	heavy, lightBatches := 0, 0
	for _, tl := range tiles {
		if tl.RowLo == 3 && tl.RowHi == 4 {
			heavy++
		}
		if tl.RowHi-tl.RowLo > 1 {
			lightBatches++
		}
	}
	if heavy < 2 {
		t.Fatalf("heavy row split into %d tiles, want >= 2 column chunks (tiles: %+v)", heavy, tiles)
	}
	if lightBatches == 0 {
		t.Fatalf("light rows were not batched (tiles: %+v)", tiles)
	}
	checkTilePartition(t, tiles, len(costs), 32)
}

// TestTilesDeterministic: the partition is a pure function of its
// inputs — independent of how many workers later execute it.
func TestTilesDeterministic(t *testing.T) {
	rowCost := func(r int) int64 { return int64(r % 17) }
	a := Tiles(200, 24, rowCost, TileOptions{TargetCost: 50})
	b := Tiles(200, 24, rowCost, TileOptions{TargetCost: 50})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Tiles is not deterministic")
	}
}

func TestPoolOptions(t *testing.T) {
	if got := NewWithTarget(4, 33).Options(1 << 20).TargetCost; got != 33 {
		t.Fatalf("explicit target not honored: got %d", got)
	}
	if got := New(4).Options(16).TargetCost; got < 1 {
		t.Fatalf("auto target must be positive, got %d", got)
	}
	big := New(4).Options(1 << 20).TargetCost
	if big <= 64 || big > 1<<20 {
		t.Fatalf("auto target for large jobs should scale with cost, got %d", big)
	}
}

func TestRunTiles(t *testing.T) {
	p := New(3)
	var cells int64
	p.RunTiles(50, 8, 50, uniformCost(1), func(tl Tile) {
		atomic.AddInt64(&cells, int64((tl.RowHi-tl.RowLo)*(tl.ColHi-tl.ColLo)))
	})
	if cells != 50*8 {
		t.Fatalf("RunTiles covered %d cells, want %d", cells, 50*8)
	}
}

// The disabled-instrumentation contract: a pool without a registry
// must pay only nil checks. Compare BenchmarkRunNilObs and
// BenchmarkRunWithObs medians — they differ by well under 5%.
func benchmarkRun(b *testing.B, p *Pool) {
	b.Helper()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(256, func(j int) { sink.Add(int64(j)) })
	}
}

func BenchmarkRunNilObs(b *testing.B) { benchmarkRun(b, New(4)) }

func BenchmarkRunWithObs(b *testing.B) {
	benchmarkRun(b, New(4).WithObs(obs.NewRegistry()))
}
