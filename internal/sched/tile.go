package sched

// Tile is one unit of kernel work: the output rectangle spanning rows
// [RowLo, RowHi) and dense output columns [ColLo, ColHi). Tiles
// produced by Tiles are pairwise disjoint and cover the full
// rows x cols rectangle, so a kernel that writes only its tile's
// rectangle needs no synchronization on the output.
type Tile struct {
	RowLo, RowHi int
	ColLo, ColHi int
	// Cost is the tile's estimated work (row costs scaled by the
	// tile's column fraction), the quantity the partitioner balances.
	Cost int64
}

// lineFloats is one 64-byte cache line of float32s — the column
// alignment quantum the partitioner uses to keep concurrently-written
// tile boundaries off shared lines.
const lineFloats = 16

// TileOptions control the partitioner.
type TileOptions struct {
	// TargetCost is the per-tile work target. Row groups whose cost
	// exceeds it are split along the dense-column dimension; light rows
	// are batched until they reach it.
	TargetCost int64
	// MaxCols caps a tile's dense-column width (cache blocking for
	// very wide B). 0 means no cap.
	MaxCols int
}

// Tiles partitions the rows x cols output rectangle into tiles of
// near-TargetCost work, where rowCost(r) is the full-width cost of row
// r (for SpMM: its nonzero count). The partition is degree-aware in
// the sense the paper's row-class imbalance demands:
//
//   - light rows are batched into one tile until the batch reaches the
//     target (amortizing per-tile overhead over many near-empty rows);
//   - a heavy row — one whose cost alone exceeds the target — becomes
//     its own row group and is split along the dense-column dimension
//     into near-equal column chunks.
//
// Splitting along columns rather than along the row's nonzeros is what
// preserves bit-determinism: every output element is still accumulated
// by exactly one tile, over the row's nonzeros in their serial order.
//
// The result is a pure function of (rows, cols, rowCost, opt): it does
// not depend on worker count or execution order.
func Tiles(rows, cols int, rowCost func(r int) int64, opt TileOptions) []Tile {
	if rows <= 0 || cols <= 0 {
		return nil
	}
	target := opt.TargetCost
	if target < 1 {
		target = 1
	}
	var tiles []Tile
	emit := func(rowLo, rowHi int, groupCost int64) {
		// Column chunks: floor division, so a batch that merely crossed
		// the target stays whole (a chunk may carry up to 2x target-1;
		// with several tiles per worker that still balances). Ceiling
		// here would split nearly every batch in two, doubling the
		// sparse-metadata walks for no balance gain. Bounded by the
		// column count, and by MaxCols if set.
		chunks := int(groupCost / target)
		if chunks < 1 {
			chunks = 1
		}
		if opt.MaxCols > 0 {
			if byWidth := (cols + opt.MaxCols - 1) / opt.MaxCols; byWidth > chunks {
				chunks = byWidth
			}
		}
		if chunks > cols {
			chunks = cols
		}
		width := (cols + chunks - 1) / chunks
		// False-sharing guard: round the chunk width up to a whole
		// cache line of float32s, so two tiles splitting the same rows
		// never write the same 64-byte line (pad/stride on the tile
		// boundary rather than the output layout). Skipped when an
		// explicit MaxCols cache-blocking cap is narrower than a line.
		if width < cols {
			if aligned := (width + lineFloats - 1) / lineFloats * lineFloats; opt.MaxCols <= 0 || aligned <= opt.MaxCols {
				width = aligned
				if width > cols {
					width = cols
				}
			}
		}
		for colLo := 0; colLo < cols; colLo += width {
			colHi := colLo + width
			if colHi > cols {
				colHi = cols
			}
			tiles = append(tiles, Tile{
				RowLo: rowLo, RowHi: rowHi,
				ColLo: colLo, ColHi: colHi,
				Cost: groupCost * int64(colHi-colLo) / int64(cols),
			})
		}
	}
	groupLo := 0
	var groupCost int64
	for r := 0; r < rows; r++ {
		// +1 charges fixed per-row bookkeeping so empty rows still
		// close batches eventually.
		c := rowCost(r) + 1
		if c >= target && r > groupLo {
			// Heavy row: flush the pending batch, then the row alone.
			emit(groupLo, r, groupCost)
			groupLo, groupCost = r, 0
		}
		groupCost += c
		if groupCost >= target {
			emit(groupLo, r+1, groupCost)
			groupLo, groupCost = r+1, 0
		}
	}
	if groupLo < rows {
		emit(groupLo, rows, groupCost)
	}
	return tiles
}

// RunTiles partitions the rows x cols rectangle with the pool's tile
// options and executes fn over every tile with work stealing. totalCost
// should be the sum of rowCost over all rows (for SpMM: the matrix
// NNZ); it only influences the automatic tile-cost target. Like Run,
// a panic inside fn is contained: RunTiles returns the *TileError and
// the pool stays usable.
func (p *Pool) RunTiles(rows, cols int, totalCost int64, rowCost func(r int) int64, fn func(t Tile)) error {
	tiles := Tiles(rows, cols, rowCost, p.Options(totalCost))
	if r := p.Obs(); r != nil {
		// The tile partition is a pure function of (operand, pool
		// sizing), so these are deterministic for a fixed worker count.
		r.Counter("sched/tile_runs").Inc()
		r.Counter("sched/tiles").Add(int64(len(tiles)))
		h := r.Hist("sched/tile_cost")
		for _, t := range tiles {
			h.Observe(t.Cost)
		}
	}
	return p.Run(len(tiles), func(i int) { fn(tiles[i]) })
}
