package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/resil"
)

// TestRunContainsTilePanic: a panicking tile function does not crash
// the process — Run returns a *TileError carrying the tile index and
// recovered value, every sibling tile still executes, and the same
// pool remains usable for subsequent runs.
func TestRunContainsTilePanic(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		const n = 200
		const bad = 137
		var ran atomic.Int64
		err := p.Run(n, func(i int) {
			ran.Add(1)
			if i == bad {
				panic(fmt.Sprintf("boom at %d", i))
			}
		})
		var te *TileError
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: Run = %v, want *TileError", workers, err)
		}
		if te.Tile != bad {
			t.Fatalf("workers=%d: TileError.Tile = %d, want %d", workers, te.Tile, bad)
		}
		if te.Recovered != fmt.Sprintf("boom at %d", bad) {
			t.Fatalf("workers=%d: Recovered = %v", workers, te.Recovered)
		}
		if len(te.Stack) == 0 {
			t.Fatalf("workers=%d: TileError.Stack is empty", workers)
		}
		if got := ran.Load(); got != n {
			t.Fatalf("workers=%d: sibling tiles not drained: ran %d of %d", workers, got, n)
		}
		// The pool must be fully usable after the panic.
		var again atomic.Int64
		if err := p.Run(n, func(i int) { again.Add(1) }); err != nil {
			t.Fatalf("workers=%d: Run after panic = %v, want nil", workers, err)
		}
		if got := again.Load(); got != n {
			t.Fatalf("workers=%d: post-panic run executed %d of %d tiles", workers, got, n)
		}
	}
}

// TestRunReturnsLowestPanickingTile: when several tiles panic, the
// returned TileError deterministically names the lowest index.
func TestRunReturnsLowestPanickingTile(t *testing.T) {
	p := New(4)
	err := p.Run(100, func(i int) {
		if i%10 == 3 { // tiles 3, 13, 23, ... all panic
			panic(i)
		}
	})
	var te *TileError
	if !errors.As(err, &te) {
		t.Fatalf("Run = %v, want *TileError", err)
	}
	if te.Tile != 3 {
		t.Fatalf("TileError.Tile = %d, want lowest panicking tile 3", te.Tile)
	}
}

// TestTileErrorUnwrap: a recovered error value is reachable through
// errors.Is/As, so callers can classify injected faults.
func TestTileErrorUnwrap(t *testing.T) {
	p := Serial()
	sentinel := errors.New("sentinel failure")
	err := p.Run(4, func(i int) {
		if i == 2 {
			panic(sentinel)
		}
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is(err, sentinel) = false; err = %v", err)
	}
	// Non-error panic values unwrap to nil without crashing.
	err = p.Run(2, func(i int) { panic("not an error") })
	var te *TileError
	if !errors.As(err, &te) || te.Unwrap() != nil {
		t.Fatalf("non-error panic: err = %v, Unwrap = %v", err, te.Unwrap())
	}
}

// TestRunWithInjectedCrash: a crash event scheduled at the pool's
// "tile" site surfaces as a TileError wrapping *resil.CrashError, and
// the injector fires the event exactly once — the next run on the same
// pool is clean.
func TestRunWithInjectedCrash(t *testing.T) {
	plan, err := resil.ParsePlan("seed=7; crash@tile:5")
	if err != nil {
		t.Fatal(err)
	}
	p := New(4).WithInjector(resil.NewInjector(plan, nil))
	runErr := p.Run(64, func(i int) {})
	var ce *resil.CrashError
	if !errors.As(runErr, &ce) {
		t.Fatalf("Run = %v, want wrapped *resil.CrashError", runErr)
	}
	if ce.Site != "tile" || ce.Occurrence != 5 {
		t.Fatalf("CrashError = %+v, want tile:5", ce)
	}
	if err := p.Run(64, func(i int) {}); err != nil {
		t.Fatalf("second run after consumed crash event = %v, want nil", err)
	}
}

// TestChaosHammer is the satellite chaos test: 8 concurrent callers
// share one pool whose injector panics a tile in every run (occurrence
// numbers spread across the callers' combined tile stream), plus
// explicit panics from the tile functions themselves. Under -race this
// exercises the recover path, the TileError election, and the drain
// logic concurrently. Every caller must observe either nil or a
// well-formed *TileError, all sibling tiles must run, and the pool
// must stay usable afterward.
func TestChaosHammer(t *testing.T) {
	const (
		callers = 8
		rounds  = 25
		tiles   = 64
	)
	// One crash event per expected ~thousand tile executions keeps
	// injected faults flowing throughout the hammer without starving
	// any single round.
	planSrc := "seed=42"
	for occ := 100; occ <= callers*rounds*tiles; occ += 911 {
		planSrc += fmt.Sprintf("; crash@tile:%d", occ)
	}
	plan, err := resil.ParsePlan(planSrc)
	if err != nil {
		t.Fatal(err)
	}
	pool := New(4).WithInjector(resil.NewInjector(plan, nil))
	var wg sync.WaitGroup
	var executed atomic.Int64
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				err := pool.Run(tiles, func(i int) {
					executed.Add(1)
					// Caller-local explicit panics on top of the
					// injected ones.
					if c%2 == 0 && r%7 == 3 && i == c*7 {
						panic(fmt.Sprintf("caller %d round %d tile %d", c, r, i))
					}
				})
				if err != nil {
					var te *TileError
					if !errors.As(err, &te) {
						t.Errorf("caller %d round %d: err = %v, want *TileError", c, r, err)
						return
					}
					if te.Tile < 0 || te.Tile >= tiles {
						t.Errorf("caller %d round %d: tile index %d out of range", c, r, te.Tile)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	// Drain semantics: every tile of every run executed (panics never
	// cancel siblings), minus nothing — injected crashes panic before
	// fn, so injected-crash tiles don't increment executed.
	crashes := int64(len(plan.Events))
	if got, want := executed.Load(), int64(callers*rounds*tiles)-crashes; got != want {
		t.Fatalf("executed %d tiles, want %d (total minus %d injected crashes)", got, want, crashes)
	}
	// The shared pool is still healthy.
	if err := pool.Run(tiles, func(i int) {}); err != nil {
		t.Fatalf("pool unusable after hammer: %v", err)
	}
}

// TestReduceIntRepanics: ReduceInt re-raises a contained tile panic on
// the calling goroutine as the captured *TileError.
func TestReduceIntRepanics(t *testing.T) {
	p := New(4)
	defer func() {
		r := recover()
		te, ok := r.(*TileError)
		if !ok {
			t.Fatalf("recovered %v, want *TileError", r)
		}
		if te.Recovered != "reduce boom" {
			t.Fatalf("Recovered = %v", te.Recovered)
		}
	}()
	p.ReduceInt(1000, func(lo, hi int) int {
		if lo == 0 {
			panic("reduce boom")
		}
		return hi - lo
	})
	t.Fatal("ReduceInt returned; want re-panic")
}
