// Package sched is the shared parallel execution engine the SpMM
// kernels run on: a work-stealing worker pool over cache-blocked,
// degree-aware row tiles. It is the CPU stand-in for the GPU's warp
// scheduler — the paper's speedups only materialize when row-window
// work is load-balanced across execution units (HC-SpMM, TC-GNN), and
// the same holds for the CPU kernels here.
//
// Determinism contract (DESIGN.md §7): every tile owns a disjoint
// rectangle of the output matrix, and each output element is
// accumulated by exactly one worker in the same operand order the
// serial kernel uses. Kernels built on this package therefore return
// results bit-identical to their serial twins at every worker count
// and tile size — no atomics on float32, no unordered reductions —
// which is what lets internal/check hold parallel kernels to an exact
// (tolerance-zero) differential oracle.
//
// Fault containment (DESIGN.md §10): a panic inside a tile function is
// recovered by the engine, sibling tiles are drained, and Run returns
// a typed *TileError — a panicking tile no longer kills the process,
// and the pool remains usable. Pools built WithInjector additionally
// fire the internal/resil fault injector's "tile" site once per
// executed index, which is how chaos tests exercise this path.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/resil"
)

// Pool is a sizing policy for the work-stealing execution engine: a
// worker count and an optional tile-cost target. The zero-cost way to
// think about it: a Pool is the CPU analog of a kernel launch
// configuration. Pools are immutable and safe for concurrent use; the
// per-run scheduling state lives on the calling goroutine's stack.
type Pool struct {
	workers int
	target  int64 // per-tile cost target; 0 = auto
	// obs, when set, charges execution metrics: deterministic run/item/
	// tile counts, plus volatile steal counts and per-worker shares
	// (obs package determinism contract). nil disables instrumentation
	// at the cost of one pointer test per Run.
	obs *obs.Registry
	// inj, when set, fires the fault injector's "tile" site once per
	// executed index (crash/transient events panic inside the tile and
	// surface as a TileError; stragglers delay the tile). nil disables
	// injection at the cost of one pointer test per tile — the same
	// contract as obs.
	inj *resil.Injector
}

// New returns a pool with the given worker count; workers <= 0 sizes
// the pool by runtime.GOMAXPROCS(0). New(1) is the serial pool: Run
// executes inline on the caller.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// NewWithTarget returns a pool that tiles work toward the given
// per-tile cost target instead of the automatic one — the knob the
// metamorphic tile-size-invariance checks turn.
func NewWithTarget(workers int, target int64) *Pool {
	p := New(workers)
	p.target = target
	return p
}

// WithTarget returns a pool identical to p with the given per-tile
// cost target (0 restores the automatic target) — how the execution
// planner applies an autotuned tile shape to an existing pool without
// disturbing its observability or fault wiring.
func (p *Pool) WithTarget(target int64) *Pool {
	q := *p
	if target < 0 {
		target = 0
	}
	q.target = target
	return &q
}

// Default returns the GOMAXPROCS-sized pool every kernel uses unless
// handed an explicit one.
func Default() *Pool { return New(0) }

// Serial returns the one-worker pool (kernels run inline, unchanged
// from their serial twins).
func Serial() *Pool { return New(1) }

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// WithObs returns a pool identical to p that charges execution metrics
// to r. Kernels built on the pool (internal/spmm) read the registry
// back through Obs to record their dispatch counts, so wiring one pool
// instruments the whole execution stack. A nil r returns an
// uninstrumented pool.
func (p *Pool) WithObs(r *obs.Registry) *Pool {
	q := *p
	q.obs = r
	return &q
}

// Obs returns the registry this pool charges; nil when instrumentation
// is disabled. Safe to call on the result of any constructor.
func (p *Pool) Obs() *obs.Registry { return p.obs }

// WithInjector returns a pool identical to p whose tile executions
// fire the fault injector's "tile" site. A nil in returns an
// uninjected pool.
func (p *Pool) WithInjector(in *resil.Injector) *Pool {
	q := *p
	q.inj = in
	return &q
}

// Injector returns the fault injector this pool fires; nil when
// injection is disabled.
func (p *Pool) Injector() *resil.Injector { return p.inj }

// Options returns the tile options this pool applies to a job whose
// total row cost is totalCost: the pool's explicit target if set,
// otherwise enough tiles for stealing to balance load (a few tiles per
// worker) without fragmenting small jobs.
func (p *Pool) Options(totalCost int64) TileOptions {
	if p.target > 0 {
		return TileOptions{TargetCost: p.target}
	}
	target := totalCost / int64(p.workers*4)
	if target < 64 {
		target = 64
	}
	return TileOptions{TargetCost: target}
}

// span is one worker's contiguous chunk of the tile index space, with
// head and tail packed into a single atomic word so owner pops and
// half-steals linearize on one CAS. Indices only move inward, so there
// is no ABA hazard. The pad keeps hot spans on distinct cache lines.
type span struct {
	hl  atomic.Uint64 // head<<32 | tail, both indices into [0, n)
	_   [56]byte
}

func pack(h, t uint32) uint64 { return uint64(h)<<32 | uint64(t) }

// pop takes the next index from the front of the span (owner side).
func (s *span) pop() (int, bool) {
	for {
		v := s.hl.Load()
		h, t := uint32(v>>32), uint32(v)
		if h >= t {
			return 0, false
		}
		if s.hl.CompareAndSwap(v, pack(h+1, t)) {
			return int(h), true
		}
	}
}

// stealHalf removes the back half of the span (thief side) and returns
// the stolen range.
func (s *span) stealHalf() (lo, hi int, ok bool) {
	for {
		v := s.hl.Load()
		h, t := uint32(v>>32), uint32(v)
		if h >= t {
			return 0, 0, false
		}
		k := (t - h + 1) / 2
		if s.hl.CompareAndSwap(v, pack(h, t-k)) {
			return int(t - k), int(t), true
		}
	}
}

// TileError is a panic captured inside one tile execution: the tile
// index, the recovered panic value, and the stack at the panic site.
// Run converts tile panics into a TileError instead of letting them
// kill the process — a panicking goroutine inside the pool would
// otherwise be unrecoverable by any caller — and the pool remains
// fully usable for subsequent runs.
type TileError struct {
	Tile      int
	Recovered any
	Stack     []byte
}

func (e *TileError) Error() string {
	return fmt.Sprintf("sched: tile %d panicked: %v", e.Tile, e.Recovered)
}

// Unwrap exposes a recovered error value (e.g. a *resil.CrashError) to
// errors.Is/As.
func (e *TileError) Unwrap() error {
	if err, ok := e.Recovered.(error); ok {
		return err
	}
	return nil
}

// Run executes fn(i) exactly once for every i in [0, n), distributed
// across the pool's workers by work stealing: each worker starts on a
// contiguous chunk of the index space and, when drained, steals the
// back half of another worker's remaining chunk. fn must be safe to
// call from multiple goroutines for distinct i; no two calls share an
// index, and Run returns only after every call has finished.
//
// Fault containment: a panic inside fn is recovered, the remaining
// sibling tiles are drained normally, and Run returns a *TileError
// describing the panicking tile (the lowest-indexed one when several
// panic, so the returned error is deterministic). The pool itself
// holds no per-run state and stays usable after a tile panic. Run
// returns nil when every call completed.
func (p *Pool) Run(n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	// Deterministic accounting: invocation and item counts are pure
	// functions of the workload. The steal/share metrics below are
	// scheduling-dependent and go to the volatile section.
	var steals, stolenItems *obs.Counter
	if p.obs != nil {
		p.obs.Counter("sched/runs").Inc()
		p.obs.Counter("sched/items").Add(int64(n))
		steals = p.obs.Volatile("sched/steals")
		stolenItems = p.obs.Volatile("sched/steal_items")
	}
	// exec runs one tile with fault containment: an injector hit first
	// (crash/transient events panic, stragglers sleep), then fn, with
	// any panic captured as the run's TileError. One deferred recover
	// per tile is noise next to a tile's >= target-cost work, keeping
	// the fault-free hot path at nil-check cost.
	var errMu sync.Mutex
	var tileErr *TileError
	exec := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				stack := debug.Stack()
				errMu.Lock()
				if tileErr == nil || i < tileErr.Tile {
					tileErr = &TileError{Tile: i, Recovered: r, Stack: stack}
				}
				errMu.Unlock()
				if p.obs != nil {
					p.obs.Counter("sched/tile_panics").Inc()
				}
			}
		}()
		if p.inj != nil {
			p.inj.Exec("tile")
		}
		fn(i)
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			exec(i)
		}
		if tileErr != nil {
			return tileErr
		}
		return nil
	}
	spans := make([]span, w)
	chunk := (n + w - 1) / w
	for i := range spans {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
		spans[i].hl.Store(pack(uint32(lo), uint32(hi)))
	}
	var wg sync.WaitGroup
	for id := 0; id < w; id++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			// executed tracks this worker's share of the index space —
			// published as a volatile per-worker occupancy metric, since
			// the split depends on steal timing.
			executed := 0
			defer func() {
				if p.obs != nil {
					p.obs.Volatile("sched/worker/"+strconv.Itoa(self)+"/executed").Add(int64(executed))
				}
			}()
			for {
				if i, ok := spans[self].pop(); ok {
					exec(i)
					executed++
					continue
				}
				// Own span drained: scan for a victim. Spans never
				// grow, so a full empty scan means global completion.
				stole := false
				for d := 1; d < w; d++ {
					victim := (self + d) % w
					if lo, hi, ok := spans[victim].stealHalf(); ok {
						steals.Inc()
						stolenItems.Add(int64(hi - lo))
						for i := lo; i < hi; i++ {
							exec(i)
							executed++
						}
						stole = true
						break
					}
				}
				if !stole {
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if tileErr != nil {
		return tileErr
	}
	return nil
}

// Chunks splits [0, n) into at most k contiguous, non-empty ranges of
// near-equal length, in order. Used by ordered reductions: compute one
// partial per chunk in parallel, then fold the partials in chunk order
// so the reduction is deterministic.
func Chunks(n, k int) [][2]int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	size := (n + k - 1) / k
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// ReduceInt computes the sum of fn over a partition of [0, n) with the
// partials folded in chunk order — an ordered parallel reduction. For
// integer sums the order is immaterial to the value, but keeping the
// fold ordered means the same helper is safe for any associative-only
// accumulator. A panic inside fn is re-raised on the calling goroutine
// (as the *TileError Run captured) rather than killing the process.
func (p *Pool) ReduceInt(n int, fn func(lo, hi int) int) int {
	chunks := Chunks(n, p.workers)
	if len(chunks) <= 1 {
		if n <= 0 {
			return 0
		}
		return fn(0, n)
	}
	partials := make([]int, len(chunks))
	err := p.Run(len(chunks), func(ci int) {
		partials[ci] = fn(chunks[ci][0], chunks[ci][1])
	})
	if err != nil {
		panic(err)
	}
	total := 0
	for _, v := range partials {
		total += v
	}
	return total
}
