// Race hammer tests for the scheduler itself: pools are stateless and
// safe for concurrent Run/RunTiles/ReduceInt calls from many
// goroutines; the work-stealing deques are per-call. Run under -race
// by scripts/ci.sh at default GOMAXPROCS and GOMAXPROCS=2.
package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRaceSharedPoolRun issues overlapping Run calls on one shared
// pool; each call must still execute every index exactly once.
func TestRaceSharedPoolRun(t *testing.T) {
	p := New(4)
	const callers = 8
	const n = 500
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				hits := make([]atomic.Int32, n)
				p.Run(n, func(i int) { hits[i].Add(1) })
				for i := range hits {
					if got := hits[i].Load(); got != 1 {
						t.Errorf("caller %d: index %d executed %d times", seed, i, got)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestRaceSharedPoolRunTiles issues overlapping tiled runs; every
// call's tiles must still partition its output rectangle exactly.
func TestRaceSharedPoolRunTiles(t *testing.T) {
	p := NewWithTarget(3, 7)
	const callers = 6
	const rows, cols = 64, 9
	rowCost := func(r int) int64 { return int64(r % 13) }
	var total int64
	for r := 0; r < rows; r++ {
		total += rowCost(r)
	}
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				covered := make([]atomic.Int32, rows*cols)
				p.RunTiles(rows, cols, total, rowCost, func(tl Tile) {
					for r := tl.RowLo; r < tl.RowHi; r++ {
						for j := tl.ColLo; j < tl.ColHi; j++ {
							covered[r*cols+j].Add(1)
						}
					}
				})
				for i := range covered {
					if got := covered[i].Load(); got != 1 {
						t.Errorf("caller %d: output cell %d written %d times", seed, i, got)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestRaceSharedPoolReduceInt issues overlapping ordered reductions;
// each must return the exact serial sum.
func TestRaceSharedPoolReduceInt(t *testing.T) {
	p := New(4)
	const callers = 8
	const n = 2000
	want := n * (n - 1) / 2
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				got := p.ReduceInt(n, func(lo, hi int) int {
					s := 0
					for i := lo; i < hi; i++ {
						s += i
					}
					return s
				})
				if got != want {
					t.Errorf("ReduceInt = %d, want %d", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
