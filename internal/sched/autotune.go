package sched

import "time"

// Autotune picks a tile-cost target empirically: it times trial once
// per candidate target (best of repeats runs each, after one untimed
// warmup) and returns the candidate with the minimum wall time, ties
// broken toward the earlier candidate so the result is deterministic
// for deterministic timings. Because the tiled kernels are
// bit-deterministic at every tile size (DESIGN.md §7), autotuning is
// free to chase wall clock without any correctness risk — the planner
// calibration pass (internal/plan) runs it once per machine and
// serializes the winner, so planned runs replay without re-tuning.
//
// candidates must be non-empty; a candidate of 0 means the pool's
// automatic target. repeats < 1 is treated as 1.
func Autotune(candidates []int64, repeats int, trial func(target int64)) int64 {
	if len(candidates) == 0 {
		return 0
	}
	if repeats < 1 {
		repeats = 1
	}
	best := candidates[0]
	bestNs := int64(1<<63 - 1)
	for _, cand := range candidates {
		trial(cand) // warmup: page in operands, stabilize caches
		minNs := int64(1<<63 - 1)
		for r := 0; r < repeats; r++ {
			start := time.Now()
			trial(cand)
			if d := time.Since(start).Nanoseconds(); d < minNs {
				minNs = d
			}
		}
		if minNs < bestNs {
			bestNs = minNs
			best = cand
		}
	}
	return best
}

// TargetCandidates returns the tile-cost targets Autotune sweeps for a
// workload of the given total cost on a pool of the given worker
// count: the automatic target (0) plus a geometric ladder around it,
// clamped to sane bounds. Pure function, so the candidate list — and
// hence an autotuned calibration — is reproducible for a fixed
// workload shape.
func TargetCandidates(totalCost int64, workers int) []int64 {
	if workers < 1 {
		workers = 1
	}
	auto := totalCost / int64(workers*4)
	if auto < 64 {
		auto = 64
	}
	out := []int64{0}
	for _, scale := range []int64{4, 1} {
		if t := auto / scale; t >= 64 {
			out = append(out, t)
		}
	}
	if t := auto * 4; t > 0 && t <= totalCost {
		out = append(out, t)
	}
	return out
}
