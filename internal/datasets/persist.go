package datasets

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/graph"
)

// datasetDTO is the on-disk form of a Dataset (gob needs exported,
// concrete fields; graph.Graph serializes through its CSR arrays).
type datasetDTO struct {
	Name       string
	N          int
	RowPtr     []int32
	ColIdx     []int32
	XRows      int
	XCols      int
	XData      []float32
	Labels     []int
	Classes    int
	Train      []int
	Val        []int
	Test       []int
	PaperN     int
	PaperE     int
	PaperF     int
	BestVNM    string
	FormatTag  string // sanity marker
	FormatVers int
}

const persistTag = "sogre-dataset"
const persistVersion = 1

// Save serializes a dataset (graph structure, features, labels,
// split, metadata) so expensive synthesis or preprocessing can be
// reused across processes.
func Save(w io.Writer, ds *Dataset) error {
	rowPtr, colIdx, _ := ds.G.CSR()
	dto := datasetDTO{
		Name:   ds.Name,
		N:      ds.G.N(),
		RowPtr: rowPtr,
		ColIdx: colIdx,
		XRows:  ds.X.Rows, XCols: ds.X.Cols, XData: ds.X.Data,
		Labels: ds.Labels, Classes: ds.Classes,
		Train: ds.Split.Train, Val: ds.Split.Val, Test: ds.Split.Test,
		PaperN: ds.PaperN, PaperE: ds.PaperE, PaperF: ds.PaperF,
		BestVNM:    ds.BestVNM,
		FormatTag:  persistTag,
		FormatVers: persistVersion,
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// Load reads a dataset written by Save, validating structure.
func Load(r io.Reader) (*Dataset, error) {
	var dto datasetDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("datasets: decode: %w", err)
	}
	if dto.FormatTag != persistTag {
		return nil, fmt.Errorf("datasets: not a dataset bundle")
	}
	if dto.FormatVers != persistVersion {
		return nil, fmt.Errorf("datasets: unsupported bundle version %d", dto.FormatVers)
	}
	g, err := graph.NewFromCSR(dto.N, dto.RowPtr, dto.ColIdx, nil)
	if err != nil {
		return nil, fmt.Errorf("datasets: bundle graph: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("datasets: bundle graph invalid: %w", err)
	}
	if dto.XRows*dto.XCols != len(dto.XData) || dto.XRows != dto.N || len(dto.Labels) != dto.N {
		return nil, fmt.Errorf("datasets: bundle shapes inconsistent")
	}
	return &Dataset{
		Name:    dto.Name,
		G:       g,
		X:       dense.FromData(dto.XRows, dto.XCols, dto.XData),
		Labels:  dto.Labels,
		Classes: dto.Classes,
		Split:   gnn.Split{Train: dto.Train, Val: dto.Val, Test: dto.Test},
		PaperN:  dto.PaperN, PaperE: dto.PaperE, PaperF: dto.PaperF,
		BestVNM: dto.BestVNM,
	}, nil
}
