package datasets

import (
	"testing"

	"repro/internal/graph"
)

// graphsIdentical compares exact adjacency structure.
func graphsIdentical(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for u := 0; u < a.N(); u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// TestFamilyDeterminismAcrossSeeds: every generator family is a pure
// function of its seed — identical seeds reproduce the graph exactly,
// different seeds (for the stochastic families) do not.
func TestFamilyDeterminismAcrossSeeds(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			g1, err := Family(fam, 300, 12, 42)
			if err != nil {
				t.Fatal(err)
			}
			g2, err := Family(fam, 300, 12, 42)
			if err != nil {
				t.Fatal(err)
			}
			if !graphsIdentical(g1, g2) {
				t.Fatal("same seed produced different graphs")
			}
			if fam == "grid" {
				return // deterministic by construction, seed unused
			}
			g3, err := Family(fam, 300, 12, 43)
			if err != nil {
				t.Fatal(err)
			}
			if graphsIdentical(g1, g3) {
				t.Error("different seeds produced identical graphs")
			}
		})
	}
}

// TestFamilyNegativeSeedSafe: Family is total over seeds (negative
// seeds once crashed the community and blowup generators through
// negative modulo results).
func TestFamilyNegativeSeedSafe(t *testing.T) {
	for _, fam := range Families() {
		for _, seed := range []int64{-1, -4, -1 << 40} {
			g, err := Family(fam, 120, 8, seed)
			if err != nil {
				t.Fatalf("family %s seed %d: %v", fam, seed, err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("family %s seed %d: invalid graph: %v", fam, seed, err)
			}
		}
	}
}

func TestFamilyRejectsUnknownName(t *testing.T) {
	if _, err := Family("no-such-family", 100, 8, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// TestCollectionTable1Bounds: the synthetic SuiteSparse collection
// respects its Table-1 contract — deterministic for a spec, all three
// size classes populated (>= 3 graphs each), vertex counts within
// [64, MaxN], and every graph a valid symmetric adjacency structure.
func TestCollectionTable1Bounds(t *testing.T) {
	spec := CollectionSpec{Scale: 0.01, Seed: 99, MaxN: 1024}
	c1 := SuiteSparseCollection(spec)
	c2 := SuiteSparseCollection(spec)
	if len(c1) != len(c2) {
		t.Fatalf("collection size not deterministic: %d vs %d", len(c1), len(c2))
	}
	perClass := map[SizeClass]int{}
	for i, e := range c1 {
		if e.Name != c2[i].Name || !graphsIdentical(e.G, c2[i].G) {
			t.Fatalf("entry %d (%s) not deterministic", i, e.Name)
		}
		perClass[e.Class]++
		if n := e.G.N(); n < 64 || n > spec.MaxN {
			t.Errorf("%s: n = %d outside [64, %d]", e.Name, n, spec.MaxN)
		}
		if err := e.G.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
	for _, class := range []SizeClass{Small, Medium, Large} {
		if perClass[class] < 3 {
			t.Errorf("class %s has %d graphs, want >= 3", class, perClass[class])
		}
	}
	if ClassDegree(Small) >= ClassDegree(Medium) || ClassDegree(Medium) >= ClassDegree(Large) {
		t.Error("Table-1 class degrees must increase with size class")
	}
}

// TestGNNDatasetsTable2Bounds: each synthetic GNN dataset stays inside
// its Table-2 contract — deterministic per seed, scaled sizes bounded
// by the paper sizes, features and labels shaped consistently, and
// class labels within range.
func TestGNNDatasetsTable2Bounds(t *testing.T) {
	opt := GenOptions{Scale: 0.03, Seed: 5, MaxClasses: 6}
	sets := GNNDatasets(opt)
	if len(sets) != len(GNNDatasetMetas) {
		t.Fatalf("got %d datasets, want %d", len(sets), len(GNNDatasetMetas))
	}
	again := GNNDatasets(opt)
	for i, d := range sets {
		meta := GNNDatasetMetas[i]
		if d.Name != meta.Name {
			t.Fatalf("dataset %d is %s, want %s", i, d.Name, meta.Name)
		}
		if !graphsIdentical(d.G, again[i].G) {
			t.Errorf("%s: graph not deterministic", d.Name)
		}
		if d.G.N() > meta.N {
			t.Errorf("%s: scaled n %d exceeds paper n %d", d.Name, d.G.N(), meta.N)
		}
		if d.PaperN != meta.N || d.PaperE != meta.E || d.PaperF != meta.F {
			t.Errorf("%s: paper metadata not carried through", d.Name)
		}
		if d.X.Rows != d.G.N() {
			t.Errorf("%s: feature rows %d != n %d", d.Name, d.X.Rows, d.G.N())
		}
		if len(d.Labels) != d.G.N() {
			t.Errorf("%s: label count %d != n %d", d.Name, len(d.Labels), d.G.N())
		}
		if d.Classes > opt.MaxClasses {
			t.Errorf("%s: %d classes exceed cap %d", d.Name, d.Classes, opt.MaxClasses)
		}
		for _, l := range d.Labels {
			if l < 0 || l >= d.Classes {
				t.Fatalf("%s: label %d outside [0,%d)", d.Name, l, d.Classes)
			}
		}
	}
}
