// Package datasets synthesizes the evaluation data of the paper
// (DESIGN.md §1 substitutions): a SuiteSparse-like matrix collection
// whose small/medium/large classes match Table 1's structural
// statistics, named GNN benchmark datasets at (scaled) Table 2 sizes
// with class-correlated features, and OGBN-like large graphs for the
// distributed pipeline. Everything is deterministic per seed.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// SizeClass is the paper's Table 1 partition of the collection.
type SizeClass int

// The three collection classes.
const (
	Small SizeClass = iota
	Medium
	Large
)

func (c SizeClass) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	default:
		return "large"
	}
}

// CollectionEntry is one synthetic SuiteSparse graph.
type CollectionEntry struct {
	Name  string
	Class SizeClass
	Kind  string // generator family
	G     *graph.Graph
}

// CollectionSpec sizes the synthetic collection. Scale multiplies both
// the per-class graph counts (Table 1: 444/724/188) and the vertex
// counts, so Scale=1 reproduces the full collection's scale and the
// default used by tests and benches is much smaller.
type CollectionSpec struct {
	Scale float64
	Seed  int64
	// MaxN caps vertex counts (the reordering engine's dense bit matrix
	// wants n in the tens of thousands at most, mirroring the ~45K
	// limits of cusparseLt/Spatha the paper notes in Section 4.4).
	MaxN int
}

// DefaultCollectionSpec returns a spec sized for minutes-scale
// experiment runs.
func DefaultCollectionSpec() CollectionSpec {
	return CollectionSpec{Scale: 0.05, Seed: 20250705, MaxN: 4096}
}

// classParams are per-class target regimes from Table 1.
type classParams struct {
	count    int     // graphs at Scale = 1
	avgN     int     // average vertex count at Scale = 1
	spreadN  float64 // multiplicative size spread
	avgDeg   float64
	maxDegMu float64 // heavy-tail strength
}

var classTable = map[SizeClass]classParams{
	Small:  {count: 444, avgN: 426, spreadN: 2.0, avgDeg: 12.5},
	Medium: {count: 724, avgN: 3600, spreadN: 2.5, avgDeg: 22.5},
	Large:  {count: 188, avgN: 22600, spreadN: 2.0, avgDeg: 36.1},
}

// generator families, reflecting SuiteSparse's composition: mostly
// PDE/mesh-like (banded, grid, duplicate-row stencil blowups), plus
// communities, uniform random, a heavy-tailed minority and an
// ultra-sparse tail (the Figure-4 slowdown regime).
var families = []string{"banded", "ultrasparse", "blowup", "grid", "community", "er", "banded2", "powerlaw", "blowup"}

// SuiteSparseCollection generates the synthetic collection.
func SuiteSparseCollection(spec CollectionSpec) []CollectionEntry {
	if spec.Scale <= 0 {
		spec = DefaultCollectionSpec()
	}
	if spec.MaxN <= 0 {
		spec.MaxN = 4096
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var out []CollectionEntry
	for _, class := range []SizeClass{Small, Medium, Large} {
		params := classTable[class]
		count := int(float64(params.count)*spec.Scale + 0.5)
		if count < 3 {
			count = 3
		}
		for i := 0; i < count; i++ {
			n := int(float64(params.avgN) * spec.Scale * 10 * sizeJitter(rng, params.spreadN))
			if n < 64 {
				n = 64
			}
			if n > spec.MaxN {
				n = spec.MaxN
			}
			fam := families[i%len(families)]
			deg := params.avgDeg * (0.5 + rng.Float64())
			g := generate(fam, n, deg, rng.Int63())
			out = append(out, CollectionEntry{
				Name:  fmt.Sprintf("%s-%s-%03d", class, fam, i),
				Class: class,
				Kind:  fam,
				G:     g,
			})
		}
	}
	return out
}

func sizeJitter(rng *rand.Rand, spread float64) float64 {
	// Log-uniform in [1/spread, spread].
	lo, hi := 1/spread, spread
	return lo * math.Pow(hi/lo, rng.Float64())
}

// Families lists the generator family names the collection draws from,
// deduplicated — the density/degree regimes of Table 1.
func Families() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range families {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// Family generates one graph from a named collection family at the
// given size and average-degree target — the entry point differential
// tests use to sample each density/degree regime directly.
func Family(name string, n int, deg float64, seed int64) (*graph.Graph, error) {
	ok := false
	for _, f := range families {
		if f == name {
			ok = true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("datasets: unknown family %q", name)
	}
	return generate(name, n, deg, seed), nil
}

// ClassDegree returns the Table-1 average degree target of a size
// class.
func ClassDegree(c SizeClass) float64 { return classTable[c].avgDeg }

func generate(family string, n int, deg float64, seed int64) *graph.Graph {
	switch family {
	case "banded":
		band := int(deg/1.6) + 1
		return graph.Banded(n, band, 0.8, seed)
	case "banded2":
		band := int(deg) + 2
		return graph.Banded(n, band, 0.4, seed)
	case "grid":
		side := isqrt(n)
		return graph.Grid2D(side, (n+side-1)/side)
	case "community":
		nc := 4 + int(((seed%5)+5)%5)
		sizes := make([]int, nc)
		for i := range sizes {
			sizes[i] = n / nc
		}
		pIn := deg / float64(n/nc)
		if pIn > 0.9 {
			pIn = 0.9
		}
		g, _ := graph.SBM(sizes, pIn, pIn/40, seed)
		return g
	case "powerlaw":
		m := int(deg / 4)
		if m < 1 {
			m = 1
		}
		return graph.BarabasiAlbert(n, m, seed)
	case "blowup":
		// Duplicate-row stencil structure: ring base blown up by a
		// cluster factor rotating through {8, 16, 32}.
		cs := []int{8, 16, 32}
		c := cs[int(((seed%3)+3)%3)]
		base := n / c
		if base < 4 {
			base, c = 4, n/4
		}
		return graph.Blowup(graph.Banded(base, 1, 1.0, seed), c)
	case "ultrasparse":
		// Density well under 0.01%: the regime where the paper observes
		// SPTC SpMM losing to CSR.
		return graph.UltraSparse(n, 0.03, seed)
	default: // "er"
		return graph.ErdosRenyi(n, deg/float64(n), seed)
	}
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
