package datasets

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestSuiteSparseCollectionClasses(t *testing.T) {
	spec := CollectionSpec{Scale: 0.02, Seed: 1, MaxN: 2048}
	col := SuiteSparseCollection(spec)
	if len(col) < 9 {
		t.Fatalf("collection has %d graphs, want >= 9", len(col))
	}
	counts := map[SizeClass]int{}
	var avgN = map[SizeClass]float64{}
	for _, e := range col {
		if err := e.G.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", e.Name, err)
		}
		counts[e.Class]++
		avgN[e.Class] += float64(e.G.N())
	}
	for _, c := range []SizeClass{Small, Medium, Large} {
		if counts[c] < 3 {
			t.Errorf("class %v has %d graphs", c, counts[c])
		}
		avgN[c] /= float64(counts[c])
	}
	// Size classes must be ordered.
	if !(avgN[Small] < avgN[Medium] && avgN[Medium] <= avgN[Large]) {
		t.Errorf("class sizes not ordered: %v %v %v", avgN[Small], avgN[Medium], avgN[Large])
	}
	// Medium proportion should be largest, mirroring Table 1
	// (444/724/188).
	if !(counts[Medium] > counts[Small] && counts[Small] > counts[Large]) {
		t.Errorf("class counts %v don't mirror Table 1 proportions", counts)
	}
}

func TestCollectionDeterministic(t *testing.T) {
	spec := CollectionSpec{Scale: 0.01, Seed: 5, MaxN: 1024}
	a := SuiteSparseCollection(spec)
	b := SuiteSparseCollection(spec)
	if len(a) != len(b) {
		t.Fatal("counts differ")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].G.NumEdges() != b[i].G.NumEdges() {
			t.Fatalf("entry %d not deterministic", i)
		}
	}
}

func TestCollectionDefaultSpec(t *testing.T) {
	col := SuiteSparseCollection(CollectionSpec{})
	if len(col) == 0 {
		t.Fatal("zero-value spec should fall back to defaults")
	}
	for _, e := range col {
		if e.G.N() > DefaultCollectionSpec().MaxN {
			t.Errorf("%s exceeds MaxN", e.Name)
		}
	}
}

func TestGenerateDatasetShape(t *testing.T) {
	opt := GenOptions{Scale: 0.05, Seed: 3, MaxClasses: 8}
	ds := Generate(GNNDatasetMetas[0], opt) // Cora
	if ds.Name != "Cora" {
		t.Errorf("name %q", ds.Name)
	}
	if ds.G.N() != ds.X.Rows || len(ds.Labels) != ds.G.N() {
		t.Error("graph/features/labels disagree on n")
	}
	if ds.Classes < 2 {
		t.Errorf("classes = %d", ds.Classes)
	}
	for _, l := range ds.Labels {
		if l < 0 || l >= ds.Classes {
			t.Fatalf("label %d out of range", l)
		}
	}
	if len(ds.Split.Train) == 0 || len(ds.Split.Test) == 0 {
		t.Error("empty split")
	}
	if ds.PaperN != 2708 || ds.PaperF != 1433 {
		t.Error("paper metadata wrong")
	}
}

func TestGNNDatasetsAll(t *testing.T) {
	all := GNNDatasets(GenOptions{Scale: 0.03, Seed: 1, MaxClasses: 6})
	if len(all) != len(GNNDatasetMetas) {
		t.Fatalf("generated %d datasets", len(all))
	}
	seen := map[string]bool{}
	for _, ds := range all {
		if seen[ds.Name] {
			t.Errorf("duplicate %s", ds.Name)
		}
		seen[ds.Name] = true
		if err := ds.G.Validate(); err != nil {
			t.Errorf("%s: %v", ds.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("Citeseer", GenOptions{Scale: 0.03, Seed: 1, MaxClasses: 4}); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope", GenOptions{}); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestDatasetHomophily(t *testing.T) {
	ds := Generate(GNNDatasetMetas[0], GenOptions{Scale: 0.08, Seed: 2, MaxClasses: 7})
	intra, inter := 0, 0
	for u := 0; u < ds.G.N(); u++ {
		for _, v := range ds.G.Neighbors(u) {
			if ds.Labels[u] == ds.Labels[int(v)] {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra <= inter {
		t.Errorf("homophilous dataset has intra=%d <= inter=%d", intra, inter)
	}
}

func TestOGBN(t *testing.T) {
	meta, ok := OGBNByName("ogbn-arxiv")
	if !ok {
		t.Fatal("ogbn-arxiv missing")
	}
	g := OGBNGraph(meta, 0.02, 1)
	if g.N() < 2000 {
		t.Errorf("n = %d too small", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(g, 1)
	if st.AvgDegree < 1 {
		t.Errorf("avg degree %v", st.AvgDegree)
	}
	if _, ok := OGBNByName("bogus"); ok {
		t.Error("bogus dataset found")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := Generate(GNNDatasetMetas[0], GenOptions{Scale: 0.04, Seed: 3, MaxClasses: 5})
	var buf bytes.Buffer
	if err := Save(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != ds.Name || back.G.N() != ds.G.N() || back.G.NumEdges() != ds.G.NumEdges() {
		t.Error("graph changed in round trip")
	}
	if back.X.Rows != ds.X.Rows || back.X.Cols != ds.X.Cols {
		t.Error("feature shape changed")
	}
	for i := range ds.X.Data {
		if back.X.Data[i] != ds.X.Data[i] {
			t.Fatal("feature values changed")
		}
	}
	for i := range ds.Labels {
		if back.Labels[i] != ds.Labels[i] {
			t.Fatal("labels changed")
		}
	}
	if len(back.Split.Train) != len(ds.Split.Train) || back.PaperN != ds.PaperN {
		t.Error("split/meta changed")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a bundle")); err == nil {
		t.Error("want decode error")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(struct{ X int }{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("want tag error")
	}
}

func BenchmarkSuiteSparseCollection(b *testing.B) {
	spec := CollectionSpec{Scale: 0.008, Seed: 1, MaxN: 768}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SuiteSparseCollection(spec)
	}
}
