package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/graph"
)

// Dataset is a node-classification dataset: graph, features, labels
// and split, plus the paper-reported metadata of the real dataset it
// stands in for.
type Dataset struct {
	Name     string
	G        *graph.Graph
	X        *dense.Matrix
	Labels   []int
	Classes  int
	Split    gnn.Split
	PaperN   int // Table 2 vertex count of the real dataset
	PaperE   int // Table 2 edge count
	PaperF   int // Table 2 feature count
	BestVNM  string
	scaledBy float64
}

// Meta describes one Table-2 dataset analog.
type Meta struct {
	Name     string
	N, E, F  int
	Classes  int
	BestVNM  string  // the paper's reported best format, for reference
	Homophil float64 // intra-class edge affinity of the synthetic stand-in
}

// GNNDatasetMetas lists the eight single-GPU datasets of Tables 2–5.
var GNNDatasetMetas = []Meta{
	{Name: "Cora", N: 2708, E: 10556, F: 1433, Classes: 7, BestVNM: "1:2:4", Homophil: 0.62},
	{Name: "Citeseer", N: 3327, E: 9104, F: 3703, Classes: 6, BestVNM: "32:2:8", Homophil: 0.62},
	{Name: "Facebook", N: 4039, E: 88234, F: 1283, Classes: 193, BestVNM: "1:2:4", Homophil: 0.52},
	{Name: "Computers", N: 13752, E: 491722, F: 767, Classes: 10, BestVNM: "1:2:4", Homophil: 0.58},
	{Name: "CS", N: 18333, E: 163788, F: 6805, Classes: 15, BestVNM: "16:2:16", Homophil: 0.7},
	{Name: "CoraFull", N: 19793, E: 126842, F: 8710, Classes: 70, BestVNM: "32:2:16", Homophil: 0.62},
	{Name: "Amazon-ratings", N: 24492, E: 93050, F: 300, Classes: 5, BestVNM: "1:2:32", Homophil: 0.38},
	{Name: "Physics", N: 34493, E: 495924, F: 8415, Classes: 5, BestVNM: "16:2:16", Homophil: 0.7},
}

// GenOptions controls dataset synthesis.
type GenOptions struct {
	// Scale shrinks vertex and feature counts (1.0 = paper sizes). The
	// default 0.1 keeps CPU training runs in seconds.
	Scale float64
	Seed  int64
	// MaxClasses caps label count (Facebook's 193 classes would starve
	// tiny scaled graphs).
	MaxClasses int
}

// DefaultGenOptions returns the options experiment drivers use.
func DefaultGenOptions() GenOptions {
	return GenOptions{Scale: 0.1, Seed: 7, MaxClasses: 12}
}

// Generate synthesizes the stand-in for one Table-2 dataset: an SBM
// graph whose communities are the classification classes (edge density
// chosen to match the real dataset's average degree), with
// class-centroid Gaussian features. Accuracy on such data is sensitive
// to edge deletion in exactly the way Table 5 measures, because the
// graph structure carries the class signal.
func Generate(meta Meta, opt GenOptions) *Dataset {
	if opt.Scale <= 0 {
		opt = DefaultGenOptions()
	}
	n := int(float64(meta.N) * opt.Scale)
	if n < 120 {
		n = 120
	}
	f := int(float64(meta.F) * opt.Scale)
	if f < 16 {
		f = 16
	}
	classes := meta.Classes
	if opt.MaxClasses > 0 && classes > opt.MaxClasses {
		classes = opt.MaxClasses
	}
	if n/classes < 12 {
		classes = n / 12
		if classes < 2 {
			classes = 2
		}
	}
	sizes := make([]int, classes)
	for i := range sizes {
		sizes[i] = n / classes
	}
	n = 0
	for _, s := range sizes {
		n += s
	}
	avgDeg := 2 * float64(meta.E) / float64(meta.N)
	if avgDeg < 2 {
		avgDeg = 2
	}
	// Split expected degree into intra/inter parts by homophily.
	intraDeg := avgDeg * meta.Homophil
	interDeg := avgDeg - intraDeg
	classSize := float64(n / classes)
	pIn := intraDeg / classSize
	if pIn > 0.95 {
		pIn = 0.95
	}
	pOut := interDeg / (float64(n) - classSize)
	g, labels := graph.SBM(sizes, pIn, pOut, opt.Seed+int64(len(meta.Name)))
	x := classFeatures(labels, classes, f, opt.Seed+99)
	return &Dataset{
		Name:    meta.Name,
		G:       g,
		X:       x,
		Labels:  labels,
		Classes: classes,
		Split:   gnn.RandomSplit(g.N(), 0.3, 0.2, opt.Seed+5),
		PaperN:  meta.N, PaperE: meta.E, PaperF: meta.F,
		BestVNM:  meta.BestVNM,
		scaledBy: opt.Scale,
	}
}

// GNNDatasets generates all Table-2 analogs.
func GNNDatasets(opt GenOptions) []*Dataset {
	out := make([]*Dataset, 0, len(GNNDatasetMetas))
	for _, m := range GNNDatasetMetas {
		out = append(out, Generate(m, opt))
	}
	return out
}

// ByName generates the named dataset analog, or an error if unknown.
func ByName(name string, opt GenOptions) (*Dataset, error) {
	for _, m := range GNNDatasetMetas {
		if m.Name == name {
			return Generate(m, opt), nil
		}
	}
	return nil, fmt.Errorf("datasets: unknown dataset %q", name)
}

// classFeatures produces noisy class-centroid features. The signal is
// deliberately weak (centroids overlap) so that graph aggregation is
// required for high accuracy — the regime where pruning edges costs
// accuracy.
func classFeatures(labels []int, classes, f int, seed int64) *dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	centroids := dense.NewMatrix(classes, f)
	for i := range centroids.Data {
		centroids.Data[i] = float32(rng.NormFloat64()) * 0.25
	}
	x := dense.NewMatrix(len(labels), f)
	for i, lab := range labels {
		c := centroids.Row(lab)
		r := x.Row(i)
		for j := range r {
			r[j] = c[j] + float32(rng.NormFloat64())*1.25
		}
	}
	return x
}
