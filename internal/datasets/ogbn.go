package datasets

import (
	"repro/internal/graph"
)

// OGBNMeta describes one OGBN large-graph dataset (Table 2 bottom rows
// and Table 6), with the average sampled-subgraph vertex count the
// paper reports for its NeighborSampler partitioning (Section 5.2).
type OGBNMeta struct {
	Name       string
	N, E       int
	F, Classes int
	AvgSample  int // paper's average vertices per sampled subgraph
}

// OGBNMetas lists the four OGBN datasets of Table 6.
var OGBNMetas = []OGBNMeta{
	{Name: "ogbn-proteins", N: 132534, E: 39561252, F: 128, Classes: 2, AvgSample: 24604},
	{Name: "ogbn-arxiv", N: 169343, E: 1166243, F: 128, Classes: 40, AvgSample: 2514},
	{Name: "ogbn-products", N: 2449029, E: 61859140, F: 100, Classes: 47, AvgSample: 19833},
	{Name: "ogbn-papers100M", N: 111059956, E: 1615685872, F: 128, Classes: 172, AvgSample: 7607},
}

// OGBNGraph synthesizes a stand-in large graph for the named OGBN
// dataset at the given scale: an RMAT-flavored graph whose density
// matches the real dataset's average degree, with community structure
// mixed in for the denser ones. The distributed pipeline samples
// subgraphs from it.
func OGBNGraph(meta OGBNMeta, scale float64, seed int64) *graph.Graph {
	if scale <= 0 {
		scale = 0.01
	}
	n := int(float64(meta.N) * scale)
	if n < 2000 {
		n = 2000
	}
	avgDeg := 2 * float64(meta.E) / float64(meta.N)
	if avgDeg > 24 {
		avgDeg = 24 // cap the synthetic density; proteins is extremely dense
	}
	switch meta.Name {
	case "ogbn-proteins":
		// Dense biological interaction net: heavy-tailed.
		m := int(avgDeg / 4)
		if m < 1 {
			m = 1
		}
		return graph.BarabasiAlbert(n, m, seed)
	default:
		// Citation / co-purchase networks: strong community structure
		// (the regime where sampled subgraphs reorder well).
		nc := n / 400
		if nc < 4 {
			nc = 4
		}
		sizes := make([]int, nc)
		for i := range sizes {
			sizes[i] = n / nc
		}
		classSize := float64(n / nc)
		pIn := avgDeg * 0.85 / classSize
		pOut := avgDeg * 0.15 / (float64(n) - classSize)
		g, _ := graph.SBM(sizes, pIn, pOut, seed)
		return g
	}
}

// OGBNByName looks up the meta entry.
func OGBNByName(name string) (OGBNMeta, bool) {
	for _, m := range OGBNMetas {
		if m.Name == name {
			return m, true
		}
	}
	return OGBNMeta{}, false
}
