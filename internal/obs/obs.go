// Package obs is the execution observability layer: a hierarchical,
// deterministic, low-overhead registry of counters, gauges, series,
// histograms and span-style stage timers threaded through every
// execution layer — the scheduler (tiles, steals, per-worker shares),
// the SpMM/SPTC kernels (dispatch counts, modeled cycles per
// instruction class), the reorder engine (per-stage timings, partitions
// processed) and the GNN/distributed training loops (per-epoch
// loss/accuracy/aggregation cycles).
//
// Determinism contract (DESIGN.md §9): metrics are segregated by class.
//
//   - Counters, gauges, series and histograms hold values that are pure
//     functions of the workload (dispatch counts, modeled cycles,
//     per-epoch losses): for a fixed seed and configuration they are
//     byte-identical across runs — the same contract internal/bench
//     keeps for its canonical suites.
//   - Volatile counters hold scheduling-dependent counts (steals,
//     per-worker execution shares) and span timers hold wall-clock
//     durations; both vary run to run.
//
// Snapshot partitions the two; Snapshot.Canonical zeroes every
// volatile/wall field (keeping the key structure and deterministic span
// counts) so the deterministic projection is snapshot-testable byte for
// byte. encoding/json sorts map keys, so two snapshots with equal
// contents marshal to identical bytes.
//
// Two volatile-by-construction shapes complete the taxonomy. A
// VolatileHist records observations whose multiset depends on
// scheduling (coalesced batch sizes, queue depths at arrival): its
// whole snapshot is zeroed by Canonical. A VolatileSpan is a stage
// timer whose *invocation count* is itself scheduling-dependent (how
// many batches a serving window coalesced), unlike a regular Span whose
// count is a pure function of the workload — Canonical zeroes a
// volatile span's count too, where a regular span keeps it. Putting a
// timing-dependent count in a regular Span or Hist is exactly the flake
// class the serving layer's determinism gate guards against.
//
// A nil *Registry is the disabled-instrumentation path: every Registry
// method is a no-op on a nil receiver and returns nil-safe handles, so
// instrumented code never guards call sites and pays only a pointer
// test when observability is off.
//
// Ordering caveat: integer counter additions commute exactly, so
// counters may be charged from concurrent workers (the reorder
// partition fan-out does). Gauge and series mutations are
// order-sensitive for floats and must happen on a single goroutine
// (the training loops do) to stay deterministic.
package obs

import (
	"encoding/json"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Schema identifies the snapshot JSON layout; bump on breaking changes.
const Schema = "sogre-obs/v1"

// histBuckets is the number of log2 buckets a histogram carries: bucket
// k counts observations v with floor(log2(v)) == k (v <= 0 lands in
// bucket 0), enough for any int64.
const histBuckets = 64

// Counter is a monotonically-growing integer metric. Additions are
// atomic and commute exactly, so a counter charged from concurrent
// workers still totals deterministically.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; no-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one; no-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric holding an accumulated or last-set value
// (modeled cycles, final accuracies). To stay deterministic it must be
// mutated from a single goroutine at a time per name: float addition
// order matters.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Add accumulates v into the gauge; no-op on a nil receiver.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += v
	g.mu.Unlock()
}

// Set overwrites the gauge (last write wins); no-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Series is an append-only float64 sequence (per-epoch losses,
// validation accuracies). Appends must happen in a deterministic order
// — one goroutine per name — for the series to be deterministic.
type Series struct {
	mu sync.Mutex
	vs []float64
}

// Append adds v to the end of the series; no-op on a nil receiver.
func (s *Series) Append(v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.vs = append(s.vs, v)
	s.mu.Unlock()
}

// Values returns a copy of the series (nil on a nil receiver).
func (s *Series) Values() []float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.vs...)
}

// Hist is a log2-bucketed histogram of integer observations (tile
// costs, block sizes). Observations from concurrent workers total
// deterministically — bucket counts are integer sums.
type Hist struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	buckets [histBuckets]int64
}

// Observe records one value; no-op on a nil receiver.
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v)) - 1
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	h.buckets[b]++
	h.mu.Unlock()
}

// spanStats aggregates the completed spans of one name. The invocation
// count is deterministic (stage structure is a pure function of the
// workload); the nanosecond fields are wall clock and volatile.
type spanStats struct {
	mu      sync.Mutex
	count   int64
	totalNs int64
	minNs   int64
	maxNs   int64
	buckets [histBuckets]int64
}

// Span is one in-flight stage timing, started by Registry.Span and
// closed by End. The zero Span (from a nil registry) is a no-op.
type Span struct {
	stats *spanStats
	start time.Time
}

// End closes the span, folding its wall duration into the registry's
// per-name aggregate; no-op on the zero Span. End may be called from
// any goroutine.
func (s Span) End() {
	if s.stats == nil {
		return
	}
	ns := time.Since(s.start).Nanoseconds()
	b := 0
	if ns > 0 {
		b = bits.Len64(uint64(ns)) - 1
	}
	st := s.stats
	st.mu.Lock()
	st.count++
	st.totalNs += ns
	if st.count == 1 || ns < st.minNs {
		st.minNs = ns
	}
	if ns > st.maxNs {
		st.maxNs = ns
	}
	st.buckets[b]++
	st.mu.Unlock()
}

// Registry is the hierarchical metric namespace ("layer/metric" names
// by convention: "sched/tiles", "reorder/stage1", "gnn/agg_cycles").
// All methods are safe for concurrent use and no-ops on a nil receiver.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	volatile map[string]*Counter
	gauges   map[string]*Gauge
	series   map[string]*Series
	hists    map[string]*Hist
	spans    map[string]*spanStats
	vhists   map[string]*Hist
	vspans   map[string]*spanStats
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		volatile: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		series:   make(map[string]*Series),
		hists:    make(map[string]*Hist),
		spans:    make(map[string]*spanStats),
		vhists:   make(map[string]*Hist),
		vspans:   make(map[string]*spanStats),
	}
}

// Counter returns the named deterministic counter, creating it on first
// use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Volatile returns the named scheduling-dependent counter (steal
// counts, per-worker shares) — reported under the volatile section and
// zeroed by Canonical. Returns nil on a nil registry.
func (r *Registry) Volatile(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.volatile[name]
	if !ok {
		c = &Counter{}
		r.volatile[name] = c
	}
	return c
}

// Gauge returns the named deterministic float gauge. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Series returns the named deterministic series. Returns nil on a nil
// registry.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// Hist returns the named deterministic histogram. Returns nil on a nil
// registry.
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// Span starts a stage timer under the given name:
//
//	sp := reg.Span("reorder/stage1")
//	... stage work ...
//	sp.End()
//
// The per-name invocation count is deterministic; the durations are
// wall clock (volatile). Returns the no-op zero Span on a nil registry.
func (r *Registry) Span(name string) Span {
	if r == nil {
		return Span{}
	}
	r.mu.Lock()
	st, ok := r.spans[name]
	if !ok {
		st = &spanStats{}
		r.spans[name] = st
	}
	r.mu.Unlock()
	return Span{stats: st, start: time.Now()}
}

// VolatileHist returns the named scheduling-dependent histogram
// (coalesced batch sizes, queue depths at arrival) — reported under
// the volatile_hists section and fully zeroed by Canonical. Returns
// nil on a nil registry.
func (r *Registry) VolatileHist(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.vhists[name]
	if !ok {
		h = &Hist{}
		r.vhists[name] = h
	}
	return h
}

// VolatileSpan starts a stage timer whose invocation count is itself
// scheduling-dependent (per-coalesced-batch stages): both the count
// and the durations are zeroed by Canonical, where a regular Span
// keeps its count. Returns the no-op zero Span on a nil registry.
func (r *Registry) VolatileSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	r.mu.Lock()
	st, ok := r.vspans[name]
	if !ok {
		st = &spanStats{}
		r.vspans[name] = st
	}
	r.mu.Unlock()
	return Span{stats: st, start: time.Now()}
}

// HistSnapshot is one histogram's rendered state. Buckets is the log2
// bucket array trimmed after the last nonzero bucket (deterministic for
// deterministic observations).
type HistSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets"`
}

// SpanSnapshot is one span aggregate. Count is deterministic; the
// nanosecond fields and buckets are wall clock, zeroed by Canonical.
type SpanSnapshot struct {
	Count     int64   `json:"count"`
	TotalNs   int64   `json:"total_ns"`
	MinNs     int64   `json:"min_ns"`
	MaxNs     int64   `json:"max_ns"`
	BucketsNs []int64 `json:"buckets_ns,omitempty"`
}

// Snapshot is a point-in-time rendering of a registry, partitioned into
// the deterministic sections (counters, gauges, series, hists, span
// counts) and the volatile ones (volatile counters, span durations).
type Snapshot struct {
	Schema        string                  `json:"schema"`
	Counters      map[string]int64        `json:"counters"`
	Gauges        map[string]float64      `json:"gauges"`
	Series        map[string][]float64    `json:"series"`
	Hists         map[string]HistSnapshot `json:"hists"`
	Volatile      map[string]int64        `json:"volatile"`
	Spans         map[string]SpanSnapshot `json:"spans"`
	VolatileHists map[string]HistSnapshot `json:"volatile_hists"`
	VolatileSpans map[string]SpanSnapshot `json:"volatile_spans"`
}

func trimBuckets(b *[histBuckets]int64) []int64 {
	last := -1
	for i, v := range b {
		if v != 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	return append([]int64(nil), b[:last+1]...)
}

// Snapshot renders the registry's current state. Safe to call
// concurrently with instrumentation (the live /debug/metrics endpoint
// does). A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Schema:        Schema,
		Counters:      map[string]int64{},
		Gauges:        map[string]float64{},
		Series:        map[string][]float64{},
		Hists:         map[string]HistSnapshot{},
		Volatile:      map[string]int64{},
		Spans:         map[string]SpanSnapshot{},
		VolatileHists: map[string]HistSnapshot{},
		VolatileSpans: map[string]SpanSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, c := range r.volatile {
		s.Volatile[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, sr := range r.series {
		s.Series[name] = sr.Values()
	}
	for name, h := range r.hists {
		h.mu.Lock()
		s.Hists[name] = HistSnapshot{Count: h.count, Sum: h.sum, Buckets: trimBuckets(&h.buckets)}
		h.mu.Unlock()
	}
	for name, st := range r.spans {
		st.mu.Lock()
		s.Spans[name] = SpanSnapshot{
			Count: st.count, TotalNs: st.totalNs,
			MinNs: st.minNs, MaxNs: st.maxNs,
			BucketsNs: trimBuckets(&st.buckets),
		}
		st.mu.Unlock()
	}
	for name, h := range r.vhists {
		h.mu.Lock()
		s.VolatileHists[name] = HistSnapshot{Count: h.count, Sum: h.sum, Buckets: trimBuckets(&h.buckets)}
		h.mu.Unlock()
	}
	for name, st := range r.vspans {
		st.mu.Lock()
		s.VolatileSpans[name] = SpanSnapshot{
			Count: st.count, TotalNs: st.totalNs,
			MinNs: st.minNs, MaxNs: st.maxNs,
			BucketsNs: trimBuckets(&st.buckets),
		}
		st.mu.Unlock()
	}
	return s
}

// Canonical returns a copy with every volatile/wall-clock value zeroed
// — volatile counter values (keys kept, so the worker structure is
// still checked), span duration fields, volatile histogram contents,
// and volatile span contents *including their counts* (a volatile
// span's invocation count is scheduling-dependent by declaration) —
// leaving exactly the byte-comparable deterministic projection.
func (s *Snapshot) Canonical() *Snapshot {
	c := &Snapshot{
		Schema:        s.Schema,
		Counters:      s.Counters,
		Gauges:        s.Gauges,
		Series:        s.Series,
		Hists:         s.Hists,
		Volatile:      make(map[string]int64, len(s.Volatile)),
		Spans:         make(map[string]SpanSnapshot, len(s.Spans)),
		VolatileHists: make(map[string]HistSnapshot, len(s.VolatileHists)),
		VolatileSpans: make(map[string]SpanSnapshot, len(s.VolatileSpans)),
	}
	for name := range s.Volatile {
		c.Volatile[name] = 0
	}
	for name, sp := range s.Spans {
		c.Spans[name] = SpanSnapshot{Count: sp.Count}
	}
	for name := range s.VolatileHists {
		c.VolatileHists[name] = HistSnapshot{}
	}
	for name := range s.VolatileSpans {
		c.VolatileSpans[name] = SpanSnapshot{}
	}
	return c
}

// JSON renders the snapshot as indented JSON with a trailing newline.
// Map keys are sorted by encoding/json, so equal snapshots marshal to
// identical bytes (the canonical-JSON property the determinism gate in
// scripts/ci.sh compares).
func (s *Snapshot) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteFile renders r (canonicalized if canonical is set) to path, or
// to stdout when path is "-". The helper behind the CLIs' -metrics
// flag.
func WriteFile(r *Registry, path string, canonical bool) error {
	s := r.Snapshot()
	if canonical {
		s = s.Canonical()
	}
	data, err := s.JSON()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
