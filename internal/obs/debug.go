package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is the opt-in live-inspection endpoint for long runs,
// started by the CLIs' -debug-addr flag:
//
//	/debug/metrics — the registry's current Snapshot as JSON
//	/debug/vars    — expvar (memstats, cmdline)
//	/debug/pprof/  — runtime profiles (CPU, heap, goroutine, trace)
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebug listens on addr and serves the debug endpoints in a
// background goroutine until Close. The registry may be nil (the
// metrics endpoint then serves an empty snapshot); profiling still
// works.
func StartDebug(addr string, r *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		data, err := r.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{srv: &http.Server{Handler: mux}, ln: ln}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the listener down.
func (d *DebugServer) Close() error { return d.srv.Close() }
