package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// instrument drives one registry through a fixed workload, charging
// counters from concurrent workers (integer adds commute) and gauges,
// series and hists from the main goroutine.
func instrument(r *Registry) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("sched/items").Inc()
				r.Volatile("sched/steals").Add(int64(w))
			}
		}(w)
	}
	wg.Wait()
	r.Counter("reorder/partitions").Add(7)
	r.Gauge("gnn/agg_cycles").Add(1234.5)
	r.Gauge("gnn/agg_cycles").Add(0.5)
	r.Gauge("train/test_acc").Set(0.8125)
	for _, v := range []float64{1.5, 1.25, 1.125} {
		r.Series("train/loss").Append(v)
	}
	for _, v := range []int64{3, 64, 65, 1000} {
		r.Hist("sched/tile_cost").Observe(v)
	}
	sp := r.Span("reorder/stage1")
	time.Sleep(time.Microsecond)
	sp.End()
	r.Span("reorder/stage1").End()
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	// None of these may panic, and handles must be usable.
	r.Counter("a").Inc()
	r.Volatile("b").Add(2)
	r.Gauge("c").Add(1)
	r.Gauge("c").Set(2)
	r.Series("d").Append(3)
	r.Hist("e").Observe(4)
	r.Span("f").End()
	if got := r.Counter("a").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if got := r.Gauge("c").Value(); got != 0 {
		t.Errorf("nil gauge value = %v", got)
	}
	if got := r.Series("d").Values(); got != nil {
		t.Errorf("nil series values = %v", got)
	}
	s := r.Snapshot()
	if s.Schema != Schema || len(s.Counters) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	if _, err := s.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotValues(t *testing.T) {
	r := NewRegistry()
	instrument(r)
	s := r.Snapshot()
	if s.Counters["sched/items"] != 400 {
		t.Errorf("sched/items = %d, want 400", s.Counters["sched/items"])
	}
	if s.Counters["reorder/partitions"] != 7 {
		t.Errorf("reorder/partitions = %d", s.Counters["reorder/partitions"])
	}
	if s.Volatile["sched/steals"] != 600 {
		t.Errorf("sched/steals = %d, want 600", s.Volatile["sched/steals"])
	}
	if s.Gauges["gnn/agg_cycles"] != 1235.0 {
		t.Errorf("gnn/agg_cycles = %v", s.Gauges["gnn/agg_cycles"])
	}
	if s.Gauges["train/test_acc"] != 0.8125 {
		t.Errorf("train/test_acc = %v", s.Gauges["train/test_acc"])
	}
	if got := s.Series["train/loss"]; len(got) != 3 || got[0] != 1.5 || got[2] != 1.125 {
		t.Errorf("train/loss = %v", got)
	}
	h := s.Hists["sched/tile_cost"]
	if h.Count != 4 || h.Sum != 3+64+65+1000 {
		t.Errorf("hist = %+v", h)
	}
	// 3 -> bucket 1, 64/65 -> bucket 6, 1000 -> bucket 9.
	if len(h.Buckets) != 10 || h.Buckets[1] != 1 || h.Buckets[6] != 2 || h.Buckets[9] != 1 {
		t.Errorf("hist buckets = %v", h.Buckets)
	}
	sp := s.Spans["reorder/stage1"]
	if sp.Count != 2 {
		t.Errorf("span count = %d", sp.Count)
	}
	if sp.MinNs > sp.MaxNs || sp.TotalNs < sp.MaxNs {
		t.Errorf("span ns fields inconsistent: %+v", sp)
	}
}

func TestCanonicalDeterminism(t *testing.T) {
	// Two identically-instrumented registries must render byte-identical
	// canonical JSON, even though steal shares and span wall times
	// differ run to run.
	render := func() []byte {
		r := NewRegistry()
		instrument(r)
		data, err := r.Snapshot().Canonical().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Errorf("canonical snapshots differ:\n%s\n----\n%s", a, b)
	}
}

func TestCanonicalZeroesVolatileKeepsStructure(t *testing.T) {
	r := NewRegistry()
	instrument(r)
	c := r.Snapshot().Canonical()
	if v, ok := c.Volatile["sched/steals"]; !ok || v != 0 {
		t.Errorf("canonical volatile = %v (present %v), want key kept with 0", v, ok)
	}
	sp := c.Spans["reorder/stage1"]
	if sp.Count != 2 || sp.TotalNs != 0 || sp.MinNs != 0 || sp.MaxNs != 0 || sp.BucketsNs != nil {
		t.Errorf("canonical span = %+v", sp)
	}
	// Deterministic sections must be untouched.
	if c.Counters["sched/items"] != 400 || len(c.Series["train/loss"]) != 3 {
		t.Errorf("canonical lost deterministic fields: %+v", c)
	}
}

func TestWriteFile(t *testing.T) {
	r := NewRegistry()
	instrument(r)
	path := filepath.Join(t.TempDir(), "obs.json")
	if err := WriteFile(r, path, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("written snapshot is not valid JSON: %v", err)
	}
	if s.Schema != Schema {
		t.Errorf("schema = %q", s.Schema)
	}
}

func TestConcurrentSnapshotWhileInstrumenting(t *testing.T) {
	// The live /debug/metrics endpoint snapshots mid-run; this must be
	// race-free (validated under -race in CI).
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			instrument(r)
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := r.Snapshot().JSON(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	instrument(r)
	d, err := StartDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("/debug/metrics not valid JSON: %v", err)
	}
	if s.Counters["sched/items"] != 400 {
		t.Errorf("served snapshot counters = %v", s.Counters)
	}
	respVars, err := http.Get("http://" + d.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	respVars.Body.Close()
	if respVars.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status = %d", respVars.StatusCode)
	}
}

func TestVolatileHistAndSpanSegregation(t *testing.T) {
	// The serving layer's flake-class guard: scheduling-dependent
	// observation multisets (batch sizes, queue depths) and
	// scheduling-dependent stage invocations (per-coalesced-batch
	// timers) must leave NOTHING in the canonical projection — not even
	// the count a regular Span keeps.
	r := NewRegistry()
	r.VolatileHist("serve/batch_rows").Observe(7)
	r.VolatileHist("serve/batch_rows").Observe(3)
	sp := r.VolatileSpan("serve/batch")
	sp.End()

	s := r.Snapshot()
	if got := s.VolatileHists["serve/batch_rows"]; got.Count != 2 || got.Sum != 10 {
		t.Errorf("live volatile hist = %+v", got)
	}
	if got := s.VolatileSpans["serve/batch"]; got.Count != 1 {
		t.Errorf("live volatile span = %+v", got)
	}

	c := s.Canonical()
	if got := c.VolatileHists["serve/batch_rows"]; got.Count != 0 || got.Sum != 0 || got.Buckets != nil {
		t.Errorf("canonical volatile hist not zeroed: %+v", got)
	}
	if got := c.VolatileSpans["serve/batch"]; got.Count != 0 || got.TotalNs != 0 || got.MinNs != 0 || got.MaxNs != 0 || got.BucketsNs != nil {
		t.Errorf("canonical volatile span not zeroed: %+v", got)
	}
	// Keys survive so the metric structure is still comparable.
	if _, ok := c.VolatileHists["serve/batch_rows"]; !ok {
		t.Error("canonical dropped volatile hist key")
	}
	if _, ok := c.VolatileSpans["serve/batch"]; !ok {
		t.Error("canonical dropped volatile span key")
	}
}

func TestVolatileShapesNilRegistry(t *testing.T) {
	var r *Registry
	r.VolatileHist("x").Observe(1) // no-op, no panic
	r.VolatileSpan("y").End()      // no-op, no panic
	s := r.Snapshot()
	if len(s.VolatileHists) != 0 || len(s.VolatileSpans) != 0 {
		t.Errorf("nil registry snapshot has volatile shapes: %+v", s)
	}
}

func TestCanonicalVolatileShapesIdenticalAcrossContents(t *testing.T) {
	// Two runs with different scheduling (different batch counts and
	// sizes) must canonicalize to identical bytes.
	mk := func(obsv []int64, spans int) []byte {
		r := NewRegistry()
		for _, v := range obsv {
			r.VolatileHist("serve/batch_rows").Observe(v)
		}
		for i := 0; i < spans; i++ {
			r.VolatileSpan("serve/batch").End()
		}
		data, err := r.Snapshot().Canonical().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := mk([]int64{1, 2, 3}, 5)
	b := mk([]int64{9}, 1)
	if !bytes.Equal(a, b) {
		t.Errorf("canonical projections differ across scheduling:\n%s\nvs\n%s", a, b)
	}
}
