package hamming

import (
	"testing"
	"testing/quick"
)

func TestPaperExamples(t *testing.T) {
	// Section 4.2: the Hamming-distance order of all 2-digit strings is
	// {00, 01, 11, 10}, cumulative distance 3.
	order := Order(2)
	want := []uint64{0b00, 0b01, 0b11, 0b10}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Order(2)[%d] = %02b, want %02b", i, order[i], want[i])
		}
	}
	if d := CumulativeDistance(order); d != 3 {
		t.Errorf("cumulative distance of order = %d, want 3", d)
	}
	// "the Hamming position code of ... 11 is 2".
	if got := PositionCode(0b11); got != 2 {
		t.Errorf("PositionCode(11) = %d, want 2", got)
	}
	// {00, 01, 10, 11} has cumulative distance 1+2+1 = 4.
	if d := CumulativeDistance([]uint64{0b00, 0b01, 0b10, 0b11}); d != 4 {
		t.Errorf("cumulative distance of natural order = %d, want 4", d)
	}
	// 0011 vs 0111 differ at one position.
	if d := Distance(0b0011, 0b0111); d != 1 {
		t.Errorf("Distance(0011,0111) = %d, want 1", d)
	}
}

func TestAdjacentDifferByOneBit(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 8, 10} {
		order := Order(k)
		for i := 1; i < len(order); i++ {
			if Distance(order[i-1], order[i]) != 1 {
				t.Fatalf("k=%d: adjacent entries %d,%d differ by %d bits",
					k, i-1, i, Distance(order[i-1], order[i]))
			}
		}
		// Cumulative distance is minimal: exactly 2^k - 1.
		if d := CumulativeDistance(order); d != len(order)-1 {
			t.Errorf("k=%d cumulative distance = %d, want %d", k, d, len(order)-1)
		}
	}
}

func TestOrderIsPermutation(t *testing.T) {
	for _, k := range []int{1, 4, 8} {
		order := Order(k)
		seen := make(map[uint64]bool, len(order))
		for _, v := range order {
			if v >= 1<<uint(k) {
				t.Fatalf("k=%d: value %d out of range", k, v)
			}
			if seen[v] {
				t.Fatalf("k=%d: duplicate value %d", k, v)
			}
			seen[v] = true
		}
	}
}

func TestPositionCodeInvertsFromPosition(t *testing.T) {
	f := func(pos uint64) bool {
		return PositionCode(FromPosition(pos)) == pos
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(b uint64) bool {
		return FromPosition(PositionCode(b)) == b
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{-1, 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Order(%d) did not panic", k)
				}
			}()
			Order(k)
		}()
	}
}

func TestSignedCode(t *testing.T) {
	// 2:4 pattern: up to 2 nonzeros valid.
	if got := SignedCode(0b0011, 2); got <= 0 {
		t.Errorf("SignedCode(0011, 2) = %d, want positive", got)
	}
	if got := SignedCode(0b0111, 2); got >= 0 {
		t.Errorf("SignedCode(0111, 2) = %d, want negative", got)
	}
	// Zero vector gets code +1 (never zero).
	if got := SignedCode(0, 2); got != 1 {
		t.Errorf("SignedCode(0, 2) = %d, want 1", got)
	}
	// Negation preserves magnitude.
	pos := SignedCode(0b0011, 2)
	neg := SignedCode(0b0011, 0)
	if pos != -neg {
		t.Errorf("valid/invalid codes not symmetric: %d vs %d", pos, neg)
	}
}

func TestSignedCodeOrdersSimilarVectorsTogether(t *testing.T) {
	// Vectors with nearby position codes should have small Hamming
	// distance on average; spot-check monotone neighborhoods.
	a := PositionCode(0b1100)
	b := PositionCode(0b1101)
	if Distance(FromPosition(a), FromPosition(b)) != 1 {
		t.Error("round-trip changed values")
	}
}

func BenchmarkPositionCode(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += PositionCode(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}
