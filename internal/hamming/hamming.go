// Package hamming implements the Hamming-distance order of k-digit
// binary strings and the Hamming position code used by Stage-1 of the
// SOGRE reordering algorithm (Section 4.2 of the paper).
//
// The Hamming-distance order of all k-digit binary strings is the
// unique ordering minimizing the cumulative Hamming distance between
// adjacent strings; adjacent entries differ in exactly one bit. That
// ordering is the binary reflected Gray code: the i-th string in the
// order is Gray(i) = i XOR (i >> 1). The Hamming position code of a
// string b is therefore the Gray-code rank of b, i.e. the inverse Gray
// transform.
//
// Example for k = 2: the order is {00, 01, 11, 10}, with cumulative
// Hamming distance 3, and PositionCode(0b11) = 2 — matching the paper's
// worked example.
package hamming

import "math/bits"

// FromPosition returns the binary string at rank pos in the
// Hamming-distance order of k-digit strings: the binary reflected Gray
// code of pos. k is implicit (the result uses however many bits pos
// needs).
func FromPosition(pos uint64) uint64 {
	return pos ^ (pos >> 1)
}

// PositionCode returns the rank of the binary string b in the
// Hamming-distance order of k-digit binary strings (0-based). It is the
// inverse of FromPosition and is independent of k: leading zeros do not
// change the rank.
func PositionCode(b uint64) uint64 {
	// Inverse Gray code: prefix XOR over bits.
	b ^= b >> 1
	b ^= b >> 2
	b ^= b >> 4
	b ^= b >> 8
	b ^= b >> 16
	b ^= b >> 32
	return b
}

// Distance returns the Hamming distance between two binary strings.
func Distance(a, b uint64) int {
	return bits.OnesCount64(a ^ b)
}

// CumulativeDistance returns the sum of Hamming distances between every
// pair of adjacent strings in seq.
func CumulativeDistance(seq []uint64) int {
	total := 0
	for i := 1; i < len(seq); i++ {
		total += Distance(seq[i-1], seq[i])
	}
	return total
}

// Order returns the full Hamming-distance order of all k-digit binary
// strings, for k in [0, 30] (larger k would allocate > 2^30 entries).
func Order(k int) []uint64 {
	if k < 0 || k > 30 {
		panic("hamming: Order supports k in [0, 30]")
	}
	out := make([]uint64, 1<<uint(k))
	for i := range out {
		out[i] = FromPosition(uint64(i))
	}
	return out
}

// SignedCode returns the position code of segment-vector bits b as a
// signed value, negated when the vector violates the horizontal N:M
// constraint (more than n nonzeros among the M bits). This is the
// special treatment of Algorithm 2 lines 9–10: negation keeps invalid
// vectors from contaminating well-formed meta-blocks during the sort.
//
// The code of a valid vector is PositionCode(b)+1 and of an invalid one
// -(PositionCode(b)+1), so that the zero vector (code 1) remains
// distinguishable from "absent" zero entries in caller matrices.
func SignedCode(b uint64, n int) int64 {
	code := int64(PositionCode(b)) + 1
	if bits.OnesCount64(b) > n {
		return -code
	}
	return code
}
