package gnn

import (
	"testing"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func TestChebOrders(t *testing.T) {
	g, x, labels := testSetup(t, 32)
	idx := []int{0, 5, 10, 20}
	for _, K := range []int{1, 2, 4} {
		op, ledger := csrOp(t, csr.ScaledLaplacian(g))
		m := NewCheb(op, ledger, Config{In: 6, Hidden: 4, Classes: 2, ChebK: K, Seed: 3})
		if m.K != K {
			t.Fatalf("K = %d, want %d", m.K, K)
		}
		numericalGradCheck(t, m, x, labels, idx)
		// Aggregations per forward: 2 layers x (K-1) recurrence steps.
		ledger.Reset()
		m.Forward(x)
		want := 2 * (K - 1)
		if ledger.AggCalls != want {
			t.Errorf("K=%d: %d agg calls, want %d", K, ledger.AggCalls, want)
		}
	}
}

func TestSGCHops(t *testing.T) {
	g, x, _ := testSetup(t, 32)
	for _, hops := range []int{1, 3} {
		op, ledger := csrOp(t, csr.SymNormalized(g))
		m := NewSGC(op, ledger, Config{In: 6, Classes: 2, SGCHops: hops, Seed: 3})
		ledger.Reset()
		m.Forward(x)
		if ledger.AggCalls != hops {
			t.Errorf("hops=%d: %d agg calls", hops, ledger.AggCalls)
		}
	}
}

func TestSAGETransposeAggregation(t *testing.T) {
	// SAGE's operator (row-normalized adjacency) is asymmetric; MulT
	// must be its exact transpose — verify against dense.
	g, x, _ := testSetup(t, 24)
	w := csr.RowNormalized(g)
	op, _ := csrOp(t, w)
	wd := w.ToDense()
	want := dense.MatMul(dense.Transpose(wd), x)
	got := op.MulT(x)
	if d := dense.MaxAbsDiff(want, got); d > 1e-4 {
		t.Errorf("MulT differs from dense transpose by %v", d)
	}
}

func TestModelsDifferentSeedsDiffer(t *testing.T) {
	g, x, _ := testSetup(t, 24)
	op, ledger := csrOp(t, csr.SymNormalized(g))
	a := NewGCN(op, ledger, Config{In: 6, Hidden: 4, Classes: 2, Seed: 1})
	b := NewGCN(op, ledger, Config{In: 6, Hidden: 4, Classes: 2, Seed: 2})
	la := a.Forward(x)
	lb := b.Forward(x)
	if dense.MaxAbsDiff(la, lb) == 0 {
		t.Error("different seeds produced identical models")
	}
	c := NewGCN(op, ledger, Config{In: 6, Hidden: 4, Classes: 2, Seed: 1})
	lc := c.Forward(x)
	if dense.MaxAbsDiff(la, lc) != 0 {
		t.Error("same seed produced different models")
	}
}

func TestParamsGradsParallel(t *testing.T) {
	g, x, labels := testSetup(t, 24)
	for _, kind := range AllModelKinds {
		var w *csr.Matrix
		switch kind {
		case KindCheb:
			w = csr.ScaledLaplacian(g)
		case KindSAGE:
			w = csr.RowNormalized(g)
		default:
			w = csr.SymNormalized(g)
		}
		op, ledger := csrOp(t, w)
		m, err := Build(kind, op, ledger, Config{In: 6, Hidden: 4, Classes: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		params, grads := m.Params(), m.Grads()
		if len(params) != len(grads) {
			t.Fatalf("%s: %d params vs %d grads", kind, len(params), len(grads))
		}
		for i := range params {
			if params[i].Rows != grads[i].Rows || params[i].Cols != grads[i].Cols {
				t.Fatalf("%s: param %d shape mismatch", kind, i)
			}
		}
		// ZeroGrads clears accumulated gradients.
		logits := m.Forward(x)
		probs := logits.Clone()
		dense.SoftmaxRows(probs)
		_, grad := dense.CrossEntropy(probs, labels, []int{0, 1})
		m.Backward(grad)
		nonzero := false
		for _, gm := range m.Grads() {
			for _, v := range gm.Data {
				if v != 0 {
					nonzero = true
				}
			}
		}
		if !nonzero {
			t.Errorf("%s: backward produced all-zero grads", kind)
		}
		m.ZeroGrads()
		for _, gm := range m.Grads() {
			for _, v := range gm.Data {
				if v != 0 {
					t.Fatalf("%s: ZeroGrads left residue", kind)
				}
			}
		}
	}
}

func TestTrainTracksValidation(t *testing.T) {
	g, x, labels := testSetup(t, 60)
	op, ledger := csrOp(t, csr.SymNormalized(g))
	m := NewGCN(op, ledger, Config{In: 6, Hidden: 8, Classes: 2, Seed: 4})
	split := RandomSplit(g.N(), 0.5, 0.25, 2)
	res := Train(m, x, labels, split, TrainConfig{Epochs: 40, LR: 0.03})
	if len(res.LossHistory) != 40 {
		t.Errorf("loss history %d entries", len(res.LossHistory))
	}
	if res.BestValEpoch < 0 || res.BestValEpoch >= 40 {
		t.Errorf("BestValEpoch = %d", res.BestValEpoch)
	}
	if res.TrainAcc < res.TestAcc-0.3 {
		t.Errorf("train acc %v far below test %v", res.TrainAcc, res.TestAcc)
	}
}

func TestTrainDefaultsApplied(t *testing.T) {
	g, x, labels := testSetup(t, 24)
	op, ledger := csrOp(t, csr.SymNormalized(g))
	m := NewSGC(op, ledger, Config{In: 6, Classes: 2, Seed: 4})
	res := Train(m, x, labels, RandomSplit(g.N(), 0.5, 0.2, 1), TrainConfig{})
	if len(res.LossHistory) != DefaultTrainConfig().Epochs {
		t.Errorf("default epochs not applied: %d", len(res.LossHistory))
	}
}

func TestSPTCOperatorResidual(t *testing.T) {
	// A graph too dense to conform must still execute correctly via the
	// hybrid split (nonzero residual).
	g := graph.ErdosRenyi(48, 0.3, 3)
	w := csr.SymNormalized(g)
	f := NewFactory(EngineSPTC, pattern.NM(2, 4))
	op, err := f.Make(w)
	if err != nil {
		t.Fatal(err)
	}
	so, ok := op.(*sptcOperator)
	if !ok {
		t.Fatal("expected sptcOperator")
	}
	if so.ResidualNNZ() == 0 {
		t.Skip("unexpectedly conforming")
	}
	x := dense.NewMatrix(48, 8)
	x.Randomize(1, 5)
	csrOp, _ := csrOp(t, w)
	want := csrOp.Mul(x)
	got := op.Mul(x)
	if d := dense.MaxAbsDiff(want, got); d > 1e-4 {
		t.Errorf("hybrid SPTC differs from CSR by %v on non-conforming input", d)
	}
}

func BenchmarkGCNForward(b *testing.B) {
	g, labels := graph.SBM([]int{512, 512}, 0.02, 0.001, 3)
	_ = labels
	x := dense.NewMatrix(g.N(), 64)
	x.Randomize(1, 1)
	f := NewFactory(EngineCSR, pattern.NM(2, 4))
	op, err := f.Make(csr.SymNormalized(g))
	if err != nil {
		b.Fatal(err)
	}
	m := NewGCN(op, f.Ledger, Config{In: 64, Hidden: 64, Classes: 8, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Forward(x)
	}
}

func BenchmarkSAGETrainEpoch(b *testing.B) {
	g, labels := graph.SBM([]int{256, 256}, 0.03, 0.002, 3)
	x := dense.NewMatrix(g.N(), 32)
	x.Randomize(1, 1)
	f := NewFactory(EngineCSR, pattern.NM(2, 4))
	op, err := f.Make(csr.RowNormalized(g))
	if err != nil {
		b.Fatal(err)
	}
	m := NewSAGE(op, f.Ledger, Config{In: 32, Hidden: 32, Classes: 2, Seed: 1})
	idx := []int{0, 10, 20, 30, 40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		logits := m.Forward(x)
		probs := logits.Clone()
		dense.SoftmaxRows(probs)
		_, grad := dense.CrossEntropy(probs, labels, idx)
		m.Backward(grad)
	}
}
