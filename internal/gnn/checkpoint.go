package gnn

import (
	"sync"

	"repro/internal/dense"
)

// Checkpoint captures everything an interrupted Train run needs to
// continue as if it had never stopped: the live parameters, the Adam
// state (step counter plus both moment estimates), the loss history,
// and the early-stopping tracker. Because every piece of training state
// crosses the checkpoint boundary, a kill-and-resume run reproduces the
// uninterrupted run's loss curve and final parameters bit for bit —
// the recovery contract of DESIGN.md §10.
//
// All matrices in a checkpoint are deep copies; later training steps
// never mutate a saved snapshot.
type Checkpoint struct {
	// Epoch is the number of fully completed epochs; resuming starts at
	// epoch index Epoch.
	Epoch       int
	Params      []*dense.Matrix
	Opt         dense.AdamState
	LossHistory []float64
	// BestVal / BestValEpoch / BestParams carry the early-stopping
	// tracker. BestVal is -1 and BestParams nil when no validation
	// accuracy has been recorded yet.
	BestVal      float64
	BestValEpoch int
	BestParams   []*dense.Matrix
}

// MemStore is an in-memory checkpoint sink: its Save method slots
// straight into TrainConfig.Checkpoint, and Latest serves the resume
// side of a kill-and-resume recovery. Safe for concurrent use.
type MemStore struct {
	mu  sync.Mutex
	cps []*Checkpoint
}

// Save appends a checkpoint. Train hands over deep copies, so the
// store never aliases live training state.
func (s *MemStore) Save(cp *Checkpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cps = append(s.cps, cp)
}

// Latest returns the most recent checkpoint, or nil when none was
// saved.
func (s *MemStore) Latest() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cps) == 0 {
		return nil
	}
	return s.cps[len(s.cps)-1]
}

// Len reports how many checkpoints were saved.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cps)
}

// snapshotCheckpoint builds a deep-copied checkpoint of the training
// state after `epochs` completed epochs.
func snapshotCheckpoint(m Model, opt *dense.Adam, epochs int, res *TrainResult, bestVal float64, bestParams []*dense.Matrix) *Checkpoint {
	cp := &Checkpoint{
		Epoch:        epochs,
		Params:       cloneParams(m.Params()),
		Opt:          opt.ExportState(m.Params()),
		LossHistory:  append([]float64(nil), res.LossHistory...),
		BestVal:      bestVal,
		BestValEpoch: res.BestValEpoch,
	}
	if bestParams != nil {
		cp.BestParams = cloneParams(bestParams)
	}
	return cp
}
