package gnn

import (
	"math"
	"testing"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// testSetup builds a small graph, operators and features.
func testSetup(t testing.TB, n int) (*graph.Graph, *dense.Matrix, []int) {
	t.Helper()
	g, labels := graph.SBM([]int{n / 2, n / 2}, 0.3, 0.02, 7)
	x := dense.NewMatrix(g.N(), 6)
	x.Randomize(1, 3)
	// Make features class-informative.
	for i := 0; i < g.N(); i++ {
		x.Set(i, labels[i], x.At(i, labels[i])+2)
	}
	return g, x, labels
}

func csrOp(t testing.TB, w *csr.Matrix) (Operator, *Ledger) {
	t.Helper()
	f := NewFactory(EngineCSR, pattern.NM(2, 4))
	op, err := f.Make(w)
	if err != nil {
		t.Fatal(err)
	}
	return op, f.Ledger
}

// numericalGradCheck verifies Backward against finite differences on a
// few parameter entries.
func numericalGradCheck(t *testing.T, m Model, x *dense.Matrix, labels []int, idx []int) {
	t.Helper()
	lossOf := func() float64 {
		logits := m.Forward(x)
		probs := logits.Clone()
		dense.SoftmaxRows(probs)
		loss, _ := dense.CrossEntropy(probs, labels, idx)
		return loss
	}
	m.ZeroGrads()
	logits := m.Forward(x)
	probs := logits.Clone()
	dense.SoftmaxRows(probs)
	_, grad := dense.CrossEntropy(probs, labels, idx)
	m.Backward(grad)
	params, grads := m.Params(), m.Grads()
	const eps = 1e-2
	checked := 0
	for pi, p := range params {
		if len(p.Data) == 0 {
			continue
		}
		for _, k := range []int{0, len(p.Data) / 2, len(p.Data) - 1} {
			orig := p.Data[k]
			p.Data[k] = orig + eps
			up := lossOf()
			p.Data[k] = orig - eps
			down := lossOf()
			p.Data[k] = orig
			numGrad := (up - down) / (2 * eps)
			anaGrad := float64(grads[pi].Data[k])
			if math.Abs(numGrad-anaGrad) > 2e-2*(1+math.Abs(numGrad)) {
				t.Errorf("%s param %d[%d]: numerical %v vs analytic %v", m.Name(), pi, k, numGrad, anaGrad)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no parameters checked")
	}
}

func TestGradientsAllModels(t *testing.T) {
	g, x, labels := testSetup(t, 24)
	idx := []int{0, 3, 7, 12, 20}
	for _, kind := range AllModelKinds {
		t.Run(string(kind), func(t *testing.T) {
			var w *csr.Matrix
			switch kind {
			case KindCheb:
				w = csr.ScaledLaplacian(g)
			case KindSAGE:
				w = csr.RowNormalized(g)
			default:
				w = csr.SymNormalized(g)
			}
			op, ledger := csrOp(t, w)
			m, err := Build(kind, op, ledger, Config{In: 6, Hidden: 5, Classes: 2, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			if sgc, ok := m.(*SGC); ok {
				sgc.Cache = true // cache is safe: op and x are constant
			}
			numericalGradCheck(t, m, x, labels, idx)
		})
	}
}

func TestTrainingLearnsSBM(t *testing.T) {
	g, x, labels := testSetup(t, 80)
	split := RandomSplit(g.N(), 0.5, 0.2, 4)
	for _, kind := range AllModelKinds {
		t.Run(string(kind), func(t *testing.T) {
			var w *csr.Matrix
			switch kind {
			case KindCheb:
				w = csr.ScaledLaplacian(g)
			case KindSAGE:
				w = csr.RowNormalized(g)
			default:
				w = csr.SymNormalized(g)
			}
			op, ledger := csrOp(t, w)
			m, err := Build(kind, op, ledger, Config{In: 6, Hidden: 8, Classes: 2, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			res := Train(m, x, labels, split, TrainConfig{Epochs: 80, LR: 0.02})
			if res.TestAcc < 0.75 {
				t.Errorf("%s test accuracy %.3f < 0.75 (loss %.3f)", kind, res.TestAcc, res.FinalLoss)
			}
			if res.LossHistory[len(res.LossHistory)-1] > res.LossHistory[0] {
				t.Errorf("%s loss did not decrease: %v -> %v", kind, res.LossHistory[0], res.FinalLoss)
			}
		})
	}
}

func TestBackendsProduceIdenticalAggregation(t *testing.T) {
	// The SPTC backend must be bit-compatible with CSR (both are exact;
	// float ordering may differ slightly, so allow tiny tolerance).
	g, x, _ := testSetup(t, 64)
	w := csr.SymNormalized(g)
	opCSR, _ := csrOp(t, w)
	fSPTC := NewFactory(EngineSPTC, pattern.NM(2, 4))
	opSPTC, err := fSPTC.Make(w)
	if err != nil {
		t.Fatal(err)
	}
	a := opCSR.Mul(x)
	b := opSPTC.Mul(x)
	if d := dense.MaxAbsDiff(a, b); d > 1e-4 {
		t.Errorf("backends disagree by %v", d)
	}
	at := opCSR.MulT(x)
	bt := opSPTC.MulT(x)
	if d := dense.MaxAbsDiff(at, bt); d > 1e-4 {
		t.Errorf("transpose backends disagree by %v", d)
	}
}

func TestLedgerAccounting(t *testing.T) {
	g, x, _ := testSetup(t, 32)
	w := csr.SymNormalized(g)
	f := NewFactory(EngineCSR, pattern.NM(2, 4))
	op, err := f.Make(w)
	if err != nil {
		t.Fatal(err)
	}
	m := NewGCN(op, f.Ledger, Config{In: 6, Hidden: 4, Classes: 2, Seed: 1})
	f.Ledger.Reset()
	m.Forward(x)
	if f.Ledger.AggCalls != 2 {
		t.Errorf("GCN forward made %d agg calls, want 2", f.Ledger.AggCalls)
	}
	if f.Ledger.AggCycles <= 0 || f.Ledger.DenseCycles <= 0 {
		t.Errorf("ledger not charged: %+v", f.Ledger)
	}
	total := f.Ledger.Total()
	if total != f.Ledger.AggCycles+f.Ledger.DenseCycles {
		t.Error("Total() mismatch")
	}
	var l2 Ledger
	l2.Add(f.Ledger)
	if l2.AggCalls != 2 {
		t.Error("Add() mismatch")
	}
	f.Ledger.Reset()
	if f.Ledger.AggCalls != 0 {
		t.Error("Reset() failed")
	}
}

func TestSGCCacheBehaviour(t *testing.T) {
	g, x, _ := testSetup(t, 32)
	w := csr.SymNormalized(g)
	f := NewFactory(EngineCSR, pattern.NM(2, 4))
	op, _ := f.Make(w)
	m := NewSGC(op, f.Ledger, Config{In: 6, Classes: 2, Seed: 1})
	m.Forward(x)
	calls := f.Ledger.AggCalls
	if calls != m.Hops {
		t.Errorf("first forward made %d agg calls, want %d", calls, m.Hops)
	}
	m.Forward(x)
	if f.Ledger.AggCalls != calls {
		t.Error("cached forward re-ran aggregation")
	}
	m.InvalidateCache()
	m.Forward(x)
	if f.Ledger.AggCalls != 2*calls {
		t.Error("InvalidateCache did not re-run aggregation")
	}
}

func TestAggregationSpeedupIdenticalResults(t *testing.T) {
	// End-to-end GNN forward: revised (SPTC) and default (CSR) must
	// produce the same logits when built from the same seed — the
	// lossless claim at model level.
	g, x, _ := testSetup(t, 64)
	w := csr.SymNormalized(g)
	fa := NewFactory(EngineCSR, pattern.NM(2, 4))
	opA, _ := fa.Make(w)
	ma := NewGCN(opA, fa.Ledger, Config{In: 6, Hidden: 4, Classes: 2, Seed: 77})
	fb := NewFactory(EngineSPTC, pattern.NM(2, 4))
	opB, err := fb.Make(w)
	if err != nil {
		t.Fatal(err)
	}
	mb := NewGCN(opB, fb.Ledger, Config{In: 6, Hidden: 4, Classes: 2, Seed: 77})
	la := ma.Forward(x)
	lb := mb.Forward(x)
	if d := dense.MaxAbsDiff(la, lb); d > 1e-3 {
		t.Errorf("engines produce different logits: %v", d)
	}
}

func TestRandomSplitDisjointCover(t *testing.T) {
	s := RandomSplit(100, 0.6, 0.2, 1)
	seen := map[int]bool{}
	for _, set := range [][]int{s.Train, s.Val, s.Test} {
		for _, i := range set {
			if seen[i] {
				t.Fatalf("index %d in multiple sets", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 100 {
		t.Errorf("split covers %d of 100", len(seen))
	}
	if len(s.Train) != 60 || len(s.Val) != 20 {
		t.Errorf("split sizes: %d/%d/%d", len(s.Train), len(s.Val), len(s.Test))
	}
}

func TestBuildUnknownKind(t *testing.T) {
	g, _, _ := testSetup(t, 16)
	op, ledger := csrOp(t, csr.SymNormalized(g))
	if _, err := Build(ModelKind("bogus"), op, ledger, Config{In: 2, Hidden: 2, Classes: 2}); err == nil {
		t.Error("want error for unknown kind")
	}
}

func TestPlanetoidSplit(t *testing.T) {
	labels := make([]int, 300)
	for i := range labels {
		labels[i] = i % 3
	}
	s := PlanetoidSplit(labels, 3, 20, 50, 100, 1)
	if len(s.Train) != 60 {
		t.Errorf("train = %d, want 60", len(s.Train))
	}
	counts := map[int]int{}
	seen := map[int]bool{}
	for _, i := range s.Train {
		counts[labels[i]]++
		seen[i] = true
	}
	for c := 0; c < 3; c++ {
		if counts[c] != 20 {
			t.Errorf("class %d has %d train nodes", c, counts[c])
		}
	}
	if len(s.Val) != 50 || len(s.Test) != 100 {
		t.Errorf("val/test = %d/%d", len(s.Val), len(s.Test))
	}
	for _, set := range [][]int{s.Val, s.Test} {
		for _, i := range set {
			if seen[i] {
				t.Fatal("index reused across sets")
			}
			seen[i] = true
		}
	}
	// Scarce class: only what's available is taken.
	short := PlanetoidSplit([]int{0, 0, 1}, 2, 5, 0, 0, 1)
	if len(short.Train) != 3 {
		t.Errorf("scarce split took %d", len(short.Train))
	}
}
