package gnn

import (
	"math"

	"repro/internal/dense"
)

// linear is a dense layer Y = X W + b with cached input for backward.
type linear struct {
	W, B   *dense.Matrix // B is 1 x out
	dW, dB *dense.Matrix
	xCache *dense.Matrix
	ledger *Ledger
}

func newLinear(in, out int, seed int64, ledger *Ledger) *linear {
	l := &linear{
		W:      dense.NewMatrix(in, out),
		B:      dense.NewMatrix(1, out),
		dW:     dense.NewMatrix(in, out),
		dB:     dense.NewMatrix(1, out),
		ledger: ledger,
	}
	scale := float32(math.Sqrt(6.0 / float64(in+out))) // Glorot uniform
	l.W.Randomize(scale, seed)
	return l
}

func (l *linear) forward(x *dense.Matrix) *dense.Matrix {
	l.xCache = x
	y := timedMatMul(l.ledger, x, l.W)
	y.AddBias(l.B.Row(0))
	return y
}

// backward accumulates parameter gradients and returns the gradient
// with respect to the layer input.
func (l *linear) backward(g *dense.Matrix) *dense.Matrix {
	l.dW.Add(dense.MatMul(dense.Transpose(l.xCache), g))
	db := l.dB.Row(0)
	for i := 0; i < g.Rows; i++ {
		r := g.Row(i)
		for j, v := range r {
			db[j] += v
		}
	}
	return dense.MatMul(g, dense.Transpose(l.W))
}

func (l *linear) params() []*dense.Matrix { return []*dense.Matrix{l.W, l.B} }
func (l *linear) grads() []*dense.Matrix  { return []*dense.Matrix{l.dW, l.dB} }

func (l *linear) zeroGrads() {
	l.dW.Zero()
	l.dB.Zero()
}
