// Package gnn implements the four GNN models the paper evaluates —
// GCN, GraphSAGE, ChebNet and SGC — with full-batch forward, manual
// backward, and training, on top of a pluggable aggregation backend:
// CUDA-core CSR SpMM (the PyG/DGL default) or sparse-tensor-core V:N:M
// SpMM (the revised, Spatha-backed path the paper enables through
// reordering). Both backends produce bit-identical aggregation results;
// they differ only in execution cost, which each records in a Ledger.
package gnn

import (
	"time"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predictor/cycle"
	"repro/internal/sched"
	"repro/internal/spmm"
	"repro/internal/sptc"
	"repro/internal/venom"
)

// Ledger accumulates the execution accounting of one engine run:
// measured wall time and modeled GPU cycles, split between sparse
// aggregation and dense (linear-layer) work. "LYR" speedups in the
// paper compare AggCycles; "ALL" compares the totals.
//
// The flat fields remain the quick-access accounting every experiment
// reads; setting Obs additionally mirrors every charge into the
// hierarchical observability registry (gauges gnn/agg_cycles,
// gnn/dense_cycles, counters gnn/agg_calls, volatile wall-clock
// tallies), which subsumes the ledger in the internal/obs layer.
// Charges happen on the training goroutine, so the mirrored gauge
// accumulation order — and therefore the snapshot — is deterministic.
type Ledger struct {
	AggCycles   float64
	AggWall     time.Duration
	AggCalls    int
	DenseCycles float64
	DenseWall   time.Duration
	DenseCalls  int

	Obs *obs.Registry
}

// chargeAgg books one sparse-aggregation execution.
func (l *Ledger) chargeAgg(cycles float64, wall time.Duration) {
	l.AggCycles += cycles
	l.AggWall += wall
	l.AggCalls++
	if l.Obs != nil {
		l.Obs.Gauge("gnn/agg_cycles").Add(cycles)
		l.Obs.Counter("gnn/agg_calls").Inc()
		l.Obs.Volatile("gnn/agg_wall_ns").Add(wall.Nanoseconds())
	}
}

// chargeDense books one dense (linear-layer) execution.
func (l *Ledger) chargeDense(cycles float64, wall time.Duration) {
	l.DenseCycles += cycles
	l.DenseWall += wall
	l.DenseCalls++
	if l.Obs != nil {
		l.Obs.Gauge("gnn/dense_cycles").Add(cycles)
		l.Obs.Counter("gnn/dense_calls").Inc()
		l.Obs.Volatile("gnn/dense_wall_ns").Add(wall.Nanoseconds())
	}
}

// Total returns modeled end-to-end cycles.
func (l *Ledger) Total() float64 { return l.AggCycles + l.DenseCycles }

// Reset zeroes the ledger.
func (l *Ledger) Reset() { *l = Ledger{} }

// Add merges another ledger into this one.
func (l *Ledger) Add(o *Ledger) {
	l.AggCycles += o.AggCycles
	l.AggWall += o.AggWall
	l.AggCalls += o.AggCalls
	l.DenseCycles += o.DenseCycles
	l.DenseWall += o.DenseWall
	l.DenseCalls += o.DenseCalls
}

// Merge folds a per-attempt local ledger into l and mirrors the merged
// charges into l.Obs. The recovery layer runs every fault-protected
// attempt against a private ledger with no registry and merges only the
// winning attempt's, so retried or speculatively duplicated work never
// reaches the deterministic observability snapshot — the merged charges
// are those of exactly one successful execution.
func (l *Ledger) Merge(o *Ledger) {
	l.Add(o)
	if l.Obs == nil {
		return
	}
	l.Obs.Gauge("gnn/agg_cycles").Add(o.AggCycles)
	l.Obs.Counter("gnn/agg_calls").Add(int64(o.AggCalls))
	l.Obs.Volatile("gnn/agg_wall_ns").Add(o.AggWall.Nanoseconds())
	l.Obs.Gauge("gnn/dense_cycles").Add(o.DenseCycles)
	l.Obs.Counter("gnn/dense_calls").Add(int64(o.DenseCalls))
	l.Obs.Volatile("gnn/dense_wall_ns").Add(o.DenseWall.Nanoseconds())
}

// Operator is a sparse aggregation operator (a normalized adjacency
// matrix in some execution format): Mul computes Âx, MulT computes Âᵀx.
type Operator interface {
	Mul(x *dense.Matrix) *dense.Matrix
	MulT(x *dense.Matrix) *dense.Matrix
	N() int
}

// EngineKind selects the aggregation execution engine.
type EngineKind int

const (
	// EngineCSR is the CUDA-core CSR SpMM path (cuSPARSE / default
	// PyG and DGL).
	EngineCSR EngineKind = iota
	// EngineSPTC is the sparse-tensor-core V:N:M path (Spatha /
	// revised frameworks). Requires (or splits around) pattern
	// conformity.
	EngineSPTC
	// EngineAuto routes every aggregation through the execution
	// planner (internal/plan): each dispatch runs the kernel class the
	// calibrated cost model predicts fastest for that operand profile
	// and dense width. A planned dispatch is bit-identical to invoking
	// the chosen kernel class directly (check.PlannerEquivalence);
	// across classes results agree to the usual exact-arithmetic
	// tolerance, same as EngineCSR vs EngineSPTC.
	EngineAuto
)

func (k EngineKind) String() string {
	switch k {
	case EngineSPTC:
		return "sptc"
	case EngineAuto:
		return "auto"
	}
	return "csr"
}

// Factory builds Operators for a chosen engine, pattern and cost
// model, all charging the same Ledger.
type Factory struct {
	Kind    EngineKind
	Pattern pattern.VNM // used by EngineSPTC
	Cost    sptc.CostModel
	Ledger  *Ledger
	// Pool is the scheduler pool aggregation kernels execute on; nil
	// means the default GOMAXPROCS-sized pool. Because the tiled
	// kernels are bit-deterministic, the pool choice never changes
	// results — only wall time. sched.Serial() forces the serial twins
	// (the convergence regression tests rely on this).
	Pool *sched.Pool
	// Calib is the measured coefficient table EngineAuto plans with; a
	// nil table makes the planner fall back to the serial CSR
	// reference on every dispatch (planning disabled, results
	// unchanged).
	Calib *plan.Calibration
}

// NewFactory returns a Factory with the default cost model and a fresh
// ledger.
func NewFactory(kind EngineKind, p pattern.VNM) *Factory {
	return &Factory{Kind: kind, Pattern: p, Cost: sptc.DefaultCostModel(), Ledger: &Ledger{}}
}

// Make wraps the weighted operator matrix w for this factory's engine.
func (f *Factory) Make(w *csr.Matrix) (Operator, error) {
	pool := f.Pool
	if pool == nil {
		pool = sched.Default()
	}
	if f.Ledger != nil && f.Ledger.Obs != nil && pool.Obs() == nil {
		// One wiring point instruments the whole stack: the pool carries
		// the registry down into the sched/spmm layers.
		pool = pool.WithObs(f.Ledger.Obs)
	}
	switch f.Kind {
	case EngineSPTC:
		return newSPTCOperator(w, f.Pattern, f.Cost, f.Ledger, pool)
	case EngineAuto:
		return newPlannedOperator(w, f.Pattern, f.Cost, f.Ledger, pool, f.Calib), nil
	default:
		return &csrOperator{w: w, wt: w.Transpose(), cost: f.Cost, ledger: f.Ledger, pool: pool}, nil
	}
}

// ValidateOperator checks the structural invariants of an operator's
// compressed representation — the metadata checks the SPTC hardware
// performs when loading sparse fragments (venom.ValidateMeta over the
// forward and transposed operands). Operators without a compressed
// representation (the CSR engine) trivially validate. The distributed
// layer runs this before using a freshly built SPTC operator and
// degrades the sample to the CSR path on failure (DESIGN.md §10).
func ValidateOperator(op Operator) error {
	o, ok := op.(*sptcOperator)
	if !ok {
		return nil
	}
	if err := o.comp.ValidateMeta(); err != nil {
		return err
	}
	if err := o.compT.ValidateMeta(); err != nil {
		return err
	}
	return nil
}

// csrOperator runs aggregation through the CUDA-core CSR kernel.
type csrOperator struct {
	w, wt  *csr.Matrix
	cost   sptc.CostModel
	ledger *Ledger
	pool   *sched.Pool
}

func (o *csrOperator) N() int { return o.w.N }

func (o *csrOperator) Mul(x *dense.Matrix) *dense.Matrix  { return o.run(o.w, x) }
func (o *csrOperator) MulT(x *dense.Matrix) *dense.Matrix { return o.run(o.wt, x) }

func (o *csrOperator) run(w *csr.Matrix, x *dense.Matrix) *dense.Matrix {
	start := time.Now()
	out := spmm.CSRPool(o.pool, w, x)
	cycles := o.cost.CSRSpMMCycles(w.NNZ(), w.N, x.Cols)
	o.ledger.chargeAgg(cycles, time.Since(start))
	o.ledger.Obs.Gauge("sptc/cycles/csr").Add(cycles)
	return out
}

// sptcOperator runs aggregation through the V:N:M SPTC kernel, with a
// (normally empty) CSR residual for entries outside the pattern.
type sptcOperator struct {
	comp, compT *venom.Matrix
	res, resT   *csr.Matrix
	cost        sptc.CostModel
	ledger      *Ledger
	pool        *sched.Pool
	n           int
}

func newSPTCOperator(w *csr.Matrix, p pattern.VNM, cost sptc.CostModel, ledger *Ledger, pool *sched.Pool) (*sptcOperator, error) {
	comp, res, err := venom.SplitToConform(w, p)
	if err != nil {
		return nil, err
	}
	wt := w.Transpose()
	compT, resT, err := venom.SplitToConform(wt, p)
	if err != nil {
		return nil, err
	}
	return &sptcOperator{
		comp: comp, compT: compT,
		res: res, resT: resT,
		cost: cost, ledger: ledger, pool: pool, n: w.N,
	}, nil
}

// ResidualNNZ reports how many entries fell outside the pattern (zero
// after a successful SOGRE reorder).
func (o *sptcOperator) ResidualNNZ() int { return o.res.NNZ() }

func (o *sptcOperator) N() int { return o.n }

func (o *sptcOperator) Mul(x *dense.Matrix) *dense.Matrix {
	return o.run(o.comp, o.res, x)
}

func (o *sptcOperator) MulT(x *dense.Matrix) *dense.Matrix {
	return o.run(o.compT, o.resT, x)
}

func (o *sptcOperator) run(comp *venom.Matrix, res *csr.Matrix, x *dense.Matrix) *dense.Matrix {
	start := time.Now()
	out := spmm.HybridPool(o.pool, comp, res, x)
	detail := o.cost.VNMSpMMCyclesDetail(sptc.Stats(comp, o.cost), x.Cols)
	cycles := detail.Total()
	var residCycles float64
	if res.NNZ() > 0 {
		residCycles = o.cost.CSRSpMMCycles(res.NNZ(), res.N, x.Cols)
		cycles += residCycles
	}
	o.ledger.chargeAgg(cycles, time.Since(start))
	if r := o.ledger.Obs; r != nil {
		// Modeled cycles per instruction class — pure functions of the
		// operands, so deterministic snapshot fields.
		r.Gauge("sptc/cycles/mma_compute").Add(detail.MMACompute)
		r.Gauge("sptc/cycles/b_load").Add(detail.BLoad)
		r.Gauge("sptc/cycles/frag_overhead").Add(detail.FragOverhead)
		r.Gauge("sptc/cycles/csr_residual").Add(residCycles)
	}
	return out
}

// plannedOperator runs aggregation through the execution planner: at
// each Mul/MulT it asks the calibrated planner for the fastest kernel
// class at the current dense width and dispatches accordingly.
// Decisions are cached per width (profiles are width-dependent but
// operand-stable), so steady-state training plans each layer once.
type plannedOperator struct {
	fwd, bwd plan.Operands
	planner  *plan.Planner
	cost     sptc.CostModel
	ledger   *Ledger
	pool     *sched.Pool
	n        int
	// cached decisions and model cycles, keyed by dense width; two maps
	// per direction because the transposed operands profile differently.
	fwdPlans, bwdPlans map[int]plannedDispatch
}

type plannedDispatch struct {
	d      plan.Decision
	cycles float64
}

// newPlannedOperator prepares planner operands for the forward and
// transposed matrices. A split failure (malformed pattern) degrades
// that direction to CSR-only operands — the planner then simply never
// ranks the hybrid classes — instead of failing the factory.
func newPlannedOperator(w *csr.Matrix, p pattern.VNM, cost sptc.CostModel, ledger *Ledger, pool *sched.Pool, cal *plan.Calibration) *plannedOperator {
	wt := w.Transpose()
	fwd, err := plan.Prepare(w, p)
	if err != nil {
		fwd = plan.Operands{A: w.Compact()}
	}
	bwd, err := plan.Prepare(wt, p)
	if err != nil {
		bwd = plan.Operands{A: wt.Compact()}
	}
	return &plannedOperator{
		fwd: fwd, bwd: bwd,
		planner: &plan.Planner{Calib: cal, Cost: cost, Workers: pool.Workers()},
		cost:    cost, ledger: ledger, pool: pool, n: w.N,
		fwdPlans: map[int]plannedDispatch{}, bwdPlans: map[int]plannedDispatch{},
	}
}

func (o *plannedOperator) N() int { return o.n }

func (o *plannedOperator) Mul(x *dense.Matrix) *dense.Matrix {
	return o.run(o.fwd, o.fwdPlans, x)
}

func (o *plannedOperator) MulT(x *dense.Matrix) *dense.Matrix {
	return o.run(o.bwd, o.bwdPlans, x)
}

func (o *plannedOperator) run(op plan.Operands, cache map[int]plannedDispatch, x *dense.Matrix) *dense.Matrix {
	pd, ok := cache[x.Cols]
	if !ok {
		prof := op.Profile(x.Cols, o.cost)
		pd.d = o.planner.Choose(prof)
		pd.cycles = cycle.ModelCycles(o.cost, pd.d.Kernel, prof)
		cache[x.Cols] = pd
	}
	start := time.Now()
	out := plan.Execute(pd.d, o.pool, op, x, nil)
	o.ledger.chargeAgg(pd.cycles, time.Since(start))
	if r := o.ledger.Obs; r != nil {
		r.Counter("plan/choice/" + string(pd.d.Kernel)).Inc()
		r.Gauge("plan/cycles/" + string(pd.d.Kernel)).Add(pd.cycles)
	}
	return out
}

// timedMatMul performs a dense matmul while charging the ledger with
// the dense-engine cost (identical for both settings — linear layers
// run on the same dense units either way).
func timedMatMul(l *Ledger, a, b *dense.Matrix) *dense.Matrix {
	start := time.Now()
	out := dense.MatMul(a, b)
	// Dense cost: one FMA per (i, k, j) triple on tensor cores.
	cm := sptc.DefaultCostModel()
	l.chargeDense(float64(a.Rows)*float64(a.Cols)*float64(b.Cols)*cm.DenseTCElemCost, time.Since(start))
	return out
}
