package gnn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/resil"
)

// stepAdam runs n deterministic Adam steps against params using a
// fixed synthetic gradient schedule.
func stepAdam(opt *dense.Adam, params []*dense.Matrix, from, n int) {
	grads := make([]*dense.Matrix, len(params))
	for i, p := range params {
		grads[i] = dense.NewMatrix(p.Rows, p.Cols)
	}
	for s := from; s < from+n; s++ {
		for i, g := range grads {
			for k := range g.Data {
				g.Data[k] = float32(math.Sin(float64(s*31+i*7+k))) * 0.1
			}
		}
		opt.Step(params, grads)
	}
}

func TestAdamExportImportRoundTrip(t *testing.T) {
	mk := func() []*dense.Matrix {
		a := dense.NewMatrix(3, 4)
		b := dense.NewMatrix(1, 4)
		a.Randomize(0.5, 11)
		b.Randomize(0.5, 12)
		return []*dense.Matrix{a, b}
	}

	// Reference: 8 uninterrupted steps.
	ref := mk()
	refOpt := dense.NewAdam(0.05)
	refOpt.WD = 1e-3
	stepAdam(refOpt, ref, 0, 8)

	// Interrupted: 5 steps, export, import into a fresh optimizer over
	// fresh (restored) matrices, 3 more steps.
	half := mk()
	opt1 := dense.NewAdam(0.05)
	opt1.WD = 1e-3
	stepAdam(opt1, half, 0, 5)
	st := opt1.ExportState(half)

	resumed := mk()
	for i, p := range resumed {
		copy(p.Data, half[i].Data)
	}
	opt2 := dense.NewAdam(0.05)
	opt2.WD = 1e-3
	if err := opt2.ImportState(resumed, st); err != nil {
		t.Fatal(err)
	}
	stepAdam(opt2, resumed, 5, 3)

	for i := range ref {
		for k := range ref[i].Data {
			if ref[i].Data[k] != resumed[i].Data[k] {
				t.Fatalf("param %d entry %d diverged after resume: %v vs %v", i, k, ref[i].Data[k], resumed[i].Data[k])
			}
		}
	}
}

func TestAdamImportStateRejectsMismatch(t *testing.T) {
	p := []*dense.Matrix{dense.NewMatrix(2, 2)}
	opt := dense.NewAdam(0.01)
	st := opt.ExportState(p)

	if err := dense.NewAdam(0.01).ImportState([]*dense.Matrix{dense.NewMatrix(2, 2), dense.NewMatrix(1, 1)}, st); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := dense.NewAdam(0.01).ImportState([]*dense.Matrix{dense.NewMatrix(3, 2)}, st); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestAdamExportUnseenParamsZeroMoments(t *testing.T) {
	p := []*dense.Matrix{dense.NewMatrix(2, 3)}
	opt := dense.NewAdam(0.01)
	st := opt.ExportState(p)
	if st.Step != 0 {
		t.Fatalf("step = %d, want 0", st.Step)
	}
	for _, v := range append(st.M[0].Data, st.V[0].Data...) {
		if v != 0 {
			t.Fatal("unseen param exported nonzero moment")
		}
	}
}

// trainFixture builds a deterministic SGC classification problem with a
// validation split, so the checkpoint has to carry the early-stopping
// tracker too.
func trainFixture(t *testing.T) (Model, *dense.Matrix, []int, Split) {
	t.Helper()
	g, x, labels := testSetup(t, 40)
	op, led := csrOp(t, csr.SymNormalized(g))
	m := NewSGC(op, led, Config{In: 6, Classes: 2, SGCHops: 2, Seed: 9})
	split := RandomSplit(g.N(), 0.5, 0.25, 4)
	return m, x, labels, split
}

// sameResult asserts two TrainResults and model parameter sets are
// bit-identical.
func sameResult(t *testing.T, want, got TrainResult, wp, gp []*dense.Matrix) {
	t.Helper()
	if len(want.LossHistory) != len(got.LossHistory) {
		t.Fatalf("loss history length %d vs %d", len(got.LossHistory), len(want.LossHistory))
	}
	for i := range want.LossHistory {
		if want.LossHistory[i] != got.LossHistory[i] {
			t.Fatalf("loss[%d] diverged: %v vs %v", i, got.LossHistory[i], want.LossHistory[i])
		}
	}
	if got.FinalLoss != want.FinalLoss || got.BestValEpoch != want.BestValEpoch {
		t.Fatalf("final loss/best epoch diverged: (%v,%d) vs (%v,%d)", got.FinalLoss, got.BestValEpoch, want.FinalLoss, want.BestValEpoch)
	}
	if got.TrainAcc != want.TrainAcc || got.ValAcc != want.ValAcc || got.TestAcc != want.TestAcc {
		t.Fatalf("accuracies diverged: (%v,%v,%v) vs (%v,%v,%v)",
			got.TrainAcc, got.ValAcc, got.TestAcc, want.TrainAcc, want.ValAcc, want.TestAcc)
	}
	for i := range wp {
		for k := range wp[i].Data {
			if wp[i].Data[k] != gp[i].Data[k] {
				t.Fatalf("param %d entry %d diverged", i, k)
			}
		}
	}
}

// TestTrainKillAndResume is the tentpole recovery check for the
// training loop: a run killed mid-training by an injected crash,
// resumed from its last checkpoint on a freshly constructed model,
// must reproduce the uninterrupted run's loss curve, early-stopping
// choice and final parameters bit for bit.
func TestTrainKillAndResume(t *testing.T) {
	const epochs = 12

	ref, x, labels, split := trainFixture(t)
	refRes := Train(ref, x, labels, split, TrainConfig{Epochs: epochs, LR: 0.05, WD: 1e-3})

	// Killed run: checkpoints every 3 epochs, crash before epoch index
	// 7 runs (occurrence 8 of site "train/epoch").
	store := &MemStore{}
	killed, _, _, _ := trainFixture(t)
	plan, err := resil.ParsePlan("seed=1; crash@train/epoch:8")
	if err != nil {
		t.Fatal(err)
	}
	perr := resil.Protect(func() error {
		Train(killed, x, labels, split, TrainConfig{
			Epochs: epochs, LR: 0.05, WD: 1e-3,
			CheckpointEvery: 3, Checkpoint: store.Save,
			Inj: resil.NewInjector(plan, nil),
		})
		return nil
	})
	var pe *resil.PanicError
	if !errors.As(perr, &pe) {
		t.Fatalf("killed run returned %v, want a contained crash panic", perr)
	}
	var ce *resil.CrashError
	if !errors.As(perr, &ce) {
		t.Fatalf("contained panic %v is not a crash event", perr)
	}
	if store.Len() != 2 { // epochs 3 and 6 completed before the kill
		t.Fatalf("store holds %d checkpoints, want 2", store.Len())
	}
	cp := store.Latest()
	if cp.Epoch != 6 {
		t.Fatalf("latest checkpoint at epoch %d, want 6", cp.Epoch)
	}

	// Resume on a fresh model (same construction seed; all restored
	// state comes from the checkpoint).
	resumed, _, _, _ := trainFixture(t)
	resRes := Train(resumed, x, labels, split, TrainConfig{
		Epochs: epochs, LR: 0.05, WD: 1e-3, Resume: cp,
	})
	sameResult(t, refRes, resRes, ref.Params(), resumed.Params())
}

// TestTrainResumePastEnd resumes from a checkpoint at or past the
// epoch budget: no epochs run, and the evaluation happens on the
// restored (best-validation) parameters.
func TestTrainResumePastEnd(t *testing.T) {
	const epochs = 6
	ref, x, labels, split := trainFixture(t)
	refRes := Train(ref, x, labels, split, TrainConfig{Epochs: epochs, LR: 0.05})

	store := &MemStore{}
	full, _, _, _ := trainFixture(t)
	Train(full, x, labels, split, TrainConfig{
		Epochs: epochs, LR: 0.05, CheckpointEvery: epochs, Checkpoint: store.Save,
	})
	cp := store.Latest()
	if cp == nil || cp.Epoch != epochs {
		t.Fatalf("expected final-epoch checkpoint, got %+v", cp)
	}

	resumed, _, _, _ := trainFixture(t)
	resRes := Train(resumed, x, labels, split, TrainConfig{Epochs: epochs, LR: 0.05, Resume: cp})
	sameResult(t, refRes, resRes, ref.Params(), resumed.Params())
}

func TestMemStoreEmptyLatest(t *testing.T) {
	var s MemStore
	if s.Latest() != nil || s.Len() != 0 {
		t.Fatal("empty store not empty")
	}
}

// TestCheckpointIsDeepCopy mutates live training state after a
// checkpoint and asserts the snapshot is unaffected.
func TestCheckpointIsDeepCopy(t *testing.T) {
	store := &MemStore{}
	m, x, labels, split := trainFixture(t)
	Train(m, x, labels, split, TrainConfig{
		Epochs: 4, LR: 0.05, CheckpointEvery: 2, Checkpoint: store.Save,
	})
	if store.Len() != 2 {
		t.Fatalf("store holds %d checkpoints, want 2", store.Len())
	}
	cp := store.Latest()
	before := cp.Params[0].Data[0]
	m.Params()[0].Data[0] = before + 42
	if cp.Params[0].Data[0] != before {
		t.Fatal("checkpoint aliases live parameters")
	}
}
