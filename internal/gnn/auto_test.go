package gnn

import (
	"math"
	"testing"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predictor/cycle"
	"repro/internal/sched"
)

// autoTable is a fixed calibration table so these tests never depend
// on machine timing: CSR cheap, hybrid expensive — the shape a CPU
// calibration produces.
func autoTable() *plan.Calibration {
	return &plan.Calibration{
		Seed: 3, Workers: 2,
		Coeffs: []plan.Coefficient{
			{Kernel: cycle.KernelCSRSerial, NsPerCycle: 0.5},
			{Kernel: cycle.KernelCSRParallel, NsPerCycle: 0.3},
			{Kernel: cycle.KernelHybridSerial, NsPerCycle: 2.0},
			{Kernel: cycle.KernelHybridParallel, NsPerCycle: 1.2},
		},
	}
}

// TestEngineAutoAgreesWithStaticEngines: the planned backend is a
// drop-in for the static ones — same aggregation results within the
// cross-engine tolerance, and ledger charges accrue per dispatch.
func TestEngineAutoAgreesWithStaticEngines(t *testing.T) {
	g, x, _ := testSetup(t, 64)
	w := csr.SymNormalized(g)
	opCSR, _ := csrOp(t, w)

	f := NewFactory(EngineAuto, pattern.NM(2, 4))
	f.Calib = autoTable()
	if got := f.Kind.String(); got != "auto" {
		t.Fatalf("EngineAuto.String() = %q", got)
	}
	opAuto, err := f.Make(w)
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.MaxAbsDiff(opCSR.Mul(x), opAuto.Mul(x)); d > 1e-4 {
		t.Errorf("auto Mul disagrees with csr by %v", d)
	}
	if d := dense.MaxAbsDiff(opCSR.MulT(x), opAuto.MulT(x)); d > 1e-4 {
		t.Errorf("auto MulT disagrees with csr by %v", d)
	}
	if f.Ledger.AggCalls != 2 {
		t.Errorf("planned backend charged %d agg calls, want 2", f.Ledger.AggCalls)
	}
	if f.Ledger.AggCycles <= 0 {
		t.Errorf("planned backend charged no model cycles")
	}
}

// TestEngineAutoNilTableFallsBackToCSR: with no calibration the
// planner degrades to the serial CSR reference, whose bits equal the
// CSR engine's (the pool kernels are bit-deterministic).
func TestEngineAutoNilTableFallsBackToCSR(t *testing.T) {
	g, x, _ := testSetup(t, 48)
	w := csr.SymNormalized(g)
	opCSR, _ := csrOp(t, w)
	f := NewFactory(EngineAuto, pattern.NM(2, 4))
	opAuto, err := f.Make(w)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqualDense(opCSR.Mul(x), opAuto.Mul(x)) {
		t.Error("uncalibrated auto Mul not bit-identical to csr engine")
	}
	if !bitEqualDense(opCSR.MulT(x), opAuto.MulT(x)) {
		t.Error("uncalibrated auto MulT not bit-identical to csr engine")
	}
}

// TestEngineAutoSplitFailureDegradesToCSR: a malformed pattern cannot
// split, so the planned operator silently drops the hybrid classes
// instead of failing the factory.
func TestEngineAutoSplitFailureDegradesToCSR(t *testing.T) {
	g, x, _ := testSetup(t, 48)
	w := csr.SymNormalized(g)
	f := NewFactory(EngineAuto, pattern.VNM{}) // V=0: SplitToConform rejects
	f.Calib = autoTable()
	f.Pool = sched.New(2)
	opAuto, err := f.Make(w)
	if err != nil {
		t.Fatalf("split failure must degrade, not fail: %v", err)
	}
	opCSR, _ := csrOp(t, w)
	if !bitEqualDense(opCSR.Mul(x), opAuto.Mul(x)) {
		t.Error("degraded auto Mul not bit-identical to csr engine")
	}
}

// bitEqualDense compares two dense matrices for exact bit equality.
func bitEqualDense(a, b *dense.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}
