package gnn

import (
	"math/rand"

	"repro/internal/dense"
)

// Split holds node-classification index sets.
type Split struct {
	Train, Val, Test []int
}

// RandomSplit partitions [0, n) into train/val/test by the given
// fractions, deterministically per seed.
func RandomSplit(n int, trainFrac, valFrac float64, seed int64) Split {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	nVal := int(float64(n) * valFrac)
	return Split{
		Train: perm[:nTrain],
		Val:   perm[nTrain : nTrain+nVal],
		Test:  perm[nTrain+nVal:],
	}
}

// PlanetoidSplit builds the standard transductive split of the
// Planetoid benchmarks (used by Cora/Citeseer evaluations): perClass
// training nodes from each class, then numVal validation and numTest
// test nodes from the remainder.
func PlanetoidSplit(labels []int, classes, perClass, numVal, numTest int, seed int64) Split {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(labels))
	var s Split
	taken := make([]bool, len(labels))
	count := make([]int, classes)
	for _, i := range perm {
		c := labels[i]
		if c >= 0 && c < classes && count[c] < perClass {
			s.Train = append(s.Train, i)
			count[c]++
			taken[i] = true
		}
	}
	for _, i := range perm {
		if taken[i] {
			continue
		}
		switch {
		case len(s.Val) < numVal:
			s.Val = append(s.Val, i)
		case len(s.Test) < numTest:
			s.Test = append(s.Test, i)
		default:
			return s
		}
	}
	return s
}

// TrainConfig controls the training loop.
type TrainConfig struct {
	Epochs int
	LR     float32
	WD     float32
}

// DefaultTrainConfig returns the settings the Table-5 runs use.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 120, LR: 0.02, WD: 5e-4}
}

// TrainResult reports a training run.
type TrainResult struct {
	FinalLoss    float64
	TrainAcc     float64
	ValAcc       float64
	TestAcc      float64
	LossHistory  []float64
	BestValEpoch int
}

// Train fits the model full-batch with Adam and masked cross-entropy —
// the forward pass of node classification the paper's accuracy
// evaluation (Table 5) runs. Returns final accuracies over the split.
func Train(m Model, x *dense.Matrix, labels []int, split Split, cfg TrainConfig) TrainResult {
	if cfg.Epochs == 0 {
		cfg = DefaultTrainConfig()
	}
	opt := dense.NewAdam(cfg.LR)
	opt.WD = cfg.WD
	var res TrainResult
	bestVal := -1.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		m.ZeroGrads()
		logits := m.Forward(x)
		probs := logits.Clone()
		dense.SoftmaxRows(probs)
		loss, grad := dense.CrossEntropy(probs, labels, split.Train)
		m.Backward(grad)
		opt.Step(m.Params(), m.Grads())
		res.LossHistory = append(res.LossHistory, loss)
		res.FinalLoss = loss
		if len(split.Val) > 0 {
			if va := dense.Accuracy(logits, labels, split.Val); va > bestVal {
				bestVal = va
				res.BestValEpoch = epoch
			}
		}
	}
	logits := m.Forward(x)
	res.TrainAcc = dense.Accuracy(logits, labels, split.Train)
	res.ValAcc = dense.Accuracy(logits, labels, split.Val)
	res.TestAcc = dense.Accuracy(logits, labels, split.Test)
	return res
}
