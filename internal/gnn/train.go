package gnn

import (
	"math/rand"

	"repro/internal/dense"
	"repro/internal/obs"
	"repro/internal/resil"
)

// Split holds node-classification index sets.
type Split struct {
	Train, Val, Test []int
}

// RandomSplit partitions [0, n) into train/val/test by the given
// fractions, deterministically per seed. Fractions are clamped so the
// three sets always partition [0, n): degenerate inputs (negative
// fractions, trainFrac+valFrac > 1, rounding pushing the train+val
// count past n) shrink the later sets instead of panicking.
func RandomSplit(n int, trainFrac, valFrac float64, seed int64) Split {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	nTrain := clampCount(float64(n)*trainFrac, n)
	nVal := clampCount(float64(n)*valFrac, n-nTrain)
	return Split{
		Train: perm[:nTrain],
		Val:   perm[nTrain : nTrain+nVal],
		Test:  perm[nTrain+nVal:],
	}
}

// clampCount truncates v to an int in [0, max].
func clampCount(v float64, max int) int {
	k := int(v)
	if k < 0 {
		return 0
	}
	if k > max {
		return max
	}
	return k
}

// PlanetoidSplit builds the standard transductive split of the
// Planetoid benchmarks (used by Cora/Citeseer evaluations): perClass
// training nodes from each class, then numVal validation and numTest
// test nodes from the remainder.
func PlanetoidSplit(labels []int, classes, perClass, numVal, numTest int, seed int64) Split {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(labels))
	var s Split
	taken := make([]bool, len(labels))
	count := make([]int, classes)
	for _, i := range perm {
		c := labels[i]
		if c >= 0 && c < classes && count[c] < perClass {
			s.Train = append(s.Train, i)
			count[c]++
			taken[i] = true
		}
	}
	for _, i := range perm {
		if taken[i] {
			continue
		}
		switch {
		case len(s.Val) < numVal:
			s.Val = append(s.Val, i)
		case len(s.Test) < numTest:
			s.Test = append(s.Test, i)
		default:
			return s
		}
	}
	return s
}

// TrainConfig controls the training loop.
type TrainConfig struct {
	Epochs int
	LR     float32
	WD     float32
	// Obs, when set, records the run in the observability registry:
	// per-epoch series (train/loss, train/val_acc), epoch counters and
	// final accuracy gauges. The loop runs on one goroutine, so every
	// recorded value is deterministic for a fixed seed.
	Obs *obs.Registry
	// CheckpointEvery, when positive together with Checkpoint, hands a
	// deep-copied training snapshot to the Checkpoint sink after every
	// CheckpointEvery-th completed epoch.
	CheckpointEvery int
	// Checkpoint receives the snapshots (MemStore.Save slots in
	// directly). The callback owns the checkpoint; Train never touches
	// it again.
	Checkpoint func(*Checkpoint)
	// Resume, when non-nil, restores the checkpoint before the first
	// epoch — parameters, optimizer moments, loss history and the
	// early-stopping tracker — and continues at epoch Resume.Epoch. A
	// resumed run is bit-identical to the uninterrupted one from that
	// point on. The checkpoint must match the model's parameter shapes
	// (it panics otherwise: resuming the wrong model is a programming
	// error, not a runtime fault).
	Resume *Checkpoint
	// Inj, when armed, fires injection site "train/epoch" once per
	// epoch before the epoch runs; a scheduled crash event there panics
	// out of Train, modeling a mid-training process kill that a
	// checkpointed caller recovers from (contain it with resil.Protect,
	// then rerun with Resume).
	Inj *resil.Injector
}

// DefaultTrainConfig returns the settings the Table-5 runs use.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 120, LR: 0.02, WD: 5e-4}
}

// TrainResult reports a training run.
type TrainResult struct {
	FinalLoss    float64
	TrainAcc     float64
	ValAcc       float64
	TestAcc      float64
	LossHistory  []float64
	BestValEpoch int
}

// Train fits the model full-batch with Adam and masked cross-entropy —
// the forward pass of node classification the paper's accuracy
// evaluation (Table 5) runs.
//
// Early-stopping protocol (the one the Planetoid evaluations assume):
// when a validation set is present, the parameters achieving the best
// validation accuracy are snapshotted, restored after the last epoch,
// and the reported TrainAcc/ValAcc/TestAcc are evaluated there — not at
// the final epoch, whose model may have overfit past the
// validation-selected one. The model is left holding the best-val
// parameters. Without a validation set, the final-epoch parameters are
// evaluated and kept.
func Train(m Model, x *dense.Matrix, labels []int, split Split, cfg TrainConfig) TrainResult {
	if cfg.Epochs == 0 {
		cfg = DefaultTrainConfig()
	}
	ob := cfg.Obs // nil-safe
	opt := dense.NewAdam(cfg.LR)
	opt.WD = cfg.WD
	var res TrainResult
	bestVal := -1.0
	var bestParams []*dense.Matrix
	start := 0
	if cp := cfg.Resume; cp != nil {
		restoreParams(m.Params(), cp.Params)
		if err := opt.ImportState(m.Params(), cp.Opt); err != nil {
			panic("gnn: Train resume: " + err.Error())
		}
		res.LossHistory = append(res.LossHistory, cp.LossHistory...)
		if n := len(res.LossHistory); n > 0 {
			res.FinalLoss = res.LossHistory[n-1]
		}
		bestVal = cp.BestVal
		res.BestValEpoch = cp.BestValEpoch
		if cp.BestParams != nil {
			bestParams = cloneParams(cp.BestParams)
		}
		start = cp.Epoch
	}
	for epoch := start; epoch < cfg.Epochs; epoch++ {
		cfg.Inj.Exec("train/epoch")
		// Snapshot before this epoch's update: the validation accuracy
		// below is computed from the pre-step logits, so the matching
		// parameters are the pre-step ones.
		var preStep []*dense.Matrix
		if len(split.Val) > 0 {
			preStep = cloneParams(m.Params())
		}
		m.ZeroGrads()
		logits := m.Forward(x)
		probs := logits.Clone()
		dense.SoftmaxRows(probs)
		loss, grad := dense.CrossEntropy(probs, labels, split.Train)
		m.Backward(grad)
		opt.Step(m.Params(), m.Grads())
		res.LossHistory = append(res.LossHistory, loss)
		res.FinalLoss = loss
		ob.Series("train/loss").Append(loss)
		if len(split.Val) > 0 {
			va := dense.Accuracy(logits, labels, split.Val)
			ob.Series("train/val_acc").Append(va)
			if va > bestVal {
				bestVal = va
				res.BestValEpoch = epoch
				bestParams = preStep
			}
		}
		if cfg.CheckpointEvery > 0 && cfg.Checkpoint != nil && (epoch+1)%cfg.CheckpointEvery == 0 {
			cfg.Checkpoint(snapshotCheckpoint(m, opt, epoch+1, &res, bestVal, bestParams))
		}
	}
	if bestParams != nil {
		restoreParams(m.Params(), bestParams)
	}
	logits := m.Forward(x)
	res.TrainAcc = dense.Accuracy(logits, labels, split.Train)
	res.ValAcc = dense.Accuracy(logits, labels, split.Val)
	res.TestAcc = dense.Accuracy(logits, labels, split.Test)
	ob.Counter("train/runs").Inc()
	ob.Counter("train/epochs").Add(int64(cfg.Epochs - start))
	ob.Gauge("train/best_val_epoch").Set(float64(res.BestValEpoch))
	ob.Gauge("train/train_acc").Set(res.TrainAcc)
	ob.Gauge("train/val_acc").Set(res.ValAcc)
	ob.Gauge("train/test_acc").Set(res.TestAcc)
	return res
}

// cloneParams deep-copies a parameter set.
func cloneParams(ps []*dense.Matrix) []*dense.Matrix {
	out := make([]*dense.Matrix, len(ps))
	for i, p := range ps {
		out[i] = p.Clone()
	}
	return out
}

// restoreParams copies src values into the live parameter matrices.
func restoreParams(dst, src []*dense.Matrix) {
	for i, p := range dst {
		copy(p.Data, src[i].Data)
	}
}
