package gnn

import (
	"fmt"

	"repro/internal/dense"
)

// Model is a trainable GNN producing per-node class logits. Forward
// runs the full-batch forward pass; Backward consumes the logits
// gradient and accumulates parameter gradients.
type Model interface {
	Name() string
	Forward(x *dense.Matrix) *dense.Matrix
	Backward(gradLogits *dense.Matrix)
	Params() []*dense.Matrix
	Grads() []*dense.Matrix
	ZeroGrads()
}

// ModelKind names the four paper models.
type ModelKind string

// The paper's four models (Section 5, "GNN Models").
const (
	KindGCN  ModelKind = "GCN"
	KindSAGE ModelKind = "SAGE"
	KindCheb ModelKind = "Cheb"
	KindSGC  ModelKind = "SGC"
)

// AllModelKinds lists the models in the paper's table order.
var AllModelKinds = []ModelKind{KindGCN, KindSAGE, KindCheb, KindSGC}

// Config sizes a model.
type Config struct {
	In, Hidden, Classes int
	ChebK               int // Chebyshev order (default 3)
	SGCHops             int // SGC propagation steps (default 2)
	Seed                int64
}

// Build constructs a model of the given kind. For Cheb, op must be the
// scaled Laplacian; for the others, the (sym/row) normalized adjacency.
func Build(kind ModelKind, op Operator, ledger *Ledger, cfg Config) (Model, error) {
	switch kind {
	case KindGCN:
		return NewGCN(op, ledger, cfg), nil
	case KindSAGE:
		return NewSAGE(op, ledger, cfg), nil
	case KindCheb:
		return NewCheb(op, ledger, cfg), nil
	case KindSGC:
		return NewSGC(op, ledger, cfg), nil
	}
	return nil, fmt.Errorf("gnn: unknown model kind %q", kind)
}

// ---------------------------------------------------------------- GCN

// GCN is the two-layer graph convolutional network of Kipf & Welling:
// logits = Â ReLU(Â X W1) W2, with the linear transform applied before
// aggregation ("GCN aggregates after its linear layer", Section 5.1).
type GCN struct {
	op         Operator
	lin1, lin2 *linear
	mask       *dense.Matrix
}

// NewGCN builds a two-layer GCN.
func NewGCN(op Operator, ledger *Ledger, cfg Config) *GCN {
	return &GCN{
		op:   op,
		lin1: newLinear(cfg.In, cfg.Hidden, cfg.Seed+1, ledger),
		lin2: newLinear(cfg.Hidden, cfg.Classes, cfg.Seed+2, ledger),
	}
}

// Name implements Model.
func (m *GCN) Name() string { return string(KindGCN) }

// Forward implements Model.
func (m *GCN) Forward(x *dense.Matrix) *dense.Matrix {
	h := m.op.Mul(m.lin1.forward(x))
	m.mask = dense.ReLU(h)
	return m.op.Mul(m.lin2.forward(h))
}

// Backward implements Model.
func (m *GCN) Backward(g *dense.Matrix) {
	g = m.op.MulT(g)
	g = m.lin2.backward(g)
	g.MulMask(m.mask)
	g = m.op.MulT(g)
	m.lin1.backward(g)
}

// Params implements Model.
func (m *GCN) Params() []*dense.Matrix {
	return append(m.lin1.params(), m.lin2.params()...)
}

// Grads implements Model.
func (m *GCN) Grads() []*dense.Matrix {
	return append(m.lin1.grads(), m.lin2.grads()...)
}

// ZeroGrads implements Model.
func (m *GCN) ZeroGrads() { m.lin1.zeroGrads(); m.lin2.zeroGrads() }

// --------------------------------------------------------------- SAGE

// SAGE is a two-layer GraphSAGE with mean aggregation: each layer
// computes ReLU(X Wself + (ÂX) Wnbr) — aggregation happens before the
// two linear transforms, which is why the paper observes larger
// aggregation speedups for SAGE than GCN.
type SAGE struct {
	op                     Operator
	self1, nbr1            *linear
	self2, nbr2            *linear
	mask                   *dense.Matrix
	xCache, h1Cache, aggH1 *dense.Matrix
}

// NewSAGE builds a two-layer GraphSAGE (op should be the row-normalized
// adjacency for mean aggregation).
func NewSAGE(op Operator, ledger *Ledger, cfg Config) *SAGE {
	return &SAGE{
		op:    op,
		self1: newLinear(cfg.In, cfg.Hidden, cfg.Seed+1, ledger),
		nbr1:  newLinear(cfg.In, cfg.Hidden, cfg.Seed+2, ledger),
		self2: newLinear(cfg.Hidden, cfg.Classes, cfg.Seed+3, ledger),
		nbr2:  newLinear(cfg.Hidden, cfg.Classes, cfg.Seed+4, ledger),
	}
}

// Name implements Model.
func (m *SAGE) Name() string { return string(KindSAGE) }

// Forward implements Model.
func (m *SAGE) Forward(x *dense.Matrix) *dense.Matrix {
	m.xCache = x
	aggX := m.op.Mul(x)
	h1 := m.self1.forward(x)
	h1.Add(m.nbr1.forward(aggX))
	m.mask = dense.ReLU(h1)
	m.h1Cache = h1
	m.aggH1 = m.op.Mul(h1)
	out := m.self2.forward(h1)
	out.Add(m.nbr2.forward(m.aggH1))
	return out
}

// Backward implements Model.
func (m *SAGE) Backward(g *dense.Matrix) {
	gSelf := m.self2.backward(g)
	gNbr := m.nbr2.backward(g)
	gH1 := gSelf
	gH1.Add(m.op.MulT(gNbr))
	gH1.MulMask(m.mask)
	gx := m.self1.backward(gH1)
	gAgg := m.nbr1.backward(gH1)
	gx.Add(m.op.MulT(gAgg))
	_ = gx // input gradient unused (features are constants)
}

// Params implements Model.
func (m *SAGE) Params() []*dense.Matrix {
	out := append(m.self1.params(), m.nbr1.params()...)
	out = append(out, m.self2.params()...)
	return append(out, m.nbr2.params()...)
}

// Grads implements Model.
func (m *SAGE) Grads() []*dense.Matrix {
	out := append(m.self1.grads(), m.nbr1.grads()...)
	out = append(out, m.self2.grads()...)
	return append(out, m.nbr2.grads()...)
}

// ZeroGrads implements Model.
func (m *SAGE) ZeroGrads() {
	m.self1.zeroGrads()
	m.nbr1.zeroGrads()
	m.self2.zeroGrads()
	m.nbr2.zeroGrads()
}

// --------------------------------------------------------------- Cheb

// Cheb is a two-layer Chebyshev spectral GNN (Defferrard et al.): each
// layer computes sum_k T_k(L̂) X W_k with the Chebyshev recurrence
// T_0 = X, T_1 = L̂X, T_k = 2 L̂ T_{k-1} - T_{k-2}. op must be the
// scaled Laplacian L̂.
type Cheb struct {
	op         Operator
	K          int
	lin1, lin2 []*linear
	mask       *dense.Matrix
	t1Cache    []*dense.Matrix // T_k of layer 1 inputs
	t2Cache    []*dense.Matrix
}

// NewCheb builds a two-layer ChebNet of order cfg.ChebK (default 3).
func NewCheb(op Operator, ledger *Ledger, cfg Config) *Cheb {
	k := cfg.ChebK
	if k <= 0 {
		k = 3
	}
	m := &Cheb{op: op, K: k}
	for i := 0; i < k; i++ {
		m.lin1 = append(m.lin1, newLinear(cfg.In, cfg.Hidden, cfg.Seed+int64(i)+1, ledger))
		m.lin2 = append(m.lin2, newLinear(cfg.Hidden, cfg.Classes, cfg.Seed+int64(i)+100, ledger))
	}
	return m
}

// Name implements Model.
func (m *Cheb) Name() string { return string(KindCheb) }

// chebTerms computes the K Chebyshev basis matrices of x.
func (m *Cheb) chebTerms(x *dense.Matrix) []*dense.Matrix {
	terms := make([]*dense.Matrix, m.K)
	terms[0] = x
	if m.K > 1 {
		terms[1] = m.op.Mul(x)
	}
	for k := 2; k < m.K; k++ {
		t := m.op.Mul(terms[k-1])
		t.Scale(2)
		t.AddScaled(terms[k-2], -1)
		terms[k] = t
	}
	return terms
}

// chebBackward propagates gradients gk (with respect to each T_k) back
// to the layer input.
func (m *Cheb) chebBackward(gk []*dense.Matrix) *dense.Matrix {
	// Adjoint of the recurrence, processed from high k down.
	for k := m.K - 1; k >= 2; k-- {
		up := gk[k].Clone()
		up.Scale(2)
		gk[k-1].Add(m.op.MulT(up))
		gk[k-2].AddScaled(gk[k], -1)
	}
	gx := gk[0]
	if m.K > 1 {
		gx.Add(m.op.MulT(gk[1]))
	}
	return gx
}

// Forward implements Model.
func (m *Cheb) Forward(x *dense.Matrix) *dense.Matrix {
	m.t1Cache = m.chebTerms(x)
	var h *dense.Matrix
	for k, t := range m.t1Cache {
		y := m.lin1[k].forward(t)
		if h == nil {
			h = y
		} else {
			h.Add(y)
		}
	}
	m.mask = dense.ReLU(h)
	m.t2Cache = m.chebTerms(h)
	var out *dense.Matrix
	for k, t := range m.t2Cache {
		y := m.lin2[k].forward(t)
		if out == nil {
			out = y
		} else {
			out.Add(y)
		}
	}
	return out
}

// Backward implements Model.
func (m *Cheb) Backward(g *dense.Matrix) {
	gk2 := make([]*dense.Matrix, m.K)
	for k := range m.lin2 {
		gk2[k] = m.lin2[k].backward(g)
	}
	gH := m.chebBackward(gk2)
	gH.MulMask(m.mask)
	gk1 := make([]*dense.Matrix, m.K)
	for k := range m.lin1 {
		gk1[k] = m.lin1[k].backward(gH)
	}
	_ = m.chebBackward(gk1) // input gradient unused
}

// Params implements Model.
func (m *Cheb) Params() []*dense.Matrix {
	var out []*dense.Matrix
	for _, l := range m.lin1 {
		out = append(out, l.params()...)
	}
	for _, l := range m.lin2 {
		out = append(out, l.params()...)
	}
	return out
}

// Grads implements Model.
func (m *Cheb) Grads() []*dense.Matrix {
	var out []*dense.Matrix
	for _, l := range m.lin1 {
		out = append(out, l.grads()...)
	}
	for _, l := range m.lin2 {
		out = append(out, l.grads()...)
	}
	return out
}

// ZeroGrads implements Model.
func (m *Cheb) ZeroGrads() {
	for _, l := range m.lin1 {
		l.zeroGrads()
	}
	for _, l := range m.lin2 {
		l.zeroGrads()
	}
}

// ---------------------------------------------------------------- SGC

// SGC is the simplified graph convolution of Wu et al.: logits =
// Â^K X W. Aggregation runs over the raw feature width, which is why
// the paper measures the largest aggregation speedups on SGC.
type SGC struct {
	op      Operator
	Hops    int
	lin     *linear
	propped *dense.Matrix // cached Â^K X (SGC's precomputation)
	Cache   bool          // reuse propped across Forward calls
}

// NewSGC builds an SGC with cfg.SGCHops propagation steps (default 2).
func NewSGC(op Operator, ledger *Ledger, cfg Config) *SGC {
	hops := cfg.SGCHops
	if hops <= 0 {
		hops = 2
	}
	return &SGC{op: op, Hops: hops, lin: newLinear(cfg.In, cfg.Classes, cfg.Seed+1, ledger), Cache: true}
}

// Name implements Model.
func (m *SGC) Name() string { return string(KindSGC) }

// InvalidateCache drops the propagated-feature cache so the next
// Forward re-runs aggregation (used by timing harnesses).
func (m *SGC) InvalidateCache() { m.propped = nil }

// Forward implements Model.
func (m *SGC) Forward(x *dense.Matrix) *dense.Matrix {
	if m.propped == nil || !m.Cache {
		h := x
		for i := 0; i < m.Hops; i++ {
			h = m.op.Mul(h)
		}
		m.propped = h
	}
	return m.lin.forward(m.propped)
}

// Backward implements Model.
func (m *SGC) Backward(g *dense.Matrix) { m.lin.backward(g) }

// Params implements Model.
func (m *SGC) Params() []*dense.Matrix { return m.lin.params() }

// Grads implements Model.
func (m *SGC) Grads() []*dense.Matrix { return m.lin.grads() }

// ZeroGrads implements Model.
func (m *SGC) ZeroGrads() { m.lin.zeroGrads() }
