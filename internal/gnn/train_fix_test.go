package gnn

import (
	"testing"

	"repro/internal/dense"
)

// Regression: RandomSplit used to slice past n when trainFrac+valFrac
// exceeded 1 (perm[nTrain : nTrain+nVal] with nTrain+nVal > n panics).
// Degenerate fractions must clamp, not panic.
func TestRandomSplitClampsOversizedFractions(t *testing.T) {
	s := RandomSplit(10, 0.7, 0.5, 1)
	if len(s.Train) != 7 || len(s.Val) != 3 || len(s.Test) != 0 {
		t.Errorf("split sizes = %d/%d/%d, want 7/3/0", len(s.Train), len(s.Val), len(s.Test))
	}
	assertPartition(t, 10, s)

	s = RandomSplit(5, 2.0, 1.0, 2)
	if len(s.Train) != 5 || len(s.Val) != 0 || len(s.Test) != 0 {
		t.Errorf("split sizes = %d/%d/%d, want 5/0/0", len(s.Train), len(s.Val), len(s.Test))
	}
	assertPartition(t, 5, s)

	s = RandomSplit(8, -0.5, 0.25, 3)
	if len(s.Train) != 0 || len(s.Val) != 2 || len(s.Test) != 6 {
		t.Errorf("split sizes = %d/%d/%d, want 0/2/6", len(s.Train), len(s.Val), len(s.Test))
	}
	assertPartition(t, 8, s)
}

func assertPartition(t *testing.T, n int, s Split) {
	t.Helper()
	seen := make([]bool, n)
	for _, set := range [][]int{s.Train, s.Val, s.Test} {
		for _, i := range set {
			if i < 0 || i >= n {
				t.Fatalf("index %d outside [0,%d)", i, n)
			}
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d missing from partition", i)
		}
	}
}

// thresholdModel is a one-parameter mock built to overfit on schedule:
// it predicts class 0 exactly while p <= 0 and class 1 once p goes
// positive, and its Backward always reports gradient -1, so Adam pushes
// p up by ~LR every epoch regardless of the loss. Validation accuracy
// is therefore 1.0 only at epoch 0 (pre-step p = 0) and 0 afterwards —
// the sharpest possible best-val-epoch vs final-epoch divergence.
type thresholdModel struct {
	p, g *dense.Matrix
}

func newThresholdModel() *thresholdModel {
	return &thresholdModel{p: dense.NewMatrix(1, 1), g: dense.NewMatrix(1, 1)}
}

func (m *thresholdModel) Name() string { return "threshold" }

func (m *thresholdModel) Forward(x *dense.Matrix) *dense.Matrix {
	out := dense.NewMatrix(x.Rows, 2)
	p := m.p.At(0, 0)
	for i := 0; i < x.Rows; i++ {
		out.Set(i, 0, -p)
		out.Set(i, 1, p)
	}
	return out
}

func (m *thresholdModel) Backward(grad *dense.Matrix) { m.g.Set(0, 0, -1) }
func (m *thresholdModel) Params() []*dense.Matrix     { return []*dense.Matrix{m.p} }
func (m *thresholdModel) Grads() []*dense.Matrix      { return []*dense.Matrix{m.g} }
func (m *thresholdModel) ZeroGrads()                  { m.g.Zero() }

// Regression: Train used to report TrainAcc/ValAcc/TestAcc from the
// final epoch's parameters even though BestValEpoch recorded an earlier
// validation peak — the early-stopping protocol the Planetoid
// evaluations assume evaluates (and keeps) the best-val snapshot. With
// thresholdModel the final-epoch accuracy is 0 while the best-val
// parameters score 1.0, so the pre-fix code fails every assertion here.
func TestTrainReportsBestValEpochAccuracy(t *testing.T) {
	m := newThresholdModel()
	x := dense.NewMatrix(6, 1)
	labels := []int{0, 0, 0, 0, 0, 0}
	split := Split{Train: []int{0, 1}, Val: []int{2, 3}, Test: []int{4, 5}}
	res := Train(m, x, labels, split, TrainConfig{Epochs: 40, LR: 0.05})

	if res.BestValEpoch != 0 {
		t.Fatalf("BestValEpoch = %d, want 0", res.BestValEpoch)
	}
	if res.TestAcc != 1 || res.ValAcc != 1 || res.TrainAcc != 1 {
		t.Errorf("accuracies = %.2f/%.2f/%.2f, want 1/1/1 (best-val params, not final)",
			res.TrainAcc, res.ValAcc, res.TestAcc)
	}
	// The model itself must be left holding the best-val snapshot.
	if got := m.p.At(0, 0); got != 0 {
		t.Errorf("model param = %v after Train, want best-val value 0", got)
	}
	// Sanity: the final epoch really had drifted past the threshold, or
	// this test would pass trivially.
	if last := res.LossHistory[len(res.LossHistory)-1]; last <= res.LossHistory[0] {
		t.Errorf("loss did not grow (%v -> %v); mock drift assumption broken",
			res.LossHistory[0], last)
	}
}

// Without a validation set the pre-fix behavior — evaluate and keep the
// final-epoch parameters — is still the contract.
func TestTrainWithoutValKeepsFinalParams(t *testing.T) {
	m := newThresholdModel()
	x := dense.NewMatrix(4, 1)
	labels := []int{0, 0, 0, 0}
	split := Split{Train: []int{0, 1}, Test: []int{2, 3}}
	res := Train(m, x, labels, split, TrainConfig{Epochs: 40, LR: 0.05})
	if got := m.p.At(0, 0); got <= 0 {
		t.Errorf("model param = %v, want drifted final value > 0", got)
	}
	if res.TestAcc != 0 {
		t.Errorf("TestAcc = %v, want 0 (final params past threshold)", res.TestAcc)
	}
}
