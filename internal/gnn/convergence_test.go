// Convergence regression tests (external test package: datasets
// imports gnn, so the dataset-backed tests cannot live inside it).
//
// The scheduler's determinism contract lifts from single kernel calls
// to whole training runs: because parallel aggregation is bit-identical
// to serial aggregation, a GCN or GraphSAGE trained with the parallel
// engine must produce the exact same loss trajectory — every epoch,
// every bit — as one trained serially. A golden final-loss band pins
// the trajectory itself so a silent numeric regression in either path
// cannot pass by staying self-consistent.
package gnn_test

import (
	"testing"

	"repro/internal/csr"
	"repro/internal/datasets"
	"repro/internal/gnn"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// trainOnce trains one model kind on the shared dataset through the
// given engine and pool, with fixed seeds everywhere.
func trainOnce(t *testing.T, ds *datasets.Dataset, kind gnn.ModelKind,
	engine gnn.EngineKind, pool *sched.Pool) gnn.TrainResult {
	t.Helper()
	f := gnn.NewFactory(engine, pattern.New(4, 2, 8))
	f.Pool = pool
	var w *csr.Matrix
	if kind == gnn.KindSAGE {
		w = csr.RowNormalized(ds.G)
	} else {
		w = csr.SymNormalized(ds.G)
	}
	op, err := f.Make(w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gnn.Build(kind, op, f.Ledger, gnn.Config{
		In: ds.X.Cols, Hidden: 16, Classes: ds.Classes, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gnn.Train(m, ds.X, ds.Labels, ds.Split, gnn.TrainConfig{Epochs: 40, LR: 0.02, WD: 5e-4})
}

// golden final-loss bands: the serial GCN/SAGE runs on the Cora
// stand-in (seed 42, 40 epochs) land at 1.22e-3 and 2.02e-4
// respectively; the bands allow roughly a 5x drift either way before
// failing, so a kernel regression cannot hide by staying
// serial/parallel-consistent.
var goldenFinalLoss = map[gnn.ModelKind][2]float64{
	gnn.KindGCN:  {2e-4, 8e-3},
	gnn.KindSAGE: {4e-5, 1.5e-3},
}

func TestConvergenceParallelMatchesSerial(t *testing.T) {
	ds, err := datasets.ByName("Cora", datasets.DefaultGenOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []gnn.ModelKind{gnn.KindGCN, gnn.KindSAGE} {
		for _, engine := range []gnn.EngineKind{gnn.EngineCSR, gnn.EngineSPTC} {
			t.Run(string(kind)+"/"+engine.String(), func(t *testing.T) {
				serial := trainOnce(t, ds, kind, engine, sched.Serial())
				parallel := trainOnce(t, ds, kind, engine, sched.New(4))

				if len(serial.LossHistory) != len(parallel.LossHistory) {
					t.Fatalf("loss history lengths differ: %d vs %d",
						len(serial.LossHistory), len(parallel.LossHistory))
				}
				for e := range serial.LossHistory {
					// Bitwise: the engines must agree exactly, not
					// approximately — aggregation is bit-deterministic
					// and everything downstream is identical code.
					if serial.LossHistory[e] != parallel.LossHistory[e] {
						t.Fatalf("epoch %d: serial loss %v != parallel loss %v",
							e, serial.LossHistory[e], parallel.LossHistory[e])
					}
				}
				if serial.TestAcc != parallel.TestAcc || serial.BestValEpoch != parallel.BestValEpoch {
					t.Fatalf("run summaries diverge: serial %+v vs parallel %+v", serial, parallel)
				}

				band := goldenFinalLoss[kind]
				if serial.FinalLoss < band[0] || serial.FinalLoss > band[1] {
					t.Errorf("%s final loss %v outside golden band [%v, %v]",
						kind, serial.FinalLoss, band[0], band[1])
				}
			})
		}
	}
}

// TestConvergenceLossDecreases pins the trajectory's shape: training
// must actually make progress (this guards against a kernel that
// returns zeros, which would trivially pass the equality checks).
func TestConvergenceLossDecreases(t *testing.T) {
	ds, err := datasets.ByName("Cora", datasets.DefaultGenOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := trainOnce(t, ds, gnn.KindGCN, gnn.EngineCSR, sched.New(2))
	first, last := res.LossHistory[0], res.FinalLoss
	if last >= first/2 {
		t.Fatalf("GCN loss barely moved: %v -> %v over %d epochs", first, last, len(res.LossHistory))
	}
	if res.TrainAcc < 0.9 {
		t.Errorf("GCN train accuracy %v, want >= 0.9 on the separable stand-in", res.TrainAcc)
	}
}
