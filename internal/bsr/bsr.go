// Package bsr implements the Block Sparse Row format the paper's CUDA
// library stores adjacency matrices in (Listing 1): the matrix is a
// grid of M-by-M blocks, and only blocks containing nonzeros are
// stored, indexed CSR-style by block row. The package also provides the
// bit-string encoding routine of Listing 1 — locating a segment vector
// through the block index via binary search and packing its M values
// into a binary string.
package bsr

import (
	"fmt"
	"sort"

	"repro/internal/bitmat"
)

// Matrix is a square binary matrix in BSR form with M-by-M blocks.
type Matrix struct {
	N int // matrix dimension
	M int // block size
	// RowPtr/ColInd index nonzero blocks per block row, as in CSR.
	RowPtr []int32
	ColInd []int32
	// Val stores each block's M*M binary values row-major (paper's
	// bsrval array), one block after another.
	Val []uint8
}

// NumBlockRows returns ceil(N/M).
func (b *Matrix) NumBlockRows() int { return (b.N + b.M - 1) / b.M }

// NumBlocks returns the number of stored nonzero blocks.
func (b *Matrix) NumBlocks() int { return len(b.ColInd) }

// BlockRowBlocks returns the number of stored blocks in block row br —
// the per-block-row work estimate the tile scheduler balances.
func (b *Matrix) BlockRowBlocks(br int) int {
	return int(b.RowPtr[br+1] - b.RowPtr[br])
}

// FromBitMatrix converts a bit matrix into BSR form with block size M.
func FromBitMatrix(m *bitmat.Matrix, M int) (*Matrix, error) {
	if M < 1 || M > 64 {
		return nil, fmt.Errorf("bsr: block size %d out of range [1, 64]", M)
	}
	n := m.N()
	nb := (n + M - 1) / M
	out := &Matrix{N: n, M: M, RowPtr: make([]int32, nb+1)}
	for br := 0; br < nb; br++ {
		// Which block columns have any nonzero in this block row?
		cols := map[int32]bool{}
		for r := br * M; r < (br+1)*M && r < n; r++ {
			for s := 0; s < m.NumSegments(M); s++ {
				if m.SegmentPop(r, s, M) > 0 {
					cols[int32(s)] = true
				}
			}
		}
		sorted := make([]int32, 0, len(cols))
		for c := range cols {
			sorted = append(sorted, c)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, bc := range sorted {
			out.ColInd = append(out.ColInd, bc)
			block := make([]uint8, M*M)
			for dr := 0; dr < M; dr++ {
				r := br*M + dr
				if r >= n {
					break
				}
				for dc := 0; dc < M; dc++ {
					c := int(bc)*M + dc
					if c < n && m.Get(r, c) {
						block[dr*M+dc] = 1
					}
				}
			}
			out.Val = append(out.Val, block...)
		}
		out.RowPtr[br+1] = int32(len(out.ColInd))
	}
	return out, nil
}

// ToBitMatrix expands the BSR matrix back to a bit matrix.
func (b *Matrix) ToBitMatrix() *bitmat.Matrix {
	m := bitmat.New(b.N)
	nb := b.NumBlockRows()
	for br := 0; br < nb; br++ {
		for bi := b.RowPtr[br]; bi < b.RowPtr[br+1]; bi++ {
			bc := int(b.ColInd[bi])
			block := b.Val[int(bi)*b.M*b.M : (int(bi)+1)*b.M*b.M]
			for dr := 0; dr < b.M; dr++ {
				r := br*b.M + dr
				if r >= b.N {
					break
				}
				for dc := 0; dc < b.M; dc++ {
					c := bc*b.M + dc
					if c < b.N && block[dr*b.M+dc] != 0 {
						m.Set(r, c)
					}
				}
			}
		}
	}
	return m
}

// FindBlock is the binarySearchInd of Listing 1: it locates the stored
// block with block-column blockCol within block row blockRow, returning
// its index into Val (block units) or -1 if the block is all zero.
func (b *Matrix) FindBlock(blockRow, blockCol int) int {
	lo, hi := int(b.RowPtr[blockRow]), int(b.RowPtr[blockRow+1])
	i := lo + sort.Search(hi-lo, func(i int) bool { return b.ColInd[lo+i] >= int32(blockCol) })
	if i < hi && b.ColInd[i] == int32(blockCol) {
		return i
	}
	return -1
}

// EncodeSegment reproduces Listing 1: it returns the binary-string
// encoding of the M-element segment vector at matrix row `row` and
// segment (block column) `seg`. Bit M-1 (most significant) holds the
// leftmost column of the window, exactly as the left-shifting loop of
// the listing produces. A missing block yields 0.
func (b *Matrix) EncodeSegment(row, seg int) uint64 {
	id := b.FindBlock(row/b.M, seg)
	if id == -1 {
		return 0
	}
	var val uint64
	lane := row % b.M
	base := id*b.M*b.M + lane*b.M
	for i := 0; i < b.M; i++ {
		val = (val << 1) | uint64(b.Val[base+i])
	}
	return val
}
