package bsr

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
)

func randomMatrix(n int, nnz int, seed int64) *bitmat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := bitmat.New(n)
	for k := 0; k < nnz; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		m.Set(i, j)
		m.Set(j, i)
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	for _, M := range []int{4, 8, 16} {
		m := randomMatrix(50, 200, int64(M))
		b, err := FromBitMatrix(m, M)
		if err != nil {
			t.Fatal(err)
		}
		back := b.ToBitMatrix()
		if !back.Equal(m) {
			t.Errorf("M=%d: BSR round trip changed matrix", M)
		}
	}
}

func TestBlockSparsity(t *testing.T) {
	// A matrix with one nonzero stores exactly one block.
	m := bitmat.New(16)
	m.Set(5, 9)
	b, err := FromBitMatrix(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumBlocks() != 1 {
		t.Errorf("NumBlocks = %d, want 1", b.NumBlocks())
	}
	if b.NumBlockRows() != 4 {
		t.Errorf("NumBlockRows = %d, want 4", b.NumBlockRows())
	}
	if got := b.FindBlock(1, 2); got != 0 {
		t.Errorf("FindBlock(1,2) = %d, want 0", got)
	}
	if got := b.FindBlock(0, 0); got != -1 {
		t.Errorf("FindBlock(0,0) = %d, want -1", got)
	}
}

func TestEncodeSegmentMatchesBitmat(t *testing.T) {
	m := randomMatrix(64, 300, 7)
	for _, M := range []int{4, 8} {
		b, err := FromBitMatrix(m, M)
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < 64; row++ {
			for seg := 0; seg < 64/M; seg++ {
				want := m.Segment(row, seg, M)
				if got := b.EncodeSegment(row, seg); got != want {
					t.Fatalf("M=%d EncodeSegment(%d,%d) = %b, want %b", M, row, seg, got, want)
				}
			}
		}
	}
}

func TestEncodeSegmentMissingBlock(t *testing.T) {
	m := bitmat.New(8)
	m.Set(0, 0)
	b, err := FromBitMatrix(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.EncodeSegment(0, 1); got != 0 {
		t.Errorf("missing block encoding = %b, want 0", got)
	}
	if got := b.EncodeSegment(0, 0); got != 0b1000 {
		t.Errorf("EncodeSegment(0,0) = %04b, want 1000", got)
	}
}

func TestFromBitMatrixRejectsBadBlockSize(t *testing.T) {
	m := bitmat.New(8)
	for _, M := range []int{0, 65, -1} {
		if _, err := FromBitMatrix(m, M); err == nil {
			t.Errorf("M=%d: want error", M)
		}
	}
}

func TestNonDivisibleDimension(t *testing.T) {
	// n = 10 with M = 4 leaves ragged edge blocks.
	m := randomMatrix(10, 30, 3)
	b, err := FromBitMatrix(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !b.ToBitMatrix().Equal(m) {
		t.Error("ragged round trip changed matrix")
	}
}

func BenchmarkEncodeSegment(b *testing.B) {
	m := randomMatrix(1024, 8192, 1)
	bm, err := FromBitMatrix(m, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bm.EncodeSegment(i%1024, (i/3)%128)
	}
}
