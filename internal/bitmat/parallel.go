package bitmat

import (
	"runtime"
	"sync"
)

// ParallelRows invokes fn(lo, hi) over a partition of [0, n) rows, one
// goroutine per available CPU. It is the CPU analog of launching one
// warp per row block on a GPU: every SOGRE kernel that walks rows
// independently funnels through this helper.
func ParallelRows(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelReduceInt runs fn over row ranges in parallel and sums the
// per-range results.
func ParallelReduceInt(n int, fn func(lo, hi int) int) int {
	if n <= 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	results := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	launched := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		launched++
		go func(idx, lo, hi int) {
			defer wg.Done()
			results[idx] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for i := 0; i < launched; i++ {
		total += results[i]
	}
	return total
}
