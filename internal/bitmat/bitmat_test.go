package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	m := New(130) // spans three words per row
	pts := [][2]int{{0, 0}, {0, 129}, {129, 0}, {63, 64}, {64, 63}, {128, 128}}
	for _, p := range pts {
		m.Set(p[0], p[1])
	}
	for _, p := range pts {
		if !m.Get(p[0], p[1]) {
			t.Errorf("Get(%d,%d) = false after Set", p[0], p[1])
		}
	}
	if got := m.NNZ(); got != len(pts) {
		t.Errorf("NNZ = %d, want %d", got, len(pts))
	}
	for _, p := range pts {
		m.Clear(p[0], p[1])
		if m.Get(p[0], p[1]) {
			t.Errorf("Get(%d,%d) = true after Clear", p[0], p[1])
		}
	}
	if got := m.NNZ(); got != 0 {
		t.Errorf("NNZ after clearing all = %d, want 0", got)
	}
}

func TestFromRowsAndString(t *testing.T) {
	m, err := FromRows(
		"0110",
		"1001",
		"1000",
		"0100",
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Fatalf("N = %d, want 4", m.N())
	}
	if !m.Get(0, 1) || !m.Get(0, 2) || m.Get(0, 0) || m.Get(0, 3) {
		t.Error("row 0 bits wrong")
	}
	want := "0110\n1001\n1000\n0100\n"
	if got := m.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows("01", "0"); err == nil {
		t.Error("want error for ragged rows")
	}
	if _, err := FromRows("0x", "00"); err == nil {
		t.Error("want error for invalid character")
	}
}

func TestSegmentEncoding(t *testing.T) {
	// Row 0 = 1100 0101 -> segment 0 (M=4) is "1100" = 0b1100 = 12,
	// segment 1 is "0101" = 5.
	m, err := FromRows(
		"11000101",
		"00000000",
		"10000000",
		"00000001",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Segment(0, 0, 4); got != 0b1100 {
		t.Errorf("Segment(0,0,4) = %04b, want 1100", got)
	}
	if got := m.Segment(0, 1, 4); got != 0b0101 {
		t.Errorf("Segment(0,1,4) = %04b, want 0101", got)
	}
	if got := m.Segment(2, 0, 8); got != 0b10000000 {
		t.Errorf("Segment(2,0,8) = %08b, want 10000000", got)
	}
	if got := m.Segment(3, 0, 8); got != 0b00000001 {
		t.Errorf("Segment(3,0,8) = %08b, want 00000001", got)
	}
	if got := m.SegmentPop(0, 0, 4); got != 2 {
		t.Errorf("SegmentPop(0,0,4) = %d, want 2", got)
	}
	if got := m.NumSegments(4); got != 2 {
		t.Errorf("NumSegments(4) = %d, want 2", got)
	}
	if got := m.NumSegments(3); got != 3 {
		t.Errorf("NumSegments(3) = %d, want 3", got)
	}
}

func TestSegmentUnalignedMatchesBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 100
	m := New(n)
	for k := 0; k < 600; k++ {
		m.Set(rng.Intn(n), rng.Intn(n))
	}
	for _, M := range []int{4, 8, 16, 32, 64} {
		for i := 0; i < n; i++ {
			for s := 0; s < m.NumSegments(M); s++ {
				var want uint64
				for c := 0; c < M; c++ {
					want <<= 1
					if col := s*M + c; col < n && m.Get(i, col) {
						want |= 1
					}
				}
				if got := m.Segment(i, s, M); got != want {
					t.Fatalf("Segment(%d,%d,M=%d) = %b, want %b", i, s, M, got, want)
				}
			}
		}
	}
}

func TestSwapSymPreservesSymmetryAndGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 70
	m := New(n)
	for k := 0; k < 300; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		m.Set(i, j)
		m.Set(j, i)
	}
	if !m.IsSymmetric() {
		t.Fatal("setup: matrix not symmetric")
	}
	nnz := m.NNZ()
	for k := 0; k < 50; k++ {
		m.SwapSym(rng.Intn(n), rng.Intn(n))
	}
	if !m.IsSymmetric() {
		t.Error("SwapSym broke symmetry")
	}
	if m.NNZ() != nnz {
		t.Errorf("SwapSym changed NNZ: %d -> %d", nnz, m.NNZ())
	}
}

func TestSwapSymMatchesPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 33
	m := New(n)
	for k := 0; k < 120; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		m.Set(i, j)
		m.Set(j, i)
	}
	u, v := 4, 20
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	perm[u], perm[v] = perm[v], perm[u]
	want := m.Permute(perm)
	got := m.Clone()
	got.SwapSym(u, v)
	if !got.Equal(want) {
		t.Error("SwapSym result differs from equivalent Permute")
	}
}

func TestPermuteIdentityAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	m := New(n)
	for k := 0; k < 200; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		m.Set(i, j)
		m.Set(j, i)
	}
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	if !m.Permute(id).Equal(m) {
		t.Error("identity permutation changed matrix")
	}
	perm := rng.Perm(n)
	p := m.Permute(perm)
	// Invert: inv[perm[i]] = i, so Permuting p by inv recovers m.
	inv := make([]int, n)
	for i, o := range perm {
		inv[o] = i
	}
	if !p.Permute(inv).Equal(m) {
		t.Error("permute then inverse-permute did not recover matrix")
	}
	if p.NNZ() != m.NNZ() {
		t.Error("permutation changed NNZ")
	}
	if !p.IsSymmetric() {
		t.Error("permutation broke symmetry")
	}
}

func TestPermutePreservesDegreesProperty(t *testing.T) {
	// Property: the multiset of row popcounts is invariant under
	// symmetric permutation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		m := New(n)
		for k := 0; k < n*3; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			m.Set(i, j)
			m.Set(j, i)
		}
		perm := rng.Perm(n)
		p := m.Permute(perm)
		for newI, old := range perm {
			if p.RowNNZ(newI) != m.RowNNZ(old) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestColumnsUsed(t *testing.T) {
	m, err := FromRows(
		"10100000",
		"10000000",
		"00100001",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
	)
	if err != nil {
		t.Fatal(err)
	}
	// Tile rows 0..3, segment 0, M=8: columns 0 and 2 used (rows 0-2).
	used := m.ColumnsUsed(0, 0, 8, 4)
	if used != (1|1<<2)|(1<<7) {
		t.Errorf("ColumnsUsed = %08b, want cols {0,2,7}", used)
	}
	// Rows 4..7 are all zero.
	if got := m.ColumnsUsed(4, 0, 8, 4); got != 0 {
		t.Errorf("ColumnsUsed empty tile = %b, want 0", got)
	}
}

func TestIsSymmetric(t *testing.T) {
	m, _ := FromRows(
		"010",
		"101",
		"010",
	)
	if !m.IsSymmetric() {
		t.Error("symmetric matrix reported asymmetric")
	}
	m.Set(0, 2)
	if m.IsSymmetric() {
		t.Error("asymmetric matrix reported symmetric")
	}
}

func TestParallelRowsCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		seen := make([]bool, n)
		ParallelRows(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i] = true // ranges are disjoint; no race
			}
		})
		for i, s := range seen {
			if !s {
				t.Errorf("n=%d: row %d not covered", n, i)
			}
		}
	}
}

func TestParallelReduceInt(t *testing.T) {
	got := ParallelReduceInt(1000, func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		return s
	})
	want := 1000 * 999 / 2
	if got != want {
		t.Errorf("ParallelReduceInt = %d, want %d", got, want)
	}
	if got := ParallelReduceInt(0, func(lo, hi int) int { return 1 }); got != 0 {
		t.Errorf("empty reduce = %d, want 0", got)
	}
}

func TestDensity(t *testing.T) {
	m := New(10)
	if m.Density() != 0 {
		t.Error("empty density != 0")
	}
	m.Set(0, 0)
	if got, want := m.Density(), 0.01; got != want {
		t.Errorf("Density = %v, want %v", got, want)
	}
	if New(0).Density() != 0 {
		t.Error("0x0 density != 0")
	}
}

func BenchmarkSegmentAligned(b *testing.B) {
	m := New(4096)
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 40960; k++ {
		m.Set(rng.Intn(4096), rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Segment(i%4096, (i/7)%(4096/8), 8)
	}
}

func BenchmarkSwapSym(b *testing.B) {
	m := New(4096)
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 40960; k++ {
		i, j := rng.Intn(4096), rng.Intn(4096)
		m.Set(i, j)
		m.Set(j, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SwapSym(i%4096, (i*31)%4096)
	}
}
