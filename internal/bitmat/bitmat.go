// Package bitmat provides a dense bit-matrix representation of graph
// adjacency structure, the central data structure of the SOGRE
// reordering engine.
//
// The paper's CUDA implementation (Listing 1) encodes every M-element
// segment vector of the adjacency matrix as a binary string and
// manipulates it with GPU bit intrinsics and intra-warp shuffles. This
// package is the CPU analog: rows are stored as packed uint64 words,
// per-window popcounts use math/bits, and the row-parallel operations
// are fanned out over a goroutine worker pool (see parallel.go).
package bitmat

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Matrix is a dense n-by-n bit matrix. Bit (i, j) set means there is an
// edge between vertex i and vertex j (a nonzero A[i][j]).
//
// The zero value is an empty 0x0 matrix; use New to allocate.
type Matrix struct {
	n     int
	words int      // words per row
	rows  []uint64 // n*words, row-major
}

// New returns an n-by-n all-zero bit matrix.
func New(n int) *Matrix {
	if n < 0 {
		panic("bitmat: negative dimension")
	}
	w := (n + wordBits - 1) / wordBits
	return &Matrix{n: n, words: w, rows: make([]uint64, n*w)}
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// WordsPerRow returns the number of uint64 words backing each row.
func (m *Matrix) WordsPerRow() int { return m.words }

// Row returns the packed words of row i. The slice aliases the matrix
// storage; callers must not grow it.
func (m *Matrix) Row(i int) []uint64 {
	return m.rows[i*m.words : (i+1)*m.words : (i+1)*m.words]
}

// Set sets bit (i, j).
func (m *Matrix) Set(i, j int) {
	m.rows[i*m.words+j/wordBits] |= 1 << uint(j%wordBits)
}

// Clear clears bit (i, j).
func (m *Matrix) Clear(i, j int) {
	m.rows[i*m.words+j/wordBits] &^= 1 << uint(j%wordBits)
}

// Get reports whether bit (i, j) is set.
func (m *Matrix) Get(i, j int) bool {
	return m.rows[i*m.words+j/wordBits]&(1<<uint(j%wordBits)) != 0
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{n: m.n, words: m.words, rows: make([]uint64, len(m.rows))}
	copy(c.rows, m.rows)
	return c
}

// NNZ returns the total number of set bits.
func (m *Matrix) NNZ() int {
	total := 0
	for _, w := range m.rows {
		total += bits.OnesCount64(w)
	}
	return total
}

// RowNNZ returns the number of set bits in row i.
func (m *Matrix) RowNNZ(i int) int {
	total := 0
	for _, w := range m.Row(i) {
		total += bits.OnesCount64(w)
	}
	return total
}

// Density returns NNZ / n².
func (m *Matrix) Density() float64 {
	if m.n == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.n) * float64(m.n))
}

// IsSymmetric reports whether the matrix equals its transpose.
func (m *Matrix) IsSymmetric() bool {
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		for wi, w := range row {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				j := wi*wordBits + b
				if j > i && !m.Get(j, i) {
					return false
				}
			}
		}
	}
	return true
}

// Segment extracts the M-bit segment vector of row i starting at column
// seg*M, returned as a uint64 with the segment's leftmost matrix column
// in bit M-1 (most significant) and the rightmost column in bit 0. This
// matches the paper's binary-string encoding (Listing 1), where the
// string is built by left-shifting column values in order.
//
// M must be a power of two with 1 <= M <= 64. Columns past n read as
// zero.
func (m *Matrix) Segment(i, seg, M int) uint64 {
	start := seg * M
	var v uint64
	// Fast path: segment fully inside one word and aligned.
	if M <= wordBits && start%wordBits+M <= wordBits {
		w := m.rows[i*m.words+start/wordBits]
		raw := (w >> uint(start%wordBits)) & maskLow(M)
		return reverseLow(raw, M)
	}
	for c := 0; c < M; c++ {
		col := start + c
		v <<= 1
		if col < m.n && m.Get(i, col) {
			v |= 1
		}
	}
	return v
}

// SegmentPop returns the popcount of the M-bit segment vector of row i
// at segment index seg (number of nonzeros in that window).
func (m *Matrix) SegmentPop(i, seg, M int) int {
	start := seg * M
	if M <= wordBits && start%wordBits+M <= wordBits {
		w := m.rows[i*m.words+start/wordBits]
		return bits.OnesCount64((w >> uint(start%wordBits)) & maskLow(M))
	}
	count := 0
	for c := 0; c < M && start+c < m.n; c++ {
		if m.Get(i, start+c) {
			count++
		}
	}
	return count
}

// NumSegments returns the number of M-column segments: ceil(n / M).
func (m *Matrix) NumSegments(M int) int {
	return (m.n + M - 1) / M
}

// SwapSym swaps vertices u and v: rows u,v and columns u,v are
// exchanged, preserving symmetry. This is the adjacency-matrix
// materialization of renumbering two graph vertices (Figure 1 of the
// paper).
func (m *Matrix) SwapSym(u, v int) {
	if u == v {
		return
	}
	// Swap rows.
	ru, rv := m.Row(u), m.Row(v)
	for k := range ru {
		ru[k], rv[k] = rv[k], ru[k]
	}
	// Swap columns u and v in every row.
	uw, ub := u/wordBits, uint(u%wordBits)
	vw, vb := v/wordBits, uint(v%wordBits)
	for i := 0; i < m.n; i++ {
		base := i * m.words
		bu := (m.rows[base+uw] >> ub) & 1
		bv := (m.rows[base+vw] >> vb) & 1
		if bu != bv {
			m.rows[base+uw] ^= 1 << ub
			m.rows[base+vw] ^= 1 << vb
		}
	}
}

// Permute returns a new matrix B with B[i][j] = A[perm[i]][perm[j]]:
// position i of the new ordering is occupied by old vertex perm[i].
// This is a symmetric (graph) permutation; it never changes the graph,
// only the numbering of its vertices.
func (m *Matrix) Permute(perm []int) *Matrix {
	if len(perm) != m.n {
		panic(fmt.Sprintf("bitmat: permutation length %d != n %d", len(perm), m.n))
	}
	out := New(m.n)
	// inv[old] = new position of old vertex.
	inv := make([]int, m.n)
	for newPos, old := range perm {
		inv[old] = newPos
	}
	for newI := 0; newI < m.n; newI++ {
		oldRow := m.Row(perm[newI])
		outRow := out.Row(newI)
		for wi, w := range oldRow {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				oldJ := wi*wordBits + b
				newJ := inv[oldJ]
				outRow[newJ/wordBits] |= 1 << uint(newJ%wordBits)
			}
		}
	}
	return out
}

// Equal reports whether the two matrices have identical dimensions and
// bits.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for k := range m.rows {
		if m.rows[k] != o.rows[k] {
			return false
		}
	}
	return true
}

// ColumnsUsed reports, for the V-by-M tile whose top-left corner is
// (rowStart, seg*M), the bitmask of tile-local columns (bit c set means
// tile column c, i.e. matrix column seg*M+c, contains a nonzero in rows
// [rowStart, rowStart+V)). Rows past n are treated as zero.
func (m *Matrix) ColumnsUsed(rowStart, seg, M, V int) uint64 {
	start := seg * M
	var used uint64
	if M <= wordBits && start%wordBits+M <= wordBits {
		shift := uint(start % wordBits)
		w := start / wordBits
		mask := maskLow(M)
		for r := rowStart; r < rowStart+V && r < m.n; r++ {
			used |= (m.rows[r*m.words+w] >> shift) & mask
		}
		return used
	}
	for r := rowStart; r < rowStart+V && r < m.n; r++ {
		for c := 0; c < M && start+c < m.n; c++ {
			if m.Get(r, start+c) {
				used |= 1 << uint(c)
			}
		}
	}
	return used
}

// String renders the matrix as rows of '0'/'1' characters, useful in
// tests and examples. Large matrices render a summary instead.
func (m *Matrix) String() string {
	if m.n > 64 {
		return fmt.Sprintf("bitmat.Matrix(n=%d, nnz=%d)", m.n, m.NNZ())
	}
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if m.Get(i, j) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FromRows builds a matrix from string rows of '0'/'1' (whitespace
// ignored). All rows must have length n equal to the number of rows.
func FromRows(rows ...string) (*Matrix, error) {
	n := len(rows)
	m := New(n)
	for i, r := range rows {
		r = strings.Map(func(c rune) rune {
			if c == ' ' || c == '\t' {
				return -1
			}
			return c
		}, r)
		if len(r) != n {
			return nil, fmt.Errorf("bitmat: row %d has %d columns, want %d", i, len(r), n)
		}
		for j, c := range r {
			switch c {
			case '1':
				m.Set(i, j)
			case '0':
			default:
				return nil, fmt.Errorf("bitmat: row %d has invalid character %q", i, c)
			}
		}
	}
	return m, nil
}

// maskLow returns a mask of the k low bits (k in [0,64]).
func maskLow(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(k)) - 1
}

// reverseLow reverses the low k bits of v (and clears the rest).
func reverseLow(v uint64, k int) uint64 {
	return bits.Reverse64(v) >> uint(64-k)
}
