package serve

import (
	"fmt"
	"math/rand"

	"repro/internal/dyn"
)

// ScriptConfig seeds a deterministic request script — the shared
// workload description the load generator, the serve bench suite, the
// equivalence oracle and the ci.sh smoke gate all replay, so "same
// seed, same traffic" holds across every consumer.
type ScriptConfig struct {
	// Seed pins every draw.
	Seed int64
	// Clients is the number of closed-loop client streams.
	Clients int
	// Requests is the per-client request count.
	Requests int
	// N is the graph size node ids are drawn from.
	N int
	// MaxNodes bounds the node-set size per request (clamped to N;
	// zero = 8).
	MaxNodes int
	// MinNodes floors the node-set size (clamped to MaxNodes; zero =
	// 1). MinNodes == MaxNodes gives uniform-size requests, the shape
	// latency-percentile comparisons want.
	MinNodes int
	// ClassifyEvery makes every k-th request per client a classify op
	// (0 = all embed).
	ClassifyEvery int
}

// GenerateScript produces per-client request streams: sizes uniform
// in [MinNodes, MaxNodes], node ids drawn 80/20 from a hot sixteenth of the
// graph versus the full range (the skew that makes row caching and
// cross-request shard dedup pay), deduplicated within each request.
// Pure function of the config.
func GenerateScript(cfg ScriptConfig) ([][]*Request, error) {
	if cfg.Clients < 1 || cfg.Requests < 1 || cfg.N < 1 {
		return nil, fmt.Errorf("%w: script needs clients, requests and n >= 1", ErrConfig)
	}
	maxNodes := cfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = 8
	}
	if maxNodes > cfg.N {
		maxNodes = cfg.N
	}
	minNodes := cfg.MinNodes
	if minNodes < 1 {
		minNodes = 1
	}
	if minNodes > maxNodes {
		minNodes = maxNodes
	}
	hot := cfg.N / 16
	if hot < 1 {
		hot = 1
	}
	clients := make([][]*Request, cfg.Clients)
	for c := range clients {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
		reqs := make([]*Request, cfg.Requests)
		for i := range reqs {
			size := minNodes + rng.Intn(maxNodes-minNodes+1)
			seen := make(map[int]struct{}, size)
			nodes := make([]int, 0, size)
			for len(nodes) < size {
				var v int
				if rng.Intn(5) < 4 {
					v = rng.Intn(hot)
				} else {
					v = rng.Intn(cfg.N)
				}
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				nodes = append(nodes, v)
			}
			op := OpEmbed
			if cfg.ClassifyEvery > 0 && (i+1)%cfg.ClassifyEvery == 0 {
				op = OpClassify
			}
			reqs[i] = &Request{Op: op, Nodes: nodes}
		}
		clients[c] = reqs
	}
	return clients, nil
}

// MixedScriptConfig seeds a deterministic read/write workload for
// mutable engines. It is a SEPARATE generator from GenerateScript —
// GenerateScript's draw sequence is pinned by checked-in bench
// digests and must never change.
type MixedScriptConfig struct {
	// Seed pins every draw.
	Seed int64
	// Clients is the number of closed-loop client streams.
	Clients int
	// Requests is the per-client slot count; each slot is a query or a
	// mutation batch.
	Requests int
	// N is the graph size node and vertex ids are drawn from.
	N int
	// MaxNodes / MinNodes / ClassifyEvery shape query slots exactly as
	// in ScriptConfig.
	MaxNodes      int
	MinNodes      int
	ClassifyEvery int
	// WriteRatio in [0, 1] is the probability a slot is a mutation
	// batch. 1 gives a pure mutation stream (the ci.sh crash drill's
	// shape); 0 is a valid read-only mixed script.
	WriteRatio float64
	// MutOps is the op count per mutation batch (zero = 4).
	MutOps int
}

// MixedOp is one slot of a mixed script: exactly one of Req (a query)
// or Muts (a mutation batch) is set.
type MixedOp struct {
	Req  *Request
	Muts []dyn.Mutation
}

// GenerateMixedScript produces per-client mixed streams — a pure
// function of the config, with the PREFIX PROPERTY the crash drill
// leans on: the same config with a smaller Requests yields exactly the
// first slots of the longer script, client by client. Mutation ops are
// drawn blind (insert-heavy, uniform endpoints) — the engine's
// skip-and-count batch semantics absorb duplicates and misses, so
// validity needs no edge-set tracking here. Cross-run checksum
// comparability of the READ slots requires either WriteRatio 0 or a
// single client (with concurrent clients the read/write interleaving
// is scheduling-dependent).
func GenerateMixedScript(cfg MixedScriptConfig) ([][]MixedOp, error) {
	if cfg.Clients < 1 || cfg.Requests < 1 || cfg.N < 2 {
		return nil, fmt.Errorf("%w: mixed script needs clients, requests >= 1 and n >= 2", ErrConfig)
	}
	if cfg.WriteRatio < 0 || cfg.WriteRatio > 1 {
		return nil, fmt.Errorf("%w: write ratio %v outside [0, 1]", ErrConfig, cfg.WriteRatio)
	}
	maxNodes := cfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = 8
	}
	if maxNodes > cfg.N {
		maxNodes = cfg.N
	}
	minNodes := cfg.MinNodes
	if minNodes < 1 {
		minNodes = 1
	}
	if minNodes > maxNodes {
		minNodes = maxNodes
	}
	mutOps := cfg.MutOps
	if mutOps == 0 {
		mutOps = 4
	}
	hot := cfg.N / 16
	if hot < 1 {
		hot = 1
	}
	clients := make([][]MixedOp, cfg.Clients)
	for c := range clients {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*104729))
		slots := make([]MixedOp, cfg.Requests)
		for i := range slots {
			if rng.Float64() < cfg.WriteRatio {
				muts := make([]dyn.Mutation, mutOps)
				for k := range muts {
					op := dyn.OpInsert
					if rng.Intn(4) == 0 {
						op = dyn.OpDelete
					}
					u := rng.Intn(cfg.N)
					v := rng.Intn(cfg.N)
					for v == u {
						v = rng.Intn(cfg.N)
					}
					muts[k] = dyn.Mutation{Op: op, U: u, V: v}
				}
				slots[i] = MixedOp{Muts: muts}
				continue
			}
			size := minNodes + rng.Intn(maxNodes-minNodes+1)
			seen := make(map[int]struct{}, size)
			nodes := make([]int, 0, size)
			for len(nodes) < size {
				var v int
				if rng.Intn(5) < 4 {
					v = rng.Intn(hot)
				} else {
					v = rng.Intn(cfg.N)
				}
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				nodes = append(nodes, v)
			}
			op := OpEmbed
			if cfg.ClassifyEvery > 0 && (i+1)%cfg.ClassifyEvery == 0 {
				op = OpClassify
			}
			slots[i] = MixedOp{Req: &Request{Op: op, Nodes: nodes}}
		}
		clients[c] = slots
	}
	return clients, nil
}
