package serve

import (
	"fmt"
	"math/rand"
)

// ScriptConfig seeds a deterministic request script — the shared
// workload description the load generator, the serve bench suite, the
// equivalence oracle and the ci.sh smoke gate all replay, so "same
// seed, same traffic" holds across every consumer.
type ScriptConfig struct {
	// Seed pins every draw.
	Seed int64
	// Clients is the number of closed-loop client streams.
	Clients int
	// Requests is the per-client request count.
	Requests int
	// N is the graph size node ids are drawn from.
	N int
	// MaxNodes bounds the node-set size per request (clamped to N;
	// zero = 8).
	MaxNodes int
	// MinNodes floors the node-set size (clamped to MaxNodes; zero =
	// 1). MinNodes == MaxNodes gives uniform-size requests, the shape
	// latency-percentile comparisons want.
	MinNodes int
	// ClassifyEvery makes every k-th request per client a classify op
	// (0 = all embed).
	ClassifyEvery int
}

// GenerateScript produces per-client request streams: sizes uniform
// in [MinNodes, MaxNodes], node ids drawn 80/20 from a hot sixteenth of the
// graph versus the full range (the skew that makes row caching and
// cross-request shard dedup pay), deduplicated within each request.
// Pure function of the config.
func GenerateScript(cfg ScriptConfig) ([][]*Request, error) {
	if cfg.Clients < 1 || cfg.Requests < 1 || cfg.N < 1 {
		return nil, fmt.Errorf("%w: script needs clients, requests and n >= 1", ErrConfig)
	}
	maxNodes := cfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = 8
	}
	if maxNodes > cfg.N {
		maxNodes = cfg.N
	}
	minNodes := cfg.MinNodes
	if minNodes < 1 {
		minNodes = 1
	}
	if minNodes > maxNodes {
		minNodes = maxNodes
	}
	hot := cfg.N / 16
	if hot < 1 {
		hot = 1
	}
	clients := make([][]*Request, cfg.Clients)
	for c := range clients {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
		reqs := make([]*Request, cfg.Requests)
		for i := range reqs {
			size := minNodes + rng.Intn(maxNodes-minNodes+1)
			seen := make(map[int]struct{}, size)
			nodes := make([]int, 0, size)
			for len(nodes) < size {
				var v int
				if rng.Intn(5) < 4 {
					v = rng.Intn(hot)
				} else {
					v = rng.Intn(cfg.N)
				}
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				nodes = append(nodes, v)
			}
			op := OpEmbed
			if cfg.ClassifyEvery > 0 && (i+1)%cfg.ClassifyEvery == 0 {
				op = OpClassify
			}
			reqs[i] = &Request{Op: op, Nodes: nodes}
		}
		clients[c] = reqs
	}
	return clients, nil
}
