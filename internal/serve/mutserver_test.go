package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dyn"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/wal"
)

// TestHTTPMutateEndToEnd: POST /v1/mutate applies the batch, the
// response reports the epoch, and /v1/query responses carry it.
func TestHTTPMutateEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, EngineConfig{Seed: 7, Mutable: true, Mode: ModeCSR}, ServerConfig{})
	body := `{"ops":"add@0-9; del@0-9; add@3-250"}`
	resp, err := http.Post(hs.URL+"/v1/mutate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d", resp.StatusCode)
	}
	var mr MutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != 1 || mr.Applied != 3 || mr.Rejected != 0 {
		t.Fatalf("mutate response %+v", mr)
	}
	status, data := postQuery(t, hs, `{"op":"embed","nodes":[0,9]}`)
	if status != http.StatusOK {
		t.Fatalf("query after mutate: %d %s", status, data)
	}
	var qr Response
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Epoch != 1 {
		t.Fatalf("query response epoch %d, want 1", qr.Epoch)
	}
}

// TestHTTPMutateDegenerate: read-only engines 501, bad bodies 400, and
// the server stays serviceable after each.
func TestHTTPMutateDegenerate(t *testing.T) {
	_, hs := newTestServer(t, EngineConfig{Seed: 7}, ServerConfig{})
	cases := []struct {
		body string
		want int
	}{
		{`{"ops":"add@0-1"}`, http.StatusNotImplemented}, // read-only engine
		{`{"ops":""}`, http.StatusBadRequest},
		{`{"ops":"frobnicate@1-2"}`, http.StatusBadRequest},
		{`{"ops":"add@0-1"}garbage`, http.StatusBadRequest},
		{`{"unknown":1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(hs.URL+"/v1/mutate", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Fatalf("body %q: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
		goodRequest(t, hs)
	}
}

// TestWALCrashRecovery: batches acknowledged through a WAL-backed
// server survive a crash — a fresh engine over the same construction
// state replays the log and answers bit-identically to the engine
// that never crashed.
func TestWALCrashRecovery(t *testing.T) {
	g := testGraph(t, 256)
	cfg := EngineConfig{Seed: 7, ShardRows: 64, Mode: ModeCSR, Mutable: true}
	eng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mut.wal")
	log, replayed, err := OpenWAL(eng, path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("fresh WAL replayed %d", replayed)
	}
	srv, err := NewServer(eng, ServerConfig{WAL: log})
	if err != nil {
		t.Fatal(err)
	}
	st := dyn.GenerateStream(g, 30, 31)
	for _, b := range batches(st, 6) {
		if _, err := srv.SubmitMutate(b); err != nil {
			t.Fatal(err)
		}
	}
	reqs := coverageRequests(256)
	want := eng.ServeBatch(reqs, false)
	wantEpoch := eng.Epoch()
	// "Crash": acknowledged batches were committed before their acks,
	// so the recovery below needs nothing from a graceful shutdown —
	// closing here only releases the file handle for reopening.
	srv.Close()
	log.Close()

	recovered, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	log2, replayed, err := OpenWAL(recovered, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if replayed != int(wantEpoch) {
		t.Fatalf("replayed %d batches, want %d", replayed, wantEpoch)
	}
	if recovered.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", recovered.Epoch(), wantEpoch)
	}
	if !bitEqualResponses(want, recovered.ServeBatch(reqs, false)) {
		t.Fatal("recovered engine diverged from the uncrashed one")
	}
	// The recovered log accepts further appends at the right sequence.
	if seq := log2.Seq(); seq != wantEpoch {
		t.Fatalf("recovered log seq %d, want %d", seq, wantEpoch)
	}
}

// TestWALSnapshotRecovery: recovery from a mid-stream snapshot plus
// the suffix of the log (the boot path of sogre-serve -wal -snapshot)
// reproduces the uninterrupted engine exactly.
func TestWALSnapshotRecovery(t *testing.T) {
	g := testGraph(t, 256)
	cfg := EngineConfig{Seed: 7, ShardRows: 64, Mode: ModeCSR, Mutable: true}
	eng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	walPath := filepath.Join(dir, "mut.wal")
	snapPath := filepath.Join(dir, "mut.snapshot")
	log, _, err := OpenWAL(eng, walPath)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(eng, ServerConfig{WAL: log})
	if err != nil {
		t.Fatal(err)
	}
	st := dyn.GenerateStream(g, 36, 37)
	bs := batches(st, 6)
	for _, b := range bs[:3] {
		if _, err := srv.SubmitMutate(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Snapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	for _, b := range bs[3:] {
		if _, err := srv.SubmitMutate(b); err != nil {
			t.Fatal(err)
		}
	}
	reqs := coverageRequests(256)
	want := eng.ServeBatch(reqs, false)
	wantEpoch := eng.Epoch()
	srv.Close()
	log.Close()

	restored, err := RestoreEngine(snapPath, EngineConfig{Mode: ModeCSR, Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != 3 {
		t.Fatalf("snapshot restored at epoch %d, want 3", restored.Epoch())
	}
	log2, replayed, err := OpenWAL(restored, walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if replayed != int(wantEpoch)-3 {
		t.Fatalf("replayed %d, want %d", replayed, int(wantEpoch)-3)
	}
	if !bitEqualResponses(want, restored.ServeBatch(reqs, false)) {
		t.Fatal("snapshot+WAL recovery diverged from the uninterrupted engine")
	}
}

// TestWALFingerprintMismatch: a log written for one response space
// refuses to open against another engine.
func TestWALFingerprintMismatch(t *testing.T) {
	g := testGraph(t, 256)
	a, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64, Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mut.wal")
	log, _, err := OpenWAL(a, path)
	if err != nil {
		t.Fatal(err)
	}
	log.Close()
	b, err := NewEngine(g, EngineConfig{Seed: 8, ShardRows: 64, Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(b, path); !errors.Is(err, wal.ErrFingerprint) {
		t.Fatalf("cross-config open: %v", err)
	}
	// A read-only engine has no business with a WAL at all.
	ro, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(ro, path); !errors.Is(err, ErrNotMutable) {
		t.Fatalf("read-only open: %v", err)
	}
}

// TestMutateFaultLatch: a batch that faults AFTER its WAL commit
// latches the mutation path (503 for later batches) while reads stay
// live — and a restart replays the committed batch, recovering it.
func TestMutateFaultLatch(t *testing.T) {
	g := testGraph(t, 256)
	reg := obs.NewRegistry()
	plan, err := resil.ParsePlan("crash@serve/mutate:1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := EngineConfig{Seed: 7, ShardRows: 64, Mode: ModeCSR, Mutable: true,
		Obs: reg, Inj: resil.NewInjector(plan, reg)}
	eng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mut.wal")
	log, _, err := OpenWAL(eng, path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(eng, ServerConfig{WAL: log})
	if err != nil {
		t.Fatal(err)
	}
	ops := []dyn.Mutation{{Op: dyn.OpInsert, U: 0, V: 9}}
	if _, err := srv.SubmitMutate(ops); !errors.Is(err, ErrBatchFault) {
		t.Fatalf("faulted batch: %v", err)
	}
	// The path is latched: the log is ahead of the engine.
	if _, err := srv.SubmitMutate([]dyn.Mutation{{Op: dyn.OpInsert, U: 1, V: 5}}); !errors.Is(err, ErrMutateFaulted) {
		t.Fatalf("post-fault batch: %v", err)
	}
	// Reads stay live.
	resp := eng.ServeBatch([]*Request{{Op: OpEmbed, Nodes: []int{0, 9}}}, false)[0]
	if len(resp.Rows) != 2 {
		t.Fatal("read path down after mutation fault")
	}
	srv.Close()
	log.Close()

	// Restart: the committed-but-unapplied batch replays.
	recovered, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64, Mode: ModeCSR, Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	log2, replayed, err := OpenWAL(recovered, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if replayed != 1 || recovered.Epoch() != 1 {
		t.Fatalf("replayed %d at epoch %d, want 1/1", replayed, recovered.Epoch())
	}

	// The uncrashed twin: same engine, same batch, no injection.
	twin, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64, Mode: ModeCSR, Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := twin.Mutate(ops); err != nil {
		t.Fatal(err)
	}
	reqs := coverageRequests(256)
	if !bitEqualResponses(twin.ServeBatch(reqs, false), recovered.ServeBatch(reqs, false)) {
		t.Fatal("recovered engine diverged from the unfaulted twin")
	}
}

// TestMutateQueueLimit: the mutation queue's admission bound rejects
// with ErrMutateQueueFull while the server keeps serving, mirroring
// the read path's 429 semantics.
func TestMutateQueueLimit(t *testing.T) {
	srv, hs := newTestServer(t, EngineConfig{Seed: 7, Mutable: true, Mode: ModeCSR},
		ServerConfig{MutateQueueLimit: 1})
	if _, err := srv.SubmitMutate(nil); !errors.Is(err, ErrEmptyMutations) {
		t.Fatalf("empty batch: %v", err)
	}
	// Pin the queue at its limit without racing the dispatcher: park a
	// pending entry the dispatcher was never kicked for, so the next
	// submission sees a full queue deterministically.
	parked := &mutPending{ops: []dyn.Mutation{{Op: dyn.OpInsert, U: 0, V: 1}}, done: make(chan struct{})}
	srv.mut.mu.Lock()
	srv.mut.queue = append(srv.mut.queue, parked)
	srv.mut.mu.Unlock()
	if _, err := srv.SubmitMutate([]dyn.Mutation{{Op: dyn.OpInsert, U: 2, V: 5}}); !errors.Is(err, ErrMutateQueueFull) {
		t.Fatalf("full queue: %v", err)
	}
	srv.mut.mu.Lock()
	srv.mut.queue = nil
	srv.mut.mu.Unlock()
	close(parked.done)
	// Admission recovers once the queue drains.
	if _, err := srv.SubmitMutate([]dyn.Mutation{{Op: dyn.OpInsert, U: 2, V: 5}}); err != nil {
		t.Fatalf("post-drain submission: %v", err)
	}
	goodRequest(t, hs)
}

// TestServerWALRequiresMutable: pairing a WAL with a read-only engine
// is a config error, not a silent no-op.
func TestServerWALRequiresMutable(t *testing.T) {
	g := testGraph(t, 128)
	mutableEng, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64, Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mut.wal")
	log, _, err := OpenWAL(mutableEng, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	roEng, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(roEng, ServerConfig{WAL: log}); !errors.Is(err, ErrConfig) {
		t.Fatalf("WAL on read-only engine: %v", err)
	}
	if _, err := NewServer(roEng, ServerConfig{MutateQueueLimit: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative mutate queue limit: %v", err)
	}
}
