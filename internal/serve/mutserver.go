package serve

// The server-side mutation path: POST /v1/mutate and its in-process
// twin SubmitMutate feed an admission-bounded queue drained by one
// mutator goroutine — the write-side mirror of the coalescer, with a
// durability step spliced in. Per iteration the mutator takes
// everything queued, appends each batch to the WAL, fsyncs ONCE
// (group commit — the amortization BENCH_mutate measures), then
// applies each batch through Engine.Mutate under resil.Protect and
// acknowledges it. The ordering invariant is WAL-commit-before-ack:
// no client ever observes an applied batch the log could lose. The
// converse window (committed but not yet acknowledged when the
// process dies) replays on restart — mutation durability is
// at-least-once on unacknowledged batches, exactly once on
// acknowledged ones.

import (
	"fmt"
	"sync"

	"repro/internal/dyn"
	"repro/internal/resil"
	"repro/internal/wal"
)

// mutPending is one admitted mutation batch waiting for durability
// and application.
type mutPending struct {
	ops  []dyn.Mutation
	out  MutateOutcome
	err  error
	done chan struct{}
}

// mutator is the single-goroutine mutation dispatcher.
type mutator struct {
	eng   *Engine
	log   *wal.Log // nil = volatile mutations (no durability)
	limit int

	mu      sync.Mutex
	queue   []*mutPending
	closed  bool
	faulted bool
	kick    chan struct{}
	wg      sync.WaitGroup

	inj *resil.Injector
}

func newMutator(eng *Engine, log *wal.Log, limit int) *mutator {
	m := &mutator{
		eng: eng, log: log, limit: limit,
		kick: make(chan struct{}, 1),
		inj:  eng.Injector(),
	}
	m.wg.Add(1)
	go m.run()
	return m
}

// submit admits one batch and blocks until it is durable and applied.
func (m *mutator) submit(ops []dyn.Mutation) (MutateOutcome, error) {
	if len(ops) == 0 {
		return MutateOutcome{}, ErrEmptyMutations
	}
	r := m.eng.Obs()
	p := &mutPending{ops: ops, done: make(chan struct{})}
	m.mu.Lock()
	switch {
	case m.closed:
		m.mu.Unlock()
		return MutateOutcome{}, ErrClosed
	case m.faulted:
		m.mu.Unlock()
		return MutateOutcome{}, ErrMutateFaulted
	case m.limit > 0 && len(m.queue) >= m.limit:
		m.mu.Unlock()
		r.Volatile("serve/mutate/rejected").Inc()
		return MutateOutcome{}, ErrMutateQueueFull
	}
	m.queue = append(m.queue, p)
	m.mu.Unlock()
	select {
	case m.kick <- struct{}{}:
	default:
	}
	<-p.done
	return p.out, p.err
}

func (m *mutator) run() {
	defer m.wg.Done()
	for {
		_, ok := <-m.kick
		for {
			batch := m.take()
			if batch == nil {
				break
			}
			m.exec(batch)
		}
		if !ok {
			return
		}
	}
}

// take removes everything queued — the group whose WAL appends share
// one fsync.
func (m *mutator) take() []*mutPending {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return nil
	}
	batch := m.queue
	m.queue = nil
	return batch
}

// exec makes a group of batches durable under one commit, then
// applies and acknowledges each in order.
func (m *mutator) exec(group []*mutPending) {
	r := m.eng.Obs()
	r.VolatileHist("serve/mutate/queue_depth").Observe(int64(len(group)))

	// Durability first. A failed append or commit fails the WHOLE
	// group without applying anything: none of these batches reached
	// stable storage, so none may mutate the engine.
	if m.log != nil {
		var werr error
		for _, p := range group {
			payload := wal.EncodeBatch(p.ops)
			if _, err := m.log.Append(payload); err != nil {
				werr = err
				break
			}
			r.Counter("serve/wal/records").Inc()
			r.Counter("serve/wal/bytes").Add(int64(len(payload)))
		}
		if werr == nil {
			werr = m.log.Commit()
			r.Volatile("serve/wal/commits").Inc()
		}
		if werr != nil {
			for _, p := range group {
				p.err = fmt.Errorf("%w: %v", ErrWALFault, werr)
				close(p.done)
			}
			return
		}
	}

	// Apply in order. A fault here (injected crash at "serve/mutate",
	// or a genuine apply error) happens AFTER the commit: the log is
	// now ahead of the engine, so the mutation path latches — reads
	// stay live, later mutations are refused, and a restart replays
	// the log back into sync.
	latched := false
	for _, p := range group {
		if latched {
			p.err = ErrMutateFaulted
			close(p.done)
			continue
		}
		err := resil.Protect(func() error {
			m.inj.Exec("serve/mutate")
			out, merr := m.eng.Mutate(p.ops)
			if merr != nil {
				return merr
			}
			p.out = out
			return nil
		})
		if err != nil {
			p.err = fmt.Errorf("%w: %v", ErrBatchFault, err)
			r.Volatile("serve/batch_faults").Inc()
			if m.log != nil {
				latched = true
				m.mu.Lock()
				m.faulted = true
				m.mu.Unlock()
			}
		}
		close(p.done)
	}
}

// close stops the mutator; queued batches not yet taken fail with
// ErrClosed.
func (m *mutator) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	waiting := m.queue
	m.queue = nil
	m.mu.Unlock()
	for _, p := range waiting {
		p.err = ErrClosed
		close(p.done)
	}
	close(m.kick)
	m.wg.Wait()
}

// OpenWAL opens (or creates) the write-ahead log at path for engine e
// and replays every record beyond the engine's current epoch —
// boot-time crash recovery. Record sequence numbers must continue the
// epoch exactly: records at or below the epoch are already inside the
// snapshot the engine restored from and are skipped; the first record
// beyond it must be epoch+1 (ErrWALGap otherwise — a log from a
// different history). Returns the log positioned for appending and
// the number of batches replayed. The caller owns closing the log.
func OpenWAL(e *Engine, path string) (*wal.Log, int, error) {
	if !e.Mutable() {
		return nil, 0, ErrNotMutable
	}
	log, recs, err := wal.Open(path, e.Fingerprint())
	if err != nil {
		return nil, 0, err
	}
	replayed := 0
	for _, rec := range recs {
		epoch := e.Epoch()
		if rec.Seq <= epoch {
			continue
		}
		if rec.Seq != epoch+1 {
			log.Close()
			return nil, replayed, fmt.Errorf("%w: record seq %d, engine epoch %d", ErrWALGap, rec.Seq, epoch)
		}
		ops, err := wal.DecodeBatch(rec.Payload)
		if err != nil {
			log.Close()
			return nil, replayed, fmt.Errorf("serve: WAL replay: record %d: %w", rec.Seq, err)
		}
		if _, err := e.Mutate(ops); err != nil {
			log.Close()
			return nil, replayed, fmt.Errorf("serve: WAL replay: record %d: %w", rec.Seq, err)
		}
		replayed++
	}
	return log, replayed, nil
}
