// Package serve is the online inference service layer: a long-running
// engine that loads a reordered, V:N:M-compressed graph once and then
// answers node-set embedding/classification queries by coalescing
// concurrent requests into batched, shard-level SpMM dispatches — the
// paper's reorder-once/compress-once, multiply-many amortization
// argument turned into a serving system (ROADMAP item 1, the
// "millions of users" leg).
//
// Architecture (DESIGN.md §13):
//
//   - Engine owns the immutable operands: the symmetric-normalized
//     adjacency of the reordered graph, sliced into row-band shards,
//     each with a lazily built V:N:M compressed handle; the shared
//     dense right-hand side (the hop-propagated feature matrix); and a
//     seeded linear classification head. Per-shard dispatch routes
//     through a fixed kernel mode or the calibrated execution planner
//     (internal/plan), exactly like gnn.EngineAuto.
//   - Two LRU caches amortize repeated traffic: per-node aggregation
//     rows (a shard dispatch fills every row of its band) and
//     compressed shard handles (rebuilt bit-identically on re-entry).
//     Eviction is deterministic given the operation sequence.
//   - The coalescer batches concurrent requests behind a bounded
//     queue: admission control rejects beyond QueueLimit (HTTP 429),
//     and past DegradeDepth batches ride the degradation ladder's load
//     rung — gathered-row CSR compute without cache fill. The resil
//     rung mirrors gnn.ValidateOperator: a shard whose compressed
//     metadata fails validation (or whose build the injector faults)
//     falls back to CSR for its lifetime.
//
// Determinism contract: responses are pure functions of (graph, engine
// config). Coalescing, caching and worker counts never change response
// bits — a batch dispatches whole shards, so a row's value does not
// depend on which other rows were requested alongside it
// (check.ServeEquivalence). The degradation paths change float32
// summation order and are tolerance-bounded instead, mirroring
// check.SampledEngineAgreement. Metrics follow the obs segregation
// rules: request/row/error counters are deterministic for a fixed
// request multiset; batch counts, batch sizes, queue depths and cache
// hit/miss/eviction counts are scheduling-dependent and live in the
// volatile sections (volatile counters, VolatileHist, VolatileSpan).
package serve

// serveError is a typed constant error: the package keeps sentinel
// errors as consts so the kernel-package purity lint (no package-level
// vars) applies here too.
type serveError string

func (e serveError) Error() string { return string(e) }

const (
	// ErrBadOp is returned for a request op outside {embed, classify}.
	ErrBadOp = serveError("serve: unknown op")
	// ErrEmptyNodes is returned for a request with no node ids.
	ErrEmptyNodes = serveError("serve: empty node set")
	// ErrDuplicateNode is returned when a request names a node twice.
	ErrDuplicateNode = serveError("serve: duplicate node id")
	// ErrNodeRange is returned for a negative or >= n node id.
	ErrNodeRange = serveError("serve: node id out of range")
	// ErrOversized is returned when a request exceeds the server's
	// MaxRequestNodes admission bound.
	ErrOversized = serveError("serve: request exceeds node budget")
	// ErrQueueFull is the admission-control rejection: the bounded
	// request queue is at QueueLimit (HTTP 429).
	ErrQueueFull = serveError("serve: request queue full")
	// ErrClosed is returned once the server has shut down.
	ErrClosed = serveError("serve: server closed")
	// ErrConfig is returned for an invalid engine or server
	// configuration.
	ErrConfig = serveError("serve: invalid configuration")
	// ErrBatchFault is returned to every request of a batch whose
	// dispatch failed irrecoverably (an injected crash the dispatcher
	// captured); the server stays serviceable for later requests.
	ErrBatchFault = serveError("serve: batch dispatch fault")
	// ErrNotMutable is returned for a mutation against an engine built
	// without EngineConfig.Mutable (HTTP 501).
	ErrNotMutable = serveError("serve: engine is not mutable")
	// ErrEmptyMutations is returned for a mutation request carrying no
	// operations.
	ErrEmptyMutations = serveError("serve: empty mutation batch")
	// ErrMutateQueueFull is the mutation path's admission rejection:
	// the bounded mutation queue is at MutateQueueLimit (HTTP 429).
	ErrMutateQueueFull = serveError("serve: mutation queue full")
	// ErrWALFault reports a write-ahead-log append or commit failure —
	// the batch was NOT made durable and was NOT applied.
	ErrWALFault = serveError("serve: WAL commit failed")
	// ErrWALGap reports a log whose record sequence does not continue
	// the engine's epoch during recovery (snapshot and WAL from
	// different histories).
	ErrWALGap = serveError("serve: WAL sequence does not continue snapshot epoch")
	// ErrMutateFaulted latches the mutation path after a batch faulted
	// AFTER its WAL commit: the log is ahead of the engine, so further
	// in-process mutation would desync epoch from sequence. Reads stay
	// live; a restart replays the log and recovers (HTTP 503).
	ErrMutateFaulted = serveError("serve: mutation path faulted; restart recovers from the WAL")
)
