package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/dyn"
)

// Op names a query operation.
const (
	// OpEmbed returns the aggregated embedding row of each node.
	OpEmbed = "embed"
	// OpClassify returns the argmax class of each node under the
	// engine's linear head.
	OpClassify = "classify"
)

// Request is one node-set query: the wire format POST /v1/query
// accepts and the unit the coalescer batches.
type Request struct {
	Op    string `json:"op"`
	Nodes []int  `json:"nodes"`
}

// ParseRequest decodes a request from its canonical JSON wire form.
// The decoder is total (any byte slice yields a request or a typed
// error, never a panic) and strict: unknown fields, trailing data,
// an unknown op, an empty node set, duplicate node ids and negative
// node ids are all rejected. Upper-bound node validation needs the
// graph size and happens at submission (Engine.ValidateRequest).
//
// Fixed point: for any request ParseRequest accepts,
// ParseRequest(req.Render()) returns an identical request
// (check.FuzzServeRequestParse).
func ParseRequest(data []byte) (*Request, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Request
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("serve: malformed request: %w", err)
	}
	// Reject trailing content after the JSON value ("{}garbage").
	if err := trailingContent(dec); err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// trailingContent errors when the decoder's input has tokens left.
func trailingContent(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("serve: malformed request: trailing data after JSON value")
	}
	return nil
}

// validate applies the wire-level request invariants (everything
// checkable without the graph size).
func (r *Request) validate() error {
	if r.Op != OpEmbed && r.Op != OpClassify {
		return fmt.Errorf("%w: %q", ErrBadOp, r.Op)
	}
	if len(r.Nodes) == 0 {
		return ErrEmptyNodes
	}
	seen := make(map[int]struct{}, len(r.Nodes))
	for _, v := range r.Nodes {
		if v < 0 {
			return fmt.Errorf("%w: %d", ErrNodeRange, v)
		}
		if _, dup := seen[v]; dup {
			return fmt.Errorf("%w: %d", ErrDuplicateNode, v)
		}
		seen[v] = struct{}{}
	}
	return nil
}

// Render returns the canonical wire form of the request. Only valid
// on a request that passes validate (field order and formatting are
// fixed by encoding/json, so Render is deterministic).
func (r *Request) Render() []byte {
	data, err := json.Marshal(r)
	if err != nil {
		// A Request of plain ints cannot fail to marshal.
		panic(fmt.Sprintf("serve: render: %v", err))
	}
	return data
}

// Equal reports structural equality of two requests.
func (r *Request) Equal(o *Request) bool {
	if r.Op != o.Op || len(r.Nodes) != len(o.Nodes) {
		return false
	}
	for i, v := range r.Nodes {
		if o.Nodes[i] != v {
			return false
		}
	}
	return true
}

// Response is the answer to one request: embedding rows for OpEmbed
// (Rows[i] is the aggregation row of Nodes[i]), class indices for
// OpClassify.
type Response struct {
	Op      string      `json:"op"`
	Rows    [][]float32 `json:"rows,omitempty"`
	Classes []int       `json:"classes,omitempty"`
	// Epoch is the mutation epoch the response was computed against
	// (0 on read-only engines, omitted on the wire). Deliberately
	// EXCLUDED from Checksum: the digest compares response content
	// across engines whose epochs may legitimately differ.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Render returns the response's JSON wire form.
func (r *Response) Render() []byte {
	data, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("serve: render response: %v", err))
	}
	return data
}

// ParseResponse decodes a response from its wire form (the HTTP
// loadgen path; checksums computed from the parsed form match the
// in-process ones because float32 JSON round-trips exactly).
func ParseResponse(data []byte) (*Response, error) {
	var r Response
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("serve: malformed response: %w", err)
	}
	return &r, nil
}

// Checksum digests the response content — FNV-1a over the op, the
// float32 bit patterns of every row, and the class indices. Two
// responses with identical bits have identical checksums, which is
// how the load generator's order-independent run digest detects any
// batching- or caching-induced divergence.
func (r *Response) Checksum() uint64 {
	h := fnv.New64a()
	h.Write([]byte(r.Op))
	var buf [4]byte
	for _, row := range r.Rows {
		for _, v := range row {
			bits := math.Float32bits(v)
			buf[0] = byte(bits)
			buf[1] = byte(bits >> 8)
			buf[2] = byte(bits >> 16)
			buf[3] = byte(bits >> 24)
			h.Write(buf[:])
		}
	}
	for _, c := range r.Classes {
		bits := uint32(int32(c))
		buf[0] = byte(bits)
		buf[1] = byte(bits >> 8)
		buf[2] = byte(bits >> 16)
		buf[3] = byte(bits >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// MutateRequest is one mutation batch: the wire format POST
// /v1/mutate accepts. Ops carries the dyn stream grammar
// ("add@u-v; del@u-v", original vertex ids) so the same textual form
// flows from -mutate flags, load scripts and the HTTP surface.
type MutateRequest struct {
	Ops string `json:"ops"`
}

// ParseMutateRequest decodes a mutation request: strict and total
// like ParseRequest. The ops string must parse under the dyn grammar
// and carry at least one mutation; vertex upper bounds are validated
// engine-side (skip-and-count, reported per op in the response).
func ParseMutateRequest(data []byte) (*MutateRequest, []dyn.Mutation, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r MutateRequest
	if err := dec.Decode(&r); err != nil {
		return nil, nil, fmt.Errorf("serve: malformed mutation request: %w", err)
	}
	if err := trailingContent(dec); err != nil {
		return nil, nil, err
	}
	st, err := dyn.ParseMutations(r.Ops)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: malformed mutation request: %w", err)
	}
	if st == nil || len(st.Ops) == 0 {
		return nil, nil, ErrEmptyMutations
	}
	return &r, st.Ops, nil
}

// MutateResponse is the answer to one mutation batch.
type MutateResponse struct {
	// Epoch is the mutation epoch this batch created.
	Epoch uint64 `json:"epoch"`
	// Applied/Rejected count the batch's accepted and skipped ops.
	Applied  int `json:"applied"`
	Rejected int `json:"rejected"`
	// RepairSwaps counts accepted localized repair swaps; Rebuilt
	// reports a staleness-budget full re-reorder.
	RepairSwaps int  `json:"repair_swaps"`
	Rebuilt     bool `json:"rebuilt,omitempty"`
}

// Render returns the response's JSON wire form.
func (r *MutateResponse) Render() []byte {
	data, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("serve: render mutate response: %v", err))
	}
	return data
}

// ParseMutateResponse decodes a mutation response (the loadgen path).
func ParseMutateResponse(data []byte) (*MutateResponse, error) {
	var r MutateResponse
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("serve: malformed mutate response: %w", err)
	}
	return &r, nil
}

// wireError is the JSON error body the HTTP surface returns.
type wireError struct {
	Error string `json:"error"`
}
