package serve

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// TestLRUDegenerateCapacity pins the newLRU contract for capacity
// <= 0: the cache is disabled — every get misses, every put is
// dropped without invoking onEvict, Len stays 0 — and nothing panics
// or grows without bound.
func TestLRUDegenerateCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1, -1 << 30} {
		evicted := 0
		c := newLRU[int](capacity)
		c.onEvict = func(int, int) { evicted++ }
		for i := 0; i < 1000; i++ {
			c.put(i%7, i) // refresh keys too: still dropped
			if _, ok := c.get(i % 7); ok {
				t.Fatalf("cap=%d: get hit on a disabled cache", capacity)
			}
		}
		if c.Len() != 0 {
			t.Fatalf("cap=%d: disabled cache grew to %d entries", capacity, c.Len())
		}
		if evicted != 0 {
			t.Fatalf("cap=%d: onEvict fired %d times on dropped puts", capacity, evicted)
		}
	}
}

// TestLRUEvictionOrder pins strict-recency eviction with onEvict
// observation at a tiny positive capacity.
func TestLRUEvictionOrder(t *testing.T) {
	var evicted []int
	c := newLRU[string](2)
	c.onEvict = func(k int, _ string) { evicted = append(evicted, k) }
	c.put(1, "a")
	c.put(2, "b")
	if _, ok := c.get(1); !ok { // promote 1; LRU is now 2
		t.Fatal("expected hit on 1")
	}
	c.put(3, "c") // evicts 2
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted %v, want [2]", evicted)
	}
	if _, ok := c.get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	c.put(1, "a2") // refresh, no eviction
	if v, ok := c.get(1); !ok || v != "a2" {
		t.Fatalf("refresh lost: %q %v", v, ok)
	}
	if c.Len() != 2 || len(evicted) != 1 {
		t.Fatalf("len=%d evictions=%v", c.Len(), evicted)
	}
}

// TestTinyCacheRetainsRequestedRows is the regression for the
// band-fill churn defect: with CacheRows smaller than a shard band, a
// miss used to fill the whole band through the cache, evicting every
// previously hot row and retaining only the band's tail — rows nobody
// requested — so a tiny cache could never produce a hit for repeated
// traffic. After the fix, a repeated request hits. This test fails
// before the fix with zero cache hits.
func TestTinyCacheRetainsRequestedRows(t *testing.T) {
	g, err := graph.NewFromEdges(128, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e, err := NewEngine(g, EngineConfig{
		Seed: 7, ShardRows: 64, CacheRows: 2, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Op: OpEmbed, Nodes: []int{3, 4}}
	if err := e.ValidateRequest(req); err != nil {
		t.Fatal(err)
	}
	first := e.ServeBatch([]*Request{req}, false)
	hitsBefore := reg.Snapshot().Volatile["serve/cache/hit"]
	second := e.ServeBatch([]*Request{req}, false)
	hits := reg.Snapshot().Volatile["serve/cache/hit"] - hitsBefore
	if hits != 2 {
		t.Fatalf("repeat request got %d cache hits, want 2 (tiny cache retained band tail instead of requested rows)", hits)
	}
	// Caching is invisible in response bits.
	for i := range first[0].Rows {
		for j := range first[0].Rows[i] {
			if first[0].Rows[i][j] != second[0].Rows[i][j] {
				t.Fatal("cached response differs from computed response")
			}
		}
	}
}
