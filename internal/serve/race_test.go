package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dyn"
	"repro/internal/obs"
	"repro/internal/resil"
)

// TestRaceHammer drives 8 concurrent closed-loop clients against an
// in-process server with a tiny row cache (constant eviction churn),
// a one-shard handle cache, and one injected straggler — the
// workload the ci.sh GOMAXPROCS=2 race matrix runs under -race. The
// concurrent responses must be bit-identical to a serial replay of
// the same script, which is what makes the hammer a correctness test
// rather than just a crash test.
func TestRaceHammer(t *testing.T) {
	g := testGraph(t, 512)
	plan, err := resil.ParsePlan("straggler@serve/batch:3:5ms")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mk := func(inj *resil.Injector) *Engine {
		eng, err := NewEngine(g, EngineConfig{
			Seed: 11, ShardRows: 64, CacheRows: 24, ShardCap: 2,
			Obs: reg, Inj: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	script, err := GenerateScript(ScriptConfig{
		Seed: 99, Clients: 8, Requests: 25, N: 512, MaxNodes: 6, ClassifyEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference: same script, no faults, one at a time.
	ref := mk(nil)
	want := make([][]uint64, len(script))
	for c, reqs := range script {
		want[c] = make([]uint64, len(reqs))
		for i, r := range reqs {
			want[c][i] = ref.ServeBatch([]*Request{r}, false)[0].Checksum()
		}
	}

	srv, err := NewServer(mk(resil.NewInjector(plan, reg)), ServerConfig{
		QueueLimit: 64, DegradeDepth: 0, // keep the bit-exact path
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got := make([][]uint64, len(script))
	var wg sync.WaitGroup
	errs := make(chan error, len(script))
	for c, reqs := range script {
		got[c] = make([]uint64, len(reqs))
		wg.Add(1)
		go func(c int, reqs []*Request) {
			defer wg.Done()
			for i, r := range reqs {
				resp, err := srv.Submit(r)
				if err != nil {
					errs <- err
					return
				}
				got[c][i] = resp.Checksum()
			}
		}(c, reqs)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for c := range want {
		for i := range want[c] {
			if got[c][i] != want[c][i] {
				t.Fatalf("client %d request %d: concurrent checksum %x != serial %x", c, i, got[c][i], want[c][i])
			}
		}
	}
	// The cache and batch machinery must actually have been exercised.
	s := reg.Snapshot()
	if s.Volatile["serve/cache/evict"] == 0 {
		t.Error("no row-cache eviction churn under the hammer")
	}
	if s.Counters["serve/requests"] == 0 {
		t.Error("serve/requests not counted")
	}
	if s.Counters["resil/injected/straggler"] == 0 {
		t.Error("injected straggler never fired")
	}
}

// TestMutationHammer drives 8 concurrent readers against 1 mutator
// under -race: the epoch-fence correctness claim. Because ServeBatch
// stamps Response.Epoch under the same lock hold that picks the
// operands, every response must be a pure function of some PREFIX of
// the mutation stream — its checksum must equal the twin-precomputed
// checksum for exactly the epoch it reports, and no query may error
// while mutations land.
func TestMutationHammer(t *testing.T) {
	const n = 256
	g := testGraph(t, n)
	cfg := EngineConfig{Seed: 11, ShardRows: 64, CacheRows: 24, ShardCap: 2, Mode: ModeCSR}

	script, err := GenerateMixedScript(MixedScriptConfig{
		Seed: 5, Clients: 1, Requests: 12, N: n, WriteRatio: 1, MutOps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	bs := make([][]dyn.Mutation, len(script[0]))
	for i, slot := range script[0] {
		bs[i] = slot.Muts
	}
	probe := &Request{Op: OpEmbed, Nodes: []int{0, 3, 17, 63, n / 2, n - 1}}

	// Twin: the expected probe checksum at EVERY epoch, applied
	// batch by batch on an identical engine.
	twin := mutableEngine(t, g, cfg)
	expected := make([]uint64, len(bs)+1)
	expected[0] = twin.ServeBatch([]*Request{probe}, false)[0].Checksum()
	for i, b := range bs {
		if _, err := twin.Mutate(b); err != nil {
			t.Fatal(err)
		}
		twin.WaitWarm()
		expected[i+1] = twin.ServeBatch([]*Request{probe}, false)[0].Checksum()
	}
	cfg.Perm = twin.Perm() // skip the (identical) re-reorder

	live := mutableEngine(t, g, cfg)
	srv, err := NewServer(live, ServerConfig{QueueLimit: 64, DegradeDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const readers, iters = 8, 30
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := srv.Submit(probe)
				if err != nil {
					errs <- fmt.Errorf("reader %d iter %d: %v", r, i, err)
					return
				}
				ep := resp.Epoch
				if ep > uint64(len(bs)) {
					errs <- fmt.Errorf("reader %d iter %d: epoch %d beyond stream", r, i, ep)
					return
				}
				if got := resp.Checksum(); got != expected[ep] {
					errs <- fmt.Errorf("reader %d iter %d: epoch %d checksum %x, want %x — response is not a pure function of the stream prefix", r, i, ep, got, expected[ep])
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, b := range bs {
			mr, err := srv.SubmitMutate(b)
			if err != nil {
				errs <- fmt.Errorf("mutator batch %d: %v", i, err)
				return
			}
			if mr.Epoch != uint64(i+1) {
				errs <- fmt.Errorf("mutator batch %d: epoch %d", i, mr.Epoch)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Settled state: the final epoch's bits, exactly.
	live.WaitWarm()
	resp, err := srv.Submit(probe)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != uint64(len(bs)) {
		t.Fatalf("final epoch %d, want %d", resp.Epoch, len(bs))
	}
	if got := resp.Checksum(); got != expected[len(bs)] {
		t.Fatalf("final checksum %x, want %x", got, expected[len(bs)])
	}
}
