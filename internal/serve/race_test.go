package serve

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/resil"
)

// TestRaceHammer drives 8 concurrent closed-loop clients against an
// in-process server with a tiny row cache (constant eviction churn),
// a one-shard handle cache, and one injected straggler — the
// workload the ci.sh GOMAXPROCS=2 race matrix runs under -race. The
// concurrent responses must be bit-identical to a serial replay of
// the same script, which is what makes the hammer a correctness test
// rather than just a crash test.
func TestRaceHammer(t *testing.T) {
	g := testGraph(t, 512)
	plan, err := resil.ParsePlan("straggler@serve/batch:3:5ms")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mk := func(inj *resil.Injector) *Engine {
		eng, err := NewEngine(g, EngineConfig{
			Seed: 11, ShardRows: 64, CacheRows: 24, ShardCap: 2,
			Obs: reg, Inj: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	script, err := GenerateScript(ScriptConfig{
		Seed: 99, Clients: 8, Requests: 25, N: 512, MaxNodes: 6, ClassifyEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference: same script, no faults, one at a time.
	ref := mk(nil)
	want := make([][]uint64, len(script))
	for c, reqs := range script {
		want[c] = make([]uint64, len(reqs))
		for i, r := range reqs {
			want[c][i] = ref.ServeBatch([]*Request{r}, false)[0].Checksum()
		}
	}

	srv, err := NewServer(mk(resil.NewInjector(plan, reg)), ServerConfig{
		QueueLimit: 64, DegradeDepth: 0, // keep the bit-exact path
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got := make([][]uint64, len(script))
	var wg sync.WaitGroup
	errs := make(chan error, len(script))
	for c, reqs := range script {
		got[c] = make([]uint64, len(reqs))
		wg.Add(1)
		go func(c int, reqs []*Request) {
			defer wg.Done()
			for i, r := range reqs {
				resp, err := srv.Submit(r)
				if err != nil {
					errs <- err
					return
				}
				got[c][i] = resp.Checksum()
			}
		}(c, reqs)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for c := range want {
		for i := range want[c] {
			if got[c][i] != want[c][i] {
				t.Fatalf("client %d request %d: concurrent checksum %x != serial %x", c, i, got[c][i], want[c][i])
			}
		}
	}
	// The cache and batch machinery must actually have been exercised.
	s := reg.Snapshot()
	if s.Volatile["serve/cache/evict"] == 0 {
		t.Error("no row-cache eviction churn under the hammer")
	}
	if s.Counters["serve/requests"] == 0 {
		t.Error("serve/requests not counted")
	}
	if s.Counters["resil/injected/straggler"] == 0 {
		t.Error("injected straggler never fired")
	}
}
