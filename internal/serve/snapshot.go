package serve

// Engine snapshot/restore over the sogre-shard/v1 container. The
// expensive part of engine construction is the reordering run; the
// graph and the permutation it produced determine everything else
// (features, right-hand side, shards are all derived deterministically
// from (graph, perm, config)). A snapshot therefore stores exactly
// the graph, the permutation, and a config fingerprint; restore
// rebuilds the engine with the permutation adopted — skipping the
// reorder — and, because construction is deterministic, the restored
// engine answers every query with bits identical to the original.
//
// A MUTABLE engine snapshots its CURRENT state, not its construction
// state: the graph as mutated so far (reconstructed in original
// numbering, so the stored form is permutation-independent), the
// maintained permutation, the mutation epoch, and the dyn staleness
// baseline. The baseline matters for bit-identity: a restored engine
// replaying a WAL must make the same rebuild decisions the
// uninterrupted run made, and those price drift against the baseline
// of the last full reorder — which may predate the snapshot
// (check.RecoveryEquivalence).

import (
	"encoding/json"
	"fmt"

	"repro/internal/graph"
	"repro/internal/shard"
)

// snapshotMeta is the config fingerprint stored beside the graph and
// permutation. Restore refuses a snapshot whose fingerprint
// contradicts the requested config — a snapshot warmed for one
// response space must not silently answer for another.
type snapshotMeta struct {
	Format     string `json:"format"`
	V          int    `json:"v"`
	N          int    `json:"n"`
	M          int    `json:"m"`
	Hops       int    `json:"hops"`
	FeatureDim int    `json:"feature_dim"`
	Classes    int    `json:"classes"`
	Seed       int64  `json:"seed"`
	ShardRows  int    `json:"shard_rows"`

	// Mutation state (zero for read-only engines and pre-mutation
	// snapshots; absent in older snapshot files, which decode to zero
	// and restore exactly as before).
	Mutable     bool    `json:"mutable,omitempty"`
	Epoch       uint64  `json:"epoch,omitempty"`
	BasePScore  int     `json:"base_pscore,omitempty"`
	BaseMBScore int     `json:"base_mbscore,omitempty"`
	SavedCycles float64 `json:"saved_cycles,omitempty"`
}

// snapshotFormat names the meta payload schema.
const snapshotFormat = "sogre-serve-snapshot/v1"

// ErrSnapshot reports a snapshot whose fingerprint does not match the
// restoring config.
const ErrSnapshot = serveError("serve: snapshot/config mismatch")

// SnapshotMismatch reports WHICH fingerprint field contradicted the
// snapshot, as a typed detail: errors.As extracts the field and both
// values, and errors.Is(err, ErrSnapshot) still matches through
// Unwrap.
type SnapshotMismatch struct {
	// Field names the mismatched fingerprint field (e.g. "pattern V",
	// "seed").
	Field string
	// Have is the restoring config's value, Want the snapshot's.
	Have, Want int64
}

func (m *SnapshotMismatch) Error() string {
	return fmt.Sprintf("%s: %s: config has %d, snapshot has %d",
		ErrSnapshot.Error(), m.Field, m.Have, m.Want)
}

func (m *SnapshotMismatch) Unwrap() error { return ErrSnapshot }

// Snapshot writes the engine's warm state to path: the (current)
// graph, the reordering permutation, and the response-space
// fingerprint — plus, on mutable engines, the epoch and staleness
// baseline. Safe against concurrent queries and mutations; the
// snapshot is a consistent cut at one epoch.
func (e *Engine) Snapshot(path string) error {
	if e.dyn != nil {
		// Lock order: muMut before mu, same as Mutate — the snapshot
		// must not interleave with a half-applied batch.
		e.muMut.Lock()
		defer e.muMut.Unlock()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	meta := snapshotMeta{
		Format:     snapshotFormat,
		V:          e.cfg.Pattern.V,
		N:          e.cfg.Pattern.N,
		M:          e.cfg.Pattern.M,
		Hops:       e.cfg.Hops,
		FeatureDim: e.cfg.FeatureDim,
		Classes:    e.cfg.Classes,
		Seed:       e.cfg.Seed,
		ShardRows:  e.cfg.ShardRows,
	}
	g := e.src
	if e.dyn != nil {
		// Reconstruct the current graph in ORIGINAL numbering: the
		// maintained matrix lives in position space; pulling it back
		// through the inverse permutation puts vertex v at node v, so
		// restore re-derives the identical reordered matrix by applying
		// the stored permutation again.
		rg := graph.FromBitMatrix(e.dyn.Matrix())
		var err error
		g, err = rg.ApplyPermutation(e.inv)
		if err != nil {
			return fmt.Errorf("serve: snapshot: %w", err)
		}
		st := e.dyn.Stats()
		meta.Mutable = true
		meta.Epoch = e.epoch
		meta.BasePScore = st.BasePScore
		meta.BaseMBScore = st.BaseMBScore
		meta.SavedCycles = st.SavedCyclesPerEpoch
	}
	w := shard.NewWriter()
	if err := w.AddGraph(g); err != nil {
		return err
	}
	if err := w.AddPerm(e.perm); err != nil {
		return err
	}
	rawMeta, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if err := w.AddRaw(shard.TagMeta, rawMeta); err != nil {
		return err
	}
	return shard.WriteFile(path, w)
}

// RestoreEngine rebuilds an engine from a snapshot, adopting the
// stored permutation (no reordering run). cfg plays the same role as
// in NewEngine; its response-space fields must agree with the
// snapshot's fingerprint (zero values adopt the snapshot's; a
// mismatch is a *SnapshotMismatch naming the field), and any Perm it
// carries is rejected — the snapshot owns the permutation. A snapshot
// taken mid-mutation-stream restores at its recorded epoch with the
// dyn staleness baseline re-adopted, ready for WAL replay
// (serve.OpenWAL).
func RestoreEngine(path string, cfg EngineConfig) (*Engine, error) {
	if cfg.Perm != nil {
		return nil, fmt.Errorf("%w: RestoreEngine derives Perm from the snapshot", ErrConfig)
	}
	f, closeFn, err := shard.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer closeFn()
	rawMeta, err := f.Raw(shard.TagMeta, 0)
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := json.Unmarshal(rawMeta, &meta); err != nil {
		return nil, fmt.Errorf("%w: meta section: %v", ErrSnapshot, err)
	}
	if meta.Format != snapshotFormat {
		return nil, fmt.Errorf("%w: meta format %q, want %q", ErrSnapshot, meta.Format, snapshotFormat)
	}
	// Zero config fields adopt the snapshot's values; non-zero fields
	// must match it exactly.
	if err := adoptInt(&cfg.Pattern.V, meta.V, "pattern V"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.Pattern.N, meta.N, "pattern N"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.Pattern.M, meta.M, "pattern M"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.Hops, meta.Hops, "hops"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.FeatureDim, meta.FeatureDim, "feature dim"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.Classes, meta.Classes, "classes"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.ShardRows, meta.ShardRows, "shard rows"); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = meta.Seed
	} else if cfg.Seed != meta.Seed {
		return nil, &SnapshotMismatch{Field: "seed", Have: cfg.Seed, Want: meta.Seed}
	}
	g, err := f.Graph(0)
	if err != nil {
		return nil, err
	}
	perm, err := f.Perm(0)
	if err != nil {
		return nil, err
	}
	cfg.Perm = perm
	e, err := NewEngine(g, cfg)
	if err != nil {
		return nil, err
	}
	if meta.Epoch > 0 || meta.Mutable {
		e.epoch = meta.Epoch
		e.obs.Gauge("serve/epoch/seq").Set(float64(meta.Epoch))
	}
	if meta.Mutable && e.dyn != nil {
		e.dyn.RestoreBaseline(meta.BasePScore, meta.BaseMBScore, meta.SavedCycles)
	}
	return e, nil
}

func adoptInt(field *int, snap int, name string) error {
	if *field == 0 {
		*field = snap
		return nil
	}
	if *field != snap {
		return &SnapshotMismatch{Field: name, Have: int64(*field), Want: int64(snap)}
	}
	return nil
}
