package serve

// Engine snapshot/restore over the sogre-shard/v1 container. The
// expensive part of engine construction is the reordering run; the
// graph and the permutation it produced determine everything else
// (features, right-hand side, shards are all derived deterministically
// from (graph, perm, config)). A snapshot therefore stores exactly
// the graph, the permutation, and a config fingerprint; restore
// rebuilds the engine with the permutation adopted — skipping the
// reorder — and, because construction is deterministic, the restored
// engine answers every query with bits identical to the original.

import (
	"encoding/json"
	"fmt"

	"repro/internal/shard"
)

// snapshotMeta is the config fingerprint stored beside the graph and
// permutation. Restore refuses a snapshot whose fingerprint
// contradicts the requested config — a snapshot warmed for one
// response space must not silently answer for another.
type snapshotMeta struct {
	Format     string `json:"format"`
	V          int    `json:"v"`
	N          int    `json:"n"`
	M          int    `json:"m"`
	Hops       int    `json:"hops"`
	FeatureDim int    `json:"feature_dim"`
	Classes    int    `json:"classes"`
	Seed       int64  `json:"seed"`
	ShardRows  int    `json:"shard_rows"`
}

// snapshotFormat names the meta payload schema.
const snapshotFormat = "sogre-serve-snapshot/v1"

// ErrSnapshot reports a snapshot whose fingerprint does not match the
// restoring config.
const ErrSnapshot = serveError("serve: snapshot/config mismatch")

// Snapshot writes the engine's warm state to path: the source graph,
// the reordering permutation, and the response-space fingerprint.
func (e *Engine) Snapshot(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	w := shard.NewWriter()
	if err := w.AddGraph(e.src); err != nil {
		return err
	}
	if err := w.AddPerm(e.perm); err != nil {
		return err
	}
	meta, err := json.Marshal(snapshotMeta{
		Format:     snapshotFormat,
		V:          e.cfg.Pattern.V,
		N:          e.cfg.Pattern.N,
		M:          e.cfg.Pattern.M,
		Hops:       e.cfg.Hops,
		FeatureDim: e.cfg.FeatureDim,
		Classes:    e.cfg.Classes,
		Seed:       e.cfg.Seed,
		ShardRows:  e.cfg.ShardRows,
	})
	if err != nil {
		return err
	}
	if err := w.AddRaw(shard.TagMeta, meta); err != nil {
		return err
	}
	return shard.WriteFile(path, w)
}

// RestoreEngine rebuilds an engine from a snapshot, adopting the
// stored permutation (no reordering run). cfg plays the same role as
// in NewEngine; its response-space fields must agree with the
// snapshot's fingerprint (zero values adopt the snapshot's), and any
// Perm it carries is rejected — the snapshot owns the permutation.
func RestoreEngine(path string, cfg EngineConfig) (*Engine, error) {
	if cfg.Perm != nil {
		return nil, fmt.Errorf("%w: RestoreEngine derives Perm from the snapshot", ErrConfig)
	}
	f, closeFn, err := shard.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer closeFn()
	rawMeta, err := f.Raw(shard.TagMeta, 0)
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := json.Unmarshal(rawMeta, &meta); err != nil {
		return nil, fmt.Errorf("%w: meta section: %v", ErrSnapshot, err)
	}
	if meta.Format != snapshotFormat {
		return nil, fmt.Errorf("%w: meta format %q, want %q", ErrSnapshot, meta.Format, snapshotFormat)
	}
	// Zero config fields adopt the snapshot's values; non-zero fields
	// must match it exactly.
	if err := adoptInt(&cfg.Pattern.V, meta.V, "pattern V"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.Pattern.N, meta.N, "pattern N"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.Pattern.M, meta.M, "pattern M"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.Hops, meta.Hops, "hops"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.FeatureDim, meta.FeatureDim, "feature dim"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.Classes, meta.Classes, "classes"); err != nil {
		return nil, err
	}
	if err := adoptInt(&cfg.ShardRows, meta.ShardRows, "shard rows"); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = meta.Seed
	} else if cfg.Seed != meta.Seed {
		return nil, fmt.Errorf("%w: seed %d, snapshot has %d", ErrSnapshot, cfg.Seed, meta.Seed)
	}
	g, err := f.Graph(0)
	if err != nil {
		return nil, err
	}
	perm, err := f.Perm(0)
	if err != nil {
		return nil, err
	}
	cfg.Perm = perm
	return NewEngine(g, cfg)
}

func adoptInt(field *int, snap int, name string) error {
	if *field == 0 {
		*field = snap
		return nil
	}
	if *field != snap {
		return fmt.Errorf("%w: %s %d, snapshot has %d", ErrSnapshot, name, *field, snap)
	}
	return nil
}
