package serve

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/resil"
)

// pending is one admitted request waiting for its batch.
type pending struct {
	req  *Request
	resp *Response
	err  error
	done chan struct{}
}

// coalescer is the batching-by-backpressure request scheduler: an
// admission-bounded FIFO drained by one dispatcher goroutine that
// takes everything queued (up to the batch caps) per iteration.
// Under light load batches degenerate to singletons; under
// concurrency the queue fills while a dispatch runs and the next
// iteration coalesces it — no timer needed (Window adds an optional
// fixed collection delay on top).
type coalescer struct {
	eng *Engine
	cfg ServerConfig

	mu     sync.Mutex
	queue  []*pending
	closed bool
	kick   chan struct{}
	wg     sync.WaitGroup

	inj *resil.Injector
}

func newCoalescer(eng *Engine, cfg ServerConfig) *coalescer {
	c := &coalescer{eng: eng, cfg: cfg, kick: make(chan struct{}, 1), inj: eng.Injector()}
	c.wg.Add(1)
	go c.run()
	return c
}

// submit validates, admits and enqueues one request, then blocks for
// its batched response. Validation failures never enqueue (the
// deterministic error counters stay a pure function of the request
// multiset); admission failures are scheduling-dependent and counted
// volatile.
func (c *coalescer) submit(req *Request) (*Response, error) {
	r := c.eng.Obs()
	if err := c.eng.ValidateRequest(req); err != nil {
		r.Counter("serve/errors/invalid").Inc()
		return nil, err
	}
	if c.cfg.MaxRequestNodes > 0 && len(req.Nodes) > c.cfg.MaxRequestNodes {
		r.Counter("serve/errors/oversized").Inc()
		return nil, fmt.Errorf("%w: %d nodes > limit %d", ErrOversized, len(req.Nodes), c.cfg.MaxRequestNodes)
	}
	p := &pending{req: req, done: make(chan struct{})}
	c.mu.Lock()
	switch {
	case c.closed:
		c.mu.Unlock()
		return nil, ErrClosed
	case c.cfg.QueueLimit > 0 && len(c.queue) >= c.cfg.QueueLimit:
		c.mu.Unlock()
		r.Volatile("serve/rejected").Inc()
		return nil, ErrQueueFull
	}
	c.queue = append(c.queue, p)
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	<-p.done
	return p.resp, p.err
}

// run is the dispatcher loop. A closed kick channel (server shutdown)
// drains whatever already queued, then exits.
func (c *coalescer) run() {
	defer c.wg.Done()
	for {
		_, ok := <-c.kick
		if c.cfg.Window > 0 {
			time.Sleep(c.cfg.Window)
		} else if c.cfg.MaxBatchRequests != 1 {
			// Backpressure alone underfills batches on few cores: the
			// kick arrives with the wave's first request, before the
			// other runnable clients have enqueued theirs. Yielding
			// lets the wave land; costs nothing when the run queue is
			// empty.
			for i := 0; i < 4; i++ {
				runtime.Gosched()
			}
		}
		for {
			batch, depth := c.take()
			if batch == nil {
				break
			}
			c.exec(batch, depth)
		}
		if !ok {
			return
		}
	}
}

// take removes the next batch from the queue head: up to
// MaxBatchRequests requests and MaxBatchRows total nodes (0 =
// unlimited; the first request is always taken). Returns the queue
// depth observed before taking — the signal the load-degradation
// rung keys on.
func (c *coalescer) take() ([]*pending, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return nil, 0
	}
	depth := len(c.queue)
	n, rows := 0, 0
	for n < len(c.queue) {
		if c.cfg.MaxBatchRequests > 0 && n >= c.cfg.MaxBatchRequests {
			break
		}
		if n > 0 && c.cfg.MaxBatchRows > 0 && rows+len(c.queue[n].req.Nodes) > c.cfg.MaxBatchRows {
			break
		}
		rows += len(c.queue[n].req.Nodes)
		n++
	}
	batch := c.queue[:n:n]
	c.queue = append([]*pending(nil), c.queue[n:]...)
	return batch, depth
}

// exec dispatches one batch through the engine under fault
// protection: an injected crash at "serve/batch" (or a genuine panic)
// fails only this batch — every waiter gets ErrBatchFault and the
// server stays serviceable.
func (c *coalescer) exec(batch []*pending, depth int) {
	r := c.eng.Obs()
	r.VolatileHist("serve/queue_depth").Observe(int64(depth))
	r.VolatileHist("serve/batch_requests").Observe(int64(len(batch)))
	sp := r.VolatileSpan("serve/batch")
	degraded := c.cfg.DegradeDepth > 0 && depth > c.cfg.DegradeDepth
	reqs := make([]*Request, len(batch))
	for i, p := range batch {
		reqs[i] = p.req
	}
	var resps []*Response
	err := resil.Protect(func() error {
		c.inj.Exec("serve/batch")
		resps = c.eng.ServeBatch(reqs, degraded)
		return nil
	})
	sp.End()
	for i, p := range batch {
		if err != nil {
			p.err = fmt.Errorf("%w: %v", ErrBatchFault, err)
		} else {
			p.resp = resps[i]
		}
		close(p.done)
	}
	if err != nil {
		r.Volatile("serve/batch_faults").Inc()
	}
}

// close stops the dispatcher: queued requests not yet taken fail with
// ErrClosed; an in-flight batch completes normally.
func (c *coalescer) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	waiting := c.queue
	c.queue = nil
	c.mu.Unlock()
	for _, p := range waiting {
		p.err = ErrClosed
		close(p.done)
	}
	close(c.kick)
	c.wg.Wait()
}
