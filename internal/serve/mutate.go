package serve

// Online mutation: the serve/dyn bridge (DESIGN.md §15). A mutable
// engine owns a dyn.Mutable beside its derived dispatch state and
// advances through numbered epochs, one per applied mutation batch.
// The epoch fence is the two-lock discipline:
//
//	muMut  serializes mutators; held for the whole Mutate call.
//	mu     the read dispatch lock; Mutate takes it only for the final
//	       pointer swap.
//
// Everything expensive — batch application, repair, a staleness
// rebuild, re-normalizing Â, re-propagating the right-hand side —
// happens under muMut alone, while queries keep draining against the
// old epoch's operands under mu. The swap itself is a few pointer
// stores plus cache invalidation, so the read path's added latency is
// bounded by one brief critical section, never by the mutation work.
//
// Cache invalidation is exact, not heuristic: an edge flip {i, j}
// changes Â only in rows adjacent to (or equal to) an endpoint, and a
// response row p = (Â^Hops X)[p] can only change if some length-Hops
// path from p crosses such an entry — i.e. if p lies within the
// radius-Hops ball of the endpoints in the union of the old and new
// adjacencies. Rows outside the ball recompute to bit-identical
// float32 values (same columns, same operand rows, same accumulation
// order), so keeping them cached preserves the purity contract the
// hammer test asserts. When the permutation itself moved (repair
// swaps or a rebuild), every position changed meaning and both caches
// clear.
//
// A staleness rebuild leaves every compressed shard handle stale at
// once; re-splitting them lazily on the read path would stall queries
// under mu. Instead the engine enters a CSR-served degraded window:
// dispatches run the (cheaply built) CSR band path while one
// background warmer goroutine rebuilds all compressed handles
// off-lock and installs them under mu only if the epoch is still
// current — retrying against the new epoch otherwise.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/spmm"
	"repro/internal/venom"
)

// MutateOutcome reports one applied mutation batch: the epoch it
// created and the dyn-level per-op outcome.
type MutateOutcome struct {
	Epoch uint64
	Batch dyn.BatchOutcome
}

// Mutable reports whether the engine accepts Mutate calls.
func (e *Engine) Mutable() bool { return e.dyn != nil }

// Epoch returns the current mutation epoch (0 = as constructed or
// restored with no batches applied since).
func (e *Engine) Epoch() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch
}

// Fingerprint identifies the engine's response space — the fields a
// WAL must agree on for its records to mean the same graph changes.
// Mode is deliberately excluded (a log replays into any dispatch
// mode); the vertex count is included because vertex ids in mutation
// records are only meaningful against it.
func (e *Engine) Fingerprint() uint64 {
	s := fmt.Sprintf("sogre-serve/v1 n=%d V=%d N=%d M=%d hops=%d dim=%d classes=%d seed=%d shard_rows=%d",
		e.n, e.cfg.Pattern.V, e.cfg.Pattern.N, e.cfg.Pattern.M,
		e.cfg.Hops, e.cfg.FeatureDim, e.cfg.Classes, e.cfg.Seed, e.cfg.ShardRows)
	return shard.ChecksumBytes([]byte(s))
}

// Mutate applies one mutation batch and advances the epoch. Invalid
// mutations inside the batch are skipped and reported (dyn's batch
// semantics); the epoch advances even for a fully-rejected batch, so
// epochs stay in lockstep with WAL record sequence numbers. Safe for
// concurrent use with queries; concurrent Mutate calls serialize.
func (e *Engine) Mutate(ops []dyn.Mutation) (MutateOutcome, error) {
	if e.dyn == nil {
		return MutateOutcome{}, ErrNotMutable
	}
	e.muMut.Lock()
	defer e.muMut.Unlock()
	sp := e.obs.VolatileSpan("serve/epoch/build")
	defer sp.End()

	out, err := e.dyn.ApplyBatch(ops)
	if err != nil {
		return MutateOutcome{}, err
	}
	e.obs.Counter("serve/epoch/applied").Add(int64(out.Applied))
	e.obs.Counter("serve/epoch/rejected").Add(int64(len(out.Rejected)))
	e.obs.Counter("serve/epoch/repair_swaps").Add(int64(out.RepairSwaps))
	if out.Rebuilt {
		e.obs.Counter("serve/epoch/rebuilds").Inc()
	}

	if out.Applied == 0 {
		// Nothing changed; just stamp the epoch.
		e.mu.Lock()
		e.epoch++
		epoch := e.epoch
		e.obs.Gauge("serve/epoch/seq").Set(float64(epoch))
		e.mu.Unlock()
		return MutateOutcome{Epoch: epoch, Batch: out}, nil
	}

	// Off-lock: derive the new epoch's operands while reads drain on
	// the old ones. The permutation and matrix are read through the
	// dyn.Mutable we exclusively own under muMut.
	permChanged := out.RepairSwaps > 0 || out.Rebuilt
	newPerm := e.dyn.Perm()
	rg := graph.FromBitMatrix(e.dyn.Matrix())
	a2 := csr.SymNormalized(rg)
	rhs2 := dense.NewMatrix(e.n, e.cfg.FeatureDim)
	for pos := 0; pos < e.n; pos++ {
		copy(rhs2.Row(pos), e.x0.Row(newPerm[pos]))
	}
	for hop := 1; hop < e.cfg.Hops; hop++ {
		rhs2 = spmm.CSRPool(e.mpool, a2, rhs2)
	}

	var ballRows, touchedShards []int
	var inv2 []int
	if permChanged {
		inv2 = make([]int, e.n)
		for pos, orig := range newPerm {
			inv2[orig] = pos
		}
	} else {
		ballRows, touchedShards = e.invalidation(rg, out.Accepted)
	}

	// The fence: swap the derived state in under a brief mu hold.
	e.mu.Lock()
	e.a = a2
	e.rhs = rhs2
	if permChanged {
		e.perm = newPerm
		e.inv = inv2
		e.rowCache.clear()
		e.shards.clear()
		for s := range e.csrOnly {
			e.csrOnly[s] = false
		}
	} else {
		for _, r := range ballRows {
			e.rowCache.remove(r)
		}
		for _, s := range touchedShards {
			e.shards.remove(s)
			e.csrOnly[s] = false
		}
	}
	e.epoch++
	epoch := e.epoch
	e.obs.Gauge("serve/epoch/seq").Set(float64(epoch))
	if out.Rebuilt && e.cfg.Mode != ModeCSR {
		e.csrWindow = true
		if !e.warming {
			e.warming = true
			go e.warm()
		}
	}
	e.mu.Unlock()
	return MutateOutcome{Epoch: epoch, Batch: out}, nil
}

// invalidation computes, for a batch that did NOT move the
// permutation, the radius-Hops ball of row positions whose responses
// can change (row-cache invalidation) and the shards whose Â band
// rows changed (handle invalidation — the radius-1 subset). The BFS
// runs over the union adjacency: the new graph plus this batch's
// deleted edges, since a removed edge's old influence also radius-
// limits which stale values must go.
func (e *Engine) invalidation(rg *graph.Graph, accepted []dyn.Mutation) (ballRows, touchedShards []int) {
	extra := make(map[int][]int)
	var frontier []int
	dist := make(map[int]int)
	seed := func(p int) {
		if _, ok := dist[p]; !ok {
			dist[p] = 0
			frontier = append(frontier, p)
		}
	}
	for _, m := range accepted {
		i, j := e.inv[m.U], e.inv[m.V]
		seed(i)
		seed(j)
		if m.Op == dyn.OpDelete {
			extra[i] = append(extra[i], j)
			extra[j] = append(extra[j], i)
		}
	}
	shardSet := make(map[int]bool)
	for _, p := range frontier {
		shardSet[e.shardOf(p)] = true
	}
	for len(frontier) > 0 {
		var next []int
		for _, p := range frontier {
			d := dist[p]
			if d >= e.cfg.Hops {
				continue
			}
			visit := func(q int) {
				if _, ok := dist[q]; ok {
					return
				}
				dist[q] = d + 1
				next = append(next, q)
				if d+1 <= 1 {
					shardSet[e.shardOf(q)] = true
				}
			}
			for _, q := range rg.Neighbors(p) {
				visit(int(q))
			}
			for _, q := range extra[p] {
				visit(q)
			}
		}
		frontier = next
	}
	for p := range dist {
		ballRows = append(ballRows, p)
	}
	for s := range shardSet {
		touchedShards = append(touchedShards, s)
	}
	return ballRows, touchedShards
}

// warm is the background handle warmer behind the post-rebuild CSR
// window: build every shard's compressed handle off-lock from a
// consistent (epoch, Â) capture, then install the set atomically —
// only if the epoch is still current, else rebuild against the new
// one. Split failures mark their shard's sticky CSR fallback exactly
// as the lazy build path would.
func (e *Engine) warm() {
	for {
		e.mu.Lock()
		if !e.csrWindow {
			e.warming = false
			e.mu.Unlock()
			return
		}
		epoch, a := e.epoch, e.a
		e.mu.Unlock()

		handles := make([]*shardHandle, e.nShards)
		failed := make([]bool, e.nShards)
		for s := range handles {
			h := &shardHandle{sub: bandCSR(a, e.n, e.cfg.ShardRows, s)}
			comp, resid, err := venom.SplitToConform(h.sub, e.cfg.Pattern)
			if err == nil {
				err = comp.ValidateMeta()
			}
			if err != nil {
				failed[s] = true
			} else {
				h.comp, h.resid = comp, resid
			}
			handles[s] = h
		}

		e.mu.Lock()
		if e.epoch != epoch {
			e.mu.Unlock()
			continue
		}
		for s, h := range handles {
			if failed[s] {
				e.degradeShard(s)
			}
			e.shards.put(s, h)
		}
		e.csrWindow = false
		e.warming = false
		e.mu.Unlock()
		return
	}
}

// WaitWarm blocks until no degraded window or warmer is active — how
// deterministic probes (oracles, benches) exclude the window's
// timing-dependent CSR-vs-hybrid bit difference.
func (e *Engine) WaitWarm() {
	for {
		e.mu.Lock()
		busy := e.csrWindow || e.warming
		e.mu.Unlock()
		if !busy {
			return
		}
		runtime.Gosched()
		time.Sleep(100 * time.Microsecond)
	}
}
