package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/resil"
	"repro/internal/sched"
	"repro/internal/spmm"
	"repro/internal/venom"
)

// Mode selects how shard dispatches route to kernels.
type Mode string

const (
	// ModeCSR dispatches every shard through the parallel CSR kernel
	// (the cuSPARSE-baseline path; no compression built).
	ModeCSR = Mode("csr")
	// ModeHybrid dispatches through the V:N:M/SPTC hybrid kernel —
	// the paper's path, and the default.
	ModeHybrid = Mode("hybrid")
	// ModeAuto routes each shard through the calibrated execution
	// planner (internal/plan); requires EngineConfig.Calib. Planner
	// choices may differ across worker counts, so cross-worker bitwise
	// equality is only guaranteed for the fixed modes.
	ModeAuto = Mode("auto")
)

// EngineConfig sizes the serving engine. The zero value of most
// fields selects documented defaults; Seed pins every random draw.
type EngineConfig struct {
	// Pattern is the target V:N:M sparsity pattern (zero = 4:2:8, the
	// repo default).
	Pattern pattern.VNM
	// Hops is the aggregation depth: a query returns rows of
	// Â^Hops · X. The last hop runs per query (through the shard
	// dispatch path); the first Hops-1 are folded into the shared
	// right-hand side at startup. Zero = 2.
	Hops int
	// FeatureDim is the dense feature width (zero = 32).
	FeatureDim int
	// Classes sizes the linear classification head (zero = 8).
	Classes int
	// Seed drives feature/head initialization and must match across
	// engines whose responses are compared.
	Seed int64
	// ShardRows is the row-band height shards are cut at, rounded up
	// to a multiple of Pattern.V (zero = 256).
	ShardRows int
	// CacheRows bounds the per-node aggregation-row LRU; 0 disables
	// the row cache (a valid configuration — every query recomputes),
	// negative is ErrConfig.
	CacheRows int
	// ShardCap bounds the compressed shard-handle LRU; 0 means all
	// shards stay resident, negative is ErrConfig. An evicted handle
	// is rebuilt bit-identically on next touch.
	ShardCap int
	// Mode routes shard dispatches (zero = ModeHybrid).
	Mode Mode
	// Calib is the planner calibration table; required for ModeAuto.
	Calib *plan.Calibration

	// Workers sizes the kernel pool (0 = GOMAXPROCS); Pool overrides
	// it with a caller-shared engine. The pool is deliberately left
	// obs-uninstrumented: per-dispatch kernel counters are
	// scheduling-dependent in the serving layer (dispatch counts vary
	// with batching and cache state) and would poison the canonical
	// snapshot's deterministic section.
	Workers int
	Pool    *sched.Pool
	// Obs charges serving metrics (see DESIGN.md §13 for the
	// deterministic/volatile split). Nil disables instrumentation.
	Obs *obs.Registry
	// Inj fires fault sites ("serve/shard" at shard builds,
	// "serve/batch" at coalesced dispatches). Nil disables injection.
	Inj *resil.Injector

	// Mutable wraps the reordered matrix in a dyn.Mutable so the
	// engine accepts online edge mutations through Mutate (DESIGN.md
	// §15). Costs one extra matrix clone plus the n×FeatureDim seeded
	// feature matrix kept resident for epoch rebuilds.
	Mutable bool
	// StalenessBudget is the dyn rebuild trigger for mutable engines
	// (zero = dyn.DefaultStalenessBudget); ignored when !Mutable.
	StalenessBudget float64

	// Perm, when set, is a precomputed reordering permutation (new
	// position i holds original vertex Perm[i]) and skips the
	// reordering run — how the bench suite amortizes one reorder
	// across many engine constructions.
	Perm []int
	// Large partitions the reordering through core.ReorderLarge with
	// partition bound MaxN (0 = ReorderLarge's default) instead of the
	// direct dense-bitmatrix engine.
	Large bool
	MaxN  int
	// Reorder configures the reordering run (ignored when Perm set).
	Reorder core.Options
}

// withDefaults resolves the documented zero-value defaults.
func (c EngineConfig) withDefaults() (EngineConfig, error) {
	if c.Pattern == (pattern.VNM{}) {
		c.Pattern = pattern.New(4, 2, 8)
	}
	if err := c.Pattern.Validate(); err != nil {
		return c, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if c.Hops == 0 {
		c.Hops = 2
	}
	if c.FeatureDim == 0 {
		c.FeatureDim = 32
	}
	if c.Classes == 0 {
		c.Classes = 8
	}
	if c.ShardRows == 0 {
		c.ShardRows = 256
	}
	if v := c.Pattern.V; c.ShardRows%v != 0 {
		c.ShardRows += v - c.ShardRows%v
	}
	if c.Mode == "" {
		c.Mode = ModeHybrid
	}
	switch {
	case c.Hops < 1:
		return c, fmt.Errorf("%w: hops %d < 1", ErrConfig, c.Hops)
	case c.FeatureDim < 1 || c.Classes < 1:
		return c, fmt.Errorf("%w: feature dim %d / classes %d", ErrConfig, c.FeatureDim, c.Classes)
	case c.ShardRows < 1:
		return c, fmt.Errorf("%w: shard rows %d", ErrConfig, c.ShardRows)
	case c.CacheRows < 0:
		return c, fmt.Errorf("%w: negative cache rows %d", ErrConfig, c.CacheRows)
	case c.ShardCap < 0:
		return c, fmt.Errorf("%w: negative shard cap %d", ErrConfig, c.ShardCap)
	case c.Mode != ModeCSR && c.Mode != ModeHybrid && c.Mode != ModeAuto:
		return c, fmt.Errorf("%w: unknown mode %q", ErrConfig, c.Mode)
	case c.Mode == ModeAuto && c.Calib == nil:
		return c, fmt.Errorf("%w: ModeAuto requires a calibration table", ErrConfig)
	}
	return c, nil
}

// shardHandle is one row band's built dispatch state: the band
// embedded as a square n-by-n CSR (rows outside the band empty, so a
// dispatch computes the whole band against the shared right-hand
// side), plus the V:N:M split the hybrid path consumes.
type shardHandle struct {
	sub   *csr.Matrix
	comp  *venom.Matrix
	resid *csr.Matrix
	// planned caches the ModeAuto decision (a pure function of the
	// band's structure and the table, so caching cannot change bits).
	planned bool
	dec     plan.Decision
}

// Engine answers node-set queries against a reordered, compressed
// graph loaded once at construction. All methods are safe for
// concurrent use; one mutex serializes dispatches (the kernels
// parallelize internally across the pool).
type Engine struct {
	mu  sync.Mutex
	cfg EngineConfig
	n   int
	src *graph.Graph // the graph the engine was built from (snapshots)

	a    *csr.Matrix   // Â of the reordered graph
	rhs  *dense.Matrix // Â^(Hops-1) · X, the shared dense operand
	head *dense.Matrix // FeatureDim x Classes linear head
	perm []int         // new position -> original vertex
	inv  []int         // original vertex -> new position

	nShards    int
	shards     *lru[*shardHandle]
	rowCache   *lru[[]float32]
	csrOnly    []bool // rung-1 sticky SPTC->CSR fallback, per shard
	planner    *plan.Planner
	pool       *sched.Pool
	obs        *obs.Registry
	inj        *resil.Injector
	y, scratch *dense.Matrix // dispatch output + hybrid residual scratch
	arena      plan.Arena

	// Mutation state (nil/zero for read-only engines). muMut serializes
	// mutators and is always acquired BEFORE mu (the epoch fence:
	// derived state builds off-lock while reads drain on the old epoch,
	// then swaps in under a brief mu hold). dyn is owned by the mutator
	// — readers never touch it.
	muMut     sync.Mutex
	dyn       *dyn.Mutable
	epoch     uint64
	x0        *dense.Matrix // seeded features in ORIGINAL numbering
	mpool     *sched.Pool   // dedicated pool for off-lock epoch builds
	csrWindow bool          // post-rebuild degraded window (CSR dispatch)
	warming   bool          // background handle warmer running
}

// NewEngine loads graph g: reorder (or adopt cfg.Perm), apply the
// permutation, symmetric-normalize, fold Hops-1 propagation steps
// into the shared right-hand side, and cut row-band shards. The
// construction is deterministic: two engines built from the same
// (graph, config) answer every query with identical bits.
func NewEngine(g *graph.Graph, cfg EngineConfig) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrConfig)
	}
	perm := cfg.Perm
	switch {
	case perm != nil:
		if len(perm) != n {
			return nil, fmt.Errorf("%w: perm length %d != n %d", ErrConfig, len(perm), n)
		}
	case cfg.Large:
		lr, err := core.ReorderLarge(g, core.LargeOptions{
			MaxN: cfg.MaxN, Pattern: cfg.Pattern, Reorder: cfg.Reorder,
			Pool: cfg.Pool, Workers: cfg.Workers, Obs: cfg.Obs,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: reorder: %w", err)
		}
		perm = lr.Perm
	default:
		opt := cfg.Reorder
		if opt.Pool == nil && cfg.Pool != nil {
			opt.Pool = cfg.Pool
		}
		if opt.Obs == nil {
			opt.Obs = cfg.Obs
		}
		res, err := core.Reorder(g.ToBitMatrix(), cfg.Pattern, opt)
		if err != nil {
			return nil, fmt.Errorf("serve: reorder: %w", err)
		}
		perm = res.Perm
	}
	rg, err := g.ApplyPermutation(perm)
	if err != nil {
		return nil, fmt.Errorf("serve: apply permutation: %w", err)
	}
	inv := make([]int, n)
	for pos, orig := range perm {
		if orig < 0 || orig >= n {
			return nil, fmt.Errorf("%w: perm entry %d out of range", ErrConfig, orig)
		}
		inv[orig] = pos
	}

	pool := cfg.Pool
	if pool == nil {
		pool = sched.New(cfg.Workers)
	}
	a := csr.SymNormalized(rg)

	// Features attach to original vertex ids (row i of the seeded
	// matrix belongs to vertex i), then follow the renumbering — the
	// reordering is an implementation detail of the engine, invisible
	// in response semantics.
	x := dense.NewMatrix(n, cfg.FeatureDim)
	x.Randomize(1, cfg.Seed)
	rhs := dense.NewMatrix(n, cfg.FeatureDim)
	for pos := 0; pos < n; pos++ {
		copy(rhs.Row(pos), x.Row(perm[pos]))
	}
	for hop := 1; hop < cfg.Hops; hop++ {
		rhs = spmm.CSRPool(pool, a, rhs)
	}
	head := dense.NewMatrix(cfg.FeatureDim, cfg.Classes)
	head.Randomize(1, cfg.Seed+1)

	nShards := (n + cfg.ShardRows - 1) / cfg.ShardRows
	shardCap := cfg.ShardCap
	if shardCap == 0 {
		shardCap = nShards
	}
	e := &Engine{
		cfg: cfg, n: n, src: g, a: a, rhs: rhs, head: head,
		perm: append([]int(nil), perm...), inv: inv,
		nShards:  nShards,
		csrOnly:  make([]bool, nShards),
		pool:     pool,
		obs:      cfg.Obs,
		inj:      cfg.Inj,
		y:        dense.NewMatrix(n, cfg.FeatureDim),
		scratch:  dense.NewMatrix(n, cfg.FeatureDim),
		rowCache: newLRU[[]float32](cfg.CacheRows),
	}
	e.shards = newLRU[*shardHandle](shardCap)
	e.shards.onEvict = func(int, *shardHandle) {
		e.obs.Volatile("serve/shard/evict").Inc()
	}
	e.rowCache.onEvict = func(int, []float32) {
		e.obs.Volatile("serve/cache/evict").Inc()
	}
	if cfg.Mutable {
		budget := cfg.StalenessBudget
		if budget == 0 {
			budget = dyn.DefaultStalenessBudget
		}
		d, err := dyn.New(
			&core.Result{Pattern: cfg.Pattern, Perm: perm, Matrix: rg.ToBitMatrix()},
			dyn.Options{
				StalenessBudget: budget,
				H:               cfg.FeatureDim,
				Workers:         cfg.Workers,
				Reorder:         cfg.Reorder,
				Obs:             cfg.Obs,
			})
		if err != nil {
			return nil, fmt.Errorf("%w: mutable: %v", ErrConfig, err)
		}
		e.dyn = d
		e.x0 = x
		e.mpool = sched.New(cfg.Workers)
	}
	if cfg.Mode == ModeAuto {
		e.planner = &plan.Planner{Calib: cfg.Calib, Workers: pool.Workers()}
	}
	e.registerMetrics()
	return e, nil
}

// registerMetrics touches every serve metric once so the snapshot's
// key set is a function of the configuration, not of which code
// paths traffic happened to exercise — canonical byte-comparability
// requires stable keys, and dashboards want the full inventory from
// the first scrape.
func (e *Engine) registerMetrics() {
	if e.obs == nil {
		return
	}
	for _, name := range []string{
		"serve/requests", "serve/rows",
		"serve/errors/invalid", "serve/errors/oversized", "serve/errors/parse",
		"serve/epoch/applied", "serve/epoch/rejected",
		"serve/epoch/repair_swaps", "serve/epoch/rebuilds",
		"serve/wal/records", "serve/wal/bytes",
	} {
		e.obs.Counter(name)
	}
	// serve/epoch/seq is the current mutation epoch — deterministic for
	// a fixed applied-batch sequence (and the value the recovery drill
	// reads off /statz to find how many batches survived a crash).
	e.obs.Gauge("serve/epoch/seq")
	for _, name := range []string{
		"serve/cache/hit", "serve/cache/miss", "serve/cache/fill", "serve/cache/evict",
		"serve/shard/build", "serve/shard/evict",
		"serve/degraded/shards", "serve/degraded/batches",
		"serve/dispatch/csr", "serve/dispatch/hybrid", "serve/dispatch/planned",
		"serve/rejected", "serve/batch_faults",
		"serve/mutate/rejected", "serve/epoch/csr_window_batches",
		"serve/wal/commits",
	} {
		e.obs.Volatile(name)
	}
	e.obs.VolatileHist("serve/batch_rows")
	e.obs.VolatileHist("serve/batch_requests")
	e.obs.VolatileHist("serve/queue_depth")
	e.obs.VolatileHist("serve/mutate/queue_depth")
	e.obs.VolatileSpan("serve/batch")
	e.obs.VolatileSpan("serve/dispatch")
	e.obs.VolatileSpan("serve/epoch/build")
}

// N returns the graph size.
func (e *Engine) N() int { return e.n }

// Mode returns the resolved dispatch mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Injector returns the engine's fault injector (nil when disabled).
func (e *Engine) Injector() *resil.Injector { return e.inj }

// Obs returns the engine's metrics registry (nil when disabled).
func (e *Engine) Obs() *obs.Registry { return e.obs }

// Perm returns a copy of the reordering permutation, so a second
// engine over the same graph can skip the reordering run.
func (e *Engine) Perm() []int { return append([]int(nil), e.perm...) }

// ValidateRequest applies the full request invariants, including the
// graph-size upper bound the wire decoder cannot know.
func (e *Engine) ValidateRequest(r *Request) error {
	if err := r.validate(); err != nil {
		return err
	}
	for _, v := range r.Nodes {
		if v >= e.n {
			return fmt.Errorf("%w: %d (graph has %d nodes)", ErrNodeRange, v, e.n)
		}
	}
	return nil
}

// shardOf maps a reordered row position to its shard index.
func (e *Engine) shardOf(pos int) int { return pos / e.cfg.ShardRows }

// bandCSR embeds shard s's row band of a as a square n-by-n CSR
// sharing a's column/value storage (rows outside the band empty) — a
// pure function, so the background warmer can build handles off-lock
// from a captured Â.
func bandCSR(a *csr.Matrix, n, shardRows, s int) *csr.Matrix {
	lo := s * shardRows
	hi := lo + shardRows
	if hi > n {
		hi = n
	}
	base := a.RowPtr[lo]
	rp := make([]int32, n+1)
	for i := lo; i < hi; i++ {
		rp[i+1] = a.RowPtr[i+1] - base
	}
	for i := hi; i < n; i++ {
		rp[i+1] = rp[hi]
	}
	return &csr.Matrix{
		N:      n,
		RowPtr: rp,
		ColIdx: a.ColIdx[base:a.RowPtr[hi]],
		Val:    a.Val[base:a.RowPtr[hi]],
	}
}

// shardBounds returns shard s's row band [lo, hi).
func (e *Engine) shardBounds(s int) (lo, hi int) {
	lo = s * e.cfg.ShardRows
	hi = lo + e.cfg.ShardRows
	if hi > e.n {
		hi = e.n
	}
	return lo, hi
}

// buildShard constructs shard s's dispatch handle: the band embedded
// as a square CSR sharing Â's column/value storage, plus the V:N:M
// split unless the mode (or the rung-1 fallback) is CSR-only. The
// injector's "serve/shard" site fires here: a straggler delays the
// build; a crash or transient event — like a genuine split or
// metadata-validation failure — trips the sticky SPTC→CSR fallback
// for this shard (degradation rung 1, mirroring gnn.ValidateOperator).
func (e *Engine) buildShard(s int) *shardHandle {
	e.obs.Volatile("serve/shard/build").Inc()
	h := &shardHandle{sub: bandCSR(e.a, e.n, e.cfg.ShardRows, s)}
	if ev := e.inj.Fire("serve/shard"); ev != nil {
		switch ev.Kind {
		case resil.KindStraggler:
			time.Sleep(ev.Delay) // a slow build, not a failed one
		default:
			e.degradeShard(s)
		}
	}
	if e.cfg.Mode == ModeCSR || e.csrOnly[s] || e.csrWindow {
		// During the post-rebuild window the split is exactly the work
		// being deferred to the background warmer — serve CSR now; the
		// warmer's install overwrites this handle.
		return h
	}
	comp, resid, err := venom.SplitToConform(h.sub, e.cfg.Pattern)
	if err == nil {
		err = comp.ValidateMeta()
	}
	if err != nil {
		e.degradeShard(s)
		return h
	}
	h.comp, h.resid = comp, resid
	return h
}

// degradeShard trips shard s's sticky rung-1 CSR fallback.
func (e *Engine) degradeShard(s int) {
	if !e.csrOnly[s] {
		e.csrOnly[s] = true
		e.obs.Volatile("serve/degraded/shards").Inc()
	}
}

// dispatchShard computes shard s's full band against the shared
// right-hand side into the engine's output scratch and returns it.
// Caller holds e.mu.
func (e *Engine) dispatchShard(s int) *dense.Matrix {
	sp := e.obs.VolatileSpan("serve/dispatch")
	defer sp.End()
	h, ok := e.shards.get(s)
	if !ok {
		h = e.buildShard(s)
		e.shards.put(s, h)
	}
	if e.csrOnly[s] || h.comp == nil || e.cfg.Mode == ModeCSR {
		e.obs.Volatile("serve/dispatch/csr").Inc()
		spmm.CSRPoolInto(e.pool, e.y, h.sub, e.rhs)
		return e.y
	}
	if e.cfg.Mode == ModeAuto {
		if !h.planned {
			h.dec = e.planner.ChooseOperands(plan.Operands{A: h.sub, Comp: h.comp, Resid: h.resid}, e.cfg.FeatureDim)
			h.planned = true
		}
		e.obs.Volatile("serve/dispatch/planned").Inc()
		return plan.Execute(h.dec, e.pool, plan.Operands{A: h.sub, Comp: h.comp, Resid: h.resid}, e.rhs, &e.arena)
	}
	e.obs.Volatile("serve/dispatch/hybrid").Inc()
	spmm.HybridPoolInto(e.pool, e.y, e.scratch, h.comp, h.resid, e.rhs)
	return e.y
}

// gatherRows computes only the given (sorted, reordered) row
// positions through a gathered square CSR and the parallel CSR
// kernel — the load-degradation rung (rung 2): cheaper than full
// band dispatches under pressure, skipping all cache fill so the
// caches only ever hold full-rate rows. CSR row accumulation order
// is identical to the band dispatch's, so in ModeCSR the degraded
// rows are bit-identical; in the hybrid modes they are
// tolerance-bounded instead (summation order differs).
func (e *Engine) gatherRows(positions []int) map[int][]float32 {
	nnz := 0
	for _, p := range positions {
		nnz += e.a.RowNNZ(p)
	}
	g := &csr.Matrix{
		N:      e.n,
		RowPtr: make([]int32, e.n+1),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float32, 0, nnz),
	}
	next := 0
	for i := 0; i < e.n; i++ {
		if next < len(positions) && positions[next] == i {
			cols, vals := e.a.Row(i)
			g.ColIdx = append(g.ColIdx, cols...)
			g.Val = append(g.Val, vals...)
			next++
		}
		g.RowPtr[i+1] = int32(len(g.ColIdx))
	}
	spmm.CSRPoolInto(e.pool, e.y, g, e.rhs)
	rows := make(map[int][]float32, len(positions))
	for _, p := range positions {
		rows[p] = append([]float32(nil), e.y.Row(p)...)
	}
	return rows
}

// ServeBatch answers a coalesced batch of validated requests in one
// locked pass: the union of requested rows is resolved through the
// row cache and deduplicated shard dispatches (or the degraded
// gather path), then per-request responses are assembled. Responses
// are pure functions of (graph, config, request) — batching never
// changes bits because a dispatch always computes a whole band.
func (e *Engine) ServeBatch(reqs []*Request, degraded bool) []*Response {
	e.mu.Lock()
	defer e.mu.Unlock()

	// Union of distinct reordered positions, ascending.
	posSet := make(map[int]struct{})
	for _, r := range reqs {
		for _, v := range r.Nodes {
			posSet[e.inv[v]] = struct{}{}
		}
	}
	positions := make([]int, 0, len(posSet))
	for p := range posSet {
		positions = append(positions, p)
	}
	sort.Ints(positions)
	e.obs.VolatileHist("serve/batch_rows").Observe(int64(len(positions)))

	var rows map[int][]float32
	if degraded {
		e.obs.Volatile("serve/degraded/batches").Inc()
		rows = e.gatherRows(positions)
	} else {
		if e.csrWindow {
			e.obs.Volatile("serve/epoch/csr_window_batches").Inc()
		}
		rows = e.resolveRows(positions)
	}

	resps := make([]*Response, len(reqs))
	total := 0
	for i, r := range reqs {
		resp := &Response{Op: r.Op, Epoch: e.epoch}
		if r.Op == OpClassify {
			resp.Classes = make([]int, len(r.Nodes))
			for j, v := range r.Nodes {
				resp.Classes[j] = e.classify(rows[e.inv[v]])
			}
		} else {
			resp.Rows = make([][]float32, len(r.Nodes))
			for j, v := range r.Nodes {
				resp.Rows[j] = rows[e.inv[v]]
			}
		}
		total += len(r.Nodes)
		resps[i] = resp
	}
	e.obs.Counter("serve/requests").Add(int64(len(reqs)))
	e.obs.Counter("serve/rows").Add(int64(total))
	return resps
}

// resolveRows fills the requested (sorted) positions from the row
// cache, dispatching each shard with at least one miss exactly once
// and inserting its whole band into the cache ascending — so a later
// query for any neighbor in the band hits. Cached slices are
// immutable once stored.
func (e *Engine) resolveRows(positions []int) map[int][]float32 {
	rows := make(map[int][]float32, len(positions))
	for i := 0; i < len(positions); {
		s := e.shardOf(positions[i])
		j := i
		missed := false
		for j < len(positions) && e.shardOf(positions[j]) == s {
			if row, ok := e.rowCache.get(positions[j]); ok {
				e.obs.Volatile("serve/cache/hit").Inc()
				rows[positions[j]] = row
			} else {
				e.obs.Volatile("serve/cache/miss").Inc()
				missed = true
			}
			j++
		}
		if missed {
			y := e.dispatchShard(s)
			// Serve this group straight from the dispatch output (the
			// band rows a too-small cache would immediately evict must
			// still be answered), then fill the cache with the band.
			for k := i; k < j; k++ {
				if rows[positions[k]] == nil {
					rows[positions[k]] = append([]float32(nil), y.Row(positions[k])...)
				}
			}
			if e.cfg.CacheRows > 0 {
				lo, hi := e.shardBounds(s)
				if hi-lo > e.cfg.CacheRows {
					// The band is larger than the whole cache: filling it
					// would churn every previously hot row out and retain
					// only the band's tail — rows nobody asked for. Fill
					// just the rows this batch proved hot instead.
					for k := i; k < j; k++ {
						e.fillRow(positions[k], y)
					}
				} else {
					for r := lo; r < hi; r++ {
						e.fillRow(r, y)
					}
				}
			}
		}
		i = j
	}
	return rows
}

// fillRow inserts row r from dispatch output y into the row cache
// unless it is already cached (a fresh get keeps the hit's recency
// position honest).
func (e *Engine) fillRow(r int, y *dense.Matrix) {
	if _, ok := e.rowCache.get(r); ok {
		return
	}
	e.rowCache.put(r, append([]float32(nil), y.Row(r)...))
	e.obs.Volatile("serve/cache/fill").Inc()
}

// classify returns the argmax class of one aggregation row under the
// linear head (serial accumulation; ties break to the lowest index).
func (e *Engine) classify(row []float32) int {
	best, bestV := 0, float32(0)
	for c := 0; c < e.cfg.Classes; c++ {
		var v float32
		for k, x := range row {
			v += x * e.head.At(k, c)
		}
		if c == 0 || v > bestV {
			best, bestV = c, v
		}
	}
	return best
}
