package serve

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
)

// testGraph is the shared small operand (reorder stays fast).
func testGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	return graph.ErdosRenyi(n, 8/float64(n), 42)
}

// serveAll answers every scripted request one-at-a-time straight
// through the engine — the serial reference batched paths are
// compared against.
func serveAll(e *Engine, reqs []*Request) []*Response {
	out := make([]*Response, len(reqs))
	for i, r := range reqs {
		out[i] = e.ServeBatch([]*Request{r}, false)[0]
	}
	return out
}

func bitEqualResponses(a, b []*Response) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Checksum() != b[i].Checksum() {
			return false
		}
	}
	return true
}

func flatScript(t testing.TB, cfg ScriptConfig) []*Request {
	t.Helper()
	clients, err := GenerateScript(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var flat []*Request
	for _, c := range clients {
		flat = append(flat, c...)
	}
	return flat
}

func TestEngineDeterministicAcrossInstances(t *testing.T) {
	g := testGraph(t, 256)
	cfg := EngineConfig{Seed: 7, ShardRows: 64, CacheRows: 32}
	a, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := flatScript(t, ScriptConfig{Seed: 1, Clients: 2, Requests: 20, N: 256, ClassifyEvery: 3})
	if !bitEqualResponses(serveAll(a, reqs), serveAll(b, reqs)) {
		t.Fatal("two engines with identical config disagree")
	}
}

func TestBatchingDoesNotChangeBits(t *testing.T) {
	g := testGraph(t, 256)
	for _, mode := range []Mode{ModeCSR, ModeHybrid} {
		cfg := EngineConfig{Seed: 7, ShardRows: 64, CacheRows: 16, Mode: mode}
		a, err := NewEngine(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reqs := flatScript(t, ScriptConfig{Seed: 2, Clients: 1, Requests: 16, N: 256, ClassifyEvery: 4})
		ref := serveAll(a, reqs)
		b, err := NewEngine(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// One giant coalesced batch must answer every request with the
		// same bits as one-at-a-time evaluation.
		got := b.ServeBatch(reqs, false)
		if !bitEqualResponses(ref, got) {
			t.Fatalf("mode %s: coalesced batch changed response bits", mode)
		}
	}
}

func TestCacheConfigurationsAgree(t *testing.T) {
	g := testGraph(t, 256)
	reqs := flatScript(t, ScriptConfig{Seed: 3, Clients: 2, Requests: 15, N: 256})
	var ref []*Response
	for _, cacheRows := range []int{0, 8, 64, 1 << 20} {
		e, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64, CacheRows: cacheRows, ShardCap: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := serveAll(e, reqs)
		if ref == nil {
			ref = got
			continue
		}
		if !bitEqualResponses(ref, got) {
			t.Fatalf("cacheRows=%d changed response bits", cacheRows)
		}
	}
}

func TestShardEvictionRebuildsBitIdentical(t *testing.T) {
	g := testGraph(t, 256)
	reqs := flatScript(t, ScriptConfig{Seed: 4, Clients: 1, Requests: 30, N: 256})
	full, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	churn, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64, ShardCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqualResponses(serveAll(full, reqs), serveAll(churn, reqs)) {
		t.Fatal("shard handle eviction churn changed response bits")
	}
}

func TestDegradedGatherPath(t *testing.T) {
	g := testGraph(t, 256)
	req := &Request{Op: OpEmbed, Nodes: []int{0, 5, 100, 255}}
	// ModeCSR: the gather path accumulates each row in the identical
	// operand order, so degraded responses are bit-identical.
	e, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64, Mode: ModeCSR})
	if err != nil {
		t.Fatal(err)
	}
	normal := e.ServeBatch([]*Request{req}, false)[0]
	degraded := e.ServeBatch([]*Request{req}, true)[0]
	if normal.Checksum() != degraded.Checksum() {
		t.Fatal("ModeCSR degraded path changed bits")
	}
	// ModeHybrid: summation order differs; tolerance-bounded only.
	h, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64, Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	hn := h.ServeBatch([]*Request{req}, false)[0]
	hd := h.ServeBatch([]*Request{req}, true)[0]
	for i := range hn.Rows {
		for j := range hn.Rows[i] {
			d := math.Abs(float64(hn.Rows[i][j] - hd.Rows[i][j]))
			if d > 1e-3 {
				t.Fatalf("hybrid degraded row diverged by %v at (%d,%d)", d, i, j)
			}
		}
	}
}

func TestEngineConfigErrors(t *testing.T) {
	g := testGraph(t, 64)
	bad := []EngineConfig{
		{CacheRows: -1},
		{ShardCap: -1},
		{Hops: -1},
		{Mode: Mode("turbo")},
		{Mode: ModeAuto}, // no calibration table
		{Perm: []int{0, 1}},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(g, cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("config %d: err = %v, want ErrConfig", i, err)
		}
	}
}

func TestValidateRequestRange(t *testing.T) {
	g := testGraph(t, 64)
	e, err := NewEngine(g, EngineConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ValidateRequest(&Request{Op: OpEmbed, Nodes: []int{63}}); err != nil {
		t.Fatalf("in-range request rejected: %v", err)
	}
	if err := e.ValidateRequest(&Request{Op: OpEmbed, Nodes: []int{64}}); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("out-of-range err = %v", err)
	}
}

func TestPrecomputedPermMatchesReorder(t *testing.T) {
	g := testGraph(t, 128)
	a, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64, Perm: a.Perm()})
	if err != nil {
		t.Fatal(err)
	}
	reqs := flatScript(t, ScriptConfig{Seed: 5, Clients: 1, Requests: 10, N: 128, ClassifyEvery: 2})
	if !bitEqualResponses(serveAll(a, reqs), serveAll(b, reqs)) {
		t.Fatal("precomputed-perm engine disagrees with reordering engine")
	}
}
