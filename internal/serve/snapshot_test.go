package serve

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// TestSnapshotRestoreBitIdentical: an engine restored from a snapshot
// answers queries with bits identical to the original warmed engine —
// and skips the reordering run, which is the point of snapshotting.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	g := graph.Banded(400, 2, 0.9, 9)
	cfg := EngineConfig{Seed: 21, ShardRows: 64, CacheRows: 16}
	orig, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.snapshot")
	if err := orig.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(path, EngineConfig{CacheRows: 16})
	if err != nil {
		t.Fatal(err)
	}

	reqs := []*Request{
		{Op: OpEmbed, Nodes: []int{0, 7, 399}},
		{Op: OpClassify, Nodes: []int{5, 6}},
		{Op: OpEmbed, Nodes: []int{100, 200, 300}},
	}
	for _, r := range reqs {
		if err := orig.ValidateRequest(r); err != nil {
			t.Fatal(err)
		}
	}
	want := orig.ServeBatch(reqs, false)
	got := restored.ServeBatch(reqs, false)
	for qi := range want {
		if string(want[qi].Render()) != string(got[qi].Render()) {
			t.Fatalf("request %d: restored engine's response differs:\n%s\nvs\n%s",
				qi, want[qi].Render(), got[qi].Render())
		}
	}
}

// TestSnapshotConfigMismatch: a snapshot refuses to restore into a
// contradicting response space, adopts zero fields, and rejects a
// caller-supplied Perm.
func TestSnapshotConfigMismatch(t *testing.T) {
	g := graph.Banded(200, 2, 0.9, 3)
	e, err := NewEngine(g, EngineConfig{Seed: 5, ShardRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.snapshot")
	if err := e.Snapshot(path); err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreEngine(path, EngineConfig{Seed: 999}); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("wrong seed: %v", err)
	}
	if _, err := RestoreEngine(path, EngineConfig{Hops: 7}); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("wrong hops: %v", err)
	}
	if _, err := RestoreEngine(path, EngineConfig{Perm: make([]int, 200)}); !errors.Is(err, ErrConfig) {
		t.Fatalf("caller perm: %v", err)
	}
	// Matching non-zero fields are accepted.
	if _, err := RestoreEngine(path, EngineConfig{Seed: 5, ShardRows: 64}); err != nil {
		t.Fatal(err)
	}
	// Garbage path is a clean error.
	if _, err := RestoreEngine(filepath.Join(t.TempDir(), "nope"), EngineConfig{}); err == nil {
		t.Fatal("missing file accepted")
	}
}
