package serve

import (
	"bytes"
	"errors"
	"testing"
)

func TestParseRequestNegatives(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error // nil means "any error" (malformed JSON)
	}{
		{"empty body", ``, nil},
		{"not json", `hello`, nil},
		{"trailing data", `{"op":"embed","nodes":[1]}garbage`, nil},
		{"unknown field", `{"op":"embed","nodes":[1],"x":2}`, nil},
		{"wrong type", `{"op":"embed","nodes":"abc"}`, nil},
		{"bad op", `{"op":"train","nodes":[1]}`, ErrBadOp},
		{"missing op", `{"nodes":[1]}`, ErrBadOp},
		{"empty nodes", `{"op":"embed","nodes":[]}`, ErrEmptyNodes},
		{"missing nodes", `{"op":"embed"}`, ErrEmptyNodes},
		{"negative node", `{"op":"embed","nodes":[0,-1]}`, ErrNodeRange},
		{"duplicate node", `{"op":"classify","nodes":[3,1,3]}`, ErrDuplicateNode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseRequest([]byte(tc.in))
			if err == nil {
				t.Fatalf("ParseRequest(%q) accepted", tc.in)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("ParseRequest(%q) error = %v, want %v", tc.in, err, tc.want)
			}
		})
	}
}

func TestParseRenderFixedPoint(t *testing.T) {
	for _, in := range []string{
		`{"op":"embed","nodes":[0]}`,
		`{"op":"classify","nodes":[5,1,9]}`,
		`{"nodes":[2,3],"op":"embed"}`, // field order normalizes
	} {
		req, err := ParseRequest([]byte(in))
		if err != nil {
			t.Fatalf("ParseRequest(%q): %v", in, err)
		}
		out := req.Render()
		req2, err := ParseRequest(out)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", out, err)
		}
		if !req.Equal(req2) {
			t.Fatalf("fixed point broken: %+v vs %+v", req, req2)
		}
		if !bytes.Equal(out, req2.Render()) {
			t.Fatalf("render not canonical: %q vs %q", out, req2.Render())
		}
	}
}

func TestResponseChecksumSensitivity(t *testing.T) {
	a := &Response{Op: OpEmbed, Rows: [][]float32{{1, 2}, {3}}}
	b := &Response{Op: OpEmbed, Rows: [][]float32{{1, 2}, {3}}}
	if a.Checksum() != b.Checksum() {
		t.Fatal("identical responses disagree in checksum")
	}
	b.Rows[1][0] = 3.0000002
	if a.Checksum() == b.Checksum() {
		t.Fatal("one-ulp row change not detected")
	}
	c := &Response{Op: OpClassify, Classes: []int{1, 2}}
	d := &Response{Op: OpClassify, Classes: []int{2, 1}}
	if c.Checksum() == d.Checksum() {
		t.Fatal("class order change not detected")
	}
}

func TestResponseWireRoundTrip(t *testing.T) {
	r := &Response{Op: OpEmbed, Rows: [][]float32{{0.1, -2.5e-8, 3}}}
	got, err := ParseResponse(r.Render())
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum() != r.Checksum() {
		t.Fatalf("response checksum changed across the wire: %x vs %x", got.Checksum(), r.Checksum())
	}
}

func TestLRUDeterministicEviction(t *testing.T) {
	var evicted []int
	c := newLRU[int](2)
	c.onEvict = func(k int, _ int) { evicted = append(evicted, k) }
	c.put(1, 10)
	c.put(2, 20)
	if _, ok := c.get(1); !ok { // promotes 1 over 2
		t.Fatal("missing key 1")
	}
	c.put(3, 30) // evicts 2
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted = %v, want [2]", evicted)
	}
	if _, ok := c.get(2); ok {
		t.Fatal("key 2 survived eviction")
	}
	if v, ok := c.get(1); !ok || v != 10 {
		t.Fatalf("key 1 = %d,%v", v, ok)
	}
	// Capacity 0 disables.
	z := newLRU[int](0)
	z.put(1, 1)
	if z.Len() != 0 {
		t.Fatal("zero-capacity cache stored an entry")
	}
}
