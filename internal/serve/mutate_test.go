package serve

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/datasets"
	"repro/internal/dyn"
	"repro/internal/graph"
)

// mutableEngine builds the shared mutable fixture.
func mutableEngine(t testing.TB, g *graph.Graph, cfg EngineConfig) *Engine {
	t.Helper()
	cfg.Mutable = true
	e, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// coverageRequests touches every node: ball invalidation is only
// honest if rows inside AND outside the ball are probed.
func coverageRequests(n int) []*Request {
	var reqs []*Request
	for lo := 0; lo < n; lo += 16 {
		hi := lo + 16
		if hi > n {
			hi = n
		}
		nodes := make([]int, 0, hi-lo)
		for v := lo; v < hi; v++ {
			nodes = append(nodes, v)
		}
		op := OpEmbed
		if (lo/16)%3 == 2 {
			op = OpClassify
		}
		reqs = append(reqs, &Request{Op: op, Nodes: nodes})
	}
	return reqs
}

// mutatedTwin builds a read-only engine over the mutable engine's
// CURRENT graph with its CURRENT permutation adopted — the from-scratch
// reference every post-mutation response must match bit for bit.
func mutatedTwin(t testing.TB, e *Engine, cfg EngineConfig) *Engine {
	t.Helper()
	rg := graph.FromBitMatrix(e.dyn.Matrix())
	g2, err := rg.ApplyPermutation(e.inv)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Perm = e.Perm()
	twin, err := NewEngine(g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return twin
}

// batches splits a generated mutation stream into fixed-size batches.
func batches(st *dyn.Stream, size int) [][]dyn.Mutation {
	var out [][]dyn.Mutation
	for lo := 0; lo < len(st.Ops); lo += size {
		hi := lo + size
		if hi > len(st.Ops) {
			hi = len(st.Ops)
		}
		out = append(out, st.Ops[lo:hi])
	}
	return out
}

func TestMutateNotMutable(t *testing.T) {
	g := testGraph(t, 128)
	e, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if e.Mutable() {
		t.Fatal("read-only engine reports mutable")
	}
	if _, err := e.Mutate([]dyn.Mutation{{Op: dyn.OpInsert, U: 0, V: 1}}); !errors.Is(err, ErrNotMutable) {
		t.Fatalf("Mutate on read-only engine: %v", err)
	}
	s, err := NewServer(e, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.SubmitMutate([]dyn.Mutation{{Op: dyn.OpInsert, U: 0, V: 1}}); !errors.Is(err, ErrNotMutable) {
		t.Fatalf("SubmitMutate on read-only engine: %v", err)
	}
}

// TestMutateEpochLockstep: every batch advances the epoch by exactly
// one — including a fully-rejected batch — and responses are stamped
// with the epoch they were computed against.
func TestMutateEpochLockstep(t *testing.T) {
	g := testGraph(t, 128)
	e := mutableEngine(t, g, EngineConfig{Seed: 7, ShardRows: 64, Mode: ModeCSR})
	if e.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", e.Epoch())
	}
	st := dyn.GenerateStream(g, 12, 3)
	for i, b := range batches(st, 4) {
		out, err := e.Mutate(b)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(i + 1); out.Epoch != want || e.Epoch() != want {
			t.Fatalf("batch %d: epoch %d/%d, want %d", i, out.Epoch, e.Epoch(), want)
		}
	}
	// A fully-rejected batch (vertex out of range) still advances the
	// epoch: epochs mirror WAL record sequence numbers one-to-one.
	before := e.Epoch()
	out, err := e.Mutate([]dyn.Mutation{{Op: dyn.OpInsert, U: 0, V: 99999}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Batch.Applied != 0 || len(out.Batch.Rejected) != 1 {
		t.Fatalf("outcome = %+v, want fully rejected", out.Batch)
	}
	if out.Epoch != before+1 {
		t.Fatalf("rejected batch epoch %d, want %d", out.Epoch, before+1)
	}
	resp := e.ServeBatch([]*Request{{Op: OpEmbed, Nodes: []int{5}}}, false)[0]
	if resp.Epoch != e.Epoch() {
		t.Fatalf("response epoch %d, engine epoch %d", resp.Epoch, e.Epoch())
	}
}

// TestMutateBitIdenticalToFreshEngine: after a run of mutation batches
// interleaved with (cache-warming) queries, every response matches a
// from-scratch engine built over the mutated graph — the ball
// invalidation kept exactly the rows it was allowed to keep.
func TestMutateBitIdenticalToFreshEngine(t *testing.T) {
	for _, mode := range []Mode{ModeCSR, ModeHybrid} {
		g := testGraph(t, 256)
		cfg := EngineConfig{Seed: 7, ShardRows: 64, CacheRows: 1 << 20, Mode: mode}
		e := mutableEngine(t, g, cfg)
		reqs := coverageRequests(256)
		st := dyn.GenerateStream(g, 48, 11)
		for _, b := range batches(st, 8) {
			// Warm every row so any under-invalidation would serve a
			// stale cached value after the mutation lands.
			e.ServeBatch(reqs, false)
			if _, err := e.Mutate(b); err != nil {
				t.Fatal(err)
			}
		}
		e.WaitWarm()
		twin := mutatedTwin(t, e, cfg)
		got := e.ServeBatch(reqs, false)
		want := twin.ServeBatch(reqs, false)
		if !bitEqualResponses(want, got) {
			t.Fatalf("mode %s: mutated engine diverged from fresh engine over the mutated graph", mode)
		}
	}
}

// TestMutateRebuildWindow: an impossibly small staleness budget forces
// a full re-reorder on the first effective batch; the engine enters
// the CSR-served window, the warmer restores compressed dispatch, and
// post-warm responses match a fresh engine over the rebuilt state.
func TestMutateRebuildWindow(t *testing.T) {
	// The community graph compresses well, so the last reorder bought
	// real savings and drift against a tiny budget forces a rebuild
	// (an ER graph can price saved = 0, which never rebuilds).
	g, err := datasets.Family("community", 40, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	cfg := EngineConfig{Seed: 7, ShardRows: 64, Mode: ModeHybrid, StalenessBudget: 1e-12}
	e := mutableEngine(t, g, cfg)
	st := dyn.GenerateStream(g, 48, 19)
	rebuilt := false
	for _, b := range batches(st, 8) {
		out, err := e.Mutate(b)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt = rebuilt || out.Batch.Rebuilt
		// Reads must stay live inside the window.
		resp := e.ServeBatch([]*Request{{Op: OpEmbed, Nodes: []int{0, n/2, n - 1}}}, false)[0]
		if len(resp.Rows) != 3 {
			t.Fatal("short response during window")
		}
	}
	if !rebuilt {
		t.Fatal("staleness budget 1e-12 never triggered a rebuild")
	}
	e.WaitWarm()
	reqs := coverageRequests(n)
	twin := mutatedTwin(t, e, EngineConfig{Seed: 7, ShardRows: 64, Mode: ModeHybrid})
	if !bitEqualResponses(twin.ServeBatch(reqs, false), e.ServeBatch(reqs, false)) {
		t.Fatal("post-rebuild engine diverged from fresh engine")
	}
}

// TestMutableSnapshotRestore: a snapshot taken mid-mutation-stream
// restores bit-identically AND keeps making the same decisions — the
// restored engine and the uninterrupted one agree after further
// identical batches (the staleness baseline survived the round trip).
func TestMutableSnapshotRestore(t *testing.T) {
	g := testGraph(t, 256)
	cfg := EngineConfig{Seed: 7, ShardRows: 64, Mode: ModeCSR, Mutable: true}
	e, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := dyn.GenerateStream(g, 40, 23)
	bs := batches(st, 8)
	for _, b := range bs[:2] {
		if _, err := e.Mutate(b); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "mut.snapshot")
	if err := e.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreEngine(path, EngineConfig{Mode: ModeCSR, Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != e.Epoch() {
		t.Fatalf("restored epoch %d, want %d", r.Epoch(), e.Epoch())
	}
	reqs := coverageRequests(256)
	if !bitEqualResponses(e.ServeBatch(reqs, false), r.ServeBatch(reqs, false)) {
		t.Fatal("restored engine diverged at the snapshot point")
	}
	for _, b := range bs[2:] {
		if _, err := e.Mutate(b); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Mutate(b); err != nil {
			t.Fatal(err)
		}
	}
	if e.Epoch() != r.Epoch() {
		t.Fatalf("epochs diverged: %d vs %d", e.Epoch(), r.Epoch())
	}
	if !bitEqualResponses(e.ServeBatch(reqs, false), r.ServeBatch(reqs, false)) {
		t.Fatal("restored engine diverged after further identical batches")
	}
}

// TestSnapshotMismatchField: the fingerprint rejection names the
// mismatched field and both values (the bug was a bare ErrSnapshot
// with the field name lost in an unstructured message).
func TestSnapshotMismatchField(t *testing.T) {
	g := testGraph(t, 128)
	e, err := NewEngine(g, EngineConfig{Seed: 5, ShardRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.snapshot")
	if err := e.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		cfg   EngineConfig
		field string
		have  int64
	}{
		{EngineConfig{Hops: 7}, "hops", 7},
		{EngineConfig{Seed: 999}, "seed", 999},
		{EngineConfig{FeatureDim: 3}, "feature dim", 3},
		{EngineConfig{ShardRows: 12}, "shard rows", 12},
	}
	for _, c := range cases {
		_, err := RestoreEngine(path, c.cfg)
		var mm *SnapshotMismatch
		if !errors.As(err, &mm) {
			t.Fatalf("%s: error %v is not a *SnapshotMismatch", c.field, err)
		}
		if mm.Field != c.field || mm.Have != c.have {
			t.Fatalf("mismatch detail = %+v, want field %q have %d", mm, c.field, c.have)
		}
		if !errors.Is(err, ErrSnapshot) {
			t.Fatalf("%s: detail does not unwrap to ErrSnapshot", c.field)
		}
	}
}
