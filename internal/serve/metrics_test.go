package serve

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestCanonicalSnapshotInvariantToBatching is the serve instance of
// the volatile/deterministic segregation contract — the flake class
// the serving layer must not reintroduce: replaying the same request
// multiset under radically different batching/caching configurations
// must produce byte-identical canonical obs snapshots, because every
// scheduling-dependent serve metric (batch sizes, queue depths, cache
// hits/misses/evictions, shard builds, dispatch counts, batch spans)
// lives in a volatile section that Canonical zeroes.
func TestCanonicalSnapshotInvariantToBatching(t *testing.T) {
	g := testGraph(t, 256)
	reqs := flatScript(t, ScriptConfig{Seed: 6, Clients: 3, Requests: 12, N: 256, ClassifyEvery: 4})

	run := func(cacheRows, shardCap, batchSize int) []byte {
		reg := obs.NewRegistry()
		eng, err := NewEngine(g, EngineConfig{
			Seed: 7, ShardRows: 64, CacheRows: cacheRows, ShardCap: shardCap, Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Vary the coalescing shape directly at the engine: one-at-a-
		// time vs giant batches exercise completely different cache and
		// dispatch sequences.
		if batchSize <= 1 {
			for _, r := range reqs {
				eng.ServeBatch([]*Request{r}, false)
			}
		} else {
			for i := 0; i < len(reqs); i += batchSize {
				j := i + batchSize
				if j > len(reqs) {
					j = len(reqs)
				}
				eng.ServeBatch(reqs[i:j], false)
			}
		}
		data, err := reg.Snapshot().Canonical().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	a := run(16, 1, 1)
	b := run(0, 0, 7)
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical snapshots differ across batching/caching configs:\n%s\n----\n%s", a, b)
	}
}

// TestServeMetricSegregation asserts each serve metric lands in the
// section its determinism class requires.
func TestServeMetricSegregation(t *testing.T) {
	g := testGraph(t, 256)
	reg := obs.NewRegistry()
	eng, err := NewEngine(g, EngineConfig{Seed: 7, ShardRows: 64, CacheRows: 8, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(eng, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, r := range flatScript(t, ScriptConfig{Seed: 8, Clients: 1, Requests: 10, N: 256}) {
		if _, err := srv.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	s := reg.Snapshot()
	for _, name := range []string{"serve/requests", "serve/rows"} {
		if s.Counters[name] == 0 {
			t.Errorf("deterministic counter %s missing", name)
		}
	}
	for _, name := range []string{"serve/cache/miss", "serve/shard/build"} {
		if s.Volatile[name] == 0 {
			t.Errorf("volatile counter %s missing", name)
		}
	}
	for _, name := range []string{"serve/batch_rows", "serve/batch_requests", "serve/queue_depth"} {
		if s.VolatileHists[name].Count == 0 {
			t.Errorf("volatile hist %s missing", name)
		}
	}
	for _, name := range []string{"serve/batch", "serve/dispatch"} {
		if s.VolatileSpans[name].Count == 0 {
			t.Errorf("volatile span %s missing", name)
		}
	}
	// Nothing wall-clock-shaped may survive canonicalization.
	c := s.Canonical()
	for name, sp := range c.VolatileSpans {
		if sp.Count != 0 || sp.TotalNs != 0 {
			t.Errorf("canonical volatile span %s not zeroed: %+v", name, sp)
		}
	}
	for name, h := range c.VolatileHists {
		if h.Count != 0 || h.Sum != 0 {
			t.Errorf("canonical volatile hist %s not zeroed: %+v", name, h)
		}
	}
}
