package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/resil"
)

func newTestServer(t *testing.T, ecfg EngineConfig, scfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	g := testGraph(t, 256)
	if ecfg.ShardRows == 0 {
		ecfg.ShardRows = 64
	}
	eng, err := NewEngine(g, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(eng, scfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

func postQuery(t *testing.T, hs *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(hs.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// goodRequest asserts the server still answers a valid query — the
// no-state-corruption check every degenerate case is followed by.
func goodRequest(t *testing.T, hs *httptest.Server) {
	t.Helper()
	status, data := postQuery(t, hs, `{"op":"classify","nodes":[1,2,3]}`)
	if status != http.StatusOK {
		t.Fatalf("follow-up good request: status %d body %s", status, data)
	}
	var r Response
	if err := json.Unmarshal(data, &r); err != nil || len(r.Classes) != 3 {
		t.Fatalf("follow-up good request: bad body %s (err %v)", data, err)
	}
}

func TestHTTPDegenerateRequests(t *testing.T) {
	_, hs := newTestServer(t,
		EngineConfig{Seed: 7, CacheRows: 16},
		ServerConfig{MaxRequestNodes: 10})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed json", `{"op":`, http.StatusBadRequest},
		{"trailing garbage", `{"op":"embed","nodes":[1]}x`, http.StatusBadRequest},
		{"unknown op", `{"op":"destroy","nodes":[1]}`, http.StatusBadRequest},
		{"empty node set", `{"op":"embed","nodes":[]}`, http.StatusBadRequest},
		{"negative id", `{"op":"embed","nodes":[-4]}`, http.StatusBadRequest},
		{"out of range id", `{"op":"embed","nodes":[99999]}`, http.StatusBadRequest},
		{"duplicate ids", `{"op":"embed","nodes":[7,7]}`, http.StatusBadRequest},
		{"oversized batch", `{"op":"embed","nodes":[0,1,2,3,4,5,6,7,8,9,10]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, data := postQuery(t, hs, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d (body %s), want %d", status, data, tc.status)
			}
			var we wireError
			if err := json.Unmarshal(bytes.TrimSpace(data), &we); err != nil || we.Error == "" {
				t.Fatalf("error body not typed JSON: %s (err %v)", data, err)
			}
			goodRequest(t, hs)
		})
	}
}

func TestHTTPMethodAndEndpoints(t *testing.T) {
	_, hs := newTestServer(t, EngineConfig{Seed: 7, Obs: obs.NewRegistry()}, ServerConfig{})
	resp, err := http.Get(hs.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query status = %d", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}
	goodRequest(t, hs)
	for _, q := range []string{"", "?canonical=1"} {
		resp, err = http.Get(hs.URL + "/statz" + q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var snap obs.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("/statz%s not a snapshot: %v", q, err)
		}
		if snap.Counters["serve/requests"] == 0 {
			t.Fatalf("/statz%s missing serve/requests: %s", q, body)
		}
	}
}

func TestQueueFull429AndRecovery(t *testing.T) {
	plan, err := resil.ParsePlan("straggler@serve/batch:1:300ms")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv, hs := newTestServer(t,
		EngineConfig{Seed: 7, Obs: reg, Inj: resil.NewInjector(plan, reg)},
		ServerConfig{QueueLimit: 1, MaxBatchRequests: 1})

	// First request: taken by the dispatcher, which then stalls in the
	// injected straggler. Wait until it has left the queue.
	first := make(chan error, 1)
	go func() {
		_, err := srv.Submit(&Request{Op: OpEmbed, Nodes: []int{0}})
		first <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if reg.Snapshot().VolatileHists["serve/queue_depth"].Count >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never took the first request")
		}
		time.Sleep(time.Millisecond)
	}
	// Second request occupies the queue's single slot; third must be
	// rejected with 429 while the dispatcher is still stalled.
	second := make(chan error, 1)
	go func() {
		_, err := srv.Submit(&Request{Op: OpEmbed, Nodes: []int{1}})
		second <- err
	}()
	for {
		reg.Snapshot()
		if func() bool {
			srv.co.mu.Lock()
			defer srv.co.mu.Unlock()
			return len(srv.co.queue) >= 1
		}() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	status, data := postQuery(t, hs, `{"op":"embed","nodes":[2]}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d (body %s), want 429", status, data)
	}
	if err := <-first; err != nil {
		t.Fatalf("first request failed: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second request failed: %v", err)
	}
	goodRequest(t, hs)
	if reg.Snapshot().Volatile["serve/rejected"] == 0 {
		t.Fatal("serve/rejected not counted")
	}
}

func TestCacheSizeZeroConfigServes(t *testing.T) {
	_, hs := newTestServer(t, EngineConfig{Seed: 7, CacheRows: 0}, ServerConfig{})
	goodRequest(t, hs)
	goodRequest(t, hs)
}

func TestClosedServerRejects(t *testing.T) {
	g := testGraph(t, 64)
	eng, err := NewEngine(g, EngineConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(eng, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := srv.Submit(&Request{Op: OpEmbed, Nodes: []int{0}}); err != ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
	srv.Close() // idempotent
	if StatusOf(ErrClosed) != http.StatusServiceUnavailable {
		t.Fatal("ErrClosed status mapping")
	}
}

func TestServerConfigValidation(t *testing.T) {
	g := testGraph(t, 64)
	eng, err := NewEngine(g, EngineConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(eng, ServerConfig{QueueLimit: -1}); err == nil {
		t.Fatal("negative QueueLimit accepted")
	}
}
