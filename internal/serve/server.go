package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/dyn"
	"repro/internal/wal"
)

// ServerConfig sizes the serving frontend: coalescing, admission
// control and degradation thresholds. The zero value is a valid
// light-traffic configuration (no batching caps, unbounded queue,
// no degradation, no per-request node budget).
type ServerConfig struct {
	// Window is an optional fixed collection delay before each batch
	// is taken (0 = pure batching-by-backpressure, the default: the
	// dispatcher takes whatever queued while the previous batch ran).
	Window time.Duration
	// MaxBatchRequests caps requests per coalesced batch; 1 disables
	// coalescing (the singleton baseline the bench suite compares
	// against), 0 = unlimited.
	MaxBatchRequests int
	// MaxBatchRows caps total nodes per batch (0 = unlimited; a
	// single request larger than the cap still dispatches alone).
	MaxBatchRows int
	// QueueLimit bounds the admission queue; a request arriving at a
	// full queue is rejected with ErrQueueFull / HTTP 429. 0 =
	// unbounded.
	QueueLimit int
	// DegradeDepth is the load-degradation rung's trigger: a batch
	// taken while more than DegradeDepth requests were queued runs
	// the gathered-row CSR path instead of full shard dispatches.
	// 0 disables degradation.
	DegradeDepth int
	// MaxRequestNodes rejects single requests above this node count
	// with ErrOversized / HTTP 413. 0 = unbounded.
	MaxRequestNodes int

	// MutateQueueLimit bounds the mutation admission queue; a batch
	// arriving at a full queue is rejected with ErrMutateQueueFull /
	// HTTP 429. 0 = unbounded. Ignored on non-mutable engines.
	MutateQueueLimit int
	// WAL, when set, makes mutations durable: each accepted batch is
	// appended and fsynced (group commit) BEFORE its response, so a
	// crashed process replays the log and recovers every acknowledged
	// batch (serve.OpenWAL). Requires a mutable engine. The caller
	// owns closing the log after Server.Close.
	WAL *wal.Log
}

func (c ServerConfig) validate() error {
	if c.Window < 0 || c.MaxBatchRequests < 0 || c.MaxBatchRows < 0 ||
		c.QueueLimit < 0 || c.DegradeDepth < 0 || c.MaxRequestNodes < 0 ||
		c.MutateQueueLimit < 0 {
		return ErrConfig
	}
	return nil
}

// Server is the serving frontend: the engine plus the coalescing
// dispatcher (and, on mutable engines, the WAL-backed mutation
// dispatcher), exposed both in-process (Submit / SubmitMutate) and
// over HTTP (Handler). Safe for concurrent use.
type Server struct {
	eng *Engine
	co  *coalescer
	mut *mutator // nil on read-only engines
}

// NewServer starts the dispatchers over an engine.
func NewServer(eng *Engine, cfg ServerConfig) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.WAL != nil && !eng.Mutable() {
		return nil, fmt.Errorf("%w: WAL requires a mutable engine", ErrConfig)
	}
	s := &Server{eng: eng, co: newCoalescer(eng, cfg)}
	if eng.Mutable() {
		s.mut = newMutator(eng, cfg.WAL, cfg.MutateQueueLimit)
	}
	return s, nil
}

// Engine returns the underlying engine.
func (s *Server) Engine() *Engine { return s.eng }

// Submit runs one request through the batching dispatcher — the
// in-process path the load generator, bench suite and oracles use
// (identical semantics to POST /v1/query minus the wire codec).
func (s *Server) Submit(req *Request) (*Response, error) {
	return s.co.submit(req)
}

// SubmitMutate runs one mutation batch through the WAL-backed
// mutation dispatcher (identical semantics to POST /v1/mutate minus
// the wire codec). Blocks until the batch is durable and applied.
func (s *Server) SubmitMutate(ops []dyn.Mutation) (MutateOutcome, error) {
	if s.mut == nil {
		return MutateOutcome{}, ErrNotMutable
	}
	return s.mut.submit(ops)
}

// Close stops the dispatchers; queued requests fail with ErrClosed.
func (s *Server) Close() {
	if s.mut != nil {
		s.mut.close()
	}
	s.co.close()
}

// StatusOf maps a Submit error to its HTTP status.
func StatusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrBadOp), errors.Is(err, ErrEmptyNodes),
		errors.Is(err, ErrDuplicateNode), errors.Is(err, ErrNodeRange):
		return http.StatusBadRequest
	case errors.Is(err, ErrEmptyMutations):
		return http.StatusBadRequest
	case errors.Is(err, ErrOversized):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrMutateQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed), errors.Is(err, ErrMutateFaulted):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotMutable):
		return http.StatusNotImplemented
	default:
		return http.StatusInternalServerError
	}
}

// maxBodyBytes bounds /v1/query request bodies.
const maxBodyBytes = 1 << 20

// Handler returns the HTTP surface:
//
//	POST /v1/query   one Request in, one Response out
//	POST /v1/mutate  one MutateRequest in, one MutateResponse out
//	                 (501 on read-only engines)
//	GET  /healthz    liveness
//	GET  /statz      obs snapshot (?canonical=1 for the deterministic
//	                 projection)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/mutate", s.handleMutate)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "serve: POST required")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "serve: body too large")
		return
	}
	req, err := ParseRequest(body)
	if err != nil {
		s.eng.Obs().Counter("serve/errors/parse").Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := s.Submit(req)
	if err != nil {
		writeError(w, StatusOf(err), err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(resp.Render(), '\n'))
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "serve: POST required")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "serve: body too large")
		return
	}
	_, ops, err := ParseMutateRequest(body)
	if err != nil {
		s.eng.Obs().Counter("serve/errors/parse").Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	out, err := s.SubmitMutate(ops)
	if err != nil {
		writeError(w, StatusOf(err), err.Error())
		return
	}
	resp := &MutateResponse{
		Epoch:       out.Epoch,
		Applied:     out.Batch.Applied,
		Rejected:    len(out.Batch.Rejected),
		RepairSwaps: out.Batch.RepairSwaps,
		Rebuilt:     out.Batch.Rebuilt,
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(resp.Render(), '\n'))
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Obs().Snapshot()
	if r.URL.Query().Get("canonical") == "1" {
		snap = snap.Canonical()
	}
	data, err := snap.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(&wireError{Error: msg}) // a string field cannot fail
	w.Write(append(body, '\n'))
}
