package serve

// lru is a strict-recency least-recently-used cache with int keys —
// the deterministic eviction structure behind both the per-node
// aggregation-row cache and the compressed shard-handle cache. Get
// and put both promote the entry to most-recently-used, so for a
// fixed operation sequence the eviction order (and hence the cache's
// content after any prefix) is fully determined. Not safe for
// concurrent use; the engine's mutex serializes access.
type lru[V any] struct {
	cap     int
	entries map[int]*lruEntry[V]
	head    *lruEntry[V] // most recently used
	tail    *lruEntry[V] // least recently used
	// onEvict, when set, observes each evicted (key, value) — how the
	// shard cache releases a handle's built state.
	onEvict func(key int, v V)
}

type lruEntry[V any] struct {
	key        int
	val        V
	prev, next *lruEntry[V]
}

// newLRU returns a cache bounded to capacity entries. The degenerate
// capacities are pinned contract, not accident: capacity <= 0 means
// the cache is DISABLED — every get misses, every put is dropped
// without touching onEvict, Len stays 0 — never unbounded growth and
// never a panic. Negative capacities are clamped to 0 so the eviction
// loop's `len > cap` bound can never be satisfied vacuously forever.
func newLRU[V any](capacity int) *lru[V] {
	if capacity < 0 {
		capacity = 0
	}
	return &lru[V]{cap: capacity, entries: make(map[int]*lruEntry[V])}
}

// Len returns the number of cached entries.
func (c *lru[V]) Len() int { return len(c.entries) }

// get returns the cached value and promotes the entry.
func (c *lru[V]) get(key int) (V, bool) {
	e, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.promote(e)
	return e.val, true
}

// put inserts or refreshes an entry, evicting the LRU tail when the
// cache is over capacity.
func (c *lru[V]) put(key int, v V) {
	if c.cap <= 0 {
		return
	}
	if e, ok := c.entries[key]; ok {
		e.val = v
		c.promote(e)
		return
	}
	e := &lruEntry[V]{key: key, val: v}
	c.entries[key] = e
	c.pushFront(e)
	for len(c.entries) > c.cap {
		t := c.tail
		c.unlink(t)
		delete(c.entries, t.key)
		if c.onEvict != nil {
			c.onEvict(t.key, t.val)
		}
	}
}

// remove drops one entry if present, without firing onEvict — this is
// invalidation (the value became wrong), not capacity eviction (the
// value was right but cold).
func (c *lru[V]) remove(key int) {
	e, ok := c.entries[key]
	if !ok {
		return
	}
	c.unlink(e)
	delete(c.entries, key)
}

// clear drops every entry without firing onEvict (whole-cache
// invalidation after a permutation change).
func (c *lru[V]) clear() {
	c.entries = make(map[int]*lruEntry[V])
	c.head, c.tail = nil, nil
}

func (c *lru[V]) promote(e *lruEntry[V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *lru[V]) pushFront(e *lruEntry[V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lru[V]) unlink(e *lruEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
