package plan

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/pattern"
	"repro/internal/predictor/cycle"
	"repro/internal/sched"
	"repro/internal/spmm"
	"repro/internal/sptc"
	"repro/internal/venom"
)

// Operands bundles one SpMM dispatch's sparse operands: the CSR matrix
// plus (when a split exists) the V:N:M compressed half and CSR
// residual the hybrid classes consume.
type Operands struct {
	A     *csr.Matrix
	Comp  *venom.Matrix
	Resid *csr.Matrix
}

// Prepare builds planner operands from a CSR matrix: the hybrid split
// at the given pattern, with the CSR halves compacted into flat
// exact-capacity storage (csr.Compact) so planned dispatches walk
// densely packed sparse metadata. A split failure (malformed pattern)
// is an error; callers that only want the CSR classes can construct
// Operands{A: a} directly.
func Prepare(a *csr.Matrix, p pattern.VNM) (Operands, error) {
	comp, resid, err := venom.SplitToConform(a, p)
	if err != nil {
		return Operands{}, fmt.Errorf("plan: prepare split: %w", err)
	}
	return Operands{A: a.Compact(), Comp: comp, Resid: resid.Compact()}, nil
}

// Profile extracts the dispatch profile the planner ranks kernels on.
func (op Operands) Profile(h int, cm sptc.CostModel) cycle.OpProfile {
	return cycle.ProfileOf(op.A, op.Comp, op.Resid, h, cm)
}

// Prediction is one kernel class's predicted wall time.
type Prediction struct {
	Kernel cycle.KernelClass
	Ns     float64
}

// Decision is the planner's choice for one dispatch, with the full
// ranking kept for introspection (bench rows, regret oracles).
type Decision struct {
	// Kernel is the chosen class.
	Kernel cycle.KernelClass
	// Workers is the pool size the choice assumed (1 for the serial
	// classes).
	Workers int
	// TileTarget is the calibrated tile-cost target the parallel
	// classes should run with; 0 = pool automatic.
	TileTarget int64
	// Predictions holds every eligible class's predicted ns, sorted
	// fastest first (ties broken by kernel name, so the ordering — and
	// hence the choice — is deterministic for a fixed table).
	Predictions []Prediction
}

// PredictedNs returns the predicted wall time of the chosen kernel.
func (d Decision) PredictedNs() float64 {
	if len(d.Predictions) == 0 {
		return math.Inf(1)
	}
	return d.Predictions[0].Ns
}

// Planner ranks kernel classes by predicted wall time: model cycles
// (cycle.ModelCycles) times the measured ns-per-cycle coefficient
// (Calibration). Decisions are pure functions of (profile, table,
// workers): no timing happens at dispatch.
type Planner struct {
	// Calib is the measured coefficient table; required.
	Calib *Calibration
	// Cost is the cycle model (zero value = sptc.DefaultCostModel()).
	Cost sptc.CostModel
	// Workers is the pool size parallel classes would run on; values
	// below 2 exclude the parallel classes from ranking (a 1-worker
	// pool runs kernels inline, so the serial twin always wins by the
	// pool's own overhead).
	Workers int
}

// cost returns the planner's cycle model, defaulting when unset.
func (pl *Planner) cost() sptc.CostModel {
	if pl.Cost.FragRows == 0 {
		return sptc.DefaultCostModel()
	}
	return pl.Cost
}

// eligible reports whether kernel class k can run profile p on this
// planner's pool.
func (pl *Planner) eligible(k cycle.KernelClass, p cycle.OpProfile) bool {
	if k.IsHybrid() && !p.HasSplit {
		return false
	}
	if k.IsParallel() && pl.Workers < 2 {
		return false
	}
	return true
}

// PredictNs returns the predicted wall time of kernel class k on
// profile p: model cycles x calibrated ns/cycle. Returns +Inf when the
// class is ineligible or the table has no coefficient for it.
func (pl *Planner) PredictNs(k cycle.KernelClass, p cycle.OpProfile) float64 {
	if pl.Calib == nil || !pl.eligible(k, p) {
		return math.Inf(1)
	}
	coeff, ok := pl.Calib.NsPerCycle(k)
	if !ok {
		return math.Inf(1)
	}
	cycles := cycle.ModelCycles(pl.cost(), k, p)
	if cycles <= 0 {
		return math.Inf(1)
	}
	return coeff * cycles
}

// Choose ranks every eligible kernel class on profile p and returns
// the decision. Deterministic: same profile, table and worker count
// always yield the same choice (ties break toward the
// lexicographically smaller kernel name).
func (pl *Planner) Choose(p cycle.OpProfile) Decision {
	d := Decision{Workers: 1}
	if pl.Calib != nil {
		d.TileTarget = pl.Calib.TileTarget
	}
	for _, k := range cycle.KernelClasses() {
		ns := pl.PredictNs(k, p)
		if math.IsInf(ns, 1) {
			continue
		}
		d.Predictions = append(d.Predictions, Prediction{Kernel: k, Ns: ns})
	}
	sort.SliceStable(d.Predictions, func(i, j int) bool {
		if d.Predictions[i].Ns != d.Predictions[j].Ns {
			return d.Predictions[i].Ns < d.Predictions[j].Ns
		}
		return d.Predictions[i].Kernel < d.Predictions[j].Kernel
	})
	if len(d.Predictions) == 0 {
		// Nothing calibrated: fall back to the serial CSR reference,
		// which every operand supports.
		d.Kernel = cycle.KernelCSRSerial
		return d
	}
	d.Kernel = d.Predictions[0].Kernel
	if d.Kernel.IsParallel() {
		d.Workers = pl.Workers
	}
	return d
}

// ChooseOperands profiles the operands at width h and plans the
// dispatch in one call.
func (pl *Planner) ChooseOperands(op Operands, h int) Decision {
	return pl.Choose(op.Profile(h, pl.cost()))
}

// Execute runs the decided kernel on the operands. pool sizes the
// parallel classes (the decision's TileTarget is applied to it);
// arena, when non-nil, supplies the output and residual-scratch
// storage so repeated planned dispatches allocate nothing. The result
// is bitwise identical to invoking the chosen kernel directly — the
// planner adds no arithmetic, only selection — which is what
// check.PlannerEquivalence enforces.
func Execute(d Decision, pool *sched.Pool, op Operands, b *dense.Matrix, arena *Arena) *dense.Matrix {
	if pool == nil {
		pool = sched.Default()
	}
	if d.TileTarget > 0 {
		pool = pool.WithTarget(d.TileTarget)
	}
	var c, scratch *dense.Matrix
	if arena != nil {
		c = arena.out.Matrix(op.A.N, b.Cols)
	} else {
		c = dense.NewMatrix(op.A.N, b.Cols)
	}
	needScratch := d.Kernel.IsHybrid() && op.Resid != nil && op.Resid.NNZ() > 0
	if needScratch {
		if arena != nil {
			scratch = arena.scratch.Matrix(op.Resid.N, b.Cols)
		} else {
			scratch = dense.NewMatrix(op.Resid.N, b.Cols)
		}
	}
	switch d.Kernel {
	case cycle.KernelCSRParallel:
		spmm.CSRPoolInto(pool, c, op.A, b)
	case cycle.KernelHybridSerial:
		spmm.HybridSerialInto(c, scratch, op.Comp, op.Resid, b)
	case cycle.KernelHybridParallel:
		spmm.HybridPoolInto(pool, c, scratch, op.Comp, op.Resid, b)
	default:
		spmm.CSRSerialInto(c, op.A, b)
	}
	return c
}

// Arena holds the reusable output and scratch storage of a planned
// dispatch loop (dense.Arena semantics: one live result per arena).
type Arena struct {
	out     dense.Arena
	scratch dense.Arena
}
