package plan

import (
	"math"
	"testing"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/predictor/cycle"
	"repro/internal/sched"
	"repro/internal/spmm"
)

// cpuCalib is a fixed table shaped like a real CPU measurement: the
// hybrid classes pay ~3x more ns per modeled cycle (no sparse tensor
// cores), the parallel classes run cheaper per cycle than their serial
// twins (as they would on a multi-core probe).
func cpuCalib() *Calibration {
	return &Calibration{
		Seed: 1, Workers: 4, TileTarget: 512,
		Coeffs: []Coefficient{
			{Kernel: cycle.KernelCSRSerial, NsPerCycle: 0.60},
			{Kernel: cycle.KernelCSRParallel, NsPerCycle: 0.20},
			{Kernel: cycle.KernelHybridSerial, NsPerCycle: 1.80},
			{Kernel: cycle.KernelHybridParallel, NsPerCycle: 0.70},
		},
	}
}

func testOperands(t *testing.T, family string, n int, seed int64) Operands {
	t.Helper()
	g, err := graph.GenerateByName(family, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Prepare(csr.FromGraph(g), pattern.New(4, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// TestChooseDeterministicAndCalibrated: with a fixed table the
// decision is a pure function of the profile, and it reflects the
// calibrated wall-time ordering (not the raw cycle-model ordering).
func TestChooseDeterministicAndCalibrated(t *testing.T) {
	op := testOperands(t, "er", 1024, 3)
	pl := &Planner{Calib: cpuCalib(), Workers: 4}
	prof := op.Profile(64, pl.cost())
	d1 := pl.Choose(prof)
	d2 := pl.Choose(prof)
	if d1.Kernel != d2.Kernel || d1.TileTarget != d2.TileTarget || d1.Workers != d2.Workers {
		t.Fatalf("same profile, different decisions: %+v vs %+v", d1, d2)
	}
	if len(d1.Predictions) != 4 {
		t.Fatalf("want all 4 classes ranked, got %+v", d1.Predictions)
	}
	for i := 1; i < len(d1.Predictions); i++ {
		if d1.Predictions[i-1].Ns > d1.Predictions[i].Ns {
			t.Fatalf("predictions not sorted: %+v", d1.Predictions)
		}
	}
	// On the er regime the cycle model prefers hybrid (the er-8k
	// inversion); the calibrated table must flip that to a CSR class.
	cm := pl.cost()
	if cycle.ModelCycles(cm, cycle.KernelHybridSerial, prof) >=
		cycle.ModelCycles(cm, cycle.KernelCSRSerial, prof) {
		t.Fatal("test premise broken: cycle model no longer prefers hybrid on er")
	}
	if d1.Kernel.IsHybrid() {
		t.Fatalf("calibrated planner still chose %s; predictions %+v", d1.Kernel, d1.Predictions)
	}
	if d1.TileTarget != 512 {
		t.Fatalf("decision dropped the calibrated tile target: %+v", d1)
	}
}

// TestChooseRespectsWorkerCount: a 1-worker planner excludes the
// parallel classes; a 4-worker planner with a parallel-favoring table
// picks one.
func TestChooseRespectsWorkerCount(t *testing.T) {
	op := testOperands(t, "er", 512, 5)
	serial := &Planner{Calib: cpuCalib(), Workers: 1}
	d := serial.Choose(op.Profile(32, serial.cost()))
	if d.Kernel.IsParallel() {
		t.Fatalf("1-worker planner chose parallel class %s", d.Kernel)
	}
	for _, p := range d.Predictions {
		if p.Kernel.IsParallel() {
			t.Fatalf("parallel class %s ranked on a 1-worker planner", p.Kernel)
		}
	}
	par := &Planner{Calib: cpuCalib(), Workers: 4}
	dp := par.Choose(op.Profile(32, par.cost()))
	if !dp.Kernel.IsParallel() {
		t.Fatalf("4-worker planner with parallel-favoring table chose %s (%+v)", dp.Kernel, dp.Predictions)
	}
	if dp.Workers != 4 {
		t.Fatalf("parallel decision carries workers %d, want 4", dp.Workers)
	}
}

// TestChooseWithoutSplit: CSR-only operands never plan a hybrid class.
func TestChooseWithoutSplit(t *testing.T) {
	g, err := graph.GenerateByName("er", 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	op := Operands{A: csr.FromGraph(g)}
	pl := &Planner{Calib: cpuCalib(), Workers: 4}
	d := pl.Choose(op.Profile(16, pl.cost()))
	if d.Kernel.IsHybrid() {
		t.Fatalf("hybrid class %s chosen without a split", d.Kernel)
	}
	if len(d.Predictions) != 2 {
		t.Fatalf("want only the 2 CSR classes ranked, got %+v", d.Predictions)
	}
}

// TestChooseEmptyTableFallsBack: a nil table degrades to the serial
// CSR reference instead of failing.
func TestChooseEmptyTableFallsBack(t *testing.T) {
	op := testOperands(t, "ba", 256, 2)
	pl := &Planner{Workers: 4}
	d := pl.Choose(op.Profile(16, pl.cost()))
	if d.Kernel != cycle.KernelCSRSerial || len(d.Predictions) != 0 {
		t.Fatalf("uncalibrated fallback: %+v", d)
	}
	if !math.IsInf(d.PredictedNs(), 1) {
		t.Fatalf("uncalibrated prediction should be +Inf, got %v", d.PredictedNs())
	}
}

// TestExecuteMatchesDirectKernels: Execute's result is bitwise equal to
// invoking each kernel class directly, with and without an arena.
func TestExecuteMatchesDirectKernels(t *testing.T) {
	op := testOperands(t, "ba", 512, 11)
	b := dense.NewMatrix(op.A.N, 24)
	b.Randomize(1, 13)
	pool := sched.New(2)
	refs := map[cycle.KernelClass]*dense.Matrix{
		cycle.KernelCSRSerial:      spmm.CSRSerial(op.A, b),
		cycle.KernelCSRParallel:    spmm.CSRPool(pool, op.A, b),
		cycle.KernelHybridSerial:   spmm.HybridSerial(op.Comp, op.Resid, b),
		cycle.KernelHybridParallel: spmm.HybridPool(pool, op.Comp, op.Resid, b),
	}
	var arena Arena
	for _, k := range cycle.KernelClasses() {
		d := Decision{Kernel: k, Workers: 2}
		for name, got := range map[string]*dense.Matrix{
			"heap":  Execute(d, pool, op, b, nil),
			"arena": Execute(d, pool, op, b, &arena),
		} {
			if !bitEqual(got, refs[k]) {
				t.Fatalf("%s/%s: planned result differs from direct kernel", k, name)
			}
		}
	}
}

// bitEqual compares two dense matrices for exact bit equality.
func bitEqual(a, b *dense.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestMeasureProducesUsableTable: the one-shot calibration pass yields
// a full, parseable, round-trippable table whose planner chooses a
// kernel at all bench-like widths.
func TestMeasureProducesUsableTable(t *testing.T) {
	if testing.Short() {
		t.Skip("measured calibration skipped in -short mode")
	}
	cal, err := Measure(MeasureConfig{Seed: 20250806, Workers: 2, Repeats: 1, ProbeN: 512, Autotune: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Coeffs) != 4 {
		t.Fatalf("calibration has %d coefficients, want 4: %+v", len(cal.Coeffs), cal)
	}
	for _, co := range cal.Coeffs {
		if co.NsPerCycle <= 0 || math.IsInf(co.NsPerCycle, 0) || math.IsNaN(co.NsPerCycle) {
			t.Fatalf("coefficient %s = %v not positive finite", co.Kernel, co.NsPerCycle)
		}
	}
	rt, err := ParseCalibration(cal.String())
	if err != nil {
		t.Fatalf("measured table does not round-trip: %v", err)
	}
	if rt.String() != cal.String() {
		t.Fatalf("measured table round trip:\n%q\n%q", cal.String(), rt.String())
	}
	op := testOperands(t, "er", 512, 20250806)
	pl := &Planner{Calib: cal, Workers: 2}
	for _, h := range []int{16, 64} {
		d := pl.ChooseOperands(op, h)
		if d.Kernel == "" || math.IsInf(d.PredictedNs(), 1) {
			t.Fatalf("measured planner produced no usable decision at h=%d: %+v", h, d)
		}
	}
}
