package plan

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/predictor/cycle"
	"repro/internal/sched"
	"repro/internal/spmm"
	"repro/internal/sptc"
	"repro/internal/venom"
)

// MeasureConfig sizes the one-shot calibration pass.
type MeasureConfig struct {
	// Seed feeds the probe operand generators.
	Seed int64
	// Workers sizes the pool the parallel classes are probed on;
	// 0 = GOMAXPROCS.
	Workers int
	// Pattern is the V:N:M format the hybrid probe splits to.
	Pattern pattern.VNM
	// Repeats is the best-of timing count per kernel (default 3).
	Repeats int
	// ProbeN, ProbeDegree, ProbeH size the probe operands (defaults
	// 2048 vertices, degree 8, width 64) — large enough that per-call
	// overhead is amortized, small enough that calibration stays a
	// few milliseconds per kernel.
	ProbeN      int
	ProbeDegree float64
	ProbeH      int
	// Cost is the cycle model to calibrate against (zero value =
	// sptc.DefaultCostModel()).
	Cost sptc.CostModel
	// Autotune, when true, additionally sweeps sched.TargetCandidates
	// on the parallel CSR probe and records the winning tile-cost
	// target in the table.
	Autotune bool
}

func (c *MeasureConfig) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Pattern.V == 0 {
		c.Pattern = pattern.New(4, 2, 8)
	}
	if c.Repeats < 1 {
		c.Repeats = 3
	}
	if c.ProbeN <= 0 {
		c.ProbeN = 2048
	}
	if c.ProbeDegree <= 0 {
		c.ProbeDegree = 8
	}
	if c.ProbeH <= 0 {
		c.ProbeH = 64
	}
	if c.Cost.FragRows == 0 {
		c.Cost = sptc.DefaultCostModel()
	}
}

// bestNs times fn's best (minimum) wall time over repeats runs after
// one untimed warmup — the same methodology internal/bench uses, so
// coefficients and bench rows are comparable.
func bestNs(repeats int, fn func()) float64 {
	fn()
	best := time.Duration(1<<63 - 1)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

// Measure runs the one-shot calibration pass: every kernel class is
// timed on a seeded uniform-random probe matrix, and its coefficient
// is measured-ns / model-cycles on that probe. The pass costs a few
// tens of milliseconds and its output — serialized via String — lets
// every later planned dispatch skip measurement entirely.
func Measure(cfg MeasureConfig) (*Calibration, error) {
	cfg.defaults()
	g := graph.ErdosRenyi(cfg.ProbeN, cfg.ProbeDegree/float64(cfg.ProbeN), cfg.Seed)
	a := csr.FromGraph(g).Compact()
	comp, resid, err := venom.SplitToConform(a, cfg.Pattern)
	if err != nil {
		return nil, fmt.Errorf("plan: probe split: %w", err)
	}
	resid = resid.Compact()
	b := dense.NewMatrix(a.N, cfg.ProbeH)
	b.Randomize(1, cfg.Seed+int64(cfg.ProbeH))
	prof := cycle.ProfileOf(a, comp, resid, cfg.ProbeH, cfg.Cost)

	pool := sched.New(cfg.Workers)
	cal := &Calibration{Seed: cfg.Seed, Workers: cfg.Workers}
	if cfg.Autotune {
		cal.TileTarget = sched.Autotune(
			sched.TargetCandidates(int64(a.NNZ()), cfg.Workers), cfg.Repeats,
			func(target int64) { spmm.CSRPool(pool.WithTarget(target), a, b) })
		pool = pool.WithTarget(cal.TileTarget)
	}

	var arena, scratch dense.Arena
	c := arena.Matrix(a.N, cfg.ProbeH)
	s := scratch.Matrix(a.N, cfg.ProbeH)
	runs := map[cycle.KernelClass]func(){
		cycle.KernelCSRSerial:      func() { spmm.CSRSerialInto(c, a, b) },
		cycle.KernelCSRParallel:    func() { spmm.CSRPoolInto(pool, c, a, b) },
		cycle.KernelHybridSerial:   func() { spmm.HybridSerialInto(c, s, comp, resid, b) },
		cycle.KernelHybridParallel: func() { spmm.HybridPoolInto(pool, c, s, comp, resid, b) },
	}
	for _, k := range cycle.KernelClasses() {
		cycles := cycle.ModelCycles(cfg.Cost, k, prof)
		if cycles <= 0 {
			return nil, fmt.Errorf("plan: probe has non-positive model cycles for %s", k)
		}
		ns := bestNs(cfg.Repeats, runs[k])
		cal.Coeffs = append(cal.Coeffs, Coefficient{Kernel: k, NsPerCycle: ns / cycles})
	}
	cal.normalize()
	return cal, nil
}
