// Package plan is the cost-driven execution planner: at dispatch time
// it picks the kernel class (CSR vs V:N:M/SPTC hybrid, serial vs
// sched-parallel) and tile shape for one SpMM, by combining the
// hardware-independent cycle model (internal/predictor/cycle)
// with a one-shot *measured* calibration of this machine — per-kernel
// ns-per-model-cycle coefficients probed on small seeded matrices.
//
// The split matters because the cycle model alone ranks kernels by
// modeled GPU throughput, which inverts on hardware that lacks the
// modeled units: BENCH_spmm.json's er-8k row shows the hybrid kernel
// winning on model cycles (3.0 vs 1.0 flop/cycle) while *losing* on
// measured wall clock, because a CPU has no sparse tensor cores. The
// measured coefficient absorbs exactly that gap: predicted wall time =
// model cycles x calibrated ns/cycle.
//
// Determinism contract: a Calibration serializes to a canonical,
// versioned text form (String) that ParseCalibration round-trips
// exactly, so a planned run replays byte-identically from a pinned
// table — planner decisions are pure functions of (profile, table),
// enforced by the internal/check planner oracles.
package plan

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/predictor/cycle"
)

// CalibSchema identifies the calibration-table text format; bump on
// breaking changes so pinned tables cannot silently misparse.
const CalibSchema = "sogre-calib/v1"

// Coefficient is one kernel class's measured cost rate: nanoseconds of
// wall clock per modeled cycle on the probe workload.
type Coefficient struct {
	Kernel     cycle.KernelClass
	NsPerCycle float64
}

// Calibration is the measured half of the planner's cost estimate: the
// probe provenance (seed, worker count) plus one coefficient per
// kernel class, and the autotuned tile-cost target for the parallel
// classes (0 = pool automatic).
type Calibration struct {
	Seed       int64
	Workers    int
	TileTarget int64
	Coeffs     []Coefficient
}

// NsPerCycle looks up the coefficient for a kernel class.
func (c *Calibration) NsPerCycle(k cycle.KernelClass) (float64, bool) {
	for _, co := range c.Coeffs {
		if co.Kernel == k {
			return co.NsPerCycle, true
		}
	}
	return 0, false
}

// normalize sorts coefficients into the canonical kernel order.
func (c *Calibration) normalize() {
	sort.Slice(c.Coeffs, func(i, j int) bool { return c.Coeffs[i].Kernel < c.Coeffs[j].Kernel })
}

// String renders the calibration in the canonical form ParseCalibration
// accepts: ParseCalibration(c.String()).String() == c.String(), and the
// rendering is byte-stable (sorted kernels, shortest-round-trip float
// formatting) so pinned tables diff cleanly.
func (c *Calibration) String() string {
	if c == nil {
		return ""
	}
	cp := *c
	cp.Coeffs = append([]Coefficient(nil), c.Coeffs...)
	cp.normalize()
	parts := []string{
		CalibSchema,
		"seed=" + strconv.FormatInt(cp.Seed, 10),
		"workers=" + strconv.Itoa(cp.Workers),
		"target=" + strconv.FormatInt(cp.TileTarget, 10),
	}
	for _, co := range cp.Coeffs {
		parts = append(parts, string(co.Kernel)+"="+strconv.FormatFloat(co.NsPerCycle, 'g', -1, 64))
	}
	return strings.Join(parts, "; ")
}

// knownKernel reports whether s names a kernel class.
func knownKernel(s string) bool {
	for _, k := range cycle.KernelClasses() {
		if string(k) == s {
			return true
		}
	}
	return false
}

// ParseCalibration parses the textual calibration table: clauses
// separated by ';' or newlines, the first being the schema tag,
// followed in any order by
//
//	seed=<int>            probe seed
//	workers=<int>         pool size the parallel classes were probed at
//	target=<int>          autotuned tile-cost target (0 = automatic)
//	<kernel>=<float>      ns-per-model-cycle coefficient, one per class
//
// Kernel names are the internal/predictor classes (csr-serial,
// csr-parallel, hybrid-serial, hybrid-parallel). Coefficients must be
// positive and finite; duplicate clauses are rejected. An empty string
// yields a nil Calibration (planning disabled).
func ParseCalibration(s string) (*Calibration, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == '\n' })
	var clauses []string
	for _, f := range fields {
		if t := strings.TrimSpace(f); t != "" {
			clauses = append(clauses, t)
		}
	}
	if len(clauses) == 0 {
		return nil, fmt.Errorf("plan: calibration input %q has no clauses", s)
	}
	if clauses[0] != CalibSchema {
		return nil, fmt.Errorf("plan: calibration schema %q, want %q", clauses[0], CalibSchema)
	}
	c := &Calibration{}
	seen := map[string]bool{}
	for _, clause := range clauses[1:] {
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("plan: calibration clause %q has no '='", clause)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if seen[key] {
			return nil, fmt.Errorf("plan: duplicate calibration clause %q", key)
		}
		seen[key] = true
		switch {
		case key == "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("plan: bad seed %q: %v", val, err)
			}
			c.Seed = v
		case key == "workers":
			v, err := strconv.Atoi(val)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("plan: bad workers %q", val)
			}
			c.Workers = v
		case key == "target":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("plan: bad target %q", val)
			}
			c.TileTarget = v
		case knownKernel(key):
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return nil, fmt.Errorf("plan: bad coefficient %q=%q (want positive finite float)", key, val)
			}
			c.Coeffs = append(c.Coeffs, Coefficient{Kernel: cycle.KernelClass(key), NsPerCycle: v})
		default:
			return nil, fmt.Errorf("plan: unknown calibration clause %q", key)
		}
	}
	if len(c.Coeffs) == 0 {
		return nil, fmt.Errorf("plan: calibration table has no kernel coefficients")
	}
	c.normalize()
	return c, nil
}
