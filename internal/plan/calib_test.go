package plan

import (
	"strings"
	"testing"

	"repro/internal/predictor/cycle"
)

func sampleCalib() *Calibration {
	return &Calibration{
		Seed:       42,
		Workers:    4,
		TileTarget: 1024,
		Coeffs: []Coefficient{
			{Kernel: cycle.KernelHybridSerial, NsPerCycle: 0.25},
			{Kernel: cycle.KernelCSRSerial, NsPerCycle: 0.5},
			{Kernel: cycle.KernelCSRParallel, NsPerCycle: 0.17},
			{Kernel: cycle.KernelHybridParallel, NsPerCycle: 0.08125},
		},
	}
}

// TestCalibrationRoundTrip: String is canonical and ParseCalibration
// inverts it exactly — the replay contract pinned tables rely on.
func TestCalibrationRoundTrip(t *testing.T) {
	c := sampleCalib()
	text := c.String()
	if !strings.HasPrefix(text, CalibSchema) {
		t.Fatalf("canonical form %q does not lead with the schema", text)
	}
	p, err := ParseCalibration(text)
	if err != nil {
		t.Fatalf("ParseCalibration(%q): %v", text, err)
	}
	if p.String() != text {
		t.Fatalf("round trip not a fixed point:\n%q\n%q", text, p.String())
	}
	if p.Seed != c.Seed || p.Workers != c.Workers || p.TileTarget != c.TileTarget {
		t.Fatalf("provenance changed: %+v vs %+v", p, c)
	}
	for _, k := range cycle.KernelClasses() {
		want, _ := c.NsPerCycle(k)
		got, ok := p.NsPerCycle(k)
		if !ok || got != want {
			t.Fatalf("coefficient %s: got %v (%v), want %v", k, got, ok, want)
		}
	}
	// Coefficients come back in canonical sorted order regardless of
	// construction order.
	for i := 1; i < len(p.Coeffs); i++ {
		if p.Coeffs[i-1].Kernel >= p.Coeffs[i].Kernel {
			t.Fatalf("parsed coefficients not sorted: %+v", p.Coeffs)
		}
	}
}

// TestCalibrationParseRejects: corrupt inputs are rejected with errors,
// never panics, and never half-parsed tables.
func TestCalibrationParseRejects(t *testing.T) {
	bad := []string{
		"bogus/v9; csr-serial=1",                       // wrong schema
		CalibSchema,                                    // no coefficients
		CalibSchema + "; seed=abc; csr-serial=1",       // bad seed
		CalibSchema + "; workers=-2; csr-serial=1",     // negative workers
		CalibSchema + "; target=-1; csr-serial=1",      // negative target
		CalibSchema + "; csr-serial=0",                 // non-positive coefficient
		CalibSchema + "; csr-serial=-3",                // negative coefficient
		CalibSchema + "; csr-serial=NaN",               // NaN coefficient
		CalibSchema + "; csr-serial=+Inf",              // infinite coefficient
		CalibSchema + "; csr-serial=1; csr-serial=2",   // duplicate kernel
		CalibSchema + "; seed=1; seed=2; csr-serial=1", // duplicate seed
		CalibSchema + "; warp-speed=1",                 // unknown kernel
		CalibSchema + "; csr-serial",                   // no '='
		";",                                            // separators but no clauses
		"; \n ;",                                       // separators but no clauses
	}
	for _, s := range bad {
		if c, err := ParseCalibration(s); err == nil {
			t.Errorf("ParseCalibration(%q) accepted: %+v", s, c)
		}
	}
	// Empty input disables planning rather than erroring.
	if c, err := ParseCalibration("  \n "); err != nil || c != nil {
		t.Fatalf("empty input: got (%+v, %v), want (nil, nil)", c, err)
	}
}

// TestCalibrationParseOrderInsensitive: clause order does not matter;
// the canonical rendering is the same either way.
func TestCalibrationParseOrderInsensitive(t *testing.T) {
	a, err := ParseCalibration(CalibSchema + "; csr-serial=0.5; seed=9; csr-parallel=0.25")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseCalibration(CalibSchema + "; seed=9; csr-parallel=0.25; csr-serial=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("clause order changed canonical form:\n%q\n%q", a.String(), b.String())
	}
}
