package sptc

import (
	"math/rand"
	"testing"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func planTestMatrix(t *testing.T) (*csr.Matrix, pattern.VNM) {
	t.Helper()
	// A matching-like conforming matrix: row i connects to i^1 within
	// aligned pairs, guaranteed 2:4-conforming.
	n := 64
	var rows, cols []int32
	var vals []float32
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		j := i ^ 1
		rows = append(rows, int32(i))
		cols = append(cols, int32(j))
		vals = append(vals, rng.Float32()+0.1)
	}
	a, err := csr.FromEntries(n, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	return a, pattern.NM(2, 4)
}

func TestPlanStrictExecute(t *testing.T) {
	a, p := planTestMatrix(t)
	plan, err := NewPlan(a, p, DefaultCostModel(), false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ResidualNNZ() != 0 {
		t.Error("strict plan has residual")
	}
	b := dense.NewMatrix(a.N, 16)
	b.Randomize(1, 2)
	c, err := plan.Execute(b)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-validate against the dense reference.
	want := dense.MatMul(a.ToDense(), b)
	if d := dense.MaxAbsDiff(want, c); d > 1e-4 {
		t.Errorf("plan execution differs from dense by %v", d)
	}
	if plan.Executions() != 1 || plan.AccumulatedCycles() <= 0 {
		t.Error("plan accounting broken")
	}
	// Second execution accumulates.
	if _, err := plan.Execute(b); err != nil {
		t.Fatal(err)
	}
	if plan.Executions() != 2 {
		t.Error("execution counter wrong")
	}
	if est := plan.EstimateCycles(16); plan.AccumulatedCycles() != 2*est {
		t.Errorf("accumulated %v != 2 x estimate %v", plan.AccumulatedCycles(), est)
	}
}

func TestPlanStrictRejectsNonConforming(t *testing.T) {
	g := graph.ErdosRenyi(48, 0.3, 1)
	a := csr.FromGraph(g)
	if _, err := NewPlan(a, pattern.NM(2, 4), DefaultCostModel(), false); err == nil {
		t.Error("strict plan accepted non-conforming matrix")
	}
	// Hybrid mode accepts it and stays exact.
	plan, err := NewPlan(a, pattern.NM(2, 4), DefaultCostModel(), true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ResidualNNZ() == 0 {
		t.Error("hybrid plan should have residual on dense input")
	}
	b := dense.NewMatrix(a.N, 8)
	b.Randomize(1, 3)
	c, err := plan.Execute(b)
	if err != nil {
		t.Fatal(err)
	}
	want := dense.MatMul(a.ToDense(), b)
	if d := dense.MaxAbsDiff(want, c); d > 1e-4 {
		t.Errorf("hybrid execution differs from dense by %v", d)
	}
}

func TestPlanDimensionCheck(t *testing.T) {
	a, p := planTestMatrix(t)
	plan, err := NewPlan(a, p, DefaultCostModel(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(dense.NewMatrix(3, 4)); err == nil {
		t.Error("want dimension error")
	}
	if plan.Pattern() != p {
		t.Error("pattern accessor wrong")
	}
	if plan.Compressed() == nil {
		t.Error("compressed accessor nil")
	}
}
