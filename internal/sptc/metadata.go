package sptc

import "fmt"

// The hardware's sparse-matrix storage metadata (the paper's reference
// [3], PTX "warp-level sparse matrix storage") packs the 2-bit
// column selectors 16 to a 32-bit word: selector s of stored element e
// occupies bits [2e, 2e+2). venom.Matrix keeps one selector per byte
// for clarity; these helpers convert to and from the packed wire
// format the mma.sp instruction actually consumes, so the layout is
// exercised end to end.

// PackMeta packs 2-bit selectors (one per byte, values 0..3) into
// 32-bit metadata words, 16 selectors per word, little-end first —
// the hardware layout. The tail word is zero-padded.
func PackMeta(sel []uint8) ([]uint32, error) {
	words := make([]uint32, (len(sel)+15)/16)
	for i, s := range sel {
		if s > 3 {
			return nil, fmt.Errorf("sptc: selector %d out of 2-bit range at %d", s, i)
		}
		words[i/16] |= uint32(s) << uint((i%16)*2)
	}
	return words, nil
}

// UnpackMeta expands packed metadata words back to one selector per
// byte. count is the number of valid selectors (trailing padding is
// dropped).
func UnpackMeta(words []uint32, count int) ([]uint8, error) {
	if count < 0 || count > len(words)*16 {
		return nil, fmt.Errorf("sptc: count %d out of range for %d words", count, len(words))
	}
	out := make([]uint8, count)
	for i := range out {
		out[i] = uint8(words[i/16] >> uint((i%16)*2) & 0x3)
	}
	return out, nil
}

// MetaWordsFor returns how many 32-bit metadata words an operand with
// the given packed-slot count occupies on hardware.
func MetaWordsFor(slots int) int { return (slots + 15) / 16 }
