// Package sptc models GPU Sparse Tensor Cores: the mma.sp instruction
// semantics (m16n8k32 with 2:4 metadata, the shape the paper's kernels
// use), and a calibrated cycle-cost model for the three execution
// engines the paper compares — CUDA-core CSR SpMM (cuSPARSE baseline),
// dense tensor cores, and sparse tensor cores over V:N:M compressed
// operands.
//
// This package is the repository's substitution for A100 hardware
// (DESIGN.md §1): the functional simulator validates that compressed
// operands have exactly the layout the hardware consumes, and the cost
// model reproduces the relative throughputs that drive every speedup
// table in the paper. Constants are normalized so that one CUDA-core
// FMA on a regularly-accessed operand costs 1.0 cycles.
package sptc

import "fmt"

// Fragment dimensions of mma.sp.sync.aligned.m16n8k32, the default
// shape of the paper's kernels (Section 4.5).
const (
	MmaM = 16 // rows of A and D
	MmaN = 8  // columns of B and D
	MmaK = 32 // logical inner dimension (2:4 sparse in A)
)

// MMASp executes one mma.sp m16n8k32 fragment: D = Asp x B + C.
//
//   - aVals holds 16x16 stored values (each row keeps 2 of every 4
//     logical columns, so 32 logical -> 16 stored), row-major.
//   - aMeta holds the 2-bit selector for each stored value: the
//     position of the value within its 4-column group, exactly the
//     hardware's sparse-matrix storage metadata. Stored values come in
//     pairs per group: slots 2g and 2g+1 belong to group g.
//   - b is 32x8 dense, row-major; c and the result are 16x8.
//
// Returns an error if any metadata selector is out of range — the
// validation real hardware performs when loading sparse fragments.
func MMASp(aVals []float32, aMeta []uint8, b, c []float32) ([]float32, error) {
	const storedPerRow = MmaK / 2 // 2:4 keeps half
	if len(aVals) != MmaM*storedPerRow || len(aMeta) != MmaM*storedPerRow {
		return nil, fmt.Errorf("sptc: A fragment size %d/%d, want %d", len(aVals), len(aMeta), MmaM*storedPerRow)
	}
	if len(b) != MmaK*MmaN {
		return nil, fmt.Errorf("sptc: B fragment size %d, want %d", len(b), MmaK*MmaN)
	}
	if c != nil && len(c) != MmaM*MmaN {
		return nil, fmt.Errorf("sptc: C fragment size %d, want %d", len(c), MmaM*MmaN)
	}
	d := make([]float32, MmaM*MmaN)
	if c != nil {
		copy(d, c)
	}
	for r := 0; r < MmaM; r++ {
		for s := 0; s < storedPerRow; s++ {
			v := aVals[r*storedPerRow+s]
			sel := aMeta[r*storedPerRow+s]
			if sel > 3 {
				return nil, fmt.Errorf("sptc: metadata selector %d out of range at row %d slot %d", sel, r, s)
			}
			if v == 0 {
				continue
			}
			group := s / 2
			col := group*4 + int(sel)
			brow := b[col*MmaN : (col+1)*MmaN]
			drow := d[r*MmaN : (r+1)*MmaN]
			for j := 0; j < MmaN; j++ {
				drow[j] += v * brow[j]
			}
		}
	}
	return d, nil
}

// CostModel holds normalized cycle costs for the execution engines.
// All values are in units of one CUDA-core FMA on cached operands.
type CostModel struct {
	// CSRElemCost is the cost per nonzero per output column of
	// CUDA-core CSR SpMM. It exceeds 1.0 because the gather of B rows
	// through the column-index array is irregular (cache-hostile), the
	// effect the paper's Section 5.2 discussion attributes the baseline
	// gap to.
	CSRElemCost float64
	// CSRRowOverhead is the per-row bookkeeping of the CSR kernel
	// (row-pointer loads, reductions).
	CSRRowOverhead float64
	// SlotCost is the cost per packed V:N:M value slot per output
	// column on the sparse tensor core. 1/16 reflects the ~16x
	// throughput of tensor-core FMA pipelines plus the 2x of the
	// sparsity feature over scalar CUDA-core FMA.
	SlotCost float64
	// BLoadCost is the per-selected-column per-output-column cost of
	// staging B fragments into registers; it is paid once per fragment
	// and amortized over the fragment's rows (the regular-access cache
	// benefit of the compact format).
	BLoadCost float64
	// FragOverhead is the fixed per-instruction-group cost: metadata
	// decode, index computation, fragment synchronization. Together
	// with the full-pipeline compute charge it is what makes
	// ultra-sparse matrices lose (Figure 4's 3.9% slowdown tail): a
	// scattered nonzero still pays for a full 16-row instruction.
	FragOverhead float64
	// DenseTCElemCost is the dense tensor core cost per element per
	// output column (for the dense-TC comparison point).
	DenseTCElemCost float64
	// FragRows is the row granularity of one mma.sp fragment (16 on
	// Ampere/Hopper).
	FragRows int
}

// DefaultCostModel returns constants calibrated so that the Figure-4
// style sweeps land in the paper's regime: geomean SpMM speedups of a
// few x that grow with the dense width H and the graph size class, a
// slowdown tail on ultra-sparse matrices, and larger-V formats winning
// when they conform.
func DefaultCostModel() CostModel {
	return CostModel{
		CSRElemCost:     2.0,
		CSRRowOverhead:  0.5,
		SlotCost:        1.0 / 16.0,
		BLoadCost:       0.25,
		FragOverhead:    80,
		DenseTCElemCost: 1.0 / 16.0,
		FragRows:        MmaM,
	}
}

// CSRSpMMCycles estimates CUDA-core CSR SpMM cycles for an nnz-nonzero,
// rows-row sparse matrix multiplied by a dense matrix with h columns.
func (c CostModel) CSRSpMMCycles(nnz, rows, h int) float64 {
	return float64(nnz)*float64(h)*c.CSRElemCost + float64(rows)*c.CSRRowOverhead
}

// DenseGEMMCycles estimates dense CUDA-core GEMM cycles (n x n by
// n x h).
func (c CostModel) DenseGEMMCycles(n, h int) float64 {
	return float64(n) * float64(n) * float64(h)
}

// DenseTCGEMMCycles estimates dense tensor-core GEMM cycles.
func (c CostModel) DenseTCGEMMCycles(n, h int) float64 {
	return float64(n) * float64(n) * float64(h) * c.DenseTCElemCost
}

// VNMStats are the structural counts of a compressed matrix that the
// SPTC cost depends on. Fragments is the number of mma.sp instruction
// groups (per 8-wide B tile) following the condensed packing of the
// Spatha layout; UsedCols the selected B rows staged; Blocks the
// stored meta-blocks. See FragmentCount.
type VNMStats struct {
	Fragments int
	UsedCols  int
	Blocks    int
	V, N, K   int
}

// VNMCycles itemizes the modeled SPTC cost of one kernel execution by
// instruction class — the per-stage breakdown the observability layer
// (internal/obs) exports and the Spatha/Magicube-style evaluations
// hinge on.
type VNMCycles struct {
	// MMACompute is the mma.sp pipeline charge: the full stored-slot
	// compute of every instruction group (padding slots execute
	// regardless — the source of the ultra-sparse penalty).
	MMACompute float64
	// BLoad is the fragment-staging charge for the selected B rows,
	// paid once per used column.
	BLoad float64
	// FragOverhead is the fixed per-instruction-group decode and
	// synchronization charge.
	FragOverhead float64
}

// Total returns the summed modeled cycles.
func (v VNMCycles) Total() float64 { return v.MMACompute + v.BLoad + v.FragOverhead }

// VNMSpMMCyclesDetail estimates sparse-tensor-core SpMM cycles for a
// V:N:M compressed matrix (described by its instruction statistics)
// against a dense matrix with h columns, itemized by instruction class.
func (c CostModel) VNMSpMMCyclesDetail(s VNMStats, h int) VNMCycles {
	perInstrPerCol := float64(MmaM) * float64(MmaK/2) / float64(MmaN) * c.SlotCost
	return VNMCycles{
		MMACompute:   float64(s.Fragments) * perInstrPerCol * float64(h),
		BLoad:        float64(s.UsedCols) * float64(h) * c.BLoadCost,
		FragOverhead: float64(s.Fragments) * c.FragOverhead,
	}
}

// VNMSpMMCycles estimates total sparse-tensor-core SpMM cycles; see
// VNMSpMMCyclesDetail for the per-instruction-class itemization.
func (c CostModel) VNMSpMMCycles(s VNMStats, h int) float64 {
	return c.VNMSpMMCyclesDetail(s, h).Total()
}
