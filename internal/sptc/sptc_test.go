package sptc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/csr"
	"repro/internal/pattern"
	"repro/internal/venom"
)

func TestMMASpMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const stored = MmaK / 2
	// Build a random 2:4 sparse A fragment: per 4-group pick 2 distinct
	// positions.
	aVals := make([]float32, MmaM*stored)
	aMeta := make([]uint8, MmaM*stored)
	aDense := make([]float32, MmaM*MmaK)
	for r := 0; r < MmaM; r++ {
		for g := 0; g < MmaK/4; g++ {
			p1 := rng.Intn(4)
			p2 := (p1 + 1 + rng.Intn(3)) % 4
			if p2 < p1 {
				p1, p2 = p2, p1
			}
			v1, v2 := rng.Float32(), rng.Float32()
			aVals[r*stored+2*g] = v1
			aMeta[r*stored+2*g] = uint8(p1)
			aVals[r*stored+2*g+1] = v2
			aMeta[r*stored+2*g+1] = uint8(p2)
			aDense[r*MmaK+g*4+p1] = v1
			aDense[r*MmaK+g*4+p2] = v2
		}
	}
	b := make([]float32, MmaK*MmaN)
	for i := range b {
		b[i] = rng.Float32()
	}
	c := make([]float32, MmaM*MmaN)
	for i := range c {
		c[i] = rng.Float32()
	}
	got, err := MMASp(aVals, aMeta, b, c)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < MmaM; r++ {
		for j := 0; j < MmaN; j++ {
			want := c[r*MmaN+j]
			for k := 0; k < MmaK; k++ {
				want += aDense[r*MmaK+k] * b[k*MmaN+j]
			}
			if d := math.Abs(float64(got[r*MmaN+j] - want)); d > 1e-4 {
				t.Fatalf("D[%d][%d] = %v, want %v (diff %v)", r, j, got[r*MmaN+j], want, d)
			}
		}
	}
}

func TestMMASpNilC(t *testing.T) {
	const stored = MmaK / 2
	aVals := make([]float32, MmaM*stored)
	aMeta := make([]uint8, MmaM*stored)
	aVals[0] = 2
	aMeta[0] = 1 // row 0, group 0, position 1 -> logical column 1
	b := make([]float32, MmaK*MmaN)
	b[1*MmaN+3] = 5 // B[1][3]
	d, err := MMASp(aVals, aMeta, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d[0*MmaN+3] != 10 {
		t.Errorf("D[0][3] = %v, want 10", d[0*MmaN+3])
	}
}

func TestMMASpValidation(t *testing.T) {
	const stored = MmaK / 2
	good := make([]float32, MmaM*stored)
	goodMeta := make([]uint8, MmaM*stored)
	b := make([]float32, MmaK*MmaN)
	if _, err := MMASp(good[:10], goodMeta[:10], b, nil); err == nil {
		t.Error("want error for short A fragment")
	}
	if _, err := MMASp(good, goodMeta, b[:5], nil); err == nil {
		t.Error("want error for short B fragment")
	}
	if _, err := MMASp(good, goodMeta, b, make([]float32, 3)); err == nil {
		t.Error("want error for short C fragment")
	}
	bad := make([]uint8, MmaM*stored)
	bad[0] = 4
	good[0] = 1 // force the selector to be inspected
	if _, err := MMASp(good, bad, b, nil); err == nil {
		t.Error("want error for out-of-range selector")
	}
}

func TestCostModelOrdering(t *testing.T) {
	c := DefaultCostModel()
	// For a reasonably dense conforming matrix, SPTC must beat CSR:
	// well-packed blocks (~N*V values each) batch 8 per instruction.
	n, h := 1024, 128
	nnz := n * 8
	blocks := nnz / 24 // dense blocks: most of the 32 slots used
	instrs := blocks / 8
	usedCols := blocks * 4
	csrCost := c.CSRSpMMCycles(nnz, n, h)
	sptcCost := c.VNMSpMMCycles(VNMStats{Fragments: instrs, UsedCols: usedCols, Blocks: blocks, V: 16, N: 2, K: 4}, h)
	if sptcCost >= csrCost {
		t.Errorf("SPTC (%v) should beat CSR (%v) on packed input", sptcCost, csrCost)
	}
	// For scattered ultra-sparse input (one instruction per nonzero —
	// no banding possible), SPTC should lose: CSR touches 100 values
	// while SPTC runs 100 full 16x16-slot instructions.
	sparseNNZ := 100
	csrSparse := c.CSRSpMMCycles(sparseNNZ, 2048, 64)
	sptcSparse := c.VNMSpMMCycles(VNMStats{Fragments: sparseNNZ, UsedCols: sparseNNZ, Blocks: sparseNNZ, V: 1, N: 2, K: 4}, 64)
	if sptcSparse <= csrSparse {
		t.Errorf("SPTC (%v) should lose to CSR (%v) on scattered ultra-sparse input", sptcSparse, csrSparse)
	}
}

func TestCostModelHScaling(t *testing.T) {
	// SPTC speedup over CSR should not shrink as H grows (paper: it
	// grows).
	c := DefaultCostModel()
	n := 2048
	nnz := n * 6
	blocks := nnz / 20
	stats := VNMStats{Fragments: blocks / 8, UsedCols: blocks * 4, Blocks: blocks, V: 16, N: 2, K: 4}
	var last float64
	for _, h := range []int{64, 128, 256, 512} {
		sp := c.CSRSpMMCycles(nnz, n, h) / c.VNMSpMMCycles(stats, h)
		if sp < last {
			t.Errorf("speedup decreased with H: %v after %v", sp, last)
		}
		last = sp
	}
}

func TestDenseTCFasterThanDenseCUDA(t *testing.T) {
	c := DefaultCostModel()
	if c.DenseTCGEMMCycles(512, 128) >= c.DenseGEMMCycles(512, 128) {
		t.Error("dense TC should beat dense CUDA cores")
	}
}

func TestFragmentCount(t *testing.T) {
	// 32x32 matrix, pattern 1:2:4: nonzeros in rows 0..15 of segment 0
	// share one fragment; a nonzero in row 20 segment 5 adds another.
	var rows, cols []int32
	var vals []float32
	for r := 0; r < 16; r++ {
		rows = append(rows, int32(r))
		cols = append(cols, int32(r%4))
		vals = append(vals, 1)
	}
	rows = append(rows, 20)
	cols = append(cols, 21)
	vals = append(vals, 1)
	a, err := csr.FromEntries(32, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := venom.Compress(a, pattern.NM(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0..15 form one 16-row band with 16 one-row blocks (8 blocks
	// per instruction at K=4 -> 2 instructions); row 20's lone block
	// sits in the second band (1 instruction).
	if got := FragmentCount(cm, 16); got != 3 {
		t.Errorf("FragmentCount = %d, want 3", got)
	}
	st := Stats(cm, DefaultCostModel())
	if st.Fragments != 3 || st.N != 2 || st.K != 4 {
		t.Errorf("Stats = %+v", st)
	}
	if st.Blocks != 17 {
		t.Errorf("Blocks = %d, want 17", st.Blocks)
	}
	// Each one-nonzero block selects exactly one column.
	if st.UsedCols != 17 {
		t.Errorf("UsedCols = %d, want 17", st.UsedCols)
	}
}

func TestFragmentCountLargeV(t *testing.T) {
	// V=32 > FragRows=16: each block is 2 fragments.
	var rows, cols []int32
	var vals []float32
	for r := 0; r < 32; r++ {
		rows = append(rows, int32(r))
		cols = append(cols, 0)
		vals = append(vals, 1)
	}
	a, err := csr.FromEntries(32, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := venom.Compress(a, pattern.New(32, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got := FragmentCount(cm, 16); got != 2 {
		t.Errorf("FragmentCount = %d, want 2 (one 32-row block = two 16-row fragments)", got)
	}
}

func BenchmarkMMASp(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const stored = MmaK / 2
	aVals := make([]float32, MmaM*stored)
	aMeta := make([]uint8, MmaM*stored)
	for i := range aVals {
		aVals[i] = rng.Float32()
		aMeta[i] = uint8(rng.Intn(4))
	}
	bf := make([]float32, MmaK*MmaN)
	for i := range bf {
		bf[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MMASp(aVals, aMeta, bf, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPackUnpackMeta(t *testing.T) {
	sel := []uint8{0, 1, 2, 3, 3, 2, 1, 0, 1, 1, 2, 2, 3, 3, 0, 0, 2, 1} // 18 selectors -> 2 words
	words, err := PackMeta(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != MetaWordsFor(len(sel)) || len(words) != 2 {
		t.Fatalf("packed into %d words", len(words))
	}
	// Spot-check hardware layout: selector 1 sits at bits [2,4).
	if got := words[0] >> 2 & 0x3; got != 1 {
		t.Errorf("selector 1 packed as %d", got)
	}
	back, err := UnpackMeta(words, len(sel))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sel {
		if back[i] != sel[i] {
			t.Fatalf("selector %d: %d != %d", i, back[i], sel[i])
		}
	}
}

func TestPackMetaRejectsWideSelectors(t *testing.T) {
	if _, err := PackMeta([]uint8{4}); err == nil {
		t.Error("want error for 3-bit selector")
	}
	if _, err := UnpackMeta([]uint32{0}, 17); err == nil {
		t.Error("want error for count beyond words")
	}
	if _, err := UnpackMeta(nil, -1); err == nil {
		t.Error("want error for negative count")
	}
}

func TestPackMetaRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100)
		sel := make([]uint8, n)
		for i := range sel {
			sel[i] = uint8(rng.Intn(4))
		}
		words, err := PackMeta(sel)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnpackMeta(words, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sel {
			if back[i] != sel[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestVenomMetaPacksLosslessly(t *testing.T) {
	// The venom compressed metadata must survive the hardware packing.
	var rows, cols []int32
	var vals []float32
	for i := 0; i < 32; i++ {
		rows = append(rows, int32(i))
		cols = append(cols, int32((i*3)%32))
		vals = append(vals, 1)
	}
	a, err := csr.FromEntries(32, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := venom.Compress(a, pattern.NM(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	words, err := PackMeta(cm.Meta)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnpackMeta(words, len(cm.Meta))
	if err != nil {
		t.Fatal(err)
	}
	for i := range cm.Meta {
		if back[i] != cm.Meta[i] {
			t.Fatal("metadata corrupted by packing")
		}
	}
}
