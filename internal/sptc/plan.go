package sptc

import (
	"fmt"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/pattern"
	"repro/internal/venom"
)

// The Plan API mirrors the cusparseLt / Spatha workflow the paper's
// revised frameworks integrate against (Section 4.5): describe the
// matmul once, compress the sparse operand into the SPTC-required form
// with its metadata, then execute repeatedly against changing dense
// operands — the "drop-in replacement of the SpMM kernels in existing
// frameworks".

// Plan is a prepared sparse x dense matmul: the compressed A operand,
// its execution statistics, and the cost model.
type Plan struct {
	pattern pattern.VNM
	comp    *venom.Matrix
	resid   *csr.Matrix
	cost    CostModel
	stats   VNMStats
	execs   int
	cycles  float64
}

// NewPlan compresses the sparse operand for SPTC execution. Strict
// mode (hybrid = false) requires the matrix to conform to the pattern
// and fails with the violation otherwise — the behaviour of
// cusparseLt's compression. With hybrid = true, non-conforming entries
// fall into a CSR residual executed on the CUDA-core path (lossless).
func NewPlan(a *csr.Matrix, p pattern.VNM, cm CostModel, hybrid bool) (*Plan, error) {
	if cm.FragRows == 0 {
		cm = DefaultCostModel()
	}
	var comp *venom.Matrix
	var resid *csr.Matrix
	var err error
	if hybrid {
		comp, resid, err = venom.SplitToConform(a, p)
	} else {
		comp, err = venom.Compress(a, p)
	}
	if err != nil {
		return nil, err
	}
	if err := comp.ValidateMeta(); err != nil {
		return nil, fmt.Errorf("sptc: compressed operand invalid: %w", err)
	}
	return &Plan{
		pattern: p,
		comp:    comp,
		resid:   resid,
		cost:    cm,
		stats:   Stats(comp, cm),
	}, nil
}

// Pattern returns the plan's V:N:M pattern.
func (p *Plan) Pattern() pattern.VNM { return p.pattern }

// Compressed exposes the compressed operand.
func (p *Plan) Compressed() *venom.Matrix { return p.comp }

// ResidualNNZ reports entries outside the pattern (0 in strict mode or
// after a successful reorder).
func (p *Plan) ResidualNNZ() int {
	if p.resid == nil {
		return 0
	}
	return p.resid.NNZ()
}

// EstimateCycles predicts the SPTC cost of one execution against an
// h-column dense operand.
func (p *Plan) EstimateCycles(h int) float64 {
	c := p.cost.VNMSpMMCycles(p.stats, h)
	if p.resid != nil && p.resid.NNZ() > 0 {
		c += p.cost.CSRSpMMCycles(p.resid.NNZ(), p.resid.N, h)
	}
	return c
}

// Execute computes C = A x B through the plan, accumulating the
// modeled cycle count. The execute function body is the software
// analog of the mma.sp kernel launch.
func (p *Plan) Execute(b *dense.Matrix) (*dense.Matrix, error) {
	if b.Rows != p.comp.N {
		return nil, fmt.Errorf("sptc: B has %d rows, want %d", b.Rows, p.comp.N)
	}
	out := vnmKernel(p.comp, b)
	if p.resid != nil && p.resid.NNZ() > 0 {
		addCSR(out, p.resid, b)
	}
	p.execs++
	p.cycles += p.EstimateCycles(b.Cols)
	return out, nil
}

// Executions returns how many times the plan ran.
func (p *Plan) Executions() int { return p.execs }

// AccumulatedCycles returns total modeled cycles across executions.
func (p *Plan) AccumulatedCycles() float64 { return p.cycles }

// vnmKernel is a local copy of the compressed SpMM loop (kept here so
// the sptc package has no dependency on internal/spmm; both are
// cross-validated in tests).
func vnmKernel(m *venom.Matrix, b *dense.Matrix) *dense.Matrix {
	c := dense.NewMatrix(m.N, b.Cols)
	vpb := m.ValuesPerBlock()
	blockRows := len(m.BlockRowPtr) - 1
	h := b.Cols
	for br := 0; br < blockRows; br++ {
		rowBase := br * m.P.V
		vRows := m.P.V
		if rowBase+vRows > m.N {
			vRows = m.N - rowBase
		}
		for bi := m.BlockRowPtr[br]; bi < m.BlockRowPtr[br+1]; bi++ {
			colBase := int(bi) * m.K
			valBase := int(bi) * vpb
			for dr := 0; dr < vRows; dr++ {
				cr := c.Row(rowBase + dr)
				off := valBase + dr*m.P.N
				for s := 0; s < m.P.N; s++ {
					v := m.Values[off+s]
					if v == 0 {
						continue
					}
					col := int(m.BlockCols[colBase+int(m.Meta[off+s])])
					brow := b.Row(col)
					for j := 0; j < h; j++ {
						cr[j] += v * brow[j]
					}
				}
			}
		}
	}
	return c
}

func addCSR(out *dense.Matrix, a *csr.Matrix, b *dense.Matrix) {
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		cr := out.Row(i)
		for k, col := range cols {
			v := vals[k]
			brow := b.Row(int(col))
			for j, bv := range brow {
				cr[j] += v * bv
			}
		}
	}
}
