package sptc

import (
	"repro/internal/sched"
	"repro/internal/venom"
)

// The V:N:M execution model follows Spatha's condensed layout: each
// stored meta-block contributes its K selected columns to a condensed
// operand, and one mma.sp (m16n8k32) instruction consumes MmaK = 32
// condensed columns across a 16-row band — i.e. MmaK/K meta-blocks per
// instruction (8 for the default K = 4). Meta-blocks from *different*
// segments pack together as long as they share the 16-row band, which
// is what makes small-M formats efficient on hardware. Padding costs
// arise when a band holds fewer than MmaK/K blocks (the instruction
// still executes in full) and when blocks fill fewer than V rows.

// FragmentCount returns the number of mma.sp instruction groups (one
// per 16-row band per ceil(blocks/blocksPerInstr)) the compressed
// matrix needs per 8-column tile of B.
func FragmentCount(m *venom.Matrix, fragRows int) int {
	if fragRows <= 0 {
		fragRows = MmaM
	}
	blocksPerInstr := MmaK / m.K
	if blocksPerInstr < 1 {
		blocksPerInstr = 1
	}
	blockRowsPerBand := fragRows / m.P.V
	if blockRowsPerBand < 1 {
		blockRowsPerBand = 1
	}
	// Blocks per band of fragRows matrix rows; bands are independent,
	// so the count reduces over bands on the shared scheduler.
	blockRows := len(m.BlockRowPtr) - 1
	bands := (blockRows + blockRowsPerBand - 1) / blockRowsPerBand
	return sched.Default().ReduceInt(bands, func(lo, hi int) int {
		instrs := 0
		for band := lo; band < hi; band++ {
			start := band * blockRowsPerBand
			end := start + blockRowsPerBand
			if end > blockRows {
				end = blockRows
			}
			blocks := int(m.BlockRowPtr[end] - m.BlockRowPtr[start])
			if blocks == 0 {
				continue
			}
			instrs += (blocks + blocksPerInstr - 1) / blocksPerInstr
			if m.P.V > fragRows {
				// Tall blocks span multiple hardware fragments.
				instrs += blocks * (m.P.V/fragRows - 1)
			}
		}
		return instrs
	})
}

// UsedColumns counts the selected (non-padded) columns across all
// stored meta-blocks — the B rows the kernel must stage.
func UsedColumns(m *venom.Matrix) int {
	return sched.Default().ReduceInt(len(m.BlockCols), func(lo, hi int) int {
		used := 0
		for _, c := range m.BlockCols[lo:hi] {
			if c >= 0 {
				used++
			}
		}
		return used
	})
}

// Stats bundles the structural counts the cost model consumes.
func Stats(m *venom.Matrix, c CostModel) VNMStats {
	return VNMStats{
		Fragments: FragmentCount(m, c.FragRows),
		UsedCols:  UsedColumns(m),
		Blocks:    m.NumBlocks(),
		V:         m.P.V,
		N:         m.P.N,
		K:         m.K,
	}
}
