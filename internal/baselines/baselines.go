// Package baselines implements the comparison reordering schemes the
// paper discusses: a Jigsaw-style pure *matrix* column reordering
// (Section 6: supports only basic 2:4, and — unlike SOGRE's graph
// reordering — destroys the adjacency matrix's symmetry), classic
// reverse Cuthill–McKee bandwidth reduction, and degree sorting.
package baselines

import (
	"math/bits"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/graph"
	"repro/internal/hamming"
	"repro/internal/pattern"
)

// JigsawResult reports a column-only reordering.
type JigsawResult struct {
	ColPerm       []int // new column position i holds original column ColPerm[i]
	Matrix        *bitmat.Matrix
	InitialPScore int
	FinalPScore   int
	Symmetric     bool // whether the result stayed symmetric (it won't, in general)
}

// Jigsaw performs a column-only reordering toward the basic N:M
// pattern, approximating the concurrent Jigsaw work: columns are
// redistributed across segments so that rows spread their nonzeros.
// It operates on the matrix alone — the result is generally
// asymmetric, so symmetry-dependent graph algorithms can no longer use
// it (the paper's first point of difference).
func Jigsaw(m *bitmat.Matrix, p pattern.VNM) *JigsawResult {
	n := m.N()
	res := &JigsawResult{InitialPScore: pattern.PScore(m, p)}
	// Greedy placement: take columns in descending density and assign
	// each to the free position whose window currently has the most
	// spare horizontal capacity across that column's rows.
	colDeg := make([]int, n)
	colRows := make([][]int32, n) // rows with a nonzero per column
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for wi, w := range row {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				j := wi*64 + b
				colDeg[j]++
				colRows[j] = append(colRows[j], int32(i))
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return colDeg[order[a]] > colDeg[order[b]] })

	segs := (n + p.M - 1) / p.M
	// load[s][i] = nonzeros already placed in window s of row i.
	// Stored sparsely per segment as a map from row to count.
	load := make([]map[int32]int, segs)
	free := make([][]int, segs) // free positions per segment
	for s := 0; s < segs; s++ {
		load[s] = make(map[int32]int)
		lo := s * p.M
		hi := lo + p.M
		if hi > n {
			hi = n
		}
		for c := lo; c < hi; c++ {
			free[s] = append(free[s], c)
		}
	}
	colPerm := make([]int, n) // position -> original column
	for _, col := range order {
		bestSeg, bestOverflow := -1, int(^uint(0)>>1)
		for s := 0; s < segs; s++ {
			if len(free[s]) == 0 {
				continue
			}
			overflow := 0
			for _, r := range colRows[col] {
				if load[s][r] >= p.N {
					overflow++
				}
			}
			if overflow < bestOverflow {
				bestOverflow, bestSeg = overflow, s
			}
			if overflow == 0 {
				break
			}
		}
		pos := free[bestSeg][0]
		free[bestSeg] = free[bestSeg][1:]
		colPerm[pos] = col
		for _, r := range colRows[col] {
			load[bestSeg][r]++
		}
	}
	// Materialize the column permutation.
	out := bitmat.New(n)
	for i := 0; i < n; i++ {
		for posJ := 0; posJ < n; posJ++ {
			if m.Get(i, colPerm[posJ]) {
				out.Set(i, posJ)
			}
		}
	}
	res.ColPerm = colPerm
	res.Matrix = out
	res.FinalPScore = pattern.PScore(out, p)
	res.Symmetric = out.IsSymmetric()
	return res
}

// RCM computes the reverse Cuthill–McKee ordering, the classic
// bandwidth-reduction reorder used as a locality baseline. Returns a
// permutation (new position -> original vertex).
func RCM(g *graph.Graph) []int {
	n := g.N()
	visited := make([]bool, n)
	var order []int
	// Start from minimum-degree vertices of each component.
	verts := make([]int, n)
	for i := range verts {
		verts[i] = i
	}
	sort.SliceStable(verts, func(a, b int) bool { return g.Degree(verts[a]) < g.Degree(verts[b]) })
	for _, start := range verts {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue := []int{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			nbrs := append([]int32(nil), g.Neighbors(u)...)
			sort.Slice(nbrs, func(a, b int) bool { return g.Degree(int(nbrs[a])) < g.Degree(int(nbrs[b])) })
			for _, v := range nbrs {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, int(v))
				}
			}
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Bandwidth returns the adjacency bandwidth max |i - j| over edges —
// the quantity RCM minimizes.
func Bandwidth(g *graph.Graph) int {
	best := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			d := u - int(v)
			if d < 0 {
				d = -d
			}
			if d > best {
				best = d
			}
		}
	}
	return best
}

// GOrder approximates the GOrder/GScore reordering the paper's Related
// Work cites (Wei et al., SIGMOD'16): a greedy ordering that, within a
// sliding window of w recently-placed vertices, appends the vertex
// sharing the most neighbors (and direct edges) with the window —
// maximizing CPU cache locality rather than any N:M pattern. Included
// as the classic locality baseline: it improves bandwidth-style
// locality but does nothing targeted for V:N:M conformity.
func GOrder(g *graph.Graph, window int) []int {
	n := g.N()
	if window < 1 {
		window = 5
	}
	placed := make([]bool, n)
	score := make([]int, n) // shared-adjacency score vs current window
	order := make([]int, 0, n)
	recent := make([]int, 0, window)

	bump := func(v int, delta int) {
		for _, u := range g.Neighbors(v) {
			if !placed[u] {
				score[u] += delta
			}
		}
	}
	for len(order) < n {
		// Pick the unplaced vertex with the best score (ties: lowest
		// id; empty window: highest degree seed).
		best := -1
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			switch {
			case best < 0:
				best = v
			case score[v] > score[best]:
				best = v
			case score[v] == score[best] && g.Degree(v) > g.Degree(best):
				best = v
			}
		}
		placed[best] = true
		order = append(order, best)
		bump(best, 1)
		recent = append(recent, best)
		if len(recent) > window {
			old := recent[0]
			recent = recent[1:]
			bump(old, -1)
		}
	}
	return order
}

// HammingRowSort is the simple one-shot baseline of sorting rows (and
// columns, to preserve symmetry) by the Hamming position code of their
// leading segments — Stage-1 without iteration, for ablation.
func HammingRowSort(m *bitmat.Matrix, p pattern.VNM) []int {
	n := m.N()
	segs := m.NumSegments(p.M)
	keys := make([][]int64, n)
	for i := 0; i < n; i++ {
		row := make([]int64, segs)
		for s := 0; s < segs; s++ {
			row[s] = hamming.SignedCode(m.Segment(i, s, p.M), p.N)
		}
		keys[i] = row
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		for s := range ka {
			if ka[s] != kb[s] {
				return ka[s] < kb[s]
			}
		}
		return false
	})
	return order
}
