package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func TestJigsawReducesViolationsButBreaksSymmetry(t *testing.T) {
	g := graph.BarabasiAlbert(128, 3, 1)
	perm := rand.New(rand.NewSource(2)).Perm(128)
	pg, _ := g.ApplyPermutation(perm)
	m := pg.ToBitMatrix()
	p := pattern.NM(2, 4)
	res := Jigsaw(m, p)
	if res.FinalPScore > res.InitialPScore {
		t.Errorf("Jigsaw worsened PScore: %d -> %d", res.InitialPScore, res.FinalPScore)
	}
	// Column permutation must be a bijection.
	seen := make([]bool, 128)
	for _, c := range res.ColPerm {
		if seen[c] {
			t.Fatal("column permutation has duplicates")
		}
		seen[c] = true
	}
	// NNZ preserved.
	if res.Matrix.NNZ() != m.NNZ() {
		t.Error("Jigsaw changed NNZ")
	}
	// The headline difference from SOGRE: symmetry is (generally) lost.
	if res.Symmetric {
		t.Log("Jigsaw output happened to stay symmetric on this input")
	}
}

func TestJigsawColumnPermutationCorrect(t *testing.T) {
	// out[i][posJ] must equal m[i][ColPerm[posJ]].
	m := bitmat.New(16)
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 40; k++ {
		m.Set(rng.Intn(16), rng.Intn(16))
	}
	res := Jigsaw(m, pattern.NM(2, 4))
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if res.Matrix.Get(i, j) != m.Get(i, res.ColPerm[j]) {
				t.Fatalf("column permutation inconsistent at (%d,%d)", i, j)
			}
		}
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// Scrambled banded graph: RCM should shrink bandwidth massively.
	g := graph.Banded(256, 3, 0.9, 1)
	perm := rand.New(rand.NewSource(3)).Perm(256)
	scrambled, err := g.ApplyPermutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	before := Bandwidth(scrambled)
	order := RCM(scrambled)
	reordered, err := scrambled.ApplyPermutation(order)
	if err != nil {
		t.Fatal(err)
	}
	after := Bandwidth(reordered)
	if after >= before {
		t.Errorf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
	if after > 30 {
		t.Errorf("RCM bandwidth %d still large for band-3 graph", after)
	}
}

func TestRCMIsPermutation(t *testing.T) {
	g := graph.ErdosRenyi(100, 0.05, 7)
	order := RCM(g)
	if len(order) != 100 {
		t.Fatalf("length %d", len(order))
	}
	seen := make([]bool, 100)
	for _, v := range order {
		if seen[v] {
			t.Fatal("duplicate in RCM order")
		}
		seen[v] = true
	}
}

func TestRCMDisconnected(t *testing.T) {
	g, _ := graph.NewFromEdges(6, [][2]int{{0, 1}, {3, 4}})
	order := RCM(g)
	seen := make([]bool, 6)
	for _, v := range order {
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("vertex %d missing from RCM order", i)
		}
	}
}

func TestHammingRowSortIsPermutation(t *testing.T) {
	g := graph.BarabasiAlbert(64, 2, 9)
	m := g.ToBitMatrix()
	order := HammingRowSort(m, pattern.NM(2, 4))
	seen := make([]bool, 64)
	for _, v := range order {
		if seen[v] {
			t.Fatal("duplicate")
		}
		seen[v] = true
	}
	// Applying it symmetrically preserves the graph.
	pm := m.Permute(order)
	if pm.NNZ() != m.NNZ() || !pm.IsSymmetric() {
		t.Error("HammingRowSort permutation damaged matrix")
	}
}

func TestGOrderIsPermutation(t *testing.T) {
	g := graph.BarabasiAlbert(120, 3, 5)
	order := GOrder(g, 5)
	if len(order) != 120 {
		t.Fatalf("length %d", len(order))
	}
	seen := make([]bool, 120)
	for _, v := range order {
		if seen[v] {
			t.Fatal("duplicate in GOrder")
		}
		seen[v] = true
	}
}

func TestGOrderImprovesLocality(t *testing.T) {
	// On a scrambled banded graph, GOrder should reduce the mean edge
	// index distance (locality) versus the scrambled order.
	base := graph.Banded(200, 3, 0.9, 2)
	perm := rand.New(rand.NewSource(7)).Perm(200)
	scrambled, err := base.ApplyPermutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	meanDist := func(g *graph.Graph) float64 {
		var sum float64
		count := 0
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				d := u - int(v)
				if d < 0 {
					d = -d
				}
				sum += float64(d)
				count++
			}
		}
		return sum / float64(count)
	}
	before := meanDist(scrambled)
	order := GOrder(scrambled, 8)
	reordered, err := scrambled.ApplyPermutation(order)
	if err != nil {
		t.Fatal(err)
	}
	after := meanDist(reordered)
	if after >= before {
		t.Errorf("GOrder did not improve locality: %.1f -> %.1f", before, after)
	}
}

func TestGOrderNotNMTargeted(t *testing.T) {
	// The point of the comparison: locality reorderings do not achieve
	// N:M conformity the way SOGRE does on the same input.
	base := graph.Banded(160, 3, 0.9, 4)
	p := pattern.NM(2, 4)
	m := base.ToBitMatrix()
	before := pattern.PScore(m, p)
	if before == 0 {
		t.Skip("no violations to fix")
	}
	order := GOrder(base, 8)
	reordered, err := base.ApplyPermutation(order)
	if err != nil {
		t.Fatal(err)
	}
	gorderScore := pattern.PScore(reordered.ToBitMatrix(), p)
	// SOGRE on the same graph.
	res, err := core.Reorder(m, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPScore >= gorderScore && gorderScore > 0 {
		t.Logf("note: SOGRE %d vs GOrder %d violations (SOGRE should usually win)", res.FinalPScore, gorderScore)
	}
	if res.FinalPScore > before/2 {
		t.Errorf("SOGRE fixed too little: %d -> %d", before, res.FinalPScore)
	}
}

func BenchmarkJigsaw(b *testing.B) {
	g := graph.BarabasiAlbert(512, 3, 1)
	m := g.ToBitMatrix()
	p := pattern.NM(2, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Jigsaw(m, p)
	}
}

func BenchmarkRCM(b *testing.B) {
	g := graph.BarabasiAlbert(2048, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RCM(g)
	}
}
