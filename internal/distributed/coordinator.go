package distributed

import (
	"fmt"
	"net/rpc"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/resil"
	"repro/internal/shard"
)

// ring is a consistent-hash ring over worker indices: each worker
// contributes ringVirtual virtual nodes hashed from its address, and a
// partition maps to the first live worker at or after its own hash.
// Consistent hashing keeps the partition→worker assignment stable when
// a worker dies (only its partitions move), and assignment never
// affects result bits — computePartition is pure, so WHO computes a
// partition is invisible in WHAT it computes.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker int
}

const ringVirtual = 64

// hashString is FNV-1a with a murmur-style avalanche finalizer. Raw
// FNV has no final mixing step, so short keys sharing a prefix
// ("part/0", "part/1", ...) land in one narrow band of the ring and
// starve most workers; the finalizer spreads them uniformly.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func newRing(addrs []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(addrs)*ringVirtual)}
	for wi, addr := range addrs {
		for v := 0; v < ringVirtual; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashString(fmt.Sprintf("%s#%d", addr, v)),
				worker: wi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// candidates returns every distinct worker in ring order starting at
// key's successor — the primary first, then the fallback sequence a
// retry walks.
func (r *ring) candidates(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool)
	var out []int
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}

// DistConfig tunes the coordinator's resilience machinery.
type DistConfig struct {
	// Retry bounds per-partition dispatch attempts across workers.
	Retry resil.RetryPolicy
	// SpecAfter is the straggler deadline: a partition not returned
	// within it gets a backup dispatch on the next ring candidate
	// (resil.Speculate semantics; 0 disables).
	SpecAfter time.Duration
	// Obs charges coordinator counters (volatile: whether a retry or
	// re-dispatch fires depends on timing and which worker died).
	Obs *obs.Registry
}

func (c DistConfig) registry() *obs.Registry {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.NewRegistry()
}

// Cluster is a coordinator's view of a set of worker processes.
type Cluster struct {
	addrs []string
	ring  *ring

	mu      sync.Mutex
	clients []*rpc.Client
	dead    []bool
}

// Dial connects to every worker address. It fails only if NO worker
// is reachable; partially-reachable clusters start degraded and the
// dispatch path routes around the dead members.
func Dial(addrs []string) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, ErrNoWorkers
	}
	c := &Cluster{
		addrs:   addrs,
		ring:    newRing(addrs),
		clients: make([]*rpc.Client, len(addrs)),
		dead:    make([]bool, len(addrs)),
	}
	live := 0
	for i, addr := range addrs {
		cl, err := rpc.Dial("tcp", addr)
		if err != nil {
			c.dead[i] = true
			continue
		}
		c.clients[i] = cl
		live++
	}
	if live == 0 {
		return nil, fmt.Errorf("%w: none of %v reachable", ErrNoWorkers, addrs)
	}
	return c, nil
}

// Close shuts every live connection.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cl := range c.clients {
		if cl != nil && !c.dead[i] {
			cl.Close()
		}
	}
}

// LiveWorkers returns the indices of workers not marked dead.
func (c *Cluster) LiveWorkers() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for i := range c.addrs {
		if !c.dead[i] && c.clients[i] != nil {
			out = append(out, i)
		}
	}
	return out
}

// call invokes method on worker wi. A transport-level failure (broken
// connection, dead process) marks the worker dead so no future
// partition routes to it; an application-level error (rpc.ServerError)
// leaves it alive — the worker answered, it just refused the job.
func (c *Cluster) call(wi int, method string, args, reply any) error {
	c.mu.Lock()
	cl, dead := c.clients[wi], c.dead[wi]
	c.mu.Unlock()
	if dead || cl == nil {
		return fmt.Errorf("distributed: worker %d (%s) is marked dead", wi, c.addrs[wi])
	}
	err := cl.Call(method, args, reply)
	if err == nil {
		return nil
	}
	if _, isApp := err.(rpc.ServerError); !isApp {
		c.mu.Lock()
		c.dead[wi] = true
		c.mu.Unlock()
	}
	return fmt.Errorf("distributed: worker %d (%s): %w", wi, c.addrs[wi], err)
}

// DistributedSpMM computes C = A x B across the cluster's worker
// processes, bit-identical to the in-process PartitionedSpMM: the
// same BFS partitioning, the same pure per-partition pipeline (run
// remotely), the same disjoint-row scatter, the same local
// cross-partition pass. Workers receive the graph as a checksummed
// sogre-shard/v1 encoding; every partial result is checksummed at the
// worker and re-verified here before it may touch C. Dead workers,
// stragglers, and corrupted transfers are routed around via the
// consistent-hash fallback sequence; if every worker dies, the
// affected partitions are computed locally — recovery in every case
// leaves no trace in the result bits, because the partition function
// is pure (check.FaultEquivalence standard).
func (c *Cluster) DistributedSpMM(g *graph.Graph, b *dense.Matrix, maxN int, p pattern.VNM, opt core.Options, cfg DistConfig) (*dense.Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	if b.Rows != n {
		return nil, fmt.Errorf("distributed: B has %d rows, want %d", b.Rows, n)
	}
	reg := cfg.registry()

	enc, err := shard.EncodeGraph(g)
	if err != nil {
		return nil, err
	}
	load := &LoadArgs{
		GraphShard: enc,
		GraphSum:   shard.ChecksumBytes(enc),
		BRows:      b.Rows,
		BCols:      b.Cols,
		BData:      b.Data,
		BSum:       resil.Checksum(b.Data),
	}
	var wg sync.WaitGroup
	for _, wi := range c.LiveWorkers() {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			var reply LoadReply
			if err := c.call(wi, "Worker.Load", load, &reply); err != nil {
				reg.Volatile("dist/load_failed").Inc()
				return
			}
			if reply.GraphSum != load.GraphSum || reply.BSum != load.BSum || reply.N != n {
				c.mu.Lock()
				c.dead[wi] = true
				c.mu.Unlock()
				reg.Volatile("dist/load_failed").Inc()
			}
		}(wi)
	}
	wg.Wait()

	parts := core.BFSPartition(g, maxN)
	partOf := make([]int32, n)
	for pi, part := range parts {
		for _, v := range part {
			partOf[v] = int32(pi)
		}
	}

	cOut := dense.NewMatrix(n, b.Cols)
	errs := make([]error, len(parts))
	for pi := range parts {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			reply, err := c.computeRemote(pi, parts[pi], g, b, p, opt, cfg, reg, load.GraphSum, load.BSum)
			if err != nil {
				errs[pi] = err
				return
			}
			for j, r := range reply.Rows {
				copy(cOut.Row(r), reply.Data[j*reply.Cols:(j+1)*reply.Cols])
			}
		}(pi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	crossPartitionPass(g, b, cOut, partOf)
	return cOut, nil
}

// computeRemote dispatches one partition with the full resilience
// stack: consistent-hash candidate order, bounded retries that walk
// the fallback sequence, speculative backup dispatch for stragglers,
// receiver-side checksum and row-coverage verification, and local
// recomputation as the last resort.
func (c *Cluster) computeRemote(pi int, part []int, g *graph.Graph, b *dense.Matrix,
	p pattern.VNM, opt core.Options, cfg DistConfig, reg *obs.Registry,
	graphSum, bSum uint64) (*ComputeReply, error) {

	args := &ComputeArgs{
		Part: part,
		V:    p.V, N: p.N, M: p.M,
		Opt: WireOptions{
			MaxIter:       opt.MaxIter,
			Stage1MaxIter: opt.Stage1MaxIter,
			Stage2MaxIter: opt.Stage2MaxIter,
			Workers:       opt.Workers,
		},
		GraphSum: graphSum,
		BSum:     bSum,
	}

	cands := c.ring.candidates(fmt.Sprintf("part/%d", pi))
	// next hands out candidate indices across primary, retry, and
	// speculative-backup dispatches alike, so a backup never lands on
	// the worker the primary is stuck on.
	var next int64
	dispatchOnce := func() (*ComputeReply, error) {
		k := int(atomic.AddInt64(&next, 1)) - 1
		live := c.LiveWorkers()
		if len(live) == 0 {
			return nil, ErrNoWorkers
		}
		// Walk the ring order, skipping dead workers; wrap by k so
		// successive dispatches land on successive live candidates.
		isLive := make(map[int]bool, len(live))
		for _, l := range live {
			isLive[l] = true
		}
		var order []int
		for _, cand := range cands {
			if isLive[cand] {
				order = append(order, cand)
			}
		}
		if len(order) == 0 {
			return nil, ErrNoWorkers
		}
		wi := order[k%len(order)]
		reg.Volatile("dist/jobs").Inc()
		var reply ComputeReply
		if err := c.call(wi, "Worker.Compute", args, &reply); err != nil {
			return nil, err
		}
		if got := resil.Checksum(reply.Data); got != reply.Checksum {
			reg.Volatile("dist/checksum_reject").Inc()
			return nil, &resil.ChecksumError{Site: fmt.Sprintf("dist/part/%d", pi), Want: reply.Checksum, Got: got}
		}
		if err := verifyRowCoverage(part, &reply, b.Cols); err != nil {
			return nil, err
		}
		return &reply, nil
	}

	var out *ComputeReply
	err := resil.Retry(cfg.Retry, reg, "dist/compute", func(attempt int) error {
		v, err := resil.Speculate(cfg.SpecAfter, func() {
			reg.Volatile("dist/redispatch").Inc()
		}, func() (any, error) {
			return dispatchOnce()
		})
		if err != nil {
			return err
		}
		out = v.(*ComputeReply)
		return nil
	})
	if err == nil {
		return out, nil
	}

	// Last resort: every worker is gone (or every attempt failed
	// verification). The pure local pipeline produces the exact bits a
	// healthy worker would have — recovery leaves no trace.
	reg.Volatile("dist/local_fallback").Inc()
	localOut, lerr := computePartition(g, b, part, p, opt)
	if lerr != nil {
		return nil, fmt.Errorf("distributed: partition %d failed remotely (%v) and locally: %w", pi, err, lerr)
	}
	return &ComputeReply{
		Rows:     localOut.rows,
		Data:     localOut.localC.Data,
		Cols:     b.Cols,
		Checksum: resil.Checksum(localOut.localC.Data),
	}, nil
}

// verifyRowCoverage checks a reply names exactly the partition's
// vertex set (in any order) with a consistently-shaped payload — a
// malformed or misrouted reply must not scatter into C.
func verifyRowCoverage(part []int, reply *ComputeReply, wantCols int) error {
	if reply.Cols != wantCols {
		return fmt.Errorf("distributed: reply has %d cols, want %d", reply.Cols, wantCols)
	}
	if len(reply.Rows) != len(part) || len(reply.Data) != len(part)*wantCols {
		return fmt.Errorf("distributed: reply shape %dx%d values=%d, want %d rows",
			len(reply.Rows), reply.Cols, len(reply.Data), len(part))
	}
	want := make(map[int]bool, len(part))
	for _, v := range part {
		want[v] = true
	}
	for _, r := range reply.Rows {
		if !want[r] {
			return fmt.Errorf("distributed: reply row %d outside its partition", r)
		}
		delete(want, r)
	}
	if len(want) != 0 {
		return fmt.Errorf("distributed: reply missing %d partition rows", len(want))
	}
	return nil
}
