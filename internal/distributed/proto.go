package distributed

// RPC wire protocol between the SpMM coordinator and worker
// processes (net/rpc over TCP, gob-encoded). The protocol is
// deliberately value-only: a worker receives the graph as a
// sogre-shard/v1 encoding plus the dense operand, caches both keyed
// by checksum, and computes partitions on request. Every payload that
// crosses the wire carries an integrity tag — shard.ChecksumBytes for
// byte payloads, resil.Checksum for float32 payloads — computed at
// the source and re-verified at the destination, so a corrupted
// transfer surfaces as a typed mismatch instead of wrong bits in the
// output (DESIGN.md §10's transfer-integrity rule, now across real
// process boundaries).

// WireOptions carries the reorder knobs that make sense across a
// process boundary (core.Options minus in-process handles like the
// scheduler pool and the observability registry — workers run their
// own). Zero values mean the core defaults.
type WireOptions struct {
	MaxIter       int
	Stage1MaxIter int
	Stage2MaxIter int
	Workers       int
}

// LoadArgs ships the operands to a worker. GraphShard is a
// sogre-shard/v1 encoding (shard.EncodeGraph); BData is the dense
// operand row-major.
type LoadArgs struct {
	GraphShard []byte
	GraphSum   uint64 // shard.ChecksumBytes(GraphShard)
	BRows      int
	BCols      int
	BData      []float32
	BSum       uint64 // resil.Checksum(BData)
}

// LoadReply echoes the checksums of the state the worker now holds,
// so the coordinator can confirm the load landed intact.
type LoadReply struct {
	N        int
	GraphSum uint64
	BSum     uint64
}

// ComputeArgs asks a worker for one partition's diagonal-block
// contribution. The checksums name the (graph, B) state the job is
// against; a worker holding different state rejects the job instead
// of silently computing on the wrong operands.
type ComputeArgs struct {
	Part     []int
	V, N, M  int
	Opt      WireOptions
	GraphSum uint64
	BSum     uint64
}

// ComputeReply carries the partition's rows back: Rows[j] is the
// global target row of Data's j-th row (BCols wide). Checksum is
// resil.Checksum(Data) computed worker-side before transfer.
type ComputeReply struct {
	Rows     []int
	Data     []float32
	Cols     int
	Checksum uint64
}

// PingArgs/PingReply implement the liveness probe.
type PingArgs struct{}

type PingReply struct {
	OK   bool
	Jobs int // Compute jobs served so far
}

// protoError is this file's typed constant error set.
type protoError string

func (e protoError) Error() string { return string(e) }

const (
	// ErrStale reports a Compute against state the worker doesn't hold.
	ErrStale = protoError("distributed: worker state does not match job checksums")
	// ErrNotLoaded reports a Compute before any Load.
	ErrNotLoaded = protoError("distributed: worker has no loaded operands")
	// ErrNoWorkers reports a cluster with no live workers left.
	ErrNoWorkers = protoError("distributed: no live workers")
)
