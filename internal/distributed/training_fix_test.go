package distributed

import (
	"testing"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/spmm"
)

// Regression: the full-graph evaluation inside TrainSampledSGC used to
// run through a private hand-rolled CSR loop instead of the engine
// factory, so the eval hops charged nothing to the ledger (and were
// invisible to the obs registry). Routed through the factory, the eval
// aggregation is accounted like every training aggregation.
func TestSampledEvalChargedToLedger(t *testing.T) {
	g, x, labels, test := sampledTrainingSetup()
	reg := obs.NewRegistry()
	cfg := TrainSampledConfig{
		Sampler: SamplerConfig{Seeds: 40, Fanout: []int{6}, Seed: 3},
		Engine:  gnn.EngineCSR,
		Epochs:  2,
		Batches: 2,
		Seed:    1,
		Obs:     reg,
	}
	res, err := TrainSampledSGC(g, x, labels, 3, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvalAggCycles <= 0 {
		t.Errorf("EvalAggCycles = %v, want > 0 (eval hops unaccounted)", res.EvalAggCycles)
	}
	if res.AggCycles <= res.EvalAggCycles {
		t.Errorf("AggCycles = %v must exceed the eval slice %v (training hops missing)",
			res.AggCycles, res.EvalAggCycles)
	}
	snap := reg.Snapshot()
	// 2 hops (the default) per batch, 2 batches x 2 epochs of training,
	// plus 2 eval hops — every one must have gone through the
	// instrumented kernel dispatch, not a private loop.
	const hops = 2
	wantDispatch := int64(cfg.Epochs*cfg.Batches*hops + hops)
	if got := snap.Counters["spmm/dispatch/csr"]; got != wantDispatch {
		t.Errorf("spmm/dispatch/csr = %d, want %d", got, wantDispatch)
	}
	if got := snap.Gauges["gnn/agg_cycles"]; got != res.AggCycles {
		t.Errorf("obs gnn/agg_cycles = %v, want ledger total %v", got, res.AggCycles)
	}
}

// The factory-routed evaluation must be numerically identical to the
// serial CSR reference it replaced: recompute the eval forward pass
// with spmm.CSRSerial and the returned classifier, and require the
// bitwise-same accuracy.
func TestSampledEvalBitwiseMatchesSerialReference(t *testing.T) {
	g, x, labels, test := sampledTrainingSetup()
	cfg := TrainSampledConfig{
		Sampler: SamplerConfig{Seeds: 40, Fanout: []int{6}, Seed: 3},
		Engine:  gnn.EngineCSR,
		Epochs:  3,
		Batches: 2,
		Seed:    1,
	}
	res, err := TrainSampledSGC(g, x, labels, 3, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := csr.SymNormalized(g)
	h := x
	for i := 0; i < 2; i++ { // cfg.Hops defaulted to 2
		h = spmm.CSRSerial(full, h)
	}
	logits := dense.MatMul(h, res.W)
	logits.AddBias(res.B.Row(0))
	want := dense.Accuracy(logits, labels, test)
	if res.TestAcc != want {
		t.Errorf("TestAcc = %v, want bitwise %v from the serial CSR reference", res.TestAcc, want)
	}
}

// For a fixed engine and seed the whole sampled run — losses, weights,
// accuracy — is bit-identical at every worker count: the kernels are
// bit-deterministic and the pool only changes wall time (DESIGN.md §7).
func TestSampledTrainingBitwiseAcrossWorkerCounts(t *testing.T) {
	g, x, labels, test := sampledTrainingSetup()
	run := func(pool *sched.Pool) *TrainSampledResult {
		res, err := TrainSampledSGC(g, x, labels, 3, test, TrainSampledConfig{
			Sampler: SamplerConfig{Seeds: 40, Fanout: []int{6}, Seed: 3},
			Engine:  gnn.EngineCSR,
			Epochs:  3,
			Batches: 2,
			Seed:    1,
			Pool:    pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(sched.Serial())
	for _, workers := range []int{2, 4} {
		got := run(sched.New(workers))
		if got.TestAcc != ref.TestAcc {
			t.Errorf("workers=%d TestAcc %v != serial %v", workers, got.TestAcc, ref.TestAcc)
		}
		for i := range ref.Losses {
			if got.Losses[i] != ref.Losses[i] {
				t.Fatalf("workers=%d epoch %d loss %v != serial %v", workers, i, got.Losses[i], ref.Losses[i])
			}
		}
		if dense.MaxAbsDiff(got.W, ref.W) != 0 || dense.MaxAbsDiff(got.B, ref.B) != 0 {
			t.Errorf("workers=%d weights differ from serial run", workers)
		}
	}
}
