package distributed

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/resil"
	"repro/internal/shard"
)

// TestMain doubles as the worker-process entry point: when the
// re-exec env var is set, the test binary becomes a genuine worker
// process serving RPC on a loopback port (announced through a ready
// file), so the multi-process tests exercise real sockets, real
// process boundaries, and real kill -9 — not goroutine simulation.
func TestMain(m *testing.M) {
	if addrFile := os.Getenv("SOGRE_WORKER_ADDR_FILE"); addrFile != "" {
		runWorkerProcess(addrFile)
		return
	}
	os.Exit(m.Run())
}

func runWorkerProcess(addrFile string) {
	crashAfter, _ := strconv.Atoi(os.Getenv("SOGRE_WORKER_CRASH_AFTER"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Announce readiness atomically: write then rename, so the parent
	// never reads a half-written address.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ServeWorker(ln, WorkerConfig{Workers: 1, CrashAfterJobs: crashAfter})
}

// spawnWorkerProcess re-execs the test binary as a worker and waits
// for its address. The returned process is killed at test cleanup.
func spawnWorkerProcess(t *testing.T, crashAfter int) (addr string, cmd *exec.Cmd) {
	t.Helper()
	addrFile := t.TempDir() + "/addr"
	cmd = exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"SOGRE_WORKER_ADDR_FILE="+addrFile,
		"SOGRE_WORKER_CRASH_AFTER="+strconv.Itoa(crashAfter),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil {
			return string(b), cmd
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("worker process never announced its address")
	return "", nil
}

func distFixture(t *testing.T) (*graph.Graph, *dense.Matrix, pattern.VNM) {
	t.Helper()
	g := graph.Banded(600, 2, 0.9, 3)
	b := dense.NewMatrix(g.N(), 8)
	b.Randomize(1, 11)
	return g, b, pattern.NM(2, 4)
}

func requireSameBits(t *testing.T, want, got *dense.Matrix, label string) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: bit divergence at flat index %d: %v != %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

// TestDistributedSpMMMatchesInProcess is the tentpole acceptance
// gate: a REAL multi-process run — coordinator here, two separate
// worker OS processes over TCP — produces bits identical to the
// in-process PartitionedSpMM.
func TestDistributedSpMMMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	g, b, p := distFixture(t)
	want, _, err := PartitionedSpMM(g, b, 128, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	addr1, _ := spawnWorkerProcess(t, 0)
	addr2, _ := spawnWorkerProcess(t, 0)
	cl, err := Dial([]string{addr1, addr2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	got, err := cl.DistributedSpMM(g, b, 128, p, core.Options{}, DistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameBits(t, want, got, "multi-process vs in-process")
}

// TestDistributedKillWorkerRecovery kills one worker process
// mid-job (it SIGKILLs itself at the start of its first Compute —
// after accepting the job, before replying) and requires the
// recovered result to be byte-identical to a fault-free run: the
// check.FaultEquivalence standard held across real process death.
func TestDistributedKillWorkerRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	g, b, p := distFixture(t)
	// maxN 32 yields ~19 partitions, so the consistent-hash ring routes
	// work to BOTH workers with near certainty — the victim is
	// guaranteed a job to die on.
	want, _, err := PartitionedSpMM(g, b, 32, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	addrVictim, victim := spawnWorkerProcess(t, 1) // dies on first Compute
	addrSurvivor, _ := spawnWorkerProcess(t, 0)
	cl, err := Dial([]string{addrVictim, addrSurvivor})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	got, err := cl.DistributedSpMM(g, b, 32, p, core.Options{}, DistConfig{
		Retry: resil.RetryPolicy{Max: 4, Backoff: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameBits(t, want, got, "kill -9 recovery")
	if live := cl.LiveWorkers(); len(live) != 1 {
		// 2 live would mean the ring routed nothing to the victim (and
		// Wait below would hang on a healthy process) — fail loudly.
		t.Fatalf("cluster should have exactly 1 live worker, has %v", live)
	}
	// The victim really died by signal, mid-service.
	state, err := victim.Process.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if state.Success() {
		t.Fatal("victim worker exited cleanly; expected SIGKILL death")
	}
}

// TestDistributedAllWorkersDead: when every worker dies, the
// coordinator falls back to local computation and still produces the
// exact fault-free bits.
func TestDistributedAllWorkersDead(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	g, b, p := distFixture(t)
	want, _, err := PartitionedSpMM(g, b, 128, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	addr, worker := spawnWorkerProcess(t, 0)
	cl, err := Dial([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	worker.Process.Kill()
	worker.Wait()
	got, err := cl.DistributedSpMM(g, b, 128, p, core.Options{}, DistConfig{
		Retry: resil.RetryPolicy{Max: 2, Backoff: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameBits(t, want, got, "all-dead local fallback")
}

// TestLoopbackWorkerProtocol exercises the RPC protocol details on
// in-process loopback workers: load echo, stale-state rejection,
// compute-before-load rejection, and transfer checksums.
func TestLoopbackWorkerProtocol(t *testing.T) {
	g, b, p := distFixture(t)
	addr, stop, err := StartLocalWorker(WorkerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cl, err := Dial([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Compute before load is a typed refusal, not a crash.
	args := &ComputeArgs{Part: []int{0, 1}, V: p.V, N: p.N, M: p.M}
	var reply ComputeReply
	if err := cl.call(0, "Worker.Compute", args, &reply); err == nil {
		t.Fatal("compute before load accepted")
	}
	if len(cl.LiveWorkers()) != 1 {
		t.Fatal("application-level refusal must not mark the worker dead")
	}

	enc, err := shard.EncodeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	load := &LoadArgs{
		GraphShard: enc, GraphSum: shard.ChecksumBytes(enc),
		BRows: b.Rows, BCols: b.Cols, BData: b.Data, BSum: resil.Checksum(b.Data),
	}
	var lr LoadReply
	if err := cl.call(0, "Worker.Load", load, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.N != g.N() || lr.GraphSum != load.GraphSum || lr.BSum != load.BSum {
		t.Fatalf("load echo mismatch: %+v", lr)
	}

	// A corrupted graph transfer is rejected by checksum before decode.
	badLoad := *load
	badLoad.GraphShard = append([]byte(nil), enc...)
	badLoad.GraphShard[len(enc)/2] ^= 0x10
	if err := cl.call(0, "Worker.Load", &badLoad, &lr); err == nil {
		t.Fatal("corrupted graph transfer accepted")
	}

	// Stale checksums (job against different state) are refused.
	staleArgs := &ComputeArgs{Part: []int{0, 1}, V: p.V, N: p.N, M: p.M, GraphSum: 1, BSum: 2}
	if err := cl.call(0, "Worker.Compute", staleArgs, &reply); err == nil {
		t.Fatal("stale-state compute accepted")
	}

	// A well-formed job round-trips with a valid transfer checksum.
	goodArgs := &ComputeArgs{
		Part: []int{0, 1, 2, 3}, V: p.V, N: p.N, M: p.M,
		GraphSum: load.GraphSum, BSum: load.BSum,
	}
	if err := cl.call(0, "Worker.Compute", goodArgs, &reply); err != nil {
		t.Fatal(err)
	}
	if got := resil.Checksum(reply.Data); got != reply.Checksum {
		t.Fatalf("transfer checksum: got %x want %x", got, reply.Checksum)
	}
	if err := verifyRowCoverage(goodArgs.Part, &reply, b.Cols); err != nil {
		t.Fatal(err)
	}
}

// TestLoopbackDistributedMatches: the full coordinator path over
// loopback workers (the oracle configuration) matches in-process
// bits. Cheap enough to run under -short and race.
func TestLoopbackDistributedMatches(t *testing.T) {
	g, b, p := distFixture(t)
	want, _, err := PartitionedSpMM(g, b, 128, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, stop, err := StartLocalWorker(WorkerConfig{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		addrs = append(addrs, addr)
	}
	cl, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	got, err := cl.DistributedSpMM(g, b, 128, p, core.Options{}, DistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameBits(t, want, got, "loopback cluster vs in-process")
}

// TestRingConsistency pins the consistent-hash properties the
// recovery path depends on: deterministic candidate order, full
// worker coverage, and locality — removing one worker reassigns ONLY
// the partitions that worker owned.
func TestRingConsistency(t *testing.T) {
	addrs := []string{"a:1", "b:2", "c:3", "d:4"}
	r := newRing(addrs)
	assign := func(r *ring, keys int, skip int) map[int]int {
		out := make(map[int]int)
		for k := 0; k < keys; k++ {
			for _, cand := range r.candidates(fmt.Sprintf("part/%d", k)) {
				if cand != skip {
					out[k] = cand
					break
				}
			}
		}
		return out
	}
	before := assign(r, 200, -1)
	covered := make(map[int]bool)
	for _, w := range before {
		covered[w] = true
	}
	if len(covered) != len(addrs) {
		t.Fatalf("ring covers %d of %d workers over 200 keys", len(covered), len(addrs))
	}
	// Candidates are a permutation of all workers, deterministically.
	c1 := r.candidates("part/7")
	c2 := r.candidates("part/7")
	if len(c1) != len(addrs) {
		t.Fatalf("candidates %v must list every worker", c1)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("candidate order not deterministic: %v vs %v", c1, c2)
		}
	}
	// Kill worker 2: only its keys move.
	after := assign(r, 200, 2)
	for k, w := range before {
		if w == 2 {
			continue
		}
		if after[k] != w {
			t.Fatalf("key %d moved %d -> %d though worker %d stayed live", k, w, after[k], w)
		}
	}
}

// TestVerifyRowCoverage rejects malformed replies before they can
// scatter into the output.
func TestVerifyRowCoverage(t *testing.T) {
	part := []int{4, 5, 6}
	ok := &ComputeReply{Rows: []int{6, 4, 5}, Data: make([]float32, 9), Cols: 3}
	if err := verifyRowCoverage(part, ok, 3); err != nil {
		t.Fatal(err)
	}
	bad := []*ComputeReply{
		{Rows: []int{4, 5}, Data: make([]float32, 6), Cols: 3},    // missing row
		{Rows: []int{4, 5, 7}, Data: make([]float32, 9), Cols: 3}, // foreign row
		{Rows: []int{4, 5, 5}, Data: make([]float32, 9), Cols: 3}, // duplicate row
		{Rows: []int{4, 5, 6}, Data: make([]float32, 8), Cols: 3}, // short payload
		{Rows: []int{4, 5, 6}, Data: make([]float32, 9), Cols: 2}, // wrong width
	}
	for i, r := range bad {
		if err := verifyRowCoverage(part, r, 3); err == nil {
			t.Fatalf("malformed reply %d accepted", i)
		}
	}
}

// TestDialNoWorkers: an empty or fully-unreachable address set is a
// typed error.
func TestDialNoWorkers(t *testing.T) {
	if _, err := Dial(nil); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("empty dial: %v", err)
	}
	if _, err := Dial([]string{"127.0.0.1:1"}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("unreachable dial: %v", err)
	}
}
