package distributed

import (
	"testing"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/spmm"
)

func TestNeighborSample(t *testing.T) {
	g := graph.BarabasiAlbert(2000, 4, 1)
	cfg := SamplerConfig{Seeds: 20, Fanout: []int{8, 4}, Seed: 3}
	s := NeighborSample(g, cfg, 0)
	if s.G.N() < 20 {
		t.Fatalf("sample too small: %d", s.G.N())
	}
	if s.G.N() > 20*(1+8+8*4) {
		t.Fatalf("sample too large: %d", s.G.N())
	}
	if err := s.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Orig) != s.G.N() {
		t.Error("orig mapping length mismatch")
	}
	// Edges in sample exist in the original graph.
	for u := 0; u < s.G.N(); u++ {
		for _, v := range s.G.Neighbors(u) {
			if !g.HasEdge(s.Orig[u], s.Orig[int(v)]) {
				t.Fatalf("sample edge (%d,%d) not in original", u, v)
			}
		}
	}
}

func TestNeighborSampleDeterministic(t *testing.T) {
	g := graph.BarabasiAlbert(500, 3, 2)
	cfg := SamplerConfig{Seeds: 10, Fanout: []int{5}, Seed: 9}
	a := NeighborSample(g, cfg, 3)
	b := NeighborSample(g, cfg, 3)
	if a.G.N() != b.G.N() || a.G.NumEdges() != b.G.NumEdges() {
		t.Error("sampling not deterministic")
	}
	c := NeighborSample(g, cfg, 4)
	if c.G.N() == a.G.N() && c.G.NumEdges() == a.G.NumEdges() {
		t.Log("different sample indices produced identical samples (possible but unlikely)")
	}
}

func TestPipelineRun(t *testing.T) {
	g := graph.Banded(3000, 3, 0.8, 5)
	cfg := PipelineConfig{
		Workers:  4,
		Samples:  4,
		Features: 32,
		Classes:  8,
		Sampler:  SamplerConfig{Seeds: 30, Fanout: []int{6, 4}, Seed: 1},
		AutoOpt:  core.AutoOptions{MaxM: 8, MaxV: 8},
	}
	res, err := Run("test-banded", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 4 {
		t.Errorf("samples = %d", res.Samples)
	}
	if res.AvgSampleSize <= 0 {
		t.Error("avg sample size missing")
	}
	if res.LYRSpeedup <= 0 || res.ALLSpeedup <= 0 {
		t.Errorf("speedups missing: %+v", res)
	}
	// End-to-end speedup is damped relative to aggregation speedup by
	// the shared dense work.
	if res.ALLSpeedup > res.LYRSpeedup*1.5 && res.LYRSpeedup > 1 {
		t.Errorf("ALL %v implausibly exceeds LYR %v", res.ALLSpeedup, res.LYRSpeedup)
	}
	if res.ReorderTime <= 0 {
		t.Error("reorder time missing")
	}
}

func TestPipelineDefaults(t *testing.T) {
	g := graph.Banded(800, 2, 0.9, 2)
	res, err := Run("defaults", g, PipelineConfig{
		Sampler: SamplerConfig{Seeds: 15, Fanout: []int{4}, Seed: 2},
		AutoOpt: core.AutoOptions{MaxM: 4, MaxV: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 8 { // Workers(4) * 2
		t.Errorf("default samples = %d, want 8", res.Samples)
	}
}

func TestPartitionedSpMMMatchesDirect(t *testing.T) {
	// Section 4.4 end-to-end: partition -> reorder each piece -> SPTC
	// SpMM per piece -> reorder back + cross-edge accumulation must
	// equal the direct global SpMM exactly.
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"banded", graph.Banded(500, 2, 0.9, 3)},
		{"er", graph.ErdosRenyi(400, 5.0/400, 4)},
		{"powerlaw", graph.BarabasiAlbert(300, 3, 5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := dense.NewMatrix(tc.g.N(), 9)
			b.Randomize(1, 7)
			got, results, err := PartitionedSpMM(tc.g, b, 128, pattern.NM(2, 4), core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) < tc.g.N()/128 {
				t.Errorf("only %d partitions", len(results))
			}
			want := spmm.CSR(csr.FromGraph(tc.g), b)
			if d := dense.MaxAbsDiff(want, got); d > 1e-3 {
				t.Errorf("partitioned SpMM differs from direct by %v", d)
			}
		})
	}
}

func TestPartitionedSpMMValidation(t *testing.T) {
	g := graph.Grid2D(4, 4)
	b := dense.NewMatrix(3, 2)
	if _, _, err := PartitionedSpMM(g, b, 8, pattern.NM(2, 4), core.Options{}); err == nil {
		t.Error("want dimension error")
	}
	b2 := dense.NewMatrix(16, 2)
	if _, _, err := PartitionedSpMM(g, b2, 8, pattern.VNM{V: 1, N: 2, M: 3}, core.Options{}); err == nil {
		t.Error("want pattern error")
	}
}

func sampledTrainingSetup() (*graph.Graph, *dense.Matrix, []int, []int) {
	sizes := []int{150, 150, 150}
	g, labels := graph.SBM(sizes, 0.15, 0.005, 21)
	x := dense.NewMatrix(g.N(), 12)
	x.Randomize(1, 5)
	for i, l := range labels {
		x.Set(i, l, x.At(i, l)+1.5)
	}
	var test []int
	for i := 0; i < g.N(); i += 5 {
		test = append(test, i)
	}
	return g, x, labels, test
}

func TestTrainSampledSGCLearns(t *testing.T) {
	g, x, labels, test := sampledTrainingSetup()
	res, err := TrainSampledSGC(g, x, labels, 3, test, TrainSampledConfig{
		Sampler: SamplerConfig{Seeds: 40, Fanout: []int{6}, Seed: 3},
		Engine:  gnn.EngineCSR,
		Epochs:  15,
		Batches: 3,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc < 0.7 {
		t.Errorf("sampled training accuracy %.3f < 0.7 (losses %v)", res.TestAcc, res.Losses)
	}
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Errorf("loss did not decrease: %v -> %v", res.Losses[0], res.Losses[len(res.Losses)-1])
	}
	if res.AggCycles <= 0 {
		t.Error("aggregation cycles not accounted")
	}
}

func TestTrainSampledEnginesAgree(t *testing.T) {
	// Same sampling seed, same init: the SPTC engine must land on the
	// same classifier as the CSR engine (both aggregations are exact) —
	// the losslessness claim extended through training.
	g, x, labels, test := sampledTrainingSetup()
	run := func(engine gnn.EngineKind) *TrainSampledResult {
		res, err := TrainSampledSGC(g, x, labels, 3, test, TrainSampledConfig{
			Sampler: SamplerConfig{Seeds: 30, Fanout: []int{5}, Seed: 9},
			Engine:  engine,
			AutoOpt: core.AutoOptions{MaxM: 8, MaxV: 4},
			Epochs:  6,
			Batches: 2,
			Seed:    2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(gnn.EngineCSR)
	b := run(gnn.EngineSPTC)
	if d := dense.MaxAbsDiff(a.W, b.W); d > 1e-2 {
		t.Errorf("engines diverged in weights by %v", d)
	}
	if a.TestAcc != b.TestAcc {
		t.Logf("accuracies differ slightly: %.4f vs %.4f (float ordering)", a.TestAcc, b.TestAcc)
	}
}

func TestTrainSampledValidation(t *testing.T) {
	g, x, labels, test := sampledTrainingSetup()
	if _, err := TrainSampledSGC(g, dense.NewMatrix(3, 2), labels, 3, test, TrainSampledConfig{}); err == nil {
		t.Error("want size-mismatch error")
	}
	_ = x
}
