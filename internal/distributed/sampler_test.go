package distributed

import (
	"testing"

	"repro/internal/graph"
)

func sampleGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.BarabasiAlbert(600, 4, 77)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func samplesIdentical(a, b Sample) bool {
	if len(a.Orig) != len(b.Orig) || a.G.N() != b.G.N() || a.G.NumEdges() != b.G.NumEdges() {
		return false
	}
	for i := range a.Orig {
		if a.Orig[i] != b.Orig[i] {
			return false
		}
	}
	for u := 0; u < a.G.N(); u++ {
		na, nb := a.G.Neighbors(u), b.G.Neighbors(u)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// TestNeighborSampleReproducible: with a fixed seed the sampler is a
// pure function of (config, sample index) — the property that makes
// distributed runs and their Table-6 numbers replayable.
func TestNeighborSampleReproducible(t *testing.T) {
	g := sampleGraph(t)
	cfg := SamplerConfig{Seeds: 24, Fanout: []int{6, 4}, Seed: 123}
	for idx := 0; idx < 4; idx++ {
		s1 := NeighborSample(g, cfg, idx)
		s2 := NeighborSample(g, cfg, idx)
		if !samplesIdentical(s1, s2) {
			t.Fatalf("sample %d not reproducible under fixed seed", idx)
		}
		if err := s1.G.Validate(); err != nil {
			t.Fatalf("sample %d: invalid subgraph: %v", idx, err)
		}
		// The subgraph must be induced: every sampled vertex maps back
		// to an original vertex and every edge exists in g.
		for u := 0; u < s1.G.N(); u++ {
			for _, v := range s1.G.Neighbors(u) {
				if !g.HasEdge(s1.Orig[u], s1.Orig[int(v)]) {
					t.Fatalf("sample %d: edge (%d,%d) has no original counterpart", idx, u, v)
				}
			}
		}
	}
}

// TestNeighborSampleIndexAndSeedVary: distinct sample indices and
// distinct base seeds draw distinct subgraphs (the sampler would
// otherwise silently collapse a distributed run to one sample).
func TestNeighborSampleIndexAndSeedVary(t *testing.T) {
	g := sampleGraph(t)
	cfg := SamplerConfig{Seeds: 24, Fanout: []int{6, 4}, Seed: 123}
	if samplesIdentical(NeighborSample(g, cfg, 0), NeighborSample(g, cfg, 1)) {
		t.Error("sample 0 and 1 identical")
	}
	cfg2 := cfg
	cfg2.Seed = 124
	if samplesIdentical(NeighborSample(g, cfg, 0), NeighborSample(g, cfg2, 0)) {
		t.Error("different base seeds produced identical samples")
	}
}

// TestNeighborSampleBounds: the sample never exceeds the expansion
// budget seeds * prod(1 + fanout) and never exceeds the graph.
func TestNeighborSampleBounds(t *testing.T) {
	g := sampleGraph(t)
	cfg := SamplerConfig{Seeds: 10, Fanout: []int{3, 2}, Seed: 9}
	s := NeighborSample(g, cfg, 0)
	budget := 10 * (1 + 3 + 3*2)
	if s.G.N() > budget {
		t.Errorf("sample size %d exceeds budget %d", s.G.N(), budget)
	}
	if s.G.N() > g.N() {
		t.Errorf("sample larger than graph")
	}
	if s.G.N() < cfg.Seeds {
		t.Errorf("sample smaller than seed set: %d < %d", s.G.N(), cfg.Seeds)
	}
}
