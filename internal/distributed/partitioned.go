package distributed

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/spmm"
	"repro/internal/venom"
)

// PartitionedSpMM computes C = A x B for a graph adjacency A too large
// for one device, following the paper's Section 4.4 recipe: partition
// the vertex set, reorder each partition's local adjacency
// independently, run the SPTC kernel on each reordered diagonal block,
// reorder the partial results back, and accumulate them together with
// the cross-partition (off-diagonal) contributions computed on the
// CSR path. The result is bit-compatible with the direct global SpMM.
//
// Returns the result and the per-partition reorder outcomes.
func PartitionedSpMM(g *graph.Graph, b *dense.Matrix, maxN int, p pattern.VNM, opt core.Options) (*dense.Matrix, []*core.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := g.N()
	if b.Rows != n {
		return nil, nil, fmt.Errorf("distributed: B has %d rows, want %d", b.Rows, n)
	}
	parts := core.BFSPartition(g, maxN)
	c := dense.NewMatrix(n, b.Cols)
	results := make([]*core.Result, len(parts))

	// Mark each vertex's partition for the cross-edge pass.
	partOf := make([]int32, n)
	for pi, part := range parts {
		for _, v := range part {
			partOf[v] = int32(pi)
		}
	}

	// Diagonal blocks: reorder + compress + SPTC kernel, fanned out on
	// the execution pool (one simulated device each) — a bounded worker
	// set rather than a goroutine per partition, shared with each
	// partition's internal reordering phases.
	pool := opt.ExecutionPool()
	if opt.Pool == nil {
		opt.Pool = pool
	}
	errs := make([]error, len(parts))
	pool.Run(len(parts), func(pi int) {
		part := parts[pi]
		sub, orig := g.Subgraph(part)
		res, err := core.Reorder(sub.ToBitMatrix(), p, opt)
		if err != nil {
			errs[pi] = err
			return
		}
		results[pi] = res
		a := csr.FromBitMatrix(res.Matrix)
		comp, resid, err := venom.SplitToConform(a, p)
		if err != nil {
			errs[pi] = err
			return
		}
		// Gather B rows in the partition's reordered order:
		// local row j corresponds to original vertex
		// orig[res.Perm[j]].
		localB := dense.NewMatrix(len(part), b.Cols)
		for j := 0; j < len(part); j++ {
			copy(localB.Row(j), b.Row(orig[res.Perm[j]]))
		}
		localC := spmm.VNM(comp, localB)
		if resid.NNZ() > 0 {
			localC.Add(spmm.CSR(resid, localB))
		}
		// Reorder back before accumulation (the paper's phrase):
		// scatter local row j to global row orig[res.Perm[j]].
		// Partitions own disjoint global rows, so no locking.
		for j := 0; j < len(part); j++ {
			copy(c.Row(orig[res.Perm[j]]), localC.Row(j))
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Cross-partition contributions on the CSR path: C[u] += B[v] for
	// every edge (u, v) spanning partitions.
	bitmat.ParallelRows(n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			cr := c.Row(u)
			for _, v := range g.Neighbors(u) {
				if partOf[u] == partOf[v] {
					continue
				}
				br := b.Row(int(v))
				for j, bv := range br {
					cr[j] += bv
				}
			}
		}
	})
	return c, results, nil
}
