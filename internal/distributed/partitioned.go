package distributed

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/spmm"
	"repro/internal/venom"
)

// PartitionedSpMM computes C = A x B for a graph adjacency A too large
// for one device, following the paper's Section 4.4 recipe: partition
// the vertex set, reorder each partition's local adjacency
// independently, run the SPTC kernel on each reordered diagonal block,
// reorder the partial results back, and accumulate them together with
// the cross-partition (off-diagonal) contributions computed on the
// CSR path. The result is bit-compatible with the direct global SpMM.
//
// Returns the result and the per-partition reorder outcomes.
func PartitionedSpMM(g *graph.Graph, b *dense.Matrix, maxN int, p pattern.VNM, opt core.Options) (*dense.Matrix, []*core.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := g.N()
	if b.Rows != n {
		return nil, nil, fmt.Errorf("distributed: B has %d rows, want %d", b.Rows, n)
	}
	parts := core.BFSPartition(g, maxN)
	c := dense.NewMatrix(n, b.Cols)
	results := make([]*core.Result, len(parts))

	// Mark each vertex's partition for the cross-edge pass.
	partOf := make([]int32, n)
	for pi, part := range parts {
		for _, v := range part {
			partOf[v] = int32(pi)
		}
	}

	// Diagonal blocks: reorder + compress + SPTC kernel, fanned out on
	// the execution pool (one simulated device each) — a bounded worker
	// set rather than a goroutine per partition, shared with each
	// partition's internal reordering phases.
	pool := opt.ExecutionPool()
	if opt.Pool == nil {
		opt.Pool = pool
	}
	errs := make([]error, len(parts))
	runErr := pool.Run(len(parts), func(pi int) {
		out, err := computePartition(g, b, parts[pi], p, opt)
		if err != nil {
			errs[pi] = err
			return
		}
		results[pi] = out.res
		out.scatter(c)
	})
	if runErr != nil {
		return nil, nil, runErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	crossPartitionPass(g, b, c, partOf)
	return c, results, nil
}

// partOut is one partition's computed contribution, held apart from the
// shared output matrix so the fault-injection path can verify it (and
// discard a corrupted copy) before committing — the "partial result in
// transit" of the paper's distributed setting.
type partOut struct {
	res    *core.Result
	localC *dense.Matrix
	rows   []int // rows[j] is local row j's global target row
}

// scatter commits the partition's rows into the global result. Safe to
// run concurrently across partitions: partitions own disjoint global
// rows.
func (o *partOut) scatter(c *dense.Matrix) {
	for j, r := range o.rows {
		copy(c.Row(r), o.localC.Row(j))
	}
}

// computePartition is the pure per-partition diagonal-block pipeline:
// reorder the induced subgraph, split to the conforming + residual
// hybrid, gather B rows in reordered order, run the SPTC kernel (CSR
// for the residual), and report the rows in global coordinates. It
// reads only immutable inputs and returns a fresh result, so the
// recovery layer can re-run it after a crash, straggler re-dispatch, or
// detected corruption and obtain a bit-identical partial result
// (DESIGN.md §10).
func computePartition(g *graph.Graph, b *dense.Matrix, part []int, p pattern.VNM, opt core.Options) (*partOut, error) {
	sub, orig := g.Subgraph(part)
	res, err := core.Reorder(sub.ToBitMatrix(), p, opt)
	if err != nil {
		return nil, err
	}
	a := csr.FromBitMatrix(res.Matrix)
	comp, resid, err := venom.SplitToConform(a, p)
	if err != nil {
		return nil, err
	}
	// Gather B rows in the partition's reordered order: local row j
	// corresponds to original vertex orig[res.Perm[j]].
	localB := dense.NewMatrix(len(part), b.Cols)
	for j := 0; j < len(part); j++ {
		copy(localB.Row(j), b.Row(orig[res.Perm[j]]))
	}
	localC := spmm.VNM(comp, localB)
	if resid.NNZ() > 0 {
		localC.Add(spmm.CSR(resid, localB))
	}
	// Reorder back before accumulation (the paper's phrase): local row
	// j lands on global row orig[res.Perm[j]].
	rows := make([]int, len(part))
	for j := 0; j < len(part); j++ {
		rows[j] = orig[res.Perm[j]]
	}
	return &partOut{res: res, localC: localC, rows: rows}, nil
}

// crossPartitionPass adds the off-diagonal contributions on the CSR
// path: C[u] += B[v] for every edge (u, v) spanning partitions.
func crossPartitionPass(g *graph.Graph, b, c *dense.Matrix, partOf []int32) {
	bitmat.ParallelRows(g.N(), func(lo, hi int) {
		for u := lo; u < hi; u++ {
			cr := c.Row(u)
			for _, v := range g.Neighbors(u) {
				if partOf[u] == partOf[v] {
					continue
				}
				br := b.Row(int(v))
				for j, bv := range br {
					cr[j] += bv
				}
			}
		}
	})
}
