package distributed

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/resil"
	"repro/internal/sched"
)

// mustPlan parses a fault plan the test wrote itself.
func mustPlan(t *testing.T, s string) *resil.Plan {
	t.Helper()
	p, err := resil.ParsePlan(s)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", s, err)
	}
	return p
}

// bitEqual reports whether two matrices are bit-identical.
func bitEqual(a, b *dense.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// TestPartitionedSpMMFaultsBitIdentical: crashes, transients, and
// corrupted transfers injected into the partitioned SpMM are recovered
// by recomputation, so the result is bit-identical to the fault-free
// run — and the deterministic fault counters record exactly the plan.
func TestPartitionedSpMMFaultsBitIdentical(t *testing.T) {
	g := graph.Banded(600, 2, 0.9, 3)
	b := dense.NewMatrix(g.N(), 8)
	b.Randomize(1, 11)
	p := pattern.NM(2, 4)
	want, _, err := PartitionedSpMM(g, b, 128, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := mustPlan(t, "seed=5; crash@partition:1; transient@partition:4; corrupt@partition/xfer:2")
	reg := obs.NewRegistry()
	got, results, err := PartitionedSpMMFaults(g, b, 128, p, core.Options{},
		FaultConfig{Inj: resil.NewInjector(plan, reg), Retry: resil.RetryPolicy{Backoff: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(want, got) {
		t.Fatal("faulted partitioned SpMM differs from fault-free run")
	}
	if len(results) == 0 {
		t.Fatal("no partition results")
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("partition %d result missing after recovery", i)
		}
	}
	counters := reg.Snapshot().Counters
	if counters["resil/injected/crash"] != 1 || counters["resil/injected/transient"] != 1 || counters["resil/injected/corrupt"] != 1 {
		t.Errorf("injected counters = %v, want one of each kind", counters)
	}
	if counters["resil/retries/partition"] != 3 {
		t.Errorf("retries = %d, want 3 (one per injected fault)", counters["resil/retries/partition"])
	}
}

// TestPartitionedSpMMFaultsRetryExhaustion: more crashes than the
// retry budget at one site surfaces a typed, attempt-counted error
// instead of hanging or panicking.
func TestPartitionedSpMMFaultsRetryExhaustion(t *testing.T) {
	g := graph.Banded(200, 2, 0.9, 3)
	b := dense.NewMatrix(g.N(), 4)
	b.Randomize(1, 2)
	plan := mustPlan(t, "seed=1; crash@partition:1; crash@partition:2")
	_, _, err := PartitionedSpMMFaults(g, b, 512, pattern.NM(2, 4), core.Options{Workers: 1},
		FaultConfig{Inj: resil.NewInjector(plan, nil), Retry: resil.RetryPolicy{Max: 2, Backoff: -1}})
	if err == nil {
		t.Fatal("retry exhaustion did not surface an error")
	}
	var pe *resil.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want wrapped *resil.PanicError from the injected crash", err)
	}
}

// sampledFixture builds a small labeled graph for sampled-SGC training.
func sampledFixture() (*graph.Graph, *dense.Matrix, []int, []int) {
	g := graph.Banded(300, 2, 0.9, 7)
	x := dense.NewMatrix(g.N(), 12)
	x.Randomize(1, 3)
	labels := make([]int, g.N())
	var test []int
	for i := range labels {
		labels[i] = (i / 30) % 3
		if i%5 == 0 {
			test = append(test, i)
		}
	}
	return g, x, labels, test
}

func sampledCfg(engine gnn.EngineKind) TrainSampledConfig {
	return TrainSampledConfig{
		Sampler: SamplerConfig{Seeds: 12, Fanout: []int{6, 4}, Seed: 5},
		Engine:  engine,
		Epochs:  3,
		Batches: 2,
		Seed:    9,
	}
}

// TestTrainSampledFaultsBitIdentical: sampled training under an
// injected plan (crash, transient, straggler, corrupted transfer, eval
// crash) recovers to the exact fault-free outcome: same loss bits, same
// classifier bits, same accuracy.
func TestTrainSampledFaultsBitIdentical(t *testing.T) {
	g, x, labels, test := sampledFixture()
	cfg := sampledCfg(gnn.EngineSPTC)
	ref, err := TrainSampledSGC(g, x, labels, 3, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := mustPlan(t,
		"seed=3; crash@sample:2; transient@sample:4; straggler@sample:5:1ms; corrupt@sample/xfer:3; crash@eval:1")
	fcfg := cfg
	fcfg.Faults = FaultConfig{Inj: resil.NewInjector(plan, nil), Retry: resil.RetryPolicy{Backoff: -1}}
	got, err := TrainSampledSGC(g, x, labels, 3, test, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Losses) != len(ref.Losses) {
		t.Fatalf("epochs %d != %d", len(got.Losses), len(ref.Losses))
	}
	for i := range ref.Losses {
		if got.Losses[i] != ref.Losses[i] {
			t.Fatalf("epoch %d loss %v != fault-free %v", i, got.Losses[i], ref.Losses[i])
		}
	}
	if !bitEqual(ref.W, got.W) || !bitEqual(ref.B, got.B) {
		t.Fatal("classifier differs from fault-free run")
	}
	if got.TestAcc != ref.TestAcc {
		t.Fatalf("TestAcc %v != %v", got.TestAcc, ref.TestAcc)
	}
}

// TestTrainSampledMetaDegrade: an injected transient at "venom/meta"
// forces the per-sample SPTC→CSR degrade; training completes, the
// fallback counter records it, and the outcome stays within the
// cross-engine tolerance of the fault-free run (the degrade permutes
// summation order, so bit-identity is out of scope by design).
func TestTrainSampledMetaDegrade(t *testing.T) {
	g, x, labels, test := sampledFixture()
	cfg := sampledCfg(gnn.EngineSPTC)
	ref, err := TrainSampledSGC(g, x, labels, 3, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fcfg := cfg
	fcfg.Faults = FaultConfig{
		Inj:   resil.NewInjector(mustPlan(t, "seed=2; transient@venom/meta:2"), reg),
		Retry: resil.RetryPolicy{Backoff: -1},
	}
	got, err := TrainSampledSGC(g, x, labels, 3, test, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	fallbacks := reg.Snapshot().Counters["resil/fallback/sptc_to_csr"]
	if fallbacks != 1 {
		t.Fatalf("sptc_to_csr fallbacks = %d, want 1", fallbacks)
	}
	for i := range ref.Losses {
		d := ref.Losses[i] - got.Losses[i]
		if d < 0 {
			d = -d
		}
		if d > 2e-2 {
			t.Fatalf("epoch %d loss drifted by %v under degrade", i, d)
		}
	}
}

// TestTrainSampledSerialRung: a plan that exhausts every retry at the
// "sample" site pushes one sample down to the serial CSR rung; training
// still completes and the fallback is recorded.
func TestTrainSampledSerialRung(t *testing.T) {
	g, x, labels, test := sampledFixture()
	cfg := sampledCfg(gnn.EngineSPTC)
	reg := obs.NewRegistry()
	fcfg := cfg
	fcfg.Faults = FaultConfig{
		Inj:   resil.NewInjector(mustPlan(t, "seed=4; crash@sample:1; crash@sample:2"), reg),
		Retry: resil.RetryPolicy{Max: 2, Backoff: -1},
	}
	got, err := TrainSampledSGC(g, x, labels, 3, test, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Losses) != cfg.Epochs {
		t.Fatalf("training truncated: %d epochs", len(got.Losses))
	}
	serial := reg.Snapshot().Counters["resil/fallback/serial"]
	if serial != 1 {
		t.Fatalf("serial fallbacks = %d, want 1", serial)
	}
}

// TestTrainSampledSpeculation: a long injected straggler with a short
// speculation threshold completes far sooner than the injected delay by
// re-dispatching, and the result stays bit-identical (both copies
// compute the same bits).
func TestTrainSampledSpeculation(t *testing.T) {
	g, x, labels, test := sampledFixture()
	cfg := sampledCfg(gnn.EngineCSR)
	ref, err := TrainSampledSGC(g, x, labels, 3, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	fcfg.Faults = FaultConfig{
		Inj:            resil.NewInjector(mustPlan(t, "seed=8; straggler@sample:1:30s"), nil),
		Retry:          resil.RetryPolicy{Backoff: -1},
		StragglerAfter: 20 * time.Millisecond,
	}
	done := make(chan struct{})
	var got *TrainSampledResult
	var terr error
	go func() {
		got, terr = TrainSampledSGC(g, x, labels, 3, test, fcfg)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second): // far below the 30s injected delay
		t.Fatal("speculative re-dispatch did not rescue the straggling sample")
	}
	if terr != nil {
		t.Fatal(terr)
	}
	if !bitEqual(ref.W, got.W) {
		t.Fatal("speculated run differs from fault-free run")
	}
}

// TestTrainSampledPoolInjector: a pool built WithInjector feeds tile
// crashes into the sample's kernels; the panic is contained by the
// scheduler, converted to an error by the recovery layer, and retried
// to the fault-free result.
func TestTrainSampledPoolInjector(t *testing.T) {
	g, x, labels, test := sampledFixture()
	cfg := sampledCfg(gnn.EngineCSR)
	ref, err := TrainSampledSGC(g, x, labels, 3, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj := resil.NewInjector(mustPlan(t, "seed=6; crash@tile:10"), nil)
	fcfg := cfg
	fcfg.Pool = sched.New(2).WithInjector(inj)
	fcfg.Faults = FaultConfig{Inj: inj, Retry: resil.RetryPolicy{Backoff: -1}}
	got, err := TrainSampledSGC(g, x, labels, 3, test, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(ref.W, got.W) {
		t.Fatal("tile-crash run differs from fault-free run")
	}
}

// TestNeighborSampleDegenerate: degenerate sampler inputs yield valid
// samples instead of panicking.
func TestNeighborSampleDegenerate(t *testing.T) {
	g := graph.Banded(50, 2, 0.9, 1)
	empty, err := graph.NewFromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		g     *graph.Graph
		cfg   SamplerConfig
		wantN func(n int) bool
	}{
		{"empty graph", empty, SamplerConfig{Seeds: 5, Fanout: []int{3}}, func(n int) bool { return n == 0 }},
		{"zero seeds", g, SamplerConfig{Seeds: 0, Fanout: []int{3}}, func(n int) bool { return n == 0 }},
		{"negative seeds", g, SamplerConfig{Seeds: -2, Fanout: []int{3}}, func(n int) bool { return n == 0 }},
		{"nil fanout", g, SamplerConfig{Seeds: 4}, func(n int) bool { return n >= 1 && n <= 4 }},
		{"zero fanout", g, SamplerConfig{Seeds: 4, Fanout: []int{0, 0}}, func(n int) bool { return n >= 1 && n <= 4 }},
		{"negative fanout", g, SamplerConfig{Seeds: 4, Fanout: []int{-3}}, func(n int) bool { return n >= 1 && n <= 4 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NeighborSample(tc.g, tc.cfg, 0)
			if err := s.G.Validate(); err != nil {
				t.Fatalf("invalid sample graph: %v", err)
			}
			if len(s.Orig) != s.G.N() {
				t.Fatalf("orig mapping %d != N %d", len(s.Orig), s.G.N())
			}
			if !tc.wantN(s.G.N()) {
				t.Fatalf("unexpected sample size %d", s.G.N())
			}
		})
	}
}
