package distributed

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/resil"
	"repro/internal/sched"
)

// FaultConfig threads the internal/resil fault-injection and recovery
// layer through the distributed pipeline. The zero value disables the
// whole machinery: every guarded call collapses to the plain code path
// at the cost of one struct comparison, so the fault-free hot path is
// unchanged.
//
// Injection sites fired by this package (occurrences count per site, in
// execution order):
//
//	partition       one Begin per per-partition attempt (PartitionedSpMMFaults)
//	partition/xfer  one Corrupt per computed partition partial result
//	sample          one Begin per sample-propagation attempt (TrainSampledSGC)
//	sample/xfer     one Corrupt per propagated sample result
//	venom/meta      one Begin per SPTC operator validation (a transient
//	                event here forces the SPTC→CSR degrade for that sample)
//	eval            one Begin per full-graph evaluation attempt
//	tile            per executed scheduler tile, when the pool was built
//	                WithInjector (internal/sched)
//
// Recovery is recomputation of pure functions, so a recovered run's
// training outcome is bit-identical to the fault-free run — the
// contract check.FaultEquivalence enforces. The exception is the
// degradation ladder's engine changes (SPTC→CSR, →serial CSR), which
// permute float32 summation order and therefore agree only to
// check.SampledTolerance.
type FaultConfig struct {
	// Inj is the armed fault injector; nil injects nothing (recovery
	// machinery still guards genuine failures when Retry or
	// StragglerAfter is set).
	Inj *resil.Injector
	// Retry bounds each site's recovery loop; the zero value means
	// resil defaults (3 attempts, 1ms deterministic backoff).
	Retry resil.RetryPolicy
	// StragglerAfter, when positive, speculatively re-dispatches an
	// attempt that has not finished within the duration (first result
	// wins; both copies are bit-identical). Note that backup copies
	// advance injector hit counters, so exact-occurrence scheduling at
	// the affected sites becomes timing-dependent — use straggler-only
	// plans with speculation.
	StragglerAfter time.Duration
}

// enabled reports whether any part of the fault machinery is on.
func (fc FaultConfig) enabled() bool {
	return fc.Inj != nil || fc.Retry != (resil.RetryPolicy{}) || fc.StragglerAfter > 0
}

// degradable reports whether err warrants stepping down the degradation
// ladder rather than aborting: injected faults and contained panics
// (tile panics, crash events) are executor failures the serial rung can
// absorb; anything else is a genuine input/configuration error.
func degradable(err error) bool {
	if resil.IsInjected(err) {
		return true
	}
	var pe *resil.PanicError
	var te *sched.TileError
	return errors.As(err, &pe) || errors.As(err, &te)
}

// PartitionedSpMMFaults is PartitionedSpMM with the fault layer
// engaged: each partition's diagonal-block computation runs as a
// protected attempt (crash events and tile panics are contained as
// errors), its partial result is checksummed at the source and verified
// after the simulated transfer (an injected corruption fails
// verification and forces a recompute), attempts retry under fc.Retry's
// deterministic policy, and a straggling partition is speculatively
// re-dispatched after fc.StragglerAfter. Recovery recomputes a pure
// function, so the returned matrix is bit-identical to the fault-free
// PartitionedSpMM result.
func PartitionedSpMMFaults(g *graph.Graph, b *dense.Matrix, maxN int, p pattern.VNM, opt core.Options, fc FaultConfig) (*dense.Matrix, []*core.Result, error) {
	if !fc.enabled() {
		return PartitionedSpMM(g, b, maxN, p, opt)
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := g.N()
	if b.Rows != n {
		return nil, nil, fmt.Errorf("distributed: B has %d rows, want %d", b.Rows, n)
	}
	parts := core.BFSPartition(g, maxN)
	c := dense.NewMatrix(n, b.Cols)
	results := make([]*core.Result, len(parts))
	partOf := make([]int32, n)
	for pi, part := range parts {
		for _, v := range part {
			partOf[v] = int32(pi)
		}
	}
	pool := opt.ExecutionPool()
	// Attempts may recompute (retry) or duplicate (speculation), so the
	// per-partition compute runs without an observability registry —
	// the deterministic fault accounting (resil/injected, resil/retries)
	// is charged by the resil layer against the injector's registry.
	copt := opt
	copt.Obs = nil
	copt.Pool = pool.WithObs(nil)
	robs := fc.Inj.Obs()
	errs := make([]error, len(parts))
	runErr := pool.Run(len(parts), func(pi int) {
		errs[pi] = resil.Retry(fc.Retry, robs, "partition", func(int) error {
			v, err := resil.Speculate(fc.StragglerAfter, func() {
				robs.Volatile("resil/redispatch/partition").Inc()
			}, func() (any, error) {
				if err := fc.Inj.Begin("partition"); err != nil {
					return nil, err
				}
				out, err := computePartition(g, b, parts[pi], p, copt)
				if err != nil {
					return nil, err
				}
				// Simulated transfer of the partial result: checksum at
				// the source, corrupt in transit, verify at the receiver.
				want := resil.Checksum(out.localC.Data)
				fc.Inj.Corrupt("partition/xfer", out.localC.Data)
				if got := resil.Checksum(out.localC.Data); got != want {
					return nil, &resil.ChecksumError{Site: "partition/xfer", Want: want, Got: got}
				}
				return out, nil
			})
			if err != nil {
				return err
			}
			// Commit only a verified result; partitions own disjoint
			// global rows.
			out := v.(*partOut)
			results[pi] = out.res
			out.scatter(c)
			return nil
		})
	})
	if runErr != nil {
		return nil, nil, runErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	crossPartitionPass(g, b, c, partOf)
	return c, results, nil
}

// propagateProtected runs one sample's propagation under the fault
// layer: protected attempts with source/receiver checksums over the
// simulated result transfer, deterministic retry, optional speculative
// re-dispatch, and — when the configured engine keeps failing on
// injected faults or contained panics — the final rung of the
// degradation ladder: one serial CSR execution on the known-good path.
// The winning attempt's private ledger is merged into ledger, so
// retried or duplicated work never reaches the deterministic
// observability snapshot.
func propagateProtected(s Sample, g *graph.Graph, x *dense.Matrix, cfg TrainSampledConfig, ledger *gnn.Ledger) (*dense.Matrix, error) {
	fc := cfg.Faults
	if !fc.enabled() {
		return propagateSample(s, g, x, cfg, ledger)
	}
	robs := fc.Inj.Obs()
	acfg := cfg
	acfg.Obs = nil
	if acfg.Pool != nil {
		acfg.Pool = acfg.Pool.WithObs(nil)
	}
	type propOut struct {
		prop *dense.Matrix
		led  *gnn.Ledger
	}
	var won propOut
	err := resil.Retry(fc.Retry, robs, "sample", func(int) error {
		v, err := resil.Speculate(fc.StragglerAfter, func() {
			robs.Volatile("resil/redispatch/sample").Inc()
		}, func() (any, error) {
			if err := fc.Inj.Begin("sample"); err != nil {
				return nil, err
			}
			local := &gnn.Ledger{}
			prop, err := propagateSample(s, g, x, acfg, local)
			if err != nil {
				return nil, err
			}
			want := resil.Checksum(prop.Data)
			fc.Inj.Corrupt("sample/xfer", prop.Data)
			if got := resil.Checksum(prop.Data); got != want {
				return nil, &resil.ChecksumError{Site: "sample/xfer", Want: want, Got: got}
			}
			return propOut{prop: prop, led: local}, nil
		})
		if err != nil {
			return err
		}
		won = v.(propOut)
		return nil
	})
	if err == nil {
		ledger.Merge(won.led)
		return won.prop, nil
	}
	if !degradable(err) {
		return nil, err
	}
	// Serial rung: the configured engine/pool exhausted its retries on
	// executor failures, so run this sample once on the serial CSR path
	// outside injection. This changes float32 summation order relative
	// to the SPTC engine, which is why retry-exhausting plans are held
	// to SampledTolerance instead of bit-identity.
	robs.Counter("resil/fallback/serial").Inc()
	dcfg := acfg
	dcfg.Engine = gnn.EngineCSR
	dcfg.Pool = sched.Serial()
	dcfg.Faults = FaultConfig{}
	local := &gnn.Ledger{}
	prop, derr := propagateSample(s, g, x, dcfg, local)
	if derr != nil {
		return nil, fmt.Errorf("distributed: serial degraded attempt also failed: %v (after %w)", derr, err)
	}
	ledger.Merge(local)
	return prop, nil
}

// evalProtected runs the full-graph evaluation propagation under the
// fault layer (site "eval"), with the same private-ledger merge
// discipline as propagateProtected.
func evalProtected(g *graph.Graph, x *dense.Matrix, cfg TrainSampledConfig, ledger *gnn.Ledger, makeOp func(*gnn.Ledger) (gnn.Operator, error)) (*dense.Matrix, error) {
	fc := cfg.Faults
	robs := fc.Inj.Obs()
	var out *dense.Matrix
	var won *gnn.Ledger
	err := resil.Retry(fc.Retry, robs, "eval", func(int) error {
		return resil.Protect(func() error {
			if err := fc.Inj.Begin("eval"); err != nil {
				return err
			}
			local := &gnn.Ledger{}
			op, err := makeOp(local)
			if err != nil {
				return err
			}
			h := x
			for i := 0; i < cfg.Hops; i++ {
				h = op.Mul(h)
			}
			out, won = h, local
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	ledger.Merge(won)
	return out, nil
}
