// Package distributed reproduces the paper's Section 5.2 pipeline for
// large graphs: neighbor-sampled subgraphs (PyG NeighborSampler
// analog), offline SOGRE reordering of each sample, and parallel
// execution across a pool of simulated GPU workers (the paper uses four
// A100s), comparing the SPTC-based revised path against the CSR
// baseline with the SGC model.
package distributed

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/sptc"
)

// SamplerConfig controls neighbor sampling.
type SamplerConfig struct {
	Seeds  int   // seed vertices per sample
	Fanout []int // neighbors kept per hop, e.g. {10, 10}
	Seed   int64
}

// Sample is one sampled subgraph with its mapping to original ids.
type Sample struct {
	G    *graph.Graph
	Orig []int
}

// NeighborSample draws one subgraph: seed vertices plus a fanout-capped
// neighbor expansion per hop, then the induced subgraph on the union.
//
// Degenerate inputs yield valid (possibly empty) samples rather than
// panicking: an empty graph or Seeds <= 0 returns an empty sample, a
// zero-length Fanout returns the seed-only sample, and zero or negative
// per-hop fanouts keep no neighbors for that hop.
func NeighborSample(g *graph.Graph, cfg SamplerConfig, sampleIdx int) Sample {
	if g.N() == 0 || cfg.Seeds <= 0 {
		sub, orig := g.Subgraph(nil)
		return Sample{G: sub, Orig: orig}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(sampleIdx)*7919))
	inSet := make(map[int]bool)
	frontier := make([]int, 0, cfg.Seeds)
	for len(frontier) < cfg.Seeds && len(frontier) < g.N() {
		v := rng.Intn(g.N())
		if !inSet[v] {
			inSet[v] = true
			frontier = append(frontier, v)
		}
	}
	for _, fan := range cfg.Fanout {
		var next []int
		for _, u := range frontier {
			nbrs := g.Neighbors(u)
			take := fan
			if take > len(nbrs) {
				take = len(nbrs)
			}
			if take < 0 {
				take = 0
			}
			for _, pi := range rng.Perm(len(nbrs))[:take] {
				v := int(nbrs[pi])
				if !inSet[v] {
					inSet[v] = true
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	vertices := make([]int, 0, len(inSet))
	for v := range inSet {
		vertices = append(vertices, v)
	}
	// Deterministic order.
	sort.Ints(vertices)
	sub, orig := g.Subgraph(vertices)
	return Sample{G: sub, Orig: orig}
}

// PipelineConfig controls the distributed run.
type PipelineConfig struct {
	Workers    int // simulated GPUs (paper: 4 A100s)
	Samples    int // subgraphs to process
	Features   int // feature width (Table 2's #Features)
	Classes    int
	Hops       int // SGC propagation steps
	Sampler    SamplerConfig
	AutoOpt    core.AutoOptions
	CostModel  sptc.CostModel
	RandomSeed int64
}

// Result aggregates the pipeline outcome — a Table 6 column.
type Result struct {
	Dataset        string
	Samples        int
	AvgSampleSize  float64
	LYRSpeedup     float64 // aggregation speedup (modeled cycles)
	ALLSpeedup     float64 // end-to-end speedup
	WallBaseline   time.Duration
	WallRevised    time.Duration
	ConformedCount int
	// FallbackCount is how many samples kept the CSR path because the
	// cost model predicted SPTC would lose (the paper's Section 5.3
	// note: reordering is offline, so users can skip unsuitable
	// graphs).
	FallbackCount int
	ReorderTime   time.Duration // total offline preprocessing
}

// Run executes the pipeline on graph g: sample -> (offline) reorder ->
// per-worker SGC forward on both engines; aggregates modeled cycles
// across workers.
func Run(name string, g *graph.Graph, cfg PipelineConfig) (*Result, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Samples <= 0 {
		cfg.Samples = cfg.Workers * 2
	}
	if cfg.Hops <= 0 {
		cfg.Hops = 2
	}
	if cfg.Features <= 0 {
		cfg.Features = 128
	}
	if cfg.Classes <= 0 {
		cfg.Classes = 16
	}
	if cfg.CostModel.FragRows == 0 {
		cfg.CostModel = sptc.DefaultCostModel()
	}
	res := &Result{Dataset: name, Samples: cfg.Samples}
	type job struct {
		sample Sample
	}
	jobs := make(chan job, cfg.Samples)
	var mu sync.Mutex
	var baseAgg, baseTotal, revAgg, revTotal float64
	var sizeSum float64
	var conformed, fallbacks int
	var reorderTotal time.Duration
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(workerID int) {
			defer wg.Done()
			for j := range jobs {
				sub := j.sample.G
				// Offline: reorder this sample.
				t0 := time.Now()
				bm := sub.ToBitMatrix()
				for i := 0; i < bm.N(); i++ {
					bm.Set(i, i)
				}
				auto, err := core.AutoReorder(bm, cfg.AutoOpt)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				reorderDur := time.Since(t0)
				subR, err := sub.ApplyPermutation(auto.Best.Perm)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				x := dense.NewMatrix(sub.N(), cfg.Features)
				x.Randomize(1, cfg.RandomSeed+int64(workerID))
				bAgg, bTot := runSGC(sub, x, cfg, gnn.EngineCSR, auto)
				rAgg, rTot := runSGC(subR, x, cfg, gnn.EngineSPTC, auto)
				fallback := false
				if rAgg >= bAgg {
					// Offline decision: this sample is unsuitable for
					// SPTC execution; keep the CSR path.
					rAgg, rTot = bAgg, bTot
					fallback = true
				}
				mu.Lock()
				baseAgg += bAgg
				baseTotal += bTot
				revAgg += rAgg
				revTotal += rTot
				sizeSum += float64(sub.N())
				if auto.Best.Conforming() {
					conformed++
				}
				if fallback {
					fallbacks++
				}
				reorderTotal += reorderDur
				mu.Unlock()
			}
		}(w)
	}
	for s := 0; s < cfg.Samples; s++ {
		jobs <- job{sample: NeighborSample(g, cfg.Sampler, s)}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if revAgg == 0 || revTotal == 0 {
		return nil, fmt.Errorf("distributed: no samples processed")
	}
	res.AvgSampleSize = sizeSum / float64(cfg.Samples)
	res.LYRSpeedup = baseAgg / revAgg
	res.ALLSpeedup = baseTotal / revTotal
	res.ConformedCount = conformed
	res.FallbackCount = fallbacks
	res.ReorderTime = reorderTotal
	return res, nil
}

// runSGC runs one SGC forward pass on the chosen engine and returns
// (aggregation cycles, total cycles).
func runSGC(g *graph.Graph, x *dense.Matrix, cfg PipelineConfig, engine gnn.EngineKind, auto *core.AutoResult) (float64, float64) {
	w := csr.SymNormalized(g)
	ledger := &gnn.Ledger{}
	factory := &gnn.Factory{Kind: engine, Pattern: auto.Best.Pattern, Cost: cfg.CostModel, Ledger: ledger}
	op, err := factory.Make(w)
	if err != nil {
		// SplitToConform cannot fail for validated patterns; treat as
		// empty contribution.
		return 0, 0
	}
	model := gnn.NewSGC(op, ledger, gnn.Config{In: cfg.Features, Classes: cfg.Classes, SGCHops: cfg.Hops, Seed: 3})
	model.Forward(x)
	return ledger.AggCycles, ledger.Total()
}
