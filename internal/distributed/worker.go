package distributed

import (
	"fmt"
	"net"
	"net/rpc"
	"os"
	"sync"
	"syscall"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/resil"
	"repro/internal/shard"
)

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Workers sizes the worker's local execution pool (core.Options
	// semantics: 0 = GOMAXPROCS, 1 = serial). Bit-identical either way.
	Workers int
	// CrashAfterJobs, when > 0, makes the worker SIGKILL its own
	// process at the START of its CrashAfterJobs-th Compute job — a
	// deterministic stand-in for `kill -9` that dies mid-job, after
	// accepting work and before replying, which is the worst spot for
	// the coordinator. Used by the fault-recovery gate.
	CrashAfterJobs int
}

// Worker is the RPC service a worker process exposes. It caches one
// (graph, B) operand pair keyed by checksum and computes partitions
// against it via the same pure computePartition the in-process path
// uses — which is the whole bit-identity argument: process boundaries
// move bytes, never change the computation.
type Worker struct {
	cfg WorkerConfig

	mu       sync.Mutex
	g        *graph.Graph
	b        *dense.Matrix
	graphSum uint64
	bSum     uint64
	jobs     int
}

// NewWorker returns a worker service with no loaded state.
func NewWorker(cfg WorkerConfig) *Worker { return &Worker{cfg: cfg} }

// Load verifies and installs the operands. Verification happens
// before installation: a corrupted transfer leaves previous state
// intact.
func (w *Worker) Load(args *LoadArgs, reply *LoadReply) error {
	if got := shard.ChecksumBytes(args.GraphShard); got != args.GraphSum {
		return &resil.ChecksumError{Site: "worker/load/graph", Want: args.GraphSum, Got: got}
	}
	if got := resil.Checksum(args.BData); got != args.BSum {
		return &resil.ChecksumError{Site: "worker/load/b", Want: args.BSum, Got: got}
	}
	g, err := shard.DecodeGraph(args.GraphShard)
	if err != nil {
		return err
	}
	if args.BRows != g.N() || len(args.BData) != args.BRows*args.BCols {
		return fmt.Errorf("distributed: B is %dx%d (%d values) against graph n=%d",
			args.BRows, args.BCols, len(args.BData), g.N())
	}
	w.mu.Lock()
	w.g = g
	w.b = dense.FromData(args.BRows, args.BCols, args.BData)
	w.graphSum = args.GraphSum
	w.bSum = args.BSum
	w.mu.Unlock()
	reply.N = g.N()
	reply.GraphSum = args.GraphSum
	reply.BSum = args.BSum
	return nil
}

// Compute runs one partition's diagonal-block pipeline and returns
// the partial result with a pre-transfer checksum.
func (w *Worker) Compute(args *ComputeArgs, reply *ComputeReply) error {
	w.mu.Lock()
	g, b := w.g, w.b
	if g == nil {
		w.mu.Unlock()
		return ErrNotLoaded
	}
	if w.graphSum != args.GraphSum || w.bSum != args.BSum {
		w.mu.Unlock()
		return ErrStale
	}
	w.jobs++
	job := w.jobs
	w.mu.Unlock()

	if w.cfg.CrashAfterJobs > 0 && job >= w.cfg.CrashAfterJobs {
		// Die the way an OOM-killed or power-cut worker dies: no reply,
		// no cleanup, connection reset. The coordinator must recover to
		// a bit-identical result.
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}

	p := pattern.VNM{V: args.V, N: args.N, M: args.M}
	if err := p.Validate(); err != nil {
		return err
	}
	opt := core.Options{
		MaxIter:       args.Opt.MaxIter,
		Stage1MaxIter: args.Opt.Stage1MaxIter,
		Stage2MaxIter: args.Opt.Stage2MaxIter,
		Workers:       workersOrSerial(args.Opt.Workers, w.cfg.Workers),
	}
	out, err := computePartition(g, b, args.Part, p, opt)
	if err != nil {
		return err
	}
	reply.Rows = out.rows
	reply.Cols = b.Cols
	reply.Data = out.localC.Data
	reply.Checksum = resil.Checksum(reply.Data)
	return nil
}

// workersOrSerial resolves the pool size: the job's explicit setting
// wins, then the worker's configured default.
func workersOrSerial(job, def int) int {
	if job != 0 {
		return job
	}
	return def
}

// Ping reports liveness and job count.
func (w *Worker) Ping(args *PingArgs, reply *PingReply) error {
	w.mu.Lock()
	reply.Jobs = w.jobs
	w.mu.Unlock()
	reply.OK = true
	return nil
}

// ServeWorker registers the worker service on a fresh rpc server and
// accepts connections on ln until the listener closes. Each
// connection is served on its own goroutine (net/rpc semantics), so a
// coordinator can hold one connection while a prober holds another.
func ServeWorker(ln net.Listener, cfg WorkerConfig) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", NewWorker(cfg)); err != nil {
		return err
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// StartLocalWorker runs a worker on an ephemeral loopback port inside
// this process — the loopback oracle configuration: real RPC, real
// serialization, real sockets, no process boundary. Tests and the
// check oracle use it to isolate the protocol from process management.
// Returns the worker's address and a stop function.
func StartLocalWorker(cfg WorkerConfig) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go ServeWorker(ln, cfg)
	return ln.Addr().String(), func() { ln.Close() }, nil
}
