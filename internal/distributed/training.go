package distributed

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sptc"
)

// TrainSampledConfig controls sampled (mini-batch) SGC training — the
// standard large-graph GNN practice the paper's Section 4.4 builds on:
// every step trains on a neighbor-sampled subgraph; the revised
// pipeline additionally reorders each sample offline so its
// aggregation runs on the SPTC engine.
type TrainSampledConfig struct {
	Sampler  SamplerConfig
	Engine   gnn.EngineKind
	AutoOpt  core.AutoOptions // used by the SPTC engine per sample
	Hops     int              // SGC propagation steps (default 2)
	Epochs   int              // default 20
	Batches  int              // samples per epoch (default 4)
	LR       float32          // default 0.05
	Seed     int64
	Features int // inferred from x if zero
	// Pool is the execution engine every aggregation — sampled batches
	// and the full-graph evaluation alike — runs on; nil means the
	// default GOMAXPROCS-sized pool. The tiled kernels are
	// bit-deterministic, so the worker count never changes results
	// (DESIGN.md §7).
	Pool *sched.Pool
	// Obs, when set, charges the run's observability registry: the
	// ledger mirror (gnn/agg_cycles, gnn/agg_calls) plus the kernel
	// dispatch counters recorded by the sched/spmm layers.
	Obs *obs.Registry
	// Faults engages the fault-injection and recovery layer (sites
	// "sample", "sample/xfer", "venom/meta", "eval"); the zero value is
	// the unguarded fast path.
	Faults FaultConfig
}

// TrainSampledResult reports a sampled training run.
type TrainSampledResult struct {
	TestAcc   float64
	Losses    []float64
	AggCycles float64 // total aggregation cycles, training and eval
	// EvalAggCycles is the slice of AggCycles charged by the full-graph
	// evaluation pass. The evaluation used to run through a private CSR
	// loop that bypassed the engine factory, so these cycles were
	// silently dropped from the ledger; routed through the factory they
	// are accounted like every other aggregation.
	EvalAggCycles float64
	W             *dense.Matrix
	B             *dense.Matrix
}

// TrainSampledSGC trains a single shared SGC classifier over
// neighbor-sampled subgraphs of a large graph. With Engine ==
// EngineSPTC, each sample is SOGRE-reordered before its aggregations
// run on the compressed path. For a fixed engine and sampling seed the
// run is bit-identical at every worker count (the kernels are
// bit-deterministic, DESIGN.md §7). Across engines the reordering
// permutes float summation order, so CSR and SPTC runs agree to a
// tight tolerance rather than bitwise — the losslessness claim is
// about the values aggregated, not the order they are added in.
func TrainSampledSGC(g *graph.Graph, x *dense.Matrix, labels []int, classes int, test []int, cfg TrainSampledConfig) (*TrainSampledResult, error) {
	if x.Rows != g.N() || len(labels) != g.N() {
		return nil, fmt.Errorf("distributed: features/labels size mismatch")
	}
	if cfg.Hops <= 0 {
		cfg.Hops = 2
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 4
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.05
	}
	feats := x.Cols
	res := &TrainSampledResult{
		W: dense.NewMatrix(feats, classes),
		B: dense.NewMatrix(1, classes),
	}
	res.W.Randomize(0.2, cfg.Seed+1)
	opt := dense.NewAdam(cfg.LR)
	ledger := &gnn.Ledger{Obs: cfg.Obs}
	sampleIdx := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss float64
		for b := 0; b < cfg.Batches; b++ {
			s := NeighborSample(g, cfg.Sampler, sampleIdx)
			sampleIdx++
			prop, err := propagateProtected(s, g, x, cfg, ledger)
			if err != nil {
				return nil, err
			}
			// Local labels and a full train mask over the sample.
			localLabels := make([]int, s.G.N())
			idx := make([]int, s.G.N())
			for i, orig := range s.Orig {
				localLabels[i] = labels[orig]
				idx[i] = i
			}
			logits := dense.MatMul(prop, res.W)
			logits.AddBias(res.B.Row(0))
			probs := logits.Clone()
			dense.SoftmaxRows(probs)
			loss, grad := dense.CrossEntropy(probs, localLabels, idx)
			epochLoss += loss
			dW := dense.MatMul(dense.Transpose(prop), grad)
			dB := dense.NewMatrix(1, classes)
			for i := 0; i < grad.Rows; i++ {
				r := grad.Row(i)
				for j, v := range r {
					dB.Data[j] += v
				}
			}
			opt.Step([]*dense.Matrix{res.W, res.B}, []*dense.Matrix{dW, dB})
		}
		res.Losses = append(res.Losses, epochLoss/float64(cfg.Batches))
	}
	// Full-graph evaluation with the shared classifier, routed through
	// the same engine factory as the training aggregations so the
	// ledger (and the obs registry behind it) sees the eval hops too —
	// a hand-rolled CSR loop here used to leave them unaccounted.
	preEval := ledger.AggCycles
	var h *dense.Matrix
	if cfg.Faults.enabled() {
		pool := cfg.Pool
		if pool != nil {
			pool = pool.WithObs(nil)
		}
		hp, err := evalProtected(g, x, cfg, ledger, func(local *gnn.Ledger) (gnn.Operator, error) {
			f := &gnn.Factory{Kind: gnn.EngineCSR, Cost: sptc.DefaultCostModel(), Ledger: local, Pool: pool}
			return f.Make(csr.SymNormalized(g))
		})
		if err != nil {
			return nil, err
		}
		h = hp
	} else {
		evalFactory := &gnn.Factory{Kind: gnn.EngineCSR, Cost: sptc.DefaultCostModel(), Ledger: ledger, Pool: cfg.Pool}
		evalOp, err := evalFactory.Make(csr.SymNormalized(g))
		if err != nil {
			return nil, err
		}
		h = x
		for i := 0; i < cfg.Hops; i++ {
			h = evalOp.Mul(h)
		}
	}
	res.EvalAggCycles = ledger.AggCycles - preEval
	res.AggCycles = ledger.AggCycles
	logits := dense.MatMul(h, res.W)
	logits.AddBias(res.B.Row(0))
	res.TestAcc = dense.Accuracy(logits, labels, test)
	return res, nil
}

// propagateSample computes Â^hops X over one sample through the
// configured engine.
func propagateSample(s Sample, g *graph.Graph, x *dense.Matrix, cfg TrainSampledConfig, ledger *gnn.Ledger) (*dense.Matrix, error) {
	sub := s.G
	orig := s.Orig
	if cfg.Engine == gnn.EngineSPTC {
		bm := sub.ToBitMatrix()
		for i := 0; i < bm.N(); i++ {
			bm.Set(i, i)
		}
		auto, err := core.AutoReorder(bm, cfg.AutoOpt)
		if err != nil {
			return nil, err
		}
		subR, err := sub.ApplyPermutation(auto.Best.Perm)
		if err != nil {
			return nil, err
		}
		// Gather features in reordered order.
		lx := dense.NewMatrix(sub.N(), x.Cols)
		for j := 0; j < sub.N(); j++ {
			copy(lx.Row(j), x.Row(orig[auto.Best.Perm[j]]))
		}
		factory := &gnn.Factory{Kind: gnn.EngineSPTC, Pattern: auto.Best.Pattern, Cost: sptc.DefaultCostModel(), Ledger: ledger, Pool: cfg.Pool}
		op, err := factory.Make(csr.SymNormalized(subR))
		if err != nil {
			return nil, err
		}
		if fc := cfg.Faults; fc.enabled() {
			// Degradation rung 1 (DESIGN.md §10): validate the V:N:M
			// metadata the SPTC would load — an injected transient at
			// "venom/meta" models the hardware rejecting the fragment —
			// and fall back to the CSR engine for this sample on failure.
			verr := fc.Inj.Begin("venom/meta")
			if verr == nil {
				verr = gnn.ValidateOperator(op)
			}
			if verr != nil {
				fc.Inj.Obs().Counter("resil/fallback/sptc_to_csr").Inc()
				return propagateCSR(s, x, cfg, ledger)
			}
		}
		h := lx
		for i := 0; i < cfg.Hops; i++ {
			h = op.Mul(h)
		}
		// Scatter back to the sample's local order so labels align.
		out := dense.NewMatrix(sub.N(), x.Cols)
		for j := 0; j < sub.N(); j++ {
			copy(out.Row(auto.Best.Perm[j]), h.Row(j))
		}
		return out, nil
	}
	return propagateCSR(s, x, cfg, ledger)
}

// propagateCSR computes Â^hops X over one sample on the CSR engine —
// the baseline path, and the target of the SPTC→CSR degradation rung.
func propagateCSR(s Sample, x *dense.Matrix, cfg TrainSampledConfig, ledger *gnn.Ledger) (*dense.Matrix, error) {
	sub := s.G
	lx := dense.NewMatrix(sub.N(), x.Cols)
	for j, o := range s.Orig {
		copy(lx.Row(j), x.Row(o))
	}
	factory := &gnn.Factory{Kind: gnn.EngineCSR, Cost: sptc.DefaultCostModel(), Ledger: ledger, Pool: cfg.Pool}
	op, err := factory.Make(csr.SymNormalized(sub))
	if err != nil {
		return nil, err
	}
	h := lx
	for i := 0; i < cfg.Hops; i++ {
		h = op.Mul(h)
	}
	return h, nil
}

