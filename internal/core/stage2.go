package core

import (
	"math/bits"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/pattern"
)

// Stage2Result reports one Stage-2 (Algorithm 3) run.
type Stage2Result struct {
	Iterations        int // outer passes over the priority list
	PrimaryTreatments int // number of primary-segment treatments
	Swaps             int // vertex pairs swapped
	InitialPScore     int
	FinalPScore       int
}

// stage2Opts carries the ablation knobs of Algorithm 3 (DESIGN.md §4).
type stage2Opts struct {
	immediateSwaps          bool // apply each swap as found instead of batching
	requirePositiveGain     bool // freshtop must have gain > 0 (footnote 1 ablation)
	disableSparsestFallback bool // skip the |I| == 1 sparsest-segment step
}

// segEntry is an element of the priority list I.
type segEntry struct {
	id     int
	pscore int
}

// popCache lazily materializes, per pass, the per-row popcounts of each
// segment's vectors. In the default deferred-swap mode the matrix does
// not change during a pass, so entries stay valid for the whole pass.
type popCache struct {
	m    *bitmat.Matrix
	M    int
	segs map[int][]uint8
}

func newPopCache(m *bitmat.Matrix, M int) *popCache {
	return &popCache{m: m, M: M, segs: make(map[int][]uint8)}
}

func (c *popCache) get(seg int) []uint8 {
	if p, ok := c.segs[seg]; ok {
		return p
	}
	n := c.m.N()
	p := make([]uint8, n)
	bitmat.ParallelRows(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p[i] = uint8(c.m.SegmentPop(i, seg, c.M))
		}
	})
	c.segs[seg] = p
	return p
}

func (c *popCache) invalidate() {
	c.segs = make(map[int][]uint8)
}

// Stage2 runs Algorithm 3: greedy vertex-pair swapping between the
// worst ("primary") segment and successive "target" segments, with
// deferred batch application of the recorded swaps (detail iv). The
// matrix is permuted in place and perm updated so that perm[newPos] =
// original vertex.
func Stage2(m **bitmat.Matrix, perm []int, p pattern.VNM, maxIter int, opts stage2Opts) Stage2Result {
	cur := *m
	res := Stage2Result{InitialPScore: pattern.PScore(cur, p)}
	prev := res.InitialPScore
	res.FinalPScore = prev
	for iter := 0; iter < maxIter; iter++ {
		scores := pattern.SegmentPScores(cur, p)
		list := buildPriorityList(scores)
		if len(list) == 0 {
			break
		}
		res.Iterations++
		used := make([]bool, cur.N())
		cache := newPopCache(cur, p.M)
		var swaps [][2]int
		if len(list) == 1 {
			if opts.disableSparsestFallback {
				break
			}
			// Detail (ii): pair the lone unhealthy segment with the
			// sparsest segment, taking only beneficial swaps.
			swaps = sparsestFallback(cur, p, list[0], used, cache, opts.immediateSwaps, perm)
			res.PrimaryTreatments++
		} else {
			swaps = greedyPass(cur, p, list, used, cache, &res, opts, perm)
		}
		if !opts.immediateSwaps {
			for _, sw := range swaps {
				cur.SwapSym(sw[0], sw[1])
				perm[sw[0]], perm[sw[1]] = perm[sw[1]], perm[sw[0]]
			}
		}
		res.Swaps += len(swaps)
		now := pattern.PScore(cur, p)
		if now == 0 {
			res.FinalPScore = 0
			break
		}
		if len(swaps) == 0 || now >= prev {
			// No further progress possible with this greedy pass.
			res.FinalPScore = now
			break
		}
		prev = now
		res.FinalPScore = now
	}
	*m = cur
	return res
}

// buildPriorityList returns unhealthy segments sorted by descending
// PScore (Algorithm 3 lines 1–2: healthy segments are excluded).
func buildPriorityList(scores []int) []segEntry {
	var list []segEntry
	for id, s := range scores {
		if s > 0 {
			list = append(list, segEntry{id: id, pscore: s})
		}
	}
	sort.Slice(list, func(a, b int) bool {
		if list[a].pscore != list[b].pscore {
			return list[a].pscore > list[b].pscore
		}
		return list[a].id < list[b].id
	})
	return list
}

// greedyPass implements the |I| > 1 branch (Algorithm 3 lines 8–20).
func greedyPass(cur *bitmat.Matrix, p pattern.VNM, list []segEntry, used []bool, cache *popCache, res *Stage2Result, opts stage2Opts, perm []int) [][2]int {
	var swaps [][2]int
	for len(list) > 1 {
		prim := list[0]
		list = list[1:]
		res.PrimaryTreatments++
		primUsed := 0
		width := segWidth(cur, p, prim.id)
	targets:
		for t := 0; t < len(list); t++ {
			targ := &list[t]
			if allColumnsUsed(cur, p, targ.id, used) {
				continue
			}
			u, v, gainPrim, gainTarg, ok := bestFreshPair(cur, p, prim.id, targ.id, used, cache, opts.requirePositiveGain)
			if !ok {
				continue
			}
			used[u], used[v] = true, true
			if opts.immediateSwaps {
				cur.SwapSym(u, v)
				perm[u], perm[v] = perm[v], perm[u]
				cache.invalidate()
			}
			swaps = append(swaps, [2]int{u, v})
			primUsed++
			prim.pscore -= gainPrim
			targ.pscore -= gainTarg
			if targ.pscore <= 0 {
				// Lines 17–18: target healed; remove from I.
				list = append(list[:t], list[t+1:]...)
				t--
			}
			if prim.pscore <= 0 || primUsed >= width {
				break targets
			}
		}
		// Detail (iii): a treated primary is never reconsidered this
		// pass (it was popped and is not re-appended).
	}
	return swaps
}

// sparsestFallback implements the |I| == 1 branch (Algorithm 3 lines
// 5–6): swap the unhealthy segment's vertices with those of the
// sparsest segment, only accepting beneficial (positive-gain) swaps.
func sparsestFallback(cur *bitmat.Matrix, p pattern.VNM, prim segEntry, used []bool, cache *popCache, immediate bool, perm []int) [][2]int {
	nnz := pattern.SegmentNNZ(cur, p)
	best, bestNNZ := -1, int(^uint(0)>>1)
	for id, c := range nnz {
		if id == prim.id {
			continue
		}
		if c < bestNNZ {
			best, bestNNZ = id, c
		}
	}
	if best < 0 {
		return nil
	}
	var swaps [][2]int
	remaining := prim.pscore
	width := segWidth(cur, p, prim.id)
	for i := 0; i < width && remaining > 0; i++ {
		u, v, gainPrim, _, ok := bestFreshPair(cur, p, prim.id, best, used, cache, true /* beneficial only */)
		if !ok {
			break
		}
		used[u], used[v] = true, true
		if immediate {
			cur.SwapSym(u, v)
			perm[u], perm[v] = perm[v], perm[u]
			cache.invalidate()
		}
		swaps = append(swaps, [2]int{u, v})
		remaining -= gainPrim
	}
	return swaps
}

// segWidth returns the number of matrix columns segment id spans
// (M except possibly the last segment).
func segWidth(m *bitmat.Matrix, p pattern.VNM, seg int) int {
	w := m.N() - seg*p.M
	if w > p.M {
		w = p.M
	}
	return w
}

// allColumnsUsed reports whether every column of the segment is already
// recorded in a swap pair.
func allColumnsUsed(m *bitmat.Matrix, p pattern.VNM, seg int, used []bool) bool {
	lo := seg * p.M
	hi := lo + segWidth(m, p, seg)
	for c := lo; c < hi; c++ {
		if !used[c] {
			return false
		}
	}
	return true
}

// bestFreshPair is GetCandidates + freshtop: enumerate the (up to M^2)
// vertex pairs between segments sp and st, compute the exact change in
// the two segments' PScores under the symmetric swap of each pair, and
// return the best pair none of whose vertices is already recorded.
// When positiveOnly is set, only pairs with total gain > 0 qualify
// (paper footnote 1 explains why the default does not require this).
func bestFreshPair(cur *bitmat.Matrix, p pattern.VNM, sp, st int, used []bool, cache *popCache, positiveOnly bool) (u, v, gainPrim, gainTarg int, ok bool) {
	popSp := cache.get(sp)
	popSt := cache.get(st)
	uLo, uHi := sp*p.M, sp*p.M+segWidth(cur, p, sp)
	vLo, vHi := st*p.M, st*p.M+segWidth(cur, p, st)
	bestGain := -(1 << 30)
	bestU, bestV := -1, -1
	bestGP, bestGT := 0, 0
	for cu := uLo; cu < uHi; cu++ {
		if used[cu] {
			continue
		}
		for cv := vLo; cv < vHi; cv++ {
			if used[cv] {
				continue
			}
			gp, gt := pairGain(cur, p, cu, cv, popSp, popSt)
			if g := gp + gt; g > bestGain {
				bestGain, bestU, bestV, bestGP, bestGT = g, cu, cv, gp, gt
			}
		}
	}
	if bestU < 0 {
		return 0, 0, 0, 0, false
	}
	if positiveOnly && bestGain <= 0 {
		return 0, 0, 0, 0, false
	}
	return bestU, bestV, bestGP, bestGT, true
}

// pairGain computes, for the symmetric swap of vertices u (a column of
// segment sp) and v (a column of segment st), the exact reduction in
// the number of horizontally-invalid segment vectors of segments sp
// and st. Positive gain means fewer violations after the swap.
//
// By symmetry of the adjacency matrix, the rows whose sp/st segment
// vectors change under the column swap are exactly the set bits of
// row(u) XOR row(v); rows u and v themselves additionally change by the
// row exchange and are handled in closed form.
func pairGain(cur *bitmat.Matrix, p pattern.VNM, u, v int, popSp, popSt []uint8) (gainPrim, gainTarg int) {
	limit := uint8(p.N)
	viol := func(pop uint8) int {
		if pop > limit {
			return 1
		}
		return 0
	}
	ru, rv := cur.Row(u), cur.Row(v)
	for w := range ru {
		x := ru[w] ^ rv[w]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			x &= x - 1
			i := w*64 + b
			if i == u || i == v {
				continue
			}
			if ru[w]&(1<<uint(b)) != 0 {
				// bu == 1, bv == 0: column u loses a bit, column v gains.
				gainPrim += viol(popSp[i]) - viol(popSp[i]-1)
				gainTarg += viol(popSt[i]) - viol(popSt[i]+1)
			} else {
				// bu == 0, bv == 1.
				gainPrim += viol(popSp[i]) - viol(popSp[i]+1)
				gainTarg += viol(popSt[i]) - viol(popSt[i]-1)
			}
		}
	}
	// Rows u and v: after the swap, the row at position u is the old
	// row v with columns u and v exchanged (and vice versa).
	b := func(i, j int) uint8 {
		if cur.Get(i, j) {
			return 1
		}
		return 0
	}
	auu, auv := b(u, u), b(u, v)
	avu, avv := b(v, u), b(v, v) // avu == auv by symmetry
	popSpNewU := popSp[v] - avu + avv
	popStNewU := popSt[v] - avv + avu
	popSpNewV := popSp[u] - auu + auv
	popStNewV := popSt[u] - auv + auu
	gainPrim += viol(popSp[u]) + viol(popSp[v]) - viol(popSpNewU) - viol(popSpNewV)
	gainTarg += viol(popSt[u]) + viol(popSt[v]) - viol(popStNewU) - viol(popStNewV)
	return gainPrim, gainTarg
}
