package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sched"
)

// stableSortInts must reproduce sort.SliceStable's output exactly — a
// stable sort's result is uniquely determined by (key, original
// position) — at every worker count and slice size, duplicate-heavy
// keys included (ties are where instability would show).
func TestStableSortIntsMatchesSliceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 17, 100, parallelSortMin - 1, parallelSortMin, 3 * parallelSortMin, 4*parallelSortMin + 13} {
		// Heavy duplication: keys in [0, 8) make almost every comparison
		// a tie, so positions (stability) dominate the output order.
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(8)
		}
		less := func(x, y int) bool { return keys[x] < keys[y] }
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(i, j int) bool { return less(want[i], want[j]) })
		for _, w := range []int{1, 2, 3, 4, 7, 16} {
			got := make([]int, n)
			for i := range got {
				got[i] = i
			}
			stableSortInts(sched.New(w), got, less)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: position %d holds %d, stable sort holds %d", n, w, i, got[i], want[i])
				}
			}
		}
		// A nil pool must also match (serial fallback path).
		got := make([]int, n)
		for i := range got {
			got[i] = i
		}
		stableSortInts(nil, got, less)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d nil pool: position %d holds %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

// mergeRuns must prefer the left run on ties — the invariant the
// stability argument rests on.
func TestMergeRunsLeftPreference(t *testing.T) {
	keys := []int{5, 5, 5, 5} // all equal; indices 0,1 left run, 2,3 right
	src := []int{0, 1, 2, 3}
	dst := make([]int, 4)
	mergeRuns(dst, src, 0, 2, 4, func(x, y int) bool { return keys[x] < keys[y] })
	for i, v := range dst {
		if v != i {
			t.Fatalf("tie broke stability: merged order %v", dst)
		}
	}
	// Odd trailing chunk: an empty right run copies the left through.
	mergeRuns(dst, src, 0, 4, 4, func(x, y int) bool { return keys[x] < keys[y] })
	for i, v := range dst {
		if v != i {
			t.Fatalf("empty right run corrupted copy: %v", dst)
		}
	}
}

// runRows must cover [0, n) exactly once regardless of pool shape.
func TestRunRowsCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100} {
		for _, pool := range []*sched.Pool{nil, sched.New(1), sched.New(4)} {
			hit := make([]int32, n)
			runRows(pool, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hit[i]++
				}
			})
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("n=%d: row %d visited %d times", n, i, h)
				}
			}
		}
	}
}
