package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
	"repro/internal/graph"
	"repro/internal/hamming"
	"repro/internal/pattern"
)

// randomSymmetric builds an n-vertex random symmetric adjacency matrix
// with roughly avgDeg nonzeros per row.
func randomSymmetric(n, avgDeg int, seed int64) *bitmat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := bitmat.New(n)
	for k := 0; k < n*avgDeg/2; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		m.Set(i, j)
		m.Set(j, i)
	}
	return m
}

// scrambledBanded builds a banded (easily conforming) graph and then
// scrambles its vertex order, producing a matrix that violates N:M
// patterns but is known to be fixable by reordering.
func scrambledBanded(n int, seed int64) *bitmat.Matrix {
	g := graph.Banded(n, 2, 0.9, seed)
	perm := rand.New(rand.NewSource(seed + 1)).Perm(n)
	pg, err := g.ApplyPermutation(perm)
	if err != nil {
		panic(err)
	}
	return pg.ToBitMatrix()
}

func TestReorderIsLossless(t *testing.T) {
	// The reordered matrix must be exactly the symmetric permutation of
	// the input by Result.Perm — reordering never changes the graph.
	for _, seed := range []int64{1, 2, 3} {
		m := randomSymmetric(96, 6, seed)
		res, err := Reorder(m, pattern.NM(2, 4), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := m.Permute(res.Perm)
		if !res.Matrix.Equal(want) {
			t.Fatalf("seed %d: Result.Matrix != m.Permute(Result.Perm)", seed)
		}
		if !res.Matrix.IsSymmetric() {
			t.Fatalf("seed %d: reordered matrix lost symmetry", seed)
		}
		if res.Matrix.NNZ() != m.NNZ() {
			t.Fatalf("seed %d: reorder changed NNZ", seed)
		}
	}
}

func TestReorderNeverWorsensPScore(t *testing.T) {
	for _, seed := range []int64{4, 5, 6, 7} {
		m := randomSymmetric(128, 5, seed)
		for _, p := range []pattern.VNM{pattern.NM(2, 4), pattern.NM(2, 8), pattern.New(8, 2, 8)} {
			res, err := Reorder(m, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalPScore > res.InitialPScore {
				t.Errorf("seed %d %v: PScore worsened %d -> %d", seed, p, res.InitialPScore, res.FinalPScore)
			}
		}
	}
}

func TestReorderFixesScrambledBanded(t *testing.T) {
	m := scrambledBanded(128, 9)
	p := pattern.NM(2, 4)
	init := pattern.PScore(m, p)
	if init == 0 {
		t.Skip("scramble produced no violations; adjust seed")
	}
	res, err := Reorder(m, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovementRate() < 0.5 {
		t.Errorf("improvement rate %.2f too low (init %d, final %d)",
			res.ImprovementRate(), res.InitialPScore, res.FinalPScore)
	}
}

func TestReorderConformingInputIsNoop(t *testing.T) {
	// A perfect matching (degree 1) conforms to 2:4 under any order.
	n := 32
	m := bitmat.New(n)
	for i := 0; i < n; i += 2 {
		m.Set(i, i+1)
		m.Set(i+1, i)
	}
	res, err := Reorder(m, pattern.NM(2, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming() {
		t.Error("conforming input reported non-conforming")
	}
	if res.OuterLoops != 0 {
		t.Errorf("conforming input ran %d outer loops, want 0", res.OuterLoops)
	}
	if !res.Matrix.Equal(m) {
		t.Error("conforming input was modified")
	}
}

func TestReorderRejectsInvalidPattern(t *testing.T) {
	m := bitmat.New(8)
	if _, err := Reorder(m, pattern.VNM{V: 1, N: 2, M: 3}, Options{}); err == nil {
		t.Error("want error for invalid pattern")
	}
}

func TestFigure1Example(t *testing.T) {
	// Paper Figure 1: renumbering two vertices swaps the corresponding
	// rows and columns, turning a 3-nonzeros-in-a-window row into two
	// 2:4-conforming segment vectors. Build an 8x8 example: row 6 has
	// nonzeros at columns {1, 2, 3} — invalid for 2:4. Swapping
	// vertices 3 and 4 moves the column-3 nonzero to column 4, giving
	// windows {1,2} and {4}: conforming.
	m := bitmat.New(8)
	set := func(i, j int) { m.Set(i, j); m.Set(j, i) }
	set(6, 1)
	set(6, 2)
	set(6, 3)
	p := pattern.NM(2, 4)
	if got := pattern.PScore(m, p); got == 0 {
		t.Fatal("setup: expected violations")
	}
	m.SwapSym(3, 4)
	if got := pattern.PScore(m, p); got != 0 {
		t.Fatalf("after vertex swap PScore = %d, want 0\n%v", got, m)
	}
	if !m.IsSymmetric() {
		t.Error("vertex swap must keep adjacency symmetric")
	}
}

func TestFigure3Stage1Example(t *testing.T) {
	// Figure 3 shows one Stage-1 iteration on an 8:2:8 target reducing
	// the count of vertically-violating meta-blocks. Build an 8x8
	// matrix (single 8-row meta-block column, V=8, M=8, K=4) where rows
	// use 5 distinct columns interleaved; sorting by Hamming position
	// code groups similar rows so that... with a single meta-block the
	// whole matrix is one block, so instead use 16x16 with two block
	// rows: construct rows so that similar rows are initially split
	// across blocks and sorting gathers them.
	n := 16
	m := bitmat.New(n)
	set := func(i, j int) { m.Set(i, j); m.Set(j, i) }
	// Two row families: family A uses columns {0,1}, family B uses
	// columns {4,5}. Interleave them so each V=4 block sees 4+ distinct
	// columns; sorted, each block sees only its family's columns.
	for _, i := range []int{8, 10, 12, 14} {
		set(i, 0)
		set(i, 1)
	}
	for _, i := range []int{9, 11, 13, 15} {
		set(i, 4)
		set(i, 5)
	}
	p := pattern.VNM{V: 4, N: 2, M: 8, K: 2}
	before := pattern.MBScore(m, p)
	if before == 0 {
		t.Fatal("setup: expected vertical violations")
	}
	cur := m.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	res := Stage1(&cur, perm, p, 10, true, false)
	if res.FinalMBScore >= before {
		t.Errorf("Stage-1 did not reduce MBScore: %d -> %d", before, res.FinalMBScore)
	}
	if !cur.Equal(m.Permute(perm)) {
		t.Error("Stage-1 permutation does not reproduce its matrix")
	}
}

func TestStage2ReducesPScore(t *testing.T) {
	// Construct two segments where segment 0 has a row with 3 nonzeros
	// and segment 1 is nearly empty; swapping one column across fixes
	// it.
	n := 8
	m := bitmat.New(n)
	set := func(i, j int) { m.Set(i, j); m.Set(j, i) }
	set(5, 0)
	set(5, 1)
	set(5, 2)
	p := pattern.NM(2, 4)
	cur := m.Clone()
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	res := Stage2(&cur, perm, p, 10, stage2Opts{})
	if res.FinalPScore >= res.InitialPScore {
		t.Errorf("Stage-2 did not reduce PScore: %d -> %d", res.InitialPScore, res.FinalPScore)
	}
	if !cur.Equal(m.Permute(perm)) {
		t.Error("Stage-2 permutation does not reproduce its matrix")
	}
	if !cur.IsSymmetric() {
		t.Error("Stage-2 broke symmetry")
	}
}

func TestAblationsRun(t *testing.T) {
	m := randomSymmetric(64, 4, 17)
	p := pattern.NM(2, 4)
	opts := []Options{
		{DisableNegation: true},
		{PlainBitSort: true},
		{ImmediateSwaps: true},
		{RequirePositiveGain: true},
		{DisableSparsestFallback: true},
		{Stage1Only: true},
		{Stage2Only: true},
	}
	for i, o := range opts {
		res, err := Reorder(m, p, o)
		if err != nil {
			t.Fatalf("ablation %d: %v", i, err)
		}
		if !res.Matrix.Equal(m.Permute(res.Perm)) {
			t.Errorf("ablation %d: lost losslessness", i)
		}
		if res.FinalPScore > res.InitialPScore {
			t.Errorf("ablation %d: PScore worsened", i)
		}
	}
}

func TestAutoReorderPicksConformingFormat(t *testing.T) {
	// A sparse ring (degree 2) conforms to many formats; AutoReorder
	// must return a conforming result and prefer larger M.
	n := 64
	g := graph.Banded(n, 1, 1.0, 1) // path graph: degree <= 2
	m := g.ToBitMatrix()
	auto, err := AutoReorder(m, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !auto.Best.Conforming() {
		t.Fatalf("AutoReorder failed to conform a path graph: %+v", auto.Best.Pattern)
	}
	if len(auto.Tried) < 2 {
		t.Errorf("expected multiple formats tried, got %v", auto.Tried)
	}
	if auto.Best.Pattern.M < 4 {
		t.Errorf("best M = %d, want >= 4", auto.Best.Pattern.M)
	}
}

func TestAutoReorderDenseFallsBack(t *testing.T) {
	// A dense-ish matrix cannot conform even to 1:2:4; AutoReorder must
	// return a best-effort non-conforming result rather than fail.
	m := randomSymmetric(32, 16, 3)
	auto, err := AutoReorder(m, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Best == nil {
		t.Fatal("no best-effort result returned")
	}
	if auto.Best.Conforming() {
		t.Skip("unexpectedly conformed; matrix not dense enough")
	}
	if auto.Best.Pattern.M != 4 {
		t.Errorf("best-effort pattern = %v, want 2:4", auto.Best.Pattern)
	}
}

func TestLessRowCode(t *testing.T) {
	a := rowCode{segs: []int32{0}, code: []int64{5}}
	b := rowCode{segs: []int32{0}, code: []int64{7}}
	if !lessRowCode(&a, &b) || lessRowCode(&b, &a) {
		t.Error("simple comparison wrong")
	}
	// Sparse vs implicit zero: zeroVectorCode = 1.
	c := rowCode{} // all zero vectors
	d := rowCode{segs: []int32{3}, code: []int64{2}}
	if !lessRowCode(&c, &d) {
		t.Error("all-zero row should sort before row with code 2 at seg 3")
	}
	e := rowCode{segs: []int32{3}, code: []int64{-4}}
	if !lessRowCode(&e, &c) {
		t.Error("negated (invalid) row should sort before all-zero row")
	}
	if lessRowCode(&c, &c) {
		t.Error("row not less than itself")
	}
	// Differing only in a later segment.
	f := rowCode{segs: []int32{0, 2}, code: []int64{5, 9}}
	g := rowCode{segs: []int32{0}, code: []int64{5}}
	if !lessRowCode(&g, &f) {
		t.Error("shorter row with implicit zeros should sort before 9 at seg 2")
	}
}

func TestStage1Deterministic(t *testing.T) {
	m := randomSymmetric(80, 5, 21)
	run := func() *bitmat.Matrix {
		cur := m.Clone()
		perm := make([]int, m.N())
		for i := range perm {
			perm[i] = i
		}
		Stage1(&cur, perm, pattern.New(8, 2, 8), 10, true, false)
		return cur
	}
	if !run().Equal(run()) {
		t.Error("Stage-1 not deterministic")
	}
}

func TestReorderLargeBandedConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := scrambledBanded(512, 33)
	res, err := Reorder(m, pattern.NM(2, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovementRate() < 0.5 {
		t.Errorf("large banded improvement %.2f (init %d final %d)",
			res.ImprovementRate(), res.InitialPScore, res.FinalPScore)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func BenchmarkReorder24(b *testing.B) {
	m := scrambledBanded(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reorder(m, pattern.NM(2, 4), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStage1(b *testing.B) {
	m := randomSymmetric(1024, 8, 1)
	p := pattern.New(16, 2, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := m.Clone()
		perm := make([]int, m.N())
		for j := range perm {
			perm[j] = j
		}
		Stage1(&cur, perm, p, 3, true, false)
	}
}

func TestReorderLosslessProperty(t *testing.T) {
	// Property sweep: for random graphs and random target patterns, the
	// reorder result is always (i) a valid permutation, (ii) exactly
	// the symmetric permutation of the input, (iii) never worse on
	// PScore, and (iv) symmetric.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32 + rng.Intn(64)
		m := randomSymmetric(n, 2+rng.Intn(6), seed)
		pats := []pattern.VNM{
			pattern.NM(2, 4), pattern.NM(2, 8),
			pattern.New(4, 2, 8), pattern.New(8, 2, 16),
		}
		p := pats[rng.Intn(len(pats))]
		res, err := Reorder(m, p, Options{MaxIter: 3})
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, v := range res.Perm {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		if !res.Matrix.Equal(m.Permute(res.Perm)) {
			return false
		}
		if res.FinalPScore > res.InitialPScore {
			return false
		}
		return res.Matrix.IsSymmetric()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRowsSparseMatchesDense(t *testing.T) {
	m := randomSymmetric(60, 5, 31)
	p := pattern.NM(2, 8)
	codes := encodeRows(nil, m, p, true, false)
	for i := 0; i < m.N(); i++ {
		// Reconstruct the dense encoding and compare entry by entry.
		si := 0
		for s := 0; s < m.NumSegments(p.M); s++ {
			bits := m.Segment(i, s, p.M)
			var want int64
			if bits == 0 {
				want = zeroVectorCode
			} else {
				want = hamming.SignedCode(bits, p.N)
			}
			var got int64 = zeroVectorCode
			if si < len(codes[i].segs) && codes[i].segs[si] == int32(s) {
				got = codes[i].code[si]
				si++
			}
			if got != want {
				t.Fatalf("row %d seg %d: sparse %d vs dense %d", i, s, got, want)
			}
		}
	}
}

func TestApplyOrderComposition(t *testing.T) {
	perm := []int{3, 1, 0, 2} // position i holds original perm[i]
	order := []int{2, 0, 3, 1}
	// After applying: new[i] = old[order[i]].
	applyOrder(perm, order)
	want := []int{0, 3, 2, 1}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("applyOrder = %v, want %v", perm, want)
		}
	}
}

func TestReorderSnapshotNeverWorseThanInitial(t *testing.T) {
	// The best-snapshot driver guarantees FinalP + FinalMB never
	// exceeds the initial total, even on adversarial structures where
	// the stages trade violations.
	for _, seed := range []int64{1, 2, 3, 4} {
		base := graph.Blowup(graph.Banded(32, 1, 1.0, seed), 8)
		m := base.ToBitMatrix()
		p := pattern.New(8, 2, 8)
		res, err := Reorder(m, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalPScore+res.FinalMBScore > res.InitialPScore+res.InitialMBScore {
			t.Errorf("seed %d: total violations worsened: %d+%d -> %d+%d",
				seed, res.InitialPScore, res.InitialMBScore, res.FinalPScore, res.FinalMBScore)
		}
		if !res.Matrix.Equal(m.Permute(res.Perm)) {
			t.Error("snapshot lost permutation consistency")
		}
	}
}
