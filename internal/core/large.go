package core

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// Section 4.4 of the paper: SPTC libraries (cusparseLt, Spatha) cap
// operand sizes around 45K x 45K, and GNN practice samples or
// partitions large graphs anyway. The reordering is therefore applied
// independently to each partition of a large graph; results are
// composed back into one global vertex renumbering. Partition-local
// SpMM results are reordered back before accumulation with other
// nodes' results, which the composed permutation makes a pure index
// mapping.

// LargeOptions configures the partitioned reordering path.
type LargeOptions struct {
	// MaxN is the largest partition the direct (dense bit-matrix)
	// engine should see. Zero means 8192.
	MaxN int
	// Reorder configures each partition's run.
	Reorder Options
	// Pattern is the target V:N:M pattern.
	Pattern pattern.VNM
}

// PartitionResult reports one partition's reordering.
type PartitionResult struct {
	Vertices int
	Result   *Result
}

// LargeResult reports a partitioned reordering of a big graph.
type LargeResult struct {
	Pattern pattern.VNM
	// Perm is the composed global renumbering: new position i holds
	// original vertex Perm[i]. Partitions occupy contiguous index
	// ranges in the new numbering.
	Perm       []int
	Partitions []PartitionResult
	// Offsets[i] is the first new index of partition i (len+1 entries).
	Offsets []int
	Elapsed time.Duration

	InitialPScore int // summed over partition-local adjacency
	FinalPScore   int
}

// ImprovementRate aggregates the per-partition improvement.
func (r *LargeResult) ImprovementRate() float64 {
	return pattern.ImprovementRate(r.InitialPScore, r.FinalPScore)
}

// ReorderLarge partitions g into BFS-contiguous pieces of at most
// opt.MaxN vertices, reorders each piece's induced subgraph
// independently, and composes the per-piece renumberings into one
// global permutation. Cross-partition edges are untouched (they belong
// to the accumulation step of a distributed SpMM, not to any
// partition's local matrix).
func ReorderLarge(g *graph.Graph, opt LargeOptions) (*LargeResult, error) {
	if err := opt.Pattern.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxN <= 0 {
		opt.MaxN = 8192
	}
	start := time.Now()
	parts := BFSPartition(g, opt.MaxN)
	out := &LargeResult{
		Pattern: opt.Pattern,
		Perm:    make([]int, 0, g.N()),
		Offsets: []int{0},
	}
	for _, part := range parts {
		sub, orig := g.Subgraph(part)
		res, err := Reorder(sub.ToBitMatrix(), opt.Pattern, opt.Reorder)
		if err != nil {
			return nil, fmt.Errorf("core: partition of %d vertices: %w", len(part), err)
		}
		out.Partitions = append(out.Partitions, PartitionResult{Vertices: len(part), Result: res})
		out.InitialPScore += res.InitialPScore
		out.FinalPScore += res.FinalPScore
		// Compose: local new position j holds local vertex
		// res.Perm[j], which is original vertex orig[res.Perm[j]].
		for _, local := range res.Perm {
			out.Perm = append(out.Perm, orig[local])
		}
		out.Offsets = append(out.Offsets, len(out.Perm))
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// BFSPartition splits the vertex set into BFS-contiguous pieces of at
// most maxN vertices each. BFS growth keeps partitions structurally
// coherent (neighbors tend to land together), which is what makes the
// per-partition reordering effective.
func BFSPartition(g *graph.Graph, maxN int) [][]int {
	if maxN < 1 {
		maxN = 1
	}
	visited := make([]bool, g.N())
	var parts [][]int
	current := make([]int, 0, maxN)
	flush := func() {
		if len(current) > 0 {
			parts = append(parts, current)
			current = make([]int, 0, maxN)
		}
	}
	var queue []int32
	for s := 0; s < g.N(); s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			current = append(current, int(u))
			if len(current) == maxN {
				flush()
			}
			for _, v := range g.Neighbors(int(u)) {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	flush()
	return parts
}
