package core

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// Section 4.4 of the paper: SPTC libraries (cusparseLt, Spatha) cap
// operand sizes around 45K x 45K, and GNN practice samples or
// partitions large graphs anyway. The reordering is therefore applied
// independently to each partition of a large graph; results are
// composed back into one global vertex renumbering. Partition-local
// SpMM results are reordered back before accumulation with other
// nodes' results, which the composed permutation makes a pure index
// mapping.

// LargeOptions configures the partitioned reordering path.
type LargeOptions struct {
	// MaxN is the largest partition the direct (dense bit-matrix)
	// engine should see. Zero means 8192.
	MaxN int
	// Reorder configures each partition's run.
	Reorder Options
	// Pattern is the target V:N:M pattern.
	Pattern pattern.VNM

	// Workers sizes the partition fan-out: 0 uses GOMAXPROCS, 1 runs
	// the partitions serially. Partitions are independent induced
	// subgraphs and the composition always walks them in partition
	// order, so every worker count produces bit-identical Perm,
	// Offsets, and score totals (DESIGN.md §8).
	Workers int
	// Pool runs the fan-out on a caller-shared execution engine,
	// overriding Workers — the handle concurrent ReorderLarge callers
	// use so one process hosts a single bounded worker set.
	Pool *sched.Pool
	// Obs charges observability metrics for the whole partitioned run
	// (partition counts, per-stage spans); it is handed down to every
	// partition's Reorder unless Reorder.Obs is already set.
	Obs *obs.Registry
}

// pool resolves the fan-out engine for a run.
func (o LargeOptions) pool() *sched.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return sched.New(o.Workers)
}

// PartitionResult reports one partition's reordering.
type PartitionResult struct {
	Vertices int
	Result   *Result
}

// LargeResult reports a partitioned reordering of a big graph.
type LargeResult struct {
	Pattern pattern.VNM
	// Perm is the composed global renumbering: new position i holds
	// original vertex Perm[i]. Partitions occupy contiguous index
	// ranges in the new numbering.
	Perm       []int
	Partitions []PartitionResult
	// Offsets[i] is the first new index of partition i (len+1 entries).
	Offsets []int
	Elapsed time.Duration

	InitialPScore int // summed over partition-local adjacency
	FinalPScore   int
}

// ImprovementRate aggregates the per-partition improvement.
func (r *LargeResult) ImprovementRate() float64 {
	return pattern.ImprovementRate(r.InitialPScore, r.FinalPScore)
}

// ReorderLarge partitions g into BFS-contiguous pieces of at most
// opt.MaxN vertices, reorders each piece's induced subgraph
// independently — fanned out across the execution pool, since the
// partitions share no state — and composes the per-piece renumberings
// into one global permutation. Cross-partition edges are untouched
// (they belong to the accumulation step of a distributed SpMM, not to
// any partition's local matrix).
//
// Determinism contract: each partition's reordering is independent of
// the pool (DESIGN.md §8), and Perm, Offsets, and the PScore totals
// are composed in fixed partition order after every partition
// finishes, never in completion order. The result is therefore
// bit-identical at every worker count, serial included.
func ReorderLarge(g *graph.Graph, opt LargeOptions) (*LargeResult, error) {
	if err := opt.Pattern.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxN <= 0 {
		opt.MaxN = 8192
	}
	start := time.Now()
	sp := opt.Obs.Span("reorder/large")
	defer sp.End()
	partSp := opt.Obs.Span("reorder/partition_bfs")
	parts := BFSPartition(g, opt.MaxN)
	partSp.End()
	opt.Obs.Counter("reorder/large_runs").Inc()
	opt.Obs.Counter("reorder/partitions").Add(int64(len(parts)))
	pool := opt.pool()
	ropt := opt.Reorder
	if ropt.Pool == nil {
		// Partition runs share the fan-out engine, so the whole
		// preprocessing step is bounded by one worker set.
		ropt.Pool = pool
	}
	if ropt.Obs == nil {
		ropt.Obs = opt.Obs
	}
	type partOutcome struct {
		res  *Result
		orig []int
		err  error
	}
	outs := make([]partOutcome, len(parts))
	if err := pool.Run(len(parts), func(i int) {
		sub, orig := g.Subgraph(parts[i])
		res, err := Reorder(sub.ToBitMatrix(), opt.Pattern, ropt)
		outs[i] = partOutcome{res: res, orig: orig, err: err}
	}); err != nil {
		return nil, err
	}
	out := &LargeResult{
		Pattern: opt.Pattern,
		Perm:    make([]int, 0, g.N()),
		Offsets: []int{0},
	}
	for i, po := range outs {
		if po.err != nil {
			return nil, fmt.Errorf("core: partition of %d vertices: %w", len(parts[i]), po.err)
		}
		out.Partitions = append(out.Partitions, PartitionResult{Vertices: len(parts[i]), Result: po.res})
		out.InitialPScore += po.res.InitialPScore
		out.FinalPScore += po.res.FinalPScore
		// Compose: local new position j holds local vertex
		// res.Perm[j], which is original vertex orig[res.Perm[j]].
		for _, local := range po.res.Perm {
			out.Perm = append(out.Perm, po.orig[local])
		}
		out.Offsets = append(out.Offsets, len(out.Perm))
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// BFSPartition splits the vertex set into BFS-contiguous pieces of at
// most maxN vertices each. BFS growth keeps partitions structurally
// coherent (neighbors tend to land together), which is what makes the
// per-partition reordering effective.
func BFSPartition(g *graph.Graph, maxN int) [][]int {
	if maxN < 1 {
		maxN = 1
	}
	visited := make([]bool, g.N())
	var parts [][]int
	current := make([]int, 0, maxN)
	flush := func() {
		if len(current) > 0 {
			parts = append(parts, current)
			current = make([]int, 0, maxN)
		}
	}
	// One shared FIFO serves every component: each vertex is enqueued
	// exactly once, so an N-capacity array never reallocates and head
	// simply advances past drained frontiers. (The previous
	// per-component `append(queue[:0], ...)` reuse re-sliced past the
	// consumed prefix, shrinking the usable capacity every component
	// and re-aliasing the backing array between components.)
	queue := make([]int32, 0, g.N())
	head := 0
	for s := 0; s < g.N(); s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue, int32(s))
		for head < len(queue) {
			u := queue[head]
			head++
			current = append(current, int(u))
			if len(current) == maxN {
				flush()
			}
			for _, v := range g.Neighbors(int(u)) {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	flush()
	return parts
}
