package core

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/sched"
)

func permsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The parallel engine's core contract: Reorder returns the same
// permutation and scores at every worker count, serial included.
func TestReorderWorkerCountInvariant(t *testing.T) {
	for _, fam := range []string{"er", "powerlaw", "banded"} {
		g, err := datasets.Family(fam, 300, 6, 17)
		if err != nil {
			t.Fatal(err)
		}
		m := g.ToBitMatrix()
		p := pattern.NM(2, 4)
		ref, err := Reorder(m, p, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 8} {
			res, err := Reorder(m, p, Options{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if !permsEqual(res.Perm, ref.Perm) {
				t.Fatalf("%s: workers=%d permutation differs from serial", fam, w)
			}
			if res.FinalPScore != ref.FinalPScore || res.FinalMBScore != ref.FinalMBScore ||
				res.Iterations != ref.Iterations || res.Swaps != ref.Swaps {
				t.Fatalf("%s: workers=%d stats differ from serial", fam, w)
			}
		}
	}
}

// Same contract for the partitioned engine, including a shared
// externally-supplied pool.
func TestReorderLargeWorkerCountInvariant(t *testing.T) {
	g := graph.Banded(700, 3, 0.85, 23)
	opt := LargeOptions{MaxN: 128, Pattern: pattern.NM(2, 4)}
	opt.Workers = 1
	ref, err := ReorderLarge(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		o := opt
		o.Workers = w
		res, err := ReorderLarge(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if !permsEqual(res.Perm, ref.Perm) {
			t.Fatalf("workers=%d composed permutation differs from serial", w)
		}
		if res.InitialPScore != ref.InitialPScore || res.FinalPScore != ref.FinalPScore {
			t.Fatalf("workers=%d scores differ from serial", w)
		}
	}
	shared := LargeOptions{MaxN: 128, Pattern: pattern.NM(2, 4), Pool: sched.New(3)}
	res, err := ReorderLarge(g, shared)
	if err != nil {
		t.Fatal(err)
	}
	if !permsEqual(res.Perm, ref.Perm) {
		t.Fatal("shared-pool run differs from serial")
	}
}

// Race hammer (run under -race in CI): eight concurrent ReorderLarge
// callers share one pool on distinct graphs; every result must match
// its precomputed serial permutation. Pools are stateless per Run, so
// sharing must be safe.
func TestReorderLargeConcurrentCallersSharedPool(t *testing.T) {
	const callers = 8
	graphs := make([]*graph.Graph, callers)
	want := make([][]int, callers)
	for i := range graphs {
		fam := []string{"er", "powerlaw", "banded", "grid"}[i%4]
		g, err := datasets.Family(fam, 300, 5, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
		ref, err := ReorderLarge(g, LargeOptions{MaxN: 64, Pattern: pattern.NM(2, 4), Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref.Perm
	}
	pool := sched.New(4)
	var wg sync.WaitGroup
	errs := make([]error, callers)
	bad := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := ReorderLarge(graphs[i], LargeOptions{MaxN: 64, Pattern: pattern.NM(2, 4), Pool: pool})
			if err != nil {
				errs[i] = err
				return
			}
			bad[i] = !permsEqual(res.Perm, want[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if bad[i] {
			t.Fatalf("caller %d: concurrent result differs from its serial permutation", i)
		}
	}
}

// Speedup acceptance gate: on >= 4 schedulable CPUs, the partitioned
// engine at GOMAXPROCS workers must beat the serial run by >= 2x
// wall-clock on a >= 8-partition graph. Skips where the contract is
// vacuous (the equality tests above still pin correctness there).
func TestReorderLargeParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("speedup contract requires GOMAXPROCS >= 4, have %d", procs)
	}
	g, err := datasets.Family("er", 4096, 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	opt := LargeOptions{MaxN: 512, Pattern: pattern.New(4, 2, 8)}
	if parts := BFSPartition(g, opt.MaxN); len(parts) < 8 {
		t.Fatalf("graph yields %d partitions, need >= 8", len(parts))
	}
	bestOf := func(n int, fn func()) time.Duration {
		fn()
		best := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			start := time.Now()
			fn()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serialOpt := opt
	serialOpt.Workers = 1
	parOpt := opt
	parOpt.Workers = procs
	serial := bestOf(2, func() {
		if _, err := ReorderLarge(g, serialOpt); err != nil {
			t.Error(err)
		}
	})
	parallel := bestOf(2, func() {
		if _, err := ReorderLarge(g, parOpt); err != nil {
			t.Error(err)
		}
	})
	if speedup := float64(serial) / float64(parallel); speedup < 2 {
		t.Errorf("partitioned reorder speedup %.2fx (serial %v, parallel %v), want >= 2x at %d workers",
			speedup, serial, parallel, procs)
	}
}

// BFS queue regression (multi-component graphs): the shared-FIFO queue
// must traverse components in exactly the order a fresh per-component
// queue would, with every vertex covered once. Many small components
// stress the former `append(queue[:0], ...)` reuse pattern.
func TestBFSPartitionMultiComponentOrder(t *testing.T) {
	// 50 components: chains, triangles and isolated vertices mixed.
	var edges [][2]int
	n := 0
	for c := 0; c < 50; c++ {
		switch c % 3 {
		case 0: // 5-chain
			for i := 0; i < 4; i++ {
				edges = append(edges, [2]int{n + i, n + i + 1})
			}
			n += 5
		case 1: // triangle
			edges = append(edges, [2]int{n, n + 1}, [2]int{n + 1, n + 2}, [2]int{n, n + 2})
			n += 3
		default: // isolated vertex
			n++
		}
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxN := range []int{1, 3, 4, 7, n} {
		parts := BFSPartition(g, maxN)
		var got []int
		for _, p := range parts {
			if len(p) > maxN {
				t.Fatalf("maxN=%d: partition of %d vertices", maxN, len(p))
			}
			got = append(got, p...)
		}
		want := referenceBFSOrder(g)
		if !permsEqual(got, want) {
			t.Fatalf("maxN=%d: traversal order diverged from per-component reference", maxN)
		}
	}
}

// referenceBFSOrder is the naive specification: a fresh FIFO per
// component, sources in ascending id order.
func referenceBFSOrder(g *graph.Graph) []int {
	visited := make([]bool, g.N())
	var order []int
	for s := 0; s < g.N(); s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for _, v := range g.Neighbors(u) {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, int(v))
				}
			}
		}
	}
	return order
}
