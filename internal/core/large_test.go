package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
)

func TestBFSPartitionCoversAll(t *testing.T) {
	g := graph.BarabasiAlbert(500, 3, 1)
	parts := BFSPartition(g, 120)
	seen := make([]bool, g.N())
	for _, p := range parts {
		if len(p) > 120 {
			t.Fatalf("partition of %d > maxN", len(p))
		}
		for _, v := range p {
			if seen[v] {
				t.Fatalf("vertex %d in two partitions", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d missing", v)
		}
	}
	if len(parts) < 500/120 {
		t.Errorf("only %d partitions", len(parts))
	}
}

func TestBFSPartitionDisconnected(t *testing.T) {
	g, _ := graph.NewFromEdges(10, [][2]int{{0, 1}, {5, 6}})
	parts := BFSPartition(g, 4)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 {
		t.Errorf("partitions cover %d of 10", total)
	}
}

func TestReorderLargeComposesValidPermutation(t *testing.T) {
	g := graph.Banded(600, 2, 0.9, 3)
	res, err := ReorderLarge(g, LargeOptions{MaxN: 150, Pattern: pattern.NM(2, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Perm) != g.N() {
		t.Fatalf("perm length %d", len(res.Perm))
	}
	seen := make([]bool, g.N())
	for _, v := range res.Perm {
		if seen[v] {
			t.Fatal("duplicate in composed permutation")
		}
		seen[v] = true
	}
	// Applying the composed permutation must preserve the graph.
	pg, err := g.ApplyPermutation(res.Perm)
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumEdges() != g.NumEdges() {
		t.Error("composed permutation changed the graph")
	}
	if len(res.Partitions) != 4 {
		t.Errorf("partitions = %d, want 4", len(res.Partitions))
	}
	if res.Offsets[len(res.Offsets)-1] != g.N() {
		t.Error("offsets do not cover all vertices")
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed missing")
	}
}

func TestReorderLargeImproves(t *testing.T) {
	// A banded graph with a scrambled order: every partition should fix
	// most of its local violations.
	base := graph.Banded(800, 3, 0.9, 5)
	res, err := ReorderLarge(base, LargeOptions{MaxN: 200, Pattern: pattern.NM(2, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialPScore == 0 {
		t.Skip("no initial violations")
	}
	if res.ImprovementRate() < 0.7 {
		t.Errorf("partitioned improvement %.2f too low (%d -> %d)",
			res.ImprovementRate(), res.InitialPScore, res.FinalPScore)
	}
}

func TestReorderLargeRejectsBadPattern(t *testing.T) {
	g := graph.Grid2D(4, 4)
	if _, err := ReorderLarge(g, LargeOptions{Pattern: pattern.VNM{V: 1, N: 2, M: 3}}); err == nil {
		t.Error("want error for invalid pattern")
	}
}

func TestReorderLargeSinglePartitionMatchesDirect(t *testing.T) {
	// With MaxN >= n there is one partition; the composed result should
	// achieve the same final PScore as the direct path.
	g := graph.Banded(200, 3, 0.8, 9)
	large, err := ReorderLarge(g, LargeOptions{MaxN: 1000, Pattern: pattern.NM(2, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(large.Partitions) != 1 {
		t.Fatalf("expected single partition, got %d", len(large.Partitions))
	}
	// BFS partitioning may renumber vertices before the direct reorder
	// runs, so compare quality rather than exact permutations.
	direct, err := Reorder(g.ToBitMatrix(), pattern.NM(2, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if large.FinalPScore > direct.FinalPScore+5 {
		t.Errorf("partitioned final %d much worse than direct %d", large.FinalPScore, direct.FinalPScore)
	}
}

func TestDirectReorderScales(t *testing.T) {
	// The direct (dense bit-matrix) engine must handle graphs in the
	// thousands of vertices within seconds — the regime below the ~45K
	// operand caps the paper's Section 4.4 partitioning kicks in for.
	if testing.Short() {
		t.Skip("scale test in short mode")
	}
	g := graph.Banded(8192, 3, 0.8, 1)
	res, err := Reorder(g.ToBitMatrix(), pattern.NM(2, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovementRate() < 0.99 {
		t.Errorf("8K-vertex improvement %.3f < 0.99", res.ImprovementRate())
	}
	if res.Elapsed > 60e9 {
		t.Errorf("8K-vertex reorder took %v", res.Elapsed)
	}
}
