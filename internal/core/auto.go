package core

import (
	"repro/internal/bitmat"
	"repro/internal/pattern"
)

// AutoResult reports the best-format search of Section 5: the chosen
// V:N:M pattern, its reordering result, and the formats attempted.
type AutoResult struct {
	Best  *Result
	Tried []pattern.VNM
}

// AutoOptions configures the format search.
type AutoOptions struct {
	Reorder Options
	// N is the horizontal budget; fixed to 2 by SPTC hardware. Zero
	// means 2.
	N int
	// MaxM caps the M doubling sweep (inclusive). Zero means 32.
	MaxM int
	// MaxV caps the V doubling sweep (inclusive). Zero means 32.
	MaxV int
}

func (o AutoOptions) withDefaults() AutoOptions {
	if o.N == 0 {
		o.N = 2
	}
	if o.MaxM == 0 {
		o.MaxM = 32
	}
	if o.MaxV == 0 {
		o.MaxV = 32
	}
	return o
}

// AutoReorder implements the paper's format-selection procedure
// (Section 5): it determines the best V:N:M by trying 1:N:M forms with
// M starting at 4 and doubling for as long as the matrix can still be
// reordered to conform; it then fixes M and grows V from 1 upward
// (doubling, up to 32), keeping the largest conforming V. Larger M
// packs more compression per nonzero and larger V yields more
// meta-block reuse, so the largest conforming values are preferred.
//
// If even 1:N:4 cannot be made fully conforming, the 1:N:4 best-effort
// result is returned (Best.Conforming() will be false); callers can
// still run pruned/hybrid execution on it.
func AutoReorder(m *bitmat.Matrix, opt AutoOptions) (*AutoResult, error) {
	opt = opt.withDefaults()
	opt.Reorder.Obs.Counter("reorder/auto_runs").Inc()
	sp := opt.Reorder.Obs.Span("reorder/auto")
	defer sp.End()
	auto := &AutoResult{}
	// Phase 1: grow M while the graph still conforms after reordering.
	var best *Result
	for M := 4; M <= opt.MaxM; M *= 2 {
		p := pattern.NM(opt.N, M)
		res, err := Reorder(m, p, opt.Reorder)
		if err != nil {
			return nil, err
		}
		auto.Tried = append(auto.Tried, p)
		if res.Conforming() {
			best = res
		} else {
			if best == nil {
				best = res // best effort at the loosest format
			}
			break
		}
	}
	if !best.Conforming() {
		auto.Best = best
		return auto, nil
	}
	// Phase 2: fix M, grow V while still conforming.
	bestM := best.Pattern.M
	for V := 2; V <= opt.MaxV; V *= 2 {
		p := pattern.New(V, opt.N, bestM)
		res, err := Reorder(m, p, opt.Reorder)
		if err != nil {
			return nil, err
		}
		auto.Tried = append(auto.Tried, p)
		if !res.Conforming() {
			break
		}
		best = res
	}
	auto.Best = best
	opt.Reorder.Obs.Counter("reorder/auto_formats_tried").Add(int64(len(auto.Tried)))
	return auto, nil
}
