package core

import (
	"time"

	"repro/internal/bitmat"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// Options configures the reordering driver. The zero value selects the
// paper's defaults.
type Options struct {
	// MaxIter bounds the outer Algorithm-1 loop. The paper sets the
	// maximum to 10 and reports that most matrices converge within six
	// iterations. Zero means 10.
	MaxIter int
	// Stage1MaxIter bounds the inner sorting loop of Algorithm 2.
	// Zero means 10.
	Stage1MaxIter int
	// Stage2MaxIter bounds the outer pass loop of Algorithm 3.
	// Zero means 10.
	Stage2MaxIter int

	// Ablation knobs (DESIGN.md §4). All false for the paper's
	// algorithm.
	DisableNegation         bool // skip negated codes for invalid vectors
	PlainBitSort            bool // sort by raw bits instead of Hamming codes
	ImmediateSwaps          bool // apply Stage-2 swaps eagerly
	RequirePositiveGain     bool // freshtop needs gain > 0
	DisableSparsestFallback bool // skip |I|==1 handling
	Stage1Only              bool // run only Stage-1
	Stage2Only              bool // run only Stage-2

	// Workers sizes the execution pool the row-parallel phases (Stage-1
	// encoding and sorting, conformity scoring) run on: 0 uses
	// GOMAXPROCS, 1 runs serially. Every setting produces bit-identical
	// results — the Stage-1 sort has a unique stable output and the
	// score reductions are exact integer sums (DESIGN.md §8) — so the
	// knob is purely about speed.
	Workers int
	// Pool overrides Workers with a caller-shared execution engine.
	// ReorderLarge hands each partition the fan-out pool through this
	// field so one bounded worker set drives the whole preprocessing
	// step.
	Pool *sched.Pool
	// Obs, when set, charges observability metrics: per-stage span
	// timers (reorder/stage1, reorder/stage2, reorder/score) and
	// deterministic run/iteration/swap counters. Reorder may run
	// concurrently (the ReorderLarge fan-out); counter totals still
	// compose deterministically because integer adds commute.
	Obs *obs.Registry
}

// ExecutionPool resolves the pool a reordering run executes on:
// opt.Pool when set, otherwise a pool sized by opt.Workers (0 =
// GOMAXPROCS; 1 = inline serial execution).
func (o Options) ExecutionPool() *sched.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return sched.New(o.Workers)
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 10
	}
	if o.Stage1MaxIter == 0 {
		o.Stage1MaxIter = 10
	}
	if o.Stage2MaxIter == 0 {
		o.Stage2MaxIter = 10
	}
	return o
}

// Result reports a completed reordering.
type Result struct {
	Pattern pattern.VNM
	// Perm maps new position -> original vertex id: the renumbering phi'
	// of the paper. Applying it to the original matrix (or graph) yields
	// Matrix.
	Perm   []int
	Matrix *bitmat.Matrix // the reordered adjacency matrix

	InitialPScore  int // invalid segment vectors before (F_p)
	FinalPScore    int // after
	InitialMBScore int // invalid meta-blocks before (F_MB)
	FinalMBScore   int // after

	// Iterations counts the fine-grained work steps the paper's Table 7
	// tracks: Stage-1 sort passes plus Stage-2 primary-segment
	// treatments, accumulated over all outer iterations.
	Iterations int
	OuterLoops int
	Swaps      int
	Elapsed    time.Duration
}

// Conforming reports whether the reordered matrix fully satisfies the
// V:N:M pattern.
func (r *Result) Conforming() bool { return r.FinalPScore == 0 && r.FinalMBScore == 0 }

// ImprovementRate returns the paper's reduction metric over invalid
// segment vectors.
func (r *Result) ImprovementRate() float64 {
	return pattern.ImprovementRate(r.InitialPScore, r.FinalPScore)
}

// Reorder runs the dual-level SOGRE algorithm (Algorithm 1) on a copy
// of m for the given V:N:M pattern and returns the discovered vertex
// renumbering together with the reordered matrix and quality metrics.
// The input matrix is not modified.
//
// The reordering is lossless: Result.Matrix is exactly the symmetric
// permutation of m by Result.Perm, so the underlying graph (and any GNN
// computed on it) is unchanged up to vertex naming.
func Reorder(m *bitmat.Matrix, p pattern.VNM, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	pool := opt.ExecutionPool()
	ob := opt.Obs // nil-safe: every method no-ops on a nil registry
	if ob != nil && pool.Obs() == nil {
		pool = pool.WithObs(ob)
	}
	ob.Counter("reorder/runs").Inc()
	ob.Counter("reorder/vertices").Add(int64(m.N()))
	total := ob.Span("reorder/total")
	defer total.End()
	start := time.Now()
	cur := m.Clone()
	perm := make([]int, m.N())
	for i := range perm {
		perm[i] = i
	}
	scoreSp := ob.Span("reorder/score")
	res := &Result{
		Pattern:        p,
		InitialPScore:  pattern.PScoreOn(pool, cur, p),
		InitialMBScore: pattern.MBScoreOn(pool, cur, p),
	}
	scoreSp.End()
	prevP, prevMB := res.InitialPScore, res.InitialMBScore
	s2opts := stage2Opts{
		immediateSwaps:          opt.ImmediateSwaps,
		requirePositiveGain:     opt.RequirePositiveGain,
		disableSparsestFallback: opt.DisableSparsestFallback,
	}
	// The two stages can trade violations against each other (Stage-2's
	// swaps may split the similar-row groups Stage-1 built); keep the
	// best snapshot seen so a late bad trade never degrades the result.
	bestP, bestMB := prevP, prevMB
	bestMat := cur.Clone()
	bestPerm := append([]int(nil), perm...)
	better := func(p1, mb1, p2, mb2 int) bool {
		// Primary objective: total violations; ties prefer fewer
		// horizontal violations (they block compression outright).
		if p1+mb1 != p2+mb2 {
			return p1+mb1 < p2+mb2
		}
		return p1 < p2
	}
	for loop := 0; loop < opt.MaxIter; loop++ {
		if prevP == 0 && prevMB == 0 {
			break
		}
		res.OuterLoops++
		if !opt.Stage2Only {
			sp := ob.Span("reorder/stage1")
			s1 := stage1On(pool, &cur, perm, p, opt.Stage1MaxIter, !opt.DisableNegation, opt.PlainBitSort)
			sp.End()
			res.Iterations += s1.Iterations
		}
		if !opt.Stage1Only {
			sp := ob.Span("reorder/stage2")
			s2 := Stage2(&cur, perm, p, opt.Stage2MaxIter, s2opts)
			sp.End()
			res.Iterations += s2.PrimaryTreatments
			res.Swaps += s2.Swaps
		}
		sp := ob.Span("reorder/score")
		nowP := pattern.PScoreOn(pool, cur, p)
		nowMB := pattern.MBScoreOn(pool, cur, p)
		sp.End()
		if better(nowP, nowMB, bestP, bestMB) {
			bestP, bestMB = nowP, nowMB
			bestMat = cur.Clone()
			bestPerm = append(bestPerm[:0], perm...)
		}
		if nowP >= prevP && nowMB >= prevMB {
			break // no progress on either level; Alg. 1 terminates
		}
		prevP, prevMB = nowP, nowMB
	}
	res.FinalPScore = bestP
	res.FinalMBScore = bestMB
	res.Perm = bestPerm
	res.Matrix = bestMat
	res.Elapsed = time.Since(start)
	ob.Counter("reorder/outer_loops").Add(int64(res.OuterLoops))
	ob.Counter("reorder/iterations").Add(int64(res.Iterations))
	ob.Counter("reorder/swaps").Add(int64(res.Swaps))
	return res, nil
}
