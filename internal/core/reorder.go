package core

import (
	"time"

	"repro/internal/bitmat"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// Options configures the reordering driver. The zero value selects the
// paper's defaults.
type Options struct {
	// MaxIter bounds the outer Algorithm-1 loop. The paper sets the
	// maximum to 10 and reports that most matrices converge within six
	// iterations. Zero means 10.
	MaxIter int
	// Stage1MaxIter bounds the inner sorting loop of Algorithm 2.
	// Zero means 10.
	Stage1MaxIter int
	// Stage2MaxIter bounds the outer pass loop of Algorithm 3.
	// Zero means 10.
	Stage2MaxIter int

	// Ablation knobs (DESIGN.md §4). All false for the paper's
	// algorithm.
	DisableNegation         bool // skip negated codes for invalid vectors
	PlainBitSort            bool // sort by raw bits instead of Hamming codes
	ImmediateSwaps          bool // apply Stage-2 swaps eagerly
	RequirePositiveGain     bool // freshtop needs gain > 0
	DisableSparsestFallback bool // skip |I|==1 handling
	Stage1Only              bool // run only Stage-1
	Stage2Only              bool // run only Stage-2

	// Workers sizes the execution pool the row-parallel phases (Stage-1
	// encoding and sorting, conformity scoring) run on: 0 uses
	// GOMAXPROCS, 1 runs serially. Every setting produces bit-identical
	// results — the Stage-1 sort has a unique stable output and the
	// score reductions are exact integer sums (DESIGN.md §8) — so the
	// knob is purely about speed.
	Workers int
	// Pool overrides Workers with a caller-shared execution engine.
	// ReorderLarge hands each partition the fan-out pool through this
	// field so one bounded worker set drives the whole preprocessing
	// step.
	Pool *sched.Pool
}

// ExecutionPool resolves the pool a reordering run executes on:
// opt.Pool when set, otherwise a pool sized by opt.Workers (0 =
// GOMAXPROCS; 1 = inline serial execution).
func (o Options) ExecutionPool() *sched.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return sched.New(o.Workers)
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 10
	}
	if o.Stage1MaxIter == 0 {
		o.Stage1MaxIter = 10
	}
	if o.Stage2MaxIter == 0 {
		o.Stage2MaxIter = 10
	}
	return o
}

// Result reports a completed reordering.
type Result struct {
	Pattern pattern.VNM
	// Perm maps new position -> original vertex id: the renumbering phi'
	// of the paper. Applying it to the original matrix (or graph) yields
	// Matrix.
	Perm   []int
	Matrix *bitmat.Matrix // the reordered adjacency matrix

	InitialPScore  int // invalid segment vectors before (F_p)
	FinalPScore    int // after
	InitialMBScore int // invalid meta-blocks before (F_MB)
	FinalMBScore   int // after

	// Iterations counts the fine-grained work steps the paper's Table 7
	// tracks: Stage-1 sort passes plus Stage-2 primary-segment
	// treatments, accumulated over all outer iterations.
	Iterations int
	OuterLoops int
	Swaps      int
	Elapsed    time.Duration
}

// Conforming reports whether the reordered matrix fully satisfies the
// V:N:M pattern.
func (r *Result) Conforming() bool { return r.FinalPScore == 0 && r.FinalMBScore == 0 }

// ImprovementRate returns the paper's reduction metric over invalid
// segment vectors.
func (r *Result) ImprovementRate() float64 {
	return pattern.ImprovementRate(r.InitialPScore, r.FinalPScore)
}

// Reorder runs the dual-level SOGRE algorithm (Algorithm 1) on a copy
// of m for the given V:N:M pattern and returns the discovered vertex
// renumbering together with the reordered matrix and quality metrics.
// The input matrix is not modified.
//
// The reordering is lossless: Result.Matrix is exactly the symmetric
// permutation of m by Result.Perm, so the underlying graph (and any GNN
// computed on it) is unchanged up to vertex naming.
func Reorder(m *bitmat.Matrix, p pattern.VNM, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	pool := opt.ExecutionPool()
	start := time.Now()
	cur := m.Clone()
	perm := make([]int, m.N())
	for i := range perm {
		perm[i] = i
	}
	res := &Result{
		Pattern:        p,
		InitialPScore:  pattern.PScoreOn(pool, cur, p),
		InitialMBScore: pattern.MBScoreOn(pool, cur, p),
	}
	prevP, prevMB := res.InitialPScore, res.InitialMBScore
	s2opts := stage2Opts{
		immediateSwaps:          opt.ImmediateSwaps,
		requirePositiveGain:     opt.RequirePositiveGain,
		disableSparsestFallback: opt.DisableSparsestFallback,
	}
	// The two stages can trade violations against each other (Stage-2's
	// swaps may split the similar-row groups Stage-1 built); keep the
	// best snapshot seen so a late bad trade never degrades the result.
	bestP, bestMB := prevP, prevMB
	bestMat := cur.Clone()
	bestPerm := append([]int(nil), perm...)
	better := func(p1, mb1, p2, mb2 int) bool {
		// Primary objective: total violations; ties prefer fewer
		// horizontal violations (they block compression outright).
		if p1+mb1 != p2+mb2 {
			return p1+mb1 < p2+mb2
		}
		return p1 < p2
	}
	for loop := 0; loop < opt.MaxIter; loop++ {
		if prevP == 0 && prevMB == 0 {
			break
		}
		res.OuterLoops++
		if !opt.Stage2Only {
			s1 := stage1On(pool, &cur, perm, p, opt.Stage1MaxIter, !opt.DisableNegation, opt.PlainBitSort)
			res.Iterations += s1.Iterations
		}
		if !opt.Stage1Only {
			s2 := Stage2(&cur, perm, p, opt.Stage2MaxIter, s2opts)
			res.Iterations += s2.PrimaryTreatments
			res.Swaps += s2.Swaps
		}
		nowP := pattern.PScoreOn(pool, cur, p)
		nowMB := pattern.MBScoreOn(pool, cur, p)
		if better(nowP, nowMB, bestP, bestMB) {
			bestP, bestMB = nowP, nowMB
			bestMat = cur.Clone()
			bestPerm = append(bestPerm[:0], perm...)
		}
		if nowP >= prevP && nowMB >= prevMB {
			break // no progress on either level; Alg. 1 terminates
		}
		prevP, prevMB = nowP, nowMB
	}
	res.FinalPScore = bestP
	res.FinalMBScore = bestMB
	res.Perm = bestPerm
	res.Matrix = bestMat
	res.Elapsed = time.Since(start)
	return res, nil
}
