// Package core implements the paper's primary contribution: the SOGRE
// dual-level N:M-sparsity-oriented graph reordering algorithm
// (Section 4). Stage-1 reduces vertical-constraint violations at the
// meta-block level via Hamming-distance position encoding and row
// sorting (Algorithm 2); Stage-2 reduces horizontal-constraint
// violations at the segment-vector level via greedy vertex-pair
// swapping (Algorithm 3); the two stages alternate under the iterative
// driver of Algorithm 1.
//
// All reorderings are symmetric vertex renumberings: the adjacency
// matrix stays symmetric and the graph semantics are untouched — the
// optimization is lossless.
package core

import (
	"repro/internal/bitmat"
	"repro/internal/hamming"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// rowCode is the sparse Hamming-position encoding of one matrix row:
// only segments holding at least one nonzero are materialized; absent
// segments implicitly carry the code of the all-zero vector
// (hamming.SignedCode(0, n) == 1). The paper notes this sparsity is
// what makes the sort fast in practice ("many segment vectors are zero
// vectors and are left out of the sorting operation").
type rowCode struct {
	row  int
	segs []int32 // indices of nonzero segments, ascending
	code []int64 // parallel signed Hamming position codes
}

const zeroVectorCode = int64(1) // hamming.SignedCode(0, n) for any n >= 0

// encodeRows computes the Stage-1 encoding of every row in parallel
// (Algorithm 2 steps i–ii). When negate is false the special negation
// of horizontally-invalid vectors (lines 9–10) is skipped — an ablation
// knob. When plainBits is true, raw segment bits replace the Hamming
// position code (ablation: plain lexicographic bit sort).
func encodeRows(pool *sched.Pool, m *bitmat.Matrix, p pattern.VNM, negate, plainBits bool) []rowCode {
	n := m.N()
	segs := m.NumSegments(p.M)
	codes := make([]rowCode, n)
	runRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rc := rowCode{row: i}
			for s := 0; s < segs; s++ {
				bits := m.Segment(i, s, p.M)
				if bits == 0 {
					continue
				}
				var c int64
				if plainBits {
					c = int64(bits) + 1
					if negate && !p.VectorValid(bits) {
						c = -c
					}
				} else if negate {
					c = hamming.SignedCode(bits, p.N)
				} else {
					c = int64(hamming.PositionCode(bits)) + 1
				}
				rc.segs = append(rc.segs, int32(s))
				rc.code = append(rc.code, c)
			}
			codes[i] = rc
		}
	})
	return codes
}

// lessRowCode compares two sparse row encodings lexicographically over
// the full dense vector they represent (absent segments read as
// zeroVectorCode).
func lessRowCode(a, b *rowCode) bool {
	ia, ib := 0, 0
	for ia < len(a.segs) || ib < len(b.segs) {
		var sa, sb int32 = 1 << 30, 1 << 30
		if ia < len(a.segs) {
			sa = a.segs[ia]
		}
		if ib < len(b.segs) {
			sb = b.segs[ib]
		}
		switch {
		case sa == sb:
			if a.code[ia] != b.code[ib] {
				return a.code[ia] < b.code[ib]
			}
			ia++
			ib++
		case sa < sb:
			// a has an explicit (nonzero) segment where b has the zero
			// vector: compare a's code with zeroVectorCode.
			if a.code[ia] != zeroVectorCode {
				return a.code[ia] < zeroVectorCode
			}
			ia++
		default:
			if b.code[ib] != zeroVectorCode {
				return zeroVectorCode < b.code[ib]
			}
			ib++
		}
	}
	return false
}

// Stage1Result reports one Stage-1 run.
type Stage1Result struct {
	Iterations     int
	InitialMBScore int
	FinalMBScore   int
}

// Stage1 runs Algorithm 2: iteratively encode rows with Hamming
// position codes, sort, and apply the sorted order as a symmetric
// permutation, until the vertical-constraint violation count (MBScore)
// reaches zero, stops improving, or maxIter passes elapse.
//
// The matrix m is permuted in place (replaced via pointer) and perm is
// updated so that perm[newPos] = original vertex. Returns statistics.
func Stage1(m **bitmat.Matrix, perm []int, p pattern.VNM, maxIter int, negate, plainBits bool) Stage1Result {
	return stage1On(nil, m, perm, p, maxIter, negate, plainBits)
}

// stage1On is Stage1 on an explicit execution pool: row encoding, the
// stable sort, and the MBScore reductions all run on the pool's
// workers. The sorted order is the unique stable order of the row
// codes and the reductions are exact, so every pool size produces the
// same permutation and statistics as the serial run.
func stage1On(pool *sched.Pool, m **bitmat.Matrix, perm []int, p pattern.VNM, maxIter int, negate, plainBits bool) Stage1Result {
	res := Stage1Result{}
	cur := *m
	res.InitialMBScore = pattern.MBScoreOn(pool, cur, p)
	score := res.InitialMBScore
	res.FinalMBScore = score
	for iter := 0; iter < maxIter && score > 0; iter++ {
		codes := encodeRows(pool, cur, p, negate, plainBits)
		order := make([]int, cur.N())
		for i := range order {
			order[i] = i
		}
		stableSortInts(pool, order, func(x, y int) bool {
			return lessRowCode(&codes[x], &codes[y])
		})
		if isIdentity(order) {
			break
		}
		next := cur.Permute(order)
		nextScore := pattern.MBScoreOn(pool, next, p)
		res.Iterations++
		if nextScore >= score {
			// No progress; keep the better (original) ordering and stop.
			if nextScore > score {
				break
			}
			// Equal score: accept once (it may unblock Stage-2), but
			// don't loop forever.
			applyOrder(perm, order)
			cur = next
			score = nextScore
			break
		}
		applyOrder(perm, order)
		cur = next
		score = nextScore
	}
	*m = cur
	res.FinalMBScore = score
	return res
}

// applyOrder composes a new ordering into the running permutation:
// position i of the new numbering holds what was at position order[i].
func applyOrder(perm []int, order []int) {
	old := append([]int(nil), perm...)
	for i, o := range order {
		perm[i] = old[o]
	}
}

func isIdentity(order []int) bool {
	for i, o := range order {
		if i != o {
			return false
		}
	}
	return true
}
