package core

import (
	"sort"

	"repro/internal/bitmat"
	"repro/internal/sched"
)

// parallelSortMin is the slice length below which stableSortInts always
// runs the serial sort: chunk-and-merge overhead only pays off on the
// multi-thousand-row orders the partitioned engine produces.
const parallelSortMin = 2048

// stableSortInts sorts a stably by less(x, y) over element values,
// distributing the work across the pool's workers. A stable sort's
// output is uniquely determined by the input — elements ordered by
// (key, original position) — so the chunked merge sort here returns
// exactly the permutation sort.SliceStable would, at every worker
// count and chunking. That uniqueness is what lets the reordering
// engine promise bit-identical results from serial and parallel runs.
func stableSortInts(pool *sched.Pool, a []int, less func(x, y int) bool) {
	n := len(a)
	if pool == nil || pool.Workers() <= 1 || n < parallelSortMin {
		sort.SliceStable(a, func(i, j int) bool { return less(a[i], a[j]) })
		return
	}
	chunks := sched.Chunks(n, pool.Workers())
	// Panics inside the sort/merge stages (only possible from a
	// misbehaving less or an injected tile fault) are re-raised on the
	// caller so the reordering engine's error path sees them.
	if err := pool.Run(len(chunks), func(ci int) {
		s := a[chunks[ci][0]:chunks[ci][1]]
		sort.SliceStable(s, func(i, j int) bool { return less(s[i], s[j]) })
	}); err != nil {
		panic(err)
	}
	buf := make([]int, n)
	src, dst := a, buf
	for len(chunks) > 1 {
		// Merge adjacent chunk pairs; a trailing odd chunk is copied
		// through unchanged (mergeRuns with an empty right run).
		merged := make([][2]int, 0, (len(chunks)+1)/2)
		pairs := make([][3]int, 0, cap(merged))
		for i := 0; i < len(chunks); i += 2 {
			lo, mid := chunks[i][0], chunks[i][1]
			hi := mid
			if i+1 < len(chunks) {
				hi = chunks[i+1][1]
			}
			pairs = append(pairs, [3]int{lo, mid, hi})
			merged = append(merged, [2]int{lo, hi})
		}
		if err := pool.Run(len(pairs), func(pi int) {
			mergeRuns(dst, src, pairs[pi][0], pairs[pi][1], pairs[pi][2], less)
		}); err != nil {
			panic(err)
		}
		src, dst = dst, src
		chunks = merged
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// mergeRuns merges the sorted runs src[lo:mid] and src[mid:hi] into
// dst[lo:hi]. Ties take the left run's element first — the stability
// invariant the uniqueness argument above rests on.
func mergeRuns(dst, src []int, lo, mid, hi int, less func(x, y int) bool) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		if i < mid && (j >= hi || !less(src[j], src[i])) {
			dst[k] = src[i]
			i++
		} else {
			dst[k] = src[j]
			j++
		}
	}
}

// runRows partitions [0, n) into contiguous row ranges and invokes fn
// on each, using the pool when one is supplied (a nil pool falls back
// to the GOMAXPROCS-wide bitmat helper the serial engine always used).
// fn must write only rows in its range; range boundaries never affect
// results.
func runRows(pool *sched.Pool, n int, fn func(lo, hi int)) {
	if pool == nil {
		bitmat.ParallelRows(n, fn)
		return
	}
	if pool.Workers() <= 1 || n <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunks := sched.Chunks(n, pool.Workers())
	if err := pool.Run(len(chunks), func(ci int) { fn(chunks[ci][0], chunks[ci][1]) }); err != nil {
		panic(err)
	}
}
