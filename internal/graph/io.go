package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes the graph's adjacency structure in
// MatrixMarket coordinate pattern symmetric format (1-based indices,
// lower triangle), the interchange format of the SuiteSparse
// collection.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern symmetric"); err != nil {
		return err
	}
	// Count lower-triangle entries (v <= u).
	count := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) <= u {
				count++
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", g.N(), g.N(), count); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) <= u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u+1, v+1); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeList writes one "u v" line per undirected edge (0-based),
// the plain format most GNN dataset dumps use.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) <= u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses whitespace-separated "u v" pairs (comments
// starting with '#' or '%' are skipped) into an undirected graph with
// n = max vertex id + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var edges [][2]int
	maxID := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: malformed edge line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad vertex %q", fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad vertex %q", fields[1])
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: negative vertex in %q", line)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewFromEdges(maxID+1, edges)
}

// ReadMatrixMarket parses a MatrixMarket coordinate file into an
// undirected graph. Pattern, real and integer fields are accepted
// (values are discarded); general and symmetric symmetry are accepted
// (general files are symmetrized).
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("graph: unsupported MatrixMarket header %q", sc.Text())
	}
	// Skip comments.
	var sizeLine string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		sizeLine = line
		break
	}
	if sizeLine == "" {
		return nil, fmt.Errorf("graph: missing size line")
	}
	parts := strings.Fields(sizeLine)
	if len(parts) < 3 {
		return nil, fmt.Errorf("graph: malformed size line %q", sizeLine)
	}
	rows, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, fmt.Errorf("graph: bad row count: %v", err)
	}
	cols, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("graph: bad col count: %v", err)
	}
	if rows != cols {
		return nil, fmt.Errorf("graph: adjacency matrix must be square, got %dx%d", rows, cols)
	}
	nnz, err := strconv.Atoi(parts[2])
	if err != nil {
		return nil, fmt.Errorf("graph: bad nnz count: %v", err)
	}
	edges := make([][2]int, 0, nnz)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: malformed entry %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad row index %q", fields[0])
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad col index %q", fields[1])
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("graph: index (%d,%d) out of range", i, j)
		}
		edges = append(edges, [2]int{i - 1, j - 1})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewFromEdges(rows, edges)
}
