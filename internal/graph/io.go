package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ioError is a typed constant error for the text readers, so callers
// can distinguish hostile or malformed input classes with errors.Is
// without the package holding mutable sentinel state.
type ioError string

func (e ioError) Error() string { return string(e) }

const (
	// ErrBadVertex reports a vertex token that is not a non-negative
	// integer (negative ids included — they are rejected before any
	// allocation is sized from them).
	ErrBadVertex = ioError("graph: bad vertex id")
	// ErrVertexLimit reports a vertex id that would size the graph
	// beyond the reader's vertex bound, or an inferred vertex count
	// wildly out of proportion to the number of edges supplied — the
	// "0 999999999999" single-line allocation attack.
	ErrVertexLimit = ioError("graph: vertex id exceeds limit")
	// ErrBadHeader reports a malformed or inconsistent "# n=<N>"
	// edge-list size header.
	ErrBadHeader = ioError("graph: bad edge-list size header")
)

// DefaultMaxVertices bounds the vertex count either reader will
// allocate for (ids must also fit int32, the CSR index width). Use
// ReadEdgeListLimit for a different bound.
const DefaultMaxVertices = 1 << 27

// edge-list inference guard: without an explicit "# n=<N>" header the
// vertex count is inferred as maxID+1, so a single hostile line can
// demand an arbitrarily large allocation. Inference is therefore only
// trusted while maxID+1 <= max(inferFloor, inferRatio*edges); larger
// sparse id spaces must declare themselves with a header.
const (
	edgeListInferFloor = 1 << 16
	edgeListInferRatio = 1024
)

// WriteMatrixMarket writes the graph's adjacency structure in
// MatrixMarket coordinate pattern symmetric format (1-based indices,
// lower triangle), the interchange format of the SuiteSparse
// collection.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern symmetric"); err != nil {
		return err
	}
	// Count lower-triangle entries (v <= u).
	count := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) <= u {
				count++
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", g.N(), g.N(), count); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) <= u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u+1, v+1); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeList writes a "# n=<N>" size header followed by one "u v"
// line per undirected edge (0-based), the plain format most GNN
// dataset dumps use. The header rides in a comment line, so readers
// that skip '#' comments still parse the body; ReadEdgeList honors it
// so graphs whose highest-id vertices are isolated round-trip without
// silently shrinking.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# n=%d\n", g.N()); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) <= u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses whitespace-separated "u v" pairs (comments
// starting with '#' or '%' are skipped) into an undirected graph.
// The vertex count is taken from an optional "# n=<N>" header
// (emitted by WriteEdgeList, so isolated trailing vertices survive a
// round trip); without one it is inferred as max vertex id + 1, with
// the inference ratio-checked against the number of edges so a single
// hostile line like "0 999999999999" cannot demand a terabyte-scale
// allocation. Vertex ids are validated (ErrBadVertex, ErrVertexLimit)
// before any allocation is sized from them; the overall bound is
// DefaultMaxVertices (see ReadEdgeListLimit).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return ReadEdgeListLimit(r, DefaultMaxVertices)
}

// ReadEdgeListLimit is ReadEdgeList with an explicit upper bound on
// the vertex count the reader will allocate for. maxN <= 0 means
// DefaultMaxVertices; the bound is additionally clamped so ids fit the
// graph's int32 CSR index width.
func ReadEdgeListLimit(r io.Reader, maxN int) (*Graph, error) {
	if maxN <= 0 {
		maxN = DefaultMaxVertices
	}
	const int32Cap = int(^uint32(0)>>1) - 1 // ids must fit int32
	if maxN > int32Cap {
		maxN = int32Cap
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var edges [][2]int
	maxID := -1
	headerN := -1
	parseID := func(tok string) (int, error) {
		id, err := strconv.Atoi(tok)
		if err != nil || id < 0 {
			return 0, fmt.Errorf("%w: %q", ErrBadVertex, tok)
		}
		if id >= maxN {
			return 0, fmt.Errorf("%w: %d (max %d vertices)", ErrVertexLimit, id, maxN)
		}
		return id, nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "# n="); ok {
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%w: %q", ErrBadHeader, line)
			}
			if headerN >= 0 && headerN != n {
				return nil, fmt.Errorf("%w: conflicting headers %d and %d", ErrBadHeader, headerN, n)
			}
			if n > maxN {
				return nil, fmt.Errorf("%w: header n=%d (max %d vertices)", ErrVertexLimit, n, maxN)
			}
			headerN = n
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: malformed edge line %q", line)
		}
		u, err := parseID(fields[0])
		if err != nil {
			return nil, err
		}
		v, err := parseID(fields[1])
		if err != nil {
			return nil, err
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := maxID + 1
	if headerN >= 0 {
		if headerN < maxID+1 {
			return nil, fmt.Errorf("%w: header n=%d but vertex %d present", ErrBadHeader, headerN, maxID)
		}
		n = headerN
	} else if bound := edgeListInferFloor; n > bound {
		if byRatio := edgeListInferRatio * len(edges); byRatio > bound {
			bound = byRatio
		}
		if n > bound {
			return nil, fmt.Errorf("%w: inferred %d vertices from %d edges (max %d without a \"# n=\" header)",
				ErrVertexLimit, n, len(edges), bound)
		}
	}
	return NewFromEdges(n, edges)
}

// ReadMatrixMarket parses a MatrixMarket coordinate file into an
// undirected graph. Pattern, real and integer fields are accepted
// (values are discarded); general and symmetric symmetry are accepted
// (general files are symmetrized).
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("graph: unsupported MatrixMarket header %q", sc.Text())
	}
	// Skip comments.
	var sizeLine string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		sizeLine = line
		break
	}
	if sizeLine == "" {
		return nil, fmt.Errorf("graph: missing size line")
	}
	parts := strings.Fields(sizeLine)
	if len(parts) < 3 {
		return nil, fmt.Errorf("graph: malformed size line %q", sizeLine)
	}
	rows, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, fmt.Errorf("graph: bad row count: %v", err)
	}
	cols, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("graph: bad col count: %v", err)
	}
	if rows != cols {
		return nil, fmt.Errorf("graph: adjacency matrix must be square, got %dx%d", rows, cols)
	}
	nnz, err := strconv.Atoi(parts[2])
	if err != nil {
		return nil, fmt.Errorf("graph: bad nnz count: %v", err)
	}
	edges := make([][2]int, 0, nnz)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: malformed entry %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad row index %q", fields[0])
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad col index %q", fields[1])
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("graph: index (%d,%d) out of range", i, j)
		}
		edges = append(edges, [2]int{i - 1, j - 1})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewFromEdges(rows, edges)
}
