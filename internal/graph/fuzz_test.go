package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket checks the MatrixMarket parser never panics and
// that everything it accepts is a valid graph that round-trips.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n3 3\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 0.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n\n1 1 0\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n9 9\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		g2, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("cannot re-parse own output: %v", err)
		}
		if g2.N() != g.N() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzReadEdgeList checks the edge-list parser never panics and
// accepted graphs validate.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5\n")
	f.Add("0 1 extra tokens ignored\n")
	f.Add("-3 4\n")
	f.Add("99999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
	})
}
