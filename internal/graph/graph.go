// Package graph provides the graph substrate for the SOGRE
// reproduction: a CSR-backed undirected graph type, vertex renumbering
// (the graph-reordering materialization of the paper's Figure 1),
// structural statistics, and conversions to and from the bit-matrix
// representation used by the reordering engine.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/bitmat"
)

// Graph is an undirected graph stored as a symmetric CSR adjacency
// structure. Vertex ids are 0-based. Edge weights are optional: a nil
// Weights slice means every edge has weight 1.
type Graph struct {
	n       int
	rowPtr  []int32
	colIdx  []int32
	weights []float32 // parallel to colIdx; nil = unweighted
}

// NewFromEdges builds an undirected graph with n vertices from an edge
// list. Duplicate edges and self-loop duplicates are collapsed. Each
// undirected edge {u, v} is stored in both adjacency lists.
func NewFromEdges(n int, edges [][2]int) (*Graph, error) {
	adj := make([]map[int32]struct{}, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if adj[u] == nil {
			adj[u] = make(map[int32]struct{})
		}
		adj[u][int32(v)] = struct{}{}
		if adj[v] == nil {
			adj[v] = make(map[int32]struct{})
		}
		adj[v][int32(u)] = struct{}{}
	}
	g := &Graph{n: n, rowPtr: make([]int32, n+1)}
	total := 0
	for _, m := range adj {
		total += len(m)
	}
	g.colIdx = make([]int32, 0, total)
	for u := 0; u < n; u++ {
		start := len(g.colIdx)
		for v := range adj[u] {
			g.colIdx = append(g.colIdx, v)
		}
		row := g.colIdx[start:]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		g.rowPtr[u+1] = int32(len(g.colIdx))
	}
	return g, nil
}

// NewFromCSR wraps pre-built CSR arrays. The caller asserts symmetry
// (every directed arc has its reverse) and sorted, duplicate-free rows;
// Validate can verify.
func NewFromCSR(n int, rowPtr, colIdx []int32, weights []float32) (*Graph, error) {
	if len(rowPtr) != n+1 {
		return nil, fmt.Errorf("graph: rowPtr length %d, want %d", len(rowPtr), n+1)
	}
	if int(rowPtr[n]) != len(colIdx) {
		return nil, fmt.Errorf("graph: rowPtr[n]=%d != len(colIdx)=%d", rowPtr[n], len(colIdx))
	}
	if weights != nil && len(weights) != len(colIdx) {
		return nil, fmt.Errorf("graph: weights length %d != colIdx length %d", len(weights), len(colIdx))
	}
	return &Graph{n: n, rowPtr: rowPtr, colIdx: colIdx, weights: weights}, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of stored directed arcs (2x undirected
// edges, with self-loops counted once).
func (g *Graph) NumEdges() int { return len(g.colIdx) }

// NumUndirectedEdges counts undirected edges (self-loops count 1).
func (g *Graph) NumUndirectedEdges() int {
	loops := 0
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) == u {
				loops++
			}
		}
	}
	return (len(g.colIdx)-loops)/2 + loops
}

// Neighbors returns the sorted adjacency list of u (aliases internal
// storage).
func (g *Graph) Neighbors(u int) []int32 {
	return g.colIdx[g.rowPtr[u]:g.rowPtr[u+1]]
}

// EdgeWeights returns the weights parallel to Neighbors(u), or nil if
// the graph is unweighted.
func (g *Graph) EdgeWeights(u int) []float32 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.rowPtr[u]:g.rowPtr[u+1]]
}

// Degree returns the degree of u (counting stored arcs).
func (g *Graph) Degree(u int) int { return int(g.rowPtr[u+1] - g.rowPtr[u]) }

// HasEdge reports whether the arc (u, v) exists, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	row := g.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// CSR exposes the raw CSR arrays (aliases internal storage).
func (g *Graph) CSR() (rowPtr, colIdx []int32, weights []float32) {
	return g.rowPtr, g.colIdx, g.weights
}

// Validate checks structural invariants: sorted duplicate-free rows,
// indices in range, and symmetry.
func (g *Graph) Validate() error {
	for u := 0; u < g.n; u++ {
		row := g.Neighbors(u)
		for i, v := range row {
			if v < 0 || int(v) >= g.n {
				return fmt.Errorf("graph: vertex %d neighbor %d out of range", u, v)
			}
			if i > 0 && row[i-1] >= v {
				return fmt.Errorf("graph: vertex %d row not strictly sorted at %d", u, i)
			}
			if !g.HasEdge(int(v), u) {
				return fmt.Errorf("graph: asymmetric arc (%d,%d)", u, v)
			}
		}
	}
	return nil
}

// ApplyPermutation renumbers vertices: new vertex i is old vertex
// perm[i]. It returns a new graph whose adjacency matrix equals the
// symmetric permutation of the original. The underlying graph is
// unchanged — only the numbering of vertices differs (paper Figure 1).
func (g *Graph) ApplyPermutation(perm []int) (*Graph, error) {
	if len(perm) != g.n {
		return nil, fmt.Errorf("graph: permutation length %d != n %d", len(perm), g.n)
	}
	inv := make([]int32, g.n)
	seen := make([]bool, g.n)
	for newPos, old := range perm {
		if old < 0 || old >= g.n || seen[old] {
			return nil, fmt.Errorf("graph: invalid permutation entry %d at %d", old, newPos)
		}
		seen[old] = true
		inv[old] = int32(newPos)
	}
	out := &Graph{n: g.n, rowPtr: make([]int32, g.n+1)}
	out.colIdx = make([]int32, len(g.colIdx))
	if g.weights != nil {
		out.weights = make([]float32, len(g.weights))
	}
	pos := 0
	type wv struct {
		v int32
		w float32
	}
	var buf []wv
	for newU := 0; newU < g.n; newU++ {
		old := perm[newU]
		row := g.Neighbors(old)
		ws := g.EdgeWeights(old)
		buf = buf[:0]
		for i, v := range row {
			e := wv{v: inv[v]}
			if ws != nil {
				e.w = ws[i]
			}
			buf = append(buf, e)
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i].v < buf[j].v })
		for _, e := range buf {
			out.colIdx[pos] = e.v
			if out.weights != nil {
				out.weights[pos] = e.w
			}
			pos++
		}
		out.rowPtr[newU+1] = int32(pos)
	}
	return out, nil
}

// ToBitMatrix converts the adjacency structure to the dense bit matrix
// used by the reordering engine.
func (g *Graph) ToBitMatrix() *bitmat.Matrix {
	m := bitmat.New(g.n)
	bitmat.ParallelRows(g.n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			for _, v := range g.Neighbors(u) {
				m.Set(u, int(v))
			}
		}
	})
	return m
}

// FromBitMatrix builds a graph from a symmetric bit matrix.
func FromBitMatrix(m *bitmat.Matrix) *Graph {
	n := m.N()
	g := &Graph{n: n, rowPtr: make([]int32, n+1)}
	counts := make([]int, n)
	bitmat.ParallelRows(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i] = m.RowNNZ(i)
		}
	})
	total := 0
	for i, c := range counts {
		total += c
		g.rowPtr[i+1] = int32(total)
	}
	g.colIdx = make([]int32, total)
	bitmat.ParallelRows(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := g.rowPtr[i]
			for j := 0; j < n; j++ {
				if m.Get(i, j) {
					g.colIdx[pos] = int32(j)
					pos++
				}
			}
		}
	})
	return g
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n}
	c.rowPtr = append([]int32(nil), g.rowPtr...)
	c.colIdx = append([]int32(nil), g.colIdx...)
	if g.weights != nil {
		c.weights = append([]float32(nil), g.weights...)
	}
	return c
}

// Subgraph returns the induced subgraph on the given vertices (which
// become vertices 0..len(vertices)-1 in order) plus the mapping back to
// original ids.
func (g *Graph) Subgraph(vertices []int) (*Graph, []int) {
	idx := make(map[int]int32, len(vertices))
	for i, v := range vertices {
		idx[v] = int32(i)
	}
	sub := &Graph{n: len(vertices), rowPtr: make([]int32, len(vertices)+1)}
	for i, v := range vertices {
		for _, w := range g.Neighbors(v) {
			if _, ok := idx[int(w)]; ok {
				sub.colIdx = append(sub.colIdx, idx[int(w)])
			}
		}
		row := sub.colIdx[sub.rowPtr[i]:]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		sub.rowPtr[i+1] = int32(len(sub.colIdx))
	}
	orig := append([]int(nil), vertices...)
	return sub, orig
}
