package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestReadEdgeListHostileMaxID: a single hostile line used to size the
// whole adjacency allocation from the largest id it named — "0 N" for
// astronomical N demanded gigabytes before any validation ran. The
// reader must reject the inference (typed ErrVertexLimit) instead of
// allocating. This test fails before the fix by returning a 50M-vertex
// graph (after a ~0.5 GB allocation) with no error.
func TestReadEdgeListHostileMaxID(t *testing.T) {
	for _, hostile := range []string{
		"0 50000000\n",              // way past floor and ratio for one edge
		"0 1\n1 2\n70000 0\n",       // past the floor, 3 edges
		"0 999999999999\n",          // the issue's literal attack line
		"0 999999999999999999999\n", // beyond int64: bad token, not an alloc
	} {
		g, err := ReadEdgeList(strings.NewReader(hostile))
		if err == nil {
			t.Fatalf("input %q accepted: n=%d", hostile, g.N())
		}
		if !errors.Is(err, ErrVertexLimit) && !errors.Is(err, ErrBadVertex) {
			t.Fatalf("input %q: error %v is not typed", hostile, err)
		}
	}
}

// TestReadEdgeListTypedVertexErrors: negatives and garbage tokens are
// rejected with ErrBadVertex before any id is used.
func TestReadEdgeListTypedVertexErrors(t *testing.T) {
	for _, bad := range []string{"-1 2\n", "2 -7\n", "x 2\n", "1 y\n"} {
		_, err := ReadEdgeList(strings.NewReader(bad))
		if !errors.Is(err, ErrBadVertex) {
			t.Fatalf("input %q: got %v, want ErrBadVertex", bad, err)
		}
	}
}

// TestReadEdgeListLimit: an explicit bound rejects ids at or past it.
func TestReadEdgeListLimit(t *testing.T) {
	if _, err := ReadEdgeListLimit(strings.NewReader("0 10\n"), 5); !errors.Is(err, ErrVertexLimit) {
		t.Fatalf("got %v, want ErrVertexLimit", err)
	}
	g, err := ReadEdgeListLimit(strings.NewReader("0 4\n"), 5)
	if err != nil || g.N() != 5 {
		t.Fatalf("g=%v err=%v", g, err)
	}
	// A header past the bound is rejected too.
	if _, err := ReadEdgeListLimit(strings.NewReader("# n=9\n0 1\n"), 5); !errors.Is(err, ErrVertexLimit) {
		t.Fatalf("header past limit: got %v, want ErrVertexLimit", err)
	}
}

// TestReadEdgeListInferenceFloor: inference up to the floor still
// works without a header (sparse id spaces below 2^16 are common in
// real dumps and must keep parsing).
func TestReadEdgeListInferenceFloor(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 65535\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 65536 {
		t.Fatalf("n=%d, want 65536", g.N())
	}
}

// TestEdgeListRoundTripIsolatedTail: the write->read round trip used
// to silently shrink graphs whose highest-id vertices are isolated
// (the writer emitted only edges, the reader inferred n from maxID).
// With the "# n=<N>" header, WriteEdgeList∘ReadEdgeList is identity
// for all graphs. This test fails before the fix with N 7 -> 2.
func TestEdgeListRoundTripIsolatedTail(t *testing.T) {
	g, err := NewFromEdges(7, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# n=7\n") {
		t.Fatalf("missing size header: %q", buf.String())
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 7 {
		t.Fatalf("round trip shrank the graph: n=%d, want 7", g2.N())
	}
	if !g2.HasEdge(0, 1) || g2.NumUndirectedEdges() != 1 {
		t.Fatalf("round trip changed edges: %d", g2.NumUndirectedEdges())
	}
	// The empty graph round-trips too (header only, no edges).
	empty, err := NewFromEdges(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteEdgeList(&buf, empty); err != nil {
		t.Fatal(err)
	}
	e2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.N() != 3 || e2.NumEdges() != 0 {
		t.Fatalf("empty graph round trip: n=%d arcs=%d", e2.N(), e2.NumEdges())
	}
}

// TestEdgeListHeaderValidation: malformed, conflicting, or lying
// headers are typed errors; a valid header legitimizes sparse id
// spaces the ratio check would otherwise reject.
func TestEdgeListHeaderValidation(t *testing.T) {
	for _, bad := range []string{
		"# n=x\n0 1\n",        // not a number
		"# n=-4\n0 1\n",       // negative
		"# n=3\n# n=5\n0 1\n", // conflicting duplicates
		"# n=1\n0 1\n",        // smaller than an id actually present
	} {
		_, err := ReadEdgeList(strings.NewReader(bad))
		if !errors.Is(err, ErrBadHeader) {
			t.Fatalf("input %q: got %v, want ErrBadHeader", bad, err)
		}
	}
	// Repeating the same header is harmless.
	g, err := ReadEdgeList(strings.NewReader("# n=4\n# n=4\n0 1\n"))
	if err != nil || g.N() != 4 {
		t.Fatalf("g=%v err=%v", g, err)
	}
	// A declared sparse id space passes where inference would refuse.
	sparse := "0 70000\n"
	if _, err := ReadEdgeList(strings.NewReader(sparse)); !errors.Is(err, ErrVertexLimit) {
		t.Fatalf("undeclared sparse ids: got %v, want ErrVertexLimit", err)
	}
	g, err = ReadEdgeList(strings.NewReader("# n=70001\n" + sparse))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 70001 || !g.HasEdge(0, 70000) {
		t.Fatalf("declared sparse ids: n=%d", g.N())
	}
}
