package graph

import (
	"math/rand"
	"sort"
)

// Stats summarizes the structural statistics reported in the paper's
// Table 1 and Table 2: vertex/edge counts, degree distribution, and an
// (estimated) diameter.
type Stats struct {
	Vertices  int
	Edges     int // undirected edges
	AvgDegree float64
	MaxDegree int
	MedDegree float64
	Density   float64 // nnz / n^2 of the adjacency matrix
	Diameter  int     // BFS-estimated pseudo-diameter
}

// ComputeStats gathers Stats for a graph. Diameter is estimated with a
// few double-sweep BFS passes from random seeds (exact on trees, a
// lower bound in general — the convention large-graph suites use).
func ComputeStats(g *Graph, seed int64) Stats {
	s := Stats{Vertices: g.N(), Edges: g.NumUndirectedEdges()}
	if g.N() == 0 {
		return s
	}
	degs := make([]int, g.N())
	total := 0
	for u := 0; u < g.N(); u++ {
		degs[u] = g.Degree(u)
		total += degs[u]
		if degs[u] > s.MaxDegree {
			s.MaxDegree = degs[u]
		}
	}
	s.AvgDegree = float64(total) / float64(g.N())
	sorted := append([]int(nil), degs...)
	sort.Ints(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.MedDegree = float64(sorted[mid])
	} else {
		s.MedDegree = float64(sorted[mid-1]+sorted[mid]) / 2
	}
	s.Density = float64(g.NumEdges()) / (float64(g.N()) * float64(g.N()))
	s.Diameter = EstimateDiameter(g, 4, seed)
	return s
}

// BFS returns the distance (in edges) from src to every vertex, with -1
// for unreachable vertices, plus the farthest reached vertex and its
// distance.
func BFS(g *Graph, src int) (dist []int32, far int, farDist int32) {
	dist = make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	far, farDist = src, 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				if dist[v] > farDist {
					farDist = dist[v]
					far = int(v)
				}
				queue = append(queue, v)
			}
		}
	}
	return dist, far, farDist
}

// EstimateDiameter runs `sweeps` double-sweep BFS passes and returns
// the largest eccentricity found.
func EstimateDiameter(g *Graph, sweeps int, seed int64) int {
	if g.N() == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	best := int32(0)
	for s := 0; s < sweeps; s++ {
		src := rng.Intn(g.N())
		if g.Degree(src) == 0 {
			continue
		}
		_, far, _ := BFS(g, src)
		_, _, d := BFS(g, far)
		if d > best {
			best = d
		}
	}
	return int(best)
}

// ConnectedComponents labels each vertex with a component id and
// returns the labels and the number of components.
func ConnectedComponents(g *Graph) ([]int32, int) {
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	var stack []int32
	for s := 0; s < g.N(); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(int(u)) {
				if comp[v] < 0 {
					comp[v] = next
					stack = append(stack, v)
				}
			}
		}
		next++
	}
	return comp, int(next)
}

// DegreeOrder returns a permutation sorting vertices by descending
// degree (a classic coarse reordering baseline).
func DegreeOrder(g *Graph) []int {
	perm := make([]int, g.N())
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return g.Degree(perm[a]) > g.Degree(perm[b])
	})
	return perm
}
