package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewFromEdgesBasic(t *testing.T) {
	g, err := NewFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 1}}) // dup collapsed
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Errorf("N = %d, want 4", g.N())
	}
	if g.NumEdges() != 6 { // 3 undirected edges, both directions
		t.Errorf("NumEdges = %d, want 6", g.NumEdges())
	}
	if g.NumUndirectedEdges() != 3 {
		t.Errorf("NumUndirectedEdges = %d, want 3", g.NumUndirectedEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewFromEdgesOutOfRange(t *testing.T) {
	if _, err := NewFromEdges(2, [][2]int{{0, 2}}); err == nil {
		t.Error("want error for out-of-range edge")
	}
	if _, err := NewFromEdges(2, [][2]int{{-1, 0}}); err == nil {
		t.Error("want error for negative vertex")
	}
}

func TestSelfLoop(t *testing.T) {
	g, err := NewFromEdges(3, [][2]int{{0, 0}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 0) {
		t.Error("self loop missing")
	}
	if g.NumUndirectedEdges() != 2 {
		t.Errorf("NumUndirectedEdges = %d, want 2", g.NumUndirectedEdges())
	}
}

func TestApplyPermutationPreservesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := ErdosRenyi(60, 0.1, 7)
	perm := rng.Perm(60)
	p, err := g.ApplyPermutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("permuted graph invalid: %v", err)
	}
	if p.NumEdges() != g.NumEdges() {
		t.Errorf("edge count changed: %d -> %d", g.NumEdges(), p.NumEdges())
	}
	// Edge (u,v) in original iff (inv[u], inv[v]) in permuted.
	inv := make([]int, 60)
	for newPos, old := range perm {
		inv[old] = newPos
	}
	for u := 0; u < 60; u++ {
		for _, v := range g.Neighbors(u) {
			if !p.HasEdge(inv[u], inv[int(v)]) {
				t.Fatalf("edge (%d,%d) lost under permutation", u, v)
			}
		}
	}
}

func TestApplyPermutationRejectsInvalid(t *testing.T) {
	g := Grid2D(2, 2)
	if _, err := g.ApplyPermutation([]int{0, 1, 2}); err == nil {
		t.Error("want error for short permutation")
	}
	if _, err := g.ApplyPermutation([]int{0, 0, 1, 2}); err == nil {
		t.Error("want error for duplicate entry")
	}
	if _, err := g.ApplyPermutation([]int{0, 1, 2, 4}); err == nil {
		t.Error("want error for out-of-range entry")
	}
}

func TestBitMatrixRoundTrip(t *testing.T) {
	g := BarabasiAlbert(80, 3, 5)
	m := g.ToBitMatrix()
	if !m.IsSymmetric() {
		t.Error("adjacency bit matrix not symmetric")
	}
	g2 := FromBitMatrix(m)
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip changed edges: %d -> %d", g.NumEdges(), g2.NumEdges())
	}
	for u := 0; u < g.N(); u++ {
		a, b := g.Neighbors(u), g2.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("row %d length differs", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d differs at %d", u, i)
			}
		}
	}
}

func TestSubgraph(t *testing.T) {
	g, _ := NewFromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}})
	sub, orig := g.Subgraph([]int{1, 2, 3})
	if sub.N() != 3 {
		t.Fatalf("sub.N = %d", sub.N())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Error("subgraph edges wrong")
	}
	if orig[0] != 1 || orig[2] != 3 {
		t.Error("orig mapping wrong")
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("subgraph invalid: %v", err)
	}
}

func TestGenerators(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
	}{
		{"ER", ErdosRenyi(200, 0.05, 1)},
		{"BA", BarabasiAlbert(200, 4, 1)},
		{"Banded", Banded(200, 6, 0.7, 1)},
		{"Grid", Grid2D(10, 20)},
		{"RMAT", RMAT(8, 8, 0.57, 0.19, 0.19, 1)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if tc.g.NumEdges() == 0 {
				t.Error("no edges generated")
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := ErdosRenyi(100, 0.1, 42)
	b := ErdosRenyi(100, 0.1, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Error("ER not deterministic")
	}
	c := BarabasiAlbert(100, 3, 42)
	d := BarabasiAlbert(100, 3, 42)
	if c.NumEdges() != d.NumEdges() {
		t.Error("BA not deterministic")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	g := ErdosRenyi(500, 0.04, 9)
	want := 0.04 * 500 * 499 / 2
	got := float64(g.NumUndirectedEdges())
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("ER edges = %v, want ~%v", got, want)
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	g := BarabasiAlbert(1000, 3, 3)
	st := ComputeStats(g, 1)
	if float64(st.MaxDegree) < 4*st.AvgDegree {
		t.Errorf("BA max degree %d not heavy-tailed vs avg %.1f", st.MaxDegree, st.AvgDegree)
	}
}

func TestSBM(t *testing.T) {
	g, labels := SBM([]int{50, 50, 50}, 0.2, 0.01, 11)
	if g.N() != 150 || len(labels) != 150 {
		t.Fatalf("SBM sizes wrong: n=%d labels=%d", g.N(), len(labels))
	}
	if labels[0] != 0 || labels[149] != 2 {
		t.Error("labels wrong")
	}
	// Intra-class edges should dominate.
	intra, inter := 0, 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if labels[u] == labels[int(v)] {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra <= inter*2 {
		t.Errorf("SBM assortativity weak: intra=%d inter=%d", intra, inter)
	}
}

func TestGrid2DStructure(t *testing.T) {
	g := Grid2D(3, 4)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// Interior vertex (1,1) = id 5 has 4 neighbors.
	if g.Degree(5) != 4 {
		t.Errorf("interior degree = %d, want 4", g.Degree(5))
	}
	// Corner has 2.
	if g.Degree(0) != 2 {
		t.Errorf("corner degree = %d, want 2", g.Degree(0))
	}
	// Exact diameter of 3x4 grid is (3-1)+(4-1) = 5.
	if d := EstimateDiameter(g, 8, 1); d != 5 {
		t.Errorf("grid diameter = %d, want 5", d)
	}
}

func TestBFS(t *testing.T) {
	g, _ := NewFromEdges(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	dist, far, fd := BFS(g, 0)
	if dist[2] != 2 || dist[1] != 1 || dist[0] != 0 {
		t.Errorf("BFS dist = %v", dist)
	}
	if dist[3] != -1 || dist[4] != -1 {
		t.Error("unreachable vertices should be -1")
	}
	if far != 2 || fd != 2 {
		t.Errorf("far = %d (%d), want 2 (2)", far, fd)
	}
}

func TestConnectedComponents(t *testing.T) {
	g, _ := NewFromEdges(6, [][2]int{{0, 1}, {2, 3}, {3, 4}})
	comp, num := ConnectedComponents(g)
	if num != 3 {
		t.Fatalf("components = %d, want 3", num)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[3] != comp[4] {
		t.Error("component labels wrong")
	}
	if comp[0] == comp[2] || comp[0] == comp[5] {
		t.Error("distinct components share label")
	}
}

func TestComputeStats(t *testing.T) {
	g := Grid2D(5, 5)
	st := ComputeStats(g, 1)
	if st.Vertices != 25 {
		t.Errorf("Vertices = %d", st.Vertices)
	}
	if st.Edges != 40 {
		t.Errorf("Edges = %d, want 40", st.Edges)
	}
	if st.MaxDegree != 4 {
		t.Errorf("MaxDegree = %d, want 4", st.MaxDegree)
	}
	if st.AvgDegree <= 0 || st.MedDegree <= 0 || st.Density <= 0 {
		t.Error("stats not populated")
	}
	empty := ComputeStats(mustGraph(t, 0, nil), 1)
	if empty.Vertices != 0 {
		t.Error("empty stats wrong")
	}
}

func mustGraph(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	g, err := NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDegreeOrder(t *testing.T) {
	g := BarabasiAlbert(100, 3, 1)
	perm := DegreeOrder(g)
	for i := 1; i < len(perm); i++ {
		if g.Degree(perm[i-1]) < g.Degree(perm[i]) {
			t.Fatal("DegreeOrder not descending")
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := ErdosRenyi(50, 0.1, 13)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: n %d->%d edges %d->%d", g.N(), g2.N(), g.NumEdges(), g2.NumEdges())
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if !g2.HasEdge(u, int(v)) {
				t.Fatalf("edge (%d,%d) lost", u, v)
			}
		}
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n2 3 1\n1 1\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n3 1\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\nx y z\n",
	}
	for i, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Grid2D(3, 3)
	c := g.Clone()
	rp, _, _ := c.CSR()
	rp[0] = 99
	rp2, _, _ := g.CSR()
	if rp2[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestPermutationRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		g := ErdosRenyi(n, 0.2, seed)
		perm := rng.Perm(n)
		p, err := g.ApplyPermutation(perm)
		if err != nil {
			return false
		}
		inv := make([]int, n)
		for np, old := range perm {
			inv[old] = np
		}
		back, err := p.ApplyPermutation(inv)
		if err != nil {
			return false
		}
		if back.NumEdges() != g.NumEdges() {
			return false
		}
		for u := 0; u < n; u++ {
			a, b := g.Neighbors(u), back.Neighbors(u)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkToBitMatrix(b *testing.B) {
	g := BarabasiAlbert(2000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ToBitMatrix()
	}
}

func BenchmarkApplyPermutation(b *testing.B) {
	g := BarabasiAlbert(2000, 8, 1)
	perm := rand.New(rand.NewSource(2)).Perm(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ApplyPermutation(perm); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := ErdosRenyi(60, 0.08, 17)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumUndirectedEdges() != g.NumUndirectedEdges() {
		t.Fatalf("edges %d -> %d", g.NumUndirectedEdges(), g2.NumUndirectedEdges())
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if !g2.HasEdge(u, int(v)) {
				t.Fatalf("edge (%d,%d) lost", u, v)
			}
		}
	}
}

func TestReadEdgeListCommentsAndErrors(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# comment\n% other\n0 1\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.NumUndirectedEdges() != 2 {
		t.Errorf("n=%d edges=%d", g.N(), g.NumUndirectedEdges())
	}
	for _, bad := range []string{"0\n", "a b\n", "0 x\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q: want error", bad)
		}
	}
}

func TestGenerateByName(t *testing.T) {
	for _, name := range []string{"banded", "grid", "er", "ba", "community", "ultrasparse", "blowup", "rmat"} {
		g, err := GenerateByName(name, 200, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() == 0 {
			t.Errorf("%s: empty graph", name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := GenerateByName("bogus", 100, 1); err == nil {
		t.Error("want error for unknown generator")
	}
}
