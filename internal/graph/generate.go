package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// The generators below synthesize graphs spanning the structural
// regimes of the SuiteSparse collection and of the GNN benchmark
// datasets (DESIGN.md Section 1): uniform random (Erdős–Rényi),
// power-law (Barabási–Albert), community-structured (planted-partition
// SBM), banded, and grid graphs. Every generator is deterministic given
// its seed.

// ErdosRenyi generates G(n, p) with expected degree p*(n-1).
func ErdosRenyi(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, [2]int{u, v})
			}
		}
	} else if p > 0 {
		// Batagelj–Brandes geometric skipping over the lower triangle:
		// row v has candidate columns 0..v-1.
		logq := math.Log1p(-p)
		v, w := 1, -1
		for v < n {
			r := rng.Float64()
			w += 1 + int(math.Log1p(-r)/logq)
			for w >= v && v < n {
				w -= v
				v++
			}
			if v < n {
				edges = append(edges, [2]int{v, w})
			}
		}
	}
	g, _ := NewFromEdges(n, edges)
	return g
}

// BarabasiAlbert generates a preferential-attachment graph: each new
// vertex attaches to m existing vertices chosen proportionally to
// degree. Produces the heavy-tailed degree distributions typical of
// social and web graphs.
func BarabasiAlbert(n, m int, seed int64) *Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	// Repeated-endpoint list for preferential sampling.
	targets := make([]int, 0, 2*n*m)
	start := m + 1
	if start > n {
		start = n
	}
	// Seed clique among the first start vertices.
	for u := 0; u < start; u++ {
		for v := u + 1; v < start; v++ {
			edges = append(edges, [2]int{u, v})
			targets = append(targets, u, v)
		}
	}
	for u := start; u < n; u++ {
		chosen := make(map[int]bool, m)
		for len(chosen) < m {
			var t int
			if len(targets) == 0 || rng.Float64() < 0.05 {
				t = rng.Intn(u) // small uniform mixing avoids star collapse
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if t != u {
				chosen[t] = true
			}
		}
		// Drain the chosen set in sorted order: map iteration order
		// would otherwise leak into the targets pool and make the
		// generator nondeterministic for a fixed seed.
		picks := make([]int, 0, len(chosen))
		for t := range chosen {
			picks = append(picks, t)
		}
		sort.Ints(picks)
		for _, t := range picks {
			edges = append(edges, [2]int{u, t})
			targets = append(targets, u, t)
		}
	}
	g, _ := NewFromEdges(n, edges)
	return g
}

// SBM generates a planted-partition stochastic block model with the
// given community sizes: intra-community edge probability pIn and
// inter-community probability pOut. Returns the graph and each vertex's
// community label. This is the substrate for the synthetic GNN
// datasets: communities become node-classification classes.
func SBM(sizes []int, pIn, pOut float64, seed int64) (*Graph, []int) {
	n := 0
	for _, s := range sizes {
		n += s
	}
	labels := make([]int, n)
	offset := 0
	for c, s := range sizes {
		for i := 0; i < s; i++ {
			labels[offset+i] = c
		}
		offset += s
	}
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	// Expected-edge sampling: for each pair class choose Binomial via
	// geometric skipping per block pair to stay near O(E).
	sample := func(uLo, uHi, vLo, vHi int, p float64, samePart bool) {
		if p <= 0 {
			return
		}
		// Sample each vertex's partners by expected count to avoid O(n^2).
		for u := uLo; u < uHi; u++ {
			lo := vLo
			if samePart {
				lo = u + 1
			}
			span := vHi - lo
			if span <= 0 {
				continue
			}
			// Binomial(span, p) approximated by Poisson for small p.
			mean := float64(span) * p
			k := poisson(rng, mean)
			for j := 0; j < k; j++ {
				v := lo + rng.Intn(span)
				if v != u {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
	}
	offs := make([]int, len(sizes)+1)
	for i, s := range sizes {
		offs[i+1] = offs[i] + s
	}
	for a := range sizes {
		sample(offs[a], offs[a+1], offs[a], offs[a+1], pIn, true)
		for b := a + 1; b < len(sizes); b++ {
			sample(offs[a], offs[a+1], offs[b], offs[b+1], pOut, false)
		}
	}
	g, _ := NewFromEdges(n, edges)
	return g, labels
}

// Banded generates a banded matrix graph: vertex u connects to up to
// `band` following vertices with probability p. Banded structure is
// common in SuiteSparse PDE/mesh matrices and is highly reorderable.
func Banded(n, band int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for u := 0; u < n; u++ {
		for d := 1; d <= band && u+d < n; d++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{u, u + d})
			}
		}
	}
	g, _ := NewFromEdges(n, edges)
	return g
}

// Grid2D generates a rows x cols 4-neighbor grid graph.
func Grid2D(rows, cols int) *Graph {
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	g, _ := NewFromEdges(rows*cols, edges)
	return g
}

// RMAT generates a recursive-matrix (Kronecker-like) graph with the
// standard (a, b, c, d) quadrant probabilities, symmetrized. scale is
// log2 of the vertex count.
func RMAT(scale int, edgeFactor int, a, b, c float64, seed int64) *Graph {
	n := 1 << uint(scale)
	rng := rand.New(rand.NewSource(seed))
	numEdges := n * edgeFactor
	edges := make([][2]int, 0, numEdges)
	for e := 0; e < numEdges; e++ {
		u, v := 0, 0
		for bit := n >> 1; bit >= 1; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < a: // top-left
			case r < a+b:
				v |= bit
			case r < a+b+c:
				u |= bit
			default:
				u |= bit
				v |= bit
			}
		}
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	g, _ := NewFromEdges(n, edges)
	return g
}

// Blowup replaces each vertex of the base graph with a cluster of c
// copies; every base edge (u, v) becomes a complete bipartite
// connection between the two clusters. All rows of a cluster share an
// identical adjacency pattern, the duplicate-row structure common in
// FEM/stencil matrices — and exactly the structure that satisfies the
// V:N:M vertical constraint for V up to c after reordering.
func Blowup(base *Graph, c int) *Graph {
	if c < 1 {
		c = 1
	}
	n := base.N() * c
	var edges [][2]int
	for u := 0; u < base.N(); u++ {
		for _, v := range base.Neighbors(u) {
			if int(v) < u {
				continue
			}
			for i := 0; i < c; i++ {
				for j := 0; j < c; j++ {
					edges = append(edges, [2]int{u*c + i, int(v)*c + j})
				}
			}
		}
	}
	g, _ := NewFromEdges(n, edges)
	return g
}

// UltraSparse generates a graph with roughly frac*n scattered edges —
// the density regime (<0.01%) where the paper observes SPTC SpMM can
// lose to CSR (Figure 4's slowdown tail).
func UltraSparse(n int, frac float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	count := int(float64(n) * frac)
	if count < 1 {
		count = 1
	}
	var edges [][2]int
	for k := 0; k < count; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	g, _ := NewFromEdges(n, edges)
	return g
}

// GenerateByName builds a graph from a generator family name — the
// shared dispatcher behind the CLI tools' -gen flags. Supported names:
// banded, grid, er, ba, community, ultrasparse, blowup, rmat.
func GenerateByName(name string, n int, seed int64) (*Graph, error) {
	switch name {
	case "banded":
		return Banded(n, 3, 0.8, seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return Grid2D(side, side), nil
	case "er":
		return ErdosRenyi(n, 8/float64(n), seed), nil
	case "ba":
		return BarabasiAlbert(n, 3, seed), nil
	case "community":
		nc := n / 64
		if nc < 2 {
			nc = 2
		}
		sizes := make([]int, nc)
		for i := range sizes {
			sizes[i] = n / nc
		}
		g, _ := SBM(sizes, 8/float64(n/nc), 0.5/float64(n), seed)
		return g, nil
	case "ultrasparse":
		return UltraSparse(n, 0.05, seed), nil
	case "blowup":
		c := 8
		base := n / c
		if base < 2 {
			base = 2
		}
		return Blowup(Banded(base, 1, 1.0, seed), c), nil
	case "rmat":
		scale := 1
		for 1<<uint(scale) < n {
			scale++
		}
		return RMAT(scale, 8, 0.57, 0.19, 0.19, seed), nil
	}
	return nil, fmt.Errorf("graph: unknown generator %q", name)
}

// poisson samples a Poisson(mean) variate; for large mean it uses a
// normal approximation.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}
