package csr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestFromEntriesSortedDedup(t *testing.T) {
	m, err := FromEntries(3,
		[]int32{0, 0, 0, 2},
		[]int32{2, 1, 2, 0},
		[]float32{1, 5, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (duplicates summed)", m.NNZ())
	}
	if m.At(0, 2) != 3 {
		t.Errorf("At(0,2) = %v, want 3", m.At(0, 2))
	}
	if m.At(0, 1) != 5 || m.At(2, 0) != 7 || m.At(1, 1) != 0 {
		t.Error("values wrong")
	}
	cols, _ := m.Row(0)
	if cols[0] != 1 || cols[1] != 2 {
		t.Error("row not sorted")
	}
}

func TestFromEntriesErrors(t *testing.T) {
	if _, err := FromEntries(2, []int32{0}, []int32{5}, []float32{1}); err == nil {
		t.Error("want error for out-of-range column")
	}
	if _, err := FromEntries(2, []int32{0, 1}, []int32{0}, []float32{1}); err == nil {
		t.Error("want error for mismatched arrays")
	}
}

func TestFromGraphAndBitMatrixAgree(t *testing.T) {
	g := graph.ErdosRenyi(40, 0.15, 3)
	a := FromGraph(g)
	b := FromBitMatrix(g.ToBitMatrix())
	if a.NNZ() != b.NNZ() {
		t.Fatalf("NNZ differ: %d vs %d", a.NNZ(), b.NNZ())
	}
	for i := 0; i < 40; i++ {
		ac, _ := a.Row(i)
		bc, _ := b.Row(i)
		for k := range ac {
			if ac[k] != bc[k] {
				t.Fatalf("row %d differs", i)
			}
		}
	}
	// Round trip through bitmat.
	if !a.ToBitMatrix().Equal(g.ToBitMatrix()) {
		t.Error("ToBitMatrix round trip differs")
	}
}

func TestPermuteWeighted(t *testing.T) {
	m, err := FromEntries(4,
		[]int32{0, 1, 2, 3},
		[]int32{1, 0, 3, 2},
		[]float32{5, 5, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{2, 3, 0, 1}
	p, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	// New (0,1) should be old (2,3) = 9.
	if p.At(0, 1) != 9 || p.At(2, 3) != 5 {
		t.Errorf("permuted values wrong: %v %v", p.At(0, 1), p.At(2, 3))
	}
	if _, err := m.Permute([]int{0}); err == nil {
		t.Error("want error for bad permutation")
	}
}

func TestSymNormalizedRegularGraph(t *testing.T) {
	// On a k-regular graph every row of D^{-1/2}(A+I)D^{-1/2} sums to 1.
	g := graph.Grid2D(1, 8) // path: not regular — use ring instead
	_ = g
	// Build a ring (2-regular).
	var edges [][2]int
	n := 12
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	ring, err := graph.NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	m := SymNormalized(ring)
	for i := 0; i < n; i++ {
		_, vals := m.Row(i)
		var sum float64
		for _, v := range vals {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v, want 1", i, sum)
		}
	}
	// Self loops present.
	if m.At(3, 3) == 0 {
		t.Error("self-loop missing")
	}
	// Symmetric.
	for i := 0; i < n; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if math.Abs(float64(m.At(int(c), i)-vals[k])) > 1e-6 {
				t.Fatalf("not symmetric at (%d,%d)", i, c)
			}
		}
	}
}

func TestSymNormalizedWithExistingSelfLoop(t *testing.T) {
	g, err := graph.NewFromEdges(3, [][2]int{{0, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	m := SymNormalized(g)
	// Row 0: self loop exists, no double-add. deg(0)=2 (self + edge).
	cols, _ := m.Row(0)
	if len(cols) != 2 {
		t.Errorf("row 0 has %d entries, want 2", len(cols))
	}
}

func TestRowNormalized(t *testing.T) {
	g := graph.Grid2D(3, 3)
	m := RowNormalized(g)
	for i := 0; i < m.N; i++ {
		_, vals := m.Row(i)
		var sum float64
		for _, v := range vals {
			sum += float64(v)
		}
		if len(vals) > 0 && math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestScaledLaplacian(t *testing.T) {
	g := graph.Grid2D(2, 2)
	m := ScaledLaplacian(g)
	// Entries are -1/sqrt(d_u d_v), all negative.
	for i := 0; i < m.N; i++ {
		_, vals := m.Row(i)
		for _, v := range vals {
			if v >= 0 {
				t.Errorf("scaled Laplacian entry %v >= 0", v)
			}
		}
	}
	if m.NNZ() != g.NumEdges() {
		t.Errorf("NNZ = %d, want %d", m.NNZ(), g.NumEdges())
	}
}

func TestCloneIndependent(t *testing.T) {
	m, _ := FromEntries(2, []int32{0}, []int32{1}, []float32{4})
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestToDense(t *testing.T) {
	m, _ := FromEntries(3, []int32{0, 2}, []int32{1, 2}, []float32{4, 5})
	d := m.ToDense()
	if d.At(0, 1) != 4 || d.At(2, 2) != 5 || d.At(1, 1) != 0 {
		t.Error("ToDense values wrong")
	}
}

func TestPermutePreservesSpectrumFingerprint(t *testing.T) {
	// Trace and Frobenius norm are invariant under symmetric
	// permutation.
	rng := rand.New(rand.NewSource(9))
	g := graph.ErdosRenyi(30, 0.2, 4)
	m := FromGraph(g)
	perm := rng.Perm(30)
	p, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	frob := func(x *Matrix) float64 {
		var s float64
		for _, v := range x.Val {
			s += float64(v) * float64(v)
		}
		return s
	}
	if math.Abs(frob(m)-frob(p)) > 1e-6 {
		t.Error("Frobenius norm changed under permutation")
	}
}

func BenchmarkSymNormalized(b *testing.B) {
	g := graph.BarabasiAlbert(4096, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SymNormalized(g)
	}
}

func BenchmarkTranspose(b *testing.B) {
	g := graph.BarabasiAlbert(4096, 8, 1)
	m := FromGraph(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}
