// Package csr provides the weighted Compressed Sparse Row matrix used
// by the SpMM kernels and GNN aggregation — the format cuSPARSE's
// CSR-SpMM baseline (and PyG/DGL's default backends) operate on.
package csr

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/dense"
	"repro/internal/graph"
)

// Matrix is a square sparse matrix in CSR form with float32 values.
type Matrix struct {
	N      int
	RowPtr []int32
	ColIdx []int32
	Val    []float32
}

// NNZ returns the number of stored nonzeros.
func (m *Matrix) NNZ() int { return len(m.ColIdx) }

// RowNNZ returns the number of stored nonzeros in row i — the per-row
// work estimate the tile scheduler's degree-aware partitioner balances.
func (m *Matrix) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// MaxRowNNZ returns the largest row population (the heavy-row extreme
// of the degree distribution the scheduler must split).
func (m *Matrix) MaxRowNNZ() int {
	max := 0
	for i := 0; i < m.N; i++ {
		if d := m.RowNNZ(i); d > max {
			max = d
		}
	}
	return max
}

// Row returns the column indices and values of row i (aliases storage).
func (m *Matrix) Row(i int) ([]int32, []float32) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns element (i, j), 0 if absent.
func (m *Matrix) At(i, j int) float32 {
	cols, vals := m.Row(i)
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return vals[k]
	}
	return 0
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{
		N:      m.N,
		RowPtr: append([]int32(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]float32(nil), m.Val...),
	}
}

// Compact returns a copy of the matrix whose three flat arrays are
// freshly allocated at exact length (no growth slack from incremental
// construction) — the arena-style layout the execution planner's
// Prepare step hands the kernels, so the sparse-metadata walks of a
// planned dispatch touch densely packed storage.
func (m *Matrix) Compact() *Matrix {
	c := &Matrix{
		N:      m.N,
		RowPtr: make([]int32, len(m.RowPtr)),
		ColIdx: make([]int32, len(m.ColIdx)),
		Val:    make([]float32, len(m.Val)),
	}
	copy(c.RowPtr, m.RowPtr)
	copy(c.ColIdx, m.ColIdx)
	copy(c.Val, m.Val)
	return c
}

// FromEntries builds a CSR matrix from (row, col, val) triplets.
// Duplicate entries are summed.
func FromEntries(n int, rows, cols []int32, vals []float32) (*Matrix, error) {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return nil, fmt.Errorf("csr: triplet arrays disagree: %d %d %d", len(rows), len(cols), len(vals))
	}
	type ent struct {
		c int32
		v float32
	}
	adj := make([][]ent, n)
	for k := range rows {
		r, c := rows[k], cols[k]
		if r < 0 || int(r) >= n || c < 0 || int(c) >= n {
			return nil, fmt.Errorf("csr: entry (%d,%d) out of range", r, c)
		}
		adj[r] = append(adj[r], ent{c, vals[k]})
	}
	m := &Matrix{N: n, RowPtr: make([]int32, n+1)}
	for r := 0; r < n; r++ {
		sort.Slice(adj[r], func(i, j int) bool { return adj[r][i].c < adj[r][j].c })
		var lastCol int32 = -1
		for _, e := range adj[r] {
			if e.c == lastCol {
				m.Val[len(m.Val)-1] += e.v
				continue
			}
			m.ColIdx = append(m.ColIdx, e.c)
			m.Val = append(m.Val, e.v)
			lastCol = e.c
		}
		m.RowPtr[r+1] = int32(len(m.ColIdx))
	}
	return m, nil
}

// FromGraph converts a graph's adjacency structure to CSR. Unweighted
// edges become 1.0.
func FromGraph(g *graph.Graph) *Matrix {
	rowPtr, colIdx, weights := g.CSR()
	m := &Matrix{
		N:      g.N(),
		RowPtr: append([]int32(nil), rowPtr...),
		ColIdx: append([]int32(nil), colIdx...),
	}
	if weights != nil {
		m.Val = append([]float32(nil), weights...)
	} else {
		m.Val = make([]float32, len(colIdx))
		for i := range m.Val {
			m.Val[i] = 1
		}
	}
	return m
}

// FromBitMatrix converts a binary matrix to CSR with unit values.
func FromBitMatrix(b *bitmat.Matrix) *Matrix {
	n := b.N()
	m := &Matrix{N: n, RowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if b.Get(i, j) {
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Val = append(m.Val, 1)
			}
		}
		m.RowPtr[i+1] = int32(len(m.ColIdx))
	}
	return m
}

// ToBitMatrix returns the sparsity structure as a bit matrix.
func (m *Matrix) ToBitMatrix() *bitmat.Matrix {
	b := bitmat.New(m.N)
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			b.Set(i, int(c))
		}
	}
	return b
}

// ToDense expands to a dense matrix (for small-scale validation).
func (m *Matrix) ToDense() *dense.Matrix {
	d := dense.NewMatrix(m.N, m.N)
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			d.Set(i, int(c), vals[k])
		}
	}
	return d
}

// Permute returns P A Pᵀ for the vertex renumbering perm (new position
// i holds original vertex perm[i]) — the weighted counterpart of
// bitmat.Matrix.Permute.
func (m *Matrix) Permute(perm []int) (*Matrix, error) {
	if len(perm) != m.N {
		return nil, fmt.Errorf("csr: permutation length %d != n %d", len(perm), m.N)
	}
	inv := make([]int32, m.N)
	for newPos, old := range perm {
		inv[old] = int32(newPos)
	}
	out := &Matrix{N: m.N, RowPtr: make([]int32, m.N+1)}
	out.ColIdx = make([]int32, 0, len(m.ColIdx))
	out.Val = make([]float32, 0, len(m.Val))
	type ent struct {
		c int32
		v float32
	}
	var buf []ent
	for newI := 0; newI < m.N; newI++ {
		cols, vals := m.Row(perm[newI])
		buf = buf[:0]
		for k, c := range cols {
			buf = append(buf, ent{inv[c], vals[k]})
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i].c < buf[j].c })
		for _, e := range buf {
			out.ColIdx = append(out.ColIdx, e.c)
			out.Val = append(out.Val, e.v)
		}
		out.RowPtr[newI+1] = int32(len(out.ColIdx))
	}
	return out, nil
}

// Transpose returns Aᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := &Matrix{N: m.N, RowPtr: make([]int32, m.N+1)}
	counts := make([]int32, m.N)
	for _, c := range m.ColIdx {
		counts[c]++
	}
	for i := 0; i < m.N; i++ {
		out.RowPtr[i+1] = out.RowPtr[i] + counts[i]
	}
	out.ColIdx = make([]int32, len(m.ColIdx))
	out.Val = make([]float32, len(m.Val))
	pos := append([]int32(nil), out.RowPtr[:m.N]...)
	for r := 0; r < m.N; r++ {
		cols, vals := m.Row(r)
		for k, c := range cols {
			p := pos[c]
			out.ColIdx[p] = int32(r)
			out.Val[p] = vals[k]
			pos[c]++
		}
	}
	return out
}

// SymNormalized returns D^{-1/2} (A + I) D^{-1/2}, the GCN-style
// symmetric normalization with self-loops, where D is the degree matrix
// of A + I.
func SymNormalized(g *graph.Graph) *Matrix {
	n := g.N()
	deg := make([]float64, n)
	for u := 0; u < n; u++ {
		deg[u] = float64(g.Degree(u))
		if !g.HasEdge(u, u) {
			deg[u]++ // the added self-loop
		}
	}
	invSqrt := make([]float32, n)
	for u := range deg {
		if deg[u] > 0 {
			invSqrt[u] = float32(1 / math.Sqrt(deg[u]))
		}
	}
	m := &Matrix{N: n, RowPtr: make([]int32, n+1)}
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		hasSelf := false
		for _, v := range nbrs {
			if int(v) == u {
				hasSelf = true
			}
		}
		// Merge the self-loop into the sorted neighbor walk.
		emit := func(v int32) {
			m.ColIdx = append(m.ColIdx, v)
			m.Val = append(m.Val, invSqrt[u]*invSqrt[v])
		}
		emitted := false
		for _, v := range nbrs {
			if !hasSelf && !emitted && v > int32(u) {
				emit(int32(u))
				emitted = true
			}
			emit(v)
		}
		if !hasSelf && !emitted {
			emit(int32(u))
		}
		m.RowPtr[u+1] = int32(len(m.ColIdx))
	}
	return m
}

// RowNormalized returns D^{-1} A (mean aggregation, GraphSAGE style).
func RowNormalized(g *graph.Graph) *Matrix {
	m := FromGraph(g)
	for u := 0; u < m.N; u++ {
		_, vals := m.Row(u)
		if len(vals) == 0 {
			continue
		}
		inv := float32(1) / float32(len(vals))
		for k := range vals {
			vals[k] *= inv
		}
	}
	return m
}

// ScaledLaplacian returns 2L/lambdaMax - I where L = I - D^{-1/2} A
// D^{-1/2}, using the common lambdaMax ≈ 2 approximation, i.e.
// -D^{-1/2} A D^{-1/2}. ChebNet's recurrence operates on this matrix.
func ScaledLaplacian(g *graph.Graph) *Matrix {
	n := g.N()
	deg := make([]float64, n)
	for u := 0; u < n; u++ {
		deg[u] = float64(g.Degree(u))
	}
	invSqrt := make([]float32, n)
	for u := range deg {
		if deg[u] > 0 {
			invSqrt[u] = float32(1 / math.Sqrt(deg[u]))
		}
	}
	m := &Matrix{N: n, RowPtr: make([]int32, n+1)}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			m.ColIdx = append(m.ColIdx, v)
			m.Val = append(m.Val, -invSqrt[u]*invSqrt[v])
		}
		m.RowPtr[u+1] = int32(len(m.ColIdx))
	}
	return m
}
