package graphalgs

import (
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func TestKruskalOnKnownGraph(t *testing.T) {
	// Square with one diagonal; weights force a unique MST.
	g, err := graph.NewFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	w := map[[2]int]float64{
		{0, 1}: 1, {1, 2}: 4, {2, 3}: 2, {0, 3}: 3, {0, 2}: 5,
	}
	weight := func(u, v int) float64 {
		if u > v {
			u, v = v, u
		}
		return w[[2]int{u, v}]
	}
	mst, total := Kruskal(g, weight)
	if len(mst) != 3 {
		t.Fatalf("MST has %d edges, want 3", len(mst))
	}
	if total != 1+2+3 {
		t.Errorf("MST weight %v, want 6", total)
	}
}

func TestKruskalSpanningForest(t *testing.T) {
	g, _ := graph.NewFromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 3}})
	mst, _ := Kruskal(g, nil)
	// Components: {0,1,2}: 2 edges, {3,4,5}: 2 edges, {6}: 0.
	if len(mst) != 4 {
		t.Errorf("forest has %d edges, want 4", len(mst))
	}
}

func TestMSTWeightInvariantUnderReordering(t *testing.T) {
	// The paper's point: a SOGRE-reordered graph is the same graph, so
	// symmetric-matrix algorithms give the same answers.
	g := graph.ErdosRenyi(80, 0.1, 3)
	weight := func(u, v int) float64 {
		if u > v {
			u, v = v, u
		}
		return float64((u*131 + v*7) % 97)
	}
	_, total := Kruskal(g, weight)
	res, err := core.Reorder(g.ToBitMatrix(), pattern.NM(2, 4), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := g.ApplyPermutation(res.Perm)
	if err != nil {
		t.Fatal(err)
	}
	// Weight function must follow the renaming: edge (i,j) in rg is
	// (perm[i], perm[j]) originally.
	rweight := func(u, v int) float64 { return weight(res.Perm[u], res.Perm[v]) }
	_, rtotal := Kruskal(rg, rweight)
	if total != rtotal {
		t.Errorf("MST weight changed under reordering: %v -> %v", total, rtotal)
	}
}

func TestSpectralBisectionFindsCommunities(t *testing.T) {
	g, labels := graph.SBM([]int{40, 40}, 0.4, 0.01, 5)
	side := SpectralBisection(g, 300, 1)
	// The bisection should align with the planted communities (up to
	// global flip).
	agree := 0
	for i := range labels {
		if side[i] == labels[i] {
			agree++
		}
	}
	if agree < len(labels)/2 {
		agree = len(labels) - agree
	}
	if float64(agree)/float64(len(labels)) < 0.9 {
		t.Errorf("bisection recovers %d/%d of the planted partition", agree, len(labels))
	}
	cut := CutSize(g, side)
	if cut > g.NumUndirectedEdges()/4 {
		t.Errorf("cut %d too large", cut)
	}
}

func TestSpectralCutInvariantUnderReordering(t *testing.T) {
	g, _ := graph.SBM([]int{30, 30}, 0.4, 0.01, 9)
	side := SpectralBisection(g, 300, 2)
	cut := CutSize(g, side)
	res, err := core.Reorder(g.ToBitMatrix(), pattern.NM(2, 4), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := g.ApplyPermutation(res.Perm)
	if err != nil {
		t.Fatal(err)
	}
	rside := SpectralBisection(rg, 300, 2)
	rcut := CutSize(rg, rside)
	// Same graph, so the achievable cut is the same; allow slack for
	// the randomized start.
	if rcut > cut*2+4 && cut > 0 {
		t.Errorf("reordered cut %d far from original %d", rcut, cut)
	}
}

func TestVerifyIsomorphism(t *testing.T) {
	g := graph.BarabasiAlbert(60, 3, 7)
	perm := rand.New(rand.NewSource(1)).Perm(60)
	h, err := g.ApplyPermutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIsomorphism(g, h, perm); err != nil {
		t.Errorf("valid isomorphism rejected: %v", err)
	}
	// Wrong permutation is rejected.
	bad := rand.New(rand.NewSource(2)).Perm(60)
	if err := VerifyIsomorphism(g, h, bad); err == nil {
		t.Error("wrong permutation accepted")
	}
	// Different graph is rejected.
	other := graph.ErdosRenyi(60, 0.1, 3)
	if err := VerifyIsomorphism(g, other, perm); err == nil {
		t.Error("non-isomorphic graphs accepted")
	}
	// Size mismatch.
	small := graph.Grid2D(2, 2)
	if err := VerifyIsomorphism(g, small, perm); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestWLHashInvariance(t *testing.T) {
	g := graph.BarabasiAlbert(100, 3, 11)
	h1 := WeisfeilerLehmanHash(g, 3)
	perm := rand.New(rand.NewSource(3)).Perm(100)
	pg, _ := g.ApplyPermutation(perm)
	h2 := WeisfeilerLehmanHash(pg, 3)
	if h1 != h2 {
		t.Error("WL hash changed under renumbering")
	}
	other := graph.BarabasiAlbert(100, 3, 12)
	if WeisfeilerLehmanHash(other, 3) == h1 {
		t.Log("different graphs collided (possible but unlikely)")
	}
}

func TestSOGREKeepsSymmetryJigsawDoesNot(t *testing.T) {
	// The headline qualitative comparison of the paper's Section 6.
	g := graph.BarabasiAlbert(96, 3, 13)
	m := g.ToBitMatrix()
	p := pattern.NM(2, 4)
	res, err := core.Reorder(m, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !IsValidUndirectedAdjacency(res.Matrix) {
		t.Error("SOGRE output is not a valid undirected adjacency")
	}
	jig := baselines.Jigsaw(m, p)
	if IsValidUndirectedAdjacency(jig.Matrix) {
		t.Log("Jigsaw output happened to stay symmetric on this input")
	}
	// And the SOGRE result is certifiably the same graph.
	rg, err := g.ApplyPermutation(res.Perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIsomorphism(g, rg, res.Perm); err != nil {
		t.Errorf("SOGRE reordering is not an isomorphism: %v", err)
	}
	if WeisfeilerLehmanHash(g, 3) != WeisfeilerLehmanHash(rg, 3) {
		t.Error("WL fingerprints differ after SOGRE reorder")
	}
}

func BenchmarkKruskal(b *testing.B) {
	g := graph.BarabasiAlbert(2048, 4, 1)
	w := func(u, v int) float64 { return float64((u*31 + v*17) % 1009) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Kruskal(g, w)
	}
}

func BenchmarkSpectralBisection(b *testing.B) {
	g, _ := graph.SBM([]int{512, 512}, 0.02, 0.001, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SpectralBisection(g, 100, 1)
	}
}
