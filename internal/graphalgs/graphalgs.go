// Package graphalgs implements the symmetry-dependent graph algorithms
// the paper cites as the reason graph reordering must preserve
// adjacency symmetry (Sections 1 and 6): Kruskal's minimum spanning
// tree, spectral partitioning, and isomorphism verification under
// vertex renumbering. They all operate directly on the (symmetric)
// adjacency structure, so a SOGRE-reordered graph runs them unchanged,
// while a column-only (Jigsaw-style) matrix reordering produces an
// asymmetric matrix that is no longer a valid undirected adjacency.
package graphalgs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/graph"
)

// unionFind is a weighted quick-union structure with path compression.
type unionFind struct {
	parent []int32
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

func (uf *unionFind) find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int32) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}

// MSTEdge is one edge of a spanning forest.
type MSTEdge struct {
	U, V   int
	Weight float64
}

// Kruskal computes a minimum spanning forest of the graph using the
// given edge-weight function (nil means unit weights, yielding an
// arbitrary spanning forest). Requires the symmetric adjacency
// structure: each undirected edge is taken once from the u < v side.
func Kruskal(g *graph.Graph, weight func(u, v int) float64) ([]MSTEdge, float64) {
	var edges []MSTEdge
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) <= u {
				continue
			}
			w := 1.0
			if weight != nil {
				w = weight(u, int(v))
			}
			edges = append(edges, MSTEdge{U: u, V: int(v), Weight: w})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].Weight != edges[b].Weight {
			return edges[a].Weight < edges[b].Weight
		}
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
	uf := newUnionFind(g.N())
	var mst []MSTEdge
	var total float64
	for _, e := range edges {
		if uf.union(int32(e.U), int32(e.V)) {
			mst = append(mst, e)
			total += e.Weight
		}
	}
	return mst, total
}

// SpectralBisection partitions the graph into two halves using the
// Fiedler vector of the graph Laplacian L = D - A, estimated by
// deflated power iteration. The method's correctness depends on L
// being symmetric — exactly the property SOGRE preserves and column
// reordering destroys. Returns a side label (0/1) per vertex.
func SpectralBisection(g *graph.Graph, iters int, seed int64) []int {
	n := g.N()
	if iters <= 0 {
		iters = 200
	}
	deg := make([]float64, n)
	maxDeg := 0.0
	for u := 0; u < n; u++ {
		deg[u] = float64(g.Degree(u))
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Power iteration on M = (2*maxDeg) I - L, whose dominant
	// eigenvectors are L's smallest. Deflate the constant vector (L's
	// kernel) to land on the Fiedler vector.
	shift := 2*maxDeg + 1
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, n)
	for it := 0; it < iters; it++ {
		// Deflate: remove mean.
		var mean float64
		for _, v := range x {
			mean += v
		}
		mean /= float64(n)
		for i := range x {
			x[i] -= mean
		}
		// y = (shift I - L) x = shift x - deg.x + A x.
		for i := range y {
			y[i] = (shift - deg[i]) * x[i]
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				y[u] += x[v]
			}
		}
		// Normalize.
		var norm float64
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		for i := range y {
			x[i] = y[i] / norm
		}
	}
	side := make([]int, n)
	for i, v := range x {
		if v >= 0 {
			side[i] = 1
		}
	}
	return side
}

// CutSize counts edges crossing a 2-way partition.
func CutSize(g *graph.Graph, side []int) int {
	cut := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u && side[u] != side[v] {
				cut++
			}
		}
	}
	return cut
}

// VerifyIsomorphism checks that perm is a graph isomorphism from g to
// h: edge (u, v) in g iff (perm⁻¹ applied) edge in h, where h's vertex
// i corresponds to g's vertex perm[i] — the relationship a SOGRE
// reordering guarantees by construction.
func VerifyIsomorphism(g, h *graph.Graph, perm []int) error {
	if g.N() != h.N() || len(perm) != g.N() {
		return fmt.Errorf("graphalgs: size mismatch")
	}
	inv := make([]int, g.N())
	seen := make([]bool, g.N())
	for newPos, old := range perm {
		if old < 0 || old >= g.N() || seen[old] {
			return fmt.Errorf("graphalgs: invalid permutation at %d", newPos)
		}
		seen[old] = true
		inv[old] = newPos
	}
	if g.NumEdges() != h.NumEdges() {
		return fmt.Errorf("graphalgs: edge counts differ: %d vs %d", g.NumEdges(), h.NumEdges())
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if !h.HasEdge(inv[u], inv[v]) {
				return fmt.Errorf("graphalgs: edge (%d,%d) has no image", u, v)
			}
		}
	}
	return nil
}

// IsValidUndirectedAdjacency reports whether a bit matrix can serve as
// an undirected graph's adjacency matrix (i.e. is symmetric). Jigsaw
// column reordering typically fails this check; SOGRE output never
// does.
func IsValidUndirectedAdjacency(m *bitmat.Matrix) bool {
	return m.IsSymmetric()
}

// WeisfeilerLehmanHash computes a 1-WL color-refinement fingerprint of
// the graph, invariant under vertex renumbering — a quick isomorphism
// witness for tests: reordered graphs must hash identically.
func WeisfeilerLehmanHash(g *graph.Graph, rounds int) uint64 {
	if rounds <= 0 {
		rounds = 3
	}
	n := g.N()
	colors := make([]uint64, n)
	for u := 0; u < n; u++ {
		colors[u] = uint64(g.Degree(u)) + 1
	}
	next := make([]uint64, n)
	for r := 0; r < rounds; r++ {
		for u := 0; u < n; u++ {
			sig := make([]uint64, 0, g.Degree(u))
			for _, v := range g.Neighbors(u) {
				sig = append(sig, colors[v])
			}
			sort.Slice(sig, func(a, b int) bool { return sig[a] < sig[b] })
			h := colors[u]*1099511628211 + 14695981039346656037
			for _, s := range sig {
				h = (h ^ s) * 1099511628211
			}
			next[u] = h
		}
		colors, next = next, colors
	}
	// Order-independent combination.
	sorted := append([]uint64(nil), colors...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var out uint64 = 14695981039346656037
	for _, c := range sorted {
		out = (out ^ c) * 1099511628211
	}
	return out
}
