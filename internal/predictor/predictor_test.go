package predictor

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func TestExtractFeatureRanges(t *testing.T) {
	g := graph.Banded(256, 3, 0.8, 1)
	f := Extract(g)
	if f[0] != 8 {
		t.Errorf("log2 n = %v, want 8", f[0])
	}
	if f[1] >= 0 {
		t.Errorf("log density = %v, want negative", f[1])
	}
	if f[2] <= 0 {
		t.Error("avg degree missing")
	}
	if f[6] > 0.1 {
		t.Errorf("banded locality = %v, want small", f[6])
	}
	// Scrambling destroys locality.
	perm := graph.DegreeOrder(g)
	_ = perm
	scrambled := graph.ErdosRenyi(256, 6.0/256, 2)
	fs := Extract(scrambled)
	if fs[6] <= f[6] {
		t.Errorf("random locality %v should exceed banded %v", fs[6], f[6])
	}
	// Empty graph is safe.
	empty, _ := graph.NewFromEdges(0, nil)
	_ = Extract(empty)
}

func TestDuplicateRowFeature(t *testing.T) {
	base := graph.Banded(16, 1, 1.0, 1)
	blown := graph.Blowup(base, 8)
	f := Extract(blown)
	if f[7] < 0.9 {
		t.Errorf("blowup duplicate-row fraction = %v, want ~1", f[7])
	}
	er := graph.ErdosRenyi(128, 0.05, 3)
	fe := Extract(er)
	if fe[7] > 0.4 {
		t.Errorf("ER duplicate fraction = %v, want small", fe[7])
	}
}

func collectionGraphs(scale float64, seed int64) []*graph.Graph {
	col := datasets.SuiteSparseCollection(datasets.CollectionSpec{Scale: scale, Seed: seed, MaxN: 768})
	out := make([]*graph.Graph, len(col))
	for i, e := range col {
		out[i] = e.G
	}
	return out
}

func TestTrainPredictEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("training in short mode")
	}
	opt := core.AutoOptions{MaxM: 16, MaxV: 8}
	train := collectionGraphs(0.015, 11)
	examples, err := BuildExamples(train, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) < 10 {
		t.Fatalf("only %d examples", len(examples))
	}
	m, err := Train(examples, TrainConfig{Epochs: 200, LR: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Formats) < 2 {
		t.Fatalf("model saw %d formats", len(m.Formats))
	}
	// In-sample accuracy should beat the majority-class baseline.
	counts := map[string]int{}
	for _, ex := range examples {
		counts[ex.Label.String()]++
	}
	majority := 0
	for _, c := range counts {
		if c > majority {
			majority = c
		}
	}
	hits := 0
	for _, ex := range examples {
		if m.Predict(ex.F) == ex.Label {
			hits++
		}
	}
	if hits < majority {
		t.Errorf("in-sample hits %d below majority baseline %d of %d", hits, majority, len(examples))
	}
	// Held-out evaluation runs and produces sane rates.
	test := collectionGraphs(0.012, 99)
	top1, works, err := Evaluate(m, test, opt)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0 || top1 > 1 || works < 0 || works > 1 {
		t.Errorf("rates out of range: %v %v", top1, works)
	}
	t.Logf("held-out: top1=%.2f works=%.2f over %d graphs", top1, works, len(test))
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Error("want error for empty training set")
	}
	m := &Model{Formats: []pattern.VNM{pattern.NM(2, 4)}, W: [][]float64{make([]float64, NumFeatures)}, B: []float64{0}}
	for j := 0; j < NumFeatures; j++ {
		m.Std[j] = 1
	}
	if got := m.Predict(Features{}); got != pattern.NM(2, 4) {
		t.Errorf("single-class predict = %v", got)
	}
	if _, _, err := Evaluate(m, nil, core.AutoOptions{}); err == nil {
		t.Error("want error for empty evaluation set")
	}
}
