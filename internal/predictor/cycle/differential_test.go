package cycle_test

import (
	"testing"
	"time"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predictor/cycle"
	"repro/internal/spmm"
	"repro/internal/sptc"
	"repro/internal/venom"
)

// bestNs is the bench timing methodology: best of repeats after one
// untimed warmup.
func bestNs(repeats int, fn func()) float64 {
	fn()
	best := time.Duration(1<<63 - 1)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

// TestCalibratedOrderingMatchesMeasured is the differential test
// between the two halves of the planner's cost estimate. It documents
// the er-8k inversion from BENCH_spmm.json: on a uniform-random graph
// the raw cycle model prefers the V:N:M/SPTC hybrid over CSR (it
// models sparse-tensor-core throughput, ~3 flop/cycle vs 1), but this
// host's measured wall clock can disagree — a CPU has no sparse tensor
// cores, so the hybrid's modeled advantage does not materialize. The
// calibrated predictor (model cycles x measured ns/cycle) must side
// with the measurement, whichever way it falls on this machine.
func TestCalibratedOrderingMatchesMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock differential skipped in -short mode")
	}
	const (
		n       = 2048
		deg     = 8
		h       = 64
		seed    = 808
		repeats = 5
	)
	g := graph.ErdosRenyi(n, float64(deg)/n, seed)
	a := csr.FromGraph(g).Compact()
	comp, resid, err := venom.SplitToConform(a, pattern.New(4, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	resid = resid.Compact()
	b := dense.NewMatrix(a.N, h)
	b.Randomize(1, seed+1)
	cm := sptc.DefaultCostModel()
	prof := cycle.ProfileOf(a, comp, resid, h, cm)

	// Half 1: the raw cycle model. On the er regime it must prefer the
	// hybrid — this is the modeled-GPU side of the inversion, and it is
	// deterministic.
	csrCycles := cycle.ModelCycles(cm, cycle.KernelCSRSerial, prof)
	hybCycles := cycle.ModelCycles(cm, cycle.KernelHybridSerial, prof)
	if hybCycles >= csrCycles {
		t.Fatalf("cycle model no longer prefers hybrid on er (csr=%v, hybrid=%v); the inversion premise is gone", csrCycles, hybCycles)
	}

	// Half 2: this machine's wall clock, measured the way bench does.
	var outA, scratchA dense.Arena
	c := outA.Matrix(a.N, h)
	s := scratchA.Matrix(a.N, h)
	csrNs := bestNs(repeats, func() { spmm.CSRSerialInto(c, a, b) })
	hybNs := bestNs(repeats, func() { spmm.HybridSerialInto(c, s, comp, resid, b) })
	if csrNs < hybNs {
		t.Logf("er inversion present on this host: measured csr-serial %.0fns < hybrid-serial %.0fns despite model cycles %v > %v",
			csrNs, hybNs, csrCycles, hybCycles)
	}

	// The calibrated predictor must rank the serial pair the same way
	// the measurement does.
	cal, err := plan.Measure(plan.MeasureConfig{Seed: seed, Workers: 1, Repeats: repeats, ProbeN: n, ProbeDegree: deg, ProbeH: h})
	if err != nil {
		t.Fatal(err)
	}
	pl := &plan.Planner{Calib: cal, Workers: 1}
	predCSR := pl.PredictNs(cycle.KernelCSRSerial, prof)
	predHyb := pl.PredictNs(cycle.KernelHybridSerial, prof)
	if (predCSR < predHyb) != (csrNs < hybNs) {
		t.Fatalf("calibrated ordering disagrees with measurement: predicted csr=%.0f hybrid=%.0f, measured csr=%.0f hybrid=%.0f",
			predCSR, predHyb, csrNs, hybNs)
	}
	// And the resulting decision is the measured winner.
	d := pl.Choose(prof)
	want := cycle.KernelCSRSerial
	if hybNs < csrNs {
		want = cycle.KernelHybridSerial
	}
	if d.Kernel != want {
		t.Fatalf("planner chose %s, measured winner is %s (predictions %+v)", d.Kernel, want, d.Predictions)
	}
}
