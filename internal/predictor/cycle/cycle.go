package cycle

import (
	"repro/internal/csr"
	"repro/internal/sptc"
	"repro/internal/venom"
)

// KernelClass names one executable kernel choice the execution planner
// (internal/plan) ranks: the CUDA-core CSR kernel or the V:N:M/SPTC
// hybrid, each in its serial and sched-parallel form. The string values
// match the kernel names internal/bench emits, so planner decisions and
// benchmark rows speak the same vocabulary.
type KernelClass string

const (
	KernelCSRSerial      KernelClass = "csr-serial"
	KernelCSRParallel    KernelClass = "csr-parallel"
	KernelHybridSerial   KernelClass = "hybrid-serial"
	KernelHybridParallel KernelClass = "hybrid-parallel"
)

// KernelClasses returns every kernel class in canonical (sorted-string)
// order — the deterministic iteration order the planner and the
// calibration table both use.
func KernelClasses() []KernelClass {
	return []KernelClass{
		KernelCSRParallel,
		KernelCSRSerial,
		KernelHybridParallel,
		KernelHybridSerial,
	}
}

// IsParallel reports whether the class runs on the sched pool (its
// serial twin runs inline on the caller).
func (k KernelClass) IsParallel() bool {
	return k == KernelCSRParallel || k == KernelHybridParallel
}

// IsHybrid reports whether the class consumes the V:N:M compressed
// split (and therefore requires conforming operands).
func (k KernelClass) IsHybrid() bool {
	return k == KernelHybridSerial || k == KernelHybridParallel
}

// OpProfile captures the structural facts of one SpMM dispatch that the
// cycle model consumes. Everything here is cheap to extract (one pass
// over the operands) and invariant under row relabelings that preserve
// the V:N:M block structure, which is what makes planner decisions
// metamorphically stable (internal/check).
type OpProfile struct {
	// N and NNZ describe the sparse operand; H is the dense width.
	N   int
	NNZ int
	H   int
	// Fragments and UsedCols are the SPTC instruction statistics of the
	// compressed half of the hybrid split (zero when no split exists).
	Fragments int
	UsedCols  int
	Blocks    int
	// ResidNNZ and ResidRows describe the CSR residual outside the
	// pattern (zero after a fully conforming reorder).
	ResidNNZ  int
	ResidRows int
	// HasSplit records whether a compressed split was profiled at all;
	// without one the hybrid classes are not eligible.
	HasSplit bool
}

// ProfileOf extracts the dispatch profile of (a, comp, resid, h). comp
// and resid may be nil when only the CSR classes are candidates.
func ProfileOf(a *csr.Matrix, comp *venom.Matrix, resid *csr.Matrix, h int, cm sptc.CostModel) OpProfile {
	p := OpProfile{N: a.N, NNZ: a.NNZ(), H: h}
	if comp != nil {
		s := sptc.Stats(comp, cm)
		p.Fragments = s.Fragments
		p.UsedCols = s.UsedCols
		p.Blocks = s.Blocks
		p.HasSplit = true
		if resid != nil {
			p.ResidNNZ = resid.NNZ()
			p.ResidRows = resid.N
		}
	}
	return p
}

// ModelCycles returns the cost-model cycles of running kernel class k
// over profile p — the hardware-independent half of the planner's cost
// estimate. A serial class and its parallel twin cost the same model
// cycles (the model charges work, not scheduling); what separates them
// in practice is the measured ns-per-cycle coefficient internal/plan
// calibrates, which is exactly the gap the er-8k hybrid inversion in
// BENCH_spmm.json exposes (model says 3.0 flop/cycle for hybrid vs 1.0
// for CSR; the CPU, lacking sparse tensor cores, runs hybrid slower).
// Returns 0 for a hybrid class when p has no split.
func ModelCycles(cm sptc.CostModel, k KernelClass, p OpProfile) float64 {
	switch k {
	case KernelCSRSerial, KernelCSRParallel:
		return cm.CSRSpMMCycles(p.NNZ, p.N, p.H)
	case KernelHybridSerial, KernelHybridParallel:
		if !p.HasSplit {
			return 0
		}
		c := cm.VNMSpMMCycles(sptc.VNMStats{
			Fragments: p.Fragments,
			UsedCols:  p.UsedCols,
			Blocks:    p.Blocks,
		}, p.H)
		if p.ResidNNZ > 0 {
			c += cm.CSRSpMMCycles(p.ResidNNZ, p.ResidRows, p.H)
		}
		return c
	}
	return 0
}
