package cycle_test

import (
	"math"
	"testing"

	"repro/internal/csr"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/predictor/cycle"
	"repro/internal/sptc"
	"repro/internal/venom"
)

// goldenGraph mirrors datasets.Family's generator mapping for the
// three golden regimes without importing datasets (which sits above
// this package in the dependency order).
func goldenGraph(t *testing.T, family string, n int, degree float64, seed int64) *graph.Graph {
	t.Helper()
	switch family {
	case "powerlaw":
		m := int(degree / 4)
		if m < 1 {
			m = 1
		}
		return graph.BarabasiAlbert(n, m, seed)
	case "banded":
		return graph.Banded(n, int(degree/1.6)+1, 0.8, seed)
	case "er":
		return graph.ErdosRenyi(n, degree/float64(n), seed)
	}
	t.Fatalf("unknown golden family %q", family)
	return nil
}

// goldenProfile builds the fixed regime operands the golden values
// were computed from: the datasets.Family generators at seed 7, split
// at 4:2:8, dense width 64.
func goldenProfile(t *testing.T, family string, n int, degree float64) cycle.OpProfile {
	t.Helper()
	g := goldenGraph(t, family, n, degree, 7)
	a := csr.FromGraph(g)
	comp, resid, err := venom.SplitToConform(a, pattern.New(4, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	return cycle.ProfileOf(a, comp, resid, 64, sptc.DefaultCostModel())
}

// TestModelCyclesGolden pins the cycle model's value for every kernel
// class on one graph per regime family. The values are pure functions
// of (cost model, operand structure); a change here means either the
// cost model or the compression layout changed, both of which must be
// deliberate (they shift every planner decision and BENCH row).
func TestModelCyclesGolden(t *testing.T) {
	cm := sptc.DefaultCostModel()
	cases := []struct {
		family string
		n      int
		degree float64
		golden map[cycle.KernelClass]float64
	}{
		{"er", 1024, 8, map[cycle.KernelClass]float64{
			cycle.KernelCSRSerial:      1.050112e+06,
			cycle.KernelCSRParallel:    1.050112e+06,
			cycle.KernelHybridSerial:   324736,
			cycle.KernelHybridParallel: 324736,
		}},
		{"powerlaw", 1024, 8, map[cycle.KernelClass]float64{
			cycle.KernelCSRSerial:      524032,
			cycle.KernelCSRParallel:    524032,
			cycle.KernelHybridSerial:   165088,
			cycle.KernelHybridParallel: 165088,
		}},
		{"banded", 1024, 6, map[cycle.KernelClass]float64{
			cycle.KernelCSRSerial:      833792,
			cycle.KernelCSRParallel:    833792,
			cycle.KernelHybridSerial:   412448,
			cycle.KernelHybridParallel: 412448,
		}},
	}
	for _, tc := range cases {
		p := goldenProfile(t, tc.family, tc.n, tc.degree)
		for _, k := range cycle.KernelClasses() {
			got := cycle.ModelCycles(cm, k, p)
			want := tc.golden[k]
			if math.Abs(got-want) > 1e-6*want {
				t.Errorf("%s/%s: ModelCycles = %v, want golden %v", tc.family, k, got, want)
			}
		}
	}
}

// TestModelCyclesSerialParallelTwins: a serial class and its parallel
// twin cost identical model cycles — the model charges work, not
// scheduling. The measured ns-per-cycle calibration (internal/plan) is
// what separates the twins.
func TestModelCyclesSerialParallelTwins(t *testing.T) {
	cm := sptc.DefaultCostModel()
	p := goldenProfile(t, "er", 512, 8)
	if s, par := cycle.ModelCycles(cm, cycle.KernelCSRSerial, p),
		cycle.ModelCycles(cm, cycle.KernelCSRParallel, p); s != par {
		t.Errorf("csr twins disagree: serial %v parallel %v", s, par)
	}
	if s, par := cycle.ModelCycles(cm, cycle.KernelHybridSerial, p),
		cycle.ModelCycles(cm, cycle.KernelHybridParallel, p); s != par {
		t.Errorf("hybrid twins disagree: serial %v parallel %v", s, par)
	}
}

// TestModelCyclesHybridNeedsSplit: without a compressed split the
// hybrid classes are ineligible and cost zero (the planner filters
// them out before ranking).
func TestModelCyclesHybridNeedsSplit(t *testing.T) {
	cm := sptc.DefaultCostModel()
	g := goldenGraph(t, "er", 256, 6, 3)
	p := cycle.ProfileOf(csr.FromGraph(g), nil, nil, 32, cm)
	if p.HasSplit {
		t.Fatal("profile without operands claims a split")
	}
	if c := cycle.ModelCycles(cm, cycle.KernelHybridSerial, p); c != 0 {
		t.Errorf("hybrid cycles without split = %v, want 0", c)
	}
	if c := cycle.ModelCycles(cm, cycle.KernelCSRSerial, p); c <= 0 {
		t.Errorf("csr cycles without split = %v, want > 0", c)
	}
}

// TestProfileOfResidual: the residual half of the split is profiled so
// hybrid costs include the CSR cleanup for non-conforming entries.
func TestProfileOfResidual(t *testing.T) {
	cm := sptc.DefaultCostModel()
	p := goldenProfile(t, "banded", 1024, 6)
	if p.ResidNNZ == 0 {
		t.Skip("banded regime unexpectedly conforms fully")
	}
	noResid := p
	noResid.ResidNNZ = 0
	withC := cycle.ModelCycles(cm, cycle.KernelHybridSerial, p)
	withoutC := cycle.ModelCycles(cm, cycle.KernelHybridSerial, noResid)
	if withC <= withoutC {
		t.Errorf("residual entries must add cycles: with %v <= without %v", withC, withoutC)
	}
}
