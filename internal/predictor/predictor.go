// Package predictor implements the extension the paper sketches in
// Section 5.3: "It is possible to create some machine learning models
// to predict the preferred V:N:M pattern for a given matrix, akin to
// the predictors of the best sparse storage format". A small
// multinomial logistic-regression model maps cheap structural features
// of a graph to the V:N:M format the full AutoReorder search would
// pick, letting a pipeline skip the exhaustive try-every-format pass.
package predictor

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// NumFeatures is the dimensionality of the feature vector.
const NumFeatures = 8

// Features are cheap structural statistics of a graph — everything is
// O(V + E) to compute.
type Features [NumFeatures]float64

// Extract computes the feature vector of a graph:
//
//	0: log2 vertex count
//	1: log10 density
//	2: average degree
//	3: max/avg degree ratio (heavy-tail indicator)
//	4: degree coefficient of variation
//	5: fraction of rows violating 2:4 in the natural order
//	6: adjacency locality (mean |i-j|/n over edges; banded ~0)
//	7: duplicate-row fraction (rows sharing an identical neighbor hash)
func Extract(g *graph.Graph) Features {
	var f Features
	n := g.N()
	if n == 0 {
		return f
	}
	f[0] = math.Log2(float64(n))
	nnz := g.NumEdges()
	density := float64(nnz) / (float64(n) * float64(n))
	if density <= 0 {
		density = 1e-12
	}
	f[1] = math.Log10(density)
	var sum, sumSq float64
	maxDeg := 0
	for u := 0; u < n; u++ {
		d := g.Degree(u)
		sum += float64(d)
		sumSq += float64(d) * float64(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := sum / float64(n)
	f[2] = avg
	if avg > 0 {
		f[3] = float64(maxDeg) / avg
		variance := sumSq/float64(n) - avg*avg
		if variance > 0 {
			f[4] = math.Sqrt(variance) / avg
		}
	}
	// Natural-order 2:4 row violations and locality.
	viol := 0
	var locSum float64
	hashes := make(map[uint64]int, n)
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		window := map[int32]int{}
		bad := false
		var h uint64 = 1469598103934665603
		for _, v := range nbrs {
			w := v / 4
			window[w]++
			if window[w] > 2 {
				bad = true
			}
			d := float64(u) - float64(v)
			if d < 0 {
				d = -d
			}
			locSum += d / float64(n)
			h = (h ^ uint64(v)) * 1099511628211
		}
		if bad {
			viol++
		}
		hashes[h]++
	}
	f[5] = float64(viol) / float64(n)
	if nnz > 0 {
		f[6] = locSum / float64(nnz)
	}
	dup := 0
	for _, c := range hashes {
		if c > 1 {
			dup += c
		}
	}
	f[7] = float64(dup) / float64(n)
	return f
}

// Example pairs a feature vector with the format the exhaustive search
// chose.
type Example struct {
	F     Features
	Label pattern.VNM
}

// BuildExamples labels a set of graphs by running the full AutoReorder
// search on each — the expensive step the trained predictor replaces.
func BuildExamples(graphs []*graph.Graph, opt core.AutoOptions) ([]Example, error) {
	out := make([]Example, 0, len(graphs))
	for _, g := range graphs {
		auto, err := core.AutoReorder(g.ToBitMatrix(), opt)
		if err != nil {
			return nil, err
		}
		out = append(out, Example{F: Extract(g), Label: auto.Best.Pattern})
	}
	return out, nil
}

// Model is a multinomial logistic-regression classifier over the
// formats seen in training.
type Model struct {
	Formats []pattern.VNM
	W       [][]float64 // classes x NumFeatures
	B       []float64
	Mean    Features
	Std     Features
}

// TrainConfig controls model fitting.
type TrainConfig struct {
	Epochs int
	LR     float64
	Seed   int64
}

// Train fits the classifier with SGD on softmax cross-entropy.
func Train(examples []Example, cfg TrainConfig) (*Model, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("predictor: no training examples")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 300
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.1
	}
	m := &Model{}
	classOf := map[string]int{}
	labels := make([]int, len(examples))
	for i, ex := range examples {
		key := ex.Label.String()
		c, ok := classOf[key]
		if !ok {
			c = len(m.Formats)
			classOf[key] = c
			m.Formats = append(m.Formats, ex.Label)
		}
		labels[i] = c
	}
	// Standardize features.
	for _, ex := range examples {
		for j := 0; j < NumFeatures; j++ {
			m.Mean[j] += ex.F[j]
		}
	}
	for j := 0; j < NumFeatures; j++ {
		m.Mean[j] /= float64(len(examples))
	}
	for _, ex := range examples {
		for j := 0; j < NumFeatures; j++ {
			d := ex.F[j] - m.Mean[j]
			m.Std[j] += d * d
		}
	}
	for j := 0; j < NumFeatures; j++ {
		m.Std[j] = math.Sqrt(m.Std[j] / float64(len(examples)))
		if m.Std[j] < 1e-9 {
			m.Std[j] = 1
		}
	}
	nc := len(m.Formats)
	m.W = make([][]float64, nc)
	for c := range m.W {
		m.W[c] = make([]float64, NumFeatures)
	}
	m.B = make([]float64, nc)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(examples))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR / (1 + 0.01*float64(epoch))
		for _, i := range order {
			x := m.standardize(examples[i].F)
			p := m.probs(x)
			y := labels[i]
			for c := 0; c < nc; c++ {
				g := p[c]
				if c == y {
					g -= 1
				}
				for j := 0; j < NumFeatures; j++ {
					m.W[c][j] -= lr * (g*x[j] + 1e-4*m.W[c][j])
				}
				m.B[c] -= lr * g
			}
		}
	}
	return m, nil
}

func (m *Model) standardize(f Features) [NumFeatures]float64 {
	var x [NumFeatures]float64
	for j := 0; j < NumFeatures; j++ {
		x[j] = (f[j] - m.Mean[j]) / m.Std[j]
	}
	return x
}

func (m *Model) probs(x [NumFeatures]float64) []float64 {
	nc := len(m.Formats)
	logits := make([]float64, nc)
	maxL := math.Inf(-1)
	for c := 0; c < nc; c++ {
		s := m.B[c]
		for j := 0; j < NumFeatures; j++ {
			s += m.W[c][j] * x[j]
		}
		logits[c] = s
		if s > maxL {
			maxL = s
		}
	}
	var sum float64
	for c := range logits {
		logits[c] = math.Exp(logits[c] - maxL)
		sum += logits[c]
	}
	for c := range logits {
		logits[c] /= sum
	}
	return logits
}

// Predict returns the most likely format for the features.
func (m *Model) Predict(f Features) pattern.VNM {
	p := m.probs(m.standardize(f))
	best := 0
	for c := 1; c < len(p); c++ {
		if p[c] > p[best] {
			best = c
		}
	}
	return m.Formats[best]
}

// PredictGraph extracts features and predicts in one call.
func (m *Model) PredictGraph(g *graph.Graph) pattern.VNM {
	return m.Predict(Extract(g))
}

// Evaluate measures the model on held-out graphs: top-1 format
// accuracy against the exhaustive search, and the "works" rate — how
// often a single reorder at the predicted format reaches full
// conformity (the practically relevant criterion; the paper suggests
// trying a few formats, so a prediction that conforms is a success
// even if the search would have chosen a larger one).
func Evaluate(m *Model, graphs []*graph.Graph, opt core.AutoOptions) (top1, works float64, err error) {
	if len(graphs) == 0 {
		return 0, 0, fmt.Errorf("predictor: no evaluation graphs")
	}
	hits, ok := 0, 0
	for _, g := range graphs {
		bm := g.ToBitMatrix()
		auto, err := core.AutoReorder(bm, opt)
		if err != nil {
			return 0, 0, err
		}
		pred := m.PredictGraph(g)
		if pred == auto.Best.Pattern {
			hits++
		}
		if conformsAfterReorder(bm, pred, opt.Reorder) {
			ok++
		}
	}
	return float64(hits) / float64(len(graphs)), float64(ok) / float64(len(graphs)), nil
}

func conformsAfterReorder(bm *bitmat.Matrix, p pattern.VNM, opt core.Options) bool {
	res, err := core.Reorder(bm, p, opt)
	if err != nil {
		return false
	}
	return res.Conforming()
}
