package pattern

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
)

func mustMatrix(t *testing.T, rows ...string) *bitmat.Matrix {
	t.Helper()
	m, err := bitmat.FromRows(rows...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVNMString(t *testing.T) {
	if got := NM(2, 4).String(); got != "2:4" {
		t.Errorf("NM(2,4).String() = %q, want 2:4", got)
	}
	if got := New(32, 2, 8).String(); got != "32:2:8" {
		t.Errorf("New(32,2,8).String() = %q, want 32:2:8", got)
	}
}

func TestValidate(t *testing.T) {
	valid := []VNM{NM(2, 4), New(8, 2, 8), New(32, 2, 16), NM(1, 1), NM(2, 64)}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("%v.Validate() = %v, want nil", p, err)
		}
	}
	invalid := []VNM{
		{V: 1, N: 2, M: 3},   // M not power of two
		{V: 1, N: 0, M: 4},   // N too small
		{V: 1, N: 5, M: 4},   // N > M
		{V: 0, N: 2, M: 4},   // V too small
		{V: 1, N: 2, M: 128}, // M too large
		{V: 1, N: 2, M: 4, K: -1},
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v.Validate() = nil, want error", p)
		}
	}
}

func TestEffK(t *testing.T) {
	if got := NM(2, 4).EffK(); got != DefaultK {
		t.Errorf("default EffK = %d, want %d", got, DefaultK)
	}
	if got := (VNM{V: 1, N: 2, M: 4, K: 2}).EffK(); got != 2 {
		t.Errorf("explicit EffK = %d, want 2", got)
	}
}

func TestVectorValid(t *testing.T) {
	p := NM(2, 4)
	for _, tc := range []struct {
		bits  uint64
		valid bool
	}{
		{0b0000, true},
		{0b0001, true},
		{0b0011, true},
		{0b1010, true},
		{0b0111, false},
		{0b1111, false},
	} {
		if got := p.VectorValid(tc.bits); got != tc.valid {
			t.Errorf("VectorValid(%04b) = %v, want %v", tc.bits, got, tc.valid)
		}
	}
}

func TestPScoreSmall(t *testing.T) {
	// 4x4 matrix, pattern 2:4 -> one segment per row.
	// Rows 0 and 2 have 3 nonzeros (invalid), rows 1, 3 valid.
	m := mustMatrix(t,
		"1110",
		"1100",
		"0111",
		"0000",
	)
	p := NM(2, 4)
	if got := PScore(m, p); got != 2 {
		t.Errorf("PScore = %d, want 2", got)
	}
	segScores := SegmentPScores(m, p)
	if len(segScores) != 1 || segScores[0] != 2 {
		t.Errorf("SegmentPScores = %v, want [2]", segScores)
	}
}

func TestPScoreMultipleSegments(t *testing.T) {
	// 8x8, 2:4: two segments. Row 0 violates in both, row 1 only in the
	// second.
	m := mustMatrix(t,
		"11101110",
		"10001011",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
	)
	p := NM(2, 4)
	if got := PScore(m, p); got != 3 {
		t.Errorf("PScore = %d, want 3", got)
	}
	want := []int{1, 2}
	got := SegmentPScores(m, p)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SegmentPScores = %v, want %v", got, want)
			break
		}
	}
}

func TestMBScore(t *testing.T) {
	// V=4, M=8, K=4. One 8x8 matrix has two meta-block rows.
	// Top block (rows 0-3) uses columns {0,1,2,3,4} -> 5 > 4 invalid.
	// Bottom block (rows 4-7) uses columns {0,1} -> valid.
	m := mustMatrix(t,
		"11000000",
		"00110000",
		"00001000",
		"00000000",
		"11000000",
		"11000000",
		"00000000",
		"00000000",
	)
	p := New(4, 2, 8)
	if got := MBScore(m, p); got != 1 {
		t.Errorf("MBScore = %d, want 1", got)
	}
	if MetaBlockVerticalValid(m, p, 0, 0) {
		t.Error("top meta-block should violate vertical constraint")
	}
	if !MetaBlockVerticalValid(m, p, 4, 0) {
		t.Error("bottom meta-block should satisfy vertical constraint")
	}
}

func TestMetaBlockValidChecksBothConstraints(t *testing.T) {
	// Block uses only 2 columns (vertical ok) but row 0 has 3 nonzeros
	// in the window -> horizontal violation.
	m := mustMatrix(t,
		"11100000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
	)
	p := New(4, 2, 8)
	if MetaBlockValid(m, p, 0, 0) {
		t.Error("MetaBlockValid should fail on horizontal violation")
	}
	if !MetaBlockVerticalValid(m, p, 0, 0) {
		t.Error("vertical constraint alone should pass (3 columns <= 4)")
	}
}

func TestConformsAndCheck(t *testing.T) {
	m := mustMatrix(t,
		"1100",
		"0011",
		"1001",
		"0110",
	)
	p := NM(2, 4)
	if !Conforms(m, p) {
		t.Error("2-per-row matrix should conform to 2:4")
	}
	v := Check(m, p)
	if !v.Conforming() || v.PScore != 0 || v.MBScore != 0 {
		t.Errorf("Check = %+v, want all zero", v)
	}
	m.Set(0, 2)
	if Conforms(m, p) {
		t.Error("3-nonzero row should not conform to 2:4")
	}
}

func TestNMIsSpecialCaseOfVNM(t *testing.T) {
	// For V=1 and N <= K, the vertical constraint is implied by the
	// horizontal one: MBScore must be 0 whenever PScore is 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		m := bitmat.New(n)
		// Build rows with exactly <=2 nonzeros per 4-window.
		for i := 0; i < n; i++ {
			for s := 0; s < n/4; s++ {
				k := rng.Intn(3) // 0..2 nonzeros
				for c := 0; c < k; c++ {
					m.Set(i, s*4+rng.Intn(4))
				}
			}
		}
		p := NM(2, 4)
		if PScore(m, p) != 0 {
			return true // vacuous for this sample
		}
		return MBScore(m, p) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestImprovementRate(t *testing.T) {
	for _, tc := range []struct {
		initial, final int
		want           float64
	}{
		{100, 0, 1},
		{100, 50, 0.5},
		{100, 100, 0},
		{0, 0, 1},
		{0, 5, 0},
	} {
		if got := ImprovementRate(tc.initial, tc.final); got != tc.want {
			t.Errorf("ImprovementRate(%d,%d) = %v, want %v", tc.initial, tc.final, got, tc.want)
		}
	}
}

func TestSegmentNNZ(t *testing.T) {
	m := mustMatrix(t,
		"11100001",
		"10000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
	)
	got := SegmentNNZ(m, NM(2, 4))
	want := []int{4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SegmentNNZ = %v, want %v", got, want)
		}
	}
}

func TestPScoreMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 48
	m := bitmat.New(n)
	for k := 0; k < 500; k++ {
		m.Set(rng.Intn(n), rng.Intn(n))
	}
	for _, p := range []VNM{NM(2, 4), NM(2, 8), New(4, 2, 8), New(8, 2, 16)} {
		brute := 0
		for i := 0; i < n; i++ {
			for s := 0; s < m.NumSegments(p.M); s++ {
				cnt := 0
				for c := 0; c < p.M && s*p.M+c < n; c++ {
					if m.Get(i, s*p.M+c) {
						cnt++
					}
				}
				if cnt > p.N {
					brute++
				}
			}
		}
		if got := PScore(m, p); got != brute {
			t.Errorf("%v: PScore = %d, brute = %d", p, got, brute)
		}
	}
}

func BenchmarkPScore(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 2048
	m := bitmat.New(n)
	for k := 0; k < n*8; k++ {
		m.Set(rng.Intn(n), rng.Intn(n))
	}
	p := NM(2, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PScore(m, p)
	}
}

func BenchmarkMBScore(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 2048
	m := bitmat.New(n)
	for k := 0; k < n*8; k++ {
		m.Set(rng.Intn(n), rng.Intn(n))
	}
	p := New(16, 2, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MBScore(m, p)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("2:4")
	if err != nil || p != NM(2, 4) {
		t.Errorf("Parse(2:4) = %v, %v", p, err)
	}
	p, err = Parse("16:2:16")
	if err != nil || p != New(16, 2, 16) {
		t.Errorf("Parse(16:2:16) = %v, %v", p, err)
	}
	for _, bad := range []string{"", "2", "a:b", "2:3", "1:2:3:4", "0:4"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func FuzzParse(f *testing.F) {
	f.Add("2:4")
	f.Add("16:2:16")
	f.Add(":::")
	f.Add("-1:4")
	f.Add("2:4:8:16")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		// Anything accepted must be valid and round-trip through its
		// string form.
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted invalid pattern %v: %v", p, err)
		}
		q, err := Parse(p.String())
		if err != nil || q != p {
			t.Fatalf("pattern %v does not round-trip: %v %v", p, q, err)
		}
	})
}

func TestVisualize(t *testing.T) {
	m := mustMatrix(t,
		"11100000",
		"11000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
		"00000000",
	)
	out := Visualize(m, NM(2, 4))
	if !strings.Contains(out, "XXX.") {
		t.Errorf("violating row not marked:\n%s", out)
	}
	if !strings.Contains(out, "oo..") {
		t.Errorf("conforming row not marked:\n%s", out)
	}
	if !strings.Contains(out, "PScore=1") {
		t.Errorf("score line missing:\n%s", out)
	}
	// Large matrices summarize.
	big := bitmat.New(200)
	if !strings.Contains(Visualize(big, NM(2, 4)), "too large") {
		t.Error("large matrix should summarize")
	}
}
