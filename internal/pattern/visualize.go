package pattern

import (
	"fmt"
	"strings"

	"repro/internal/bitmat"
)

// Visualize renders a small matrix's conformity against a pattern as
// an ASCII picture: '.' zero, 'o' nonzero in a conforming segment
// vector, 'X' nonzero in a violating one, with segment boundaries
// marked by '|' and meta-block row boundaries by lines of '-'. Used by
// examples and debugging; matrices larger than 128 render a summary.
func Visualize(m *bitmat.Matrix, p VNM) string {
	n := m.N()
	if n > 128 {
		v := Check(m, p)
		return fmt.Sprintf("matrix %dx%d vs %v: PScore=%d MBScore=%d (too large to draw)\n",
			n, n, p, v.PScore, v.MBScore)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pattern %v (K=%d)\n", p, p.EffK())
	segs := m.NumSegments(p.M)
	rowLine := func() {
		for s := 0; s < segs; s++ {
			width := p.M
			if s == segs-1 && n%p.M != 0 {
				width = n % p.M
			}
			b.WriteString(strings.Repeat("-", width))
			b.WriteByte('+')
		}
		b.WriteByte('\n')
	}
	for i := 0; i < n; i++ {
		if i%p.V == 0 && p.V > 1 {
			rowLine()
		}
		for s := 0; s < segs; s++ {
			valid := m.SegmentPop(i, s, p.M) <= p.N
			width := p.M
			if s == segs-1 && n%p.M != 0 {
				width = n % p.M
			}
			for c := 0; c < width; c++ {
				col := s*p.M + c
				switch {
				case !m.Get(i, col):
					b.WriteByte('.')
				case valid:
					b.WriteByte('o')
				default:
					b.WriteByte('X')
				}
			}
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	v := Check(m, p)
	fmt.Fprintf(&b, "PScore=%d MBScore=%d conforming=%v\n", v.PScore, v.MBScore, v.Conforming())
	return b.String()
}
