package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
)

func randomBits(n, nnz int, seed int64) *bitmat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := bitmat.New(n)
	for k := 0; k < nnz; k++ {
		m.Set(rng.Intn(n), rng.Intn(n))
	}
	return m
}

func TestClearingNeverIncreasesScores(t *testing.T) {
	// Monotonicity: removing a nonzero can never increase PScore or
	// MBScore — the property that makes subset execution (pruning,
	// operator matrices derived from a conforming adjacency) safe.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + rng.Intn(40)
		m := randomBits(n, n*4, seed)
		pats := []VNM{NM(2, 4), New(4, 2, 8), New(8, 2, 16)}
		p := pats[rng.Intn(len(pats))]
		beforeP, beforeMB := PScore(m, p), MBScore(m, p)
		// Clear a handful of random set bits.
		cleared := 0
		for tries := 0; tries < 200 && cleared < 5; tries++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if m.Get(i, j) {
				m.Clear(i, j)
				cleared++
			}
		}
		afterP, afterMB := PScore(m, p), MBScore(m, p)
		return afterP <= beforeP && afterMB <= beforeMB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestScoresInvariantUnderIdentity(t *testing.T) {
	f := func(seed int64) bool {
		m := randomBits(32, 128, seed)
		p := NM(2, 4)
		id := make([]int, 32)
		for i := range id {
			id[i] = i
		}
		pm := m.Permute(id)
		return PScore(m, p) == PScore(pm, p) && MBScore(m, p) == MBScore(pm, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStricterPatternsScoreAtLeastAsHigh(t *testing.T) {
	// 2:2M is stricter than... not in general; but N:M with smaller N
	// at the same M is stricter: PScore(N=1) >= PScore(N=2).
	f := func(seed int64) bool {
		m := randomBits(40, 200, seed)
		return PScore(m, NM(1, 4)) >= PScore(m, NM(2, 4)) &&
			PScore(m, NM(2, 8)) >= PScore(m, NM(3, 8))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLargerVNeverReducesMBScore(t *testing.T) {
	// Growing V makes the vertical constraint harder: a conforming
	// V-block set can only break, never heal, when blocks merge.
	// (Checked on the conforming/violating boundary via the count.)
	f := func(seed int64) bool {
		m := randomBits(48, 220, seed)
		// Compare conformity, not raw counts (block counts differ).
		conf8 := MBScore(m, New(8, 2, 8)) == 0
		conf4 := MBScore(m, New(4, 2, 8)) == 0
		// conforming at V=8 implies conforming at V=4 (every 4-block
		// is contained in an 8-block? no — the other way). Conforming
		// at V=8 means each 8x8 tile uses <= 4 columns; its two 4x8
		// sub-tiles use subsets, so V=4 conforms too.
		if conf8 && !conf4 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSwapSymPreservesTotalNNZAndScoresBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		m := bitmat.New(n)
		for k := 0; k < 120; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			m.Set(i, j)
			m.Set(j, i)
		}
		p := NM(2, 4)
		total := m.NNZ()
		for k := 0; k < 10; k++ {
			m.SwapSym(rng.Intn(n), rng.Intn(n))
		}
		if m.NNZ() != total {
			return false
		}
		// Scores stay within the absolute bounds.
		segs := m.NumSegments(p.M)
		return PScore(m, p) <= n*segs && MBScore(m, p) <= n*segs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
