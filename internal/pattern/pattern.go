// Package pattern defines the N:M and V:N:M sparse patterns required
// by GPU Sparse Tensor Cores (SPTC) and the conformity metrics used
// throughout the paper: PScore (horizontal, segment-vector-level
// violations), MBScore (vertical, meta-block-level violations), and the
// improvement rate of a reordering.
//
// Terminology (paper Figure 2):
//
//   - A segment vector is an M-element row vector of the adjacency
//     matrix; the horizontal constraint allows at most N nonzeros in
//     it.
//   - A segment is the n-by-M column stripe holding all the segment
//     vectors of one column window.
//   - A meta-block is a V-by-M tile; the vertical constraint allows at
//     most K of its M columns to contain any nonzero (K = 4 on current
//     SPTC hardware).
//
// N:M is the special case V = 1, where the vertical constraint is
// implied whenever N <= K.
package pattern

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/bitmat"
	"repro/internal/sched"
)

// DefaultK is the SPTC hardware limit on the number of nonzero columns
// a V-by-M meta-block may use (paper Section 2: "4 by default").
const DefaultK = 4

// VNM describes a V:N:M sparse pattern. V is the meta-block height, N
// the maximum nonzeros per M-element segment vector, M the segment
// width, and K the maximum distinct nonzero columns per meta-block.
type VNM struct {
	V, N, M int
	K       int // 0 means DefaultK
}

// NM returns the basic N:M pattern (V = 1).
func NM(n, m int) VNM { return VNM{V: 1, N: n, M: m} }

// New returns the V:N:M pattern with the default hardware K.
func New(v, n, m int) VNM { return VNM{V: v, N: n, M: m} }

// EffK returns the effective vertical column limit.
func (p VNM) EffK() int {
	if p.K > 0 {
		return p.K
	}
	return DefaultK
}

// Validate reports whether the pattern parameters are meaningful for
// this implementation: 1 <= N <= M <= 64, V >= 1, M a power of two.
func (p VNM) Validate() error {
	switch {
	case p.M < 1 || p.M > 64:
		return fmt.Errorf("pattern: M = %d out of range [1, 64]", p.M)
	case p.M&(p.M-1) != 0:
		return fmt.Errorf("pattern: M = %d is not a power of two", p.M)
	case p.N < 1 || p.N > p.M:
		return fmt.Errorf("pattern: N = %d out of range [1, M=%d]", p.N, p.M)
	case p.V < 1:
		return fmt.Errorf("pattern: V = %d must be >= 1", p.V)
	case p.K < 0:
		return fmt.Errorf("pattern: K = %d must be >= 0", p.K)
	}
	return nil
}

// String renders the pattern in the paper's V:N:M notation (or N:M when
// V is 1).
func (p VNM) String() string {
	if p.V == 1 {
		return fmt.Sprintf("%d:%d", p.N, p.M)
	}
	return fmt.Sprintf("%d:%d:%d", p.V, p.N, p.M)
}

// Parse reads a pattern from its string notation: "N:M" (e.g. "2:4")
// or "V:N:M" (e.g. "16:2:16"). The parsed pattern is validated.
func Parse(s string) (VNM, error) {
	parts := strings.Split(s, ":")
	nums := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return VNM{}, fmt.Errorf("pattern: bad component %q in %q", p, s)
		}
		nums[i] = v
	}
	var p VNM
	switch len(nums) {
	case 2:
		p = NM(nums[0], nums[1])
	case 3:
		p = New(nums[0], nums[1], nums[2])
	default:
		return VNM{}, fmt.Errorf("pattern: %q is not N:M or V:N:M", s)
	}
	if err := p.Validate(); err != nil {
		return VNM{}, err
	}
	return p, nil
}

// VectorValid reports whether an M-bit segment vector satisfies the
// horizontal constraint (at most N nonzeros).
func (p VNM) VectorValid(segBits uint64) bool {
	return bits.OnesCount64(segBits) <= p.N
}

// PScore returns the number of segment vectors in the matrix violating
// the horizontal N:M constraint — F_p(phi) in the paper. Rows are
// scanned in parallel.
func PScore(m *bitmat.Matrix, p VNM) int {
	return PScoreOn(nil, m, p)
}

// PScoreOn computes PScore on an explicit execution pool — the handle
// the reordering engine uses to keep every scoring pass inside one
// bounded worker set. A nil pool selects the GOMAXPROCS-wide bitmat
// helper. The count is an exact integer reduction over disjoint row
// ranges, so every pool size returns the same value.
func PScoreOn(pool *sched.Pool, m *bitmat.Matrix, p VNM) int {
	segs := m.NumSegments(p.M)
	body := func(lo, hi int) int {
		count := 0
		for i := lo; i < hi; i++ {
			for s := 0; s < segs; s++ {
				if m.SegmentPop(i, s, p.M) > p.N {
					count++
				}
			}
		}
		return count
	}
	if pool == nil {
		return bitmat.ParallelReduceInt(m.N(), body)
	}
	return pool.ReduceInt(m.N(), body)
}

// SegmentPScores returns, for each of the ceil(n/M) segments (column
// stripes), the number of its segment vectors violating the horizontal
// constraint.
func SegmentPScores(m *bitmat.Matrix, p VNM) []int {
	segs := m.NumSegments(p.M)
	scores := make([]int, segs)
	// Parallel over segments (columns stripes are independent).
	bitmat.ParallelRows(segs, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			count := 0
			for i := 0; i < m.N(); i++ {
				if m.SegmentPop(i, s, p.M) > p.N {
					count++
				}
			}
			scores[s] = count
		}
	})
	return scores
}

// SegmentNNZ returns the number of nonzeros in each column-stripe
// segment.
func SegmentNNZ(m *bitmat.Matrix, p VNM) []int {
	segs := m.NumSegments(p.M)
	counts := make([]int, segs)
	bitmat.ParallelRows(segs, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			total := 0
			for i := 0; i < m.N(); i++ {
				total += m.SegmentPop(i, s, p.M)
			}
			counts[s] = total
		}
	})
	return counts
}

// MetaBlockValid reports whether the V-by-M meta-block with top row
// rowStart and column stripe seg satisfies both V:N:M constraints:
// at most K nonzero columns (vertical) and every row vector N:M
// (horizontal).
func MetaBlockValid(m *bitmat.Matrix, p VNM, rowStart, seg int) bool {
	used := m.ColumnsUsed(rowStart, seg, p.M, p.V)
	if bits.OnesCount64(used) > p.EffK() {
		return false
	}
	for r := rowStart; r < rowStart+p.V && r < m.N(); r++ {
		if m.SegmentPop(r, seg, p.M) > p.N {
			return false
		}
	}
	return true
}

// MetaBlockVerticalValid reports only the vertical constraint of the
// meta-block: at most K distinct nonzero columns.
func MetaBlockVerticalValid(m *bitmat.Matrix, p VNM, rowStart, seg int) bool {
	return bits.OnesCount64(m.ColumnsUsed(rowStart, seg, p.M, p.V)) <= p.EffK()
}

// MBScore returns the number of meta-blocks violating the vertical
// constraint — F_MB(phi) in the paper (Algorithm 2's GetMbScore).
func MBScore(m *bitmat.Matrix, p VNM) int {
	return MBScoreOn(nil, m, p)
}

// MBScoreOn computes MBScore on an explicit execution pool (nil falls
// back to the bitmat helper); like PScoreOn it is pool-size-invariant.
func MBScoreOn(pool *sched.Pool, m *bitmat.Matrix, p VNM) int {
	segs := m.NumSegments(p.M)
	blocksPerCol := (m.N() + p.V - 1) / p.V
	body := func(lo, hi int) int {
		count := 0
		for b := lo; b < hi; b++ {
			rowStart := b * p.V
			for s := 0; s < segs; s++ {
				if !MetaBlockVerticalValid(m, p, rowStart, s) {
					count++
				}
			}
		}
		return count
	}
	if pool == nil {
		return bitmat.ParallelReduceInt(blocksPerCol, body)
	}
	return pool.ReduceInt(blocksPerCol, body)
}

// RowPScore returns the number of row i's segment vectors violating the
// horizontal constraint — one row's contribution to PScore. The
// incremental maintenance layer (internal/dyn) uses these partial
// scores to track conformity drift by exact deltas: recompute the
// affected partials before and after a local change and adjust the
// running total, instead of rescanning the matrix.
func RowPScore(m *bitmat.Matrix, p VNM, i int) int {
	segs := m.NumSegments(p.M)
	count := 0
	for s := 0; s < segs; s++ {
		if m.SegmentPop(i, s, p.M) > p.N {
			count++
		}
	}
	return count
}

// SegPScore returns the number of segment vectors in column stripe seg
// violating the horizontal constraint — one stripe's contribution to
// PScore (the per-segment entries of SegmentPScores, computed alone).
func SegPScore(m *bitmat.Matrix, p VNM, seg int) int {
	count := 0
	for i := 0; i < m.N(); i++ {
		if m.SegmentPop(i, seg, p.M) > p.N {
			count++
		}
	}
	return count
}

// NumBlockRows returns the number of V-row meta-block bands:
// ceil(n / V).
func NumBlockRows(m *bitmat.Matrix, p VNM) int {
	return (m.N() + p.V - 1) / p.V
}

// BlockRowMBScore returns the number of meta-blocks in block band b
// (rows [b*V, (b+1)*V)) violating the vertical constraint — one band's
// contribution to MBScore.
func BlockRowMBScore(m *bitmat.Matrix, p VNM, b int) int {
	segs := m.NumSegments(p.M)
	rowStart := b * p.V
	count := 0
	for s := 0; s < segs; s++ {
		if !MetaBlockVerticalValid(m, p, rowStart, s) {
			count++
		}
	}
	return count
}

// SegMBScore returns the number of meta-blocks in column stripe seg
// violating the vertical constraint — one stripe's contribution to
// MBScore.
func SegMBScore(m *bitmat.Matrix, p VNM, seg int) int {
	count := 0
	for b := 0; b < NumBlockRows(m, p); b++ {
		if !MetaBlockVerticalValid(m, p, b*p.V, seg) {
			count++
		}
	}
	return count
}

// Violations aggregates both violation counts for a matrix under a
// pattern.
type Violations struct {
	Pattern VNM
	PScore  int // segment vectors violating the horizontal constraint
	MBScore int // meta-blocks violating the vertical constraint
}

// Conforming reports whether the matrix fully conforms to the pattern.
func (v Violations) Conforming() bool { return v.PScore == 0 && v.MBScore == 0 }

// Check computes both scores.
func Check(m *bitmat.Matrix, p VNM) Violations {
	return Violations{Pattern: p, PScore: PScore(m, p), MBScore: MBScore(m, p)}
}

// Conforms reports whether the matrix satisfies every V:N:M constraint.
func Conforms(m *bitmat.Matrix, p VNM) bool {
	if PScore(m, p) != 0 {
		return false
	}
	return MBScore(m, p) == 0
}

// ImprovementRate is the paper's effectiveness metric for a reordering:
// (initial - final) / initial, where the arguments count violating
// segment vectors. By convention it is 1 (100%) when initial is 0 and
// final is 0, and 0 when initial is 0 but final is positive (cannot
// happen with a correct reorder).
//
// Note the paper prints the metric as a positive percentage
// ("improvement rate 99.29%") even though its formula is written
// (final-initial)/initial; we use the positive reduction convention the
// results tables use.
func ImprovementRate(initial, final int) float64 {
	if initial == 0 {
		if final == 0 {
			return 1
		}
		return 0
	}
	return float64(initial-final) / float64(initial)
}
