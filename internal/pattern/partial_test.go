package pattern

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
)

// randomSym returns a seeded random symmetric bit matrix.
func randomSym(n int, density float64, seed int64) *bitmat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := bitmat.New(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if rng.Float64() < density {
				m.Set(i, j)
				m.Set(j, i)
			}
		}
	}
	return m
}

// TestPartialScoresSumToTotals pins the partial-score helpers to the
// full scores: summing RowPScore over rows, SegPScore over stripes,
// BlockRowMBScore over bands and SegMBScore over stripes must each
// reproduce PScore / MBScore exactly — the invariant the incremental
// delta tracking in internal/dyn rests on.
func TestPartialScoresSumToTotals(t *testing.T) {
	patterns := []VNM{NM(2, 4), New(4, 2, 8), New(2, 1, 4), New(8, 3, 16)}
	for _, n := range []int{0, 1, 3, 7, 16, 33, 70} {
		for si, density := range []float64{0, 0.1, 0.4, 0.9} {
			m := randomSym(n, density, int64(n*10+si))
			for _, p := range patterns {
				wantP, wantMB := PScore(m, p), MBScore(m, p)
				sumRow, sumSeg := 0, 0
				for i := 0; i < n; i++ {
					sumRow += RowPScore(m, p, i)
				}
				for s := 0; s < m.NumSegments(p.M); s++ {
					sumSeg += SegPScore(m, p, s)
				}
				if sumRow != wantP || sumSeg != wantP {
					t.Fatalf("n=%d density=%v pattern %v: PScore partial sums row=%d seg=%d, want %d",
						n, density, p, sumRow, sumSeg, wantP)
				}
				sumBand, sumSegMB := 0, 0
				for b := 0; b < NumBlockRows(m, p); b++ {
					sumBand += BlockRowMBScore(m, p, b)
				}
				for s := 0; s < m.NumSegments(p.M); s++ {
					sumSegMB += SegMBScore(m, p, s)
				}
				if sumBand != wantMB || sumSegMB != wantMB {
					t.Fatalf("n=%d density=%v pattern %v: MBScore partial sums band=%d seg=%d, want %d",
						n, density, p, sumBand, sumSegMB, wantMB)
				}
			}
		}
	}
}

// TestPartialScoresMatchSegmentPScores cross-checks SegPScore against
// the existing batch SegmentPScores helper.
func TestPartialScoresMatchSegmentPScores(t *testing.T) {
	m := randomSym(40, 0.3, 99)
	p := New(4, 2, 8)
	batch := SegmentPScores(m, p)
	for s, want := range batch {
		if got := SegPScore(m, p, s); got != want {
			t.Fatalf("SegPScore(%d) = %d, SegmentPScores gives %d", s, got, want)
		}
	}
}
