package check

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// This file is the reordering engine's differential layer, the analog
// of parallel.go for the preprocessing side: the parallel partitioned
// engine owes its callers permutations bit-identical to the serial
// run at every worker count (DESIGN.md §8), so the oracles here are
// exact — digests compare equal or the contract is broken.

// PermDigest returns a short stable fingerprint of a permutation: the
// first 12 bytes of the SHA-256 of its values as little-endian int64s,
// hex-encoded. Golden-permutation regression tests pin these digests,
// so the encoding must never change.
func PermDigest(perm []int) string {
	h := sha256.New()
	var buf [8]byte
	for _, p := range perm {
		binary.LittleEndian.PutUint64(buf[:], uint64(p))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// LargeComposition certifies the composition invariants of a
// partitioned reordering of g under opt: the global Perm is a
// bijection on the vertex set, Offsets is a monotone contiguous cover
// of [0, N] with one range per partition, no partition exceeds the
// MaxN cap, each partition's slice of Perm is drawn from one BFS
// partition's vertex set, and the reported score totals are exactly
// the per-partition sums.
func LargeComposition(g *graph.Graph, opt core.LargeOptions, res *core.LargeResult) error {
	n := g.N()
	if err := Permutation(res.Perm, n); err != nil {
		return err
	}
	maxN := opt.MaxN
	if maxN <= 0 {
		maxN = 8192
	}
	if len(res.Offsets) != len(res.Partitions)+1 {
		return fmt.Errorf("check: %d offsets for %d partitions, want len+1", len(res.Offsets), len(res.Partitions))
	}
	if res.Offsets[0] != 0 {
		return fmt.Errorf("check: Offsets[0] = %d, want 0", res.Offsets[0])
	}
	if last := res.Offsets[len(res.Offsets)-1]; last != n {
		return fmt.Errorf("check: Offsets end at %d, want %d", last, n)
	}
	sumInit, sumFinal := 0, 0
	for i, pr := range res.Partitions {
		lo, hi := res.Offsets[i], res.Offsets[i+1]
		if hi <= lo {
			return fmt.Errorf("check: partition %d range [%d,%d) is empty or reversed", i, lo, hi)
		}
		if hi-lo != pr.Vertices {
			return fmt.Errorf("check: partition %d spans %d indices but reports %d vertices", i, hi-lo, pr.Vertices)
		}
		if pr.Vertices > maxN {
			return fmt.Errorf("check: partition %d has %d vertices, cap is %d", i, pr.Vertices, maxN)
		}
		if pr.Result == nil {
			return fmt.Errorf("check: partition %d has no result", i)
		}
		if len(pr.Result.Perm) != pr.Vertices {
			return fmt.Errorf("check: partition %d local perm has %d entries for %d vertices", i, len(pr.Result.Perm), pr.Vertices)
		}
		sumInit += pr.Result.InitialPScore
		sumFinal += pr.Result.FinalPScore
	}
	if sumInit != res.InitialPScore {
		return fmt.Errorf("check: InitialPScore %d != partition sum %d", res.InitialPScore, sumInit)
	}
	if sumFinal != res.FinalPScore {
		return fmt.Errorf("check: FinalPScore %d != partition sum %d", res.FinalPScore, sumFinal)
	}
	// The composed ranges must be exactly the BFS partitions: the same
	// split is recomputable because BFSPartition is deterministic.
	parts := core.BFSPartition(g, maxN)
	if len(parts) != len(res.Partitions) {
		return fmt.Errorf("check: result has %d partitions, BFSPartition yields %d", len(res.Partitions), len(parts))
	}
	for i, part := range parts {
		lo, hi := res.Offsets[i], res.Offsets[i+1]
		if hi-lo != len(part) {
			return fmt.Errorf("check: partition %d has %d vertices, BFS piece has %d", i, hi-lo, len(part))
		}
		inPart := make(map[int]bool, len(part))
		for _, v := range part {
			inPart[v] = true
		}
		for _, v := range res.Perm[lo:hi] {
			if !inPart[v] {
				return fmt.Errorf("check: vertex %d landed in partition %d's range but is not in its BFS piece", v, i)
			}
		}
	}
	return nil
}

// ReorderLargeAcrossWorkers runs the partitioned reordering of g at
// every given worker count (nil selects WorkerCounts) and asserts the
// permutation, offsets and score totals are bit-identical across all
// of them — the engine's pool-size-invariance contract. Returns the
// serial (workers=1) result for further inspection.
func ReorderLargeAcrossWorkers(g *graph.Graph, opt core.LargeOptions, workers []int) (*core.LargeResult, error) {
	if workers == nil {
		workers = WorkerCounts()
	}
	var ref *core.LargeResult
	refDigest := ""
	for _, w := range workers {
		o := opt
		o.Workers = w
		o.Pool = nil
		res, err := core.ReorderLarge(g, o)
		if err != nil {
			return nil, fmt.Errorf("check: ReorderLarge workers=%d: %w", w, err)
		}
		if err := LargeComposition(g, o, res); err != nil {
			return nil, fmt.Errorf("check: workers=%d: %w", w, err)
		}
		d := PermDigest(res.Perm)
		if ref == nil {
			ref, refDigest = res, d
			continue
		}
		if d != refDigest {
			return nil, fmt.Errorf("check: ReorderLarge perm digest %s at workers=%d != %s at workers=%d", d, w, refDigest, workers[0])
		}
		if res.InitialPScore != ref.InitialPScore || res.FinalPScore != ref.FinalPScore {
			return nil, fmt.Errorf("check: ReorderLarge scores (%d,%d) at workers=%d != (%d,%d) at workers=%d",
				res.InitialPScore, res.FinalPScore, w, ref.InitialPScore, ref.FinalPScore, workers[0])
		}
		for i, off := range res.Offsets {
			if off != ref.Offsets[i] {
				return nil, fmt.Errorf("check: ReorderLarge offsets diverge at %d: %d vs %d (workers=%d)", i, off, ref.Offsets[i], w)
			}
		}
	}
	return ref, nil
}
