package check

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// TestDistEquivalence: the RPC coordinator over loopback workers is
// bit-identical to the in-process partitioned path, across worker
// counts and both pattern shapes.
func TestDistEquivalence(t *testing.T) {
	g := graph.Banded(500, 2, 0.9, 5)
	b := dense.NewMatrix(g.N(), 6)
	b.Randomize(1, 13)
	for _, p := range []pattern.VNM{pattern.NM(2, 4), pattern.New(4, 2, 8)} {
		for _, nw := range []int{1, 3} {
			if err := DistEquivalence(g, b, 128, p, core.Options{}, nw); err != nil {
				t.Fatalf("pattern %v workers=%d: %v", p, nw, err)
			}
		}
	}
}
