package check

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/venom"
)

func TestPermutationBijectivity(t *testing.T) {
	if err := Permutation([]int{2, 0, 1}, 3); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
	for _, bad := range [][]int{
		{0, 0, 1},  // duplicate
		{0, 1, 3},  // out of range
		{0, 1},     // short
		{-1, 1, 2}, // negative
	} {
		if err := Permutation(bad, 3); err == nil {
			t.Errorf("invalid permutation %v accepted", bad)
		}
	}
	if err := Permutation(nil, 0); err != nil {
		t.Errorf("empty permutation on empty domain rejected: %v", err)
	}
}

func TestReorderLosslessAcrossRegimes(t *testing.T) {
	for _, rg := range Regimes()[:4] {
		rg := rg
		t.Run(rg.Name, func(t *testing.T) {
			t.Parallel()
			g := rg.RandomGraph(160, 11)
			res, err := core.Reorder(g.ToBitMatrix(), pattern.NM(2, 4), core.Options{MaxIter: 3})
			if err != nil {
				t.Fatal(err)
			}
			if err := ReorderLossless(g, res); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestReorderLosslessRejectsCorruptedResult(t *testing.T) {
	g := Regimes()[0].RandomGraph(64, 5)
	res, err := core.Reorder(g.ToBitMatrix(), pattern.NM(2, 4), core.Options{MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() >= 2 {
		res.Perm[0], res.Perm[1] = res.Perm[1], res.Perm[0]
		if err := ReorderLossless(g, res); err == nil {
			t.Error("tampered permutation accepted (matrix no longer matches)")
		}
	}
}

func TestCompressRoundTripOnConformingMatrices(t *testing.T) {
	for _, p := range testPatterns {
		for seed := int64(0); seed < 5; seed++ {
			a := Regimes()[0].RandomCSR(80, seed, true)
			conforming, _, err := venom.PruneToConform(a, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := CompressRoundTrip(conforming, p); err != nil {
				t.Errorf("pattern %v seed %d: %v", p, seed, err)
			}
		}
	}
}

func TestSplitReassemblyAcrossRegimes(t *testing.T) {
	for _, rg := range Regimes() {
		for _, p := range testPatterns {
			a := rg.RandomCSR(72, 3, true)
			if err := SplitReassembly(a, p); err != nil {
				t.Errorf("regime %s pattern %v: %v", rg.Name, p, err)
			}
		}
	}
}

func TestCSREqualDetectsDifferences(t *testing.T) {
	a := Regimes()[1].RandomCSR(48, 2, true)
	if err := CSREqual(a, a.Clone()); err != nil {
		t.Errorf("clone not equal: %v", err)
	}
	b := a.Clone()
	if len(b.Val) == 0 {
		t.Skip("empty matrix drawn")
	}
	b.Val[0]++
	if err := CSREqual(a, b); err == nil {
		t.Error("value difference undetected")
	}
}
