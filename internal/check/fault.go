package check

import (
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/sched"
)

// FaultEquivalence is the recovery-layer oracle (DESIGN.md §10): it
// runs TrainSampledSGC once fault-free on the serial pool as the
// reference, then once per worker count with the fault plan armed on a
// fresh injector, and asserts the faulted runs' losses, classifier and
// test accuracy are bit-identical to the fault-free run. That is the
// layer's core promise — recovery recomputes pure functions whose
// parallel execution is already bit-deterministic, so surviving a fault
// leaves no trace in the results.
//
// The promise only holds for plans whose faults are fully recoverable
// in place: crash/transient/corrupt events that retry within the
// policy's budget, and stragglers without speculation. Plans that
// exhaust retries or hit "venom/meta" push the run down the degradation
// ladder, which changes float32 summation order — hold those to
// SampledTolerance instead.
//
// The plan is re-parsed from its textual form for every run so each
// injector starts with virgin hit counters; retry should normally
// disable backoff sleeping (Backoff: -1) to keep the oracle fast.
func FaultEquivalence(g *graph.Graph, x *dense.Matrix, labels []int, classes int, test []int, cfg distributed.TrainSampledConfig, plan string, retry resil.RetryPolicy, workers []int) error {
	if workers == nil {
		workers = WorkerCounts()
	}
	base := cfg
	base.Pool = sched.Serial()
	base.Obs = nil
	base.Faults = distributed.FaultConfig{}
	ref, err := distributed.TrainSampledSGC(g, x, labels, classes, test, base)
	if err != nil {
		return fmt.Errorf("check: fault-free reference run: %w", err)
	}
	for _, w := range workers {
		p, err := resil.ParsePlan(plan)
		if err != nil {
			return fmt.Errorf("check: fault plan %q: %w", plan, err)
		}
		c := cfg
		c.Pool = sched.New(w)
		c.Obs = nil
		c.Faults = distributed.FaultConfig{Inj: resil.NewInjector(p, obs.NewRegistry()), Retry: retry}
		got, err := distributed.TrainSampledSGC(g, x, labels, classes, test, c)
		if err != nil {
			return fmt.Errorf("check: faulted run workers=%d plan=%q: %w", w, plan, err)
		}
		if len(got.Losses) != len(ref.Losses) {
			return fmt.Errorf("check: faulted run workers=%d produced %d epochs, fault-free %d", w, len(got.Losses), len(ref.Losses))
		}
		for i := range ref.Losses {
			if math.Float64bits(got.Losses[i]) != math.Float64bits(ref.Losses[i]) {
				return fmt.Errorf("check: faulted run workers=%d epoch %d loss %x != fault-free %x (recovery left a trace)",
					w, i, math.Float64bits(got.Losses[i]), math.Float64bits(ref.Losses[i]))
			}
		}
		if err := BitwiseEqual("fault-equivalence-W", w, 0, got.W, ref.W); err != nil {
			return err
		}
		if err := BitwiseEqual("fault-equivalence-B", w, 0, got.B, ref.B); err != nil {
			return err
		}
		if got.TestAcc != ref.TestAcc {
			return fmt.Errorf("check: faulted run workers=%d TestAcc %v != fault-free %v", w, got.TestAcc, ref.TestAcc)
		}
	}
	return nil
}
