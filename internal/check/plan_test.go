package check

import (
	"math/rand"
	"testing"

	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predictor/cycle"
	"repro/internal/sptc"
)

// plannerTable is a fixed calibration table for oracle tests that must
// not depend on machine timing.
func plannerTable() *plan.Calibration {
	return &plan.Calibration{
		Seed: 7, Workers: 4, TileTarget: 256,
		Coeffs: []plan.Coefficient{
			{Kernel: cycle.KernelCSRSerial, NsPerCycle: 0.6},
			{Kernel: cycle.KernelCSRParallel, NsPerCycle: 0.2},
			{Kernel: cycle.KernelHybridSerial, NsPerCycle: 1.8},
			{Kernel: cycle.KernelHybridParallel, NsPerCycle: 0.7},
		},
	}
}

// TestPlannerEquivalenceRegimes: planned dispatch is bit-identical to
// direct kernel invocation on every sparsity regime, every worker
// count, chosen and forced classes, heap and arena outputs.
func TestPlannerEquivalenceRegimes(t *testing.T) {
	p := pattern.New(4, 2, 8)
	cal := plannerTable()
	for _, rg := range Regimes() {
		a := rg.RandomCSR(64, 11, true)
		b := RandomDense(a.N, 9, 1, 23)
		if err := PlannerEquivalence(a, b, p, cal, nil); err != nil {
			t.Errorf("regime %s: %v", rg.Name, err)
		}
	}
}

// TestPlannerRegretBounded: with a table measured on this machine the
// planned kernel stays within a generous factor of the best static
// choice. Wall-clock based, so -short skips it.
func TestPlannerRegretBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock regret check skipped in -short mode")
	}
	cal, err := plan.Measure(plan.MeasureConfig{Seed: 5, Workers: 2, Repeats: 2, ProbeN: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, rg := range Regimes() {
		a := rg.RandomCSR(1024, 3, true)
		b := RandomDense(a.N, 32, 1, 17)
		if err := PlannerRegret(a, b, pattern.New(4, 2, 8), cal, 2, 3, 3.0); err != nil {
			t.Errorf("regime %s: %v", rg.Name, err)
		}
	}
}

// blockPerm returns a permutation of 0..n-1 that shuffles whole
// aligned blocks of `block` rows, leaving order within each block
// intact. For block = lcm(V, M, FragRows) such a permutation maps
// every (V-row-group x M-column-group) tile and every FragRows
// fragment window onto another aligned position with identical
// content, so the V:N:M split statistics — and hence the planner's
// OpProfile — are preserved exactly.
func blockPerm(n, block int, seed int64) []int {
	nb := n / block
	order := rand.New(rand.NewSource(seed)).Perm(nb)
	perm := make([]int, 0, n)
	for _, blk := range order {
		for r := 0; r < block; r++ {
			perm = append(perm, blk*block+r)
		}
	}
	// Rows past the last complete block keep their labels.
	for r := nb * block; r < n; r++ {
		perm = append(perm, r)
	}
	return perm
}

// TestPlannerChoiceRelabelInvariance (metamorphic): relabeling
// vertices by a block permutation that preserves V-row-group and
// M-column-group membership leaves the profile — and therefore the
// decision — unchanged.
func TestPlannerChoiceRelabelInvariance(t *testing.T) {
	p := pattern.New(4, 2, 8)
	block := 16 // lcm(V=4, M=8, FragRows=16)
	cal := plannerTable()
	pl := &plan.Planner{Calib: cal, Workers: 4}
	for _, rg := range Regimes() {
		a := rg.RandomCSR(128, 31, true)
		op, err := plan.Prepare(a, p)
		if err != nil {
			t.Fatalf("regime %s: %v", rg.Name, err)
		}
		perm := blockPerm(a.N, block, 97)
		if err := Permutation(perm, a.N); err != nil {
			t.Fatalf("blockPerm built an invalid permutation: %v", err)
		}
		ap, err := a.Permute(perm)
		if err != nil {
			t.Fatalf("regime %s: %v", rg.Name, err)
		}
		opp, err := plan.Prepare(ap, p)
		if err != nil {
			t.Fatalf("regime %s (permuted): %v", rg.Name, err)
		}
		cm := sptc.DefaultCostModel()
		for _, h := range []int{8, 64} {
			prof, profp := op.Profile(h, cm), opp.Profile(h, cm)
			if prof != profp {
				t.Fatalf("regime %s h=%d: block relabeling changed the profile:\n%+v\n%+v", rg.Name, h, prof, profp)
			}
			d, dp := pl.Choose(prof), pl.Choose(profp)
			if d.Kernel != dp.Kernel {
				t.Errorf("regime %s h=%d: relabeling flipped the choice %s -> %s", rg.Name, h, d.Kernel, dp.Kernel)
			}
		}
	}
}

// TestPlannerChoiceDeterministic (metamorphic): for a fixed table the
// decision depends only on the profile — rebuilding identical operands
// from the same seed yields the identical decision, including the full
// prediction ranking.
func TestPlannerChoiceDeterministic(t *testing.T) {
	p := pattern.New(4, 2, 8)
	pl := &plan.Planner{Calib: plannerTable(), Workers: 4}
	for _, rg := range Regimes() {
		a1 := rg.RandomCSR(96, 13, true)
		a2 := rg.RandomCSR(96, 13, true)
		op1, err1 := plan.Prepare(a1, p)
		op2, err2 := plan.Prepare(a2, p)
		if err1 != nil || err2 != nil {
			t.Fatalf("regime %s: %v / %v", rg.Name, err1, err2)
		}
		d1, d2 := pl.ChooseOperands(op1, 16), pl.ChooseOperands(op2, 16)
		if d1.Kernel != d2.Kernel || len(d1.Predictions) != len(d2.Predictions) {
			t.Fatalf("regime %s: same seed, different decisions: %+v vs %+v", rg.Name, d1, d2)
		}
		for i := range d1.Predictions {
			if d1.Predictions[i] != d2.Predictions[i] {
				t.Fatalf("regime %s: ranking diverged at %d: %+v vs %+v", rg.Name, i, d1.Predictions[i], d2.Predictions[i])
			}
		}
	}
}
