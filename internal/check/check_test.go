package check

import (
	"math"
	"testing"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/pattern"
	"repro/internal/sptc"
)

// patterns spans the N:M and V:N:M shapes the paper evaluates.
var testPatterns = []pattern.VNM{
	pattern.NM(2, 4),
	pattern.New(4, 2, 8),
	pattern.New(16, 2, 16),
}

// TestSpMMEquivalenceAcrossRegimes is the core differential run: every
// kernel (dense reference, serial CSR, parallel CSR, BSR, V:N:M/SPTC
// hybrid) over every dataset regime, weighted and unweighted, with
// seeded determinism.
func TestSpMMEquivalenceAcrossRegimes(t *testing.T) {
	regimes := Regimes()
	if len(regimes) < 3 {
		t.Fatalf("want >= 3 regimes, got %d", len(regimes))
	}
	for _, rg := range regimes {
		rg := rg
		t.Run(rg.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				for _, weighted := range []bool{false, true} {
					a := rg.RandomCSR(96+int(seed)*32, seed, weighted)
					b := RandomDense(a.N, 17, 1, seed+100)
					for _, p := range testPatterns {
						if err := SpMMEquivalence(a, b, p, DefaultTol()); err != nil {
							t.Errorf("regime %s seed %d weighted=%v pattern %v: %v", rg.Name, seed, weighted, p, err)
						}
					}
				}
			}
		})
	}
}

// TestSpMMEquivalenceEdgeShapes covers the degenerate shapes that
// historically break blocked kernels: empty matrices, a single row,
// non-multiple-of-V/M tails, and zero-width features.
func TestSpMMEquivalenceEdgeShapes(t *testing.T) {
	shapes := []struct {
		name string
		n, h int
	}{
		{"n0", 0, 5},
		{"n1", 1, 3},
		{"n1-h1", 1, 1},
		{"tail-n5", 5, 4},
		{"tail-n17", 17, 8},
		{"h0", 12, 0},
	}
	for _, s := range shapes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			var rows, cols []int32
			var vals []float32
			for i := 0; i < s.n; i++ {
				rows = append(rows, int32(i), int32(i))
				cols = append(cols, int32(i), int32((i+1)%s.n))
				vals = append(vals, 0.5, -1.25)
			}
			a, err := csr.FromEntries(s.n, rows, cols, vals)
			if err != nil {
				t.Fatal(err)
			}
			b := RandomDense(s.n, s.h, 1, 7)
			for _, p := range testPatterns {
				if err := SpMMEquivalence(a, b, p, DefaultTol()); err != nil {
					t.Errorf("shape %s pattern %v: %v", s.name, p, err)
				}
			}
		})
	}
}

// TestCompareRejectsRealDisagreement guards the oracle itself: a
// corrupted output must be flagged, so a vacuous tolerance can never
// sneak in.
func TestCompareRejectsRealDisagreement(t *testing.T) {
	rg := Regimes()[0]
	a := rg.RandomCSR(64, 1, true)
	b := RandomDense(64, 9, 1, 2)
	ref := denseRef(a, b)
	bad := ref.Clone()
	bad.Set(3, 4, bad.At(3, 4)+0.01)
	err := Compare("corrupted", bad, ref, a, b, DefaultTol())
	if err == nil {
		t.Fatal("Compare accepted a corrupted kernel output")
	}
	de, ok := err.(*DiffError)
	if !ok {
		t.Fatalf("want *DiffError, got %T: %v", err, err)
	}
	if de.Row != 3 || de.Col != 4 {
		t.Errorf("DiffError located (%d,%d), want (3,4)", de.Row, de.Col)
	}
}

// TestToleranceBoundIsTight spot-checks the policy: the bound scales
// with the conditioning sum and row population, and is far below any
// plausible real bug (an absolute error of 1e-2 on O(1) data).
func TestToleranceBoundIsTight(t *testing.T) {
	tol := DefaultTol()
	b := tol.Bound(8, 8.0)
	if b <= 0 {
		t.Fatalf("bound must be positive, got %g", b)
	}
	if b > 1e-4 {
		t.Errorf("bound %g too loose for 8 O(1) terms", b)
	}
	if tol.Bound(16, 8.0) <= b {
		t.Error("bound must grow with row population")
	}
	if tol.Bound(8, 16.0) <= b {
		t.Error("bound must grow with conditioning sum")
	}
}

func TestCostModelSaneDefault(t *testing.T) {
	if err := CostModelSane(sptc.DefaultCostModel()); err != nil {
		t.Error(err)
	}
	bad := sptc.DefaultCostModel()
	bad.CSRElemCost = -1
	if err := CostModelSane(bad); err == nil {
		t.Error("negative element cost must fail sanity")
	}
}

func denseRef(a *csr.Matrix, b *dense.Matrix) *dense.Matrix {
	return dense.MatMul(a.ToDense(), b)
}

func TestRegimeDeterminism(t *testing.T) {
	for _, rg := range Regimes() {
		a1 := rg.RandomCSR(128, 42, true)
		a2 := rg.RandomCSR(128, 42, true)
		if err := CSREqual(a1, a2); err != nil {
			t.Errorf("regime %s not deterministic: %v", rg.Name, err)
		}
	}
}

func TestWeightedRegimeIsSymmetric(t *testing.T) {
	rg := Regimes()[0]
	a := rg.RandomCSR(64, 9, true)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if got := a.At(int(c), i); got != vals[k] {
				t.Fatalf("asymmetric weight at (%d,%d): %g vs %g", i, c, vals[k], got)
			}
		}
	}
	if math.IsNaN(float64(a.Val[0])) {
		t.Fatal("NaN weight generated")
	}
}
