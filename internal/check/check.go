// Package check is the repository's differential-testing and
// invariant-checking subsystem: a machine-checkable equivalence oracle
// for the claim every speedup table rests on — that the
// reordered/compressed SPTC path computes exactly the same SpMM as the
// CSR baseline (SOGRE is lossless, unlike prune-to-conform).
//
// It provides three layers, shared by unit tests, fuzz targets and the
// sogre-verify CLI:
//
//   - SpMMEquivalence: the differential kernel matrix. A random sparse
//     operand is run through every kernel (naive dense reference,
//     serial CSR, row-parallel CSR, BSR, and the V:N:M/SPTC hybrid)
//     and element-wise agreement is asserted under the principled
//     float32 tolerance of Tol.
//   - Invariant checkers (invariants.go): permutation bijectivity,
//     edge-multiset preservation under reordering, compress/decompress
//     round trips, split-to-conform reassembly, compressed-metadata
//     validity, and cost-model sanity.
//   - Regime generators (regimes.go): seeded random operands drawn
//     from the internal/datasets density/degree regimes, plus decoders
//     that turn raw fuzz bytes into small graphs and matrices.
//
// Adding a kernel to the differential matrix means adding one
// KernelCase to Kernels (see README.md).
package check

import (
	"fmt"
	"math"

	"repro/internal/bsr"
	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/spmm"
	"repro/internal/venom"
)

// Tol is the float32 tolerance policy of the differential harness.
//
// The kernels differ only in summation order, so the disagreement
// between any two of them is bounded by twice the forward error of a
// float32 dot product: for a row with k nonzeros,
//
//	|computed - exact| <= gamma_k * sum_j |A(i,j)| * |B(j,:)|max,
//	gamma_k = k*eps / (1 - k*eps), eps = 2^-24.
//
// Bound charges that bound for both sides plus a Safety factor for the
// extra addition the hybrid (compressed + residual) path performs, and
// adds Atol to absorb denormal-level noise on near-zero outputs.
type Tol struct {
	Safety float64 // multiplier on the paired forward-error bound
	Atol   float64 // absolute floor
}

// DefaultTol is the policy all repository checks use.
func DefaultTol() Tol { return Tol{Safety: 4, Atol: 1e-30} }

const eps32 = 1.0 / (1 << 24)

// Bound returns the allowed element-wise disagreement for an output
// row computed from k nonzeros whose condition sum (sum of
// |A(i,j)| * max_col |B(j,:)|) is condSum.
func (t Tol) Bound(k int, condSum float64) float64 {
	ke := float64(k+2) * eps32
	gamma := ke / (1 - ke)
	return t.Safety*2*gamma*condSum + t.Atol
}

// DiffError reports where and by how much two kernels disagreed.
type DiffError struct {
	Kernel   string
	Row, Col int
	Got, Ref float64
	Bound    float64
}

func (e *DiffError) Error() string {
	return fmt.Sprintf("check: kernel %s disagrees with reference at (%d,%d): got %g want %g (|diff| %g > bound %g)",
		e.Kernel, e.Row, e.Col, e.Got, e.Ref, math.Abs(e.Got-e.Ref), e.Bound)
}

// KernelCase is one entry of the differential kernel matrix.
type KernelCase struct {
	Name string
	// Binary restricts the case to unit-weight operands (the BSR
	// storage layer carries adjacency structure only).
	Binary bool
	// Run computes C = A x B. p is the V:N:M pattern compressed
	// kernels target.
	Run func(a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error)
}

// Kernels is the full differential matrix: every production SpMM path
// against the naive dense reference. New kernels are appended here and
// every existing harness, fuzz target and CLI check picks them up.
func Kernels() []KernelCase {
	return []KernelCase{
		{Name: "csr-serial", Run: func(a *csr.Matrix, b *dense.Matrix, _ pattern.VNM) (*dense.Matrix, error) {
			return spmm.CSRSerial(a, b), nil
		}},
		{Name: "csr-parallel", Run: func(a *csr.Matrix, b *dense.Matrix, _ pattern.VNM) (*dense.Matrix, error) {
			return spmm.CSR(a, b), nil
		}},
		{Name: "bsr", Binary: true, Run: func(a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error) {
			bm, err := bsr.FromBitMatrix(a.ToBitMatrix(), p.M)
			if err != nil {
				return nil, err
			}
			return spmm.BSR(bm, b), nil
		}},
		{Name: "vnm-sptc-hybrid", Run: func(a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error) {
			comp, resid, err := venom.SplitToConform(a, p)
			if err != nil {
				return nil, err
			}
			if err := comp.ValidateMeta(); err != nil {
				return nil, err
			}
			return spmm.Hybrid(comp, resid, b), nil
		}},
		// Tiled entries pin the scheduler's edge cases inside the same
		// matrix (and fuzz targets): a pathologically fine tiling on an
		// odd worker count, and the hybrid on a two-worker pool.
		{Name: "csr-tiled-fine", Run: func(a *csr.Matrix, b *dense.Matrix, _ pattern.VNM) (*dense.Matrix, error) {
			return spmm.CSRPool(sched.NewWithTarget(3, 1), a, b), nil
		}},
		{Name: "hybrid-tiled-w2", Run: func(a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error) {
			comp, resid, err := venom.SplitToConform(a, p)
			if err != nil {
				return nil, err
			}
			return spmm.HybridPool(sched.New(2), comp, resid, b), nil
		}},
	}
}

// SpMMEquivalence runs A x B through the whole kernel matrix and
// asserts element-wise agreement with the dense reference under tol.
// Binary kernels (BSR) are exercised against the unit-weight structure
// of A, so the check covers them even for weighted operands.
func SpMMEquivalence(a *csr.Matrix, b *dense.Matrix, p pattern.VNM, tol Tol) error {
	if a.N != b.Rows {
		return fmt.Errorf("check: operand shapes disagree: A is %dx%d, B has %d rows", a.N, a.N, b.Rows)
	}
	ref := spmm.Dense(a.ToDense(), b)
	unit := unitWeights(a)
	var refUnit *dense.Matrix
	for _, kc := range Kernels() {
		opA, opRef := a, ref
		if kc.Binary {
			if refUnit == nil {
				refUnit = spmm.Dense(unit.ToDense(), b)
			}
			opA, opRef = unit, refUnit
		}
		got, err := kc.Run(opA, b, p)
		if err != nil {
			return fmt.Errorf("check: kernel %s: %w", kc.Name, err)
		}
		if err := Compare(kc.Name, got, opRef, opA, b, tol); err != nil {
			return err
		}
	}
	return nil
}

// Compare asserts element-wise agreement of got against ref under the
// per-row forward-error bound derived from the operands that produced
// them. It returns a *DiffError describing the worst violation.
func Compare(kernel string, got, ref *dense.Matrix, a *csr.Matrix, b *dense.Matrix, tol Tol) error {
	if got.Rows != ref.Rows || got.Cols != ref.Cols {
		return fmt.Errorf("check: kernel %s output is %dx%d, want %dx%d", kernel, got.Rows, got.Cols, ref.Rows, ref.Cols)
	}
	// max_j |B(k,j)| per B row, shared by every output row's bound.
	bMax := make([]float64, b.Rows)
	for k := 0; k < b.Rows; k++ {
		for _, v := range b.Row(k) {
			if av := math.Abs(float64(v)); av > bMax[k] {
				bMax[k] = av
			}
		}
	}
	var worst *DiffError
	worstExcess := 0.0
	for i := 0; i < got.Rows; i++ {
		cols, vals := a.Row(i)
		condSum := 0.0
		for k, c := range cols {
			condSum += math.Abs(float64(vals[k])) * bMax[c]
		}
		bound := tol.Bound(len(cols), condSum)
		gr, rr := got.Row(i), ref.Row(i)
		for j := range gr {
			d := math.Abs(float64(gr[j]) - float64(rr[j]))
			if d > bound && d-bound > worstExcess {
				worstExcess = d - bound
				worst = &DiffError{Kernel: kernel, Row: i, Col: j, Got: float64(gr[j]), Ref: float64(rr[j]), Bound: bound}
			}
		}
	}
	if worst != nil {
		return worst
	}
	return nil
}

// unitWeights returns a copy of a with every stored value set to 1 —
// the adjacency structure the binary BSR layer carries.
func unitWeights(a *csr.Matrix) *csr.Matrix {
	u := a.Clone()
	for i := range u.Val {
		u.Val[i] = 1
	}
	return u
}
