package check

import (
	"math"
	"testing"

	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/spmm"
)

// TestParallelSerialEquivalenceRegimes is the scheduler's differential
// matrix: every parallel kernel against its serial twin, bit-for-bit,
// across the density/degree regimes and the {1, 2, 4, NumCPU} worker
// ladder with swept tile-cost targets.
func TestParallelSerialEquivalenceRegimes(t *testing.T) {
	for _, rg := range Regimes() {
		rg := rg
		t.Run(rg.Name, func(t *testing.T) {
			t.Parallel()
			a := rg.RandomCSR(180, 11, true)
			b := RandomDense(a.N, 17, 1, 23)
			for _, p := range testPatterns {
				if err := ParallelEquivalence(a, b, p, nil, nil); err != nil {
					t.Fatalf("pattern %v: %v", p, err)
				}
			}
		})
	}
}

// TestParallelEquivalenceShapeMismatch: malformed operands are
// rejected before any kernel runs.
func TestParallelEquivalenceShapeMismatch(t *testing.T) {
	a := Regimes()[0].RandomCSR(20, 1, false)
	b := RandomDense(21, 4, 1, 2)
	if err := ParallelEquivalence(a, b, pattern.NM(2, 4), nil, nil); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
}

func TestWorkerCountsLadder(t *testing.T) {
	ws := WorkerCounts()
	if len(ws) == 0 || ws[0] != 1 {
		t.Fatalf("WorkerCounts() = %v, want ladder starting at 1", ws)
	}
	seen := map[int]bool{}
	last := 0
	for _, w := range ws {
		if w <= last || seen[w] {
			t.Fatalf("WorkerCounts() = %v not strictly increasing", ws)
		}
		seen[w] = true
		last = w
	}
	for _, want := range []int{1, 2, 4} {
		if !seen[want] {
			t.Fatalf("WorkerCounts() = %v missing %d", ws, want)
		}
	}
}

// TestBitwiseEqualDetectsFlip: the exact oracle reports the first
// flipped bit — including sign-of-zero flips a tolerance check would
// miss.
func TestBitwiseEqualDetectsFlip(t *testing.T) {
	a := RandomDense(3, 3, 1, 1)
	b := a.Clone()
	if err := BitwiseEqual("k", 2, 0, a, b); err != nil {
		t.Fatalf("identical matrices reported unequal: %v", err)
	}
	b.Data[4] = float32(math.Copysign(float64(b.Data[4]), -float64(b.Data[4])))
	err := BitwiseEqual("k", 2, 7, a, b)
	be, ok := err.(*BitwiseError)
	if !ok {
		t.Fatalf("want *BitwiseError, got %v", err)
	}
	if be.Row != 1 || be.Col != 1 || be.Workers != 2 || be.Target != 7 {
		t.Fatalf("BitwiseError located (%d,%d) workers=%d target=%d, want (1,1) 2 7",
			be.Row, be.Col, be.Workers, be.Target)
	}
	c := RandomDense(2, 2, 1, 1)
	if BitwiseEqual("k", 1, 0, a, c) == nil {
		t.Fatal("shape mismatch not reported")
	}
}

// TestMetamorphicWorkerCountInvariance: for a fixed operand the
// parallel kernels are a constant function of worker count — every
// count on the ladder produces the same bits as the serial twin, so in
// particular the same bits as each other.
func TestMetamorphicWorkerCountInvariance(t *testing.T) {
	rg := Regimes()[1]
	a := rg.RandomCSR(240, 3, true)
	b := RandomDense(a.N, 9, 1, 5)
	ref := spmm.CSRSerial(a, b)
	for _, w := range WorkerCounts() {
		got := spmm.CSRPool(sched.New(w), a, b)
		if err := BitwiseEqual("csr", w, 0, got, ref); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMetamorphicTileSizeInvariance: tile granularity — from one
// element of work per tile up to one tile for the whole matrix — never
// changes the bits. This is the strongest form of the ISSUE's
// determinism contract and holds because heavy rows split along the
// dense-column dimension, never across a row's accumulation order.
func TestMetamorphicTileSizeInvariance(t *testing.T) {
	rg := Regimes()[2]
	a := rg.RandomCSR(150, 9, true)
	b := RandomDense(a.N, 13, 1, 7)
	ref := spmm.CSRSerial(a, b)
	for _, target := range []int64{1, 2, 7, 63, 1024, 1 << 30} {
		got := spmm.CSRPool(sched.NewWithTarget(3, target), a, b)
		if err := BitwiseEqual("csr", 3, target, got, ref); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTwinsCoverKernelMatrix: every serial kernel family in the
// differential matrix has a parallel twin under exact verification.
func TestTwinsCoverKernelMatrix(t *testing.T) {
	names := map[string]bool{}
	for _, tw := range Twins() {
		names[tw.Name] = true
	}
	for _, want := range []string{"csr", "vnm", "vnm-sptc-hybrid", "bsr", "spmv"} {
		if !names[want] {
			t.Fatalf("Twins() missing %q (have %v)", want, names)
		}
	}
}
