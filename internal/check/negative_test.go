package check

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// The oracles are only as trustworthy as their rejection paths: these
// tests feed each invariant checker inputs that violate exactly one
// clause and pin both the rejection and the located error message.

func TestCSREqualRejects(t *testing.T) {
	mk := func(n int, edges [][2]int) *graph.Graph {
		g, err := graph.NewFromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a := csr.FromGraph(mk(4, [][2]int{{0, 1}, {2, 3}}))
	if err := CSREqual(a, a); err != nil {
		t.Fatalf("matrix not equal to itself: %v", err)
	}
	cases := []struct {
		name string
		b    *graph.Graph
		want string
	}{
		{"dims", mk(5, [][2]int{{0, 1}, {2, 3}}), "dims"},
		{"nnz", mk(4, [][2]int{{0, 1}, {2, 3}, {1, 2}}), "nnz"},
		{"entries", mk(4, [][2]int{{0, 2}, {1, 3}}), "row"},
	}
	for _, tc := range cases {
		err := CSREqual(a, csr.FromGraph(tc.b))
		if err == nil {
			t.Fatalf("%s: unequal matrices accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not locate the %q difference", tc.name, err, tc.want)
		}
	}
}

func TestReorderLosslessRejects(t *testing.T) {
	g, err := graph.NewFromEdges(8, [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Reorder(g.ToBitMatrix(), pattern.NM(2, 4), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ReorderLossless(g, res); err != nil {
		t.Fatalf("genuine reordering rejected: %v", err)
	}

	// Non-bijective permutation.
	bad := *res
	bad.Perm = append([]int(nil), res.Perm...)
	bad.Perm[0] = bad.Perm[1]
	if err := ReorderLossless(g, &bad); err == nil {
		t.Fatal("non-bijective perm certified")
	}

	// Result matrix that is not the permutation of the input.
	tampered := *res
	tampered.Matrix = res.Matrix.Clone()
	tampered.Matrix.Set(0, 3)
	tampered.Matrix.Set(3, 0)
	if err := ReorderLossless(g, &tampered); err == nil ||
		!strings.Contains(err.Error(), "permutation of the input") {
		t.Fatalf("tampered matrix: got %v", err)
	}

	// Certificate replayed against a different graph.
	h, err := graph.NewFromEdges(8, [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ReorderLossless(h, res); err == nil {
		t.Fatal("certificate for g accepted on h")
	}
}

// TestIncrementalEquivalenceBadPattern pins the oracle's seed-reorder
// error path: an invalid pattern must surface as an error, not a
// panic, before any Mutable exists.
func TestIncrementalEquivalenceBadPattern(t *testing.T) {
	g, err := graph.NewFromEdges(4, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	opt := dyn.Options{StalenessBudget: dyn.DefaultStalenessBudget}
	bad := pattern.VNM{V: 1, N: 3, M: 3, K: 4} // M not a power of two
	err = IncrementalEquivalence(g.ToBitMatrix(), bad, nil, opt, []int{1}, 0)
	if err == nil || !strings.Contains(err.Error(), "seed reorder") {
		t.Fatalf("invalid pattern: got %v, want seed-reorder error", err)
	}
}

// TestOracleErrorMessages pins the formatting of the typed disagreement
// errors the differential harnesses return: each must locate the
// failure (kernel, coordinates, values) so a fuzz-found repro is
// actionable from the message alone.
func TestOracleErrorMessages(t *testing.T) {
	de := &DiffError{Kernel: "hybrid", Row: 3, Col: 7, Got: 1.5, Ref: 1.0, Bound: 0.25}
	for _, want := range []string{"hybrid", "(3,7)", "1.5", "0.25"} {
		if !strings.Contains(de.Error(), want) {
			t.Fatalf("DiffError %q missing %q", de.Error(), want)
		}
	}
	be := &BitwiseError{Kernel: "csr-parallel", Workers: 4, Target: 9, Row: 2, Col: 5, Got: 1, Ref: 2}
	for _, want := range []string{"csr-parallel", "workers=4", "(2,5)"} {
		if !strings.Contains(be.Error(), want) {
			t.Fatalf("BitwiseError %q missing %q", be.Error(), want)
		}
	}
	re := &RegretError{ChosenNs: 300, BestNs: 100, MaxFactor: 2}
	for _, want := range []string{"300", "100", "3.00", "2.00"} {
		if !strings.Contains(re.Error(), want) {
			t.Fatalf("RegretError %q missing %q", re.Error(), want)
		}
	}
}
