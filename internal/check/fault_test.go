package check

import (
	"strings"
	"testing"

	"repro/internal/gnn"
	"repro/internal/resil"
)

// TestFaultEquivalence drives the recovery oracle with a plan that
// injects every recoverable fault kind across the sample pipeline and
// asserts bit-identity against the fault-free run at several worker
// counts, on both engines.
func TestFaultEquivalence(t *testing.T) {
	g, x, labels, test, cfg := sampledCase()
	plan := "seed=13; crash@sample:2; transient@sample:5; corrupt@sample/xfer:3; crash@eval:1"
	retry := resil.RetryPolicy{Backoff: -1}
	for _, engine := range []gnn.EngineKind{gnn.EngineCSR, gnn.EngineSPTC} {
		c := cfg
		c.Engine = engine
		if err := FaultEquivalence(g, x, labels, 3, test, c, plan, retry, []int{1, 2, 4}); err != nil {
			t.Errorf("engine %s: %v", engine, err)
		}
	}
}

// TestFaultEquivalenceDetectsDegrade confirms the oracle is not
// vacuous: a plan that forces the SPTC→CSR degradation rung changes
// summation order, so the bit-identity assertion must fire.
func TestFaultEquivalenceDetectsDegrade(t *testing.T) {
	g, x, labels, test, cfg := sampledCase()
	cfg.Engine = gnn.EngineSPTC
	plan := "transient@venom/meta:1"
	err := FaultEquivalence(g, x, labels, 3, test, cfg, plan, resil.RetryPolicy{Backoff: -1}, []int{2})
	if err == nil {
		t.Fatal("degraded run passed bit-identity; oracle is vacuous")
	}
	if !strings.Contains(err.Error(), "fault") {
		t.Fatalf("unexpected error flavor: %v", err)
	}
}

func TestFaultEquivalenceRejectsBadPlan(t *testing.T) {
	g, x, labels, test, cfg := sampledCase()
	if err := FaultEquivalence(g, x, labels, 3, test, cfg, "crash@", resil.RetryPolicy{Backoff: -1}, []int{1}); err == nil {
		t.Fatal("want parse error for malformed plan")
	}
}
