package check

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/bsr"
	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/spmm"
	"repro/internal/venom"
)

// This file is the scheduler's differential layer: every parallel
// kernel paired with its serial twin under an *exact* oracle. The
// tiled execution engine owes its callers bit-determinism (tiles own
// disjoint output rectangles, each element accumulated in serial
// operand order — DESIGN.md §7), so unlike the dense-reference matrix
// in check.go, which tolerates reordered float32 summation, the twin
// comparison tolerates nothing: a single flipped bit fails it.

// WorkerCounts returns the worker-count ladder the harness verifies
// parallel kernels at — {1, 2, 4, NumCPU}, deduplicated and sorted.
func WorkerCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var out []int
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// TileTargets returns the per-tile cost targets the harness sweeps: a
// pathologically fine tiling, two mid sizes, and 0 for the pool's
// automatic target.
func TileTargets() []int64 { return []int64{1, 16, 256, 0} }

// TwinCase pairs a parallel kernel with the serial reference it must
// match bit-for-bit.
type TwinCase struct {
	Name string
	// Binary restricts the case to unit-weight operands (BSR carries
	// adjacency structure only).
	Binary bool
	// Serial computes the single-goroutine reference.
	Serial func(a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error)
	// Parallel computes the same product on the given pool.
	Parallel func(pool *sched.Pool, a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error)
}

// Twins returns the serial/parallel kernel pairs: CSR, the compressed
// V:N:M kernel, the V:N:M/SPTC hybrid (compressed plus CSR residual),
// binary BSR, and SpMV (results widened to an n-by-1 matrix).
func Twins() []TwinCase {
	return []TwinCase{
		{
			Name: "csr",
			Serial: func(a *csr.Matrix, b *dense.Matrix, _ pattern.VNM) (*dense.Matrix, error) {
				return spmm.CSRSerial(a, b), nil
			},
			Parallel: func(pool *sched.Pool, a *csr.Matrix, b *dense.Matrix, _ pattern.VNM) (*dense.Matrix, error) {
				return spmm.CSRPool(pool, a, b), nil
			},
		},
		{
			Name: "vnm",
			Serial: func(a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error) {
				comp, _, err := venom.SplitToConform(a, p)
				if err != nil {
					return nil, err
				}
				return spmm.VNMSerial(comp, b), nil
			},
			Parallel: func(pool *sched.Pool, a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error) {
				comp, _, err := venom.SplitToConform(a, p)
				if err != nil {
					return nil, err
				}
				return spmm.VNMPool(pool, comp, b), nil
			},
		},
		{
			Name: "vnm-sptc-hybrid",
			Serial: func(a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error) {
				comp, resid, err := venom.SplitToConform(a, p)
				if err != nil {
					return nil, err
				}
				return spmm.HybridSerial(comp, resid, b), nil
			},
			Parallel: func(pool *sched.Pool, a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error) {
				comp, resid, err := venom.SplitToConform(a, p)
				if err != nil {
					return nil, err
				}
				return spmm.HybridPool(pool, comp, resid, b), nil
			},
		},
		{
			Name:   "bsr",
			Binary: true,
			Serial: func(a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error) {
				bm, err := bsr.FromBitMatrix(a.ToBitMatrix(), p.M)
				if err != nil {
					return nil, err
				}
				return spmm.BSRSerial(bm, b), nil
			},
			Parallel: func(pool *sched.Pool, a *csr.Matrix, b *dense.Matrix, p pattern.VNM) (*dense.Matrix, error) {
				bm, err := bsr.FromBitMatrix(a.ToBitMatrix(), p.M)
				if err != nil {
					return nil, err
				}
				return spmm.BSRPool(pool, bm, b), nil
			},
		},
		{
			Name: "spmv",
			Serial: func(a *csr.Matrix, b *dense.Matrix, _ pattern.VNM) (*dense.Matrix, error) {
				return vecAsMatrix(spmm.SpMVSerial(a, firstColumn(b))), nil
			},
			Parallel: func(pool *sched.Pool, a *csr.Matrix, b *dense.Matrix, _ pattern.VNM) (*dense.Matrix, error) {
				return vecAsMatrix(spmm.SpMVPool(pool, a, firstColumn(b))), nil
			},
		},
	}
}

func firstColumn(b *dense.Matrix) []float32 {
	x := make([]float32, b.Rows)
	for i := range x {
		x[i] = b.At(i, 0)
	}
	return x
}

func vecAsMatrix(y []float32) *dense.Matrix {
	return dense.FromData(len(y), 1, y)
}

// BitwiseError reports a parallel kernel that failed exact equality
// with its serial twin — a determinism-contract violation, not a
// rounding disagreement.
type BitwiseError struct {
	Kernel   string
	Workers  int
	Target   int64
	Row, Col int
	Got, Ref float32
}

func (e *BitwiseError) Error() string {
	return fmt.Sprintf("check: parallel kernel %s (workers=%d, tile target=%d) is not bit-identical to its serial twin at (%d,%d): got %x want %x",
		e.Kernel, e.Workers, e.Target, e.Row, e.Col,
		math.Float32bits(e.Got), math.Float32bits(e.Ref))
}

// BitwiseEqual asserts got and ref agree in every bit (NaN payloads
// included). Returns a *BitwiseError locating the first flip.
func BitwiseEqual(kernel string, workers int, target int64, got, ref *dense.Matrix) error {
	if got.Rows != ref.Rows || got.Cols != ref.Cols {
		return fmt.Errorf("check: kernel %s output is %dx%d, want %dx%d", kernel, got.Rows, got.Cols, ref.Rows, ref.Cols)
	}
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(ref.Data[i]) {
			return &BitwiseError{
				Kernel: kernel, Workers: workers, Target: target,
				Row: i / got.Cols, Col: i % got.Cols,
				Got: got.Data[i], Ref: ref.Data[i],
			}
		}
	}
	return nil
}

// ParallelEquivalence runs every twin pair on A x B across the given
// worker counts and tile-cost targets (nil selects WorkerCounts and
// TileTargets) and asserts each parallel result is bit-identical to
// its serial reference. Binary twins run against the unit-weight
// structure of A.
func ParallelEquivalence(a *csr.Matrix, b *dense.Matrix, p pattern.VNM, workers []int, targets []int64) error {
	if a.N != b.Rows {
		return fmt.Errorf("check: operand shapes disagree: A is %dx%d, B has %d rows", a.N, a.N, b.Rows)
	}
	if workers == nil {
		workers = WorkerCounts()
	}
	if targets == nil {
		targets = TileTargets()
	}
	unit := unitWeights(a)
	for _, tw := range Twins() {
		opA := a
		if tw.Binary {
			opA = unit
		}
		ref, err := tw.Serial(opA, b, p)
		if err != nil {
			return fmt.Errorf("check: twin %s serial: %w", tw.Name, err)
		}
		for _, w := range workers {
			for _, target := range targets {
				var pool *sched.Pool
				if target > 0 {
					pool = sched.NewWithTarget(w, target)
				} else {
					pool = sched.New(w)
				}
				got, err := tw.Parallel(pool, opA, b, p)
				if err != nil {
					return fmt.Errorf("check: twin %s parallel (workers=%d): %w", tw.Name, w, err)
				}
				if err := BitwiseEqual(tw.Name, w, target, got, ref); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
