package check

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/resil"
)

// DistEquivalence is the multi-process distribution oracle: it runs
// the in-process PartitionedSpMM as the reference, then the RPC
// coordinator against nWorkers loopback workers (real sockets, real
// serialization, no process boundary), and asserts bit identity. The
// argument is the same one FaultEquivalence makes for the recovery
// layer: computePartition is pure and partitions scatter into
// disjoint output rows, so WHERE a partition is computed — this
// process, a loopback socket away, or another machine — is invisible
// in the result bits. Any divergence is a serialization or protocol
// defect, never legitimate noise, which is what lets this oracle
// demand exact equality.
func DistEquivalence(g *graph.Graph, b *dense.Matrix, maxN int, p pattern.VNM, opt core.Options, nWorkers int) error {
	want, _, err := distributed.PartitionedSpMM(g, b, maxN, p, opt)
	if err != nil {
		return fmt.Errorf("check: in-process reference: %w", err)
	}
	var addrs []string
	for i := 0; i < nWorkers; i++ {
		addr, stop, err := distributed.StartLocalWorker(distributed.WorkerConfig{Workers: 1})
		if err != nil {
			return fmt.Errorf("check: start loopback worker %d: %w", i, err)
		}
		defer stop()
		addrs = append(addrs, addr)
	}
	cl, err := distributed.Dial(addrs)
	if err != nil {
		return fmt.Errorf("check: dial loopback cluster: %w", err)
	}
	defer cl.Close()
	got, err := cl.DistributedSpMM(g, b, maxN, p, opt, distributed.DistConfig{
		Retry: resil.RetryPolicy{Backoff: -1},
	})
	if err != nil {
		return fmt.Errorf("check: distributed run: %w", err)
	}
	if got.Rows != want.Rows || got.Cols != want.Cols {
		return fmt.Errorf("check: distributed result %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			return fmt.Errorf("check: distributed result diverges at flat index %d (row %d): %v != %v",
				i, i/want.Cols, got.Data[i], want.Data[i])
		}
	}
	return nil
}
