package check

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/resil"
	"repro/internal/sched"
	"repro/internal/serve"
)

// This file is the service-level oracle for the online inference
// engine (internal/serve). Its claims, at the exact strengths the
// serving layer's determinism contract makes:
//
//   - For any interleaving of client streams, batched-coalesced
//     responses are bit-identical to one-request-at-a-time serial
//     evaluation through an identically configured engine, at every
//     worker count. Coalescing, caching, eviction churn and admission
//     timing may change WHICH dispatches run, never their bits.
//   - For the fixed kernel modes (csr, hybrid), responses are
//     additionally bit-identical ACROSS worker counts (DESIGN.md §7).
//     ModeAuto is excluded from the cross-worker claim: the planner
//     may legitimately choose different kernel classes at different
//     pool sizes.
//   - Under a seeded fault plan, the degraded SPTC→CSR paths change
//     float32 summation order, so faulted responses are held to
//     SampledTolerance against the fault-free reference (mirroring
//     SampledEngineAgreement) — and replaying the identical plan on a
//     fresh engine reproduces the faulted responses bit-identically.

// serveResponses replays every client stream one request at a time,
// in client-major order, directly through the engine — the serial
// reference.
func serveResponses(e *serve.Engine, script [][]*serve.Request) [][]*serve.Response {
	out := make([][]*serve.Response, len(script))
	for c, reqs := range script {
		out[c] = make([]*serve.Response, len(reqs))
		for i, r := range reqs {
			out[c][i] = e.ServeBatch([]*serve.Request{r}, false)[0]
		}
	}
	return out
}

// serveConcurrent replays the script through a coalescing server with
// one goroutine per client stream (closed-loop, in-order per client,
// arbitrary interleaving across clients).
func serveConcurrent(e *serve.Engine, script [][]*serve.Request, scfg serve.ServerConfig) ([][]*serve.Response, error) {
	srv, err := serve.NewServer(e, scfg)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	out := make([][]*serve.Response, len(script))
	errs := make([]error, len(script))
	var wg sync.WaitGroup
	for c, reqs := range script {
		out[c] = make([]*serve.Response, len(reqs))
		wg.Add(1)
		go func(c int, reqs []*serve.Request) {
			defer wg.Done()
			for i, r := range reqs {
				resp, err := srv.Submit(r)
				if err != nil {
					errs[c] = fmt.Errorf("client %d request %d: %w", c, i, err)
					return
				}
				out[c][i] = resp
			}
		}(c, reqs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// bitwiseResponses asserts two response sets are bit-identical.
func bitwiseResponses(label string, got, ref [][]*serve.Response) error {
	for c := range ref {
		for i := range ref[c] {
			g, r := got[c][i], ref[c][i]
			if g.Op != r.Op || len(g.Rows) != len(r.Rows) || len(g.Classes) != len(r.Classes) {
				return fmt.Errorf("check: serve %s: client %d request %d shape mismatch", label, c, i)
			}
			for j := range r.Classes {
				if g.Classes[j] != r.Classes[j] {
					return fmt.Errorf("check: serve %s: client %d request %d node %d class %d != %d",
						label, c, i, j, g.Classes[j], r.Classes[j])
				}
			}
			for j := range r.Rows {
				for k := range r.Rows[j] {
					if math.Float32bits(g.Rows[j][k]) != math.Float32bits(r.Rows[j][k]) {
						return fmt.Errorf("check: serve %s: client %d request %d row %d col %d: %x != %x (determinism-contract violation)",
							label, c, i, j, k, math.Float32bits(g.Rows[j][k]), math.Float32bits(r.Rows[j][k]))
					}
				}
			}
		}
	}
	return nil
}

// toleranceResponses holds two embed-only response sets to an
// absolute element-wise bound.
func toleranceResponses(label string, got, ref [][]*serve.Response, tol float64) error {
	for c := range ref {
		for i := range ref[c] {
			g, r := got[c][i], ref[c][i]
			for j := range r.Rows {
				for k := range r.Rows[j] {
					d := math.Abs(float64(g.Rows[j][k] - r.Rows[j][k]))
					if d > tol {
						return fmt.Errorf("check: serve %s: client %d request %d row %d col %d diverged by %v (> %v)",
							label, c, i, j, k, d, tol)
					}
				}
			}
		}
	}
	return nil
}

// ServeEquivalence is the batching/caching bit-purity oracle. For
// every worker count it builds fresh engines from (g, ecfg) — one
// replayed serially, one driven concurrently through the coalescing
// server — and asserts the interleaved, batched responses are
// bit-identical to the serial ones; for fixed modes it also asserts
// bit-identity across worker counts. When faultPlan is non-empty it
// additionally runs the seeded plan (re-parsed per run, so hit
// counters start virgin) on an embed-only variant of the script:
// degraded-path responses are tolerance-bounded against fault-free,
// and a replay of the identical plan is bit-identical to the first
// faulted run.
func ServeEquivalence(g *graph.Graph, ecfg serve.EngineConfig, script serve.ScriptConfig, faultPlan string, workers []int) error {
	if workers == nil {
		workers = WorkerCounts()
	}
	reqs, err := serve.GenerateScript(script)
	if err != nil {
		return fmt.Errorf("check: serve script: %w", err)
	}
	mk := func(w int, inj *resil.Injector) (*serve.Engine, error) {
		c := ecfg
		c.Pool = sched.New(w)
		c.Inj = inj
		return serve.NewEngine(g, c)
	}
	eng, err := mk(1, nil)
	if err != nil {
		return fmt.Errorf("check: serve reference engine: %w", err)
	}
	// Reuse the reordering across every engine build: the permutation
	// is itself bit-deterministic across worker counts (DESIGN.md §8),
	// so this is a speedup, not a weakening.
	ecfg.Perm = eng.Perm()
	ref := serveResponses(eng, reqs)

	for _, w := range workers {
		serial, err := mk(w, nil)
		if err != nil {
			return fmt.Errorf("check: serve workers=%d: %w", w, err)
		}
		refW := serveResponses(serial, reqs)
		if ecfg.Mode != serve.ModeAuto {
			if err := bitwiseResponses(fmt.Sprintf("workers=%d vs serial", w), refW, ref); err != nil {
				return err
			}
		}
		batched, err := mk(w, nil)
		if err != nil {
			return fmt.Errorf("check: serve workers=%d: %w", w, err)
		}
		got, err := serveConcurrent(batched, reqs, serve.ServerConfig{})
		if err != nil {
			return fmt.Errorf("check: serve workers=%d concurrent: %w", w, err)
		}
		if err := bitwiseResponses(fmt.Sprintf("workers=%d batched", w), got, refW); err != nil {
			return err
		}
	}

	if faultPlan == "" {
		return nil
	}
	embedScript := script
	embedScript.ClassifyEvery = 0 // argmax can legitimately flip on a degraded near-tie
	embedReqs, err := serve.GenerateScript(embedScript)
	if err != nil {
		return fmt.Errorf("check: serve fault script: %w", err)
	}
	cleanEng, err := mk(1, nil)
	if err != nil {
		return err
	}
	clean := serveResponses(cleanEng, embedReqs)
	faulted := func() ([][]*serve.Response, error) {
		p, err := resil.ParsePlan(faultPlan)
		if err != nil {
			return nil, fmt.Errorf("check: serve fault plan %q: %w", faultPlan, err)
		}
		e, err := mk(1, resil.NewInjector(p, nil))
		if err != nil {
			return nil, err
		}
		return serveResponses(e, embedReqs), nil
	}
	a, err := faulted()
	if err != nil {
		return err
	}
	if err := toleranceResponses("faulted vs clean", a, clean, SampledTolerance); err != nil {
		return err
	}
	b, err := faulted()
	if err != nil {
		return err
	}
	return bitwiseResponses("fault replay", b, a)
}
