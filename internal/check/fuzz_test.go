package check

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/resil"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/venom"
	"repro/internal/wal"
)

// fuzzPatterns keeps fuzz iterations cheap while covering both the
// basic N:M shape and a genuinely blocked V:N:M one.
var fuzzPatterns = []pattern.VNM{pattern.NM(2, 4), pattern.New(4, 2, 8)}

// FuzzCompressDecompress drives arbitrary small weighted matrices
// (explicit zeros, duplicates-summed entries, negatives included)
// through prune -> compress -> decompress and split-to-conform,
// asserting the shared round-trip and reassembly oracles.
func FuzzCompressDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 64})
	f.Add([]byte{8, 0, 1, 7, 1, 0, 9, 3, 3, 0})     // explicit zero value
	f.Add([]byte{5, 2, 2, 10, 2, 2, 11, 2, 2, 200}) // duplicates summed
	f.Add([]byte{16, 0, 15, 33, 1, 14, 90, 15, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := CSRFromBytes(data, 32)
		for _, p := range fuzzPatterns {
			pruned, _, err := venom.PruneToConform(a, p)
			if err != nil {
				t.Fatalf("prune on valid input failed: %v", err)
			}
			if err := CompressRoundTrip(pruned, p); err != nil {
				t.Fatalf("pattern %v: %v", p, err)
			}
			if err := SplitReassembly(a, p); err != nil {
				t.Fatalf("pattern %v: %v", p, err)
			}
		}
	})
}

// FuzzReorderLossless checks that SOGRE reordering of an arbitrary
// graph always yields a bijective permutation whose application
// preserves the edge multiset — the paper's losslessness claim.
func FuzzReorderLossless(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{9, 0, 0, 1, 1, 5, 7, 8, 2})
	f.Add([]byte{40, 3, 9, 9, 12, 12, 3, 0, 39})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := GraphFromBytes(data, 40)
		res, err := core.Reorder(g.ToBitMatrix(), pattern.NM(2, 4), core.Options{MaxIter: 2})
		if err != nil {
			t.Fatalf("reorder on valid graph failed: %v", err)
		}
		if err := ReorderLossless(g, res); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSpMMEquivalence runs the full differential kernel matrix on
// arbitrary decoded operands.
func FuzzSpMMEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 32})
	f.Add([]byte{6, 0, 5, 64, 5, 0, 64, 2, 3, 0})
	f.Add([]byte{17, 16, 16, 255, 0, 16, 128, 7, 7, 33})
	f.Add([]byte{24, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := CSRFromBytes(data, 24)
		b := RandomDense(a.N, 5, 1, int64(len(data)))
		for _, p := range fuzzPatterns {
			if err := SpMMEquivalence(a, b, p, DefaultTol()); err != nil {
				t.Fatalf("pattern %v: %v", p, err)
			}
		}
	})
}

// FuzzParallelSerialEquivalence drives arbitrary decoded operands
// through every parallel kernel at several worker counts and tile
// targets, asserting bit-identity with the serial twins — the
// scheduler's determinism contract under adversarial sparsity
// patterns (empty rows, heavy rows, duplicates, explicit zeros). The
// seed corpus reuses the regime generators: one seed per
// density/degree regime, re-encoded through the total CSR decoder's
// byte format.
func FuzzParallelSerialEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 32})
	// Regime-derived seeds: sample each regime family and re-encode
	// its entries as decoder bytes (row, col, value triples).
	for i, rg := range Regimes() {
		a := rg.RandomCSR(24, int64(i+1), true)
		enc := []byte{byte(a.N)}
		for r := 0; r < a.N && len(enc) < 120; r++ {
			cols, vals := a.Row(r)
			for k, c := range cols {
				vb := byte(math.Abs(float64(vals[k])) * 32)
				if vals[k] < 0 {
					vb |= 1
				}
				enc = append(enc, byte(r), byte(c), vb)
			}
		}
		f.Add(enc)
	}
	workers := []int{1, 2, 3}
	targets := []int64{1, 16, 0}
	f.Fuzz(func(t *testing.T, data []byte) {
		a := CSRFromBytes(data, 24)
		b := RandomDense(a.N, 5, 1, int64(len(data)))
		for _, p := range fuzzPatterns {
			if err := ParallelEquivalence(a, b, p, workers, targets); err != nil {
				t.Fatalf("pattern %v: %v", p, err)
			}
		}
	})
}

// FuzzMatrixMarketRoundTrip checks the MatrixMarket code path with the
// shared oracles: anything the parser accepts must validate, survive a
// write/re-read round trip with its exact edge multiset, and agree
// with the edge-list code path.
func FuzzMatrixMarketRoundTrip(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n3 3\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 0.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n1 1 0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n0 0 0\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := graph.ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := graph.WriteMatrixMarket(&buf, g); err != nil {
			t.Fatalf("cannot serialize accepted graph: %v", err)
		}
		g2, err := graph.ReadMatrixMarket(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("cannot re-parse own output: %v", err)
		}
		if err := graphsEqual(g, g2); err != nil {
			t.Fatalf("MatrixMarket round trip: %v", err)
		}
		var el bytes.Buffer
		if err := graph.WriteEdgeList(&el, g); err != nil {
			t.Fatalf("cannot write edge list: %v", err)
		}
		g3, err := graph.ReadEdgeList(bytes.NewReader(el.Bytes()))
		if err != nil {
			t.Fatalf("cannot re-read edge list: %v", err)
		}
		// The "# n=<N>" header makes the edge-list round trip exact,
		// isolated trailing vertices included.
		if err := graphsEqual(g, g3); err != nil {
			t.Fatalf("edge list round trip: %v", err)
		}
	})
}

// FuzzServeRequestParse asserts the serving wire decoder is total
// (no panic on any byte string) and that parse∘render is a fixed
// point: any accepted request re-renders to bytes that parse back to
// an equal request with identical rendered form — the property the
// loadgen replay and the serve smoke gate rely on when request
// scripts cross a process boundary.
func FuzzServeRequestParse(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{"op":"embed","nodes":[0]}`))
	f.Add([]byte(`{"op":"classify","nodes":[3,1,2]}`))
	f.Add([]byte(`{"op":"embed","nodes":[1,1]}`))     // duplicate -> error
	f.Add([]byte(`{"op":"embed","nodes":[-1]}`))      // negative -> error
	f.Add([]byte(`{"op":"embed","nodes":[]}`))        // empty -> error
	f.Add([]byte(`{"op":"destroy","nodes":[1]}`))     // unknown op -> error
	f.Add([]byte(`{"op":"embed","nodes":[1],"x":1}`)) // unknown field -> error
	f.Add([]byte(`{"op":"embed","nodes":[1]}trail`))  // trailing bytes -> error
	f.Add([]byte(`{"op":`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := serve.ParseRequest(data)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		canon := r.Render()
		r2, err := serve.ParseRequest(canon)
		if err != nil {
			t.Fatalf("rendered form %q of accepted request %q rejected: %v", canon, data, err)
		}
		if !r2.Equal(r) {
			t.Fatalf("round trip changed request: %+v -> %+v", r, r2)
		}
		if got := r2.Render(); !bytes.Equal(got, canon) {
			t.Fatalf("rendered form not a fixed point: %q -> %q", canon, got)
		}
	})
}

// graphsEqual compares two graphs' exact adjacency structure.
func graphsEqual(a, b *graph.Graph) error {
	if a.N() != b.N() {
		return fmt.Errorf("vertex counts differ: %d vs %d", a.N(), b.N())
	}
	for u := 0; u < a.N(); u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			return fmt.Errorf("degree of %d differs: %d vs %d", u, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				return fmt.Errorf("neighbor %d of %d differs: %d vs %d", i, u, na[i], nb[i])
			}
		}
	}
	return nil
}

// FuzzCalibrationParse asserts the calibration-table grammar never
// panics and that its canonical rendering is a fixed point: any
// accepted table re-parses from Calibration.String() to a table with
// the identical canonical form — the replay contract the planner smoke
// gate relies on when two bench processes share one table file.
func FuzzCalibrationParse(f *testing.F) {
	f.Add("")
	f.Add(plan.CalibSchema + "; csr-serial=0.5")
	f.Add(plan.CalibSchema + "; seed=42; workers=4; target=1024; csr-serial=0.5; hybrid-parallel=0.08125")
	f.Add(plan.CalibSchema + "; hybrid-serial=1.25; csr-parallel=0.17; seed=9")
	f.Add(plan.CalibSchema + "; csr-serial=1; csr-serial=2") // duplicate kernel -> error
	f.Add(plan.CalibSchema + "; warp-speed=1")               // unknown kernel -> error
	f.Add(plan.CalibSchema + "; csr-serial=-1")              // non-positive coefficient -> error
	f.Add("sogre-calib/v0; csr-serial=1")                    // wrong schema -> error
	f.Fuzz(func(t *testing.T, s string) {
		c, err := plan.ParseCalibration(s)
		if err != nil {
			return
		}
		if c == nil {
			if strings.TrimSpace(s) != "" {
				t.Fatalf("non-empty input %q parsed to a nil table without error", s)
			}
			return
		}
		canon := c.String()
		c2, err := plan.ParseCalibration(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted table %q rejected: %v", canon, s, err)
		}
		if got := c2.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, got)
		}
		if c2.Seed != c.Seed || c2.Workers != c.Workers || c2.TileTarget != c.TileTarget || len(c2.Coeffs) != len(c.Coeffs) {
			t.Fatalf("round trip changed table: %+v -> %+v", c, c2)
		}
	})
}

// FuzzFaultPlanParse asserts the fault-plan grammar never panics and
// that its canonical rendering is a fixed point: any accepted plan
// re-parses from Plan.String() to a plan with the identical canonical
// form (the property the CI smoke gate relies on when it replays a
// plan across processes).
func FuzzFaultPlanParse(f *testing.F) {
	f.Add("")
	f.Add("seed=42")
	f.Add("seed=7; crash@tile:3")
	f.Add("straggler@sample:2:5ms; corrupt@partition/xfer:1")
	f.Add("transient@venom/meta:1, crash@eval:2")
	f.Add("crash@a:1;crash@a:1") // duplicate event -> error
	f.Add("delay@x:1")           // unknown kind -> error
	f.Add("crash@bad site:1")    // bad site charset -> error
	f.Add("crash@s:1:5ms")       // delay on non-straggler -> error
	f.Fuzz(func(t *testing.T, s string) {
		p, err := resil.ParsePlan(s)
		if err != nil {
			return
		}
		canon := p.String()
		p2, err := resil.ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted plan %q rejected: %v", canon, s, err)
		}
		if got := p2.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, got)
		}
		if (p == nil) != (p2 == nil) {
			t.Fatalf("nil-ness changed across round trip for %q", s)
		}
		if p != nil {
			if p2.Seed != p.Seed || len(p2.Events) != len(p.Events) {
				t.Fatalf("round trip changed plan: %+v -> %+v", p, p2)
			}
		}
	})
}

// FuzzShardFormat drives arbitrary bytes — seeded with valid
// encodings and systematic corruptions of them — through the
// sogre-shard/v1 decoder. The decoder must be total: every input
// either yields typed loaders that round-trip or a typed error;
// nothing panics and nothing allocates from an unvalidated count. A
// successfully decoded graph must survive re-encoding bit-identically
// (decode is a right inverse of encode on the decoder's image).
func FuzzShardFormat(f *testing.F) {
	g := graph.RMAT(6, 4, 0.57, 0.19, 0.19, 11)
	w := shard.NewWriter()
	if err := w.AddGraph(g); err != nil {
		f.Fatal(err)
	}
	if err := w.AddPerm([]int{1, 0, 2}); err != nil {
		f.Fatal(err)
	}
	if err := w.AddRaw(shard.TagMeta, []byte("seed")); err != nil {
		f.Fatal(err)
	}
	valid := w.Encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("sogresh1"))
	for _, cut := range []int{1, 8, 15, 16, 40, len(valid) / 2, len(valid) - 1} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	for _, flip := range []int{0, 8, 12, 20, 40, len(valid) - 3} {
		c := append([]byte(nil), valid...)
		c[flip] ^= 0x40
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := shard.Decode(data)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		for _, s := range sf.Sections() {
			var serr error
			switch s.Tag {
			case shard.TagGraph:
				var dg *graph.Graph
				dg, serr = sf.Graph(0)
				if serr == nil {
					re, eerr := shard.EncodeGraph(dg)
					if eerr != nil {
						t.Fatalf("re-encode of decoded graph failed: %v", eerr)
					}
					rg, derr := shard.DecodeGraph(re)
					if derr != nil {
						t.Fatalf("re-decode failed: %v", derr)
					}
					if err := graphsEqual(dg, rg); err != nil {
						t.Fatalf("decode/encode not idempotent: %v", err)
					}
				}
			case shard.TagPerm:
				_, serr = sf.Perm(0)
			case shard.TagVNM:
				var m *venom.Matrix
				m, serr = sf.VNM(0)
				if serr == nil {
					if verr := m.ValidateMeta(); verr != nil {
						t.Fatalf("decoded VNM fails ValidateMeta: %v", verr)
					}
				}
			case shard.TagCSR:
				_, serr = sf.CSR(0)
			default:
				_, serr = sf.Raw(s.Tag, 0)
			}
			if serr != nil {
				// Typed failure is fine; the contract is no panic and
				// no accepted-but-inconsistent object.
				continue
			}
		}
	})
}

// FuzzWALReplay drives arbitrary bytes through the write-ahead log
// reader (wal.Replay, the pure core of wal.Open): no input panics;
// whatever is accepted is a stable prefix — replaying any truncation
// of the input yields a prefix of the same records (the torn-tail
// recovery guarantee); and any record payload the batch codec accepts
// re-encodes to the identical bytes (the encode/decode fixed point
// recovery relies on to replay exactly what was acknowledged).
func FuzzWALReplay(f *testing.F) {
	// Seed with a genuine log written through the real append path.
	dir := f.TempDir()
	log, _, err := wal.Open(dir+"/seed.wal", 0xfeed)
	if err != nil {
		f.Fatal(err)
	}
	payloads := [][]byte{
		wal.EncodeBatch([]dyn.Mutation{{Op: dyn.OpInsert, U: 3, V: 9}}),
		wal.EncodeBatch([]dyn.Mutation{{Op: dyn.OpDelete, U: 1, V: 2}, {Op: dyn.OpInsert, U: 0, V: 7}}),
		{},
	}
	for _, p := range payloads {
		if _, err := log.Append(p); err != nil {
			f.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(dir + "/seed.wal")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("sogrewal"))
	for _, cut := range []int{1, 8, 23, 24, 30, len(valid) / 2, len(valid) - 1} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	for _, flip := range []int{0, 9, 16, 24, 30, len(valid) - 2} {
		c := append([]byte(nil), valid...)
		c[flip] ^= 0x40
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := wal.Replay(data, 0)
		if err != nil {
			return // header damage: typed rejection, no panic
		}
		for i, r := range recs {
			if r.Seq != uint64(i+1) {
				t.Fatalf("record %d has seq %d: accepted records must be gapless from 1", i, r.Seq)
			}
			ops, derr := wal.DecodeBatch(r.Payload)
			if derr != nil {
				continue // payload is not a batch; replay-level claim only
			}
			if re := wal.EncodeBatch(ops); !bytes.Equal(re, r.Payload) {
				t.Fatalf("record %d: encode(decode(payload)) changed bytes", i)
			}
		}
		// Torn-tail stability: any truncation replays to a prefix of
		// the same records.
		cut := len(data) / 2
		prefix, perr := wal.Replay(data[:cut], 0)
		if perr != nil {
			return // cut inside the header; rejection is the contract
		}
		if len(prefix) > len(recs) {
			t.Fatalf("truncation yielded MORE records (%d > %d)", len(prefix), len(recs))
		}
		for i, r := range prefix {
			if r.Seq != recs[i].Seq || !bytes.Equal(r.Payload, recs[i].Payload) {
				t.Fatalf("truncated replay record %d differs from full replay", i)
			}
		}
	})
}
