package check

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/serve"
)

// This file is the durability oracle for the WAL-backed mutation path
// (internal/wal + serve.OpenWAL, DESIGN.md §15). The claim: crash
// recovery is invisible. A run that applies a mutation stream, is
// killed mid-stream (its WAL left with a torn tail), recovers from a
// snapshot plus log replay and then finishes the stream answers every
// query with bits identical to a run that was never interrupted — at
// every worker count, because both the engine construction and the
// epoch rebuilds are worker-count-deterministic.

// tornTail is garbage appended to a WAL to simulate the record a
// crash cut short: a plausible length prefix with a truncated body.
// Open must discard exactly this and keep every committed record.
func tornTail() []byte {
	return []byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x13}
}

func appendBytes(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// probeScript covers every node (single client): recovery equivalence
// must hold for rows inside AND outside any mutation's influence ball.
func probeScript(n int) [][]*serve.Request {
	var reqs []*serve.Request
	for lo := 0; lo < n; lo += 16 {
		hi := lo + 16
		if hi > n {
			hi = n
		}
		nodes := make([]int, 0, hi-lo)
		for v := lo; v < hi; v++ {
			nodes = append(nodes, v)
		}
		op := serve.OpEmbed
		if (lo/16)%3 == 2 {
			op = serve.OpClassify
		}
		reqs = append(reqs, &serve.Request{Op: op, Nodes: nodes})
	}
	return [][]*serve.Request{reqs}
}

// RecoveryEquivalence proves snapshot + WAL replay reconstructs the
// serving state bit-identically. For each worker count it runs:
//
//	uninterrupted: apply all nBatches mutation batches, probe.
//	crashed:       apply the first half through a WAL-backed server
//	               (snapshot taken a quarter of the way in), "crash"
//	               (stop without draining, append a torn tail to the
//	               log), then recover two ways — a fresh engine
//	               replaying the whole log, and the mid-stream
//	               snapshot replaying the suffix — finish the stream,
//	               probe.
//
// All three probes must agree bitwise and land on the same epoch.
// dir holds the WAL and snapshot scratch files.
func RecoveryEquivalence(g *graph.Graph, ecfg serve.EngineConfig, nBatches, opsPerBatch int, seed int64, dir string, workers []int) error {
	if workers == nil {
		workers = WorkerCounts()
	}
	if nBatches < 4 {
		return fmt.Errorf("check: recovery needs nBatches >= 4, got %d", nBatches)
	}
	n := g.N()
	ecfg.Mutable = true
	script, err := serve.GenerateMixedScript(serve.MixedScriptConfig{
		Seed: seed, Clients: 1, Requests: nBatches, N: n,
		WriteRatio: 1, MutOps: opsPerBatch,
	})
	if err != nil {
		return fmt.Errorf("check: recovery script: %w", err)
	}
	batches := make([][]dyn.Mutation, nBatches)
	for i, slot := range script[0] {
		batches[i] = slot.Muts
	}
	probe := probeScript(n)

	mk := func(w int) (*serve.Engine, error) {
		c := ecfg
		c.Workers = w
		return serve.NewEngine(g, c)
	}
	// Reuse the reordering across every build (bit-deterministic
	// across worker counts, DESIGN.md §8) — a speedup, not a weakening.
	eng0, err := mk(1)
	if err != nil {
		return fmt.Errorf("check: recovery reference engine: %w", err)
	}
	ecfg.Perm = eng0.Perm()

	kCrash := nBatches / 2
	kSnap := nBatches / 4
	for _, w := range workers {
		// Uninterrupted twin.
		twin, err := mk(w)
		if err != nil {
			return fmt.Errorf("check: recovery workers=%d: %w", w, err)
		}
		for i, b := range batches {
			if _, err := twin.Mutate(b); err != nil {
				return fmt.Errorf("check: recovery workers=%d batch %d: %w", w, i, err)
			}
		}
		twin.WaitWarm()
		want := serveResponses(twin, probe)
		wantEpoch := twin.Epoch()

		// Crashed run: first kCrash batches through a WAL-backed
		// server, snapshot at kSnap, then die mid-stream.
		walPath := filepath.Join(dir, fmt.Sprintf("recovery-w%d.wal", w))
		snapPath := filepath.Join(dir, fmt.Sprintf("recovery-w%d.snapshot", w))
		crashed, err := mk(w)
		if err != nil {
			return err
		}
		log, replayed, err := serve.OpenWAL(crashed, walPath)
		if err != nil {
			return fmt.Errorf("check: recovery workers=%d open WAL: %w", w, err)
		}
		if replayed != 0 {
			return fmt.Errorf("check: recovery workers=%d: fresh WAL replayed %d", w, replayed)
		}
		srv, err := serve.NewServer(crashed, serve.ServerConfig{WAL: log})
		if err != nil {
			return err
		}
		for i := 0; i < kCrash; i++ {
			if _, err := srv.SubmitMutate(batches[i]); err != nil {
				return fmt.Errorf("check: recovery workers=%d submit %d: %w", w, i, err)
			}
			if i+1 == kSnap {
				if err := crashed.Snapshot(snapPath); err != nil {
					return fmt.Errorf("check: recovery workers=%d snapshot: %w", w, err)
				}
			}
		}
		// "Crash": no drain beyond what Commit already forced, and the
		// record the process was mid-write lands as a torn tail.
		srv.Close()
		log.Close()
		if err := appendBytes(walPath, tornTail()); err != nil {
			return err
		}

		finish := func(label string, e *serve.Engine) error {
			for i := kCrash; i < nBatches; i++ {
				if _, err := e.Mutate(batches[i]); err != nil {
					return fmt.Errorf("check: recovery workers=%d %s batch %d: %w", w, label, i, err)
				}
			}
			e.WaitWarm()
			if e.Epoch() != wantEpoch {
				return fmt.Errorf("check: recovery workers=%d %s: epoch %d, want %d", w, label, e.Epoch(), wantEpoch)
			}
			return bitwiseResponses(fmt.Sprintf("workers=%d %s", w, label), serveResponses(e, probe), want)
		}

		// Recovery path 1: fresh engine, whole log.
		fresh, err := mk(w)
		if err != nil {
			return err
		}
		logA, replayed, err := serve.OpenWAL(fresh, walPath)
		if err != nil {
			return fmt.Errorf("check: recovery workers=%d reopen WAL: %w", w, err)
		}
		logA.Close()
		if replayed != kCrash {
			return fmt.Errorf("check: recovery workers=%d: replayed %d, want %d", w, replayed, kCrash)
		}
		if err := finish("full-replay", fresh); err != nil {
			return err
		}

		// Recovery path 2: mid-stream snapshot plus the log suffix.
		// Re-tear the tail — path 1's open truncated it away.
		if err := appendBytes(walPath, tornTail()); err != nil {
			return err
		}
		rc := ecfg
		rc.Workers = w
		rc.Perm = nil
		restored, err := serve.RestoreEngine(snapPath, rc)
		if err != nil {
			return fmt.Errorf("check: recovery workers=%d restore: %w", w, err)
		}
		if restored.Epoch() != uint64(kSnap) {
			return fmt.Errorf("check: recovery workers=%d: snapshot epoch %d, want %d", w, restored.Epoch(), kSnap)
		}
		logB, replayed, err := serve.OpenWAL(restored, walPath)
		if err != nil {
			return fmt.Errorf("check: recovery workers=%d snapshot reopen: %w", w, err)
		}
		logB.Close()
		if replayed != kCrash-kSnap {
			return fmt.Errorf("check: recovery workers=%d: suffix replayed %d, want %d", w, replayed, kCrash-kSnap)
		}
		if err := finish("snapshot+suffix", restored); err != nil {
			return err
		}
	}
	return nil
}
