package check

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datasets"
	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/wal"
)

// TestRecoveryEquivalence: the headline durability claim at workers
// {1, 2, 4} — crash, torn tail, snapshot + WAL replay, and the
// recovered run finishes the stream bit-identically (ModeCSR keeps
// cross-worker bitwise strength).
func TestRecoveryEquivalence(t *testing.T) {
	g := graph.ErdosRenyi(256, 8.0/256, 42)
	err := RecoveryEquivalence(g,
		serve.EngineConfig{Seed: 7, ShardRows: 64, Mode: serve.ModeCSR},
		10, 5, 3, t.TempDir(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryEquivalenceRebuilds: same claim through the hard case —
// a hybrid engine whose staleness budget forces full re-reorders
// mid-stream, so recovery must also reproduce the rebuild decisions
// (the snapshot's persisted baseline is what makes this hold).
func TestRecoveryEquivalenceRebuilds(t *testing.T) {
	g, err := datasets.Family("community", 40, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	err = RecoveryEquivalence(g,
		serve.EngineConfig{Seed: 7, ShardRows: 64, Mode: serve.ModeHybrid, StalenessBudget: 1e-12},
		8, 5, 5, t.TempDir(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryEquivalenceRejectsShortStream: the oracle's own guard
// (nil workers exercises the WorkerCounts default before the guard).
func TestRecoveryEquivalenceRejectsShortStream(t *testing.T) {
	g := graph.ErdosRenyi(64, 0.1, 1)
	if err := RecoveryEquivalence(g, serve.EngineConfig{Seed: 1}, 2, 4, 1, t.TempDir(), nil); err == nil {
		t.Fatal("nBatches=2 accepted")
	}
}

// TestRecoveryEquivalenceGuards: the oracle must fail loudly — not
// hang or mis-verify — when its inputs are broken: a graph too small
// to script against, an engine config that cannot build, a scratch
// dir that cannot hold the WAL, a snapshot path that collides with a
// directory, and a leftover WAL from a previous run (a fresh crashed
// run must start from an empty log, or the twin and the recovered
// engine would disagree on the stream).
func TestRecoveryEquivalenceGuards(t *testing.T) {
	g := graph.ErdosRenyi(64, 0.1, 1)
	cfg := serve.EngineConfig{Seed: 1, ShardRows: 32, Mode: serve.ModeCSR}

	if err := RecoveryEquivalence(graph.ErdosRenyi(1, 0, 1), cfg, 4, 2, 1, t.TempDir(), []int{1}); err == nil {
		t.Error("1-node graph accepted")
	}
	if err := RecoveryEquivalence(g, serve.EngineConfig{Hops: -1}, 4, 2, 1, t.TempDir(), []int{1}); err == nil {
		t.Error("unbuildable engine config accepted")
	}
	if err := RecoveryEquivalence(g, cfg, 4, 2, 1, filepath.Join(t.TempDir(), "missing"), []int{1}); err == nil {
		t.Error("unwritable WAL path accepted")
	}

	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "recovery-w1.snapshot"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := RecoveryEquivalence(g, cfg, 4, 2, 1, dir, []int{1}); err == nil {
		t.Error("snapshot path colliding with a directory accepted")
	}

	dir = t.TempDir()
	ec := cfg
	ec.Mutable = true
	eng, err := serve.NewEngine(g, ec)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := serve.OpenWAL(eng, filepath.Join(dir, "recovery-w1.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(wal.EncodeBatch([]dyn.Mutation{{Op: dyn.OpInsert, U: 0, V: 5}})); err != nil {
		t.Fatal(err)
	}
	if err := log.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := RecoveryEquivalence(g, cfg, 4, 2, 1, dir, []int{1}); err == nil {
		t.Error("stale pre-existing WAL accepted")
	}
}

// TestAppendBytesErrors: the torn-tail helper surfaces both the open
// and the short-write failure (the latter via the kernel's /dev/full).
func TestAppendBytesErrors(t *testing.T) {
	if err := appendBytes(filepath.Join(t.TempDir(), "missing", "x"), []byte{1}); err == nil {
		t.Error("append to a missing directory succeeded")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full unavailable")
	}
	if err := appendBytes("/dev/full", []byte{1}); err == nil {
		t.Error("append to /dev/full succeeded")
	}
}
