package check

import (
	"errors"
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/dyn"
	"repro/internal/pattern"
	"repro/internal/sptc"
	"repro/internal/venom"
)

// This file is the dynamic-graph differential layer: internal/dyn
// maintains a reordered matrix incrementally, and the only way that
// feature is trustworthy is a from-scratch oracle re-deriving the same
// state the slow way after every prefix of a mutation stream
// (DESIGN.md §12).

// DefaultCycleTolerance bounds how far the incrementally-repaired
// state's modeled hybrid cycles may exceed a from-scratch reorder's,
// as a fraction of the plain-CSR cycles of the mutated graph (the
// currency the staleness budget itself is priced in).
const DefaultCycleTolerance = 0.5

// HybridModelCycles prices one adjacency matrix under the cycle model:
// V:N:M-compress what conforms, keep the violating remainder as a CSR
// residual, and charge both kernels at dense width h. The fallback for
// an unsplittable matrix is the plain CSR cost.
func HybridModelCycles(m *bitmat.Matrix, p pattern.VNM, h int) float64 {
	cm := sptc.DefaultCostModel()
	a := csr.FromBitMatrix(m)
	comp, resid, err := venom.SplitToConform(a, p)
	if err != nil {
		return cm.CSRSpMMCycles(a.NNZ(), a.N, h)
	}
	cycles := cm.VNMSpMMCycles(sptc.Stats(comp, cm), h)
	if resid.NNZ() > 0 {
		cycles += cm.CSRSpMMCycles(resid.NNZ(), resid.N, h)
	}
	return cycles
}

// IncrementalEquivalence is the differential oracle for internal/dyn:
// it builds one Mutable per worker count from the same full reorder of
// m (an adjacency matrix in original numbering), applies the mutation
// stream, and after EVERY prefix asserts:
//
//  1. Exact bookkeeping — the incrementally-maintained PScore/MBScore
//     equal a from-scratch pattern.PScoreOn/MBScoreOn recomputation of
//     the maintained matrix.
//  2. Losslessness — the maintained matrix is exactly the symmetric
//     permutation of the mutated original adjacency by the maintained
//     permutation (repairs and rebuilds renumber, never rewire).
//  3. Worker invariance — matrices, permutations, scores and
//     rebuild/repair counts are bit-identical at every worker count.
//  4. Tolerance-bounded cycles — the maintained state's modeled hybrid
//     cycles exceed those of a from-scratch core.Reorder of the
//     mutated graph by at most tol x the mutated graph's plain-CSR
//     cycles (tol <= 0 selects DefaultCycleTolerance).
//  5. Rejected mutations (typed errors) leave every Mutable
//     bit-identical, and every worker count rejects identically.
//
// workers nil selects WorkerCounts() = {1, 2, 4, NumCPU}.
func IncrementalEquivalence(m *bitmat.Matrix, p pattern.VNM, st *dyn.Stream, opt dyn.Options, workers []int, tol float64) error {
	if workers == nil {
		workers = WorkerCounts()
	}
	if tol <= 0 {
		tol = DefaultCycleTolerance
	}
	res, err := core.Reorder(m, p, core.Options{Workers: 1})
	if err != nil {
		return fmt.Errorf("check: seed reorder: %w", err)
	}
	muts := make([]*dyn.Mutable, len(workers))
	for wi, w := range workers {
		o := opt
		o.Workers = w
		d, err := dyn.New(res, o)
		if err != nil {
			return fmt.Errorf("check: dyn.New workers=%d: %w", w, err)
		}
		muts[wi] = d
	}
	orig := m.Clone() // the mutated graph, original numbering
	if st == nil {
		st = &dyn.Stream{}
	}
	for k, mut := range st.Ops {
		ref := muts[0]
		preMat := ref.Matrix().Clone()
		prePerm := ref.Perm()
		refOut, refErr := ref.Apply(mut)
		for wi, d := range muts[1:] {
			out, err := d.Apply(mut)
			if (err == nil) != (refErr == nil) || (refErr != nil && !errors.Is(err, refErr)) {
				return fmt.Errorf("check: op %d (%s): workers=%d err %v != workers=%d err %v",
					k, mut, workers[wi+1], err, workers[0], refErr)
			}
			if err == nil && (out.RepairSwaps != refOut.RepairSwaps || out.Rebuilt != refOut.Rebuilt) {
				return fmt.Errorf("check: op %d (%s): outcome diverges at workers=%d: %+v vs %+v",
					k, mut, workers[wi+1], out, refOut)
			}
		}
		if refErr != nil {
			// A rejected mutation must be a perfect no-op.
			if !ref.Matrix().Equal(preMat) || PermDigest(ref.Perm()) != PermDigest(prePerm) {
				return fmt.Errorf("check: op %d (%s): rejected mutation (%v) changed state", k, mut, refErr)
			}
			continue
		}
		// Track the same mutation on the original-numbering adjacency.
		if mut.Op == dyn.OpInsert {
			orig.Set(mut.U, mut.V)
			orig.Set(mut.V, mut.U)
		} else {
			orig.Clear(mut.U, mut.V)
			orig.Clear(mut.V, mut.U)
		}
		if err := incrementalPrefix(muts, workers, orig, p, tol); err != nil {
			return fmt.Errorf("check: after op %d (%s): %w", k, mut, err)
		}
	}
	// The empty prefix must hold too (stream may be empty).
	return incrementalPrefix(muts, workers, orig, p, tol)
}

func incrementalPrefix(muts []*dyn.Mutable, workers []int, orig *bitmat.Matrix, p pattern.VNM, tol float64) error {
	ref := muts[0]
	// (1) exact bookkeeping vs from-scratch recount.
	viol := ref.Violations()
	if wantP := pattern.PScore(ref.Matrix(), p); viol.PScore != wantP {
		return fmt.Errorf("incremental PScore %d != from-scratch %d", viol.PScore, wantP)
	}
	if wantMB := pattern.MBScore(ref.Matrix(), p); viol.MBScore != wantMB {
		return fmt.Errorf("incremental MBScore %d != from-scratch %d", viol.MBScore, wantMB)
	}
	// (2) losslessness: maintained matrix == mutated original permuted
	// by the maintained permutation.
	if !orig.Permute(ref.Perm()).Equal(ref.Matrix()) {
		return fmt.Errorf("maintained matrix is not the permutation of the mutated graph")
	}
	if !ref.Matrix().IsSymmetric() {
		return fmt.Errorf("maintained matrix lost symmetry")
	}
	// (3) worker invariance.
	refDigest := PermDigest(ref.Perm())
	for wi, d := range muts[1:] {
		if !d.Matrix().Equal(ref.Matrix()) {
			return fmt.Errorf("matrix diverges at workers=%d", workers[wi+1])
		}
		if PermDigest(d.Perm()) != refDigest {
			return fmt.Errorf("perm diverges at workers=%d", workers[wi+1])
		}
		v := d.Violations()
		if v != viol {
			return fmt.Errorf("scores diverge at workers=%d: %+v vs %+v", workers[wi+1], v, viol)
		}
		s, rs := d.Stats(), ref.Stats()
		if s.Rebuilds != rs.Rebuilds || s.RepairSwaps != rs.RepairSwaps {
			return fmt.Errorf("repair/rebuild counts diverge at workers=%d: %+v vs %+v", workers[wi+1], s, rs)
		}
	}
	// (4) tolerance-bounded modeled cycles vs a from-scratch reorder of
	// the mutated graph.
	h := dyn.DefaultH
	scratch, err := core.Reorder(orig, p, core.Options{Workers: 1})
	if err != nil {
		return fmt.Errorf("from-scratch reorder of mutated graph: %w", err)
	}
	incCycles := HybridModelCycles(ref.Matrix(), p, h)
	scratchCycles := HybridModelCycles(scratch.Matrix, p, h)
	a := csr.FromBitMatrix(orig)
	csrCycles := sptc.DefaultCostModel().CSRSpMMCycles(a.NNZ(), a.N, h)
	if incCycles > scratchCycles+tol*csrCycles {
		return fmt.Errorf("incremental state costs %.1f modeled cycles, from-scratch %.1f (+ tolerance %.1f)",
			incCycles, scratchCycles, tol*csrCycles)
	}
	return nil
}
