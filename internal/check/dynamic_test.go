package check

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// dynRegimes picks the four density regimes the dynamic oracle sweeps:
// mesh-like, uniform random, heavy-tailed and ultra-sparse.
func dynRegimes(t *testing.T) []Regime {
	t.Helper()
	want := map[string]bool{"grid": true, "er": true, "powerlaw": true, "ultrasparse": true}
	var out []Regime
	for _, r := range Regimes() {
		if want[r.Name] {
			out = append(out, r)
			delete(want, r.Name)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing regimes: %v", want)
	}
	return out
}

// TestIncrementalEquivalenceRegimes is the ISSUE's load-bearing gate:
// across all four density regimes, every prefix of a seeded mutation
// stream keeps the incrementally-maintained state equivalent to a
// from-scratch reorder of the mutated graph, at workers {1,2,4,NumCPU}.
func TestIncrementalEquivalenceRegimes(t *testing.T) {
	p := pattern.NM(2, 4)
	opt := dyn.Options{StalenessBudget: dyn.DefaultStalenessBudget}
	for ri, reg := range dynRegimes(t) {
		reg := reg
		seed := int64(100 + ri)
		t.Run(reg.Name, func(t *testing.T) {
			t.Parallel()
			g := reg.RandomGraph(64, seed)
			st := dyn.GenerateStream(g, 12, seed)
			if err := IncrementalEquivalence(g.ToBitMatrix(), p, st, opt, nil, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIncrementalEquivalenceVNMPattern runs the oracle under a
// genuinely blocked V:N:M pattern, where vertical (meta-block) repair
// is exercised.
func TestIncrementalEquivalenceVNMPattern(t *testing.T) {
	reg := dynRegimes(t)[0]
	g := reg.RandomGraph(48, 7)
	st := dyn.GenerateStream(g, 10, 7)
	opt := dyn.Options{StalenessBudget: dyn.DefaultStalenessBudget}
	if err := IncrementalEquivalence(g.ToBitMatrix(), pattern.New(4, 2, 8), st, opt, nil, 0); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalEquivalenceRejects feeds a stream whose ops are
// partly invalid (duplicate insert, deleting a missing edge, vertex
// out of range) and asserts the oracle's rejected-mutation no-op
// clause holds: every worker count rejects identically and rejected
// ops leave the state bit-identical.
func TestIncrementalEquivalenceRejects(t *testing.T) {
	g, err := graph.NewFromEdges(8, [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	st := &dyn.Stream{Ops: []dyn.Mutation{
		{Op: dyn.OpInsert, U: 0, V: 1},  // duplicate insert -> rejected
		{Op: dyn.OpDelete, U: 0, V: 7},  // missing edge -> rejected
		{Op: dyn.OpInsert, U: 0, V: 99}, // out of range -> rejected
		{Op: dyn.OpInsert, U: 0, V: 6},  // valid
		{Op: dyn.OpDelete, U: 0, V: 6},  // valid
	}}
	opt := dyn.Options{StalenessBudget: dyn.DefaultStalenessBudget}
	if err := IncrementalEquivalence(g.ToBitMatrix(), pattern.NM(2, 4), st, opt, []int{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalEquivalenceEmptyInputs covers the degenerate shells:
// an empty graph with a nil stream, and an empty stream on a real
// graph (the empty prefix must hold).
func TestIncrementalEquivalenceEmptyInputs(t *testing.T) {
	opt := dyn.Options{StalenessBudget: dyn.DefaultStalenessBudget}
	empty, _ := graph.NewFromEdges(0, nil)
	if err := IncrementalEquivalence(empty.ToBitMatrix(), pattern.NM(2, 4), nil, opt, []int{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	g, _ := graph.NewFromEdges(5, [][2]int{{0, 1}, {2, 3}})
	if err := IncrementalEquivalence(g.ToBitMatrix(), pattern.NM(2, 4), &dyn.Stream{}, opt, []int{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalEquivalenceBadBudget pins the typed-error path: the
// oracle itself must surface dyn.ErrBudget rather than panicking.
func TestIncrementalEquivalenceBadBudget(t *testing.T) {
	g, _ := graph.NewFromEdges(4, [][2]int{{0, 1}})
	err := IncrementalEquivalence(g.ToBitMatrix(), pattern.NM(2, 4), nil, dyn.Options{}, []int{1}, 0)
	if !errors.Is(err, dyn.ErrBudget) {
		t.Fatalf("zero staleness budget: got %v, want dyn.ErrBudget", err)
	}
}

// TestHybridModelCycles sanity-pins the pricing helper the oracle and
// the staleness budget share: a conforming matrix must price below its
// plain-CSR cost, and cycles are monotone in the dense width.
func TestHybridModelCycles(t *testing.T) {
	reg := dynRegimes(t)[1]
	g := reg.RandomGraph(64, 3)
	m := g.ToBitMatrix()
	p := pattern.NM(2, 4)
	c32 := HybridModelCycles(m, p, 32)
	c128 := HybridModelCycles(m, p, 128)
	if c32 <= 0 || c128 <= c32 {
		t.Fatalf("hybrid cycles not positive/monotone in width: h=32 %.1f, h=128 %.1f", c32, c128)
	}
}

// dynCorpusFromBytes is the total decoder behind
// FuzzIncrementalVsScratch: the first byte picks n (<= 16), the second
// the number of edge byte-pairs, and every remaining byte triple is a
// mutation (op, u, v) — deliberately unvalidated, so the fuzzer also
// drives duplicate inserts, missing-edge deletes and out-of-range
// vertices through the oracle's rejection clause.
func dynCorpusFromBytes(data []byte) (*graph.Graph, *dyn.Stream) {
	r := &bytesReader{data: data}
	n := int(r.next()) % 17
	ne := int(r.next()) % 33
	var edges [][2]int
	for e := 0; e < ne && n > 0; e++ {
		u := int(r.next()) % n
		v := int(r.next()) % n
		edges = append(edges, [2]int{u, v})
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		panic("check: total dyn corpus decoder produced invalid edges: " + err.Error())
	}
	st := &dyn.Stream{}
	for r.pos < len(r.data) {
		op := dyn.Op(r.next() % 2)
		u := int(r.next())
		v := int(r.next())
		if n > 0 && u < 64 { // mostly in-range, keep some out-of-range probes
			u, v = u%n, v%n
		}
		st.Ops = append(st.Ops, dyn.Mutation{Op: op, U: u, V: v})
	}
	return g, st
}

// encodeDynCorpus renders a regime graph and a generated stream in the
// dynCorpusFromBytes format, seeding the fuzz corpus with realistic
// shapes.
func encodeDynCorpus(g *graph.Graph, st *dyn.Stream) []byte {
	var edges [][2]int
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) >= u {
				edges = append(edges, [2]int{u, int(v)})
			}
		}
	}
	if len(edges) > 32 {
		edges = edges[:32]
	}
	out := []byte{byte(g.N()), byte(len(edges))}
	for _, e := range edges {
		out = append(out, byte(e[0]), byte(e[1]))
	}
	for _, m := range st.Ops {
		out = append(out, byte(m.Op), byte(m.U), byte(m.V))
	}
	return out
}

// FuzzIncrementalVsScratch drives arbitrary graph+stream corpora
// through the full differential oracle: on every prefix the
// incremental state must match the from-scratch recount, stay lossless
// and reject invalid mutations as perfect no-ops. The seed corpus is
// regime-derived (one graph+stream per density regime).
func FuzzIncrementalVsScratch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0})
	f.Add([]byte{4, 2, 0, 1, 1, 2, 0, 2, 3, 1, 2, 3})
	for ri, reg := range Regimes() {
		if ri >= 4 {
			break
		}
		g := reg.RandomGraph(12, int64(ri))
		st := dyn.GenerateStream(g, 6, int64(ri))
		f.Add(encodeDynCorpus(g, st))
	}
	opt := dyn.Options{StalenessBudget: dyn.DefaultStalenessBudget}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, st := dynCorpusFromBytes(data)
		if len(st.Ops) > 24 {
			st.Ops = st.Ops[:24] // bound per-iteration oracle cost
		}
		if err := IncrementalEquivalence(g.ToBitMatrix(), pattern.NM(2, 4), st, opt, []int{1, 2}, 0); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzMutationStreamParse asserts the mutation-stream grammar never
// panics and that its canonical rendering is a fixed point: any
// accepted stream re-parses from String() to an identical stream —
// the property the -mutate CLI flag and the CI dynamic smoke gate rely
// on when replaying a stream across processes.
func FuzzMutationStreamParse(f *testing.F) {
	f.Add("")
	f.Add("seed=42")
	f.Add("seed=7; add@0-1; del@1-2")
	f.Add("add@3-3") // self-loop
	f.Add("add@10-4, del@4-10\ndel@0-0")
	f.Add("add@01-2") // leading zero -> error
	f.Add("add@-1-2") // sign -> error
	f.Add("set@1-2")  // unknown op -> error
	f.Add("add@12")   // missing separator -> error
	f.Fuzz(func(t *testing.T, s string) {
		st, err := dyn.ParseMutations(s)
		if err != nil {
			return
		}
		canon := st.String()
		st2, err := dyn.ParseMutations(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted stream %q rejected: %v", canon, s, err)
		}
		if got := st2.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, got)
		}
		if st == nil {
			if canon != "" {
				t.Fatalf("nil stream rendered non-empty: %q", canon)
			}
			return
		}
		if st2.Seed != st.Seed || len(st2.Ops) != len(st.Ops) {
			t.Fatalf("round-trip changed stream: %+v -> %+v", st, st2)
		}
		for i := range st.Ops {
			if st2.Ops[i] != st.Ops[i] {
				t.Fatalf("round-trip changed op %d: %v -> %v", i, st.Ops[i], st2.Ops[i])
			}
		}
		if strings.Contains(canon, "  ") {
			t.Fatalf("canonical form has doubled spaces: %q", canon)
		}
	})
}
