package check

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/graphalgs"
	"repro/internal/pattern"
	"repro/internal/sptc"
	"repro/internal/venom"
)

// Permutation checks that perm is a bijection on [0, n).
func Permutation(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("check: permutation length %d != n %d", len(perm), n)
	}
	seen := make([]bool, n)
	for i, p := range perm {
		if p < 0 || p >= n {
			return fmt.Errorf("check: perm[%d] = %d out of range [0,%d)", i, p, n)
		}
		if seen[p] {
			return fmt.Errorf("check: perm maps two positions to vertex %d", p)
		}
		seen[p] = true
	}
	return nil
}

// ReorderLossless certifies that a reordering result is a pure vertex
// renumbering of g: the permutation is a bijection, the reported matrix
// is exactly the symmetric permutation of g's adjacency matrix, the
// edge multiset is preserved (the renumbered graph is isomorphic to g
// via the permutation), and symmetry survives.
func ReorderLossless(g *graph.Graph, res *core.Result) error {
	if err := Permutation(res.Perm, g.N()); err != nil {
		return err
	}
	if res.Matrix != nil {
		want := g.ToBitMatrix().Permute(res.Perm)
		if !res.Matrix.Equal(want) {
			return fmt.Errorf("check: result matrix is not the permutation of the input adjacency")
		}
		if !res.Matrix.IsSymmetric() {
			return fmt.Errorf("check: reordered adjacency lost symmetry")
		}
	}
	rg, err := g.ApplyPermutation(res.Perm)
	if err != nil {
		return err
	}
	if rg.NumEdges() != g.NumEdges() {
		return fmt.Errorf("check: reordering changed arc count %d -> %d", g.NumEdges(), rg.NumEdges())
	}
	// Edge-multiset preservation: every arc of the renumbered graph maps
	// back to an arc of g and vice versa (counts match because both
	// graphs are duplicate-free with equal arc totals).
	for u := 0; u < rg.N(); u++ {
		for _, v := range rg.Neighbors(u) {
			if !g.HasEdge(res.Perm[u], res.Perm[int(v)]) {
				return fmt.Errorf("check: arc (%d,%d) of reordered graph has no preimage", u, v)
			}
		}
	}
	return graphalgs.VerifyIsomorphism(g, rg, res.Perm)
}

// CSREqual checks exact structural and numerical equality of two CSR
// matrices.
func CSREqual(a, b *csr.Matrix) error {
	if a.N != b.N {
		return fmt.Errorf("check: CSR dims differ: %d vs %d", a.N, b.N)
	}
	if a.NNZ() != b.NNZ() {
		return fmt.Errorf("check: CSR nnz differ: %d vs %d", a.NNZ(), b.NNZ())
	}
	for i := 0; i < a.N; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		if len(ac) != len(bc) {
			return fmt.Errorf("check: row %d nnz differ: %d vs %d", i, len(ac), len(bc))
		}
		for k := range ac {
			if ac[k] != bc[k] || av[k] != bv[k] {
				return fmt.Errorf("check: row %d entry %d differs: (%d,%g) vs (%d,%g)", i, k, ac[k], av[k], bc[k], bv[k])
			}
		}
	}
	return nil
}

// CompressRoundTrip checks that venom compression of a conforming
// matrix is the identity: Compress validates, its metadata is
// well-formed, and Decompress reproduces the input exactly (explicit
// zeros excluded — they are not representable and numerically inert).
func CompressRoundTrip(a *csr.Matrix, p pattern.VNM) error {
	comp, err := venom.Compress(a, p)
	if err != nil {
		return err
	}
	if err := comp.ValidateMeta(); err != nil {
		return err
	}
	back, err := comp.Decompress()
	if err != nil {
		return err
	}
	return CSREqual(dropExplicitZeros(a), back)
}

// SplitReassembly checks the hybrid decomposition A = compressed +
// residual is exact: the compressed part validates and conforms, and
// the dense reassembly matches A bit-for-bit.
func SplitReassembly(a *csr.Matrix, p pattern.VNM) error {
	comp, resid, err := venom.SplitToConform(a, p)
	if err != nil {
		return err
	}
	if err := comp.ValidateMeta(); err != nil {
		return err
	}
	back, err := comp.Decompress()
	if err != nil {
		return err
	}
	if !pattern.Conforms(back.ToBitMatrix(), p) {
		return fmt.Errorf("check: split compressed part does not conform to %v", p)
	}
	sum := back.ToDense()
	sum.Add(resid.ToDense())
	if d := dense.MaxAbsDiff(sum, a.ToDense()); d != 0 {
		return fmt.Errorf("check: split reassembly differs from input by %g", d)
	}
	return nil
}

// CostModelSane checks the structural sanity every cycle estimate must
// satisfy: nonnegativity everywhere, and monotonicity in work volume
// (more nonzeros, wider outputs or more fragments never cost less).
func CostModelSane(cm sptc.CostModel) error {
	prevNNZ := -1.0
	for _, nnz := range []int{0, 1, 10, 100, 10000, 1000000} {
		c := cm.CSRSpMMCycles(nnz, 1024, 128)
		if c < 0 {
			return fmt.Errorf("check: CSRSpMMCycles(%d) = %g < 0", nnz, c)
		}
		if c < prevNNZ {
			return fmt.Errorf("check: CSRSpMMCycles not monotone in nnz at %d", nnz)
		}
		prevNNZ = c
	}
	prevH := -1.0
	for _, h := range []int{1, 16, 64, 256, 1024} {
		c := cm.CSRSpMMCycles(5000, 1024, h)
		if c < 0 || c < prevH {
			return fmt.Errorf("check: CSRSpMMCycles not nonnegative-monotone in h at %d", h)
		}
		prevH = c
	}
	prevF := -1.0
	for _, frags := range []int{0, 1, 8, 512, 65536} {
		s := sptc.VNMStats{Fragments: frags, UsedCols: frags * 4, Blocks: frags, V: 16, N: 2, K: 4}
		c := cm.VNMSpMMCycles(s, 128)
		if c < 0 {
			return fmt.Errorf("check: VNMSpMMCycles(%d fragments) = %g < 0", frags, c)
		}
		if c < prevF {
			return fmt.Errorf("check: VNMSpMMCycles not monotone in fragments at %d", frags)
		}
		prevF = c
	}
	for _, n := range []int{0, 64, 4096} {
		if cm.DenseGEMMCycles(n, 64) < 0 || cm.DenseTCGEMMCycles(n, 64) < 0 {
			return fmt.Errorf("check: dense GEMM cycle estimate negative at n=%d", n)
		}
	}
	return nil
}

// dropExplicitZeros returns a copy of a without explicitly stored zero
// values (which the packed V:N:M representation cannot distinguish
// from padding).
func dropExplicitZeros(a *csr.Matrix) *csr.Matrix {
	out := &csr.Matrix{N: a.N, RowPtr: make([]int32, a.N+1)}
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if vals[k] != 0 {
				out.ColIdx = append(out.ColIdx, c)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = int32(len(out.ColIdx))
	}
	return out
}
