package check

import (
	"math/rand"

	"repro/internal/csr"
	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/graph"
)

// Regime is one density/degree regime the differential harness samples,
// drawn from the internal/datasets collection families (Table 1).
type Regime struct {
	Name   string
	Degree float64 // average-degree target handed to the generator
}

// Regimes returns the harness's sampling plan: every deduplicated
// collection family at its class's Table-1 degree target, spanning the
// mesh-like, uniform-random, heavy-tailed and ultra-sparse regimes
// (the last being the Figure-4 slowdown tail).
func Regimes() []Regime {
	degs := []float64{
		datasets.ClassDegree(datasets.Small),
		datasets.ClassDegree(datasets.Medium),
		datasets.ClassDegree(datasets.Large),
	}
	var out []Regime
	for i, fam := range datasets.Families() {
		out = append(out, Regime{Name: fam, Degree: degs[i%len(degs)]})
	}
	return out
}

// RandomGraph draws one seeded graph from a regime.
func (r Regime) RandomGraph(n int, seed int64) *graph.Graph {
	g, err := datasets.Family(r.Name, n, r.Degree, seed)
	if err != nil {
		panic("check: " + err.Error()) // Regimes() only yields known families
	}
	return g
}

// RandomCSR draws a seeded sparse operand from a regime. With weighted
// set, edge values are uniform in (-1, 1) (made symmetric so the
// operand stays a valid adjacency matrix); otherwise unit weights.
func (r Regime) RandomCSR(n int, seed int64, weighted bool) *csr.Matrix {
	a := csr.FromGraph(r.RandomGraph(n, seed))
	if weighted {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for i := 0; i < a.N; i++ {
			cols, vals := a.Row(i)
			for k, c := range cols {
				if int(c) < i {
					continue // lower triangle mirrors the upper
				}
				w := rng.Float32()*2 - 1
				vals[k] = w
				setSym(a, int(c), i, w)
			}
		}
	}
	return a
}

func setSym(a *csr.Matrix, r, c int, w float32) {
	cols, vals := a.Row(r)
	for k, cc := range cols {
		if int(cc) == c {
			vals[k] = w
			return
		}
	}
}

// RandomDense returns a seeded dense feature operand with entries in
// (-scale, scale).
func RandomDense(rows, cols int, scale float32, seed int64) *dense.Matrix {
	b := dense.NewMatrix(rows, cols)
	b.Randomize(scale, seed)
	return b
}

// bytesReader walks fuzz input bytes, yielding 0 once exhausted so
// decoders terminate on any input.
type bytesReader struct {
	data []byte
	pos  int
}

func (r *bytesReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// GraphFromBytes decodes raw fuzz bytes into a small undirected graph
// with at most maxN vertices: the first byte picks n, subsequent byte
// pairs become edges. The decoding is total — every input yields a
// valid graph.
func GraphFromBytes(data []byte, maxN int) *graph.Graph {
	r := &bytesReader{data: data}
	n := int(r.next()) % (maxN + 1)
	if n == 0 {
		g, _ := graph.NewFromEdges(0, nil)
		return g
	}
	var edges [][2]int
	for r.pos < len(r.data) {
		u := int(r.next()) % n
		v := int(r.next()) % n
		edges = append(edges, [2]int{u, v})
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		panic("check: total graph decoder produced invalid edges: " + err.Error())
	}
	return g
}

// CSRFromBytes decodes raw fuzz bytes into a small weighted sparse
// matrix: the first byte picks n (up to maxN), then byte triples
// (row, col, value) add entries; value byte 0 encodes an explicitly
// stored zero, odd values are negative. Duplicates are summed by
// construction of csr.FromEntries. The decoding is total.
func CSRFromBytes(data []byte, maxN int) *csr.Matrix {
	r := &bytesReader{data: data}
	n := int(r.next()) % (maxN + 1)
	if n == 0 {
		m, _ := csr.FromEntries(0, nil, nil, nil)
		return m
	}
	var rows, cols []int32
	var vals []float32
	for r.pos < len(r.data) {
		i := int32(r.next()) % int32(n)
		j := int32(r.next()) % int32(n)
		vb := r.next()
		v := float32(vb) / 32
		if vb%2 == 1 {
			v = -v
		}
		rows = append(rows, i)
		cols = append(cols, j)
		vals = append(vals, v)
	}
	m, err := csr.FromEntries(n, rows, cols, vals)
	if err != nil {
		panic("check: total CSR decoder produced invalid entries: " + err.Error())
	}
	return m
}
