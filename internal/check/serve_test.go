package check

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/serve"
)

func serveTestGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	return graph.ErdosRenyi(n, 8/float64(n), 42)
}

// TestServeEquivalence is the full service-level oracle: hybrid-mode
// engine, row cache small enough to churn, a one-deep shard cache, a
// multi-client script, and a fault plan that degrades one shard build
// (transient at serve/shard) — the SPTC→CSR ladder path.
func TestServeEquivalence(t *testing.T) {
	g := serveTestGraph(t, 256)
	ecfg := serve.EngineConfig{
		Seed: 7, ShardRows: 64, CacheRows: 16, ShardCap: 1,
	}
	script := serve.ScriptConfig{
		Seed: 3, Clients: 4, Requests: 8, N: 256, MaxNodes: 5, ClassifyEvery: 3,
	}
	if err := ServeEquivalence(g, ecfg, script, "seed=5; transient@serve/shard:2", nil); err != nil {
		t.Fatal(err)
	}
}

// TestServeEquivalenceCSR exercises the pure-CSR mode, where even the
// degraded gather path is bit-identical (no tolerance needed, but the
// oracle's bound must hold trivially).
func TestServeEquivalenceCSR(t *testing.T) {
	g := serveTestGraph(t, 192)
	ecfg := serve.EngineConfig{
		Seed: 9, ShardRows: 64, Mode: serve.ModeCSR,
	}
	script := serve.ScriptConfig{
		Seed: 4, Clients: 2, Requests: 6, N: 192, MaxNodes: 4, ClassifyEvery: 2,
	}
	if err := ServeEquivalence(g, ecfg, script, "seed=1; crash@serve/shard:1", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
}

// TestServeEquivalenceNoFaultPlan pins the clean-only path: an empty
// plan skips the fault branch entirely and the oracle still passes.
func TestServeEquivalenceNoFaultPlan(t *testing.T) {
	g := serveTestGraph(t, 96)
	ecfg := serve.EngineConfig{Seed: 2, ShardRows: 32}
	script := serve.ScriptConfig{
		Seed: 5, Clients: 2, Requests: 3, N: 96, MaxNodes: 3,
	}
	if err := ServeEquivalence(g, ecfg, script, "", []int{1}); err != nil {
		t.Fatal(err)
	}
}

// TestServeEquivalenceErrors pins the oracle's own failure modes:
// invalid inputs must surface as errors, not panics or silent passes.
func TestServeEquivalenceErrors(t *testing.T) {
	g := serveTestGraph(t, 96)
	okEcfg := serve.EngineConfig{Seed: 2, ShardRows: 32}
	okScript := serve.ScriptConfig{Seed: 5, Clients: 1, Requests: 2, N: 96, MaxNodes: 3}
	cases := []struct {
		name   string
		ecfg   serve.EngineConfig
		script serve.ScriptConfig
		plan   string
	}{
		{"bad script", okEcfg, serve.ScriptConfig{Clients: 0, Requests: 2, N: 96}, ""},
		{"bad engine config", serve.EngineConfig{CacheRows: -1}, okScript, ""},
		{"bad fault plan", okEcfg, okScript, "seed=notanumber"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ServeEquivalence(g, tc.ecfg, tc.script, tc.plan, []int{1}); err == nil {
				t.Fatalf("ServeEquivalence accepted %s", tc.name)
			}
		})
	}
}

// TestServeConcurrentErrors covers the driver's failure paths: a
// server config the frontend rejects, and a per-request admission
// failure (oversized request) surfacing through a client goroutine.
func TestServeConcurrentErrors(t *testing.T) {
	g := serveTestGraph(t, 64)
	eng, err := serve.NewEngine(g, serve.EngineConfig{Seed: 3, ShardRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	script := [][]*serve.Request{{{Op: serve.OpEmbed, Nodes: []int{1, 2}}}}
	if _, err := serveConcurrent(eng, script, serve.ServerConfig{QueueLimit: -1}); err == nil {
		t.Fatal("serveConcurrent accepted a negative queue limit")
	}
	if _, err := serveConcurrent(eng, script, serve.ServerConfig{MaxRequestNodes: 1}); err == nil {
		t.Fatal("serveConcurrent passed an oversized request through admission")
	}
}

// TestServeResponseComparators pins the comparison helpers' failure
// branches on fabricated response sets: shape, class and float-bit
// mismatches for the bitwise claim, bound violations for the
// tolerance claim.
func TestServeResponseComparators(t *testing.T) {
	embed := func(v float32) [][]*serve.Response {
		return [][]*serve.Response{{{Op: serve.OpEmbed, Rows: [][]float32{{v}}}}}
	}
	ref := embed(1)
	if err := bitwiseResponses("self", ref, ref); err != nil {
		t.Fatalf("bitwise self-comparison failed: %v", err)
	}
	shape := [][]*serve.Response{{{Op: serve.OpEmbed}}}
	if err := bitwiseResponses("shape", shape, ref); err == nil {
		t.Fatal("bitwiseResponses missed a shape mismatch")
	}
	classes := func(c int) [][]*serve.Response {
		return [][]*serve.Response{{{Op: serve.OpClassify, Classes: []int{c}}}}
	}
	if err := bitwiseResponses("class", classes(0), classes(1)); err == nil {
		t.Fatal("bitwiseResponses missed a class mismatch")
	}
	if err := bitwiseResponses("bits", embed(2), ref); err == nil {
		t.Fatal("bitwiseResponses missed a float-bit mismatch")
	}
	if err := toleranceResponses("near", embed(1.001), ref, 0.01); err != nil {
		t.Fatalf("toleranceResponses rejected an in-bound delta: %v", err)
	}
	if err := toleranceResponses("far", embed(2), ref, 0.01); err == nil {
		t.Fatal("toleranceResponses missed an out-of-bound delta")
	}
}
