package check

import (
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/distributed"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/sched"
)

// This file is the training-level oracle for the sampled-SGC pipeline
// (distributed.TrainSampledSGC). Its doc comment makes two claims with
// very different strengths, and the oracle checks each at exactly the
// strength claimed:
//
//   - Per engine, the run is a pure function of the sampling seed: the
//     worker count must not flip a single bit of the loss curve, the
//     learned classifier, or the test accuracy (DESIGN.md §7).
//   - Across engines, SOGRE's reordering permutes float32 summation
//     order, so CSR and SPTC agree to a tight tolerance — NOT bitwise.
//     Asserting bitwise cross-engine equality would be asserting
//     something false about float arithmetic.

// SampledTolerance bounds the cross-engine disagreement: reordering
// changes only the order of exact-weight additions, so after a few
// epochs of Adam the classifiers drift by at most rounding noise
// amplified through the optimizer — empirically ~1e-3, bounded here
// with headroom.
const SampledTolerance = 2e-2

// SampledDeterminism runs TrainSampledSGC with cfg at the serial pool
// and at every worker count in workers (nil selects WorkerCounts), and
// asserts losses, weights, bias and test accuracy are bit-identical to
// the serial run. cfg.Pool is overridden per run.
func SampledDeterminism(g *graph.Graph, x *dense.Matrix, labels []int, classes int, test []int, cfg distributed.TrainSampledConfig, workers []int) error {
	if workers == nil {
		workers = WorkerCounts()
	}
	run := func(pool *sched.Pool) (*distributed.TrainSampledResult, error) {
		c := cfg
		c.Pool = pool
		return distributed.TrainSampledSGC(g, x, labels, classes, test, c)
	}
	ref, err := run(sched.Serial())
	if err != nil {
		return fmt.Errorf("check: sampled %s serial run: %w", cfg.Engine, err)
	}
	for _, w := range workers {
		got, err := run(sched.New(w))
		if err != nil {
			return fmt.Errorf("check: sampled %s workers=%d: %w", cfg.Engine, w, err)
		}
		if len(got.Losses) != len(ref.Losses) {
			return fmt.Errorf("check: sampled %s workers=%d produced %d epochs, serial %d", cfg.Engine, w, len(got.Losses), len(ref.Losses))
		}
		for i := range ref.Losses {
			if math.Float64bits(got.Losses[i]) != math.Float64bits(ref.Losses[i]) {
				return fmt.Errorf("check: sampled %s workers=%d epoch %d loss %x != serial %x (determinism-contract violation)",
					cfg.Engine, w, i, math.Float64bits(got.Losses[i]), math.Float64bits(ref.Losses[i]))
			}
		}
		if err := BitwiseEqual(fmt.Sprintf("sampled-%s-W", cfg.Engine), w, 0, got.W, ref.W); err != nil {
			return err
		}
		if err := BitwiseEqual(fmt.Sprintf("sampled-%s-B", cfg.Engine), w, 0, got.B, ref.B); err != nil {
			return err
		}
		if got.TestAcc != ref.TestAcc {
			return fmt.Errorf("check: sampled %s workers=%d TestAcc %v != serial %v", cfg.Engine, w, got.TestAcc, ref.TestAcc)
		}
	}
	return nil
}

// SampledEngineAgreement runs the same sampled training once per
// engine (CSR, then SPTC with cfg.AutoOpt) and asserts the loss curves
// and classifiers agree within SampledTolerance — the losslessness
// claim at the strength float32 summation order allows.
func SampledEngineAgreement(g *graph.Graph, x *dense.Matrix, labels []int, classes int, test []int, cfg distributed.TrainSampledConfig) error {
	run := func(engine gnn.EngineKind) (*distributed.TrainSampledResult, error) {
		c := cfg
		c.Engine = engine
		return distributed.TrainSampledSGC(g, x, labels, classes, test, c)
	}
	a, err := run(gnn.EngineCSR)
	if err != nil {
		return fmt.Errorf("check: sampled csr run: %w", err)
	}
	b, err := run(gnn.EngineSPTC)
	if err != nil {
		return fmt.Errorf("check: sampled sptc run: %w", err)
	}
	for i := range a.Losses {
		d := math.Abs(a.Losses[i] - b.Losses[i])
		scale := math.Max(1, math.Abs(a.Losses[i]))
		if d > SampledTolerance*scale {
			return fmt.Errorf("check: engines diverged at epoch %d: csr loss %v, sptc loss %v (|Δ|=%v > %v)",
				i, a.Losses[i], b.Losses[i], d, SampledTolerance*scale)
		}
	}
	if d := dense.MaxAbsDiff(a.W, b.W); d > SampledTolerance {
		return fmt.Errorf("check: engines diverged in weights by %v (> %v)", d, SampledTolerance)
	}
	if d := math.Abs(a.TestAcc - b.TestAcc); d > SampledTolerance {
		return fmt.Errorf("check: engines diverged in test accuracy: csr %v, sptc %v", a.TestAcc, b.TestAcc)
	}
	return nil
}
