package check

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/distributed"
	"repro/internal/gnn"
	"repro/internal/graph"
)

func sampledCase() (*graph.Graph, *dense.Matrix, []int, []int, distributed.TrainSampledConfig) {
	g, labels := graph.SBM([]int{80, 80, 80}, 0.15, 0.005, 21)
	x := dense.NewMatrix(g.N(), 8)
	x.Randomize(1, 5)
	for i, l := range labels {
		x.Set(i, l, x.At(i, l)+1.5)
	}
	var test []int
	for i := 0; i < g.N(); i += 5 {
		test = append(test, i)
	}
	cfg := distributed.TrainSampledConfig{
		Sampler: distributed.SamplerConfig{Seeds: 25, Fanout: []int{5}, Seed: 9},
		AutoOpt: core.AutoOptions{MaxM: 8, MaxV: 4},
		Epochs:  4,
		Batches: 2,
		Seed:    2,
	}
	return g, x, labels, test, cfg
}

func TestSampledDeterminismBothEngines(t *testing.T) {
	g, x, labels, test, cfg := sampledCase()
	for _, engine := range []gnn.EngineKind{gnn.EngineCSR, gnn.EngineSPTC} {
		c := cfg
		c.Engine = engine
		if err := SampledDeterminism(g, x, labels, 3, test, c, []int{2, 4}); err != nil {
			t.Errorf("engine %s: %v", engine, err)
		}
	}
}

func TestSampledEngineAgreement(t *testing.T) {
	g, x, labels, test, cfg := sampledCase()
	if err := SampledEngineAgreement(g, x, labels, 3, test, cfg); err != nil {
		t.Error(err)
	}
}

func TestSampledDeterminismReportsBadConfig(t *testing.T) {
	g, x, _, _, cfg := sampledCase()
	// Labels of the wrong length must surface the underlying error, not
	// panic inside the ladder.
	if err := SampledDeterminism(g, x, []int{0}, 3, nil, cfg, []int{2}); err == nil {
		t.Error("want size-mismatch error from the serial run")
	}
	if err := SampledEngineAgreement(g, x, []int{0}, 3, nil, cfg); err == nil {
		t.Error("want size-mismatch error from the csr run")
	}
}
