package check

import (
	"math/rand"
	"testing"

	"repro/internal/csr"
	"repro/internal/pattern"
	"repro/internal/spmm"
)

// randomPerm returns a seeded permutation and its inverse.
func randomPerm(n int, seed int64) (perm, inv []int) {
	perm = rand.New(rand.NewSource(seed)).Perm(n)
	inv = make([]int, n)
	for i, p := range perm {
		inv[p] = i
	}
	return perm, inv
}

// TestMetamorphicPermInverseIsIdentity: renumbering a graph by a random
// permutation and then by its inverse restores it exactly, so every
// derived quantity — Conformity scores and SpMM output included — is
// unchanged. This is the losslessness claim in metamorphic form.
func TestMetamorphicPermInverseIsIdentity(t *testing.T) {
	for _, rg := range Regimes()[:5] {
		rg := rg
		t.Run(rg.Name, func(t *testing.T) {
			t.Parallel()
			g := rg.RandomGraph(150, 21)
			perm, inv := randomPerm(g.N(), 31)
			g1, err := g.ApplyPermutation(perm)
			if err != nil {
				t.Fatal(err)
			}
			// Round trip: (g by perm) by inv is g again because
			// position i of the round trip holds perm[inv[i]] = i.
			g2, err := g1.ApplyPermutation(inv)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range testPatterns {
				m, m2 := g.ToBitMatrix(), g2.ToBitMatrix()
				if pattern.PScore(m, p) != pattern.PScore(m2, p) || pattern.MBScore(m, p) != pattern.MBScore(m2, p) {
					t.Fatalf("pattern %v: conformity changed across perm round trip", p)
				}
			}
			b := RandomDense(g.N(), 13, 1, 5)
			c1 := spmm.CSR(csr.FromGraph(g), b)
			c2 := spmm.CSR(csr.FromGraph(g2), b)
			if err := Compare("perm-roundtrip", c2, c1, csr.FromGraph(g), b, DefaultTol()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMetamorphicPermEquivariance: a single permutation commutes with
// SpMM — CSR(P A Pᵀ) x (P B) equals the row permutation of CSR(A) x B
// up to float32 summation-order tolerance. The reordered execution
// path therefore computes the same aggregation as the original, which
// is exactly what makes SOGRE deployment-safe for GNNs.
func TestMetamorphicPermEquivariance(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rg := Regimes()[int(seed)%len(Regimes())]
		g := rg.RandomGraph(130, seed)
		a := csr.FromGraph(g)
		perm, _ := randomPerm(g.N(), seed*13)
		pa, err := a.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		b := RandomDense(g.N(), 11, 1, seed+50)
		pb := RandomDense(g.N(), 11, 1, seed+50)
		for i := 0; i < g.N(); i++ {
			copy(pb.Row(i), b.Row(perm[i]))
		}
		got := spmm.CSR(pa, pb)
		want := spmm.CSR(a, b)
		// Undo the row permutation on the output before comparing.
		unperm := got.Clone()
		for i := 0; i < g.N(); i++ {
			copy(unperm.Row(perm[i]), got.Row(i))
		}
		if err := Compare("perm-equivariance", unperm, want, a, b, DefaultTol()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
