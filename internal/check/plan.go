package check

import (
	"fmt"
	"time"

	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predictor/cycle"
	"repro/internal/sched"
	"repro/internal/spmm"
)

// This file is the execution planner's differential layer. The planner
// (internal/plan) owes its callers two properties:
//
//  1. Selection purity — a planned dispatch computes the exact bits the
//     chosen kernel would compute when invoked directly. The planner
//     adds routing, never arithmetic (PlannerEquivalence).
//  2. Bounded regret — the kernel the calibrated planner picks is
//     never wall-clock catastrophic relative to the best static choice
//     available for the same operands (PlannerRegret).

// runClass invokes kernel class k directly through the public spmm
// entry points, bypassing the planner entirely — the reference side of
// the equivalence oracle.
func runClass(k cycle.KernelClass, pool *sched.Pool, op plan.Operands, b *dense.Matrix) *dense.Matrix {
	switch k {
	case cycle.KernelCSRParallel:
		return spmm.CSRPool(pool, op.A, b)
	case cycle.KernelHybridSerial:
		return spmm.HybridSerial(op.Comp, op.Resid, b)
	case cycle.KernelHybridParallel:
		return spmm.HybridPool(pool, op.Comp, op.Resid, b)
	default:
		return spmm.CSRSerial(op.A, b)
	}
}

// PlannerEquivalence asserts plan.Execute is bit-identical to direct
// kernel invocation on A x B: at every worker count (nil selects
// WorkerCounts, {1,2,4,NumCPU}), both for the decision the calibrated
// planner actually makes and for every kernel class forced explicitly,
// with and without arena-backed outputs. Any flipped bit means the
// planner leaked arithmetic into the dispatch path.
func PlannerEquivalence(a *csr.Matrix, b *dense.Matrix, p pattern.VNM, cal *plan.Calibration, workers []int) error {
	op, err := plan.Prepare(a, p)
	if err != nil {
		return fmt.Errorf("check: planner operands: %w", err)
	}
	if workers == nil {
		workers = WorkerCounts()
	}
	var arena plan.Arena
	for _, w := range workers {
		pool := sched.New(w)
		pl := &plan.Planner{Calib: cal, Workers: w}
		decisions := []plan.Decision{pl.ChooseOperands(op, b.Cols)}
		for _, k := range cycle.KernelClasses() {
			decisions = append(decisions, plan.Decision{Kernel: k, Workers: w})
		}
		for _, d := range decisions {
			ref := runClass(d.Kernel, pool, op, b)
			heap := plan.Execute(d, pool, op, b, nil)
			if err := BitwiseEqual("planned/"+string(d.Kernel), w, d.TileTarget, heap, ref); err != nil {
				return err
			}
			reused := plan.Execute(d, pool, op, b, &arena)
			if err := BitwiseEqual("planned-arena/"+string(d.Kernel), w, d.TileTarget, reused, ref); err != nil {
				return err
			}
		}
	}
	return nil
}

// RegretError reports a planned dispatch that ran more than a bounded
// factor slower than the best static kernel on the same operands.
type RegretError struct {
	Chosen    cycle.KernelClass
	Best      cycle.KernelClass
	ChosenNs  float64
	BestNs    float64
	MaxFactor float64
}

func (e *RegretError) Error() string {
	return fmt.Sprintf("check: planner regret: chose %s (%.0f ns) but best static is %s (%.0f ns) — factor %.2f exceeds bound %.2f",
		e.Chosen, e.ChosenNs, e.Best, e.BestNs, e.ChosenNs/e.BestNs, e.MaxFactor)
}

// PlannerRegret times the calibrated planner's dispatch on A x B
// against every static kernel class (best-of-repeats, one warmup each,
// the bench methodology) and asserts the planned wall time stays
// within maxFactor of the best static kernel. The planner is allowed
// to be modestly wrong — its cost model is a handful of coefficients —
// but never catastrophically wrong.
func PlannerRegret(a *csr.Matrix, b *dense.Matrix, p pattern.VNM, cal *plan.Calibration, workers, repeats int, maxFactor float64) error {
	op, err := plan.Prepare(a, p)
	if err != nil {
		return fmt.Errorf("check: planner operands: %w", err)
	}
	if repeats < 1 {
		repeats = 3
	}
	pl := &plan.Planner{Calib: cal, Workers: workers}
	d := pl.ChooseOperands(op, b.Cols)
	pool := sched.New(workers)
	var arena plan.Arena
	chosenNs := bestOfNs(repeats, func() { plan.Execute(d, pool, op, b, &arena) })
	best := cycle.KernelClass("")
	bestNs := 0.0
	for _, k := range cycle.KernelClasses() {
		ns := bestOfNs(repeats, func() { runClass(k, pool, op, b) })
		if best == "" || ns < bestNs {
			best, bestNs = k, ns
		}
	}
	if chosenNs > bestNs*maxFactor {
		return &RegretError{Chosen: d.Kernel, Best: best, ChosenNs: chosenNs, BestNs: bestNs, MaxFactor: maxFactor}
	}
	return nil
}

// bestOfNs returns fn's minimum wall time over repeats runs after one
// untimed warmup.
func bestOfNs(repeats int, fn func()) float64 {
	fn()
	best := time.Duration(1<<63 - 1)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}
