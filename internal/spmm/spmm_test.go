package spmm

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/sptc"
	"repro/internal/venom"
)

func randomB(n, h int, seed int64) *dense.Matrix {
	b := dense.NewMatrix(n, h)
	b.Randomize(1, seed)
	return b
}

func weightedGraphCSR(n int, seed int64) *csr.Matrix {
	g := graph.Banded(n, 2, 0.9, seed)
	m := csr.FromGraph(g)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Val {
		m.Val[i] = rng.Float32() + 0.1
	}
	return m
}

func TestCSRMatchesDense(t *testing.T) {
	a := weightedGraphCSR(60, 1)
	b := randomB(60, 17, 2)
	want := Dense(a.ToDense(), b)
	gotSerial := CSRSerial(a, b)
	gotPar := CSR(a, b)
	if d := dense.MaxAbsDiff(want, gotSerial); d > 1e-4 {
		t.Errorf("CSRSerial differs from dense by %v", d)
	}
	if d := dense.MaxAbsDiff(want, gotPar); d > 1e-4 {
		t.Errorf("CSR differs from dense by %v", d)
	}
}

func TestVNMMatchesCSR(t *testing.T) {
	// Reorder a banded graph to conform, compress, and check the VNM
	// kernel agrees with CSR on the reordered matrix.
	g := graph.Banded(96, 2, 0.9, 3)
	bm := g.ToBitMatrix()
	res, err := core.Reorder(bm, pattern.NM(2, 8), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming() {
		t.Skip("banded graph did not conform; adjust test setup")
	}
	a := csr.FromBitMatrix(res.Matrix)
	cm, err := venom.Compress(a, res.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	b := randomB(96, 33, 4)
	want := CSR(a, b)
	got := VNM(cm, b)
	if d := dense.MaxAbsDiff(want, got); d > 1e-4 {
		t.Errorf("VNM differs from CSR by %v", d)
	}
}

func TestVNMWithLargeV(t *testing.T) {
	// Structured matrix conforming to 8:2:8, exercising V-row reuse.
	var rows, cols []int32
	var vals []float32
	rng := rand.New(rand.NewSource(5))
	n := 64
	p := pattern.New(8, 2, 8)
	for br := 0; br < n/8; br++ {
		baseCols := []int32{int32((br * 8) % n), int32((br*8 + 3) % n)}
		for dr := 0; dr < 8; dr++ {
			r := int32(br*8 + dr)
			for _, c := range baseCols {
				rows = append(rows, r)
				cols = append(cols, c)
				vals = append(vals, rng.Float32()+0.1)
			}
		}
	}
	a, err := csr.FromEntries(n, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	cmz, err := venom.Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	b := randomB(n, 24, 6)
	want := CSR(a, b)
	got := VNM(cmz, b)
	if d := dense.MaxAbsDiff(want, got); d > 1e-4 {
		t.Errorf("VNM (V=8) differs from CSR by %v", d)
	}
}

func TestReorderedSpMMEquivalence(t *testing.T) {
	// End-to-end losslessness: SpMM on the reordered system must equal
	// the un-reordered SpMM after permuting rows back.
	// If A' = P A Pᵀ and B' = P B, then C' = A'B' = P(AB) = P C.
	g := graph.Banded(64, 2, 0.9, 11)
	a := csr.FromGraph(g)
	bm := g.ToBitMatrix()
	res, err := core.Reorder(bm, pattern.NM(2, 4), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aPerm, err := a.Permute(res.Perm)
	if err != nil {
		t.Fatal(err)
	}
	b := randomB(64, 9, 12)
	// B' = rows of B permuted: B'[i] = B[perm[i]].
	bPerm := dense.NewMatrix(64, 9)
	for i, old := range res.Perm {
		copy(bPerm.Row(i), b.Row(old))
	}
	c := CSR(a, b)
	cPerm := CSR(aPerm, bPerm)
	// cPerm[i] must equal c[perm[i]].
	for i, old := range res.Perm {
		for j := 0; j < 9; j++ {
			if diff := cPerm.At(i, j) - c.At(old, j); diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("row %d col %d: reordered SpMM differs (%v vs %v)", i, j, cPerm.At(i, j), c.At(old, j))
			}
		}
	}
}

func TestRunReports(t *testing.T) {
	g := graph.Banded(64, 2, 0.9, 7)
	a := csr.FromGraph(g)
	b := randomB(64, 16, 8)
	cmodel := sptc.DefaultCostModel()
	rep := RunCSR(a, b, cmodel)
	if rep.Cycles <= 0 || rep.Kernel != "csr-cuda" || rep.C == nil {
		t.Errorf("RunCSR report incomplete: %+v", rep)
	}
	bm := g.ToBitMatrix()
	res, err := core.Reorder(bm, pattern.NM(2, 8), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conforming() {
		ac := csr.FromBitMatrix(res.Matrix)
		cmp, err := venom.Compress(ac, res.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		repV := RunVNM(cmp, b, cmodel)
		if repV.Cycles <= 0 || repV.Kernel != "vnm-sptc" {
			t.Errorf("RunVNM report incomplete: %+v", repV)
		}
	}
}

func TestEmptyMatrix(t *testing.T) {
	a, err := csr.FromEntries(16, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := randomB(16, 4, 1)
	c := CSR(a, b)
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("empty SpMM produced nonzero")
		}
	}
	cm, err := venom.Compress(a, pattern.NM(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	cv := VNM(cm, b)
	for _, v := range cv.Data {
		if v != 0 {
			t.Fatal("empty VNM SpMM produced nonzero")
		}
	}
}

func benchGraphCSR(n int) (*csr.Matrix, *venom.Matrix) {
	g := graph.Banded(n, 2, 0.9, 1)
	bm := g.ToBitMatrix()
	res, err := core.Reorder(bm, pattern.NM(2, 8), core.Options{})
	if err != nil {
		panic(err)
	}
	a := csr.FromBitMatrix(res.Matrix)
	pr, _, err := venom.PruneToConform(a, res.Pattern)
	if err != nil {
		panic(err)
	}
	cm, err := venom.Compress(pr, res.Pattern)
	if err != nil {
		panic(err)
	}
	return a, cm
}

func BenchmarkCSRSpMM(b *testing.B) {
	a, _ := benchGraphCSR(2048)
	x := randomB(2048, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CSR(a, x)
	}
}

func BenchmarkVNMSpMM(b *testing.B) {
	_, cm := benchGraphCSR(2048)
	x := randomB(2048, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = VNM(cm, x)
	}
}
