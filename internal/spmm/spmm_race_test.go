// Race hammer tests: every parallel kernel is driven from many
// concurrent callers sharing one pool and one set of read-only
// operands, and every concurrently produced result must still equal
// the serial reference bitwise. Run under -race (scripts/ci.sh does,
// at both default GOMAXPROCS and GOMAXPROCS=2) these tests prove the
// scheduler and the kernels share no mutable state across calls.
package spmm_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/bsr"
	"repro/internal/csr"
	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/spmm"
	"repro/internal/venom"
)

// hammerCallers is how many goroutines invoke each kernel at once —
// deliberately more than any plausible GOMAXPROCS so callers overlap
// even on wide machines.
const hammerCallers = 8

// raceOperands builds one shared operand set for the hammer tests.
func raceOperands(t *testing.T) (*csr.Matrix, *venom.Matrix, *csr.Matrix, *dense.Matrix) {
	t.Helper()
	g, err := datasets.Family("powerlaw", 600, 7, 11)
	if err != nil {
		t.Fatal(err)
	}
	a := csr.FromGraph(g)
	comp, resid, err := venom.SplitToConform(a, pattern.New(4, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	b := dense.NewMatrix(a.N, 19)
	b.Randomize(1, 13)
	return a, comp, resid, b
}

// hammer runs fn from hammerCallers goroutines simultaneously, several
// iterations each, and verifies every returned matrix bitwise against
// want.
func hammer(t *testing.T, name string, want *dense.Matrix, fn func() *dense.Matrix) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan string, hammerCallers)
	for c := 0; c < hammerCallers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				got := fn()
				for i, v := range got.Data {
					if math.Float32bits(v) != math.Float32bits(want.Data[i]) {
						select {
						case errs <- name + ": concurrent result diverges from serial reference":
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestRaceParallelKernels hammers every parallel SpMM entry point.
func TestRaceParallelKernels(t *testing.T) {
	a, comp, resid, b := raceOperands(t)
	// One pool shared by all callers, wider than GOMAXPROCS to force
	// worker multiplexing.
	pool := sched.New(4)

	t.Run("csr", func(t *testing.T) {
		want := spmm.CSRSerial(a, b)
		hammer(t, "CSRPool", want, func() *dense.Matrix { return spmm.CSRPool(pool, a, b) })
	})
	t.Run("vnm", func(t *testing.T) {
		want := spmm.VNMSerial(comp, b)
		hammer(t, "VNMPool", want, func() *dense.Matrix { return spmm.VNMPool(pool, comp, b) })
	})
	t.Run("hybrid", func(t *testing.T) {
		want := spmm.HybridSerial(comp, resid, b)
		hammer(t, "HybridPool", want, func() *dense.Matrix {
			return spmm.HybridPool(pool, comp, resid, b)
		})
	})
	t.Run("bsr", func(t *testing.T) {
		bm, err := bsr.FromBitMatrix(a.ToBitMatrix(), 8)
		if err != nil {
			t.Fatal(err)
		}
		want := spmm.BSRSerial(bm, b)
		hammer(t, "BSRPool", want, func() *dense.Matrix { return spmm.BSRPool(pool, bm, b) })
	})
}

// TestRaceSpMV hammers the parallel SpMV (vector) kernel.
func TestRaceSpMV(t *testing.T) {
	a, _, _, b := raceOperands(t)
	x := make([]float32, a.N)
	for i := range x {
		x[i] = b.At(i, 0)
	}
	pool := sched.New(4)
	want := spmm.SpMVSerial(a, x)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var fail bool
	for c := 0; c < hammerCallers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				got := spmm.SpMVPool(pool, a, x)
				for i := range got {
					if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
						mu.Lock()
						fail = true
						mu.Unlock()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if fail {
		t.Error("concurrent SpMVPool diverges from SpMVSerial")
	}
}

// TestRaceTraceVNM hammers the parallel V:N:M trace analysis, whose
// serial predecessor kept per-call scratch that must not have become
// shared state in the parallel rewrite.
func TestRaceTraceVNM(t *testing.T) {
	_, comp, _, _ := raceOperands(t)
	pool := sched.New(4)
	want := spmm.TraceVNMPool(pool, comp)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var fail bool
	for c := 0; c < hammerCallers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				if spmm.TraceVNMPool(pool, comp) != want {
					mu.Lock()
					fail = true
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if fail {
		t.Error("concurrent TraceVNMPool runs disagree")
	}
}
